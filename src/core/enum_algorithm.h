#ifndef TKC_CORE_ENUM_ALGORITHM_H_
#define TKC_CORE_ENUM_ALGORITHM_H_

#include <cstdint>

#include "core/sinks.h"
#include "util/status.h"
#include "util/timer.h"
#include "vct/ecs.h"

/// \file enum_algorithm.h
/// The paper's main contribution: Algorithm 5 ("Enum") with AS-Output
/// (Algorithm 4). Given the edge core window skyline, enumerates every
/// distinct temporal k-core exactly once in O(|R|) time:
///
///  * every minimal core window gets an *active time* (Definition 6) — the
///    first start time at which it is the edge's relevant window;
///  * windows are counting-sorted by end time and bucketed by active time
///    (Ba) and start time (Bs);
///  * a doubly linked list L holds, for the current start time ts, the at
///    most one relevant window per edge, ordered by end time; advancing
///    ts deletes Bs[ts-1] windows and splices in Ba[ts] windows with a
///    single forward cursor;
///  * AS-Output scans L, accumulating edges; once a window starting exactly
///    at ts is seen (the `valid` flag — Lemma 6), the accumulated edge set
///    is emitted at every end-time group boundary (Lemma 5 / Theorem 2),
///    giving exactly the cores whose TTI starts at ts.

namespace tkc {

/// Counters reported by the enumeration.
struct EnumStats {
  uint64_t num_cores = 0;
  uint64_t result_size_edges = 0;  ///< |R|
  uint64_t windows = 0;            ///< |ECS| seen
  uint64_t list_insertions = 0;
  uint64_t list_deletions = 0;
  uint64_t peak_memory_bytes = 0;  ///< logical bytes of Enum's structures
};

/// Runs Algorithm 5 over a previously built skyline, streaming each distinct
/// temporal k-core into `sink`. Returns Timeout if `deadline` expires.
[[nodiscard]] Status EnumerateFromEcs(
    const EdgeCoreWindowSkyline& ecs, CoreSink* sink,
    EnumStats* stats = nullptr, const Deadline& deadline = Deadline());

}  // namespace tkc

#endif  // TKC_CORE_ENUM_ALGORITHM_H_
