#include "core/enum_algorithm.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/mem.h"

namespace tkc {

namespace {

/// One minimal core window prepared for the linked-list scan.
struct WindowNode {
  Timestamp start = 0;
  Timestamp end = 0;
  Timestamp active = 0;
  EdgeId edge = 0;
};

}  // namespace

Status EnumerateFromEcs(const EdgeCoreWindowSkyline& ecs, CoreSink* sink,
                        EnumStats* stats, const Deadline& deadline) {
  const Window range = ecs.range();
  const Timestamp ts_first = range.start;
  const Timestamp ts_last = range.end;
  const uint32_t t_slots = ts_last - ts_first + 1;

  // ---- Prepare nodes: active times (Alg. 5 lines 1-4) + end-time sort. ----
  const uint32_t n_windows = static_cast<uint32_t>(ecs.size());
  std::vector<WindowNode> nodes;
  nodes.reserve(n_windows);
  ecs.ForEachWindow([&](EdgeId e, const Window& w) {
    WindowNode node;
    node.start = w.start;
    node.end = w.end;
    node.edge = e;
    // Active time: Ts for the edge's first window, predecessor.start + 1
    // afterwards (windows per edge arrive in increasing start order).
    if (!nodes.empty() && nodes.back().edge == e) {
      node.active = nodes.back().start + 1;
    } else {
      node.active = ts_first;
    }
    nodes.push_back(node);
  });

  // Counting sort by end time (Alg. 5 line 8) — keeps O(|ECS| + tmax).
  std::vector<uint32_t> end_sorted(n_windows);
  {
    std::vector<uint32_t> count(t_slots + 1, 0);
    for (const WindowNode& n : nodes) ++count[n.end - ts_first + 1];
    for (uint32_t i = 1; i <= t_slots; ++i) count[i] += count[i - 1];
    for (uint32_t i = 0; i < n_windows; ++i) {
      end_sorted[count[nodes[i].end - ts_first]++] = i;
    }
  }

  // Ba / Bs buckets (lines 5-11) as CSR over time slots, filled in
  // end-sorted order so each bucket is itself end-sorted.
  std::vector<uint32_t> ba_offsets(t_slots + 1, 0), ba_items(n_windows);
  std::vector<uint32_t> bs_offsets(t_slots + 1, 0), bs_items(n_windows);
  {
    for (const WindowNode& n : nodes) {
      ++ba_offsets[n.active - ts_first + 1];
      ++bs_offsets[n.start - ts_first + 1];
    }
    for (uint32_t i = 1; i <= t_slots; ++i) {
      ba_offsets[i] += ba_offsets[i - 1];
      bs_offsets[i] += bs_offsets[i - 1];
    }
    std::vector<uint32_t> ba_cursor(ba_offsets.begin(), ba_offsets.end() - 1);
    std::vector<uint32_t> bs_cursor(bs_offsets.begin(), bs_offsets.end() - 1);
    for (uint32_t idx : end_sorted) {
      ba_items[ba_cursor[nodes[idx].active - ts_first]++] = idx;
      bs_items[bs_cursor[nodes[idx].start - ts_first]++] = idx;
    }
  }

  // ---- Doubly linked list over node indices; sentinel head = n_windows. ----
  const uint32_t kHead = n_windows;
  const uint32_t kNil = n_windows + 1;
  std::vector<uint32_t> next(n_windows + 2), prev(n_windows + 2);
  next[kHead] = kNil;
  prev[kHead] = kNil;

  if (stats != nullptr) {
    stats->windows = n_windows;
    stats->peak_memory_bytes =
        ApproxVectorBytes(nodes) + ApproxVectorBytes(end_sorted) +
        ApproxVectorBytes(ba_offsets) + ApproxVectorBytes(ba_items) +
        ApproxVectorBytes(bs_offsets) + ApproxVectorBytes(bs_items) +
        ApproxVectorBytes(next) + ApproxVectorBytes(prev);
  }

  std::vector<EdgeId> accumulated;  // R of AS-Output, reused across starts

  // ---- Main loop over start times (Alg. 5 lines 13-24). ----
  for (Timestamp t = ts_first; t <= ts_last; ++t) {
    if (deadline.Expired()) {
      return Status::Timeout("Enum exceeded its deadline");
    }
    const uint32_t slot = t - ts_first;
    // Delete windows whose start time has fallen behind (lines 14-16).
    if (t > ts_first) {
      for (uint32_t i = bs_offsets[slot - 1]; i < bs_offsets[slot]; ++i) {
        uint32_t w = bs_items[i];
        next[prev[w]] = next[w];
        if (next[w] != kNil) prev[next[w]] = prev[w];
        if (stats != nullptr) ++stats->list_deletions;
      }
    }
    // Insert windows activating now, single forward cursor (lines 17-22).
    {
      uint32_t h = kHead;
      for (uint32_t i = ba_offsets[slot]; i < ba_offsets[slot + 1]; ++i) {
        uint32_t w = ba_items[i];
        while (next[h] != kNil && nodes[next[h]].end < nodes[w].end) {
          h = next[h];
        }
        // Insert w between h and next[h].
        next[w] = next[h];
        prev[w] = h;
        if (next[h] != kNil) prev[next[h]] = w;
        next[h] = w;
        h = w;
        if (stats != nullptr) ++stats->list_insertions;
      }
    }
    // No minimal core window starts here => no TTI starts here (Lemma 4).
    if (bs_offsets[slot] == bs_offsets[slot + 1]) continue;

    // ---- AS-Output (Algorithm 4). ----
    accumulated.clear();
    bool valid = false;
    for (uint32_t w = next[kHead]; w != kNil; w = next[w]) {
      accumulated.push_back(nodes[w].edge);
      if (nodes[w].start == t) valid = true;
      if (!valid) continue;
      uint32_t nxt = next[w];
      if (nxt != kNil && nodes[nxt].end == nodes[w].end) continue;
      sink->OnCore(Window{t, nodes[w].end}, accumulated);
      if (stats != nullptr) {
        ++stats->num_cores;
        stats->result_size_edges += accumulated.size();
      }
    }
  }
  return Status::OK();
}

}  // namespace tkc
