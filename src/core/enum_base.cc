#include "core/enum_base.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/hash.h"
#include "util/mem.h"

namespace tkc {

namespace {

// Dedup table: 64-bit digest -> canonical edge lists with that digest
// (kStoreFullCores) or bare digests (kFingerprintOnly).
class DedupTable {
 public:
  explicit DedupTable(EnumBaseDedup mode) : mode_(mode) {}

  // Returns true if the core is new (and records it).
  bool Insert(const SetHash128& hash, std::span<const EdgeId> edges) {
    uint64_t digest = hash.Digest64();
    if (mode_ == EnumBaseDedup::kFingerprintOnly) {
      auto [it, inserted] = seen_.try_emplace(digest);
      (void)it;
      return inserted;
    }
    std::vector<EdgeId> canonical(edges.begin(), edges.end());
    std::sort(canonical.begin(), canonical.end());
    auto [it, inserted] = full_.try_emplace(digest);
    if (!inserted) {
      for (const auto& existing : it->second) {
        if (existing == canonical) return false;
      }
    }
    stored_bytes_ += canonical.size() * sizeof(EdgeId);
    it->second.push_back(std::move(canonical));
    return true;
  }

  uint64_t ApproxBytes() const {
    // Hash-table entry overhead estimated at 64 bytes per bucket entry.
    if (mode_ == EnumBaseDedup::kFingerprintOnly) return seen_.size() * 64;
    return full_.size() * 64 + stored_bytes_;
  }

 private:
  EnumBaseDedup mode_;
  std::unordered_map<uint64_t, char> seen_;
  std::unordered_map<uint64_t, std::vector<std::vector<EdgeId>>> full_;
  uint64_t stored_bytes_ = 0;
};

}  // namespace

Status EnumerateFromEcsBase(const TemporalGraph& g,
                            const EdgeCoreWindowSkyline& ecs, CoreSink* sink,
                            EnumBaseDedup dedup, EnumBaseStats* stats,
                            const Deadline& deadline) {
  const Window range = ecs.range();
  const Timestamp ts_first = range.start;
  const Timestamp ts_last = range.end;
  const uint32_t t_slots = ts_last - ts_first + 1;

  DedupTable table(dedup);

  // Per-edge cursor into its skyline: first window with start >= ts. The
  // cursor only moves forward as ts increases (skyline starts ascend).
  const uint32_t n_edges = ecs.num_edges();
  std::vector<uint32_t> cursor(n_edges, 0);

  // B[te] buckets rebuilt per start time (Alg. 3 line 3), as CSR.
  std::vector<uint32_t> bucket_count(t_slots + 1);
  std::vector<uint32_t> bucket_offset(t_slots + 1);
  std::vector<EdgeId> bucket_items;

  std::vector<EdgeId> core_edges;  // the accumulated C of Alg. 3
  uint64_t transient_peak = 0;

  for (Timestamp ts = ts_first; ts <= ts_last; ++ts) {
    if (deadline.Expired()) {
      return Status::Timeout("EnumBase exceeded its deadline");
    }
    // ---- Bucket construction (lines 3-6). ----
    std::fill(bucket_count.begin(), bucket_count.end(), 0);
    for (uint32_t le = 0; le < n_edges; ++le) {
      auto windows = ecs.WindowsOf(ecs.first_edge() + le);
      uint32_t& c = cursor[le];
      while (c < windows.size() && windows[c].start < ts) ++c;
      if (c == windows.size()) continue;
      ++bucket_count[windows[c].end - ts_first];
    }
    bucket_offset[0] = 0;
    for (uint32_t i = 0; i < t_slots; ++i) {
      bucket_offset[i + 1] = bucket_offset[i] + bucket_count[i];
    }
    bucket_items.resize(bucket_offset[t_slots]);
    {
      std::vector<uint32_t> fill(bucket_offset.begin(),
                                 bucket_offset.end() - 1);
      for (uint32_t le = 0; le < n_edges; ++le) {
        auto windows = ecs.WindowsOf(ecs.first_edge() + le);
        uint32_t c = cursor[le];
        if (c == windows.size()) continue;
        bucket_items[fill[windows[c].end - ts_first]++] =
            ecs.first_edge() + le;
      }
    }

    // ---- End-time sweep (lines 7-12). ----
    core_edges.clear();
    SetHash128 core_hash;
    Window tti{kInfTime, 0};  // TTI = [min edge time, max edge time] of C
    for (Timestamp te = ts; te <= ts_last; ++te) {
      if (stats != nullptr) ++stats->windows_scanned;
      uint32_t slot = te - ts_first;
      if (bucket_offset[slot] == bucket_offset[slot + 1]) continue;  // line 9
      for (uint32_t i = bucket_offset[slot]; i < bucket_offset[slot + 1];
           ++i) {
        EdgeId e = bucket_items[i];
        core_edges.push_back(e);
        core_hash.Add(e);
        Timestamp et = g.edge(e).t;
        tti.start = std::min(tti.start, et);
        tti.end = std::max(tti.end, et);
      }
      if (!table.Insert(core_hash, core_edges)) {  // line 11
        if (stats != nullptr) ++stats->duplicate_hits;
        continue;
      }
      sink->OnCore(tti, core_edges);
      if (stats != nullptr) {
        ++stats->num_cores;
        stats->result_size_edges += core_edges.size();
      }
    }
    transient_peak = std::max(
        transient_peak, ApproxVectorBytes(bucket_items) +
                            ApproxVectorBytes(core_edges) +
                            ApproxVectorBytes(bucket_count) * 2 +
                            ApproxVectorBytes(cursor) + table.ApproxBytes());
  }
  if (stats != nullptr) stats->peak_memory_bytes = transient_peak;
  return Status::OK();
}

}  // namespace tkc
