#ifndef TKC_CORE_SINKS_H_
#define TKC_CORE_SINKS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/common.h"
#include "util/hash.h"

/// \file sinks.h
/// Result consumers for temporal k-core enumeration. Every enumeration
/// algorithm streams each *distinct* temporal k-core exactly once into a
/// CoreSink; the sink decides whether to count, collect, fingerprint or
/// forward it. Streaming keeps Enum's O(|R|) bound honest: the algorithm
/// never stores the result set unless the sink chooses to.

namespace tkc {

/// One materialized temporal k-core.
struct CoreResult {
  /// The core's Tightest Time Interval W(C) (Definition 3).
  Window tti;
  /// Global EdgeIds of the core, sorted ascending (canonical form).
  std::vector<EdgeId> edges;

  friend bool operator==(const CoreResult& a, const CoreResult& b) {
    return a.tti == b.tti && a.edges == b.edges;
  }
};

/// Interface implemented by result consumers.
///
/// OnCore is called once per distinct temporal k-core with its TTI and edge
/// set. The span is only valid during the call and its edge order is
/// algorithm-specific (sinks needing a canonical form must sort a copy).
class CoreSink {
 public:
  virtual ~CoreSink() = default;
  virtual void OnCore(Window tti, std::span<const EdgeId> edges) = 0;
};

/// Counts cores and the total result size |R| (sum of core edge counts).
class CountingSink : public CoreSink {
 public:
  void OnCore(Window tti, std::span<const EdgeId> edges) override {
    (void)tti;
    ++num_cores_;
    total_edges_ += edges.size();
    max_core_edges_ = std::max<uint64_t>(max_core_edges_, edges.size());
  }

  uint64_t num_cores() const { return num_cores_; }
  /// The paper's |R|: total number of edges across all resulting cores.
  uint64_t result_size_edges() const { return total_edges_; }
  uint64_t max_core_edges() const { return max_core_edges_; }

  void Reset() { num_cores_ = 0, total_edges_ = 0, max_core_edges_ = 0; }

 private:
  uint64_t num_cores_ = 0;
  uint64_t total_edges_ = 0;
  uint64_t max_core_edges_ = 0;
};

/// Materializes every core in canonical (sorted-edge) form.
class CollectingSink : public CoreSink {
 public:
  void OnCore(Window tti, std::span<const EdgeId> edges) override;

  const std::vector<CoreResult>& cores() const { return cores_; }
  std::vector<CoreResult>& mutable_cores() { return cores_; }

  /// Sorts collected cores by (tti.start, tti.end, edges) so two sinks
  /// filled by different algorithms compare equal iff the result sets match.
  void SortCanonically();

 private:
  std::vector<CoreResult> cores_;
};

/// Order-independent fingerprint of the *set of cores*, for cheap
/// cross-algorithm equivalence checks on large results.
class FingerprintSink : public CoreSink {
 public:
  void OnCore(Window tti, std::span<const EdgeId> edges) override {
    SetHash128 core_hash;
    core_hash.Add(HashCombine(tti.start, tti.end));
    for (EdgeId e : edges) core_hash.Add(0x100000000ULL + e);
    fingerprint_.Add(core_hash.Digest64());
    ++num_cores_;
    total_edges_ += edges.size();
  }

  uint64_t digest() const { return fingerprint_.Digest64(); }
  uint64_t num_cores() const { return num_cores_; }
  uint64_t result_size_edges() const { return total_edges_; }

 private:
  SetHash128 fingerprint_;
  uint64_t num_cores_ = 0;
  uint64_t total_edges_ = 0;
};

/// Adapts a lambda / std::function to the CoreSink interface.
class CallbackSink : public CoreSink {
 public:
  using Callback = std::function<void(Window, std::span<const EdgeId>)>;
  explicit CallbackSink(Callback cb) : cb_(std::move(cb)) {}

  void OnCore(Window tti, std::span<const EdgeId> edges) override {
    cb_(tti, edges);
  }

 private:
  Callback cb_;
};

}  // namespace tkc

#endif  // TKC_CORE_SINKS_H_
