#include "core/sinks.h"

#include <algorithm>

namespace tkc {

void CollectingSink::OnCore(Window tti, std::span<const EdgeId> edges) {
  CoreResult r;
  r.tti = tti;
  r.edges.assign(edges.begin(), edges.end());
  std::sort(r.edges.begin(), r.edges.end());
  cores_.push_back(std::move(r));
}

void CollectingSink::SortCanonically() {
  std::sort(cores_.begin(), cores_.end(),
            [](const CoreResult& a, const CoreResult& b) {
              if (a.tti.start != b.tti.start) return a.tti.start < b.tti.start;
              if (a.tti.end != b.tti.end) return a.tti.end < b.tti.end;
              return a.edges < b.edges;
            });
}

}  // namespace tkc
