#include "core/naive_enumerator.h"

#include <unordered_map>
#include <vector>

#include "graph/window_peeler.h"
#include "util/hash.h"

namespace tkc {

Status EnumerateNaive(const TemporalGraph& g, uint32_t k, Window range,
                      CoreSink* sink, const Deadline& deadline) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (range.start < 1 || range.end > g.num_timestamps() ||
      range.start > range.end) {
    return Status::InvalidArgument("query range outside the graph's time span");
  }

  // digest -> canonical edge lists (exact collision resolution).
  std::unordered_map<uint64_t, std::vector<std::vector<EdgeId>>> seen;

  for (Timestamp ts = range.start; ts <= range.end; ++ts) {
    if (deadline.Expired()) {
      return Status::Timeout("naive enumeration exceeded its deadline");
    }
    for (Timestamp te = ts; te <= range.end; ++te) {
      WindowCore core = ComputeWindowCore(g, k, Window{ts, te});
      if (core.Empty()) continue;
      SetHash128 h;
      for (EdgeId e : core.edges) h.Add(e);
      auto& bucket = seen[h.Digest64()];
      bool duplicate = false;
      for (const auto& existing : bucket) {
        if (existing == core.edges) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      bucket.push_back(core.edges);
      sink->OnCore(core.tti, core.edges);
    }
  }
  return Status::OK();
}

}  // namespace tkc
