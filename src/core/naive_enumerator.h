#ifndef TKC_CORE_NAIVE_ENUMERATOR_H_
#define TKC_CORE_NAIVE_ENUMERATOR_H_

#include <cstdint>

#include "core/sinks.h"
#include "graph/temporal_graph.h"
#include "util/status.h"
#include "util/timer.h"

/// \file naive_enumerator.h
/// Ground-truth enumerator: peel the temporal k-core of every window
/// [ts,te] within the query range from scratch and deduplicate by exact
/// edge set. O(tmax^2 * m) — usable only on small inputs, but it depends on
/// nothing except the peeler, so it is the oracle the whole test suite
/// trusts. Emits cores with their exact TTI (min/max edge time).

namespace tkc {

/// Enumerates all distinct temporal k-cores of `g` within `range` by brute
/// force. Returns InvalidArgument for k < 1 or a range outside the graph.
[[nodiscard]] Status EnumerateNaive(
    const TemporalGraph& g, uint32_t k, Window range, CoreSink* sink,
    const Deadline& deadline = Deadline());

}  // namespace tkc

#endif  // TKC_CORE_NAIVE_ENUMERATOR_H_
