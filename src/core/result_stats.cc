#include "core/result_stats.h"

#include <algorithm>
#include <cstdio>

namespace tkc {

int Log2Histogram::BucketOf(uint64_t value) {
  if (value == 0) return 0;
  return 64 - __builtin_clzll(value);  // bucket b holds [2^(b-1), 2^b - 1]
}

void Log2Histogram::Add(uint64_t value) {
  ++buckets_[BucketOf(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

uint64_t Log2Histogram::ApproxQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (int b = 0; b <= 64; ++b) {
    seen += buckets_[b];
    if (seen >= target) {
      return b == 0 ? 0 : (b >= 64 ? ~0ULL : (1ULL << b) - 1);
    }
  }
  return max_;
}

std::string Log2Histogram::ToString() const {
  std::string out;
  char line[96];
  for (int b = 0; b <= 64; ++b) {
    if (buckets_[b] == 0) continue;
    uint64_t lo = b == 0 ? 0 : (1ULL << (b - 1));
    uint64_t hi = b == 0 ? 0 : (1ULL << b) - 1;
    std::snprintf(line, sizeof(line), "  [%llu..%llu] %llu\n",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(buckets_[b]));
    out += line;
  }
  return out;
}

Timestamp StatsSink::BusiestStart() const {
  auto it = std::max_element(cores_per_start_.begin(), cores_per_start_.end());
  if (it == cores_per_start_.end()) return range_.start;
  return range_.start + static_cast<Timestamp>(it - cores_per_start_.begin());
}

std::string StatsSink::Report() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "cores: %llu, |R|: %llu edges, mean core size: %.1f, "
                "p50 size <= %llu, max size: %llu\n",
                static_cast<unsigned long long>(num_cores_),
                static_cast<unsigned long long>(total_edges_),
                core_size_.mean(),
                static_cast<unsigned long long>(core_size_.ApproxQuantile(0.5)),
                static_cast<unsigned long long>(core_size_.max()));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "TTI length: mean %.1f, p50 <= %llu, max %llu; busiest start "
                "time: %u\n",
                tti_length_.mean(),
                static_cast<unsigned long long>(
                    tti_length_.ApproxQuantile(0.5)),
                static_cast<unsigned long long>(tti_length_.max()),
                BusiestStart());
  out += buf;
  out += "core size histogram (log2 buckets):\n";
  out += core_size_.ToString();
  return out;
}

}  // namespace tkc
