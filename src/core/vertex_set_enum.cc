#include "core/vertex_set_enum.h"

#include "core/temporal_kcore.h"

namespace tkc {

StatusOr<std::vector<VertexSetResult>> EnumerateVertexSets(
    const TemporalGraph& g, uint32_t k, Window range) {
  std::vector<VertexSetResult> results;
  VertexSetDedupSink sink(
      g, [&](Window tti, std::span<const VertexId> vertices) {
        VertexSetResult r;
        r.tti = tti;
        r.vertices.assign(vertices.begin(), vertices.end());
        results.push_back(std::move(r));
      });
  Status status = RunTemporalKCoreQuery(g, k, range, &sink);
  if (!status.ok()) return status;
  return results;
}

}  // namespace tkc
