#ifndef TKC_CORE_ENUM_BASE_H_
#define TKC_CORE_ENUM_BASE_H_

#include <cstdint>

#include "core/sinks.h"
#include "graph/temporal_graph.h"
#include "util/status.h"
#include "util/timer.h"
#include "vct/ecs.h"

/// \file enum_base.h
/// The paper's baseline EnumBase (Algorithm 3): for every start time ts,
/// bucket each edge's first minimal core window with start >= ts by its end
/// time (Lemma 3), then sweep end times accumulating the core and emit it
/// unless an identical core was emitted before. The duplicate check uses a
/// hash table over previously produced cores — O(tmax^2) window scans in
/// the worst case, and memory grows with the number of distinct cores.

namespace tkc {

/// How EnumBase remembers previously emitted cores.
enum class EnumBaseDedup {
  /// Store each core's full canonical edge list (what the paper's baseline
  /// does — this is why Figure 12 shows EnumBase as the most memory-hungry
  /// algorithm). Collisions are resolved exactly.
  kStoreFullCores,
  /// Store only 128-bit fingerprints (ablation mode: trades certainty
  /// ~2^-128 for memory).
  kFingerprintOnly,
};

/// Counters reported by EnumBase.
struct EnumBaseStats {
  uint64_t num_cores = 0;
  uint64_t result_size_edges = 0;   ///< |R|
  uint64_t windows_scanned = 0;     ///< (ts, te) pairs visited
  uint64_t duplicate_hits = 0;      ///< cores recomputed then discarded
  uint64_t peak_memory_bytes = 0;   ///< logical bytes incl. the dedup table
};

/// Runs Algorithm 3 over a previously built skyline. `g` must be the graph
/// the skyline was built from (it supplies edge timestamps for TTIs).
[[nodiscard]] Status EnumerateFromEcsBase(
    const TemporalGraph& g, const EdgeCoreWindowSkyline& ecs, CoreSink* sink,
    EnumBaseDedup dedup = EnumBaseDedup::kStoreFullCores,
    EnumBaseStats* stats = nullptr, const Deadline& deadline = Deadline());

}  // namespace tkc

#endif  // TKC_CORE_ENUM_BASE_H_
