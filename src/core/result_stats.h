#ifndef TKC_CORE_RESULT_STATS_H_
#define TKC_CORE_RESULT_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/sinks.h"
#include "util/common.h"

/// \file result_stats.h
/// Streaming summarization of an enumeration's result set. Real analyses
/// over millions of cores (Figures 9-11 territory) cannot materialize
/// results; this sink accumulates the distributions analysts actually look
/// at — core sizes, TTI lengths, cores per start time — in O(1) memory per
/// core.

namespace tkc {

/// Log2-bucketed histogram of uint64 samples.
class Log2Histogram {
 public:
  void Add(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Smallest v such that >= fraction q of samples are <= v, up to bucket
  /// resolution (upper bucket bound).
  uint64_t ApproxQuantile(double q) const;

  /// One line per non-empty bucket: "[lo..hi] count".
  std::string ToString() const;

 private:
  static int BucketOf(uint64_t value);

  uint64_t buckets_[65] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

/// CoreSink computing result-set statistics without materialization.
class StatsSink : public CoreSink {
 public:
  /// `range` is the query range (start-time slots for the per-start count).
  explicit StatsSink(Window range)
      : range_(range), cores_per_start_(range.Length(), 0) {}

  void OnCore(Window tti, std::span<const EdgeId> edges) override {
    ++num_cores_;
    total_edges_ += edges.size();
    core_size_.Add(edges.size());
    tti_length_.Add(tti.Length());
    ++cores_per_start_[tti.start - range_.start];
  }

  uint64_t num_cores() const { return num_cores_; }
  uint64_t result_size_edges() const { return total_edges_; }
  const Log2Histogram& core_size_histogram() const { return core_size_; }
  const Log2Histogram& tti_length_histogram() const { return tti_length_; }
  /// Cores whose TTI starts at each slot of the query range.
  const std::vector<uint64_t>& cores_per_start() const {
    return cores_per_start_;
  }
  /// Start time (absolute) with the most cores; range.start when empty.
  Timestamp BusiestStart() const;

  /// Multi-line human-readable report.
  std::string Report() const;

 private:
  Window range_;
  uint64_t num_cores_ = 0;
  uint64_t total_edges_ = 0;
  Log2Histogram core_size_;
  Log2Histogram tti_length_;
  std::vector<uint64_t> cores_per_start_;
};

}  // namespace tkc

#endif  // TKC_CORE_RESULT_STATS_H_
