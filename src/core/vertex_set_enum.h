#ifndef TKC_CORE_VERTEX_SET_ENUM_H_
#define TKC_CORE_VERTEX_SET_ENUM_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/sinks.h"
#include "graph/temporal_graph.h"
#include "util/hash.h"

/// \file vertex_set_enum.h
/// The paper's Future Work, implemented: enumerating temporal k-core
/// *vertex sets*. Distinct edge-set cores frequently share their vertex
/// set (the same group of entities cohesive over nested windows), and the
/// paper notes that "representing k-cores as distinct vertex sets may be
/// more practical and efficient" for downstream applications.
///
/// VertexSetDedupSink adapts any edge-set enumeration (Enum, EnumBase,
/// OTCD) into a stream of distinct vertex sets: it derives each core's
/// vertex set incrementally, fingerprints it, and forwards only the first
/// occurrence (with the TTI of that occurrence — the widest-window
/// appearance for Enum's emission order within a start time). The adapter
/// adds O(|core edges|) per core, so the pipeline stays bounded by the
/// edge-result size |R|.

namespace tkc {

/// One distinct temporal k-core vertex set.
struct VertexSetResult {
  /// TTI of the first emitted edge-set core with this vertex set.
  Window tti;
  /// Sorted member vertices.
  std::vector<VertexId> vertices;

  friend bool operator==(const VertexSetResult& a, const VertexSetResult& b) {
    return a.tti == b.tti && a.vertices == b.vertices;
  }
};

/// CoreSink adapter that forwards each distinct vertex set once.
class VertexSetDedupSink : public CoreSink {
 public:
  using Callback = std::function<void(Window, std::span<const VertexId>)>;

  /// `graph` must outlive the sink and be the graph the edge ids refer to.
  VertexSetDedupSink(const TemporalGraph& graph, Callback callback)
      : graph_(graph),
        callback_(std::move(callback)),
        seen_epoch_(graph.num_vertices(), 0) {}

  void OnCore(Window tti, std::span<const EdgeId> edges) override {
    ++epoch_;
    scratch_.clear();
    SetHash128 hash;
    for (EdgeId e : edges) {
      const TemporalEdge& edge = graph_.edge(e);
      AddVertex(edge.u, &hash);
      AddVertex(edge.v, &hash);
    }
    ++cores_seen_;
    if (!emitted_.insert(hash.Digest64()).second) return;  // vertex-set dup
    std::sort(scratch_.begin(), scratch_.end());
    callback_(tti, scratch_);
    ++vertex_sets_emitted_;
  }

  /// Edge-set cores consumed.
  uint64_t cores_seen() const { return cores_seen_; }
  /// Distinct vertex sets forwarded.
  uint64_t vertex_sets_emitted() const { return vertex_sets_emitted_; }

 private:
  void AddVertex(VertexId v, SetHash128* hash) {
    if (seen_epoch_[v] == epoch_) return;
    seen_epoch_[v] = epoch_;
    scratch_.push_back(v);
    hash->Add(v);
  }

  const TemporalGraph& graph_;
  Callback callback_;
  std::vector<uint32_t> seen_epoch_;
  std::vector<VertexId> scratch_;
  std::unordered_set<uint64_t> emitted_;
  uint32_t epoch_ = 0;
  uint64_t cores_seen_ = 0;
  uint64_t vertex_sets_emitted_ = 0;
};

/// Convenience: runs the full pipeline (CoreTime + Enum) and collects all
/// distinct temporal k-core vertex sets of windows within `range`.
/// Declared here, defined in vertex_set_enum.cc.
[[nodiscard]] StatusOr<std::vector<VertexSetResult>> EnumerateVertexSets(
    const TemporalGraph& g, uint32_t k, Window range);

}  // namespace tkc

#endif  // TKC_CORE_VERTEX_SET_ENUM_H_
