#include "core/temporal_kcore.h"

#include <algorithm>

#include "core/enum_algorithm.h"
#include "core/naive_enumerator.h"
#include "vct/vct_builder.h"

namespace tkc {

const char* EnumMethodName(EnumMethod method) {
  switch (method) {
    case EnumMethod::kEnum:
      return "Enum";
    case EnumMethod::kEnumBase:
      return "EnumBase";
    case EnumMethod::kNaive:
      return "Naive";
  }
  return "Unknown";
}

Status ValidateQueryInputs(const TemporalGraph& g, uint32_t k, Window range) {
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1 (k=0 is degenerate)");
  }
  if (range.start < 1 || range.start > range.end ||
      range.end > g.num_timestamps()) {
    return Status::InvalidArgument(
        "query range must satisfy 1 <= Ts <= Te <= num_timestamps");
  }
  return Status::OK();
}

Status RunTemporalKCoreQuery(const TemporalGraph& g, uint32_t k, Window range,
                             CoreSink* sink, const QueryOptions& options,
                             QueryStats* stats) {
  TKC_RETURN_IF_ERROR(ValidateQueryInputs(g, k, range));
  if (sink == nullptr) {
    return Status::InvalidArgument("sink must not be null");
  }

  WallTimer total_timer;

  // The naive oracle bypasses the VCT/ECS pipeline entirely.
  if (options.enum_method == EnumMethod::kNaive) {
    Status s = EnumerateNaive(g, k, range, sink, options.deadline);
    if (stats != nullptr) {
      stats->total_seconds = total_timer.ElapsedSeconds();
      stats->enumeration_seconds = stats->total_seconds;
    }
    return s;
  }

  // ---- Phase 1: CoreTime (VCT + ECS). ----
  WallTimer phase_timer;
  VctBuildResult built = options.vct_method == VctMethod::kEfficient
                             ? BuildVctAndEcs(g, k, range, options.arena)
                             : BuildVctAndEcsNaive(g, k, range);
  const double coretime_seconds = phase_timer.ElapsedSeconds();
  if (options.deadline.Expired()) {
    return Status::Timeout("deadline expired after the CoreTime phase");
  }

  // ---- Phase 2: enumeration from the skyline. ----
  phase_timer.Restart();
  Status s;
  uint64_t enum_peak = 0;
  uint64_t num_cores = 0;
  uint64_t result_edges = 0;
  if (options.enum_method == EnumMethod::kEnum) {
    EnumStats enum_stats;
    s = EnumerateFromEcs(built.ecs, sink, &enum_stats, options.deadline);
    enum_peak = enum_stats.peak_memory_bytes;
    num_cores = enum_stats.num_cores;
    result_edges = enum_stats.result_size_edges;
  } else {
    EnumBaseStats base_stats;
    s = EnumerateFromEcsBase(g, built.ecs, sink, options.enum_base_dedup,
                             &base_stats, options.deadline);
    enum_peak = base_stats.peak_memory_bytes;
    num_cores = base_stats.num_cores;
    result_edges = base_stats.result_size_edges;
  }

  if (stats != nullptr) {
    stats->coretime_seconds = coretime_seconds;
    stats->enumeration_seconds = phase_timer.ElapsedSeconds();
    stats->total_seconds = total_timer.ElapsedSeconds();
    stats->vct_size = built.vct.size();
    stats->ecs_size = built.ecs.size();
    stats->num_cores = num_cores;
    stats->result_size_edges = result_edges;
    stats->peak_memory_bytes =
        std::max(built.peak_memory_bytes,
                 built.vct.MemoryUsageBytes() + built.ecs.MemoryUsageBytes() +
                     enum_peak);
  }
  return s;
}

}  // namespace tkc
