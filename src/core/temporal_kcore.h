#ifndef TKC_CORE_TEMPORAL_KCORE_H_
#define TKC_CORE_TEMPORAL_KCORE_H_

#include <cstdint>
#include <string>

#include "core/enum_base.h"
#include "core/sinks.h"
#include "graph/temporal_graph.h"
#include "util/status.h"
#include "util/timer.h"
#include "vct/naive_vct_builder.h"

/// \file temporal_kcore.h
/// One-call public API for the time-range k-core query: given a temporal
/// graph, an integer k and a time range [Ts,Te], stream every distinct
/// temporal k-core of every window inside the range into a CoreSink.
///
/// Quickstart:
/// \code
///   auto graph = tkc::LoadSnapFile("CollegeMsg.txt").value();
///   tkc::CollectingSink sink;
///   tkc::QueryStats stats;
///   tkc::Status s = tkc::RunTemporalKCoreQuery(
///       graph, /*k=*/5, tkc::Window{100, 400}, &sink, {}, &stats);
///   for (const tkc::CoreResult& core : sink.cores()) { ... }
/// \endcode
///
/// The default configuration runs the paper's full pipeline: the CoreTime
/// phase (efficient VCT+ECS construction, O(|VCT|*deg_avg)) followed by the
/// Enum phase (Algorithm 5, O(|R|)). The baseline algorithms are available
/// through QueryOptions for comparison; the OTCD baseline lives in
/// otcd/otcd.h as an independent engine since it bypasses this framework
/// entirely.

namespace tkc {

struct VctBuildArena;  // vct/vct_builder.h

/// Which enumeration algorithm consumes the edge core window skyline.
enum class EnumMethod {
  kEnum,      ///< Algorithm 5 + AS-Output — the paper's contribution
  kEnumBase,  ///< Algorithm 3 — ECS bucket scan with dedup table
  kNaive,     ///< per-window peeling oracle (ignores the skyline)
};

/// Which builder produces the VCT index and the skyline.
enum class VctMethod {
  kEfficient,  ///< worklist fixpoint, O(|VCT| * deg_avg)
  kNaive,      ///< one decremental sweep per start time, O(tmax * m)
};

/// Options for RunTemporalKCoreQuery.
struct QueryOptions {
  EnumMethod enum_method = EnumMethod::kEnum;
  VctMethod vct_method = VctMethod::kEfficient;
  /// Dedup policy for EnumMethod::kEnumBase.
  EnumBaseDedup enum_base_dedup = EnumBaseDedup::kStoreFullCores;
  /// Abort with Status::Timeout once expired (checked between phases and
  /// periodically inside the enumeration loops).
  Deadline deadline;
  /// Optional scratch recycled across queries (vct_builder.h). Serving code
  /// (serve/query_engine.h) hands each worker its own arena so steady-state
  /// query execution allocates nothing; results never depend on reuse. Only
  /// read by VctMethod::kEfficient.
  VctBuildArena* arena = nullptr;
};

/// Phase timings and sizes of one query run.
struct QueryStats {
  double coretime_seconds = 0;      ///< VCT + ECS construction
  double enumeration_seconds = 0;   ///< the chosen enumeration phase
  double total_seconds = 0;
  uint64_t vct_size = 0;            ///< |VCT| (index entries)
  uint64_t ecs_size = 0;            ///< |ECS| (minimal core windows)
  uint64_t num_cores = 0;           ///< distinct temporal k-cores
  uint64_t result_size_edges = 0;   ///< |R| (sum of core edge counts)
  uint64_t peak_memory_bytes = 0;   ///< logical peak across phases
};

/// The input contract every query entry point enforces: k >= 1 and a range
/// inside the graph's compacted time span. Exposed so other execution
/// paths (the CoreTime-only measurement kind, the serving layer) validate
/// identically instead of drifting from the pipeline.
[[nodiscard]] Status ValidateQueryInputs(const TemporalGraph& g, uint32_t k,
                                         Window range);

/// Runs the time-range k-core query. Validates inputs (k >= 1, range inside
/// the graph's compacted time span) and streams results into `sink`.
[[nodiscard]] Status RunTemporalKCoreQuery(
    const TemporalGraph& g, uint32_t k, Window range, CoreSink* sink,
    const QueryOptions& options = {}, QueryStats* stats = nullptr);

/// Human-readable name of an enumeration method ("Enum", "EnumBase", ...).
const char* EnumMethodName(EnumMethod method);

}  // namespace tkc

#endif  // TKC_CORE_TEMPORAL_KCORE_H_
