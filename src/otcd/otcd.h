#ifndef TKC_OTCD_OTCD_H_
#define TKC_OTCD_OTCD_H_

#include <cstdint>

#include "core/sinks.h"
#include "graph/temporal_graph.h"
#include "util/status.h"
#include "util/timer.h"

/// \file otcd.h
/// The state-of-the-art baseline the paper compares against: Optimized
/// Temporal Core Decomposition (OTCD, Yang et al., VLDB'23; the paper's
/// Algorithm 1). Reimplemented faithfully from scratch:
///
///  * anchor the start time ts and decrement the end time te from Te to ts,
///    obtaining each window's temporal k-core decrementally from the
///    previous one by edge deletion + cascade peeling;
///  * advance the row (ts -> ts+1) by deleting the edges timestamped ts
///    from the row's base core (the core of [ts, Te]) and re-peeling;
///  * Tightest Time Interval (TTI) pruning. When the core of [ts,te] has
///    TTI [ts',te'], every window in the rectangle [ts..ts'] x [te'..te]
///    has the *same* core. PoR (pruning-on-the-right) realizes the row part
///    by jumping te directly to te'-1; PoU/PoL (underside/left) are
///    realized by marking interval [te',te] as pruned on rows ts+1..ts'
///    (those cells are skipped for output, and the TTI jump means they cost
///    no recomputation either).
///
/// A fingerprint dedup set guarantees each distinct core is emitted once
/// even where interval marks are incomplete, mirroring the problem
/// statement's "any solution should avoid repeated outputs".
///
/// Complexity: O(tmax^2 * B) window scans in the worst case, where B is the
/// per-window maintenance cost — the quadratic tmax behaviour the paper
/// identifies as OTCD's bottleneck. Memory grows with the pruning marks and
/// the dedup set (Figure 12's ~7 GB behaviour at paper scale).

namespace tkc {

/// Options for RunOtcd.
struct OtcdOptions {
  /// Enables TTI rectangle pruning (PoR always applies; this controls the
  /// cross-row PoU/PoL marks). Off = the unoptimized TCD scan, for ablation.
  bool cross_row_pruning = true;
  /// Cooperative time limit (Status::Timeout on expiry).
  Deadline deadline;
};

/// Counters reported by OTCD.
struct OtcdStats {
  uint64_t num_cores = 0;
  uint64_t result_size_edges = 0;    ///< |R|
  uint64_t cells_visited = 0;        ///< TTI-jump loop iterations
  uint64_t cells_skipped_by_por = 0; ///< windows covered by a TTI jump
  uint64_t outputs_pruned = 0;       ///< outputs suppressed by cross-row marks
  uint64_t duplicate_hits = 0;       ///< outputs suppressed by the dedup set
  uint64_t peak_memory_bytes = 0;
};

/// Enumerates all distinct temporal k-cores of `g` within `range` with the
/// OTCD baseline, streaming into `sink`.
[[nodiscard]] Status RunOtcd(const TemporalGraph& g, uint32_t k, Window range,
               CoreSink* sink, const OtcdOptions& options = {},
               OtcdStats* stats = nullptr);

}  // namespace tkc

#endif  // TKC_OTCD_OTCD_H_
