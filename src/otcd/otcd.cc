#include "otcd/otcd.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "util/check.h"
#include "util/hash.h"
#include "util/mem.h"

namespace tkc {

namespace {

uint64_t PairKeyOf(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

// Mutable core state for one row scan (copied from the row base).
struct CoreState {
  std::vector<uint8_t> in_core;   // per local vertex
  std::vector<uint32_t> degree;   // distinct live neighbors, per local vertex
  std::vector<uint32_t> pair_lo;  // first live index into pair_times
  std::vector<uint32_t> pair_hi;  // one past last live index
  std::vector<uint32_t> cnt_t;    // live edges per time slot
  // Doubly linked list of live local edge ids in time order, so a core's
  // edge set is emitted in O(|C|) (the paper's OTCD maintains the core
  // subgraph explicitly). Sentinel head at index num_edges, nil after it.
  std::vector<uint32_t> live_next;
  std::vector<uint32_t> live_prev;
  uint64_t num_live = 0;          // total live edges

  uint64_t ApproxBytes() const {
    return ApproxVectorBytes(in_core) + ApproxVectorBytes(degree) +
           ApproxVectorBytes(pair_lo) + ApproxVectorBytes(pair_hi) +
           ApproxVectorBytes(cnt_t) + ApproxVectorBytes(live_next) +
           ApproxVectorBytes(live_prev) + sizeof(num_live);
  }
};

// Immutable per-query context: local ids, pair structure, per-edge lookups.
class OtcdContext {
 public:
  OtcdContext(const TemporalGraph& g, Window range) : g_(g), range_(range) {
    std::tie(first_edge_, last_edge_) = g.EdgeIdRangeInWindow(range);
    auto edges = g.EdgesInWindow(range);

    // Local vertex ids.
    verts_.reserve(edges.size() * 2);
    for (const TemporalEdge& e : edges) {
      verts_.push_back(e.u);
      verts_.push_back(e.v);
    }
    std::sort(verts_.begin(), verts_.end());
    verts_.erase(std::unique(verts_.begin(), verts_.end()), verts_.end());

    // Pair ids.
    std::vector<uint64_t> keys;
    keys.reserve(edges.size());
    for (const TemporalEdge& e : edges) keys.push_back(PairKeyOf(e.u, e.v));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    pair_keys_ = std::move(keys);

    // Per-edge precomputed lookups.
    const uint32_t m = num_edges();
    edge_pair_.resize(m);
    edge_lu_.resize(m);
    edge_lv_.resize(m);
    for (uint32_t i = 0; i < m; ++i) {
      const TemporalEdge& e = edges[i];
      edge_pair_[i] = PairIdOf(e.u, e.v);
      edge_lu_[i] = LocalOf(e.u);
      edge_lv_[i] = LocalOf(e.v);
    }

    // Per-pair sorted time lists (edges arrive time-sorted, cursor fill
    // keeps each pair's list ascending).
    const uint32_t np = num_pairs();
    pt_offsets_.assign(np + 1, 0);
    for (uint32_t i = 0; i < m; ++i) ++pt_offsets_[edge_pair_[i] + 1];
    for (uint32_t i = 1; i <= np; ++i) pt_offsets_[i] += pt_offsets_[i - 1];
    pair_times_.resize(m);
    pair_edge_.resize(m);
    {
      std::vector<uint32_t> cursor(pt_offsets_.begin(), pt_offsets_.end() - 1);
      for (uint32_t i = 0; i < m; ++i) {
        uint32_t p = edge_pair_[i];
        pair_times_[cursor[p]] = edges[i].t;
        pair_edge_[cursor[p]++] = first_edge_ + i;
      }
    }

    // Per-pair endpoint local ids.
    pair_lu_.resize(np);
    pair_lv_.resize(np);
    for (uint32_t p = 0; p < np; ++p) {
      pair_lu_[p] = LocalOf(static_cast<VertexId>(pair_keys_[p] >> 32));
      pair_lv_[p] = LocalOf(static_cast<VertexId>(pair_keys_[p] & 0xffffffffu));
    }

    // Per-vertex incident pair CSR.
    vp_offsets_.assign(num_verts() + 1, 0);
    for (uint32_t p = 0; p < np; ++p) {
      ++vp_offsets_[pair_lu_[p] + 1];
      ++vp_offsets_[pair_lv_[p] + 1];
    }
    for (size_t i = 1; i < vp_offsets_.size(); ++i) {
      vp_offsets_[i] += vp_offsets_[i - 1];
    }
    vp_pair_.resize(vp_offsets_.back());
    vp_other_.resize(vp_offsets_.back());
    {
      std::vector<uint32_t> cursor(vp_offsets_.begin(), vp_offsets_.end() - 1);
      for (uint32_t p = 0; p < np; ++p) {
        vp_pair_[cursor[pair_lu_[p]]] = p;
        vp_other_[cursor[pair_lu_[p]]++] = pair_lv_[p];
        vp_pair_[cursor[pair_lv_[p]]] = p;
        vp_other_[cursor[pair_lv_[p]]++] = pair_lu_[p];
      }
    }
  }

  const TemporalGraph& graph() const { return g_; }
  Window range() const { return range_; }
  uint32_t num_verts() const { return static_cast<uint32_t>(verts_.size()); }
  uint32_t num_pairs() const {
    return static_cast<uint32_t>(pair_keys_.size());
  }
  uint32_t num_edges() const { return last_edge_ - first_edge_; }
  EdgeId first_edge() const { return first_edge_; }

  uint32_t LocalOf(VertexId v) const {
    auto it = std::lower_bound(verts_.begin(), verts_.end(), v);
    TKC_DCHECK(it != verts_.end() && *it == v);
    return static_cast<uint32_t>(it - verts_.begin());
  }
  uint32_t PairIdOf(VertexId u, VertexId v) const {
    auto it = std::lower_bound(pair_keys_.begin(), pair_keys_.end(),
                               PairKeyOf(u, v));
    TKC_DCHECK(it != pair_keys_.end());
    return static_cast<uint32_t>(it - pair_keys_.begin());
  }

  // Per-edge lookups (edge id is LOCAL: global - first_edge).
  uint32_t EdgePair(uint32_t le) const { return edge_pair_[le]; }
  uint32_t EdgeLu(uint32_t le) const { return edge_lu_[le]; }
  uint32_t EdgeLv(uint32_t le) const { return edge_lv_[le]; }

  // Per-pair accessors.
  uint32_t PairTimesBegin(uint32_t p) const { return pt_offsets_[p]; }
  uint32_t PairTimesEnd(uint32_t p) const { return pt_offsets_[p + 1]; }
  Timestamp PairTimeAt(uint32_t i) const { return pair_times_[i]; }
  EdgeId PairEdgeAt(uint32_t i) const { return pair_edge_[i]; }
  uint32_t PairLu(uint32_t p) const { return pair_lu_[p]; }
  uint32_t PairLv(uint32_t p) const { return pair_lv_[p]; }

  // Incident pairs of a local vertex.
  std::pair<uint32_t, uint32_t> VertexPairRange(uint32_t lv) const {
    return {vp_offsets_[lv], vp_offsets_[lv + 1]};
  }
  uint32_t IncidentPair(uint32_t i) const { return vp_pair_[i]; }
  uint32_t IncidentOther(uint32_t i) const { return vp_other_[i]; }

  uint64_t ApproxBytes() const {
    return ApproxVectorBytes(verts_) + ApproxVectorBytes(pair_keys_) +
           ApproxVectorBytes(edge_pair_) + ApproxVectorBytes(edge_lu_) +
           ApproxVectorBytes(edge_lv_) + ApproxVectorBytes(pt_offsets_) +
           ApproxVectorBytes(pair_times_) + ApproxVectorBytes(pair_edge_) +
           ApproxVectorBytes(pair_lu_) + ApproxVectorBytes(pair_lv_) +
           ApproxVectorBytes(vp_offsets_) + ApproxVectorBytes(vp_pair_) +
           ApproxVectorBytes(vp_other_);
  }

 private:
  const TemporalGraph& g_;
  Window range_;
  EdgeId first_edge_ = 0, last_edge_ = 0;
  std::vector<VertexId> verts_;
  std::vector<uint64_t> pair_keys_;
  std::vector<uint32_t> edge_pair_, edge_lu_, edge_lv_;
  std::vector<uint32_t> pt_offsets_;
  std::vector<Timestamp> pair_times_;
  std::vector<EdgeId> pair_edge_;
  std::vector<uint32_t> pair_lu_, pair_lv_;
  std::vector<uint32_t> vp_offsets_, vp_pair_, vp_other_;
};

// The peeler mutating a CoreState.
class Peeler {
 public:
  Peeler(const OtcdContext& ctx, uint32_t k) : ctx_(ctx), k_(k) {}

  // Unlinks a local edge id from the live-edge list.
  void UnlinkEdge(CoreState* s, uint32_t le) {
    s->live_next[s->live_prev[le]] = s->live_next[le];
    uint32_t nxt = s->live_next[le];
    if (nxt != ctx_.num_edges() + 1) s->live_prev[nxt] = s->live_prev[le];
  }

  // Kills pair p's remaining live edges (updates cnt_t / num_live / list).
  void KillPairEdges(CoreState* s, uint32_t p) {
    for (uint32_t i = s->pair_lo[p]; i < s->pair_hi[p]; ++i) {
      --s->cnt_t[ctx_.PairTimeAt(i) - ctx_.range().start];
      --s->num_live;
      UnlinkEdge(s, ctx_.PairEdgeAt(i) - ctx_.first_edge());
    }
    s->pair_hi[p] = s->pair_lo[p];
  }

  void MaybeEnqueue(CoreState* s, uint32_t lv) {
    if (s->in_core[lv] && s->degree[lv] < k_) stack_.push_back(lv);
  }

  // Cascade-removes every queued vertex with degree < k.
  void Cascade(CoreState* s) {
    while (!stack_.empty()) {
      uint32_t lu = stack_.back();
      stack_.pop_back();
      if (!s->in_core[lu] || s->degree[lu] >= k_) continue;
      s->in_core[lu] = 0;
      auto [b, e] = ctx_.VertexPairRange(lu);
      for (uint32_t i = b; i < e; ++i) {
        uint32_t p = ctx_.IncidentPair(i);
        if (s->pair_lo[p] == s->pair_hi[p]) continue;  // already dead
        KillPairEdges(s, p);
        uint32_t lw = ctx_.IncidentOther(i);
        if (s->in_core[lw]) {
          --s->degree[lw];
          MaybeEnqueue(s, lw);
        }
      }
    }
  }

  // Deletes all window edges timestamped `t`, from the right (t is the
  // current maximum live time) or the left (t is the minimum); then peels.
  enum class Side { kRight, kLeft };
  void DeleteEdgesAtTime(CoreState* s, Timestamp t, Side side) {
    auto [lo, hi] = ctx_.graph().EdgeIdRangeAtTime(t);
    for (EdgeId e = lo; e < hi; ++e) {
      uint32_t le = e - ctx_.first_edge();
      uint32_t p = ctx_.EdgePair(le);
      if (s->pair_lo[p] == s->pair_hi[p]) continue;  // pair already dead
      // Unlink by slice position (not by `le`): with exact-duplicate edges
      // several ids share (u,v,t), and the slice position is what uniquely
      // identifies the live instance being removed.
      if (side == Side::kRight) {
        TKC_DCHECK(ctx_.PairTimeAt(s->pair_hi[p] - 1) == t);
        --s->pair_hi[p];
        UnlinkEdge(s, ctx_.PairEdgeAt(s->pair_hi[p]) - ctx_.first_edge());
      } else {
        TKC_DCHECK(ctx_.PairTimeAt(s->pair_lo[p]) == t);
        UnlinkEdge(s, ctx_.PairEdgeAt(s->pair_lo[p]) - ctx_.first_edge());
        ++s->pair_lo[p];
      }
      --s->cnt_t[t - ctx_.range().start];
      --s->num_live;
      if (s->pair_lo[p] == s->pair_hi[p]) {
        uint32_t lu = ctx_.EdgeLu(le), lv = ctx_.EdgeLv(le);
        TKC_DCHECK(s->in_core[lu] && s->in_core[lv]);
        --s->degree[lu];
        --s->degree[lv];
        MaybeEnqueue(s, lu);
        MaybeEnqueue(s, lv);
      }
    }
    Cascade(s);
  }

  // Builds the base core of the widest window [range.start, range.end].
  void InitializeBase(CoreState* s) {
    const Window range = ctx_.range();
    const uint32_t nv = ctx_.num_verts();
    const uint32_t np = ctx_.num_pairs();
    s->in_core.assign(nv, 1);
    s->degree.assign(nv, 0);
    s->pair_lo.resize(np);
    s->pair_hi.resize(np);
    for (uint32_t p = 0; p < np; ++p) {
      s->pair_lo[p] = ctx_.PairTimesBegin(p);
      s->pair_hi[p] = ctx_.PairTimesEnd(p);
      ++s->degree[ctx_.PairLu(p)];
      ++s->degree[ctx_.PairLv(p)];
    }
    s->cnt_t.assign(range.end - range.start + 1, 0);
    s->num_live = ctx_.num_edges();
    for (uint32_t le = 0; le < ctx_.num_edges(); ++le) {
      ++s->cnt_t[ctx_.graph().edge(ctx_.first_edge() + le).t - range.start];
    }
    // Live-edge list: all window edges in id (== time) order.
    const uint32_t m = ctx_.num_edges();
    const uint32_t head = m, nil = m + 1;
    s->live_next.resize(m + 2);
    s->live_prev.resize(m + 2);
    for (uint32_t le = 0; le < m; ++le) {
      s->live_next[le] = le + 1 < m ? le + 1 : nil;
      s->live_prev[le] = le > 0 ? le - 1 : head;
    }
    s->live_next[head] = m > 0 ? 0 : nil;
    s->live_prev[head] = nil;
    for (uint32_t lv = 0; lv < nv; ++lv) MaybeEnqueue(s, lv);
    Cascade(s);
  }

 private:
  const OtcdContext& ctx_;
  const uint32_t k_;
  std::vector<uint32_t> stack_;
};

// Sorted, merged pruned-interval list for one row.
class PrunedRow {
 public:
  explicit PrunedRow(std::vector<std::pair<Timestamp, Timestamp>> raw) {
    std::sort(raw.begin(), raw.end());
    for (const auto& iv : raw) {
      if (!merged_.empty() && iv.first <= merged_.back().second + 1) {
        merged_.back().second = std::max(merged_.back().second, iv.second);
      } else {
        merged_.push_back(iv);
      }
    }
  }

  bool Contains(Timestamp t) const {
    auto it = std::upper_bound(
        merged_.begin(), merged_.end(), t,
        [](Timestamp x, const auto& iv) { return x < iv.first; });
    return it != merged_.begin() && (it - 1)->second >= t;
  }

 private:
  std::vector<std::pair<Timestamp, Timestamp>> merged_;
};

}  // namespace

Status RunOtcd(const TemporalGraph& g, uint32_t k, Window range,
               CoreSink* sink, const OtcdOptions& options, OtcdStats* stats) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (range.start < 1 || range.end > g.num_timestamps() ||
      range.start > range.end) {
    return Status::InvalidArgument("query range outside the graph's time span");
  }
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");

  auto [first_edge, last_edge] = g.EdgeIdRangeInWindow(range);
  if (first_edge == last_edge) return Status::OK();  // empty window

  OtcdContext ctx(g, range);
  Peeler peeler(ctx, k);

  CoreState base;
  peeler.InitializeBase(&base);

  const uint32_t t_slots = range.end - range.start + 1;
  // Pruned intervals per row, appended by earlier rows' rectangles.
  std::vector<std::vector<std::pair<Timestamp, Timestamp>>> pruned_raw(
      t_slots);
  uint64_t pruned_marks_bytes = 0;

  // Dedup fingerprints of emitted cores.
  std::unordered_set<uint64_t> emitted;

  std::vector<EdgeId> out_edges;
  CoreState work;
  uint64_t peak_bytes = ctx.ApproxBytes() + base.ApproxBytes();

  for (Timestamp ts = range.start; ts <= range.end; ++ts) {
    if (options.deadline.Expired()) {
      return Status::Timeout("OTCD exceeded its deadline");
    }
    // Advance the row base to the core of [ts, range.end].
    if (ts > range.start) {
      peeler.DeleteEdgesAtTime(&base, ts - 1, Peeler::Side::kLeft);
    }
    if (base.num_live == 0) break;  // all narrower windows are empty too

    PrunedRow pruned(std::move(pruned_raw[ts - range.start]));
    pruned_raw[ts - range.start].clear();

    work = base;  // row working copy
    peak_bytes = std::max(
        peak_bytes, ctx.ApproxBytes() + base.ApproxBytes() +
                        work.ApproxBytes() + pruned_marks_bytes +
                        emitted.size() * 16);

    Timestamp te = range.end;
    Timestamp min_t = ts, max_t = te;
    while (work.num_live > 0) {
      if (stats != nullptr) ++stats->cells_visited;
      // TTI of the current core: [min live time, max live time].
      while (work.cnt_t[max_t - range.start] == 0) --max_t;
      while (work.cnt_t[min_t - range.start] == 0) ++min_t;
      const Window tti{min_t, max_t};
      if (stats != nullptr) stats->cells_skipped_by_por += te - max_t;

      bool suppressed = false;
      if (options.cross_row_pruning && pruned.Contains(max_t)) {
        suppressed = true;  // rectangle of an earlier row covers this core
        if (stats != nullptr) ++stats->outputs_pruned;
      }
      if (!suppressed) {
        // Materialize the core: walk the live-edge list, O(|C|).
        out_edges.clear();
        SetHash128 h;
        const uint32_t nil = ctx.num_edges() + 1;
        for (uint32_t le = work.live_next[ctx.num_edges()]; le != nil;
             le = work.live_next[le]) {
          EdgeId e = ctx.first_edge() + le;
          out_edges.push_back(e);
          h.Add(e);
        }
        TKC_DCHECK(out_edges.size() == work.num_live);
        if (emitted.insert(h.Digest64()).second) {
          sink->OnCore(tti, out_edges);
          if (stats != nullptr) {
            ++stats->num_cores;
            stats->result_size_edges += out_edges.size();
          }
        } else if (stats != nullptr) {
          ++stats->duplicate_hits;
        }
      }
      // Cross-row rectangle marks: rows (ts, tti.start] share this core on
      // end times [tti.end, te].
      if (options.cross_row_pruning && tti.start > ts) {
        for (Timestamp r = ts + 1; r <= tti.start; ++r) {
          pruned_raw[r - range.start].emplace_back(tti.end, te);
          pruned_marks_bytes += sizeof(std::pair<Timestamp, Timestamp>);
        }
      }
      // PoR: all end times in [tti.end, te] share this core; the next
      // distinct core needs te < tti.end.
      if (tti.end <= ts) break;  // cannot shrink below the start time
      peeler.DeleteEdgesAtTime(&work, tti.end, Peeler::Side::kRight);
      te = tti.end - 1;
      max_t = std::min(max_t, te);
      if (min_t > max_t) break;
    }
  }
  if (stats != nullptr) {
    stats->peak_memory_bytes =
        std::max(peak_bytes, ctx.ApproxBytes() + base.ApproxBytes() +
                                 work.ApproxBytes() + pruned_marks_bytes +
                                 emitted.size() * 16);
  }
  return Status::OK();
}

}  // namespace tkc
