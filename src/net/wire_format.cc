#include "net/wire_format.h"

#include <cstring>

namespace tkc::net {

namespace {

void PutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const char* p) {
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(b[0] | (b[1] << 8));
}

uint32_t GetU32(const char* p) {
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

void AppendHeader(FrameType type, uint32_t payload_len, std::string* out) {
  out->append(reinterpret_cast<const char*>(kWireMagic), 4);
  out->push_back(static_cast<char>(kWireVersion));
  out->push_back(static_cast<char>(type));
  PutU16(0, out);  // reserved
  PutU32(payload_len, out);
}

/// A cursor over one frame's payload bytes for the fixed-size readers.
struct PayloadReader {
  const char* data;
  size_t len;
  size_t pos = 0;

  bool HasBytes(size_t n) const { return len - pos >= n; }
  uint32_t U32() {
    uint32_t v = GetU32(data + pos);
    pos += 4;
    return v;
  }
  uint64_t U64() {
    uint64_t v = GetU64(data + pos);
    pos += 8;
    return v;
  }
};

const uint64_t* StatsFieldsBegin(const ServerStats& stats) {
  static_assert(sizeof(ServerStats) == kServerStatsCounters * sizeof(uint64_t),
                "ServerStats gained a field: bump kServerStatsCounters and "
                "keep appended fields at the end of the struct");
  return &stats.connections_accepted;
}

uint64_t* StatsFieldsBegin(ServerStats& stats) {
  return &stats.connections_accepted;
}

}  // namespace

bool IsClientFrameType(FrameType type) {
  return type == FrameType::kQueryRequest || type == FrameType::kStatsRequest;
}

void AppendQueryRequest(const QueryRequestFrame& frame, std::string* out) {
  const uint32_t n = static_cast<uint32_t>(frame.queries.size());
  AppendHeader(FrameType::kQueryRequest, 16 + 12 * n, out);
  PutU64(frame.request_id, out);
  PutU32(frame.deadline_ms, out);
  PutU32(n, out);
  for (const Query& q : frame.queries) {
    PutU32(q.k, out);
    PutU32(q.range.start, out);
    PutU32(q.range.end, out);
  }
}

void AppendVerdict(const VerdictFrame& frame, std::string* out) {
  AppendHeader(FrameType::kVerdict, 48, out);
  PutU64(frame.request_id, out);
  PutU32(frame.query_index, out);
  PutU32(frame.status_code, out);
  PutU64(frame.num_cores, out);
  PutU64(frame.result_size_edges, out);
  PutU64(frame.vct_size, out);
  PutU64(frame.ecs_size, out);
}

void AppendBatchEnd(const BatchEndFrame& frame, std::string* out) {
  AppendHeader(FrameType::kBatchEnd, 20, out);
  PutU64(frame.request_id, out);
  PutU64(frame.snapshot_version, out);
  PutU32(frame.num_queries, out);
}

void AppendStatsRequest(uint64_t request_id, std::string* out) {
  AppendHeader(FrameType::kStatsRequest, 8, out);
  PutU64(request_id, out);
}

void AppendStatsResponse(uint64_t request_id, const ServerStats& stats,
                         std::string* out) {
  AppendHeader(FrameType::kStatsResponse, 12 + 8 * kServerStatsCounters, out);
  PutU64(request_id, out);
  PutU32(kServerStatsCounters, out);
  const uint64_t* fields = StatsFieldsBegin(stats);
  for (uint32_t i = 0; i < kServerStatsCounters; ++i) PutU64(fields[i], out);
}

void AppendError(const ErrorFrame& frame, std::string* out) {
  const uint32_t msg_len = static_cast<uint32_t>(frame.message.size());
  AppendHeader(FrameType::kError, 16 + msg_len, out);
  PutU64(frame.request_id, out);
  PutU32(frame.status_code, out);
  PutU32(msg_len, out);
  out->append(frame.message);
}

uint32_t StatusCodeToWire(StatusCode code) {
  return static_cast<uint32_t>(code);
}

StatusCode StatusCodeFromWire(uint32_t wire) {
  if (wire > static_cast<uint32_t>(StatusCode::kInternal)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(wire);
}

FrameParser::Result FrameParser::Next(Frame* frame) {
  if (!error_.ok()) return Result::kError;
  // Compact once parsed-away bytes dominate, so the buffer never grows
  // proportional to total traffic.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const char* base = buffer_.data() + consumed_;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Result::kNeedMore;

  if (std::memcmp(base, kWireMagic, 4) != 0) {
    return Poison(Status::InvalidArgument("bad frame magic"));
  }
  const uint8_t version = static_cast<uint8_t>(base[4]);
  if (version != kWireVersion) {
    return Poison(Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(version)));
  }
  const uint8_t raw_type = static_cast<uint8_t>(base[5]);
  if (raw_type < static_cast<uint8_t>(FrameType::kQueryRequest) ||
      raw_type > static_cast<uint8_t>(FrameType::kError)) {
    return Poison(Status::InvalidArgument("unknown frame type " +
                                          std::to_string(raw_type)));
  }
  if (GetU16(base + 6) != 0) {
    return Poison(Status::InvalidArgument("nonzero reserved header bytes"));
  }
  const uint32_t payload_len = GetU32(base + 8);
  if (payload_len > max_payload_bytes_) {
    return Poison(Status::InvalidArgument(
        "oversized frame payload (" + std::to_string(payload_len) + " > " +
        std::to_string(max_payload_bytes_) + " bytes)"));
  }
  if (available < kFrameHeaderBytes + payload_len) return Result::kNeedMore;

  PayloadReader in{base + kFrameHeaderBytes, payload_len};
  *frame = Frame();
  frame->type = static_cast<FrameType>(raw_type);
  switch (frame->type) {
    case FrameType::kQueryRequest: {
      if (payload_len < 16) {
        return Poison(Status::InvalidArgument("query request too short"));
      }
      frame->query_request.request_id = in.U64();
      frame->query_request.deadline_ms = in.U32();
      const uint32_t n = in.U32();
      if (n == 0 || n > max_queries_) {
        return Poison(Status::InvalidArgument(
            "query count " + std::to_string(n) + " outside [1, " +
            std::to_string(max_queries_) + "]"));
      }
      if (payload_len != 16 + 12ull * n) {
        return Poison(
            Status::InvalidArgument("query request length mismatch"));
      }
      frame->query_request.queries.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Query q;
        q.k = in.U32();
        q.range.start = in.U32();
        q.range.end = in.U32();
        frame->query_request.queries.push_back(q);
      }
      break;
    }
    case FrameType::kVerdict: {
      if (payload_len != 48) {
        return Poison(Status::InvalidArgument("verdict length mismatch"));
      }
      frame->verdict.request_id = in.U64();
      frame->verdict.query_index = in.U32();
      frame->verdict.status_code = in.U32();
      frame->verdict.num_cores = in.U64();
      frame->verdict.result_size_edges = in.U64();
      frame->verdict.vct_size = in.U64();
      frame->verdict.ecs_size = in.U64();
      break;
    }
    case FrameType::kBatchEnd: {
      if (payload_len != 20) {
        return Poison(Status::InvalidArgument("batch end length mismatch"));
      }
      frame->batch_end.request_id = in.U64();
      frame->batch_end.snapshot_version = in.U64();
      frame->batch_end.num_queries = in.U32();
      break;
    }
    case FrameType::kStatsRequest: {
      if (payload_len != 8) {
        return Poison(
            Status::InvalidArgument("stats request length mismatch"));
      }
      frame->stats_request_id = in.U64();
      break;
    }
    case FrameType::kStatsResponse: {
      if (payload_len < 12) {
        return Poison(Status::InvalidArgument("stats response too short"));
      }
      frame->stats_response_id = in.U64();
      const uint32_t n = in.U32();
      if (payload_len != 12 + 8ull * n) {
        return Poison(
            Status::InvalidArgument("stats response length mismatch"));
      }
      // Read the counters both sides know; a newer server's extras are
      // skipped, an older server's missing tail stays zero.
      uint64_t* fields = StatsFieldsBegin(frame->stats);
      const uint32_t known =
          n < kServerStatsCounters ? n : kServerStatsCounters;
      for (uint32_t i = 0; i < known; ++i) fields[i] = in.U64();
      break;
    }
    case FrameType::kError: {
      if (payload_len < 16) {
        return Poison(Status::InvalidArgument("error frame too short"));
      }
      frame->error.request_id = in.U64();
      frame->error.status_code = in.U32();
      const uint32_t msg_len = in.U32();
      if (payload_len != 16 + static_cast<uint64_t>(msg_len)) {
        return Poison(Status::InvalidArgument("error frame length mismatch"));
      }
      frame->error.message.assign(in.data + in.pos, msg_len);
      break;
    }
  }
  consumed_ += kFrameHeaderBytes + payload_len;
  return Result::kFrame;
}

}  // namespace tkc::net
