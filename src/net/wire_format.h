#ifndef TKC_NET_WIRE_FORMAT_H_
#define TKC_NET_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "workload/query_workload.h"

/// \file wire_format.h
/// The TKC wire protocol: a length-prefixed binary framing shared by
/// TkcServer and TkcClient. Deliberately dependency-free (no protobuf, no
/// HTTP): every frame is a fixed 12-byte header followed by a typed
/// little-endian payload, so both sides parse with bounded state and a
/// malformed stream is detectable at the first bad header.
///
/// Frame header (12 bytes, little-endian):
///
///   offset 0  u8[4]  magic       'T' 'K' 'C' '1'
///   offset 4  u8     version     kWireVersion (1)
///   offset 5  u8     type        FrameType
///   offset 6  u16    reserved    must be 0
///   offset 8  u32    payload_len <= kMaxPayloadBytes
///
/// Payloads by type (all integers little-endian):
///
///   kQueryRequest (client -> server):
///     u64 request_id        caller-chosen correlation id
///     u32 deadline_ms       0 = unlimited; else the deadline starts ticking
///                           when the server decodes the frame
///     u32 num_queries       <= kMaxQueriesPerRequest, >= 1
///     num_queries x { u32 k, u32 range_start, u32 range_end }
///
///   kVerdict (server -> client, one per query, streamed as the batch
///   completes; all verdicts of one request are contiguous on the wire):
///     u64 request_id
///     u32 query_index
///     u32 status_code       StatusCode as u32 (message not carried)
///     u64 num_cores
///     u64 result_size_edges
///     u64 vct_size
///     u64 ecs_size
///
///   kBatchEnd (server -> client, closes one request):
///     u64 request_id
///     u64 snapshot_version  graph version the batch was pinned to
///     u32 num_queries       must equal the count of preceding verdicts
///
///   kStatsRequest (client -> server):
///     u64 request_id
///
///   kStatsResponse (server -> client):
///     u64 request_id
///     u32 num_counters      ServerStats fields, in declaration order; a
///                           newer server may append counters, a client
///                           reads the ones it knows
///     num_counters x u64
///
///   kError (server -> client; the connection closes after a framing-level
///   error, stays open after a request-level one):
///     u64 request_id        0 when the error is not attributable
///     u32 status_code
///     u32 message_len
///     message_len x u8
///
/// Deadline semantics over the wire: deadline_ms is a *budget*, not an
/// absolute instant (clocks are not assumed synchronized). The server
/// starts the deadline at frame decode and propagates it into
/// LiveQueryEngine::SubmitAsync, so a backed-up request queue sheds by
/// remaining budget exactly as an in-process submission would — the client
/// sees explicit Timeout / ResourceExhausted verdicts, never silence.

namespace tkc::net {

inline constexpr uint8_t kWireMagic[4] = {'T', 'K', 'C', '1'};
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;
inline constexpr uint32_t kMaxQueriesPerRequest = 4096;

enum class FrameType : uint8_t {
  kQueryRequest = 1,
  kVerdict = 2,
  kBatchEnd = 3,
  kStatsRequest = 4,
  kStatsResponse = 5,
  kError = 6,
};

/// True for types a client is allowed to send.
bool IsClientFrameType(FrameType type);

/// Monotone counters describing everything a TkcServer observed, and the
/// payload of the kStatsResponse frame (fields are serialized in
/// declaration order — append new counters at the end only).
///
/// Invariants once the server has quiesced (no open connections, nothing
/// in flight) — the abuse tests assert these after every scenario:
///   batches_submitted == batches_completed
///   batches_completed == responses_streamed + responses_dropped
///   connections_accepted == connections_closed + connections_dropped
struct ServerStats {
  uint64_t connections_accepted = 0;  ///< accept() handshakes completed
  uint64_t connections_closed = 0;    ///< closed cleanly (EOF, all settled)
  uint64_t connections_dropped = 0;   ///< protocol abuse, overflow, timeout,
                                      ///< reset, or server stop
  uint64_t accept_failures = 0;       ///< accept() errors (net.accept_fail)
  uint64_t frames_parsed = 0;         ///< well-formed frames decoded
  uint64_t frames_rejected = 0;       ///< framing/validation errors
  uint64_t requests_received = 0;     ///< well-formed query requests
  uint64_t batches_submitted = 0;     ///< requests submitted to the engine
  uint64_t batches_completed = 0;     ///< engine verdicts settled (streamed,
                                      ///< dropped, or settled at Stop)
  uint64_t responses_streamed = 0;    ///< verdicts written toward a live conn
  uint64_t responses_dropped = 0;     ///< verdicts whose connection was gone
  uint64_t batches_shed = 0;          ///< completed all-ResourceExhausted
  uint64_t deadlines_expired = 0;     ///< completed all-Timeout (wire
                                      ///< deadline ran out before execution)
  uint64_t stats_requests = 0;        ///< kStatsRequest frames served
  uint64_t errors_sent = 0;           ///< kError frames written
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

/// Number of u64 counters ServerStats serializes (kept next to the struct
/// so adding a field updates both).
inline constexpr uint32_t kServerStatsCounters = 17;

struct QueryRequestFrame {
  uint64_t request_id = 0;
  uint32_t deadline_ms = 0;
  std::vector<Query> queries;
};

struct VerdictFrame {
  uint64_t request_id = 0;
  uint32_t query_index = 0;
  uint32_t status_code = 0;
  uint64_t num_cores = 0;
  uint64_t result_size_edges = 0;
  uint64_t vct_size = 0;
  uint64_t ecs_size = 0;
};

struct BatchEndFrame {
  uint64_t request_id = 0;
  uint64_t snapshot_version = 0;
  uint32_t num_queries = 0;
};

struct ErrorFrame {
  uint64_t request_id = 0;
  uint32_t status_code = 0;
  std::string message;
};

/// One decoded frame: `type` selects which member is meaningful.
struct Frame {
  FrameType type = FrameType::kError;
  QueryRequestFrame query_request;
  VerdictFrame verdict;
  BatchEndFrame batch_end;
  uint64_t stats_request_id = 0;
  uint64_t stats_response_id = 0;
  ServerStats stats;
  ErrorFrame error;
};

// --- encoders (append one whole frame, header included, to *out) -----------

void AppendQueryRequest(const QueryRequestFrame& frame, std::string* out);
void AppendVerdict(const VerdictFrame& frame, std::string* out);
void AppendBatchEnd(const BatchEndFrame& frame, std::string* out);
void AppendStatsRequest(uint64_t request_id, std::string* out);
void AppendStatsResponse(uint64_t request_id, const ServerStats& stats,
                         std::string* out);
void AppendError(const ErrorFrame& frame, std::string* out);

/// `code` as a wire status_code, and back. Unknown wire values decode to
/// StatusCode::kInternal (never silently OK).
uint32_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint32_t wire);

/// Incremental frame parser: feed raw bytes in arbitrary chunks (short
/// reads included), pop complete frames. The first malformed byte sequence
/// poisons the stream — Next() returns kError from then on and error()
/// explains; a framing error leaves no way to resynchronize, so the owner
/// must close the connection.
class FrameParser {
 public:
  explicit FrameParser(uint32_t max_payload_bytes = kMaxPayloadBytes,
                       uint32_t max_queries = kMaxQueriesPerRequest)
      : max_payload_bytes_(max_payload_bytes), max_queries_(max_queries) {}

  void Feed(const char* data, size_t len) { buffer_.append(data, len); }

  enum class Result {
    kFrame,     ///< *frame holds the next complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< stream poisoned; see error()
  };

  Result Next(Frame* frame);

  const Status& error() const { return error_; }
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  Result Poison(Status status) {
    error_ = std::move(status);
    return Result::kError;
  }

  uint32_t max_payload_bytes_;
  uint32_t max_queries_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< bytes of buffer_ already parsed away
  Status error_;
};

}  // namespace tkc::net

#endif  // TKC_NET_WIRE_FORMAT_H_
