#ifndef TKC_NET_CLIENT_H_
#define TKC_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/wire_format.h"
#include "util/status.h"
#include "workload/query_workload.h"

/// \file client.h
/// TkcClient: the blocking client side of the TKC wire protocol — the
/// library under `tkc_cli --connect`, the network differential harness, and
/// the wire benchmarks. One client owns one TCP connection; it is NOT
/// thread-safe (use one client per submitting thread — the server happily
/// multiplexes many connections).
///
/// The protocol allows pipelining: Send() any number of requests, then
/// Wait() them in any order — responses for other requests encountered
/// while waiting are buffered and handed out when their turn comes.

namespace tkc::net {

/// One fully reassembled response batch.
struct ClientResponse {
  uint64_t request_id = 0;
  /// The graph version the batch was pinned to on the server.
  uint64_t snapshot_version = 0;
  /// verdicts[i] answers queries[i] of the request (reordered by
  /// query_index if the wire ever interleaves, so the index is the truth).
  std::vector<VerdictFrame> verdicts;
};

class TkcClient {
 public:
  /// Connects to a TkcServer (blocking socket). `host` is an IPv4 dotted
  /// quad, e.g. "127.0.0.1".
  static StatusOr<std::unique_ptr<TkcClient>> Connect(const std::string& host,
                                                      uint16_t port);

  ~TkcClient();
  TkcClient(const TkcClient&) = delete;
  TkcClient& operator=(const TkcClient&) = delete;

  /// Sends one query request; returns the request id to Wait() on.
  /// deadline_ms is the wire deadline budget (0 = unlimited); it starts
  /// ticking when the *server* decodes the frame.
  StatusOr<uint64_t> Send(const std::vector<Query>& queries,
                          uint32_t deadline_ms = 0);

  /// Blocks until the response for `request_id` is fully reassembled
  /// (every verdict + the batch end). Returns the server's error status
  /// when the stream carries a kError frame, and IOError when the
  /// connection closes first.
  StatusOr<ClientResponse> Wait(uint64_t request_id);

  /// Send + Wait in one call.
  StatusOr<ClientResponse> Query(const std::vector<Query>& queries,
                                 uint32_t deadline_ms = 0);

  /// Round-trips a kStatsRequest for the server's counters.
  StatusOr<ServerStats> FetchStats();

  /// Writes raw bytes onto the wire, bypassing the encoders — the fuzz and
  /// abuse tests' hook for malformed frames and mid-frame disconnects.
  Status SendRaw(const std::string& bytes);

  /// Half-closes the write side (SHUT_WR): the server sees EOF, settles
  /// what is in flight, and closes cleanly.
  void FinishWrites();

  /// Closes the socket (abrupt, from the server's point of view, if
  /// responses are still in flight). Idempotent; the destructor calls it.
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  TkcClient() = default;

  Status WriteAll(const char* data, size_t len);
  /// Blocks until one more frame is parsed off the wire.
  Status ReadFrame(Frame* frame);
  /// Routes one server frame into the reassembly state. A kError frame
  /// becomes the returned status.
  Status Route(Frame&& frame);

  int fd_ = -1;
  FrameParser parser_;
  uint64_t next_request_id_ = 1;
  /// Batches mid-reassembly (verdicts seen, batch end not yet).
  std::map<uint64_t, ClientResponse> partial_;
  /// Fully reassembled batches nobody has Wait()ed for yet.
  std::map<uint64_t, ClientResponse> ready_;
  /// Stats responses received (keyed by request id).
  std::map<uint64_t, ServerStats> stats_ready_;
};

}  // namespace tkc::net

#endif  // TKC_NET_CLIENT_H_
