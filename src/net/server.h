#ifndef TKC_NET_SERVER_H_
#define TKC_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "net/wire_format.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

/// \file server.h
/// TkcServer: the network front end over LiveQueryEngine — the piece that
/// turns the in-process serving stack into a service. Dependency-free
/// (POSIX sockets + poll), speaking the length-prefixed binary protocol of
/// net/wire_format.h.
///
/// Architecture (a poll-style listener with connection + worker management):
///
///  * **One event-loop thread** owns the listening socket, every
///    connection, and all per-connection state. It polls for readability/
///    writability, reassembles frames from arbitrary read chunks
///    (FrameParser), and writes responses from per-connection outbound
///    buffers — no thread per connection, no blocking I/O.
///  * **Query execution never runs on the loop.** A decoded query request
///    is submitted to the LiveQueryEngine's async path
///    (SubmitAsync(queries, cq, tag)); the engine's pool executes it
///    against the pinned snapshot. A dedicated **completion drainer
///    thread** pops finished batches off the server's BatchCompletionQueue
///    and hands them to the loop (self-pipe wakeup), which streams the
///    per-query verdict frames back.
///  * **Deadlines propagate end to end.** A request's deadline_ms becomes a
///    Deadline at decode time and rides into SubmitAsync — a backed-up
///    request queue sheds the least-remaining-deadline batch over the wire
///    exactly as in-process (explicit ResourceExhausted / Timeout verdicts,
///    never a silently missing answer).
///  * **Slow readers are backpressured, not buffered without bound.** When
///    a connection's outbound buffer exceeds max_outbound_bytes the loop
///    stops reading new requests from it until the peer drains; half-open
///    idle connections are reaped by idle_timeout_seconds.
///  * **Abuse is survivable by construction.** A malformed frame poisons
///    only its own connection: the server answers with one kError frame and
///    closes. An abrupt disconnect with batches in flight never loses
///    accounting — the verdicts complete and are counted responses_dropped.
///
/// Teardown contract: Stop() closes every connection, drains the engine's
/// in-flight async batches (LiveQueryEngine::DrainAsync) while the drainer
/// thread still consumes, then retires the completion queue — so after
/// Stop() returns, no engine-side delivery can touch this object and every
/// submitted batch is accounted (streamed, or dropped). The engine itself
/// stays fully serviceable; the server never owns it.

namespace tkc::net {

struct ServerOptions {
  std::string host = "127.0.0.1";  ///< listen address (IPv4 dotted quad)
  uint16_t port = 0;               ///< 0 = ephemeral; see TkcServer::port()
  int listen_backlog = 64;
  size_t max_connections = 64;  ///< beyond this, accepts are dropped

  /// Framing limits handed to each connection's FrameParser.
  uint32_t max_frame_payload_bytes = kMaxPayloadBytes;
  uint32_t max_queries_per_request = kMaxQueriesPerRequest;

  /// Outbound-buffer threshold per connection: above it the loop stops
  /// reading new requests from that peer (slow-reader backpressure);
  /// reading resumes once the buffer drains below half.
  size_t max_outbound_bytes = 1u << 20;

  /// Reap connections with no wire activity and nothing in flight after
  /// this many seconds (half-open peers). <= 0 disables the sweep.
  double idle_timeout_seconds = 0;

  /// Bound of the completion queue between the engine and the drainer.
  size_t completion_queue_capacity = 256;
};

class TkcServer {
 public:
  /// Binds, listens, and starts the loop + drainer threads. `engine` must
  /// outlive this server (the server never owns it; many servers could
  /// front one engine).
  [[nodiscard]] static StatusOr<std::unique_ptr<TkcServer>> Start(
      LiveQueryEngine* engine, const ServerOptions& options = {});

  /// Stop(), see the teardown contract above.
  ~TkcServer();

  TkcServer(const TkcServer&) = delete;
  TkcServer& operator=(const TkcServer&) = delete;

  /// Idempotent, safe to call concurrently. After it returns: every
  /// connection is closed, every submitted batch is accounted, and no
  /// engine-side delivery can touch this object again.
  void Stop() TKC_EXCLUDES(stop_mu_, completed_mu_, stats_mu_);

  /// The bound port (the ephemeral one when options.port was 0).
  uint16_t port() const { return port_; }

  /// Snapshot of the wire counters (also served over the wire as a
  /// kStatsResponse frame).
  ServerStats stats() const TKC_EXCLUDES(stats_mu_);

 private:
  struct Connection;
  /// One submitted batch awaiting its engine verdicts.
  struct PendingBatch {
    uint64_t conn_serial = 0;
    uint64_t request_id = 0;
    uint32_t num_queries = 0;
  };

  TkcServer(LiveQueryEngine* engine, const ServerOptions& options);

  Status Listen();
  void Wake();
  void EventLoop() TKC_EXCLUDES(completed_mu_, stats_mu_);
  void DrainerLoop() TKC_EXCLUDES(completed_mu_);

  void AcceptNew() TKC_EXCLUDES(stats_mu_);
  void HandleReadable(Connection* conn) TKC_EXCLUDES(stats_mu_);
  /// Flushes the outbound buffer as far as the socket allows. Returns false
  /// when the flush killed the connection (send error -> dropped).
  bool HandleWritable(Connection* conn) TKC_EXCLUDES(stats_mu_);
  void ParseFrames(Connection* conn) TKC_EXCLUDES(stats_mu_);
  void HandleQueryRequest(Connection* conn, QueryRequestFrame request)
      TKC_EXCLUDES(stats_mu_);
  void HandleStatsRequest(Connection* conn, uint64_t request_id)
      TKC_EXCLUDES(stats_mu_);
  void HandleCompletion(BatchResult result) TKC_EXCLUDES(stats_mu_);
  /// Appends one kError frame and flags the connection to flush-then-drop.
  void SendErrorAndClose(Connection* conn, uint64_t request_id,
                         const Status& status) TKC_EXCLUDES(stats_mu_);
  /// Immediate close: protocol abuse, I/O error, overflow, timeout, stop.
  void DropConnection(uint64_t serial) TKC_EXCLUDES(stats_mu_);
  /// Graceful close: peer EOF with everything settled.
  void CloseConnection(uint64_t serial) TKC_EXCLUDES(stats_mu_);
  /// Closes connections that finished flushing (closing flag) or whose
  /// peer half-closed with nothing left in flight.
  void SweepFinished(std::chrono::steady_clock::time_point now)
      TKC_EXCLUDES(stats_mu_);

  LiveQueryEngine* live_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_rx_ = -1;
  int wake_tx_ = -1;

  std::atomic<bool> stopping_{false};
  Mutex stop_mu_;  ///< serializes Stop(); never taken by the loop
  bool stopped_ TKC_GUARDED_BY(stop_mu_) = false;

  // Loop-thread-only state — deliberately NOT annotated: the discipline is
  // thread confinement, not a lock. Only EventLoop (one thread) touches
  // these while the loop runs; Stop() touches them only after joining that
  // thread, so the join is the synchronization edge. Thread-safety
  // analysis has no capability for "owned by thread T"; inventing a mutex
  // just to satisfy it would add a lock the design exists to avoid.
  std::map<uint64_t, std::unique_ptr<Connection>> conns_;
  std::map<uint64_t, PendingBatch> pending_;
  uint64_t next_serial_ = 1;
  uint64_t next_tag_ = 1;
  /// net.write_stall fired this round: poll with a short timeout instead of
  /// re-arming POLLOUT into a busy loop.
  bool write_stalled_ = false;

  BatchCompletionQueue cq_;
  Mutex completed_mu_;
  /// drainer -> loop handoff
  std::deque<BatchResult> completed_ TKC_GUARDED_BY(completed_mu_);

  mutable Mutex stats_mu_;
  ServerStats stats_ TKC_GUARDED_BY(stats_mu_);

  std::thread loop_;
  std::thread drainer_;
};

}  // namespace tkc::net

#endif  // TKC_NET_SERVER_H_
