#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace tkc::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<std::unique_ptr<TkcClient>> TkcClient::Connect(
    const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::unique_ptr<TkcClient> client(new TkcClient());
  client->fd_ = fd;
  return client;
}

TkcClient::~TkcClient() { Close(); }

void TkcClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TkcClient::FinishWrites() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status TkcClient::WriteAll(const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status TkcClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  return WriteAll(bytes.data(), bytes.size());
}

StatusOr<uint64_t> TkcClient::Send(const std::vector<tkc::Query>& queries,
                                   uint32_t deadline_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  if (queries.empty()) {
    return Status::InvalidArgument("empty query batch");
  }
  QueryRequestFrame request;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.queries = queries;
  std::string wire;
  AppendQueryRequest(request, &wire);
  Status sent = WriteAll(wire.data(), wire.size());
  if (!sent.ok()) return sent;
  return request.request_id;
}

Status TkcClient::ReadFrame(Frame* frame) {
  for (;;) {
    switch (parser_.Next(frame)) {
      case FrameParser::Result::kFrame:
        return Status::OK();
      case FrameParser::Result::kError:
        return parser_.error();
      case FrameParser::Result::kNeedMore:
        break;
    }
    char buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      parser_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status TkcClient::Route(Frame&& frame) {
  switch (frame.type) {
    case FrameType::kVerdict: {
      ClientResponse& partial = partial_[frame.verdict.request_id];
      partial.request_id = frame.verdict.request_id;
      partial.verdicts.push_back(frame.verdict);
      return Status::OK();
    }
    case FrameType::kBatchEnd: {
      auto it = partial_.find(frame.batch_end.request_id);
      const size_t have = it == partial_.end() ? 0 : it->second.verdicts.size();
      if (have != frame.batch_end.num_queries) {
        return Status::Internal(
            "batch end for request " +
            std::to_string(frame.batch_end.request_id) + " after " +
            std::to_string(have) + " verdicts, expected " +
            std::to_string(frame.batch_end.num_queries));
      }
      ClientResponse done = std::move(it->second);
      partial_.erase(it);
      done.snapshot_version = frame.batch_end.snapshot_version;
      // The server streams verdicts in order, but the index is the truth.
      std::sort(done.verdicts.begin(), done.verdicts.end(),
                [](const VerdictFrame& a, const VerdictFrame& b) {
                  return a.query_index < b.query_index;
                });
      ready_.emplace(done.request_id, std::move(done));
      return Status::OK();
    }
    case FrameType::kStatsResponse:
      stats_ready_[frame.stats_response_id] = frame.stats;
      return Status::OK();
    case FrameType::kError:
      return Status(StatusCodeFromWire(frame.error.status_code),
                    "server error: " + frame.error.message);
    default:
      return Status::Internal("server sent a client-only frame type");
  }
}

StatusOr<ClientResponse> TkcClient::Wait(uint64_t request_id) {
  if (fd_ < 0 && ready_.find(request_id) == ready_.end()) {
    return Status::FailedPrecondition("client is closed");
  }
  for (;;) {
    auto it = ready_.find(request_id);
    if (it != ready_.end()) {
      ClientResponse response = std::move(it->second);
      ready_.erase(it);
      return response;
    }
    Frame frame;
    Status read = ReadFrame(&frame);
    if (!read.ok()) return read;
    Status routed = Route(std::move(frame));
    if (!routed.ok()) return routed;
  }
}

StatusOr<ClientResponse> TkcClient::Query(
    const std::vector<tkc::Query>& queries, uint32_t deadline_ms) {
  StatusOr<uint64_t> id = Send(queries, deadline_ms);
  if (!id.ok()) return id.status();
  return Wait(*id);
}

StatusOr<ServerStats> TkcClient::FetchStats() {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  const uint64_t request_id = next_request_id_++;
  std::string wire;
  AppendStatsRequest(request_id, &wire);
  Status sent = WriteAll(wire.data(), wire.size());
  if (!sent.ok()) return sent;
  for (;;) {
    auto it = stats_ready_.find(request_id);
    if (it != stats_ready_.end()) {
      ServerStats stats = it->second;
      stats_ready_.erase(it);
      return stats;
    }
    Frame frame;
    Status read = ReadFrame(&frame);
    if (!read.ok()) return read;
    Status routed = Route(std::move(frame));
    if (!routed.ok()) return routed;
  }
}

}  // namespace tkc::net
