#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "util/fault_injection.h"
#include "util/mutex.h"

namespace tkc::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

std::chrono::steady_clock::time_point Now() {
  return std::chrono::steady_clock::now();
}

}  // namespace

/// Per-connection state, owned by the event loop.
struct TkcServer::Connection {
  Connection(uint64_t serial_in, int fd_in, uint32_t max_payload,
             uint32_t max_queries)
      : serial(serial_in),
        fd(fd_in),
        parser(max_payload, max_queries),
        last_active(Now()) {}

  uint64_t serial;
  int fd;
  FrameParser parser;
  std::string outbuf;    ///< encoded-but-unsent response bytes
  size_t out_off = 0;    ///< prefix of outbuf already written
  uint32_t inflight = 0; ///< batches submitted, verdicts not yet settled
  bool read_closed = false;  ///< peer half-closed (EOF seen)
  bool closing = false;      ///< flush outbuf, then drop (error path)
  bool read_paused = false;  ///< slow-reader backpressure engaged
  std::chrono::steady_clock::time_point last_active;

  size_t unsent() const { return outbuf.size() - out_off; }
};

TkcServer::TkcServer(LiveQueryEngine* engine, const ServerOptions& options)
    : live_(engine),
      options_(options),
      cq_(options.completion_queue_capacity > 0
              ? options.completion_queue_capacity
              : 1) {
  if (options_.max_connections == 0) options_.max_connections = 1;
  if (options_.max_outbound_bytes < kFrameHeaderBytes) {
    options_.max_outbound_bytes = kFrameHeaderBytes;
  }
}

StatusOr<std::unique_ptr<TkcServer>> TkcServer::Start(
    LiveQueryEngine* engine, const ServerOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("TkcServer::Start: engine is null");
  }
  std::unique_ptr<TkcServer> server(new TkcServer(engine, options));
  Status listen = server->Listen();
  if (!listen.ok()) return listen;
  server->loop_ = std::thread(&TkcServer::EventLoop, server.get());
  server->drainer_ = std::thread(&TkcServer::DrainerLoop, server.get());
  return server;
}

TkcServer::~TkcServer() { Stop(); }

Status TkcServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  Status nb = SetNonBlocking(listen_fd_);
  if (!nb.ok()) return nb;

  int pipefd[2];
  if (::pipe(pipefd) != 0) return Errno("pipe");
  wake_rx_ = pipefd[0];
  wake_tx_ = pipefd[1];
  nb = SetNonBlocking(wake_rx_);
  if (nb.ok()) nb = SetNonBlocking(wake_tx_);
  return nb;
}

void TkcServer::Wake() {
  char byte = 1;
  // EAGAIN (pipe full) is fine: the loop is already guaranteed to wake.
  [[maybe_unused]] ssize_t n = ::write(wake_tx_, &byte, 1);
}

void TkcServer::DrainerLoop() {
  BatchResult result;
  while (cq_.Next(&result)) {
    {
      MutexLock lock(completed_mu_);
      completed_.push_back(std::move(result));
    }
    Wake();
  }
}

void TkcServer::EventLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> serials;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    serials.clear();
    fds.push_back({wake_rx_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& entry : conns_) {
      const Connection& conn = *entry.second;
      short events = 0;
      if (!conn.read_closed && !conn.closing && !conn.read_paused) {
        events |= POLLIN;
      }
      if (conn.unsent() > 0 && !write_stalled_) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      serials.push_back(entry.first);
    }

    int timeout_ms = options_.idle_timeout_seconds > 0 ? 20 : -1;
    if (write_stalled_) {
      // A stalled write pretends EAGAIN without a kernel edge to wake on:
      // come back shortly instead of spinning on a writable socket.
      write_stalled_ = false;
      timeout_ms = 2;
    }
    ::poll(fds.data(), fds.size(), timeout_ms);
    if (stopping_.load(std::memory_order_acquire)) break;

    if (fds[0].revents & POLLIN) {
      char sink[256];
      while (::read(wake_rx_, sink, sizeof(sink)) > 0) {
      }
    }

    // Stream finished batches before accepting new work: verdicts the
    // drainer queued must not starve behind a busy accept loop.
    for (;;) {
      BatchResult result;
      {
        MutexLock lock(completed_mu_);
        if (completed_.empty()) break;
        result = std::move(completed_.front());
        completed_.pop_front();
      }
      HandleCompletion(std::move(result));
    }

    if (fds[1].revents & POLLIN) AcceptNew();

    for (size_t i = 0; i < serials.size(); ++i) {
      const short revents = fds[i + 2].revents;
      if (revents == 0) continue;
      auto it = conns_.find(serials[i]);
      if (it == conns_.end()) continue;  // closed earlier this round
      Connection* conn = it->second.get();
      if (revents & POLLNVAL) {
        DropConnection(conn->serial);
        continue;
      }
      if ((revents & POLLOUT) && !HandleWritable(conn)) continue;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        if (conn->closing) {
          // Not reading anymore; a hangup means the flush can never land.
          if (revents & (POLLHUP | POLLERR)) DropConnection(conn->serial);
        } else {
          HandleReadable(conn);
        }
      }
    }

    SweepFinished(Now());
  }

  // Teardown on the loop thread: every open connection drops. In-flight
  // batches keep completing into cq_; Stop() settles them.
  std::vector<uint64_t> open;
  open.reserve(conns_.size());
  for (const auto& entry : conns_) open.push_back(entry.first);
  for (uint64_t serial : open) DropConnection(serial);
}

void TkcServer::AcceptNew() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        MutexLock lock(stats_mu_);
        ++stats_.accept_failures;
      }
      return;
    }
    if (FaultFires(kFaultNetAcceptFail)) {
      ::close(fd);
      MutexLock lock(stats_mu_);
      ++stats_.accept_failures;
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      MutexLock lock(stats_mu_);
      ++stats_.accept_failures;
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      MutexLock lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    if (conns_.size() >= options_.max_connections) {
      ::close(fd);
      MutexLock lock(stats_mu_);
      ++stats_.connections_dropped;
      continue;
    }
    const uint64_t serial = next_serial_++;
    conns_.emplace(serial, std::make_unique<Connection>(
                               serial, fd, options_.max_frame_payload_bytes,
                               options_.max_queries_per_request));
  }
}

void TkcServer::HandleReadable(Connection* conn) {
  const uint64_t serial = conn->serial;
  char buf[16384];
  for (;;) {
    size_t want = sizeof(buf);
    if (FaultFires(kFaultNetReadShort)) want = 1;
    const ssize_t n = ::recv(conn->fd, buf, want, 0);
    if (n > 0) {
      {
        MutexLock lock(stats_mu_);
        stats_.bytes_read += static_cast<uint64_t>(n);
      }
      conn->last_active = Now();
      conn->parser.Feed(buf, static_cast<size_t>(n));
      ParseFrames(conn);
      if (conns_.find(serial) == conns_.end()) return;
      if (conn->closing || conn->read_paused) break;
      // A full read may have more behind it; a short one drained the
      // socket (and a 1-byte fault read yields the loop either way).
      if (static_cast<size_t>(n) < want || want == 1) break;
      continue;
    }
    if (n == 0) {
      conn->read_closed = true;  // half-close; settle in-flight, then close
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    DropConnection(serial);  // ECONNRESET and friends
    return;
  }
  if (conn->unsent() > 0) HandleWritable(conn);
}

void TkcServer::ParseFrames(Connection* conn) {
  Frame frame;
  for (;;) {
    const FrameParser::Result result = conn->parser.Next(&frame);
    if (result == FrameParser::Result::kNeedMore) return;
    if (result == FrameParser::Result::kError) {
      {
        MutexLock lock(stats_mu_);
        ++stats_.frames_rejected;
      }
      SendErrorAndClose(conn, 0, conn->parser.error());
      return;
    }
    if (!IsClientFrameType(frame.type)) {
      {
        MutexLock lock(stats_mu_);
        ++stats_.frames_rejected;
      }
      SendErrorAndClose(
          conn, 0,
          Status::InvalidArgument("client sent a server-only frame type"));
      return;
    }
    {
      MutexLock lock(stats_mu_);
      ++stats_.frames_parsed;
    }
    if (frame.type == FrameType::kQueryRequest) {
      HandleQueryRequest(conn, std::move(frame.query_request));
    } else {
      HandleStatsRequest(conn, frame.stats_request_id);
    }
  }
}

void TkcServer::HandleQueryRequest(Connection* conn,
                                   QueryRequestFrame request) {
  {
    MutexLock lock(stats_mu_);
    ++stats_.requests_received;
    ++stats_.batches_submitted;
  }
  // The wire deadline is a budget that starts ticking here, at decode —
  // clocks are not assumed synchronized across the connection.
  Deadline deadline;
  if (request.deadline_ms > 0) {
    deadline = Deadline::AfterSeconds(request.deadline_ms / 1000.0);
  }
  const uint64_t tag = next_tag_++;
  pending_[tag] =
      PendingBatch{conn->serial, request.request_id,
                   static_cast<uint32_t>(request.queries.size())};
  ++conn->inflight;
  live_->SubmitAsync(std::move(request.queries), &cq_, tag, deadline);
}

void TkcServer::HandleStatsRequest(Connection* conn, uint64_t request_id) {
  ServerStats snapshot;
  {
    MutexLock lock(stats_mu_);
    ++stats_.stats_requests;
    snapshot = stats_;
  }
  AppendStatsResponse(request_id, snapshot, &conn->outbuf);
  if (conn->unsent() > options_.max_outbound_bytes) conn->read_paused = true;
}

void TkcServer::HandleCompletion(BatchResult result) {
  auto pending_it = pending_.find(result.tag);
  if (pending_it == pending_.end()) return;
  const PendingBatch pending = pending_it->second;
  pending_.erase(pending_it);

  bool all_shed = !result.outcomes.empty();
  bool all_timeout = !result.outcomes.empty();
  for (const RunOutcome& outcome : result.outcomes) {
    all_shed &= outcome.status.code() == StatusCode::kResourceExhausted;
    all_timeout &= outcome.status.code() == StatusCode::kTimeout;
  }
  {
    MutexLock lock(stats_mu_);
    ++stats_.batches_completed;
    if (all_shed) ++stats_.batches_shed;
    if (all_timeout) ++stats_.deadlines_expired;
  }

  auto conn_it = conns_.find(pending.conn_serial);
  if (conn_it != conns_.end() && conn_it->second->inflight > 0) {
    --conn_it->second->inflight;
  }
  if (conn_it == conns_.end() || conn_it->second->closing) {
    // The peer is gone (abrupt disconnect with batches in flight) or being
    // torn down for protocol abuse: the verdicts are accounted, not sent.
    MutexLock lock(stats_mu_);
    ++stats_.responses_dropped;
    return;
  }
  Connection* conn = conn_it->second.get();
  for (uint32_t i = 0; i < result.outcomes.size(); ++i) {
    const RunOutcome& outcome = result.outcomes[i];
    VerdictFrame verdict;
    verdict.request_id = pending.request_id;
    verdict.query_index = i;
    verdict.status_code = StatusCodeToWire(outcome.status.code());
    verdict.num_cores = outcome.num_cores;
    verdict.result_size_edges = outcome.result_size_edges;
    verdict.vct_size = outcome.vct_size;
    verdict.ecs_size = outcome.ecs_size;
    AppendVerdict(verdict, &conn->outbuf);
  }
  BatchEndFrame end;
  end.request_id = pending.request_id;
  end.snapshot_version = result.snapshot_version;
  end.num_queries = static_cast<uint32_t>(result.outcomes.size());
  AppendBatchEnd(end, &conn->outbuf);
  {
    MutexLock lock(stats_mu_);
    ++stats_.responses_streamed;
  }
  if (conn->unsent() > options_.max_outbound_bytes) conn->read_paused = true;
  HandleWritable(conn);
}

bool TkcServer::HandleWritable(Connection* conn) {
  const uint64_t serial = conn->serial;
  if (conn->out_off > 0 && conn->out_off >= conn->outbuf.size() / 2) {
    conn->outbuf.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  if (conn->unsent() > 0 && FaultFires(kFaultNetWriteStall)) {
    write_stalled_ = true;
    return true;
  }
  while (conn->unsent() > 0) {
    const ssize_t n =
        ::send(conn->fd, conn->outbuf.data() + conn->out_off, conn->unsent(),
               MSG_NOSIGNAL);
    if (n > 0) {
      {
        MutexLock lock(stats_mu_);
        stats_.bytes_written += static_cast<uint64_t>(n);
      }
      conn->out_off += static_cast<size_t>(n);
      conn->last_active = Now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    DropConnection(serial);  // EPIPE/ECONNRESET: peer vanished mid-stream
    return false;
  }
  if (conn->unsent() == 0) {
    conn->outbuf.clear();
    conn->out_off = 0;
  }
  if (conn->read_paused && !conn->closing &&
      conn->unsent() < options_.max_outbound_bytes / 2) {
    conn->read_paused = false;
  }
  return true;
}

void TkcServer::SendErrorAndClose(Connection* conn, uint64_t request_id,
                                  const Status& status) {
  ErrorFrame error;
  error.request_id = request_id;
  error.status_code = StatusCodeToWire(status.code());
  error.message = status.message();
  AppendError(error, &conn->outbuf);
  {
    MutexLock lock(stats_mu_);
    ++stats_.errors_sent;
  }
  conn->closing = true;
  HandleWritable(conn);  // best-effort immediate flush; sweep finishes it
}

void TkcServer::DropConnection(uint64_t serial) {
  auto it = conns_.find(serial);
  if (it == conns_.end()) return;
  ::close(it->second->fd);
  conns_.erase(it);
  MutexLock lock(stats_mu_);
  ++stats_.connections_dropped;
}

void TkcServer::CloseConnection(uint64_t serial) {
  auto it = conns_.find(serial);
  if (it == conns_.end()) return;
  ::close(it->second->fd);
  conns_.erase(it);
  MutexLock lock(stats_mu_);
  ++stats_.connections_closed;
}

void TkcServer::SweepFinished(std::chrono::steady_clock::time_point now) {
  std::vector<uint64_t> to_drop;
  std::vector<uint64_t> to_close;
  for (const auto& entry : conns_) {
    const Connection& conn = *entry.second;
    const bool flushed = conn.unsent() == 0;
    if (conn.closing && flushed) {
      to_drop.push_back(entry.first);
      continue;
    }
    if (conn.read_closed && conn.inflight == 0 && flushed) {
      to_close.push_back(entry.first);
      continue;
    }
    if (options_.idle_timeout_seconds > 0 && conn.inflight == 0 &&
        std::chrono::duration<double>(now - conn.last_active).count() >
            options_.idle_timeout_seconds) {
      to_drop.push_back(entry.first);  // half-open / idle peer
    }
  }
  for (uint64_t serial : to_close) CloseConnection(serial);
  for (uint64_t serial : to_drop) DropConnection(serial);
}

void TkcServer::Stop() {
  MutexLock stop_lock(stop_mu_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  Wake();
  if (loop_.joinable()) loop_.join();
  // The loop is gone but the engine may still be executing batches that
  // will deliver into cq_. Drain them while the drainer thread still
  // consumes (so nothing blocks on a full queue), then retire the queue —
  // after this, no engine-side Deliver can touch this object.
  live_->DrainAsync();
  cq_.Shutdown();
  if (drainer_.joinable()) drainer_.join();
  // Settle what the dead loop never streamed: completions parked in the
  // handoff deque, plus any batch whose delivery the closed queue dropped.
  // Every submitted batch ends accounted (completed + dropped).
  std::deque<BatchResult> leftovers;
  {
    MutexLock lock(completed_mu_);
    leftovers.swap(completed_);
  }
  {
    MutexLock lock(stats_mu_);
    for (const BatchResult& result : leftovers) {
      if (pending_.erase(result.tag) > 0) {
        ++stats_.batches_completed;
        ++stats_.responses_dropped;
      }
    }
    for (const auto& entry : pending_) {
      (void)entry;
      ++stats_.batches_completed;
      ++stats_.responses_dropped;
    }
    pending_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rx_ >= 0) ::close(wake_rx_);
  if (wake_tx_ >= 0) ::close(wake_tx_);
  listen_fd_ = wake_rx_ = wake_tx_ = -1;
  stopped_ = true;
}

ServerStats TkcServer::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace tkc::net
