#include "vct/historical_core.h"

#include "util/check.h"

namespace tkc {

bool VertexInHistoricalCore(const VertexCoreTimeIndex& vct, VertexId u,
                            Window window) {
  TKC_DCHECK(window.ContainedIn(vct.range()));
  return vct.CoreTimeAt(u, window.start) <= window.end;
}

bool EdgeInHistoricalCore(const EdgeCoreWindowSkyline& ecs, EdgeId e,
                          Window window) {
  TKC_DCHECK(window.ContainedIn(ecs.range()));
  // Skyline windows are sorted by start; the first with start >= ts has the
  // smallest end among those, so checking it suffices (Lemma 3 + skyline
  // monotonicity).
  for (const Window& w : ecs.WindowsOf(e)) {
    if (w.start >= window.start) return w.end <= window.end;
  }
  return false;
}

std::vector<VertexId> HistoricalCoreVertices(const VertexCoreTimeIndex& vct,
                                             Window window) {
  std::vector<VertexId> out;
  for (VertexId u = 0; u < vct.num_vertices(); ++u) {
    if (!vct.EntriesOf(u).empty() && VertexInHistoricalCore(vct, u, window)) {
      out.push_back(u);
    }
  }
  return out;
}

std::vector<EdgeId> HistoricalCoreEdges(const EdgeCoreWindowSkyline& ecs,
                                        const TemporalGraph& g,
                                        Window window) {
  std::vector<EdgeId> out;
  auto [lo, hi] = g.EdgeIdRangeInWindow(window);
  lo = std::max(lo, ecs.first_edge());
  hi = std::min(hi, ecs.last_edge());
  for (EdgeId e = lo; e < hi; ++e) {
    if (EdgeInHistoricalCore(ecs, e, window)) out.push_back(e);
  }
  return out;
}

}  // namespace tkc
