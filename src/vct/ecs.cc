#include "vct/ecs.h"

#include "util/check.h"
#include "util/mem.h"

namespace tkc {

uint32_t EdgeCoreWindowSkyline::LocalId(EdgeId e) const {
  TKC_DCHECK(e >= first_edge_ && e < last_edge_);
  return e - first_edge_;
}

EdgeCoreWindowSkyline EdgeCoreWindowSkyline::FromEmissions(
    EdgeId first_edge, EdgeId last_edge, Window range,
    std::span<const std::pair<EdgeId, Window>> emissions) {
  TKC_CHECK_LE(first_edge, last_edge);
  EdgeCoreWindowSkyline ecs;
  ecs.range_ = range;
  ecs.first_edge_ = first_edge;
  ecs.last_edge_ = last_edge;
  const uint32_t n = last_edge - first_edge;
  ecs.offsets_.assign(n + 1, 0);
  for (const auto& [e, w] : emissions) {
    (void)w;
    TKC_DCHECK(e >= first_edge && e < last_edge);
    ++ecs.offsets_[e - first_edge + 1];
  }
  for (size_t i = 1; i < ecs.offsets_.size(); ++i) {
    ecs.offsets_[i] += ecs.offsets_[i - 1];
  }
  ecs.windows_.resize(emissions.size());
  std::vector<uint32_t> cursor(ecs.offsets_.begin(), ecs.offsets_.end() - 1);
  for (const auto& [e, w] : emissions) {
    ecs.windows_[cursor[e - first_edge]++] = w;
  }
#ifndef NDEBUG
  // Skyline property per edge: strictly increasing starts and ends, all
  // windows inside the query range.
  for (EdgeId e = first_edge; e < last_edge; ++e) {
    auto ws = ecs.WindowsOf(e);
    for (size_t i = 0; i < ws.size(); ++i) {
      TKC_DCHECK(ws[i].start >= range.start && ws[i].end <= range.end);
      TKC_DCHECK(ws[i].start <= ws[i].end);
      if (i > 0) {
        TKC_DCHECK(ws[i - 1].start < ws[i].start);
        TKC_DCHECK(ws[i - 1].end < ws[i].end);
      }
    }
  }
#endif
  return ecs;
}

uint64_t EdgeCoreWindowSkyline::MemoryUsageBytes() const {
  return ApproxVectorBytes(offsets_) + ApproxVectorBytes(windows_);
}

std::string EdgeCoreWindowSkyline::DebugString(EdgeId e) const {
  std::string out;
  for (const Window& w : WindowsOf(e)) {
    if (!out.empty()) out += ' ';
    out += '[';
    out += std::to_string(w.start);
    out += ',';
    out += std::to_string(w.end);
    out += ']';
  }
  return out;
}

}  // namespace tkc
