#ifndef TKC_VCT_INDEX_IO_H_
#define TKC_VCT_INDEX_IO_H_

#include <string>

#include "util/status.h"
#include "vct/ecs.h"
#include "vct/phc_index.h"
#include "vct/vct_index.h"

/// \file index_io.h
/// Binary (de)serialization of the per-query indexes, so expensive CoreTime
/// phases can be computed once and reused across analysis sessions — the
/// same operational pattern as persisting the PHC index in Yu et al.
///
/// Format: little-endian, versioned, with magic tags ("TKCV" / "TKCE"), a
/// fixed header and the raw CSR arrays. Loads validate magic, version and
/// structural invariants (offset monotonicity, window sanity) and return
/// Status::Corruption on malformed input rather than crashing.

namespace tkc {

/// Serializes a VCT index to a byte string.
std::string SerializeVctIndex(const VertexCoreTimeIndex& index);

/// Parses a VCT index; Corruption on any structural violation.
[[nodiscard]] StatusOr<VertexCoreTimeIndex> DeserializeVctIndex(
    const std::string& bytes);

/// Serializes an ECS to a byte string.
std::string SerializeEcs(const EdgeCoreWindowSkyline& ecs);

/// Parses an ECS; Corruption on any structural violation.
[[nodiscard]] StatusOr<EdgeCoreWindowSkyline> DeserializeEcs(
    const std::string& bytes);

/// Serializes a full multi-k PHC index ("TKCP" container: header +
/// length-prefixed per-slice VCT blocks) — the admission index a
/// QueryEngine builds at start-up, persisted once and reloaded via
/// QueryEngineOptions::preloaded_index to amortize engine start-up.
std::string SerializePhcIndex(const PhcIndex& index);

/// Parses a PHC index; Corruption on any structural violation (including
/// per-slice VCT violations and cross-slice range mismatches).
[[nodiscard]] StatusOr<PhcIndex> DeserializePhcIndex(const std::string& bytes);

/// File convenience wrappers.
[[nodiscard]] Status SaveVctIndex(const VertexCoreTimeIndex& index,
                                  const std::string& path);
[[nodiscard]] StatusOr<VertexCoreTimeIndex> LoadVctIndex(
    const std::string& path);
[[nodiscard]] Status SaveEcs(const EdgeCoreWindowSkyline& ecs,
                             const std::string& path);
[[nodiscard]] StatusOr<EdgeCoreWindowSkyline> LoadEcs(const std::string& path);
[[nodiscard]] Status SavePhcIndex(const PhcIndex& index,
                                  const std::string& path);
[[nodiscard]] StatusOr<PhcIndex> LoadPhcIndex(const std::string& path);

}  // namespace tkc

#endif  // TKC_VCT_INDEX_IO_H_
