#ifndef TKC_VCT_INDEX_IO_H_
#define TKC_VCT_INDEX_IO_H_

#include <string>

#include "util/status.h"
#include "vct/ecs.h"
#include "vct/vct_index.h"

/// \file index_io.h
/// Binary (de)serialization of the per-query indexes, so expensive CoreTime
/// phases can be computed once and reused across analysis sessions — the
/// same operational pattern as persisting the PHC index in Yu et al.
///
/// Format: little-endian, versioned, with magic tags ("TKCV" / "TKCE"), a
/// fixed header and the raw CSR arrays. Loads validate magic, version and
/// structural invariants (offset monotonicity, window sanity) and return
/// Status::Corruption on malformed input rather than crashing.

namespace tkc {

/// Serializes a VCT index to a byte string.
std::string SerializeVctIndex(const VertexCoreTimeIndex& index);

/// Parses a VCT index; Corruption on any structural violation.
StatusOr<VertexCoreTimeIndex> DeserializeVctIndex(const std::string& bytes);

/// Serializes an ECS to a byte string.
std::string SerializeEcs(const EdgeCoreWindowSkyline& ecs);

/// Parses an ECS; Corruption on any structural violation.
StatusOr<EdgeCoreWindowSkyline> DeserializeEcs(const std::string& bytes);

/// File convenience wrappers.
Status SaveVctIndex(const VertexCoreTimeIndex& index, const std::string& path);
StatusOr<VertexCoreTimeIndex> LoadVctIndex(const std::string& path);
Status SaveEcs(const EdgeCoreWindowSkyline& ecs, const std::string& path);
StatusOr<EdgeCoreWindowSkyline> LoadEcs(const std::string& path);

}  // namespace tkc

#endif  // TKC_VCT_INDEX_IO_H_
