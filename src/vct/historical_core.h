#ifndef TKC_VCT_HISTORICAL_CORE_H_
#define TKC_VCT_HISTORICAL_CORE_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "util/common.h"
#include "vct/ecs.h"
#include "vct/vct_index.h"

/// \file historical_core.h
/// Single-window ("historical", Yu et al. VLDB'21) k-core queries answered
/// from the per-query indexes instead of peeling:
///
///  * from the VCT index — a vertex u is in the k-core of G[ts,te] iff
///    CT_ts(u) <= te (Definition 4), so membership is one binary search;
///  * from the ECS — an edge e is in the k-core of G[ts,te] iff one of its
///    minimal core windows is contained in [ts,te] (Lemma 3).
///
/// These give downstream code O(log) point lookups and output-sensitive
/// single-window cores once a query range has been indexed, and they are
/// strong consistency oracles for the test suite (index vs peeling).

namespace tkc {

/// True iff `u` is in the temporal k-core of G[window.start, window.end],
/// answered from the index. `window` must lie inside vct.range().
bool VertexInHistoricalCore(const VertexCoreTimeIndex& vct, VertexId u,
                            Window window);

/// True iff edge `e` (which must lie in ecs' edge range) is in the temporal
/// k-core of the window, answered from the skyline (Lemma 3).
bool EdgeInHistoricalCore(const EdgeCoreWindowSkyline& ecs, EdgeId e,
                          Window window);

/// The vertex set of the k-core of one window, from the index:
/// all u with CT_{window.start}(u) <= window.end. O(n log) over indexed
/// vertices.
std::vector<VertexId> HistoricalCoreVertices(const VertexCoreTimeIndex& vct,
                                             Window window);

/// The edge set of the k-core of one window, from the skyline. Output-
/// sensitive up to a scan of the window's edge-id range.
std::vector<EdgeId> HistoricalCoreEdges(const EdgeCoreWindowSkyline& ecs,
                                        const TemporalGraph& g,
                                        Window window);

}  // namespace tkc

#endif  // TKC_VCT_HISTORICAL_CORE_H_
