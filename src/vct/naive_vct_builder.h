#ifndef TKC_VCT_NAIVE_VCT_BUILDER_H_
#define TKC_VCT_NAIVE_VCT_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/common.h"
#include "vct/ecs.h"
#include "vct/vct_index.h"

/// \file naive_vct_builder.h
/// The straightforward O(tmax * m) VCT/ECS construction: run an independent
/// decremental core-time sweep for every start time and diff consecutive
/// results. It is the correctness reference for the efficient builder
/// (vct_builder.h) and a perfectly usable algorithm on graphs with few
/// distinct timestamps.
///
/// The single-start sweep is exposed because the efficient builder uses it
/// to bootstrap ts = Ts, and because it is the cleanest ground-truth oracle
/// for core times in tests.

namespace tkc {

/// Reusable scratch for CoreTimeSweep (avoids reallocation across starts).
struct SweepScratch {
  std::vector<VertexId> verts;            // sorted distinct endpoints
  std::vector<uint64_t> pair_keys;        // sorted distinct (u<<32|v) keys
  std::vector<uint32_t> pair_live;        // live parallel-edge count per pair
  std::vector<uint32_t> vp_offsets;       // CSR: incident pairs per local vtx
  std::vector<uint32_t> vp_pair;          // pair id of each incident entry
  std::vector<uint32_t> vp_other;         // other endpoint (local id)
  std::vector<uint32_t> degree;           // distinct-neighbor degree, local
  std::vector<uint8_t> in_core;           // local
  std::vector<uint8_t> queued;            // local
  std::vector<VertexId> stack;
};

/// Computes CT_ts(v) for every vertex v of `g`, over windows [ts, te_max]:
/// out[v] = earliest te in [ts, te_max] with v in the k-core of G[ts,te],
/// or kInfTime. `out` is resized to g.num_vertices().
/// Cost: O(m_w log m_w) where m_w = edges in [ts, te_max].
void CoreTimeSweep(const TemporalGraph& g, uint32_t k, Timestamp ts,
                   Timestamp te_max, std::vector<Timestamp>* out,
                   SweepScratch* scratch);

/// Result of a VCT/ECS construction (shared with the efficient builder).
struct VctBuildResult {
  VertexCoreTimeIndex vct;
  EdgeCoreWindowSkyline ecs;
  /// Logical peak bytes of the builder's transient state + outputs.
  /// Capacity-based: when the efficient builder is given a reused
  /// VctBuildArena, this reports the arena's high-water footprint across
  /// all builds it served (memory genuinely held during this build), not
  /// this build's working set alone. Pass a fresh arena (or none) for
  /// per-build isolation, as the memory figure benchmarks do.
  uint64_t peak_memory_bytes = 0;
};

/// Builds VCT and ECS for (g, k, range) with one sweep per start time.
VctBuildResult BuildVctAndEcsNaive(const TemporalGraph& g, uint32_t k,
                                   Window range);

}  // namespace tkc

#endif  // TKC_VCT_NAIVE_VCT_BUILDER_H_
