#ifndef TKC_VCT_VCT_BUILDER_H_
#define TKC_VCT_VCT_BUILDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/common.h"
#include "vct/naive_vct_builder.h"

/// \file vct_builder.h
/// The efficient VCT/ECS construction — the paper's CoreTime phase
/// (Algorithm 2), with the PHC-style O(|VCT| * deg_avg) core-time
/// maintenance of Yu et al. (VLDB'21) as the substrate.
///
/// Method. Core times for the first start time Ts come from one decremental
/// peel sweep (CoreTimeSweep, O(m)). Advancing the start time from s to s+1
/// removes the edges timestamped s; the new core times are the least
/// fixpoint of the local recurrence
///
///    CT(u) = k-th smallest over distinct window-neighbors v of
///            max(CT(v), earliest edge time of (u,v) that is >= s+1)
///
/// that dominates the previous core times. We prove both directions (any
/// fixpoint dominates the true core times; monotone worklist iteration from
/// the previous values converges to exactly the true core times) in
/// DESIGN.md §2, and validate against the naive builder in tests. Only the
/// endpoints of removed edges seed the worklist; every later recomputation
/// is triggered by an actual neighbor change, so total work is bounded by
/// sum over core-time changes of the changing vertex's degree — the paper's
/// O(|VCT| * deg_avg).
///
/// ECS byproduct (Lemma 1 + Lemma 2). Every live edge carries its edge core
/// time ect(e) = max(CT(u), CT(v), t). When a transition s -> s+1 raises
/// ect(e) (including to infinity, and including e leaving the window
/// because t == s), the window [s, old ect(e)] is emitted as a minimal core
/// window of e. A final flush handles start time Te.

namespace tkc {

class ThreadPool;  // util/thread_pool.h

/// Reusable scratch for repeated VCT/ECS builds: the core-time advancer's
/// state, the window-adjacency cursors, the sweep scratch, and the emission
/// buffers. Passing the same arena to successive builds reuses every
/// allocation; PhcIndex::Build (and the delta-aware PhcIndex::Rebuild,
/// which runs this builder only for its dirty slices) hands each pool
/// worker its own arena so the slices it claims share scratch without
/// locking. Contents are an implementation detail of vct_builder.cc —
/// treat as opaque. Reuse never changes results: each build fully
/// re-initializes the state it reads.
struct VctBuildArena {
  std::vector<Timestamp> ct;              // per-vertex core times
  std::vector<uint8_t> in_queue;          // worklist membership bits
  std::vector<VertexId> queue;            // the worklist itself
  std::vector<uint32_t> seen_epoch;       // Φ neighbor dedup stamps
  std::vector<uint32_t> changed_epoch;    // per-Advance change stamps
  std::vector<Timestamp> phi_vals;        // Φ's k-th-smallest candidates
  std::vector<uint32_t> adj_lo;           // window-adjacency cursor (moves fwd)
  std::vector<uint32_t> adj_hi;           // fixed window-end bound per vertex
  SweepScratch sweep;                     // bootstrap sweep scratch
  std::vector<Timestamp> ect;             // per-edge core times
  std::vector<VertexId> changed;          // vertices changed by one Advance
  std::vector<VertexId> verts;            // distinct window endpoints
  std::vector<std::pair<VertexId, VctEntry>> vct_emissions;
  std::vector<std::pair<EdgeId, Window>> ecs_emissions;

  /// Heap bytes currently held by the arena's vectors (capacity-based).
  uint64_t MemoryUsageBytes() const;
};

/// Builds VCT and ECS for (g, k, range) in O(m log m + |VCT| * deg_avg).
/// `arena` (optional) recycles scratch allocations across builds. `pool`
/// (optional) fans the bootstrap phase — the per-vertex window-adjacency
/// cursor placement and the initial edge-core-time fill, the parts of a
/// build that are embarrassingly parallel — out over its workers; every
/// parallel write lands at a fixed index, so the output is bit-identical to
/// a serial build at any thread count. Called from inside one of `pool`'s
/// own tasks (e.g. a PhcIndex::Build slice worker) the fan-out degrades to
/// an inline loop; pass the pool anyway and the single-slice / dedicated-
/// rebuild-thread paths pick up the parallelism.
VctBuildResult BuildVctAndEcs(const TemporalGraph& g, uint32_t k, Window range,
                              VctBuildArena* arena = nullptr,
                              ThreadPool* pool = nullptr);

/// Statistics of the last build (for benchmarks / ablation): exposed via a
/// variant that reports counters.
struct VctBuildStats {
  uint64_t fixpoint_recomputations = 0;  ///< Φ evaluations across all starts
  uint64_t core_time_changes = 0;        ///< |VCT| minus initial entries
  uint64_t worklist_pushes = 0;
};

/// As BuildVctAndEcs, also filling `stats` (may be nullptr).
VctBuildResult BuildVctAndEcsWithStats(const TemporalGraph& g, uint32_t k,
                                       Window range, VctBuildStats* stats,
                                       VctBuildArena* arena = nullptr,
                                       ThreadPool* pool = nullptr);

/// The suffix entry point of PhcIndex::Rebuild's partial slice maintenance:
/// computes the VCT restricted to start times [suffix.start, advance_end]
/// with window ends up to suffix.end, skipping the ECS byproduct. Windows
/// only look forward in time, so CT_ts(u) over [suffix.start, suffix.end]
/// equals the full-range build's value for every ts >= suffix.start — the
/// sweep simply bootstraps at suffix.start (paying only for the edges in
/// the suffix window) and the advance stops at advance_end instead of
/// running to the end of the timeline. The returned index carries `suffix`
/// as its range but holds rows only for starts <= advance_end; it is the
/// middle band StitchCoreTimeSuffix splices between reused prefix and tail
/// rows. Rows are bit-identical to the corresponding band of a
/// from-scratch build at any thread count.
VertexCoreTimeIndex BuildVctSuffix(const TemporalGraph& g, uint32_t k,
                                   Window suffix, Timestamp advance_end,
                                   VctBuildArena* arena = nullptr,
                                   ThreadPool* pool = nullptr);

}  // namespace tkc

#endif  // TKC_VCT_VCT_BUILDER_H_
