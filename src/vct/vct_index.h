#ifndef TKC_VCT_VCT_INDEX_H_
#define TKC_VCT_VCT_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"

/// \file vct_index.h
/// The Vertex Core Time index (VCT, Definition 4 / Table I): for a fixed k
/// and query range [Ts,Te], the core time CT_ts(u) is the earliest end time
/// te such that u belongs to the temporal k-core of G[ts,te]. Core times are
/// non-decreasing in ts, so the index stores, per vertex, the breakpoints
/// (start, core_time): "from this start time on (until the next breakpoint),
/// the vertex's core time is core_time". kInfTime encodes "never again in a
/// k-core" — the paper's [ts, ∞] entries.
///
/// This is exactly the k-slice of the PHC index of Yu et al. (VLDB'21) that
/// the paper calls VCT.

namespace tkc {

/// One breakpoint of a vertex's core-time function.
struct VctEntry {
  Timestamp start = 0;      ///< first start time with this core time
  Timestamp core_time = 0;  ///< CT_start(u); kInfTime when never in a core

  friend bool operator==(const VctEntry& a, const VctEntry& b) {
    return a.start == b.start && a.core_time == b.core_time;
  }
};

/// Immutable per-query VCT index (CSR over vertices).
class VertexCoreTimeIndex {
 public:
  VertexCoreTimeIndex() = default;

  /// Builds from flat (vertex, entry) emissions. Emissions for one vertex
  /// must be in increasing `start` order; across vertices any order is fine.
  static VertexCoreTimeIndex FromEmissions(
      VertexId num_vertices, Window range,
      std::span<const std::pair<VertexId, VctEntry>> emissions);

  /// The query range this index was built for.
  Window range() const { return range_; }

  /// Breakpoints of vertex `u` (possibly empty: u is in no k-core of any
  /// window inside the range).
  std::span<const VctEntry> EntriesOf(VertexId u) const {
    return {entries_.data() + offsets_[u], entries_.data() + offsets_[u + 1]};
  }

  /// CT_ts(u): the core time of `u` for start time `ts` (must lie within the
  /// query range). Returns kInfTime when u is in no core for this start.
  Timestamp CoreTimeAt(VertexId u, Timestamp ts) const;

  /// Total number of index entries — the paper's |VCT|.
  uint64_t size() const { return entries_.size(); }

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of vertices with at least one entry.
  uint64_t num_indexed_vertices() const;

  uint64_t MemoryUsageBytes() const;

  /// Debug rendering of one vertex's entries, e.g. "[1,3] [3,5] [7,inf]".
  std::string DebugString(VertexId u) const;

 private:
  Window range_{0, 0};
  std::vector<uint32_t> offsets_;  // size n+1
  std::vector<VctEntry> entries_;
};

/// Bit-identity of two indexes: same range, same vertex count, and the same
/// breakpoints for every vertex. The incremental differential mode uses
/// this to prove a pointer-reused slice equals a from-scratch rebuild.
bool operator==(const VertexCoreTimeIndex& a, const VertexCoreTimeIndex& b);

/// Splices a partially recomputed start-time band into an existing slice —
/// the assembly step of PhcIndex::Rebuild's suffix maintenance. Produces
/// the slice whose core-time function is
///
///   base's values   on [base.range().start, suffix_start)   (prefix rows),
///   suffix's values on [suffix_start, advance_end]          (recomputed),
///   base's values   on (advance_end, base.range().end]      (tail rows),
///
/// re-deriving the two seam breakpoints so the result is the canonical
/// row list of that stitched function — bit-identical to what a
/// from-scratch build emits whenever the caller has proven the true new
/// function agrees with `base` outside [suffix_start, advance_end].
///
/// `suffix` must be a slice built over [suffix_start, base.range().end]
/// whose rows stop at starts <= advance_end (BuildVctSuffix's contract).
/// `rows_reused` (optional) accumulates the base rows copied verbatim —
/// the prefix rows plus the tail rows the recomputation never touched.
VertexCoreTimeIndex StitchCoreTimeSuffix(const VertexCoreTimeIndex& base,
                                         const VertexCoreTimeIndex& suffix,
                                         Timestamp suffix_start,
                                         Timestamp advance_end,
                                         uint64_t* rows_reused = nullptr);
inline bool operator!=(const VertexCoreTimeIndex& a,
                       const VertexCoreTimeIndex& b) {
  return !(a == b);
}

}  // namespace tkc

#endif  // TKC_VCT_VCT_INDEX_H_
