#ifndef TKC_VCT_PHC_INDEX_H_
#define TKC_VCT_PHC_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/status.h"
#include "vct/vct_index.h"

/// \file phc_index.h
/// The full PHC index of Yu et al. (VLDB'21), of which the paper's VCT is
/// the single-k slice: vertex core times for *every* k from 1 to the
/// window's kmax, supporting historical k-core queries with the k given at
/// query time. Construction runs the per-k builder for each k — the slices
/// are independent, and per-slice cost O(|VCT_k|·deg_avg) shrinks quickly
/// with k, so the total is dominated by the small-k slices exactly as in
/// the original paper's analysis.
///
/// Because the slices are independent, construction fans them out over a
/// ThreadPool: slice k is computed by whichever worker claims it and stored
/// at index k-1, so the parallel index is bit-identical to the serial one
/// regardless of completion order. Each worker reuses one VctBuildArena
/// across all slices it claims.
///
/// Slices are held behind shared_ptr<const VertexCoreTimeIndex>: an index
/// is a cheap-to-copy stack of immutable slices, and successive graph
/// versions can *share* the slices an edge delta provably did not touch.
/// That sharing is what Rebuild exploits — the live serving layer's
/// incremental maintenance path: instead of rebuilding every k-slice on
/// each snapshot swap, it reuses the clean ones by pointer and rebuilds
/// only the dirty ones, bit-identical to a from-scratch Build.

namespace tkc {

class ThreadPool;

/// Construction knobs for PhcIndex::Build.
struct PhcBuildOptions {
  /// Cap on the largest k to build; 0 means "up to the window's kmax".
  uint32_t max_k = 0;
  /// Pool to fan slices out over; nullptr builds serially on the caller.
  ThreadPool* pool = nullptr;
};

/// What one PhcIndex::Rebuild proved and did.
struct PhcRebuildStats {
  /// "No slice (or cached outcome) is provably clean."
  static constexpr uint32_t kNothingClean = 0xffffffffu;

  /// The recomputed start band of one suffix-maintained slice: rows with
  /// start in [first_dirty, last_dirty] were recomputed, every other
  /// (vertex, start) value provably carried over unchanged. The serving
  /// layer consumes these to maintain the per-k emergence tables
  /// incrementally — only band entries need the sweep re-run.
  struct SuffixBand {
    uint32_t k = 0;
    Timestamp first_dirty = 0;
    Timestamp last_dirty = 0;
  };

  /// Slices of the old index reused by pointer.
  uint32_t slices_reused = 0;
  /// Slices (re)built from scratch over the new graph.
  uint32_t slices_rebuilt = 0;
  /// Dirty slices maintained partially: only the start-time band the delta
  /// could have touched was recomputed (BuildVctSuffix), the untouched
  /// prefix/tail rows carried over (StitchCoreTimeSuffix).
  uint32_t suffix_rebuilds = 0;
  /// One entry per suffix-maintained slice, ascending k (suffix_rebuilds
  /// entries in total).
  std::vector<SuffixBand> suffix_bands;
  /// Slices whose recompute band shrank below (or closed entirely against)
  /// the global [first value >= delta.min_time, delta.max_time] bound
  /// because the per-vertex impact proof showed the delta edges cannot
  /// reach degree k early enough inside the candidate windows.
  uint32_t bands_tightened = 0;
  /// VCT rows carried from the old index: every row of a pointer-reused
  /// slice plus the prefix/tail rows of suffix-maintained slices.
  uint64_t rows_reused = 0;
  /// Total VCT rows across the produced index (denominator of the
  /// row-level reuse ratio the live-update bench gates on).
  uint64_t rows_total = 0;
  /// The delta's proof boundary: every k-slice — and every cached
  /// (k, range) outcome — with k > clean_above_k is provably identical
  /// across the swap. 0 after an empty delta (everything clean);
  /// kNothingClean when reuse was ineligible (timeline or vertex pool
  /// changed, or the ranges disagreed) and everything was rebuilt.
  uint32_t clean_above_k = kNothingClean;

  /// True iff at least the slices above clean_above_k carried over.
  bool reuse_eligible() const { return clean_above_k != kNothingClean; }
};

/// Immutable multi-k core-time index over one query range.
class PhcIndex {
 public:
  /// Builds slices for k = 1..min(kmax(range), max_k). max_k == 0 means
  /// "up to kmax". Fails on an invalid range. Uses the process-wide shared
  /// pool (util/thread_pool.h; sized by TKC_NUM_THREADS, default hardware
  /// concurrency) — output is identical at any thread count.
  static StatusOr<PhcIndex> Build(const TemporalGraph& g, Window range,
                                  uint32_t max_k = 0);

  /// As above with explicit options (thread pool, k cap).
  static StatusOr<PhcIndex> Build(const TemporalGraph& g, Window range,
                                  const PhcBuildOptions& options);

  /// Delta-aware rebuild for the live-update path: produces the index
  /// Build(g, g.FullRange(), options) would produce, where `g` is
  /// `old_index`'s graph plus the append described by `delta`, but reuses
  /// (by pointer) every slice of `old_index` the delta provably left
  /// unchanged and rebuilds only the dirty ones over the pool.
  ///
  /// Reuse is sound because a k-core can only change when a delta edge
  /// joins it, which requires both endpoints to have distinct-neighbor
  /// degree >= k — so every window's k-core, and hence slice k, is
  /// unchanged for k > delta.max_core_bound, provided the compacted
  /// timeline and the vertex pool carried over (delta.timestamps_preserved
  /// && delta.vertices_preserved) and old_index covers the same range.
  /// When those preconditions fail, every slice is rebuilt (equivalent to
  /// Build, stats report nothing clean). The result is bit-identical to a
  /// from-scratch Build either way — the incremental differential mode
  /// asserts exactly that, per slice, at several thread counts.
  ///
  /// Dirty slices (k <= max_core_bound) are additionally maintained
  /// *partially* when the same preconditions hold: a changed core time
  /// CT_ts(u) requires a delta edge inside some window [ts, te <= CT], so
  /// it needs both ts <= delta.max_time and an old value >= delta.min_time
  /// (values below min_time belong to windows the delta never reaches).
  /// Per slice, the earliest start any vertex's old value reaches min_time
  /// — range.start for a vertex with no old rows whose new full-range core
  /// number reached k, since first-time membership always shows at the
  /// first start — bounds the dirty band from below, and max_time bounds
  /// it from above. Only that band is recomputed (BuildVctSuffix) and
  /// spliced back between the untouched prefix/tail rows
  /// (StitchCoreTimeSuffix); a slice whose band is empty is reused whole
  /// even though k <= max_core_bound.
  ///
  /// The per-vertex band is additionally *tightened* by delta-endpoint
  /// connectivity: appends only grow windows' k-cores, so a row (u, ts)
  /// with old value c changes only if some window [ts, te < c] gains a
  /// k-core member — which requires a delta edge (a, b, t) with both
  /// endpoints inside the new window's k-core, hence t >= ts, te >= t, and
  /// each endpoint reaching distinct-neighbor degree >= k within [ts, te].
  /// The earliest such te over all delta edges, E(ts) — non-decreasing in
  /// ts — prunes every row with c <= E(ts), often shrinking the recompute
  /// band well below the global bound (or closing it) when the appended
  /// edges land in sparse neighborhoods. Exact, not heuristic: the
  /// differential harness proves the stitched slices bit-identical to
  /// from-scratch builds.
  static StatusOr<PhcIndex> Rebuild(const PhcIndex& old_index,
                                    const TemporalGraph& g,
                                    const EdgeDelta& delta,
                                    const PhcBuildOptions& options,
                                    PhcRebuildStats* stats = nullptr);

  /// Reassembles an index from already-built slices (the deserialization
  /// path of vct/index_io.h). Validates that slice k sits at index k-1 over
  /// a consistent (range, vertex count); `complete` must be the value the
  /// original build reported. Fails with InvalidArgument on inconsistency.
  static StatusOr<PhcIndex> FromSlices(Window range, bool complete,
                                       std::vector<VertexCoreTimeIndex> slices);

  Window range() const { return range_; }

  /// Largest k with a slice (the window's kmax, or the build cap).
  uint32_t max_k() const { return static_cast<uint32_t>(slices_.size()); }

  /// True iff the slices cover *every* k with a non-empty core in the range
  /// — i.e. the build's max_k cap never bit (or there was none). Only a
  /// complete index can prove "k > max_k()" queries globally empty; a
  /// capped one cannot distinguish "no such core" from "not built".
  bool complete() const { return complete_; }

  /// The VCT slice for `k` (1 <= k <= max_k()).
  const VertexCoreTimeIndex& Slice(uint32_t k) const;

  /// The shared handle of slice `k` — compare against another index's to
  /// detect cross-snapshot sharing (a Rebuild reuses slices by pointer).
  std::shared_ptr<const VertexCoreTimeIndex> SliceShared(uint32_t k) const;

  /// CT^k_ts(u): core time of u for start ts at cohesion k. Returns
  /// kInfTime when k exceeds max_k() (no such core exists in the range).
  Timestamp CoreTimeAt(VertexId u, Timestamp ts, uint32_t k) const;

  /// True iff u is in the k-core of G[window.start, window.end].
  bool VertexInCore(VertexId u, Window window, uint32_t k) const;

  /// Largest k such that u is in the k-core of the window (0 if none) —
  /// the "historical core number", by binary search over slices (core
  /// membership is monotone decreasing in k).
  uint32_t HistoricalCoreNumber(VertexId u, Window window) const;

  /// Total entries across all slices.
  uint64_t size() const;

  uint64_t MemoryUsageBytes() const;

 private:
  Window range_{0, 0};
  bool complete_ = true;
  /// Slice k at index k-1; immutable and shareable across index versions.
  std::vector<std::shared_ptr<const VertexCoreTimeIndex>> slices_;
};

/// Bit-identity of two indexes: same range, completeness, max_k, and
/// per-slice contents (pointer-shared slices compare in O(1)). The
/// incremental differential mode and the live-update bench use this to
/// prove a delta-aware Rebuild equals a from-scratch Build.
bool operator==(const PhcIndex& a, const PhcIndex& b);
inline bool operator!=(const PhcIndex& a, const PhcIndex& b) {
  return !(a == b);
}

}  // namespace tkc

#endif  // TKC_VCT_PHC_INDEX_H_
