#ifndef TKC_VCT_PHC_INDEX_H_
#define TKC_VCT_PHC_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/status.h"
#include "vct/vct_index.h"

/// \file phc_index.h
/// The full PHC index of Yu et al. (VLDB'21), of which the paper's VCT is
/// the single-k slice: vertex core times for *every* k from 1 to the
/// window's kmax, supporting historical k-core queries with the k given at
/// query time. Construction runs the per-k builder for each k — the slices
/// are independent, and per-slice cost O(|VCT_k|·deg_avg) shrinks quickly
/// with k, so the total is dominated by the small-k slices exactly as in
/// the original paper's analysis.
///
/// Because the slices are independent, construction fans them out over a
/// ThreadPool: slice k is computed by whichever worker claims it and stored
/// at index k-1, so the parallel index is bit-identical to the serial one
/// regardless of completion order. Each worker reuses one VctBuildArena
/// across all slices it claims.

namespace tkc {

class ThreadPool;

/// Construction knobs for PhcIndex::Build.
struct PhcBuildOptions {
  /// Cap on the largest k to build; 0 means "up to the window's kmax".
  uint32_t max_k = 0;
  /// Pool to fan slices out over; nullptr builds serially on the caller.
  ThreadPool* pool = nullptr;
};

/// Immutable multi-k core-time index over one query range.
class PhcIndex {
 public:
  /// Builds slices for k = 1..min(kmax(range), max_k). max_k == 0 means
  /// "up to kmax". Fails on an invalid range. Uses the process-wide shared
  /// pool (util/thread_pool.h; sized by TKC_NUM_THREADS, default hardware
  /// concurrency) — output is identical at any thread count.
  static StatusOr<PhcIndex> Build(const TemporalGraph& g, Window range,
                                  uint32_t max_k = 0);

  /// As above with explicit options (thread pool, k cap).
  static StatusOr<PhcIndex> Build(const TemporalGraph& g, Window range,
                                  const PhcBuildOptions& options);

  /// Reassembles an index from already-built slices (the deserialization
  /// path of vct/index_io.h). Validates that slice k sits at index k-1 over
  /// a consistent (range, vertex count); `complete` must be the value the
  /// original build reported. Fails with InvalidArgument on inconsistency.
  static StatusOr<PhcIndex> FromSlices(Window range, bool complete,
                                       std::vector<VertexCoreTimeIndex> slices);

  Window range() const { return range_; }

  /// Largest k with a slice (the window's kmax, or the build cap).
  uint32_t max_k() const { return static_cast<uint32_t>(slices_.size()); }

  /// True iff the slices cover *every* k with a non-empty core in the range
  /// — i.e. the build's max_k cap never bit (or there was none). Only a
  /// complete index can prove "k > max_k()" queries globally empty; a
  /// capped one cannot distinguish "no such core" from "not built".
  bool complete() const { return complete_; }

  /// The VCT slice for `k` (1 <= k <= max_k()).
  const VertexCoreTimeIndex& Slice(uint32_t k) const;

  /// CT^k_ts(u): core time of u for start ts at cohesion k. Returns
  /// kInfTime when k exceeds max_k() (no such core exists in the range).
  Timestamp CoreTimeAt(VertexId u, Timestamp ts, uint32_t k) const;

  /// True iff u is in the k-core of G[window.start, window.end].
  bool VertexInCore(VertexId u, Window window, uint32_t k) const;

  /// Largest k such that u is in the k-core of the window (0 if none) —
  /// the "historical core number", by binary search over slices (core
  /// membership is monotone decreasing in k).
  uint32_t HistoricalCoreNumber(VertexId u, Window window) const;

  /// Total entries across all slices.
  uint64_t size() const;

  uint64_t MemoryUsageBytes() const;

 private:
  Window range_{0, 0};
  bool complete_ = true;
  std::vector<VertexCoreTimeIndex> slices_;  // index k-1
};

}  // namespace tkc

#endif  // TKC_VCT_PHC_INDEX_H_
