#include "vct/index_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/fault_injection.h"

namespace tkc {

namespace {

constexpr uint32_t kVctMagic = 0x56434b54;  // "TKCV" little-endian
constexpr uint32_t kEcsMagic = 0x45434b54;  // "TKCE"
constexpr uint32_t kPhcMagic = 0x50434b54;  // "TKCP"
constexpr uint32_t kVersion = 1;

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

// Sequential reader with bounds checking.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    std::memcpy(v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    std::memcpy(v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadBytes(uint64_t length, std::string* out) {
    if (length > bytes_.size() || pos_ + length > bytes_.size()) return false;
    out->assign(bytes_, pos_, static_cast<size_t>(length));
    pos_ += static_cast<size_t>(length);
    return true;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

Status ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure on '" + path + "'");
  *out = buf.str();
  return Status::OK();
}

/// The `index_io.corrupt_load` fault: drops the file's trailing byte before
/// parsing, as if the read raced a torn write. Truncation (rather than a
/// flipped payload byte) guarantees the parsers *detect* it — every format
/// here is length-prefixed, so a missing byte always parses as Corruption
/// instead of silently producing a valid-but-different index.
void MaybeCorruptLoadedBytes(std::string* bytes) {
  if (!bytes->empty() && FaultFires(kFaultIndexIoCorruptLoad)) {
    bytes->pop_back();
  }
}

Status WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot create '" + path + "': " +
                           std::strerror(errno));
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace

std::string SerializeVctIndex(const VertexCoreTimeIndex& index) {
  std::string out;
  PutU32(&out, kVctMagic);
  PutU32(&out, kVersion);
  PutU32(&out, index.range().start);
  PutU32(&out, index.range().end);
  PutU32(&out, index.num_vertices());
  PutU64(&out, index.size());
  for (VertexId v = 0; v < index.num_vertices(); ++v) {
    auto entries = index.EntriesOf(v);
    PutU32(&out, static_cast<uint32_t>(entries.size()));
    for (const VctEntry& e : entries) {
      PutU32(&out, e.start);
      PutU32(&out, e.core_time);
    }
  }
  return out;
}

StatusOr<VertexCoreTimeIndex> DeserializeVctIndex(const std::string& bytes) {
  Reader reader(bytes);
  uint32_t magic, version, rs, re, num_vertices;
  uint64_t total;
  if (!reader.ReadU32(&magic) || magic != kVctMagic) {
    return Status::Corruption("bad VCT magic");
  }
  if (!reader.ReadU32(&version) || version != kVersion) {
    return Status::Corruption("unsupported VCT version");
  }
  if (!reader.ReadU32(&rs) || !reader.ReadU32(&re) ||
      !reader.ReadU32(&num_vertices) || !reader.ReadU64(&total)) {
    return Status::Corruption("truncated VCT header");
  }
  if (rs < 1 || rs > re || re == kInfTime) {
    return Status::Corruption("invalid VCT range");
  }
  std::vector<std::pair<VertexId, VctEntry>> emissions;
  emissions.reserve(total);
  for (VertexId v = 0; v < num_vertices; ++v) {
    uint32_t count;
    if (!reader.ReadU32(&count)) return Status::Corruption("truncated VCT");
    Timestamp prev_start = 0;
    Timestamp prev_ct = 0;
    for (uint32_t i = 0; i < count; ++i) {
      VctEntry e;
      if (!reader.ReadU32(&e.start) || !reader.ReadU32(&e.core_time)) {
        return Status::Corruption("truncated VCT entries");
      }
      if (e.start < rs || e.start > re) {
        return Status::Corruption("VCT entry start outside range");
      }
      if (i > 0 && (e.start <= prev_start || e.core_time <= prev_ct)) {
        return Status::Corruption("VCT entries not strictly increasing");
      }
      if (e.core_time != kInfTime &&
          (e.core_time < e.start || e.core_time > re)) {
        return Status::Corruption("VCT core time outside range");
      }
      prev_start = e.start;
      prev_ct = e.core_time;
      emissions.push_back({v, e});
    }
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes in VCT");
  if (emissions.size() != total) {
    return Status::Corruption("VCT entry count mismatch");
  }
  return VertexCoreTimeIndex::FromEmissions(num_vertices, Window{rs, re},
                                            emissions);
}

std::string SerializeEcs(const EdgeCoreWindowSkyline& ecs) {
  std::string out;
  PutU32(&out, kEcsMagic);
  PutU32(&out, kVersion);
  PutU32(&out, ecs.range().start);
  PutU32(&out, ecs.range().end);
  PutU32(&out, ecs.first_edge());
  PutU32(&out, ecs.last_edge());
  PutU64(&out, ecs.size());
  for (EdgeId e = ecs.first_edge(); e < ecs.last_edge(); ++e) {
    auto windows = ecs.WindowsOf(e);
    PutU32(&out, static_cast<uint32_t>(windows.size()));
    for (const Window& w : windows) {
      PutU32(&out, w.start);
      PutU32(&out, w.end);
    }
  }
  return out;
}

StatusOr<EdgeCoreWindowSkyline> DeserializeEcs(const std::string& bytes) {
  Reader reader(bytes);
  uint32_t magic, version, rs, re, first_edge, last_edge;
  uint64_t total;
  if (!reader.ReadU32(&magic) || magic != kEcsMagic) {
    return Status::Corruption("bad ECS magic");
  }
  if (!reader.ReadU32(&version) || version != kVersion) {
    return Status::Corruption("unsupported ECS version");
  }
  if (!reader.ReadU32(&rs) || !reader.ReadU32(&re) ||
      !reader.ReadU32(&first_edge) || !reader.ReadU32(&last_edge) ||
      !reader.ReadU64(&total)) {
    return Status::Corruption("truncated ECS header");
  }
  if (rs < 1 || rs > re || re == kInfTime || first_edge > last_edge) {
    return Status::Corruption("invalid ECS header fields");
  }
  std::vector<std::pair<EdgeId, Window>> emissions;
  emissions.reserve(total);
  for (EdgeId e = first_edge; e < last_edge; ++e) {
    uint32_t count;
    if (!reader.ReadU32(&count)) return Status::Corruption("truncated ECS");
    Window prev{0, 0};
    for (uint32_t i = 0; i < count; ++i) {
      Window w;
      if (!reader.ReadU32(&w.start) || !reader.ReadU32(&w.end)) {
        return Status::Corruption("truncated ECS windows");
      }
      if (w.start < rs || w.end > re || w.start > w.end) {
        return Status::Corruption("ECS window outside range");
      }
      if (i > 0 && (w.start <= prev.start || w.end <= prev.end)) {
        return Status::Corruption("ECS windows violate skyline order");
      }
      prev = w;
      emissions.push_back({e, w});
    }
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes in ECS");
  if (emissions.size() != total) {
    return Status::Corruption("ECS window count mismatch");
  }
  return EdgeCoreWindowSkyline::FromEmissions(first_edge, last_edge,
                                              Window{rs, re}, emissions);
}

std::string SerializePhcIndex(const PhcIndex& index) {
  std::string out;
  PutU32(&out, kPhcMagic);
  PutU32(&out, kVersion);
  PutU32(&out, index.range().start);
  PutU32(&out, index.range().end);
  PutU32(&out, index.complete() ? 1 : 0);
  PutU32(&out, index.max_k());
  for (uint32_t k = 1; k <= index.max_k(); ++k) {
    std::string slice = SerializeVctIndex(index.Slice(k));
    PutU64(&out, slice.size());
    out += slice;
  }
  return out;
}

StatusOr<PhcIndex> DeserializePhcIndex(const std::string& bytes) {
  Reader reader(bytes);
  uint32_t magic, version, rs, re, complete, max_k;
  if (!reader.ReadU32(&magic) || magic != kPhcMagic) {
    return Status::Corruption("bad PHC magic");
  }
  if (!reader.ReadU32(&version) || version != kVersion) {
    return Status::Corruption("unsupported PHC version");
  }
  if (!reader.ReadU32(&rs) || !reader.ReadU32(&re) ||
      !reader.ReadU32(&complete) || !reader.ReadU32(&max_k)) {
    return Status::Corruption("truncated PHC header");
  }
  if (rs < 1 || rs > re || re == kInfTime || complete > 1) {
    return Status::Corruption("invalid PHC header fields");
  }
  // Bound the file-controlled slice count before reserving: every slice
  // costs at least its 8-byte length prefix, so a max_k beyond that is a
  // lie about the payload and would otherwise turn into a huge reserve().
  if (static_cast<uint64_t>(max_k) * 8 > bytes.size()) {
    return Status::Corruption("PHC slice count exceeds payload");
  }
  std::vector<VertexCoreTimeIndex> slices;
  slices.reserve(max_k);
  for (uint32_t k = 1; k <= max_k; ++k) {
    uint64_t length;
    if (!reader.ReadU64(&length)) {
      return Status::Corruption("truncated PHC slice header");
    }
    std::string slice_bytes;
    if (!reader.ReadBytes(length, &slice_bytes)) {
      return Status::Corruption("truncated PHC slice");
    }
    auto slice = DeserializeVctIndex(slice_bytes);
    if (!slice.ok()) return slice.status();
    slices.push_back(std::move(slice).value());
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes in PHC");
  auto index =
      PhcIndex::FromSlices(Window{rs, re}, complete == 1, std::move(slices));
  if (!index.ok()) {
    // Structurally valid slices that disagree with each other are
    // corruption from the reader's point of view.
    return Status::Corruption(index.status().message());
  }
  return index;
}

Status SaveVctIndex(const VertexCoreTimeIndex& index,
                    const std::string& path) {
  return WriteFile(path, SerializeVctIndex(index));
}

StatusOr<VertexCoreTimeIndex> LoadVctIndex(const std::string& path) {
  std::string bytes;
  TKC_RETURN_IF_ERROR(ReadFile(path, &bytes));
  MaybeCorruptLoadedBytes(&bytes);
  return DeserializeVctIndex(bytes);
}

Status SaveEcs(const EdgeCoreWindowSkyline& ecs, const std::string& path) {
  return WriteFile(path, SerializeEcs(ecs));
}

StatusOr<EdgeCoreWindowSkyline> LoadEcs(const std::string& path) {
  std::string bytes;
  TKC_RETURN_IF_ERROR(ReadFile(path, &bytes));
  MaybeCorruptLoadedBytes(&bytes);
  return DeserializeEcs(bytes);
}

Status SavePhcIndex(const PhcIndex& index, const std::string& path) {
  return WriteFile(path, SerializePhcIndex(index));
}

StatusOr<PhcIndex> LoadPhcIndex(const std::string& path) {
  std::string bytes;
  TKC_RETURN_IF_ERROR(ReadFile(path, &bytes));
  MaybeCorruptLoadedBytes(&bytes);
  return DeserializePhcIndex(bytes);
}

}  // namespace tkc
