#include "vct/phc_index.h"

#include <algorithm>

#include "graph/core_decomposition.h"
#include "util/check.h"
#include "vct/vct_builder.h"

namespace tkc {

StatusOr<PhcIndex> PhcIndex::Build(const TemporalGraph& g, Window range,
                                   uint32_t max_k) {
  if (range.start < 1 || range.start > range.end ||
      range.end > g.num_timestamps()) {
    return Status::InvalidArgument(
        "query range must satisfy 1 <= Ts <= Te <= num_timestamps");
  }
  PhcIndex index;
  index.range_ = range;
  uint32_t kmax = DecomposeCores(g, range).kmax;
  if (max_k > 0) kmax = std::min(kmax, max_k);
  index.slices_.reserve(kmax);
  for (uint32_t k = 1; k <= kmax; ++k) {
    index.slices_.push_back(BuildVctAndEcs(g, k, range).vct);
  }
  return index;
}

const VertexCoreTimeIndex& PhcIndex::Slice(uint32_t k) const {
  TKC_CHECK(k >= 1 && k <= slices_.size());
  return slices_[k - 1];
}

Timestamp PhcIndex::CoreTimeAt(VertexId u, Timestamp ts, uint32_t k) const {
  if (k == 0 || k > slices_.size()) return kInfTime;
  return slices_[k - 1].CoreTimeAt(u, ts);
}

bool PhcIndex::VertexInCore(VertexId u, Window window, uint32_t k) const {
  TKC_DCHECK(window.ContainedIn(range_));
  return CoreTimeAt(u, window.start, k) <= window.end;
}

uint32_t PhcIndex::HistoricalCoreNumber(VertexId u, Window window) const {
  // Membership is monotone: in the k-core implies in the (k-1)-core.
  uint32_t lo = 0, hi = max_k();
  while (lo < hi) {
    uint32_t mid = (lo + hi + 1) / 2;
    if (VertexInCore(u, window, mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

uint64_t PhcIndex::size() const {
  uint64_t total = 0;
  for (const auto& slice : slices_) total += slice.size();
  return total;
}

uint64_t PhcIndex::MemoryUsageBytes() const {
  uint64_t total = 0;
  for (const auto& slice : slices_) total += slice.MemoryUsageBytes();
  return total;
}

}  // namespace tkc
