#include "vct/phc_index.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/core_decomposition.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "vct/vct_builder.h"

namespace tkc {

namespace {

/// Builds the k-slice for (g, range) and wraps it in the shared handle the
/// index stores. Pure function of its arguments; arena only recycles
/// scratch.
std::shared_ptr<const VertexCoreTimeIndex> BuildSlice(const TemporalGraph& g,
                                                      uint32_t k, Window range,
                                                      VctBuildArena* arena,
                                                      ThreadPool* pool) {
  return std::make_shared<const VertexCoreTimeIndex>(
      BuildVctAndEcs(g, k, range, arena, pool).vct);
}

/// The per-slice endpoint-connectivity proof behind band tightening: for a
/// start ts, E(ts) = the earliest window end te at which *any* delta edge
/// can sit inside the k-core of the new graph's window [ts, te]. An
/// appended edge (a, b, t) inside that core needs t in [ts, te] and both
/// endpoints at windowed distinct-neighbor degree >= k — each endpoint's
/// earliest qualifying end A(w, ts) is read off one pass over w's
/// time-sorted adjacency slice. Appends only grow k-cores (core times only
/// decrease), and a window whose k-core changed must contain a delta edge
/// with both endpoints in the new core, so a row (u, ts) with old value c
/// is provably pinned whenever c <= E(ts). E is non-decreasing in ts
/// (every term is), which is what lets a per-row check stand in for a
/// per-(vertex, start) sweep.
///
/// Evaluations are memoized per distinct start and budgeted: past
/// kScanBudget adjacency entries, further starts conservatively report
/// "impact possible immediately" (E = 0), degrading to the untightened
/// band instead of burning rebuild time on a huge delta.
class DeltaImpactOracle {
 public:
  DeltaImpactOracle(const TemporalGraph& g, const EdgeDelta& delta)
      : g_(g),
        delta_(delta),
        range_end_(g.FullRange().end),
        stamp_(g.num_vertices(), 0),
        endpoint_end_(g.num_vertices(), 0),
        endpoint_stamp_(g.num_vertices(), 0) {}

  /// Retargets the oracle at slice `k`, dropping the per-start memo (the
  /// stamp arrays survive — epochs only ever grow). One oracle thus serves
  /// every dirty slice of a Rebuild without reallocating.
  void Reset(uint32_t k) {
    k_ = k;
    memo_.clear();
    ++epoch_;
  }

  /// E(ts), memoized. 0 means "cannot prune anything at this start"
  /// (budget exhausted); kInfTime means no delta edge can affect any
  /// window starting at ts.
  Timestamp EarliestImpactEnd(Timestamp ts) {
    auto [it, inserted] = memo_.try_emplace(ts, 0);
    if (!inserted) return it->second;
    if (budget_ <= 0) return it->second = 0;
    Timestamp best = kInfTime;
    ++epoch_;
    // Edges are sorted by time: once an edge's own time reaches the best
    // end found so far, no later edge can improve it (its te >= t).
    for (const TemporalEdge& e : delta_.effective_edges) {
      if (e.t < ts) continue;
      if (e.t >= best) break;
      const Timestamp need = std::max(
          e.t, std::max(EndpointEnd(e.u, ts), EndpointEnd(e.v, ts)));
      best = std::min(best, need);
      if (budget_ <= 0) return it->second = 0;
    }
    return it->second = best;
  }

 private:
  /// A(w, ts): the time at which w's k-th distinct neighbor (in the new
  /// graph) first appears within [ts, range end], kInfTime when fewer than
  /// k distinct neighbors exist there. Memoized per (ts) via epoch stamps.
  Timestamp EndpointEnd(VertexId w, Timestamp ts) {
    if (endpoint_stamp_[w] == epoch_) return endpoint_end_[w];
    endpoint_stamp_[w] = epoch_;
    ++scan_id_;  // fresh distinct-neighbor marks for this scan alone
    uint32_t distinct = 0;
    Timestamp end = kInfTime;
    const auto window = g_.NeighborsInWindow(w, Window{ts, range_end_});
    budget_ -= static_cast<int64_t>(window.size());
    for (const AdjEntry& a : window) {  // sorted by (time, neighbor)
      if (stamp_[a.neighbor] == scan_id_) continue;
      stamp_[a.neighbor] = scan_id_;
      if (++distinct >= k_) {
        end = a.time;
        break;
      }
    }
    return endpoint_end_[w] = end;
  }

  static constexpr int64_t kScanBudget = 1 << 22;  // adjacency entries

  const TemporalGraph& g_;
  const EdgeDelta& delta_;
  uint32_t k_ = 0;
  const Timestamp range_end_;
  int64_t budget_ = kScanBudget;
  uint32_t epoch_ = 0;
  uint32_t scan_id_ = 0;
  std::vector<uint32_t> stamp_;          ///< distinct-neighbor marks
  std::vector<Timestamp> endpoint_end_;  ///< A(w, ts) memo for this epoch
  std::vector<uint32_t> endpoint_stamp_;
  std::unordered_map<Timestamp, Timestamp> memo_;
};

/// Earliest start time at which slice `k` of the old index could disagree
/// with the new graph's slice, for an *eligible* append delta (timeline and
/// vertex pool preserved). kInfTime means no (vertex, start) pair can
/// change — the whole slice is provably clean even though k is at or below
/// the delta's core bound.
///
/// A changed core time CT_ts(u) needs a delta edge inside some window
/// starting at ts, so ts <= delta.max_time; and both its old and new value
/// lie at or above delta.min_time (windows ending earlier contain no delta
/// edge, so values below min_time are pinned). Per vertex the old values
/// strictly increase across rows, making the dirty starts a band
/// [first row reaching min_time, max_time]. A vertex with no old rows was
/// never in a k-core of any base window; it can gain membership only by
/// entering the new graph's full-range k-core, and any gain shows at the
/// first start (k-cores grow with the window) — hence the core-number
/// check decides between "clean" and "dirty from the very first start".
///
/// On top of that global bound, `oracle` (when non-null) prunes rows the
/// delta-endpoint connectivity proof pins: a row whose old value c
/// satisfies c <= E(start) cannot change, because every window [start,
/// te < c] provably contains no delta edge whose endpoints both reach
/// degree k. Old values strictly increase per vertex while E is
/// non-decreasing, so the first surviving row is the vertex's first dirty
/// start. Sets `*tightened` when the pruning raised the slice's band start
/// past the untightened bound (or emptied the band).
Timestamp FirstDirtyStart(const VertexCoreTimeIndex& old_slice,
                          const EdgeDelta& delta,
                          const std::vector<uint32_t>& new_core_numbers,
                          uint32_t k, Window range, DeltaImpactOracle* oracle,
                          bool* tightened) {
  Timestamp first = kInfTime;
  Timestamp untightened = kInfTime;
  for (VertexId u = 0; u < old_slice.num_vertices(); ++u) {
    const std::span<const VctEntry> rows = old_slice.EntriesOf(u);
    if (rows.empty()) {
      if (new_core_numbers[u] >= k) {
        // A first-time member's new row appears at the very first start;
        // no endpoint proof can pin it.
        if (tightened != nullptr) *tightened = false;
        return range.start;
      }
      continue;
    }
    auto it = std::lower_bound(
        rows.begin(), rows.end(), delta.min_time,
        [](const VctEntry& e, Timestamp t) { return e.core_time < t; });
    if (it == rows.end()) continue;  // every old value is below min_time
    if (it->start > delta.max_time) continue;  // band opens past the delta
    untightened = std::min(untightened, it->start);
    for (; it != rows.end() && it->start <= delta.max_time; ++it) {
      if (it->start >= first) break;  // a later row cannot lower the band
      if (oracle == nullptr ||
          it->core_time > oracle->EarliestImpactEnd(it->start)) {
        first = std::min(first, it->start);
        break;
      }
    }
    if (first == range.start) break;  // cannot get lower
  }
  if (tightened != nullptr) *tightened = first != untightened;
  return first;
}

}  // namespace

StatusOr<PhcIndex> PhcIndex::Build(const TemporalGraph& g, Window range,
                                   uint32_t max_k) {
  PhcBuildOptions options;
  options.max_k = max_k;
  options.pool = &ThreadPool::Shared();
  return Build(g, range, options);
}

StatusOr<PhcIndex> PhcIndex::Build(const TemporalGraph& g, Window range,
                                   const PhcBuildOptions& options) {
  if (range.start < 1 || range.start > range.end ||
      range.end > g.num_timestamps()) {
    return Status::InvalidArgument(
        "query range must satisfy 1 <= Ts <= Te <= num_timestamps");
  }
  PhcIndex index;
  index.range_ = range;
  const uint32_t span_kmax = DecomposeCores(g, range).kmax;
  uint32_t kmax = span_kmax;
  if (options.max_k > 0) kmax = std::min(kmax, options.max_k);
  // Complete iff every k with a non-empty core got a slice — the cap was
  // absent or at least as large as the span's kmax.
  index.complete_ = options.max_k == 0 || span_kmax <= options.max_k;
  // Slice k lands at index k-1 no matter which worker computes it or when
  // it finishes, so the result is bit-identical to a serial build. Each
  // build is a pure function of (g, k, range); the arena only recycles
  // scratch allocations. The pool is also handed to each slice build: fanned
  // slice workers degrade it to an inline loop (nested ParallelFor), but
  // the serial path below — notably the kmax == 1 case a snapshot rebuild
  // on a dedicated thread can hit — parallelizes the slice's bootstrap.
  index.slices_.resize(kmax);
  ThreadPool* pool = options.pool;
  if (pool == nullptr || pool->num_threads() <= 1 || kmax <= 1) {
    VctBuildArena arena;
    for (uint32_t k = 1; k <= kmax; ++k) {
      index.slices_[k - 1] = BuildSlice(g, k, range, &arena, pool);
    }
  } else {
    std::vector<VctBuildArena> arenas(pool->num_threads());
    pool->ParallelFor(kmax, [&](size_t i, int worker) {
      index.slices_[i] = BuildSlice(g, static_cast<uint32_t>(i) + 1, range,
                                    &arenas[worker], pool);
    });
  }
  return index;
}

StatusOr<PhcIndex> PhcIndex::Rebuild(const PhcIndex& old_index,
                                     const TemporalGraph& g,
                                     const EdgeDelta& delta,
                                     const PhcBuildOptions& options,
                                     PhcRebuildStats* stats) {
  const Window range = g.FullRange();
  if (!range.Valid()) {
    return Status::InvalidArgument("graph has no timestamps to index");
  }
  PhcRebuildStats local;

  // Reuse preconditions: the new graph's compacted timeline and vertex
  // pool must be the base graph's (otherwise old slices are expressed in
  // stale coordinates / shapes), and the old index must cover exactly this
  // range over this vertex count. delta.vertices_preserved ties the new
  // graph to the base graph; the slice check ties the old index to both.
  const bool eligible =
      delta.timestamps_preserved && delta.vertices_preserved &&
      old_index.range() == range && old_index.max_k() >= 1 &&
      old_index.Slice(1).num_vertices() == g.num_vertices();
  if (eligible) {
    // Every k-core with k > max_core_bound is unchanged by the delta (no
    // delta edge can join it), so those slices are provably identical. An
    // empty delta leaves the whole graph — hence every slice — unchanged.
    local.clean_above_k = delta.empty() ? 0 : delta.max_core_bound;
  }

  // Empty-delta fast path: the graph is bit-identical to the base, so a
  // complete old index that also satisfies the requested cap *is* the
  // result — skip even the core decomposition. (A capped/incomplete old
  // index falls through: the general path still reuses all its slices and
  // recomputes only kmax/completeness.)
  if (eligible && delta.empty() && old_index.complete() &&
      (options.max_k == 0 || old_index.max_k() <= options.max_k)) {
    local.slices_reused = old_index.max_k();
    local.rows_reused = local.rows_total = old_index.size();
    if (stats != nullptr) *stats = local;
    return old_index;  // cheap copy: slices are shared
  }

  PhcIndex index;
  index.range_ = range;
  const CoreDecompositionResult cores = DecomposeCores(g, range);
  const uint32_t span_kmax = cores.kmax;
  uint32_t kmax = span_kmax;
  if (options.max_k > 0) kmax = std::min(kmax, options.max_k);
  index.complete_ = options.max_k == 0 || span_kmax <= options.max_k;
  index.slices_.resize(kmax);

  // Classify every slice: reuse whole (by pointer), maintain partially
  // (recompute only the dirty start band), or rebuild from scratch. All
  // decisions read the old index and the delta only, so they are
  // deterministic at any thread count.
  struct SuffixTask {
    uint32_t k = 0;
    Timestamp first_dirty = 0;  // first recomputed start
  };
  std::vector<uint32_t> full;
  std::vector<SuffixTask> partial;
  full.reserve(kmax);
  // The endpoint-connectivity oracle is only as good as the delta's edge
  // list: a delta assembled by hand (or from an older serialization) may
  // carry counts without edges, in which case tightening silently stands
  // down to the global band.
  const bool tighten =
      local.reuse_eligible() &&
      delta.effective_edges.size() == delta.edges_appended &&
      !delta.effective_edges.empty();
  std::optional<DeltaImpactOracle> oracle;
  if (tighten) oracle.emplace(g, delta);
  for (uint32_t k = 1; k <= kmax; ++k) {
    if (!local.reuse_eligible() || k > old_index.max_k()) {
      full.push_back(k);
      continue;
    }
    if (k > local.clean_above_k) {
      index.slices_[k - 1] = old_index.slices_[k - 1];  // shared, by pointer
      ++local.slices_reused;
      local.rows_reused += old_index.slices_[k - 1]->size();
      continue;
    }
    // Dirty by the core bound — but the delta's time extent may still pin
    // most (or all) of the slice's rows.
    if (oracle.has_value()) oracle->Reset(k);
    bool tightened = false;
    const Timestamp first_dirty = FirstDirtyStart(
        old_index.Slice(k), delta, cores.core_numbers, k, range,
        oracle.has_value() ? &*oracle : nullptr, &tightened);
    if (tightened) ++local.bands_tightened;
    if (first_dirty == kInfTime) {
      index.slices_[k - 1] = old_index.slices_[k - 1];  // provably clean
      ++local.slices_reused;
      local.rows_reused += old_index.slices_[k - 1]->size();
    } else if (first_dirty == range.start && delta.max_time == range.end) {
      full.push_back(k);  // the dirty band is the whole slice
    } else {
      partial.push_back(SuffixTask{k, first_dirty});
      local.suffix_bands.push_back(
          PhcRebuildStats::SuffixBand{k, first_dirty, delta.max_time});
    }
  }
  local.slices_rebuilt = static_cast<uint32_t>(full.size());
  local.suffix_rebuilds = static_cast<uint32_t>(partial.size());

  // Rebuild the dirty slices exactly as Build would — same builder, same
  // arena discipline, slot k-1 regardless of worker/completion order —
  // and splice the partial ones: recompute starts
  // [first_dirty, delta.max_time] over the suffix window, carry the
  // prefix/tail rows from the old slice. Per-task row counts land in
  // fixed slots so the reuse accounting is deterministic too.
  std::vector<uint64_t> partial_rows(partial.size(), 0);
  auto run_task = [&](size_t i, VctBuildArena* arena, ThreadPool* pool) {
    if (i < full.size()) {
      const uint32_t k = full[i];
      index.slices_[k - 1] = BuildSlice(g, k, range, arena, pool);
      return;
    }
    const SuffixTask& task = partial[i - full.size()];
    const Window suffix{task.first_dirty, range.end};
    const VertexCoreTimeIndex band =
        BuildVctSuffix(g, task.k, suffix, delta.max_time, arena, pool);
    index.slices_[task.k - 1] = std::make_shared<const VertexCoreTimeIndex>(
        StitchCoreTimeSuffix(old_index.Slice(task.k), band, task.first_dirty,
                             delta.max_time, &partial_rows[i - full.size()]));
  };
  const size_t num_tasks = full.size() + partial.size();
  ThreadPool* pool = options.pool;
  if (pool == nullptr || pool->num_threads() <= 1 || num_tasks <= 1) {
    VctBuildArena arena;
    for (size_t i = 0; i < num_tasks; ++i) run_task(i, &arena, pool);
  } else {
    std::vector<VctBuildArena> arenas(pool->num_threads());
    pool->ParallelFor(num_tasks, [&](size_t i, int worker) {
      run_task(i, &arenas[worker], pool);
    });
  }
  for (uint64_t rows : partial_rows) local.rows_reused += rows;
  for (const auto& slice : index.slices_) local.rows_total += slice->size();
  if (stats != nullptr) *stats = local;
  return index;
}

StatusOr<PhcIndex> PhcIndex::FromSlices(
    Window range, bool complete, std::vector<VertexCoreTimeIndex> slices) {
  if (!range.Valid()) {
    return Status::InvalidArgument("PhcIndex range is invalid");
  }
  for (size_t i = 0; i < slices.size(); ++i) {
    if (slices[i].range() != range) {
      return Status::InvalidArgument("slice " + std::to_string(i + 1) +
                                     " covers a different range");
    }
    if (slices[i].num_vertices() != slices[0].num_vertices()) {
      return Status::InvalidArgument("slice " + std::to_string(i + 1) +
                                     " has a different vertex count");
    }
  }
  PhcIndex index;
  index.range_ = range;
  index.complete_ = complete;
  index.slices_.reserve(slices.size());
  for (VertexCoreTimeIndex& slice : slices) {
    index.slices_.push_back(
        std::make_shared<const VertexCoreTimeIndex>(std::move(slice)));
  }
  return index;
}

const VertexCoreTimeIndex& PhcIndex::Slice(uint32_t k) const {
  TKC_CHECK(k >= 1 && k <= slices_.size());
  return *slices_[k - 1];
}

std::shared_ptr<const VertexCoreTimeIndex> PhcIndex::SliceShared(
    uint32_t k) const {
  TKC_CHECK(k >= 1 && k <= slices_.size());
  return slices_[k - 1];
}

Timestamp PhcIndex::CoreTimeAt(VertexId u, Timestamp ts, uint32_t k) const {
  if (k == 0 || k > slices_.size()) return kInfTime;
  return slices_[k - 1]->CoreTimeAt(u, ts);
}

bool PhcIndex::VertexInCore(VertexId u, Window window, uint32_t k) const {
  TKC_DCHECK(window.ContainedIn(range_));
  return CoreTimeAt(u, window.start, k) <= window.end;
}

uint32_t PhcIndex::HistoricalCoreNumber(VertexId u, Window window) const {
  // Membership is monotone: in the k-core implies in the (k-1)-core.
  uint32_t lo = 0, hi = max_k();
  while (lo < hi) {
    uint32_t mid = (lo + hi + 1) / 2;
    if (VertexInCore(u, window, mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

uint64_t PhcIndex::size() const {
  uint64_t total = 0;
  for (const auto& slice : slices_) total += slice->size();
  return total;
}

bool operator==(const PhcIndex& a, const PhcIndex& b) {
  if (a.range() != b.range() || a.complete() != b.complete() ||
      a.max_k() != b.max_k()) {
    return false;
  }
  for (uint32_t k = 1; k <= a.max_k(); ++k) {
    if (a.SliceShared(k) == b.SliceShared(k)) continue;  // shared: equal
    if (!(a.Slice(k) == b.Slice(k))) return false;
  }
  return true;
}

uint64_t PhcIndex::MemoryUsageBytes() const {
  // Shared slices are counted in full: this reports the index's logical
  // footprint, not the marginal cost over other snapshots' indexes.
  uint64_t total = 0;
  for (const auto& slice : slices_) total += slice->MemoryUsageBytes();
  return total;
}

}  // namespace tkc
