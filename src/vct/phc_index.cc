#include "vct/phc_index.h"

#include <algorithm>
#include <vector>

#include "graph/core_decomposition.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "vct/vct_builder.h"

namespace tkc {

StatusOr<PhcIndex> PhcIndex::Build(const TemporalGraph& g, Window range,
                                   uint32_t max_k) {
  PhcBuildOptions options;
  options.max_k = max_k;
  options.pool = &ThreadPool::Shared();
  return Build(g, range, options);
}

StatusOr<PhcIndex> PhcIndex::Build(const TemporalGraph& g, Window range,
                                   const PhcBuildOptions& options) {
  if (range.start < 1 || range.start > range.end ||
      range.end > g.num_timestamps()) {
    return Status::InvalidArgument(
        "query range must satisfy 1 <= Ts <= Te <= num_timestamps");
  }
  PhcIndex index;
  index.range_ = range;
  const uint32_t span_kmax = DecomposeCores(g, range).kmax;
  uint32_t kmax = span_kmax;
  if (options.max_k > 0) kmax = std::min(kmax, options.max_k);
  // Complete iff every k with a non-empty core got a slice — the cap was
  // absent or at least as large as the span's kmax.
  index.complete_ = options.max_k == 0 || span_kmax <= options.max_k;
  // Slice k lands at index k-1 no matter which worker computes it or when
  // it finishes, so the result is bit-identical to a serial build. Each
  // build is a pure function of (g, k, range); the arena only recycles
  // scratch allocations. The pool is also handed to each slice build: fanned
  // slice workers degrade it to an inline loop (nested ParallelFor), but
  // the serial path below — notably the kmax == 1 case a snapshot rebuild
  // on a dedicated thread can hit — parallelizes the slice's bootstrap.
  index.slices_.resize(kmax);
  ThreadPool* pool = options.pool;
  if (pool == nullptr || pool->num_threads() <= 1 || kmax <= 1) {
    VctBuildArena arena;
    for (uint32_t k = 1; k <= kmax; ++k) {
      index.slices_[k - 1] = BuildVctAndEcs(g, k, range, &arena, pool).vct;
    }
  } else {
    std::vector<VctBuildArena> arenas(pool->num_threads());
    pool->ParallelFor(kmax, [&](size_t i, int worker) {
      index.slices_[i] =
          BuildVctAndEcs(g, static_cast<uint32_t>(i) + 1, range,
                         &arenas[worker], pool)
              .vct;
    });
  }
  return index;
}

StatusOr<PhcIndex> PhcIndex::FromSlices(
    Window range, bool complete, std::vector<VertexCoreTimeIndex> slices) {
  if (!range.Valid()) {
    return Status::InvalidArgument("PhcIndex range is invalid");
  }
  for (size_t i = 0; i < slices.size(); ++i) {
    if (slices[i].range() != range) {
      return Status::InvalidArgument("slice " + std::to_string(i + 1) +
                                     " covers a different range");
    }
    if (slices[i].num_vertices() != slices[0].num_vertices()) {
      return Status::InvalidArgument("slice " + std::to_string(i + 1) +
                                     " has a different vertex count");
    }
  }
  PhcIndex index;
  index.range_ = range;
  index.complete_ = complete;
  index.slices_ = std::move(slices);
  return index;
}

const VertexCoreTimeIndex& PhcIndex::Slice(uint32_t k) const {
  TKC_CHECK(k >= 1 && k <= slices_.size());
  return slices_[k - 1];
}

Timestamp PhcIndex::CoreTimeAt(VertexId u, Timestamp ts, uint32_t k) const {
  if (k == 0 || k > slices_.size()) return kInfTime;
  return slices_[k - 1].CoreTimeAt(u, ts);
}

bool PhcIndex::VertexInCore(VertexId u, Window window, uint32_t k) const {
  TKC_DCHECK(window.ContainedIn(range_));
  return CoreTimeAt(u, window.start, k) <= window.end;
}

uint32_t PhcIndex::HistoricalCoreNumber(VertexId u, Window window) const {
  // Membership is monotone: in the k-core implies in the (k-1)-core.
  uint32_t lo = 0, hi = max_k();
  while (lo < hi) {
    uint32_t mid = (lo + hi + 1) / 2;
    if (VertexInCore(u, window, mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

uint64_t PhcIndex::size() const {
  uint64_t total = 0;
  for (const auto& slice : slices_) total += slice.size();
  return total;
}

uint64_t PhcIndex::MemoryUsageBytes() const {
  uint64_t total = 0;
  for (const auto& slice : slices_) total += slice.MemoryUsageBytes();
  return total;
}

}  // namespace tkc
