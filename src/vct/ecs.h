#ifndef TKC_VCT_ECS_H_
#define TKC_VCT_ECS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"

/// \file ecs.h
/// The Edge Core Window Skyline (ECS, Definition 5 / Table II): for each
/// temporal edge e of the query window, the set of its *minimal core
/// windows* — inclusion-minimal windows [t1,t2] such that e belongs to the
/// temporal k-core of G[t1,t2]. Per edge the windows form a skyline: sorted
/// by start they have strictly increasing starts AND strictly increasing
/// ends (otherwise one would contain another).
///
/// Storage is CSR over the contiguous EdgeId range of the query window, so
/// lookups are O(1) and the whole structure is two flat arrays.

namespace tkc {

/// Immutable per-query ECS.
class EdgeCoreWindowSkyline {
 public:
  EdgeCoreWindowSkyline() = default;

  /// Builds from flat (edge, window) emissions, where `edge` is a GLOBAL
  /// EdgeId within [first_edge, last_edge). Emissions for one edge must be
  /// in increasing start order; across edges any order.
  static EdgeCoreWindowSkyline FromEmissions(
      EdgeId first_edge, EdgeId last_edge, Window range,
      std::span<const std::pair<EdgeId, Window>> emissions);

  /// Query range the skyline was built for.
  Window range() const { return range_; }

  /// Global EdgeId range [first_edge, last_edge) covered.
  EdgeId first_edge() const { return first_edge_; }
  EdgeId last_edge() const { return last_edge_; }
  uint32_t num_edges() const { return last_edge_ - first_edge_; }

  /// Minimal core windows of edge `e` (global id), ascending by start.
  /// Empty iff e is in no k-core of any window within the range.
  std::span<const Window> WindowsOf(EdgeId e) const {
    uint32_t local = LocalId(e);
    return {windows_.data() + offsets_[local],
            windows_.data() + offsets_[local + 1]};
  }

  /// Total number of minimal core windows — the paper's |ECS|.
  uint64_t size() const { return windows_.size(); }

  /// Calls fn(edge_id, window) for every window, grouped by edge.
  template <typename Fn>
  void ForEachWindow(Fn&& fn) const {
    for (EdgeId e = first_edge_; e < last_edge_; ++e) {
      for (const Window& w : WindowsOf(e)) fn(e, w);
    }
  }

  uint64_t MemoryUsageBytes() const;

  /// Debug rendering of one edge's windows, e.g. "[2,3] [3,5]".
  std::string DebugString(EdgeId e) const;

 private:
  uint32_t LocalId(EdgeId e) const;

  Window range_{0, 0};
  EdgeId first_edge_ = 0;
  EdgeId last_edge_ = 0;
  std::vector<uint32_t> offsets_;  // size num_edges()+1
  std::vector<Window> windows_;
};

}  // namespace tkc

#endif  // TKC_VCT_ECS_H_
