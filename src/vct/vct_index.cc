#include "vct/vct_index.h"

#include <algorithm>

#include "util/check.h"
#include "util/mem.h"

namespace tkc {

VertexCoreTimeIndex VertexCoreTimeIndex::FromEmissions(
    VertexId num_vertices, Window range,
    std::span<const std::pair<VertexId, VctEntry>> emissions) {
  VertexCoreTimeIndex index;
  index.range_ = range;
  index.offsets_.assign(num_vertices + 1, 0);
  for (const auto& [v, entry] : emissions) {
    (void)entry;
    TKC_DCHECK(v < num_vertices);
    ++index.offsets_[v + 1];
  }
  for (size_t i = 1; i < index.offsets_.size(); ++i) {
    index.offsets_[i] += index.offsets_[i - 1];
  }
  index.entries_.resize(emissions.size());
  std::vector<uint32_t> cursor(index.offsets_.begin(),
                               index.offsets_.end() - 1);
  for (const auto& [v, entry] : emissions) {
    index.entries_[cursor[v]++] = entry;
  }
#ifndef NDEBUG
  // Per-vertex entries must be strictly increasing in start and have
  // non-decreasing core times (monotonicity of CT in ts).
  for (VertexId v = 0; v < num_vertices; ++v) {
    auto es = index.EntriesOf(v);
    for (size_t i = 1; i < es.size(); ++i) {
      TKC_DCHECK(es[i - 1].start < es[i].start);
      TKC_DCHECK(es[i - 1].core_time <= es[i].core_time);
    }
  }
#endif
  return index;
}

Timestamp VertexCoreTimeIndex::CoreTimeAt(VertexId u, Timestamp ts) const {
  TKC_DCHECK(ts >= range_.start && ts <= range_.end);
  auto entries = EntriesOf(u);
  // Last entry with start <= ts.
  auto it = std::upper_bound(
      entries.begin(), entries.end(), ts,
      [](Timestamp t, const VctEntry& e) { return t < e.start; });
  if (it == entries.begin()) return kInfTime;
  return (it - 1)->core_time;
}

uint64_t VertexCoreTimeIndex::num_indexed_vertices() const {
  uint64_t count = 0;
  for (size_t i = 1; i < offsets_.size(); ++i) {
    if (offsets_[i] > offsets_[i - 1]) ++count;
  }
  return count;
}

uint64_t VertexCoreTimeIndex::MemoryUsageBytes() const {
  return ApproxVectorBytes(offsets_) + ApproxVectorBytes(entries_);
}

bool operator==(const VertexCoreTimeIndex& a, const VertexCoreTimeIndex& b) {
  if (a.range() != b.range() || a.num_vertices() != b.num_vertices() ||
      a.size() != b.size()) {
    return false;
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    auto ea = a.EntriesOf(v);
    auto eb = b.EntriesOf(v);
    if (!std::equal(ea.begin(), ea.end(), eb.begin(), eb.end())) return false;
  }
  return true;
}

std::string VertexCoreTimeIndex::DebugString(VertexId u) const {
  std::string out;
  for (const VctEntry& e : EntriesOf(u)) {
    if (!out.empty()) out += ' ';
    out += '[';
    out += std::to_string(e.start);
    out += ',';
    out += e.core_time == kInfTime ? "inf" : std::to_string(e.core_time);
    out += ']';
  }
  return out;
}

}  // namespace tkc
