#include "vct/vct_index.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/mem.h"

namespace tkc {

VertexCoreTimeIndex VertexCoreTimeIndex::FromEmissions(
    VertexId num_vertices, Window range,
    std::span<const std::pair<VertexId, VctEntry>> emissions) {
  VertexCoreTimeIndex index;
  index.range_ = range;
  index.offsets_.assign(num_vertices + 1, 0);
  for (const auto& [v, entry] : emissions) {
    (void)entry;
    TKC_DCHECK(v < num_vertices);
    ++index.offsets_[v + 1];
  }
  for (size_t i = 1; i < index.offsets_.size(); ++i) {
    index.offsets_[i] += index.offsets_[i - 1];
  }
  index.entries_.resize(emissions.size());
  std::vector<uint32_t> cursor(index.offsets_.begin(),
                               index.offsets_.end() - 1);
  for (const auto& [v, entry] : emissions) {
    index.entries_[cursor[v]++] = entry;
  }
#ifndef NDEBUG
  // Per-vertex entries must be strictly increasing in start and have
  // non-decreasing core times (monotonicity of CT in ts).
  for (VertexId v = 0; v < num_vertices; ++v) {
    auto es = index.EntriesOf(v);
    for (size_t i = 1; i < es.size(); ++i) {
      TKC_DCHECK(es[i - 1].start < es[i].start);
      TKC_DCHECK(es[i - 1].core_time <= es[i].core_time);
    }
  }
#endif
  return index;
}

Timestamp VertexCoreTimeIndex::CoreTimeAt(VertexId u, Timestamp ts) const {
  TKC_DCHECK(ts >= range_.start && ts <= range_.end);
  auto entries = EntriesOf(u);
  // Last entry with start <= ts.
  auto it = std::upper_bound(
      entries.begin(), entries.end(), ts,
      [](Timestamp t, const VctEntry& e) { return t < e.start; });
  if (it == entries.begin()) return kInfTime;
  return (it - 1)->core_time;
}

uint64_t VertexCoreTimeIndex::num_indexed_vertices() const {
  uint64_t count = 0;
  for (size_t i = 1; i < offsets_.size(); ++i) {
    if (offsets_[i] > offsets_[i - 1]) ++count;
  }
  return count;
}

uint64_t VertexCoreTimeIndex::MemoryUsageBytes() const {
  return ApproxVectorBytes(offsets_) + ApproxVectorBytes(entries_);
}

bool operator==(const VertexCoreTimeIndex& a, const VertexCoreTimeIndex& b) {
  if (a.range() != b.range() || a.num_vertices() != b.num_vertices() ||
      a.size() != b.size()) {
    return false;
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    auto ea = a.EntriesOf(v);
    auto eb = b.EntriesOf(v);
    if (!std::equal(ea.begin(), ea.end(), eb.begin(), eb.end())) return false;
  }
  return true;
}

VertexCoreTimeIndex StitchCoreTimeSuffix(const VertexCoreTimeIndex& base,
                                         const VertexCoreTimeIndex& suffix,
                                         Timestamp suffix_start,
                                         Timestamp advance_end,
                                         uint64_t* rows_reused) {
  const Window range = base.range();
  TKC_CHECK(suffix_start >= range.start && suffix_start <= advance_end &&
            advance_end <= range.end);
  TKC_CHECK_EQ(suffix.num_vertices(), base.num_vertices());
  uint64_t reused = 0;
  std::vector<std::pair<VertexId, VctEntry>> emissions;
  emissions.reserve(base.size());
  for (VertexId u = 0; u < base.num_vertices(); ++u) {
    const std::span<const VctEntry> be = base.EntriesOf(u);
    const std::span<const VctEntry> se = suffix.EntriesOf(u);
    // Prefix: base rows before the recomputed band carry verbatim.
    size_t i = 0;
    Timestamp value = kInfTime;       // stitched value at the current start
    Timestamp base_value = kInfTime;  // base's value at the same start
    for (; i < be.size() && be[i].start < suffix_start; ++i) {
      emissions.emplace_back(u, be[i]);
      value = be[i].core_time;
      ++reused;
    }
    base_value = value;
    // Recomputed band. The builder's emission convention makes `se` the
    // canonical rows of the new function on [suffix_start, advance_end]:
    // first row at suffix_start iff the value there is finite (an empty
    // list means "infinite throughout the band" — core times are
    // non-decreasing in ts, so an infinite value at suffix_start never
    // becomes finite later in the band). Only the row at suffix_start can
    // collide with the carried prefix value; later rows are genuine
    // breakpoints of the stitched function too.
    if (se.empty()) {
      if (value != kInfTime) {
        emissions.emplace_back(u, VctEntry{suffix_start, kInfTime});
        value = kInfTime;
      }
    } else {
      TKC_DCHECK(se.front().start == suffix_start);
      TKC_DCHECK(se.back().start <= advance_end);
      for (size_t j = 0; j < se.size(); ++j) {
        if (j == 0 && se[j].core_time == value) continue;  // no breakpoint
        emissions.emplace_back(u, se[j]);
      }
      value = se.back().core_time;
    }
    // Tail: base's value at advance_end + 1 decides the seam row; base
    // rows strictly after that start are breakpoints of the stitched
    // function unchanged (their predecessor start also reads base's
    // values).
    if (advance_end < range.end) {
      for (; i < be.size() && be[i].start <= advance_end + 1; ++i) {
        base_value = be[i].core_time;
      }
      if (base_value != value) {
        emissions.emplace_back(
            u, VctEntry{static_cast<Timestamp>(advance_end + 1), base_value});
      }
      for (; i < be.size(); ++i) {
        emissions.emplace_back(u, be[i]);
        ++reused;
      }
    }
  }
  if (rows_reused != nullptr) *rows_reused += reused;
  return VertexCoreTimeIndex::FromEmissions(base.num_vertices(), range,
                                            emissions);
}

std::string VertexCoreTimeIndex::DebugString(VertexId u) const {
  std::string out;
  for (const VctEntry& e : EntriesOf(u)) {
    if (!out.empty()) out += ' ';
    out += '[';
    out += std::to_string(e.start);
    out += ',';
    out += e.core_time == kInfTime ? "inf" : std::to_string(e.core_time);
    out += ']';
  }
  return out;
}

}  // namespace tkc
