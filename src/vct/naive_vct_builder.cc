#include "vct/naive_vct_builder.h"

#include <algorithm>

#include "util/check.h"
#include "util/mem.h"

namespace tkc {

namespace {

uint64_t PairKey(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

// Index of `key` in the sorted `keys` array; the key must be present.
uint32_t PairIdOf(const std::vector<uint64_t>& keys, uint64_t key) {
  auto it = std::lower_bound(keys.begin(), keys.end(), key);
  TKC_DCHECK(it != keys.end() && *it == key);
  return static_cast<uint32_t>(it - keys.begin());
}

// Index of `v` in the sorted `verts` array; must be present.
uint32_t LocalIdOf(const std::vector<VertexId>& verts, VertexId v) {
  auto it = std::lower_bound(verts.begin(), verts.end(), v);
  TKC_DCHECK(it != verts.end() && *it == v);
  return static_cast<uint32_t>(it - verts.begin());
}

}  // namespace

void CoreTimeSweep(const TemporalGraph& g, uint32_t k, Timestamp ts,
                   Timestamp te_max, std::vector<Timestamp>* out,
                   SweepScratch* scratch) {
  TKC_CHECK_GE(k, 1u);
  TKC_CHECK_LE(ts, te_max);
  out->assign(g.num_vertices(), kInfTime);

  SweepScratch& s = *scratch;
  const Window window{ts, te_max};
  auto edges = g.EdgesInWindow(window);
  if (edges.empty()) return;

  // --- Local vertex ids over the window's endpoints. -------------------
  s.verts.clear();
  for (const TemporalEdge& e : edges) {
    s.verts.push_back(e.u);
    s.verts.push_back(e.v);
  }
  std::sort(s.verts.begin(), s.verts.end());
  s.verts.erase(std::unique(s.verts.begin(), s.verts.end()), s.verts.end());
  const uint32_t nv = static_cast<uint32_t>(s.verts.size());

  // --- Distinct vertex pairs with live parallel-edge counts. -----------
  s.pair_keys.clear();
  for (const TemporalEdge& e : edges) s.pair_keys.push_back(PairKey(e.u, e.v));
  std::sort(s.pair_keys.begin(), s.pair_keys.end());
  s.pair_live.assign(s.pair_keys.size(), 0);  // counted below, post-unique
  {
    // Unique with counts.
    size_t write = 0;
    for (size_t read = 0; read < s.pair_keys.size();) {
      size_t run = read;
      while (run < s.pair_keys.size() && s.pair_keys[run] == s.pair_keys[read])
        ++run;
      s.pair_keys[write] = s.pair_keys[read];
      s.pair_live[write] = static_cast<uint32_t>(run - read);
      ++write;
      read = run;
    }
    s.pair_keys.resize(write);
    s.pair_live.resize(write);
  }
  const uint32_t np = static_cast<uint32_t>(s.pair_keys.size());

  // --- CSR of incident pairs per local vertex. --------------------------
  s.vp_offsets.assign(nv + 1, 0);
  for (uint32_t p = 0; p < np; ++p) {
    VertexId u = static_cast<VertexId>(s.pair_keys[p] >> 32);
    VertexId v = static_cast<VertexId>(s.pair_keys[p] & 0xffffffffu);
    ++s.vp_offsets[LocalIdOf(s.verts, u) + 1];
    ++s.vp_offsets[LocalIdOf(s.verts, v) + 1];
  }
  for (size_t i = 1; i < s.vp_offsets.size(); ++i) {
    s.vp_offsets[i] += s.vp_offsets[i - 1];
  }
  s.vp_pair.resize(s.vp_offsets.back());
  s.vp_other.resize(s.vp_offsets.back());
  {
    std::vector<uint32_t> cursor(s.vp_offsets.begin(), s.vp_offsets.end() - 1);
    for (uint32_t p = 0; p < np; ++p) {
      uint32_t lu = LocalIdOf(
          s.verts, static_cast<VertexId>(s.pair_keys[p] >> 32));
      uint32_t lv = LocalIdOf(
          s.verts, static_cast<VertexId>(s.pair_keys[p] & 0xffffffffu));
      s.vp_pair[cursor[lu]] = p;
      s.vp_other[cursor[lu]++] = lv;
      s.vp_pair[cursor[lv]] = p;
      s.vp_other[cursor[lv]++] = lu;
    }
  }

  // --- Initial peel of the widest window [ts, te_max]. ------------------
  s.degree.assign(nv, 0);
  for (uint32_t lu = 0; lu < nv; ++lu) {
    s.degree[lu] = s.vp_offsets[lu + 1] - s.vp_offsets[lu];
  }
  s.in_core.assign(nv, 1);
  s.queued.assign(nv, 0);
  s.stack.clear();
  for (uint32_t lu = 0; lu < nv; ++lu) {
    if (s.degree[lu] < k) {
      s.queued[lu] = 1;
      s.stack.push_back(lu);
    }
  }
  // Removes local vertex `lu` from the current core, assigning core time
  // `ct_value`, and cascades.
  auto cascade = [&](Timestamp ct_value) {
    while (!s.stack.empty()) {
      uint32_t lu = s.stack.back();
      s.stack.pop_back();
      if (!s.in_core[lu]) continue;
      s.in_core[lu] = 0;
      (*out)[s.verts[lu]] = ct_value;
      for (uint32_t i = s.vp_offsets[lu]; i < s.vp_offsets[lu + 1]; ++i) {
        uint32_t p = s.vp_pair[i];
        if (s.pair_live[p] == 0) continue;
        s.pair_live[p] = 0;
        uint32_t lw = s.vp_other[i];
        if (!s.in_core[lw]) continue;
        if (--s.degree[lw] < k && !s.queued[lw]) {
          s.queued[lw] = 1;
          s.stack.push_back(lw);
        }
      }
    }
  };
  cascade(kInfTime);  // vertices outside the core of the widest window

  // --- Decremental deletion of the latest timestamp, te_max .. ts+1. ----
  for (Timestamp te = te_max; te > ts; --te) {
    for (const TemporalEdge& e : g.EdgesAtTime(te)) {
      uint32_t p = PairIdOf(s.pair_keys, PairKey(e.u, e.v));
      if (s.pair_live[p] == 0) continue;  // endpoint already peeled
      if (--s.pair_live[p] != 0) continue;  // parallel edge still live
      uint32_t lu = LocalIdOf(s.verts, e.u);
      uint32_t lv = LocalIdOf(s.verts, e.v);
      TKC_DCHECK(s.in_core[lu] && s.in_core[lv]);
      if (--s.degree[lu] < k && !s.queued[lu]) {
        s.queued[lu] = 1;
        s.stack.push_back(lu);
      }
      if (--s.degree[lv] < k && !s.queued[lv]) {
        s.queued[lv] = 1;
        s.stack.push_back(lv);
      }
    }
    // Vertices peeled now are in the core of [ts,te] but not [ts,te-1].
    cascade(te);
  }

  // Survivors are in the core of the single-timestamp window [ts, ts].
  for (uint32_t lu = 0; lu < nv; ++lu) {
    if (s.in_core[lu]) (*out)[s.verts[lu]] = ts;
  }
}

VctBuildResult BuildVctAndEcsNaive(const TemporalGraph& g, uint32_t k,
                                   Window range) {
  TKC_CHECK(range.start >= 1 && range.end <= g.num_timestamps() &&
            range.start <= range.end);
  VctBuildResult result;

  const auto [first_edge, last_edge] = g.EdgeIdRangeInWindow(range);
  SweepScratch scratch;
  std::vector<Timestamp> ct, prev_ct;
  std::vector<std::pair<VertexId, VctEntry>> vct_emissions;
  std::vector<std::pair<EdgeId, Window>> ecs_emissions;

  // Edge core times (ect) for live edges, indexed locally.
  std::vector<Timestamp> ect(last_edge - first_edge, kInfTime);

  auto max3 = [](Timestamp a, Timestamp b, Timestamp c) {
    return std::max(a, std::max(b, c));
  };

  // Vertices ever appearing in the window (for the diff loop).
  std::vector<VertexId> window_verts;
  for (const TemporalEdge& e : g.EdgesInWindow(range)) {
    window_verts.push_back(e.u);
    window_verts.push_back(e.v);
  }
  std::sort(window_verts.begin(), window_verts.end());
  window_verts.erase(std::unique(window_verts.begin(), window_verts.end()),
                     window_verts.end());

  for (Timestamp s = range.start; s <= range.end; ++s) {
    CoreTimeSweep(g, k, s, range.end, &ct, &scratch);

    if (s == range.start) {
      for (VertexId v : window_verts) {
        if (ct[v] != kInfTime) {
          vct_emissions.push_back({v, VctEntry{s, ct[v]}});
        }
      }
      for (EdgeId e = first_edge; e < last_edge; ++e) {
        const TemporalEdge& te = g.edge(e);
        ect[e - first_edge] = max3(ct[te.u], ct[te.v], te.t);
      }
    } else {
      // Vertex diffs -> VCT entries (record changes, including -> inf).
      for (VertexId v : window_verts) {
        if (ct[v] != prev_ct[v]) {
          TKC_DCHECK(prev_ct[v] != kInfTime);  // monotone: inf stays inf
          vct_emissions.push_back({v, VctEntry{s, ct[v]}});
        }
      }
      // Edges that left the window at this transition: time == s-1.
      auto [lo, hi] = g.EdgeIdRangeAtTime(s - 1);
      for (EdgeId e = std::max(lo, first_edge); e < std::min(hi, last_edge);
           ++e) {
        if (ect[e - first_edge] != kInfTime) {
          ecs_emissions.push_back({e, Window{s - 1, ect[e - first_edge]}});
          ect[e - first_edge] = kInfTime;
        }
      }
      // Re-derive edge core times of all live edges (time >= s).
      auto [live_lo, live_hi] = g.EdgeIdRangeInWindow(Window{s, range.end});
      for (EdgeId e = live_lo; e < live_hi; ++e) {
        const TemporalEdge& te = g.edge(e);
        Timestamp now = max3(ct[te.u], ct[te.v], te.t);
        Timestamp& old = ect[e - first_edge];
        if (now != old) {
          TKC_DCHECK(now > old);
          if (old != kInfTime) {
            ecs_emissions.push_back({e, Window{s - 1, old}});
          }
          old = now;
        }
      }
    }
    prev_ct = ct;
  }

  // Final flush: live edges at the last start time (time == range.end).
  {
    auto [lo, hi] = g.EdgeIdRangeAtTime(range.end);
    for (EdgeId e = std::max(lo, first_edge); e < std::min(hi, last_edge);
         ++e) {
      if (ect[e - first_edge] != kInfTime) {
        ecs_emissions.push_back({e, Window{range.end, ect[e - first_edge]}});
      }
    }
  }

  result.peak_memory_bytes =
      ApproxVectorBytes(ct) + ApproxVectorBytes(prev_ct) +
      ApproxVectorBytes(ect) + ApproxVectorBytes(vct_emissions) +
      ApproxVectorBytes(ecs_emissions);
  result.vct = VertexCoreTimeIndex::FromEmissions(g.num_vertices(), range,
                                                  vct_emissions);
  result.ecs = EdgeCoreWindowSkyline::FromEmissions(first_edge, last_edge,
                                                    range, ecs_emissions);
  result.peak_memory_bytes +=
      result.vct.MemoryUsageBytes() + result.ecs.MemoryUsageBytes();
  return result;
}

}  // namespace tkc
