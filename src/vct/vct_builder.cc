#include "vct/vct_builder.h"

#include <algorithm>

#include "util/check.h"
#include "util/mem.h"
#include "util/thread_pool.h"

namespace tkc {

namespace {

Timestamp Max3(Timestamp a, Timestamp b, Timestamp c) {
  return std::max(a, std::max(b, c));
}

/// Elements per task of the bootstrap fan-outs. Each element is a couple of
/// binary searches or a three-way max — far too small to claim one at a
/// time, so the loops shard into blocks this size.
constexpr size_t kBootstrapChunk = 4096;

/// Runs body(i) for i in [0, n): sharded in kBootstrapChunk blocks over
/// `pool` when that wins, else inline. Bodies must write only to index i.
template <typename Body>
void BootstrapFor(ThreadPool* pool, size_t n, const Body& body) {
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2 * kBootstrapChunk) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const size_t chunks = (n + kBootstrapChunk - 1) / kBootstrapChunk;
  pool->ParallelFor(chunks, [&](size_t c, int /*worker*/) {
    const size_t end = std::min(n, (c + 1) * kBootstrapChunk);
    for (size_t i = c * kBootstrapChunk; i < end; ++i) body(i);
  });
}

// Worklist fixpoint engine advancing core times across start times. All
// mutable state lives in the caller's VctBuildArena so repeated builds
// (e.g. the per-k slices of PhcIndex::Build) reuse allocations.
class CoreTimeAdvancer {
 public:
  CoreTimeAdvancer(const TemporalGraph& g, uint32_t k, Window range,
                   VctBuildStats* stats, VctBuildArena* arena,
                   ThreadPool* pool)
      : g_(g), k_(k), range_(range), stats_(stats), a_(*arena) {
    CoreTimeSweep(g_, k_, range_.start, range_.end, &a_.ct, &a_.sweep);
    const VertexId n = g.num_vertices();
    a_.in_queue.assign(n, 0);
    a_.seen_epoch.assign(n, 0);
    a_.changed_epoch.assign(n, 0);
    a_.queue.clear();
    // Window-adjacency cursors: [adj_lo[u], adj_hi[u]) brackets the entries
    // of u with time in [range.start, range.end]. adj_hi is fixed; adj_lo
    // only ever moves forward as the start time advances, so the per-pop
    // binary searches of NeighborsInWindow collapse to an amortized-O(deg)
    // lazy advance over the whole build. Each vertex's cursors are
    // independent, so the placement shards over the pool.
    a_.adj_lo.resize(n);
    a_.adj_hi.resize(n);
    auto time_less = [](const AdjEntry& e, Timestamp t) { return e.time < t; };
    auto less_time = [](Timestamp t, const AdjEntry& e) { return t < e.time; };
    BootstrapFor(pool, n, [&](size_t u) {
      const std::span<const AdjEntry> all =
          g.Neighbors(static_cast<VertexId>(u));
      a_.adj_lo[u] = static_cast<uint32_t>(
          std::lower_bound(all.begin(), all.end(), range.start, time_less) -
          all.begin());
      a_.adj_hi[u] = static_cast<uint32_t>(
          std::upper_bound(all.begin(), all.end(), range.end, less_time) -
          all.begin());
    });
  }

  const std::vector<Timestamp>& core_times() const { return a_.ct; }

  /// Adjacency entries of `u` with time in [from, range.end]. `from` must be
  /// non-decreasing across calls for a given vertex (it is: every use sites
  /// pass the current transition's target start s+1).
  std::span<const AdjEntry> WindowNeighbors(VertexId u, Timestamp from) {
    const std::span<const AdjEntry> all = g_.Neighbors(u);
    uint32_t lo = a_.adj_lo[u];
    const uint32_t hi = a_.adj_hi[u];
    while (lo < hi && all[lo].time < from) ++lo;
    a_.adj_lo[u] = lo;
    return all.subspan(lo, hi - lo);
  }

  /// Advances from start time `s` to `s+1`; fills `changed` with the
  /// vertices whose core time increased (each once).
  void Advance(Timestamp s, std::vector<VertexId>* changed) {
    changed->clear();
    ++epoch_;
    const Timestamp next = s + 1;
    // Seeds: endpoints of edges leaving the window (time == s) whose core
    // time can still move (finite).
    for (const TemporalEdge& e : g_.EdgesAtTime(s)) {
      Push(e.u);
      Push(e.v);
    }
    while (!a_.queue.empty()) {
      VertexId u = a_.queue.back();
      a_.queue.pop_back();
      a_.in_queue[u] = 0;
      Timestamp now = Phi(u, next);
      if (stats_ != nullptr) ++stats_->fixpoint_recomputations;
      if (now <= a_.ct[u]) continue;
      a_.ct[u] = now;
      if (a_.changed_epoch[u] != epoch_) {
        a_.changed_epoch[u] = epoch_;
        changed->push_back(u);
      }
      if (stats_ != nullptr) ++stats_->core_time_changes;
      // A neighbor's Φ depends on ct[u]; wake all window neighbors.
      for (const AdjEntry& a : WindowNeighbors(u, next)) {
        Push(a.neighbor);
      }
    }
  }

 private:
  void Push(VertexId v) {
    if (a_.in_queue[v] || a_.ct[v] == kInfTime) return;  // inf never increases
    a_.in_queue[v] = 1;
    a_.queue.push_back(v);
    if (stats_ != nullptr) ++stats_->worklist_pushes;
  }

  // Φ(u) at start `from`: k-th smallest over distinct neighbors v of
  // max(ct[v], earliest edge time of (u,v) >= from).
  Timestamp Phi(VertexId u, Timestamp from) {
    ++phi_epoch_;
    a_.phi_vals.clear();
    for (const AdjEntry& a : WindowNeighbors(u, from)) {
      if (a_.seen_epoch[a.neighbor] == phi_epoch_) continue;  // dedup: first
      a_.seen_epoch[a.neighbor] = phi_epoch_;  // occurrence == earliest time
      Timestamp cv = a_.ct[a.neighbor];
      a_.phi_vals.push_back(cv == kInfTime ? kInfTime : std::max(cv, a.time));
    }
    if (a_.phi_vals.size() < k_) return kInfTime;
    std::nth_element(a_.phi_vals.begin(), a_.phi_vals.begin() + (k_ - 1),
                     a_.phi_vals.end());
    return a_.phi_vals[k_ - 1];
  }

  const TemporalGraph& g_;
  const uint32_t k_;
  const Window range_;
  VctBuildStats* stats_;
  VctBuildArena& a_;
  uint32_t epoch_ = 0;
  uint32_t phi_epoch_ = 0;
};

}  // namespace

uint64_t VctBuildArena::MemoryUsageBytes() const {
  return ApproxVectorBytes(ct) + ApproxVectorBytes(in_queue) +
         ApproxVectorBytes(queue) + ApproxVectorBytes(seen_epoch) +
         ApproxVectorBytes(changed_epoch) + ApproxVectorBytes(phi_vals) +
         ApproxVectorBytes(adj_lo) + ApproxVectorBytes(adj_hi) +
         ApproxVectorBytes(ect) + ApproxVectorBytes(changed) +
         ApproxVectorBytes(verts) + ApproxVectorBytes(vct_emissions) +
         ApproxVectorBytes(ecs_emissions) + ApproxVectorBytes(sweep.verts) +
         ApproxVectorBytes(sweep.pair_keys) +
         ApproxVectorBytes(sweep.pair_live) +
         ApproxVectorBytes(sweep.vp_offsets) +
         ApproxVectorBytes(sweep.vp_pair) +
         ApproxVectorBytes(sweep.vp_other) +
         ApproxVectorBytes(sweep.degree) + ApproxVectorBytes(sweep.in_core) +
         ApproxVectorBytes(sweep.queued) + ApproxVectorBytes(sweep.stack);
}

VctBuildResult BuildVctAndEcsWithStats(const TemporalGraph& g, uint32_t k,
                                       Window range, VctBuildStats* stats,
                                       VctBuildArena* arena,
                                       ThreadPool* pool) {
  TKC_CHECK_GE(k, 1u);
  TKC_CHECK(range.start >= 1 && range.end <= g.num_timestamps() &&
            range.start <= range.end);

  VctBuildArena local;
  VctBuildArena& a = arena != nullptr ? *arena : local;

  VctBuildResult result;
  const auto [first_edge, last_edge] = g.EdgeIdRangeInWindow(range);

  CoreTimeAdvancer advancer(g, k, range, stats, &a, pool);
  const std::vector<Timestamp>& ct = advancer.core_times();

  a.vct_emissions.clear();
  a.ecs_emissions.clear();

  // Initial VCT entries and edge core times at start Ts (Alg. 2 lines 2-4).
  a.ect.assign(last_edge - first_edge, kInfTime);
  {
    // Distinct window endpoints, ascending, for ordered initial emissions.
    a.verts.clear();
    for (const TemporalEdge& e : g.EdgesInWindow(range)) {
      a.verts.push_back(e.u);
      a.verts.push_back(e.v);
    }
    std::sort(a.verts.begin(), a.verts.end());
    a.verts.erase(std::unique(a.verts.begin(), a.verts.end()), a.verts.end());
    for (VertexId v : a.verts) {
      if (ct[v] != kInfTime) {
        a.vct_emissions.push_back({v, VctEntry{range.start, ct[v]}});
      }
    }
  }
  BootstrapFor(pool, last_edge - first_edge, [&](size_t i) {
    const TemporalEdge& te = g.edge(first_edge + static_cast<EdgeId>(i));
    if (ct[te.u] != kInfTime && ct[te.v] != kInfTime) {
      a.ect[i] = Max3(ct[te.u], ct[te.v], te.t);
    }
  });

  // Main loop over start-time transitions s -> s+1 (Alg. 2 lines 5-11).
  for (Timestamp s = range.start; s < range.end; ++s) {
    // (1) Edges leaving the window (time == s): their last minimal core
    //     window, if any, is [s, ect] (their core time becomes infinite).
    {
      auto [lo, hi] = g.EdgeIdRangeAtTime(s);
      for (EdgeId e = lo; e < hi; ++e) {
        Timestamp& old = a.ect[e - first_edge];
        if (old != kInfTime) {
          a.ecs_emissions.push_back({e, Window{s, old}});
          old = kInfTime;
        }
      }
    }
    // (2) Advance vertex core times to start s+1.
    advancer.Advance(s, &a.changed);
    // (3) Lemma 1 + Lemma 2: refresh edge core times around changed
    //     vertices; an increase emits the edge's previous minimal window.
    for (VertexId u : a.changed) {
      a.vct_emissions.push_back({u, VctEntry{s + 1, ct[u]}});
      for (const AdjEntry& adj : advancer.WindowNeighbors(u, s + 1)) {
        Timestamp cu = ct[u];
        Timestamp cv = ct[adj.neighbor];
        Timestamp now = (cu == kInfTime || cv == kInfTime)
                            ? kInfTime
                            : Max3(cu, cv, adj.time);
        Timestamp& old = a.ect[adj.edge - first_edge];
        if (now > old) {
          if (old != kInfTime) {
            a.ecs_emissions.push_back({adj.edge, Window{s, old}});
          }
          old = now;
        }
      }
    }
  }
  // Final flush: edges still live at start Te (necessarily time == Te).
  {
    auto [lo, hi] = g.EdgeIdRangeAtTime(range.end);
    for (EdgeId e = lo; e < hi; ++e) {
      if (a.ect[e - first_edge] != kInfTime) {
        a.ecs_emissions.push_back(
            {e, Window{range.end, a.ect[e - first_edge]}});
      }
    }
  }

  // VCT emissions are appended per-transition, hence per-vertex they are in
  // increasing start order, as FromEmissions requires.
  result.peak_memory_bytes = a.MemoryUsageBytes();
  result.vct = VertexCoreTimeIndex::FromEmissions(g.num_vertices(), range,
                                                  a.vct_emissions);
  result.ecs = EdgeCoreWindowSkyline::FromEmissions(first_edge, last_edge,
                                                    range, a.ecs_emissions);
  result.peak_memory_bytes +=
      result.vct.MemoryUsageBytes() + result.ecs.MemoryUsageBytes();
  return result;
}

VctBuildResult BuildVctAndEcs(const TemporalGraph& g, uint32_t k, Window range,
                              VctBuildArena* arena, ThreadPool* pool) {
  return BuildVctAndEcsWithStats(g, k, range, nullptr, arena, pool);
}

VertexCoreTimeIndex BuildVctSuffix(const TemporalGraph& g, uint32_t k,
                                   Window suffix, Timestamp advance_end,
                                   VctBuildArena* arena, ThreadPool* pool) {
  TKC_CHECK_GE(k, 1u);
  TKC_CHECK(suffix.start >= 1 && suffix.end <= g.num_timestamps() &&
            suffix.start <= suffix.end);
  TKC_CHECK(advance_end >= suffix.start && advance_end <= suffix.end);

  VctBuildArena local;
  VctBuildArena& a = arena != nullptr ? *arena : local;

  // Same bootstrap as the full builder, over the suffix window only: the
  // sweep costs O(m_suffix log m_suffix), not a whole-timeline peel.
  CoreTimeAdvancer advancer(g, k, suffix, nullptr, &a, pool);
  const std::vector<Timestamp>& ct = advancer.core_times();

  a.vct_emissions.clear();
  {
    // Initial rows at suffix.start: distinct endpoints of suffix-window
    // edges, ascending — exactly the full builder's emission rule (a
    // finite core time requires window neighbors, so no vertex is missed).
    a.verts.clear();
    for (const TemporalEdge& e : g.EdgesInWindow(suffix)) {
      a.verts.push_back(e.u);
      a.verts.push_back(e.v);
    }
    std::sort(a.verts.begin(), a.verts.end());
    a.verts.erase(std::unique(a.verts.begin(), a.verts.end()), a.verts.end());
    for (VertexId v : a.verts) {
      if (ct[v] != kInfTime) {
        a.vct_emissions.push_back({v, VctEntry{suffix.start, ct[v]}});
      }
    }
  }
  // Advance start times only through advance_end: rows past it belong to
  // the band the caller reuses from the old slice instead.
  for (Timestamp s = suffix.start; s < advance_end; ++s) {
    advancer.Advance(s, &a.changed);
    for (VertexId u : a.changed) {
      a.vct_emissions.push_back({u, VctEntry{s + 1, ct[u]}});
    }
  }
  return VertexCoreTimeIndex::FromEmissions(g.num_vertices(), suffix,
                                            a.vct_emissions);
}

}  // namespace tkc
