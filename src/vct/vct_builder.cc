#include "vct/vct_builder.h"

#include <algorithm>

#include "util/check.h"
#include "util/mem.h"

namespace tkc {

namespace {

Timestamp Max3(Timestamp a, Timestamp b, Timestamp c) {
  return std::max(a, std::max(b, c));
}

// Worklist fixpoint engine advancing core times across start times.
class CoreTimeAdvancer {
 public:
  CoreTimeAdvancer(const TemporalGraph& g, uint32_t k, Window range,
                   VctBuildStats* stats)
      : g_(g), k_(k), range_(range), stats_(stats) {
    ct_.reserve(g.num_vertices());
    SweepScratch scratch;
    CoreTimeSweep(g_, k_, range_.start, range_.end, &ct_, &scratch);
    in_queue_.assign(g.num_vertices(), 0);
    seen_epoch_.assign(g.num_vertices(), 0);
    changed_epoch_.assign(g.num_vertices(), 0);
  }

  const std::vector<Timestamp>& core_times() const { return ct_; }

  /// Advances from start time `s` to `s+1`; fills `changed` with the
  /// vertices whose core time increased (each once).
  void Advance(Timestamp s, std::vector<VertexId>* changed) {
    changed->clear();
    ++epoch_;
    const Timestamp next = s + 1;
    // Seeds: endpoints of edges leaving the window (time == s) whose core
    // time can still move (finite).
    for (const TemporalEdge& e : g_.EdgesAtTime(s)) {
      Push(e.u);
      Push(e.v);
    }
    while (!queue_.empty()) {
      VertexId u = queue_.back();
      queue_.pop_back();
      in_queue_[u] = 0;
      Timestamp now = Phi(u, next);
      if (stats_ != nullptr) ++stats_->fixpoint_recomputations;
      if (now <= ct_[u]) continue;
      ct_[u] = now;
      if (changed_epoch_[u] != epoch_) {
        changed_epoch_[u] = epoch_;
        changed->push_back(u);
      }
      if (stats_ != nullptr) ++stats_->core_time_changes;
      // A neighbor's Φ depends on ct_[u]; wake all window neighbors.
      for (const AdjEntry& a :
           g_.NeighborsInWindow(u, Window{next, range_.end})) {
        Push(a.neighbor);
      }
    }
  }

 private:
  void Push(VertexId v) {
    if (in_queue_[v] || ct_[v] == kInfTime) return;  // inf never increases
    in_queue_[v] = 1;
    queue_.push_back(v);
    if (stats_ != nullptr) ++stats_->worklist_pushes;
  }

  // Φ(u) at start `from`: k-th smallest over distinct neighbors v of
  // max(ct_[v], earliest edge time of (u,v) >= from).
  Timestamp Phi(VertexId u, Timestamp from) {
    ++phi_epoch_;
    vals_.clear();
    for (const AdjEntry& a :
         g_.NeighborsInWindow(u, Window{from, range_.end})) {
      if (seen_epoch_[a.neighbor] == phi_epoch_) continue;  // dedup: first
      seen_epoch_[a.neighbor] = phi_epoch_;  // occurrence == earliest time
      Timestamp cv = ct_[a.neighbor];
      vals_.push_back(cv == kInfTime ? kInfTime : std::max(cv, a.time));
    }
    if (vals_.size() < k_) return kInfTime;
    std::nth_element(vals_.begin(), vals_.begin() + (k_ - 1), vals_.end());
    return vals_[k_ - 1];
  }

  const TemporalGraph& g_;
  const uint32_t k_;
  const Window range_;
  VctBuildStats* stats_;

  std::vector<Timestamp> ct_;
  std::vector<uint8_t> in_queue_;
  std::vector<VertexId> queue_;
  std::vector<uint32_t> seen_epoch_;
  std::vector<uint32_t> changed_epoch_;
  std::vector<Timestamp> vals_;
  uint32_t epoch_ = 0;
  uint32_t phi_epoch_ = 0;
};

}  // namespace

VctBuildResult BuildVctAndEcsWithStats(const TemporalGraph& g, uint32_t k,
                                       Window range, VctBuildStats* stats) {
  TKC_CHECK_GE(k, 1u);
  TKC_CHECK(range.start >= 1 && range.end <= g.num_timestamps() &&
            range.start <= range.end);

  VctBuildResult result;
  const auto [first_edge, last_edge] = g.EdgeIdRangeInWindow(range);

  CoreTimeAdvancer advancer(g, k, range, stats);
  const std::vector<Timestamp>& ct = advancer.core_times();

  std::vector<std::pair<VertexId, VctEntry>> vct_emissions;
  std::vector<std::pair<EdgeId, Window>> ecs_emissions;

  // Initial VCT entries and edge core times at start Ts (Alg. 2 lines 2-4).
  std::vector<Timestamp> ect(last_edge - first_edge, kInfTime);
  {
    // Distinct window endpoints, ascending, for ordered initial emissions.
    std::vector<VertexId> verts;
    for (const TemporalEdge& e : g.EdgesInWindow(range)) {
      verts.push_back(e.u);
      verts.push_back(e.v);
    }
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
    for (VertexId v : verts) {
      if (ct[v] != kInfTime) {
        vct_emissions.push_back({v, VctEntry{range.start, ct[v]}});
      }
    }
  }
  for (EdgeId e = first_edge; e < last_edge; ++e) {
    const TemporalEdge& te = g.edge(e);
    if (ct[te.u] != kInfTime && ct[te.v] != kInfTime) {
      ect[e - first_edge] = Max3(ct[te.u], ct[te.v], te.t);
    }
  }

  // Main loop over start-time transitions s -> s+1 (Alg. 2 lines 5-11).
  std::vector<VertexId> changed;
  for (Timestamp s = range.start; s < range.end; ++s) {
    // (1) Edges leaving the window (time == s): their last minimal core
    //     window, if any, is [s, ect] (their core time becomes infinite).
    {
      auto [lo, hi] = g.EdgeIdRangeAtTime(s);
      for (EdgeId e = lo; e < hi; ++e) {
        Timestamp& old = ect[e - first_edge];
        if (old != kInfTime) {
          ecs_emissions.push_back({e, Window{s, old}});
          old = kInfTime;
        }
      }
    }
    // (2) Advance vertex core times to start s+1.
    advancer.Advance(s, &changed);
    // (3) Lemma 1 + Lemma 2: refresh edge core times around changed
    //     vertices; an increase emits the edge's previous minimal window.
    for (VertexId u : changed) {
      vct_emissions.push_back({u, VctEntry{s + 1, ct[u]}});
      for (const AdjEntry& a :
           g.NeighborsInWindow(u, Window{s + 1, range.end})) {
        Timestamp cu = ct[u];
        Timestamp cv = ct[a.neighbor];
        Timestamp now = (cu == kInfTime || cv == kInfTime)
                            ? kInfTime
                            : Max3(cu, cv, a.time);
        Timestamp& old = ect[a.edge - first_edge];
        if (now > old) {
          if (old != kInfTime) {
            ecs_emissions.push_back({a.edge, Window{s, old}});
          }
          old = now;
        }
      }
    }
  }
  // Final flush: edges still live at start Te (necessarily time == Te).
  {
    auto [lo, hi] = g.EdgeIdRangeAtTime(range.end);
    for (EdgeId e = lo; e < hi; ++e) {
      if (ect[e - first_edge] != kInfTime) {
        ecs_emissions.push_back({e, Window{range.end, ect[e - first_edge]}});
      }
    }
  }

  // VCT emissions are appended per-transition, hence per-vertex they are in
  // increasing start order, as FromEmissions requires.
  result.peak_memory_bytes = ApproxVectorBytes(ect) +
                             ApproxVectorBytes(vct_emissions) +
                             ApproxVectorBytes(ecs_emissions) +
                             g.num_vertices() * 13ull;  // advancer state
  result.vct = VertexCoreTimeIndex::FromEmissions(g.num_vertices(), range,
                                                  vct_emissions);
  result.ecs = EdgeCoreWindowSkyline::FromEmissions(first_edge, last_edge,
                                                    range, ecs_emissions);
  result.peak_memory_bytes +=
      result.vct.MemoryUsageBytes() + result.ecs.MemoryUsageBytes();
  return result;
}

VctBuildResult BuildVctAndEcs(const TemporalGraph& g, uint32_t k,
                              Window range) {
  return BuildVctAndEcsWithStats(g, k, range, nullptr);
}

}  // namespace tkc
