#ifndef TKC_TKC_H_
#define TKC_TKC_H_

/// \file tkc.h
/// Umbrella header for the tkc library: temporal k-core enumeration
/// (EDBT'26 "Accelerating K-Core Computation in Temporal Graphs") plus the
/// substrates it is built on. Include this for everything, or pick the
/// individual headers below to keep compile times down.

// Foundation.
#include "util/common.h"     // VertexId / EdgeId / Timestamp / Window
#include "util/status.h"     // Status / StatusOr
#include "util/timer.h"      // WallTimer / Deadline

// Temporal graph substrate.
#include "graph/temporal_graph.h"     // TemporalGraph + builder
#include "graph/graph_io.h"           // SNAP-format load/save
#include "graph/core_decomposition.h" // static core numbers / kmax
#include "graph/window_peeler.h"      // single-window temporal k-core
#include "graph/graph_stats.h"        // Table III statistics
#include "graph/transforms.h"         // window extraction / induction

// CoreTime phase: indexes.
#include "vct/vct_index.h"        // Vertex Core Time index (VCT)
#include "vct/ecs.h"              // Edge Core Window Skyline (ECS)
#include "vct/vct_builder.h"      // efficient builder (Algorithm 2)
#include "vct/naive_vct_builder.h"// reference builder + core-time sweep
#include "vct/historical_core.h"  // single-window queries from the indexes
#include "vct/phc_index.h"        // multi-k PHC index
#include "vct/index_io.h"         // index (de)serialization

// Enumeration phase.
#include "core/sinks.h"            // CoreSink and implementations
#include "core/enum_algorithm.h"   // Enum (Algorithm 5 + AS-Output)
#include "core/enum_base.h"        // EnumBase (Algorithm 3)
#include "core/naive_enumerator.h" // brute-force oracle
#include "core/temporal_kcore.h"   // one-call public API
#include "core/vertex_set_enum.h"  // vertex-set enumeration extension
#include "core/result_stats.h"     // streaming result summarization

// Baseline.
#include "otcd/otcd.h"  // OTCD (Algorithm 1, VLDB'23 state of the art)

// Evaluation support.
#include "datasets/generators.h"      // synthetic temporal graphs
#include "datasets/registry.h"        // Table III stand-ins
#include "workload/query_workload.h"  // paper-protocol workloads

#endif  // TKC_TKC_H_
