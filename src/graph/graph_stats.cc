#include "graph/graph_stats.h"

#include <cstdio>

#include "graph/core_decomposition.h"

namespace tkc {

GraphStats ComputeGraphStats(const TemporalGraph& g) {
  GraphStats s;
  s.num_edges = g.num_edges();
  s.num_timestamps = g.num_timestamps();

  SimpleProjection p = BuildSimpleProjection(g, g.FullRange());
  uint64_t active_vertices = 0;
  uint64_t degree_sum = 0;
  for (VertexId v = 0; v < p.num_vertices; ++v) {
    uint32_t d = p.Degree(v);
    if (d > 0) {
      ++active_vertices;
      degree_sum += d;
    }
  }
  s.num_vertices = active_vertices;
  s.avg_degree =
      active_vertices == 0
          ? 0.0
          : static_cast<double>(degree_sum) / static_cast<double>(active_vertices);

  CoreDecompositionResult cores = DecomposeCores(g);
  s.kmax = cores.kmax;
  return s;
}

std::string FormatGraphStats(const std::string& name, const GraphStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: |V|=%llu |E|=%llu tmax=%llu kmax=%u avg_deg=%.2f",
                name.c_str(), static_cast<unsigned long long>(s.num_vertices),
                static_cast<unsigned long long>(s.num_edges),
                static_cast<unsigned long long>(s.num_timestamps), s.kmax,
                s.avg_degree);
  return buf;
}

}  // namespace tkc
