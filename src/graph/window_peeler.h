#ifndef TKC_GRAPH_WINDOW_PEELER_H_
#define TKC_GRAPH_WINDOW_PEELER_H_

#include <cstdint>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/common.h"

/// \file window_peeler.h
/// From-scratch computation of the temporal k-core of a single window
/// (Definition 2): peel vertices with fewer than k distinct neighbors in
/// G[ts,te] until fixpoint; the core's edge set is every temporal edge of the
/// window whose endpoints both survive. This is the ground-truth primitive
/// behind the naive reference enumerator and many tests; OTCD uses its own
/// incremental structures instead.

namespace tkc {

/// The temporal k-core of one window.
struct WindowCore {
  /// in_core[v] — vertex membership (size = num_vertices).
  std::vector<bool> in_core;
  /// Edge ids of the core, ascending (== sorted by time, then endpoints).
  std::vector<EdgeId> edges;
  /// The tightest time interval W(C): [min edge time, max edge time].
  /// Undefined (Valid()==false) when the core is empty.
  Window tti{0, 0};

  bool Empty() const { return edges.empty(); }
};

/// Computes the temporal k-core of `g` restricted to `window`.
/// `k` must be >= 1 (k=0 would make every vertex a core member and the
/// problem degenerate; the public API validates this).
WindowCore ComputeWindowCore(const TemporalGraph& g, uint32_t k,
                             Window window);

/// Computes only the vertex membership of the temporal k-core (cheaper when
/// edges are not needed).
std::vector<bool> ComputeWindowCoreVertices(const TemporalGraph& g, uint32_t k,
                                            Window window);

}  // namespace tkc

#endif  // TKC_GRAPH_WINDOW_PEELER_H_
