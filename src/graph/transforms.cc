#include "graph/transforms.h"

#include <algorithm>

namespace tkc {

namespace {

// Shared core: rebuild a graph from a filtered edge set, optionally
// relabeling vertices through `vertex_map` (kInvalidVertex = drop edge).
StatusOr<ExtractedGraph> BuildFromEdges(
    const TemporalGraph& g, EdgeId first, EdgeId last,
    const std::vector<VertexId>* vertex_map,
    const std::vector<VertexId>* source_vertex) {
  TemporalGraphBuilder builder;
  // Exact duplicates were already resolved (or deliberately kept) in the
  // source; never re-deduplicate so edge multiplicity survives transforms.
  builder.SetDeduplicateExact(false);
  ExtractedGraph out;
  for (EdgeId e = first; e < last; ++e) {
    const TemporalEdge& edge = g.edge(e);
    VertexId u = edge.u, v = edge.v;
    if (vertex_map != nullptr) {
      u = (*vertex_map)[edge.u];
      v = (*vertex_map)[edge.v];
      if (u == kInvalidVertex || v == kInvalidVertex) continue;
    }
    builder.AddEdge(u, v, g.RawTimestamp(edge.t));
    out.source_edge.push_back(e);
  }
  auto built = builder.Build();
  if (!built.ok()) {
    return Status::InvalidArgument("extraction selects no edges");
  }
  out.graph = std::move(built).value();
  if (source_vertex != nullptr) {
    out.source_vertex = *source_vertex;
  } else {
    out.source_vertex.resize(out.graph.num_vertices());
    for (VertexId v = 0; v < out.graph.num_vertices(); ++v) {
      out.source_vertex[v] = v;
    }
  }
  // The builder sorts by (time, u, v); the source edges were iterated in
  // the same order and AddEdge preserves endpoints, so source_edge indexes
  // align with derived EdgeIds as long as the relative order is stable.
  // Builder sorting is stable for our insert order because we insert in
  // (time, u, v) order already — except vertex relabeling can reorder
  // (u, v) within a timestamp. Re-derive the mapping robustly instead.
  if (vertex_map != nullptr) {
    // Rebuild mapping: match derived edges to source edges by
    // (raw time, relabeled endpoints) using a cursor per timestamp.
    std::vector<std::pair<TemporalEdge, EdgeId>> sources;
    sources.reserve(out.source_edge.size());
    for (EdgeId e : out.source_edge) {
      const TemporalEdge& edge = g.edge(e);
      VertexId u = (*vertex_map)[edge.u], v = (*vertex_map)[edge.v];
      if (u > v) std::swap(u, v);
      sources.push_back({TemporalEdge{u, v, edge.t}, e});
    }
    std::sort(sources.begin(), sources.end(),
              [](const auto& a, const auto& b) {
                if (a.first.t != b.first.t) return a.first.t < b.first.t;
                if (a.first.u != b.first.u) return a.first.u < b.first.u;
                if (a.first.v != b.first.v) return a.first.v < b.first.v;
                return a.second < b.second;
              });
    std::vector<EdgeId> remapped(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      remapped[i] = sources[i].second;
    }
    out.source_edge = std::move(remapped);
  }
  return out;
}

}  // namespace

StatusOr<ExtractedGraph> ExtractWindow(const TemporalGraph& g, Window window) {
  if (window.start < 1 || window.start > window.end ||
      window.end > g.num_timestamps()) {
    return Status::InvalidArgument("window outside the graph's time span");
  }
  auto [first, last] = g.EdgeIdRangeInWindow(window);
  if (first == last) {
    return Status::InvalidArgument("window contains no edges");
  }
  return BuildFromEdges(g, first, last, nullptr, nullptr);
}

StatusOr<ExtractedGraph> InduceOnVertices(const TemporalGraph& g,
                                          std::span<const VertexId> vertices) {
  std::vector<VertexId> sorted(vertices.begin(), vertices.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<VertexId> map(g.num_vertices(), kInvalidVertex);
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= g.num_vertices()) {
      return Status::InvalidArgument("vertex id outside the graph");
    }
    map[sorted[i]] = static_cast<VertexId>(i);
  }
  return BuildFromEdges(g, 0, g.num_edges(), &map, &sorted);
}

StatusOr<ExtractedGraph> CompactVertexIds(const TemporalGraph& g) {
  std::vector<VertexId> active;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!g.Neighbors(v).empty()) active.push_back(v);
  }
  return InduceOnVertices(g, active);
}

}  // namespace tkc
