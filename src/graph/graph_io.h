#ifndef TKC_GRAPH_GRAPH_IO_H_
#define TKC_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/temporal_graph.h"
#include "util/status.h"

/// \file graph_io.h
/// Loading and saving temporal graphs in the SNAP temporal-network text
/// format: one edge per line, `SRC DST UNIXTS` separated by whitespace
/// (tabs or spaces), '#' and '%' lines are comments. This is the format of
/// the paper's datasets (CollegeMsg.txt, email-Eu-core-temporal.txt, ...).

namespace tkc {

/// Options controlling parsing.
struct SnapLoadOptions {
  /// Merge edges identical in (u, v, t) (default on, matching the paper's
  /// simple-graph-per-timestamp convention).
  bool deduplicate_exact = true;
  /// If true, lines with fewer than 3 fields are an error; otherwise skipped.
  bool strict = true;
};

/// Parses a SNAP-format temporal edge list from a string.
[[nodiscard]] StatusOr<TemporalGraph> ParseSnapText(const std::string& text,
                                      const SnapLoadOptions& options = {});

/// Loads a SNAP-format temporal edge list from a file.
[[nodiscard]] StatusOr<TemporalGraph> LoadSnapFile(const std::string& path,
                                     const SnapLoadOptions& options = {});

/// Writes `g` in SNAP format (raw timestamps) to `path`.
[[nodiscard]] Status SaveSnapFile(const TemporalGraph& g,
                                  const std::string& path);

/// Serializes `g` to SNAP text (raw timestamps).
std::string ToSnapText(const TemporalGraph& g);

}  // namespace tkc

#endif  // TKC_GRAPH_GRAPH_IO_H_
