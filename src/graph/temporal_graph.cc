#include "graph/temporal_graph.h"

#include <algorithm>
#include <tuple>
#include <unordered_set>

#include "util/check.h"
#include "util/hash.h"
#include "util/mem.h"

namespace tkc {

void TemporalGraphBuilder::AddEdge(VertexId u, VertexId v, uint64_t raw_time) {
  if (u == v) return;  // self-loops never contribute a neighbor
  if (u > v) std::swap(u, v);
  raw_edges_.push_back(RawEdge{u, v, raw_time});
}

void TemporalGraphBuilder::EnsureVertexCount(VertexId n) {
  min_vertex_count_ = std::max(min_vertex_count_, n);
}

StatusOr<TemporalGraph> TemporalGraphBuilder::Build() {
  if (raw_edges_.empty()) {
    return Status::InvalidArgument("temporal graph has no edges");
  }

  // 1. Compact timestamps: sorted distinct raw values -> 1..T.
  std::vector<uint64_t> raw_times;
  raw_times.reserve(raw_edges_.size());
  for (const RawEdge& e : raw_edges_) raw_times.push_back(e.raw_t);
  std::sort(raw_times.begin(), raw_times.end());
  raw_times.erase(std::unique(raw_times.begin(), raw_times.end()),
                  raw_times.end());

  TemporalGraph g;
  g.dedup_exact_ = dedup_exact_;
  g.raw_of_compact_ = raw_times;

  // 2. Materialize edges with compacted times; sort by (t, u, v).
  g.edges_.reserve(raw_edges_.size());
  VertexId max_vertex = 0;
  for (const RawEdge& e : raw_edges_) {
    auto it = std::lower_bound(raw_times.begin(), raw_times.end(), e.raw_t);
    Timestamp t = static_cast<Timestamp>(it - raw_times.begin()) + 1;
    g.edges_.push_back(TemporalEdge{e.u, e.v, t});
    max_vertex = std::max(max_vertex, e.v);
  }
  raw_edges_.clear();
  raw_edges_.shrink_to_fit();

  std::sort(g.edges_.begin(), g.edges_.end(),
            [](const TemporalEdge& a, const TemporalEdge& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  if (dedup_exact_) {
    g.edges_.erase(std::unique(g.edges_.begin(), g.edges_.end()),
                   g.edges_.end());
  }
  if (g.edges_.size() > static_cast<size_t>(kInvalidEdge)) {
    return Status::OutOfRange("too many edges for 32-bit EdgeId");
  }

  g.num_vertices_ = std::max<VertexId>(max_vertex + 1, min_vertex_count_);

  // 3. Per-timestamp offsets over the sorted edge array.
  const Timestamp T = g.num_timestamps();
  g.time_offsets_.assign(T + 2, 0);
  for (const TemporalEdge& e : g.edges_) ++g.time_offsets_[e.t + 1];
  for (size_t i = 1; i < g.time_offsets_.size(); ++i) {
    g.time_offsets_[i] += g.time_offsets_[i - 1];
  }

  // 4. CSR adjacency sorted by (time, neighbor): two directed copies.
  g.adj_offsets_.assign(g.num_vertices_ + 1, 0);
  for (const TemporalEdge& e : g.edges_) {
    ++g.adj_offsets_[e.u + 1];
    ++g.adj_offsets_[e.v + 1];
  }
  for (size_t i = 1; i < g.adj_offsets_.size(); ++i) {
    g.adj_offsets_[i] += g.adj_offsets_[i - 1];
  }
  g.adj_.resize(g.adj_offsets_.back());
  std::vector<uint32_t> cursor(g.adj_offsets_.begin(),
                               g.adj_offsets_.end() - 1);
  // Edges are already (t, u, v)-sorted, so appending in edge order leaves
  // each vertex's slice sorted by time (ties by insertion order).
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const TemporalEdge& e = g.edges_[id];
    g.adj_[cursor[e.u]++] = AdjEntry{e.v, e.t, id};
    g.adj_[cursor[e.v]++] = AdjEntry{e.u, e.t, id};
  }

  return g;
}

std::pair<EdgeId, EdgeId> TemporalGraph::EdgeIdRangeAtTime(Timestamp t) const {
  TKC_DCHECK(t >= 1 && t <= num_timestamps());
  return {time_offsets_[t], time_offsets_[t + 1]};
}

std::span<const TemporalEdge> TemporalGraph::EdgesAtTime(Timestamp t) const {
  auto [lo, hi] = EdgeIdRangeAtTime(t);
  return {edges_.data() + lo, edges_.data() + hi};
}

std::pair<EdgeId, EdgeId> TemporalGraph::EdgeIdRangeInWindow(Window w) const {
  if (w.start > w.end || w.start > num_timestamps()) return {0, 0};
  Timestamp lo_t = std::max<Timestamp>(w.start, 1);
  Timestamp hi_t = std::min<Timestamp>(w.end, num_timestamps());
  if (lo_t > hi_t) return {0, 0};
  return {time_offsets_[lo_t], time_offsets_[hi_t + 1]};
}

std::span<const TemporalEdge> TemporalGraph::EdgesInWindow(Window w) const {
  auto [lo, hi] = EdgeIdRangeInWindow(w);
  return {edges_.data() + lo, edges_.data() + hi};
}

std::span<const AdjEntry> TemporalGraph::Neighbors(VertexId u) const {
  TKC_DCHECK(u < num_vertices_);
  return {adj_.data() + adj_offsets_[u], adj_.data() + adj_offsets_[u + 1]};
}

std::span<const AdjEntry> TemporalGraph::NeighborsInWindow(VertexId u,
                                                           Window w) const {
  auto all = Neighbors(u);
  auto lo = std::lower_bound(
      all.begin(), all.end(), w.start,
      [](const AdjEntry& a, Timestamp t) { return a.time < t; });
  auto hi = std::upper_bound(
      lo, all.end(), w.end,
      [](Timestamp t, const AdjEntry& a) { return t < a.time; });
  return {lo, hi};
}

uint64_t TemporalGraph::RawTimestamp(Timestamp t) const {
  TKC_DCHECK(t >= 1 && t <= num_timestamps());
  return raw_of_compact_[t - 1];
}

Timestamp TemporalGraph::CompactTimestampFloor(uint64_t raw) const {
  auto it = std::upper_bound(raw_of_compact_.begin(), raw_of_compact_.end(),
                             raw);
  return static_cast<Timestamp>(it - raw_of_compact_.begin());
}

namespace {

/// Exact identity of one normalized appended edge, for in-batch dedup.
struct RawEdgeKey {
  VertexId u;
  VertexId v;
  uint64_t raw;
  bool operator==(const RawEdgeKey&) const = default;
};

struct RawEdgeKeyHash {
  size_t operator()(const RawEdgeKey& k) const {
    return static_cast<size_t>(
        HashCombine(HashCombine(HashU64(k.raw), k.u), k.v));
  }
};

/// Distinct-neighbor degree of `u` over the graph's full range: the static
/// simple-projection degree that upper-bounds u's degree inside any window
/// (and therefore inside any k-core). O(deg log deg) on a scratch copy.
uint32_t DistinctDegree(const TemporalGraph& g, VertexId u,
                        std::vector<VertexId>* scratch) {
  scratch->clear();
  for (const AdjEntry& a : g.Neighbors(u)) scratch->push_back(a.neighbor);
  std::sort(scratch->begin(), scratch->end());
  scratch->erase(std::unique(scratch->begin(), scratch->end()),
                 scratch->end());
  return static_cast<uint32_t>(scratch->size());
}

}  // namespace

/// True iff this graph already holds an edge (u, v) at raw time `raw`
/// (endpoints in either orientation). Used by AppendEdges to decide which
/// appended edges actually survive exact-duplicate merging.
bool TemporalGraph::ContainsEdge(VertexId u, VertexId v, uint64_t raw) const {
  if (u >= num_vertices_ || v >= num_vertices_) return false;
  const Timestamp t = CompactTimestampFloor(raw);
  if (t == 0 || RawTimestamp(t) != raw) return false;
  // Scan the smaller endpoint's single-timestamp adjacency slice.
  const VertexId probe = TemporalDegree(u) <= TemporalDegree(v) ? u : v;
  const VertexId other = probe == u ? v : u;
  for (const AdjEntry& a : NeighborsInWindow(probe, Window{t, t})) {
    if (a.neighbor == other) return true;
  }
  return false;
}

StatusOr<GraphUpdate> TemporalGraph::AppendEdges(
    std::span<const RawTemporalEdge> new_edges) const {
  // Classify the appended edges up front: the delta must describe only the
  // edges that survive ingestion (self-loops dropped, exact duplicates
  // merged when this graph deduplicates), in normalized orientation.
  // Coalesced update cycles can make this batch large, so in-batch dedup
  // is a hash probe, not a scan.
  std::vector<RawTemporalEdge> effective;
  effective.reserve(new_edges.size());
  std::unordered_set<RawEdgeKey, RawEdgeKeyHash> batch_seen;
  for (const RawTemporalEdge& e : new_edges) {
    if (e.u == kInvalidVertex || e.v == kInvalidVertex) {
      return Status::InvalidArgument(
          "appended edge uses the invalid-vertex sentinel as an endpoint");
    }
    if (e.u == e.v) continue;  // self-loops never contribute a neighbor
    RawTemporalEdge n = e;
    if (n.u > n.v) std::swap(n.u, n.v);
    if (dedup_exact_) {
      if (ContainsEdge(n.u, n.v, n.raw_time)) continue;
      if (!batch_seen.insert(RawEdgeKey{n.u, n.v, n.raw_time}).second) {
        continue;  // in-batch duplicate
      }
    }
    effective.push_back(n);
  }

  TemporalGraphBuilder builder;
  builder.SetDeduplicateExact(dedup_exact_);  // a multigraph stays one
  for (const TemporalEdge& e : edges_) {
    builder.AddEdge(e.u, e.v, RawTimestamp(e.t));
  }
  for (const RawTemporalEdge& e : effective) {
    builder.AddEdge(e.u, e.v, e.raw_time);
  }
  // Isolated vertices survive the rebuild (they never appear on an edge).
  builder.EnsureVertexCount(num_vertices_);
  auto built = builder.Build();
  if (!built.ok()) return built.status();

  GraphUpdate update;
  update.graph = std::move(built).value();
  EdgeDelta& delta = update.delta;
  delta.edges_appended = effective.size();
  if (effective.empty()) return update;

  delta.timestamps_preserved =
      update.graph.num_timestamps() == num_timestamps();
  delta.vertices_preserved = update.graph.num_vertices() == num_vertices_;
  delta.min_time = kInfTime;
  delta.max_time = 0;
  delta.effective_edges.reserve(effective.size());
  for (const RawTemporalEdge& e : effective) {
    delta.touched_vertices.push_back(e.u);
    delta.touched_vertices.push_back(e.v);
    // Every effective raw time exists in the new timeline by construction,
    // so the floor lookup is an exact match.
    const Timestamp t = update.graph.CompactTimestampFloor(e.raw_time);
    delta.effective_edges.push_back(TemporalEdge{e.u, e.v, t});
    delta.min_time = std::min(delta.min_time, t);
    delta.max_time = std::max(delta.max_time, t);
  }
  std::sort(delta.effective_edges.begin(), delta.effective_edges.end(),
            [](const TemporalEdge& a, const TemporalEdge& b) {
              return std::tie(a.t, a.u, a.v) < std::tie(b.t, b.u, b.v);
            });
  std::sort(delta.touched_vertices.begin(), delta.touched_vertices.end());
  delta.touched_vertices.erase(
      std::unique(delta.touched_vertices.begin(),
                  delta.touched_vertices.end()),
      delta.touched_vertices.end());

  // max_core_bound: degrees are memoized per touched vertex — deltas are
  // small, but one vertex can appear on many appended edges.
  std::vector<uint32_t> degree_of(delta.touched_vertices.size(), 0);
  std::vector<VertexId> scratch;
  auto degree = [&](VertexId u) {
    const size_t slot =
        std::lower_bound(delta.touched_vertices.begin(),
                         delta.touched_vertices.end(), u) -
        delta.touched_vertices.begin();
    if (degree_of[slot] == 0) {
      degree_of[slot] = DistinctDegree(update.graph, u, &scratch);
    }
    return degree_of[slot];
  };
  for (const RawTemporalEdge& e : effective) {
    delta.max_core_bound =
        std::max(delta.max_core_bound, std::min(degree(e.u), degree(e.v)));
  }
  return update;
}

uint64_t TemporalGraph::MemoryUsageBytes() const {
  return ApproxVectorBytes(edges_) + ApproxVectorBytes(time_offsets_) +
         ApproxVectorBytes(adj_offsets_) + ApproxVectorBytes(adj_) +
         ApproxVectorBytes(raw_of_compact_);
}

}  // namespace tkc
