#ifndef TKC_GRAPH_CORE_DECOMPOSITION_H_
#define TKC_GRAPH_CORE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/common.h"

/// \file core_decomposition.h
/// Classic O(m) core decomposition (Batagelj–Zaveršnik bucket peeling) of
/// the *static simple projection* of a temporal graph over a time window:
/// parallel temporal edges collapse to one static edge, and a vertex's degree
/// counts distinct neighbors. Used to compute each dataset's `kmax` (Table
/// III) and as the peeling substrate for OTCD and the reference enumerator.

namespace tkc {

/// Result of a core decomposition.
struct CoreDecompositionResult {
  /// core_number[v] = largest k such that v belongs to the k-core.
  /// Vertices with no edge in the window have core number 0.
  std::vector<uint32_t> core_numbers;
  /// Maximum core number over all vertices (the paper's kmax).
  uint32_t kmax = 0;

  /// Vertices belonging to the k-core (core_number >= k), ascending.
  std::vector<VertexId> KCoreVertices(uint32_t k) const;
};

/// Decomposes the simple projection of `g` over `window`.
CoreDecompositionResult DecomposeCores(const TemporalGraph& g, Window window);

/// Decomposes the simple projection of `g` over its full time range.
inline CoreDecompositionResult DecomposeCores(const TemporalGraph& g) {
  return DecomposeCores(g, g.FullRange());
}

/// A static simple graph distilled from a temporal window: CSR adjacency
/// with parallel edges collapsed. Exposed for reuse by peeling routines.
struct SimpleProjection {
  VertexId num_vertices = 0;
  std::vector<uint32_t> offsets;     // size n+1
  std::vector<VertexId> neighbors;   // distinct neighbors per vertex

  uint32_t Degree(VertexId u) const { return offsets[u + 1] - offsets[u]; }
  std::span<const VertexId> NeighborsOf(VertexId u) const {
    return {neighbors.data() + offsets[u], neighbors.data() + offsets[u + 1]};
  }
  /// Total directed adjacency entries (2x undirected simple edge count).
  size_t NumDirectedEdges() const { return neighbors.size(); }
};

/// Builds the deduplicated static projection of `g` over `window`.
SimpleProjection BuildSimpleProjection(const TemporalGraph& g, Window window);

}  // namespace tkc

#endif  // TKC_GRAPH_CORE_DECOMPOSITION_H_
