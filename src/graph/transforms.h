#ifndef TKC_GRAPH_TRANSFORMS_H_
#define TKC_GRAPH_TRANSFORMS_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "util/status.h"

/// \file transforms.h
/// Graph-to-graph transformations used by pipelines around the query
/// engine: materializing a time window as a standalone graph (with the
/// mapping back to the original), inducing on a vertex subset (e.g. an
/// enumerated core's vertices for visualization), and relabeling vertices
/// densely.

namespace tkc {

/// A derived graph plus the provenance mapping back to its source.
struct ExtractedGraph {
  TemporalGraph graph;
  /// original EdgeId of each derived edge (index = derived EdgeId).
  std::vector<EdgeId> source_edge;
  /// original VertexId of each derived vertex (index = derived VertexId);
  /// identity when vertices were not relabeled.
  std::vector<VertexId> source_vertex;
};

/// Materializes the projected graph G[window] as a standalone graph with
/// freshly compacted timestamps. Queries on the extract over its full range
/// are equivalent to queries on the source over `window` (tested).
/// Fails when the window contains no edges.
[[nodiscard]] StatusOr<ExtractedGraph> ExtractWindow(const TemporalGraph& g,
                                                     Window window);

/// Induces on a vertex subset: keeps edges with BOTH endpoints in
/// `vertices`, relabels vertices densely in sorted order. Fails when the
/// induced graph has no edges.
[[nodiscard]] StatusOr<ExtractedGraph> InduceOnVertices(const TemporalGraph& g,
                                          std::span<const VertexId> vertices);

/// Relabels vertices densely, dropping isolated ids (useful after loading
/// SNAP files with sparse id spaces). Always succeeds on non-empty graphs.
[[nodiscard]] StatusOr<ExtractedGraph> CompactVertexIds(const TemporalGraph& g);

}  // namespace tkc

#endif  // TKC_GRAPH_TRANSFORMS_H_
