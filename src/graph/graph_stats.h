#ifndef TKC_GRAPH_GRAPH_STATS_H_
#define TKC_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/temporal_graph.h"
#include "util/common.h"

/// \file graph_stats.h
/// Dataset statistics in the shape of the paper's Table III: |V|, |E|,
/// tmax (distinct timestamps) and kmax (maximum core number of the static
/// simple projection over the full time range).

namespace tkc {

/// Table III row for one dataset.
struct GraphStats {
  uint64_t num_vertices = 0;       // |V| counting only vertices with edges
  uint64_t num_edges = 0;          // |E| temporal edges
  uint64_t num_timestamps = 0;     // tmax
  uint32_t kmax = 0;               // max core number
  double avg_degree = 0.0;         // average distinct-neighbor degree
};

/// Computes full statistics (includes an O(m) core decomposition).
GraphStats ComputeGraphStats(const TemporalGraph& g);

/// One-line human-readable rendering.
std::string FormatGraphStats(const std::string& name, const GraphStats& s);

}  // namespace tkc

#endif  // TKC_GRAPH_GRAPH_STATS_H_
