#include "graph/window_peeler.h"

#include <algorithm>

#include "graph/core_decomposition.h"
#include "util/check.h"

namespace tkc {

std::vector<bool> ComputeWindowCoreVertices(const TemporalGraph& g, uint32_t k,
                                            Window window) {
  TKC_CHECK_GE(k, 1u);
  SimpleProjection p = BuildSimpleProjection(g, window);

  std::vector<uint32_t> degree(p.num_vertices);
  std::vector<bool> alive(p.num_vertices, false);
  std::vector<VertexId> stack;
  for (VertexId v = 0; v < p.num_vertices; ++v) {
    degree[v] = p.Degree(v);
    if (degree[v] > 0) alive[v] = true;
    if (alive[v] && degree[v] < k) stack.push_back(v);
  }
  // Threshold peeling: repeatedly delete vertices with degree < k.
  std::vector<bool> queued(p.num_vertices, false);
  for (VertexId v : stack) queued[v] = true;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    if (!alive[v]) continue;
    alive[v] = false;
    for (VertexId w : p.NeighborsOf(v)) {
      if (!alive[w]) continue;
      if (--degree[w] < k && !queued[w]) {
        queued[w] = true;
        stack.push_back(w);
      }
    }
  }
  return alive;
}

WindowCore ComputeWindowCore(const TemporalGraph& g, uint32_t k,
                             Window window) {
  WindowCore core;
  core.in_core = ComputeWindowCoreVertices(g, k, window);

  auto [first, last] = g.EdgeIdRangeInWindow(window);
  for (EdgeId id = first; id < last; ++id) {
    const TemporalEdge& e = g.edge(id);
    if (core.in_core[e.u] && core.in_core[e.v]) {
      core.edges.push_back(id);
    }
  }
  if (!core.edges.empty()) {
    core.tti.start = g.edge(core.edges.front()).t;
    core.tti.end = g.edge(core.edges.back()).t;
  } else {
    // No edge survived: also clear any stray vertex flags (there can be
    // none — a core vertex has k >= 1 surviving neighbors — but keep the
    // representation canonical).
    std::fill(core.in_core.begin(), core.in_core.end(), false);
  }
  return core;
}

}  // namespace tkc
