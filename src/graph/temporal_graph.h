#ifndef TKC_GRAPH_TEMPORAL_GRAPH_H_
#define TKC_GRAPH_TEMPORAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

/// \file temporal_graph.h
/// The in-memory temporal graph: an undirected multigraph whose edges carry
/// timestamps. This is the substrate every algorithm in the library runs on.
///
/// Representation (all built once by TemporalGraphBuilder::Build):
///  * `edges_` — all temporal edges sorted by (time, u, v). EdgeId is the
///    index into this array, so "the edges of window [ts,te]" is a contiguous
///    span, recoverable in O(1) from `time_offsets_`.
///  * per-vertex CSR adjacency sorted by time — "the neighbors of u within
///    [ts,te]" is a contiguous slice found by binary search.
///  * timestamps are compacted to `1..num_timestamps()` preserving order
///    (the paper's convention); the raw values are retained for reporting.
///
/// Multi-edges: parallel edges (same endpoints, different timestamps) are
/// first-class citizens — each is a distinct temporal edge with its own
/// EdgeId, matching the "easily extended for multiple edges" remark in the
/// paper. Exact duplicates (same endpoints AND timestamp) are deduplicated
/// by default. Self-loops are dropped (they never contribute a neighbor).

namespace tkc {

/// One not-yet-ingested undirected edge with a *raw* (uncompacted)
/// timestamp — the currency of update streams (TemporalGraph::AppendEdges,
/// the serving layer's snapshot rebuilds). Orientation does not matter.
struct RawTemporalEdge {
  VertexId u = 0;
  VertexId v = 0;
  uint64_t raw_time = 0;
};

/// One undirected temporal edge. Endpoints are normalized so u < v.
struct TemporalEdge {
  VertexId u = 0;
  VertexId v = 0;
  Timestamp t = 0;

  friend bool operator==(const TemporalEdge& a, const TemporalEdge& b) {
    return a.u == b.u && a.v == b.v && a.t == b.t;
  }
};

/// What one TemporalGraph::AppendEdges call actually changed, expressed in
/// the *new* graph's coordinates. The serving layer's delta-aware rebuilds
/// (PhcIndex::Rebuild, cross-snapshot cache carry-over) consume this to
/// prove which per-k index slices the append could not have touched.
///
/// "Effective" edges are the appended edges that survive ingestion:
/// self-loops are dropped and, when the base graph deduplicates, exact
/// duplicates of existing edges (or of earlier edges in the same batch)
/// collapse. An append whose every edge is dropped produces a graph
/// bit-identical to the base and an empty delta.
struct EdgeDelta {
  /// Appended edges that survived ingestion (see above).
  uint64_t edges_appended = 0;

  /// Distinct endpoints of the effective edges, ascending.
  std::vector<VertexId> touched_vertices;

  /// The effective edges themselves, normalized (u < v) and expressed in
  /// the *new* graph's compacted timeline, sorted by (t, u, v). The
  /// per-slice band-tightening proof in PhcIndex::Rebuild needs the
  /// endpoint *pairing* (which two vertices an appended edge connects, and
  /// when) — touched_vertices alone cannot say whether both endpoints of
  /// one edge can reach degree k inside a candidate window.
  std::vector<TemporalEdge> effective_edges;

  /// Compacted-time extent [min_time, max_time] of the effective edges in
  /// the *new* graph's timeline; both 0 when the delta is empty.
  Timestamp min_time = 0;
  Timestamp max_time = 0;

  /// True iff the append minted no new distinct raw timestamp, i.e. the
  /// new graph's compacted timeline is identical to the base graph's (same
  /// raw_of_compact mapping, same num_timestamps). Every time-coordinate
  /// of the base graph — index ranges, cached query windows — keeps its
  /// meaning across the swap only when this holds.
  bool timestamps_preserved = true;

  /// True iff the append introduced no vertex beyond the base graph's
  /// num_vertices(). Per-vertex index shapes (CSR offsets) carry over only
  /// when this holds.
  bool vertices_preserved = true;

  /// Max over effective edges (u, v) of min(distinct-neighbor degree of u,
  /// distinct-neighbor degree of v), degrees taken over the *new* graph's
  /// full range. No effective edge can sit inside a k-core for
  /// k > max_core_bound, so (for a preserved timeline and vertex pool)
  /// every window's k-core — and hence the k-slice of any core-time index
  /// and any cached (k, range) outcome — is provably unchanged for such k.
  /// 0 when the delta is empty.
  uint32_t max_core_bound = 0;

  /// True iff nothing survived ingestion: the new graph is bit-identical
  /// to the base graph.
  bool empty() const { return edges_appended == 0; }

  /// The compact-time extent [min_time, max_time] as a window — the proof
  /// boundary of suffix maintenance. With the timeline preserved, a window
  /// ending before min_time contains no delta edge (its k-core, and every
  /// core time below min_time, is unchanged), and a window starting after
  /// max_time contains none either (core times at those starts are
  /// unchanged). Invalid (0,0) when the delta is empty.
  Window TimeExtent() const { return Window{min_time, max_time}; }
};

struct GraphUpdate;  // defined after TemporalGraph below

/// One entry of a vertex's time-sorted adjacency list.
struct AdjEntry {
  VertexId neighbor = 0;
  Timestamp time = 0;
  EdgeId edge = 0;
};

class TemporalGraph;

/// Accumulates edges and produces an immutable TemporalGraph.
class TemporalGraphBuilder {
 public:
  TemporalGraphBuilder() = default;

  /// Adds one undirected edge with a *raw* (uncompacted) timestamp.
  /// Orientation does not matter; self-loops are silently dropped.
  void AddEdge(VertexId u, VertexId v, uint64_t raw_time);

  /// Forces the vertex count to at least `n` (for graphs with isolated
  /// vertices that never appear on an edge).
  void EnsureVertexCount(VertexId n);

  /// If true (default), edges identical in (u, v, raw_time) are merged.
  void SetDeduplicateExact(bool dedup) { dedup_exact_ = dedup; }

  /// Number of edges added so far (before dedup).
  size_t PendingEdges() const { return raw_edges_.size(); }

  /// Finalizes: compacts timestamps, sorts, builds CSR. The builder is left
  /// empty and reusable. Fails if no edges were added.
  StatusOr<TemporalGraph> Build();

 private:
  struct RawEdge {
    VertexId u, v;
    uint64_t raw_t;
  };
  std::vector<RawEdge> raw_edges_;
  VertexId min_vertex_count_ = 0;
  bool dedup_exact_ = true;
};

/// Immutable temporal graph. Copyable (it is a value type of plain vectors),
/// but large instances should be passed by const reference.
class TemporalGraph {
 public:
  TemporalGraph() = default;

  // --- global shape ---------------------------------------------------

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }
  /// Number of distinct (compacted) timestamps; timestamps run 1..this.
  Timestamp num_timestamps() const {
    return static_cast<Timestamp>(raw_of_compact_.size());
  }
  /// The full time range [1, num_timestamps()].
  Window FullRange() const { return Window{1, num_timestamps()}; }

  // --- edges ----------------------------------------------------------

  const TemporalEdge& edge(EdgeId e) const { return edges_[e]; }
  std::span<const TemporalEdge> edges() const { return edges_; }

  /// Edges with compacted time exactly `t` (contiguous, possibly empty).
  std::span<const TemporalEdge> EdgesAtTime(Timestamp t) const;

  /// EdgeIds [first, last) of edges with time exactly `t`.
  std::pair<EdgeId, EdgeId> EdgeIdRangeAtTime(Timestamp t) const;

  /// All edges whose time lies in `[w.start, w.end]` (contiguous span).
  std::span<const TemporalEdge> EdgesInWindow(Window w) const;

  /// EdgeIds [first, last) of edges within the window.
  std::pair<EdgeId, EdgeId> EdgeIdRangeInWindow(Window w) const;

  // --- adjacency ------------------------------------------------------

  /// All temporal adjacency entries of `u`, sorted by (time, neighbor).
  std::span<const AdjEntry> Neighbors(VertexId u) const;

  /// Adjacency entries of `u` whose edge time lies within `w`.
  /// O(log deg(u)) to locate; the result is contiguous.
  std::span<const AdjEntry> NeighborsInWindow(VertexId u, Window w) const;

  /// Number of temporal adjacency entries of `u` (counts parallel edges).
  uint32_t TemporalDegree(VertexId u) const {
    return adj_offsets_[u + 1] - adj_offsets_[u];
  }

  // --- timestamps -----------------------------------------------------

  /// Raw (original) timestamp value of compacted time `t` (1-based).
  uint64_t RawTimestamp(Timestamp t) const;

  /// Whether this graph was built with exact-duplicate merging (the
  /// builder default). Recorded so AppendEdges can rebuild under the same
  /// ingestion rules — a multigraph loaded with dedup off keeps its
  /// parallel duplicates across live-update rebuilds.
  bool deduplicates_exact() const { return dedup_exact_; }

  /// Largest compacted timestamp whose raw value is <= `raw`, or 0 if all
  /// raw timestamps exceed `raw`.
  Timestamp CompactTimestampFloor(uint64_t raw) const;

  /// True iff this graph holds an edge between `u` and `v` (either
  /// orientation) at raw time `raw`. O(log) to locate the timestamp plus a
  /// scan of the smaller endpoint's single-timestamp adjacency slice.
  bool ContainsEdge(VertexId u, VertexId v, uint64_t raw) const;

  // --- updates --------------------------------------------------------

  /// Returns a *new* graph holding every edge of this graph plus
  /// `new_edges`, together with an EdgeDelta describing what the append
  /// actually changed — the currency of the serving layer's incremental
  /// snapshot rebuilds. The original graph stays immutable (in-flight
  /// readers are never disturbed) and the appended graph is a complete
  /// rebuild with freshly compacted timestamps, ready to be swapped in as
  /// the next serving snapshot. New raw timestamps may fall anywhere
  /// (before, between, after the existing ones); compacted timestamps of
  /// existing edges therefore may shift, which is why the result is a
  /// distinct graph version rather than a mutation. Follows the ingestion
  /// rules this graph was built with: self-loops dropped, and exact
  /// duplicates (same endpoints and raw time, including against existing
  /// edges) merged iff deduplicates_exact(). Appending zero (effective)
  /// edges yields an identical copy with an empty delta. Fails on an
  /// endpoint equal to kInvalidVertex (the sentinel is never a vertex).
  StatusOr<GraphUpdate> AppendEdges(
      std::span<const RawTemporalEdge> new_edges) const;

  // --- misc -----------------------------------------------------------

  /// Approximate heap bytes held by this graph.
  uint64_t MemoryUsageBytes() const;

 private:
  friend class TemporalGraphBuilder;

  VertexId num_vertices_ = 0;
  bool dedup_exact_ = true;                  // builder setting, for rebuilds
  std::vector<TemporalEdge> edges_;          // sorted by (t, u, v)
  std::vector<uint32_t> time_offsets_;       // size T+2: first edge of each t
  std::vector<uint32_t> adj_offsets_;        // size n+1
  std::vector<AdjEntry> adj_;                // per-vertex, sorted by (t, nbr)
  std::vector<uint64_t> raw_of_compact_;     // size T: raw value of t-1
};

/// The result of TemporalGraph::AppendEdges: the successor graph plus the
/// delta that separates it from the base graph.
struct GraphUpdate {
  TemporalGraph graph;
  EdgeDelta delta;
};

}  // namespace tkc

#endif  // TKC_GRAPH_TEMPORAL_GRAPH_H_
