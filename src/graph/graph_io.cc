#include "graph/graph_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tkc {

namespace {

// Parses one whitespace-separated unsigned integer starting at *p; advances
// *p past it. Returns false if no digits found.
bool ParseU64(const char** p, const char* end, uint64_t* out) {
  const char* s = *p;
  while (s < end && (*s == ' ' || *s == '\t' || *s == '\r')) ++s;
  if (s >= end || *s < '0' || *s > '9') return false;
  uint64_t v = 0;
  while (s < end && *s >= '0' && *s <= '9') {
    v = v * 10 + static_cast<uint64_t>(*s - '0');
    ++s;
  }
  *p = s;
  *out = v;
  return true;
}

}  // namespace

StatusOr<TemporalGraph> ParseSnapText(const std::string& text,
                                      const SnapLoadOptions& options) {
  TemporalGraphBuilder builder;
  builder.SetDeduplicateExact(options.deduplicate_exact);

  const char* p = text.data();
  const char* end = p + text.size();
  size_t line_no = 0;
  while (p < end) {
    ++line_no;
    const char* line_end = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<size_t>(end - p)));
    if (line_end == nullptr) line_end = end;
    const char* cursor = p;
    // Skip leading whitespace to find comments / blank lines.
    while (cursor < line_end &&
           (*cursor == ' ' || *cursor == '\t' || *cursor == '\r')) {
      ++cursor;
    }
    if (cursor == line_end || *cursor == '#' || *cursor == '%') {
      p = line_end + 1;
      continue;
    }
    uint64_t u = 0, v = 0, t = 0;
    bool ok = ParseU64(&cursor, line_end, &u) &&
              ParseU64(&cursor, line_end, &v) &&
              ParseU64(&cursor, line_end, &t);
    if (!ok) {
      if (options.strict) {
        return Status::Corruption("malformed edge at line " +
                                  std::to_string(line_no));
      }
      p = line_end + 1;
      continue;
    }
    if (u > kInvalidVertex - 1 || v > kInvalidVertex - 1) {
      return Status::OutOfRange("vertex id exceeds 32 bits at line " +
                                std::to_string(line_no));
    }
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v), t);
    p = line_end + 1;
  }
  if (builder.PendingEdges() == 0) {
    return Status::InvalidArgument("no edges found in input");
  }
  return builder.Build();
}

StatusOr<TemporalGraph> LoadSnapFile(const std::string& path,
                                     const SnapLoadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failure on '" + path + "'");
  }
  return ParseSnapText(buf.str(), options);
}

std::string ToSnapText(const TemporalGraph& g) {
  std::string out;
  out.reserve(static_cast<size_t>(g.num_edges()) * 16);
  char line[64];
  for (const TemporalEdge& e : g.edges()) {
    int n = std::snprintf(line, sizeof(line), "%u %u %llu\n", e.u, e.v,
                          static_cast<unsigned long long>(g.RawTimestamp(e.t)));
    out.append(line, static_cast<size_t>(n));
  }
  return out;
}

Status SaveSnapFile(const TemporalGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot create '" + path + "': " +
                           std::strerror(errno));
  }
  std::string text = ToSnapText(g);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) {
    return Status::IOError("write failure on '" + path + "'");
  }
  return Status::OK();
}

}  // namespace tkc
