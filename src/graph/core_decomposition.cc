#include "graph/core_decomposition.h"

#include <algorithm>

#include "util/bucket_queue.h"
#include "util/check.h"

namespace tkc {

std::vector<VertexId> CoreDecompositionResult::KCoreVertices(
    uint32_t k) const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < core_numbers.size(); ++v) {
    if (core_numbers[v] >= k) out.push_back(v);
  }
  return out;
}

SimpleProjection BuildSimpleProjection(const TemporalGraph& g, Window window) {
  // Collect undirected pairs in the window, dedup, expand to CSR.
  auto edges = g.EdgesInWindow(window);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(edges.size());
  for (const TemporalEdge& e : edges) pairs.emplace_back(e.u, e.v);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  SimpleProjection p;
  p.num_vertices = g.num_vertices();
  p.offsets.assign(p.num_vertices + 1, 0);
  for (const auto& [u, v] : pairs) {
    ++p.offsets[u + 1];
    ++p.offsets[v + 1];
  }
  for (size_t i = 1; i < p.offsets.size(); ++i) {
    p.offsets[i] += p.offsets[i - 1];
  }
  p.neighbors.resize(p.offsets.back());
  std::vector<uint32_t> cursor(p.offsets.begin(), p.offsets.end() - 1);
  for (const auto& [u, v] : pairs) {
    p.neighbors[cursor[u]++] = v;
    p.neighbors[cursor[v]++] = u;
  }
  return p;
}

CoreDecompositionResult DecomposeCores(const TemporalGraph& g, Window window) {
  SimpleProjection p = BuildSimpleProjection(g, window);

  std::vector<uint32_t> degrees(p.num_vertices);
  for (VertexId v = 0; v < p.num_vertices; ++v) degrees[v] = p.Degree(v);

  BucketQueue queue(degrees);
  CoreDecompositionResult result;
  result.core_numbers.assign(p.num_vertices, 0);

  uint32_t current_core = 0;
  while (!queue.Empty()) {
    VertexId v = queue.PopMin();
    current_core = std::max(current_core, queue.LastPoppedDegree());
    result.core_numbers[v] = current_core;
    for (VertexId w : p.NeighborsOf(v)) {
      if (queue.Contains(w) && queue.DegreeOf(w) > current_core) {
        queue.DecrementDegree(w);
      }
    }
  }
  result.kmax = current_core;
  return result;
}

}  // namespace tkc
