#include "serve/query_cache.h"

namespace tkc {

namespace {

/// The outcome an admission rejection produces: OK status, every count
/// zero. Replayed verbatim for tombstone hits, so a tombstone hit is
/// bit-identical (result fields) to the admission path it memoizes.
RunOutcome CanonicalEmptyOutcome() {
  RunOutcome out;
  out.status = Status::OK();
  return out;
}

}  // namespace

QueryCache::QueryCache(size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) map_.reserve(capacity_);
}

bool QueryCache::Lookup(const Query& query, RunOutcome* out) {
  const QueryCacheKey key{query.k, query.range};
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  *out = it->second->second.has_value() ? *it->second->second
                                        : CanonicalEmptyOutcome();
  ++hits_;
  return true;
}

void QueryCache::InsertEntry(const QueryCacheKey& key,
                             std::optional<RunOutcome> payload) {
  auto evict_to_budget = [this] {
    // Never evicts the MRU entry itself (it may be the one just touched;
    // a lone full outcome in a capacity-1 cache is exactly the budget).
    while (weight_used_ > weight_capacity() && lru_.size() > 1) {
      const Entry& victim = lru_.back();
      weight_used_ -= WeightOf(victim);
      if (!victim.second.has_value()) --tombstones_;
      map_.erase(victim.first);
      lru_.pop_back();
      ++evictions_;
    }
  };

  auto it = map_.find(key);
  if (it != map_.end()) {
    Entry& entry = *it->second;
    // A tombstone never demotes a stored full outcome; any other payload
    // replaces (tombstone -> full upgrades, full -> full refreshes). An
    // upgrade grows the entry's weight, so the budget is re-enforced.
    if (payload.has_value() || !entry.second.has_value()) {
      weight_used_ -= WeightOf(entry);
      if (!entry.second.has_value()) --tombstones_;
      entry.second = std::move(payload);
      weight_used_ += WeightOf(entry);
      if (!entry.second.has_value()) ++tombstones_;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_to_budget();
    return;
  }
  const size_t weight = payload.has_value() ? kOutcomeWeight : 1;
  weight_used_ += weight;
  lru_.emplace_front(key, std::move(payload));
  map_.emplace(key, lru_.begin());
  if (!lru_.front().second.has_value()) ++tombstones_;
  evict_to_budget();
}

void QueryCache::Insert(const Query& query, const RunOutcome& outcome) {
  if (capacity_ == 0) return;
  InsertEntry(QueryCacheKey{query.k, query.range}, outcome);
}

void QueryCache::InsertTombstone(const Query& query) {
  if (capacity_ == 0) return;
  InsertEntry(QueryCacheKey{query.k, query.range}, std::nullopt);
}

std::vector<QueryCacheEntry> QueryCache::ExportLruToMru(
    KeyPredicate keep, uint32_t keep_arg) const {
  std::vector<QueryCacheEntry> entries;
  entries.reserve(lru_.size());
  // lru_ runs MRU -> LRU front to back; export reversed.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    if (keep != nullptr && !keep(it->first, keep_arg)) continue;
    entries.push_back(QueryCacheEntry{it->first, it->second});
  }
  return entries;
}

size_t QueryCache::ImportEntries(std::vector<QueryCacheEntry> entries) {
  if (capacity_ == 0) return 0;
  for (QueryCacheEntry& entry : entries) {
    InsertEntry(entry.key, std::move(entry.outcome));
  }
  // Later imports (or the budget) may have evicted earlier ones; report
  // what actually survived.
  size_t resident = 0;
  for (const QueryCacheEntry& entry : entries) {
    if (map_.find(entry.key) != map_.end()) ++resident;
  }
  return resident;
}

void QueryCache::Clear() {
  lru_.clear();
  map_.clear();
  weight_used_ = 0;
  tombstones_ = 0;
}

StripedQueryCache::StripedQueryCache(size_t capacity, size_t stripes)
    : capacity_(capacity) {
  // A stripe with a zero budget could never hold anything (and would break
  // the "total capacity preserved" contract), so the stripe count is
  // capped by the capacity. Capacity 0 keeps one inert stripe so the
  // accessors stay total.
  size_t count = stripes == 0 ? 1 : stripes;
  if (capacity_ > 0 && count > capacity_) count = capacity_;
  if (capacity_ == 0) count = 1;
  stripes_.reserve(count);
  const size_t base = capacity_ / count;
  const size_t remainder = capacity_ % count;
  for (size_t i = 0; i < count; ++i) {
    stripes_.push_back(
        std::make_unique<Stripe>(base + (i < remainder ? 1 : 0)));
  }
}

bool StripedQueryCache::Lookup(const Query& query, RunOutcome* out) {
  Stripe* stripe =
      stripes_[StripeOf(QueryCacheKey{query.k, query.range})].get();
  MutexLock lock(stripe->mu);
  return stripe->cache.Lookup(query, out);
}

void StripedQueryCache::Insert(const Query& query, const RunOutcome& outcome) {
  if (capacity_ == 0) return;
  Stripe* stripe =
      stripes_[StripeOf(QueryCacheKey{query.k, query.range})].get();
  MutexLock lock(stripe->mu);
  stripe->cache.Insert(query, outcome);
}

void StripedQueryCache::InsertTombstone(const Query& query) {
  if (capacity_ == 0) return;
  Stripe* stripe =
      stripes_[StripeOf(QueryCacheKey{query.k, query.range})].get();
  MutexLock lock(stripe->mu);
  stripe->cache.InsertTombstone(query);
}

void StripedQueryCache::Clear() {
  for (const auto& entry : stripes_) {
    Stripe* stripe = entry.get();
    MutexLock lock(stripe->mu);
    stripe->cache.Clear();
  }
}

std::vector<QueryCacheEntry> StripedQueryCache::ExportLruToMru(
    QueryCache::KeyPredicate keep, uint32_t keep_arg) const {
  std::vector<QueryCacheEntry> entries;
  for (const auto& entry : stripes_) {
    Stripe* stripe = entry.get();
    MutexLock lock(stripe->mu);
    std::vector<QueryCacheEntry> part =
        stripe->cache.ExportLruToMru(keep, keep_arg);
    entries.insert(entries.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  return entries;
}

size_t StripedQueryCache::ImportEntries(std::vector<QueryCacheEntry> entries) {
  if (capacity_ == 0) return 0;
  // Route first, then import stripe by stripe: each stripe sees its
  // entries in the exported order, so per-stripe recency replays intact.
  std::vector<std::vector<QueryCacheEntry>> routed(stripes_.size());
  for (QueryCacheEntry& entry : entries) {
    routed[StripeOf(entry.key)].push_back(std::move(entry));
  }
  size_t resident = 0;
  for (size_t i = 0; i < stripes_.size(); ++i) {
    if (routed[i].empty()) continue;
    Stripe* stripe = stripes_[i].get();
    MutexLock lock(stripe->mu);
    resident += stripe->cache.ImportEntries(std::move(routed[i]));
  }
  return resident;
}

size_t StripedQueryCache::size() const {
  size_t total = 0;
  for (const auto& entry : stripes_) {
    Stripe* stripe = entry.get();
    MutexLock lock(stripe->mu);
    total += stripe->cache.size();
  }
  return total;
}

size_t StripedQueryCache::tombstones() const {
  size_t total = 0;
  for (const auto& entry : stripes_) {
    Stripe* stripe = entry.get();
    MutexLock lock(stripe->mu);
    total += stripe->cache.tombstones();
  }
  return total;
}

size_t StripedQueryCache::weight_used() const {
  size_t total = 0;
  for (const auto& entry : stripes_) {
    Stripe* stripe = entry.get();
    MutexLock lock(stripe->mu);
    total += stripe->cache.weight_used();
  }
  return total;
}

uint64_t StripedQueryCache::hits() const {
  uint64_t total = 0;
  for (const auto& entry : stripes_) {
    Stripe* stripe = entry.get();
    MutexLock lock(stripe->mu);
    total += stripe->cache.hits();
  }
  return total;
}

uint64_t StripedQueryCache::misses() const {
  uint64_t total = 0;
  for (const auto& entry : stripes_) {
    Stripe* stripe = entry.get();
    MutexLock lock(stripe->mu);
    total += stripe->cache.misses();
  }
  return total;
}

uint64_t StripedQueryCache::evictions() const {
  uint64_t total = 0;
  for (const auto& entry : stripes_) {
    Stripe* stripe = entry.get();
    MutexLock lock(stripe->mu);
    total += stripe->cache.evictions();
  }
  return total;
}

}  // namespace tkc
