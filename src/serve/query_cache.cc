#include "serve/query_cache.h"

namespace tkc {

QueryCache::QueryCache(size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) map_.reserve(capacity_);
}

bool QueryCache::Lookup(const Query& query, RunOutcome* out) {
  const QueryCacheKey key{query.k, query.range};
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  *out = it->second->second;
  ++hits_;
  return true;
}

void QueryCache::Insert(const Query& query, const RunOutcome& outcome) {
  if (capacity_ == 0) return;
  const QueryCacheKey key{query.k, query.range};
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = outcome;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, outcome);
  map_.emplace(key, lru_.begin());
}

void QueryCache::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace tkc
