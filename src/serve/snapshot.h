#ifndef TKC_SERVE_SNAPSHOT_H_
#define TKC_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "graph/temporal_graph.h"
#include "serve/query_engine.h"
#include "util/mpsc_queue.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "vct/phc_index.h"

/// \file snapshot.h
/// Live updates for the serving layer: a versioned, immutable
/// (graph + engine) snapshot and a LiveQueryEngine that serves queries from
/// the current snapshot while rebuilding the next one off-thread.
///
/// Consistency model — *pinned snapshots, no torn reads*:
///
///  * A GraphSnapshot is immutable: the temporal graph, the PHC admission
///    index replicas, and the per-k emergence tables are all built once and
///    never mutated (the engine's cache/arena internals are mutable but
///    internally synchronized and invisible to results).
///  * Every submission — sync or async — *pins* the snapshot that is
///    current at submission time by holding its shared_ptr until the
///    batch's result is delivered. All queries of one batch therefore
///    answer against exactly one graph version, even if any number of
///    swaps land while the batch is in flight.
///  * ApplyUpdates never blocks serving: a dedicated updater thread builds
///    the successor snapshot off to the side — its index rebuild fanned
///    over a dedicated update pool, never the serving pool — and then
///    publishes it with one atomic shared_ptr store; pinning the current
///    snapshot is a lock-free atomic load. Old snapshots die when their
///    last pinned batch completes.
///  * Update batches are applied strictly FIFO (a bounded MPSC queue feeds
///    the updater thread). Under swap pressure the updater *coalesces*:
///    each rebuild cycle drains every batch queued at that moment, applies
///    their edges as one delta, and advances the version by the number of
///    batches coalesced — so version N is always exactly the initial graph
///    plus update batches 1..N (the property the differential harness
///    replays against), with published versions a subset of {0, 1, 2, ...}
///    that skips the interiors of coalesced groups. A cycle that fails
///    drops *every* batch it coalesced (all their futures carry the error,
///    all count as failed_updates) and the previous snapshot stays
///    current.
///
/// Incremental maintenance — *delta-aware rebuilds*:
///
///  * TemporalGraph::AppendEdges reports an EdgeDelta alongside the new
///    graph. When the delta preserved the compacted timeline and the
///    vertex pool, PhcIndex::Rebuild reuses (by pointer — slices are
///    shared_ptr) every k-slice with k > delta.max_core_bound: no appended
///    edge can sit inside such a k-core, so those slices are provably
///    bit-identical to a from-scratch build. Only the dirty slices rebuild
///    over the pool.
///  * The successor engine's query cache is seeded with the predecessor's
///    entries whose (k, range) lies in a provably-clean slice region
///    (QueryEngine::CarryOverCacheFrom) instead of starting cold.
///  * Per-swap accounting lands in GraphSnapshot::swap_stats() and
///    aggregates into LiveStats::update (UpdateStats).

namespace tkc {

/// Cumulative counters of the delta-aware updater. Exposed via
/// LiveQueryEngine::update_stats() and printed by `tkc_cli --updates`.
///
/// Invariants (asserted by the differential harness after every scenario,
/// with `failed` = LiveStats::failed_updates):
///   batches_applied + failed == batches_submitted
///   batches_coalesced        <= batches_applied + failed
struct UpdateStats {
  /// ApplyUpdates batches the updater thread picked up (applied, failed,
  /// or released at shutdown). Batches rejected at submission time — the
  /// engine was already shutting down — never reach the updater and are
  /// not counted.
  uint64_t batches_submitted = 0;
  /// Batches whose edges made it into a swapped-in snapshot.
  uint64_t batches_applied = 0;
  /// Batches merged into another batch's rebuild cycle (group size - 1 per
  /// cycle, counted whether the cycle succeeded or failed — either way the
  /// riders shared one outcome instead of paying their own cycle): how
  /// much work coalescing saved under swap pressure.
  uint64_t batches_coalesced = 0;
  /// Index slices carried across swaps by pointer (no rebuild).
  uint64_t slices_reused = 0;
  /// Index slices rebuilt from scratch during swaps.
  uint64_t slices_rebuilt = 0;
  /// Dirty slices maintained partially: only the start band the delta
  /// could touch was recomputed, prefix/tail rows carried over.
  uint64_t suffix_rebuilds = 0;
  /// VCT rows carried across swaps (whole-slice reuse + suffix stitching).
  uint64_t rows_reused = 0;
  /// Total VCT rows across all incrementally produced indexes.
  uint64_t rows_total = 0;
  /// Per-k core-emergence tables copied from the predecessor engine
  /// instead of recomputed (pointer-shared slices only).
  uint64_t emergence_tables_carried = 0;
  /// Per-k core-emergence tables maintained incrementally for
  /// suffix-stitched slices: the predecessor's table copied, only the
  /// recomputed start band re-swept.
  uint64_t emergence_tables_stitched = 0;
  /// Query-cache entries carried across swaps instead of recomputing.
  uint64_t cache_entries_carried = 0;
  /// Swap cycles that carried at least one slice (whole or suffix).
  uint64_t incremental_swaps = 0;
  /// Rebuild attempts beyond each cycle's first (the retry/backoff path).
  uint64_t rebuild_retries = 0;
  /// Total milliseconds spent degraded: inside a cycle's retry loop, from
  /// its first failed attempt until the cycle settled (either way).
  uint64_t degraded_ms = 0;
};

/// The update path's coarse health, exposed by LiveQueryEngine::health().
/// Serving is unaffected by all three states — queries keep answering from
/// the last good snapshot; the state describes whether *updates* are
/// landing.
enum class HealthState {
  kHealthy,        ///< last rebuild cycle succeeded (or none ran yet)
  kDegraded,       ///< a rebuild cycle is mid-retry after transient failure
  kUpdatesFailed,  ///< a cycle exhausted its retries; updates are failing
};

/// "Healthy" / "Degraded" / "UpdatesFailed".
const char* HealthStateName(HealthState state);

/// One immutable graph version with its serving engine. Always heap-owned
/// via shared_ptr (Create returns one) so in-flight batches can pin it past
/// a swap; never copied or moved (the engine holds a pointer to the graph).
class GraphSnapshot {
 public:
  /// How this snapshot was produced from its predecessor. All-zero for the
  /// initial snapshot and for full (non-incremental) rebuilds.
  struct SwapStats {
    uint64_t delta_edges = 0;       ///< effective appended edges
    uint32_t slices_reused = 0;     ///< index slices shared with the base
    uint32_t slices_rebuilt = 0;    ///< index slices rebuilt for this version
    uint32_t suffix_rebuilds = 0;   ///< slices maintained by suffix stitching
    uint64_t rows_reused = 0;       ///< VCT rows carried from the base index
    uint64_t rows_total = 0;        ///< VCT rows across this version's index
    uint64_t emergence_tables_carried = 0;  ///< emergence sweeps skipped
    uint64_t emergence_tables_stitched = 0;  ///< emergence sweeps band-only
    uint64_t cache_entries_carried = 0;  ///< memo entries seeded from the base
  };

  /// Builds a snapshot owning `graph` and an engine configured by
  /// `options` (options.pool etc. apply per snapshot).
  [[nodiscard]] static StatusOr<std::shared_ptr<const GraphSnapshot>> Create(
      TemporalGraph graph, uint64_t version,
      const QueryEngineOptions& options);

  /// Builds the successor of `base` for an applied update: when `base` has
  /// an admission index and `options` wants one, the successor's index is
  /// produced by the delta-aware PhcIndex::Rebuild (clean slices shared by
  /// pointer) and the successor's query cache is seeded with base's
  /// provably still-valid entries; otherwise this is Create plus
  /// bookkeeping. swap_stats() records what was reused.
  [[nodiscard]] static StatusOr<std::shared_ptr<const GraphSnapshot>>
  CreateSuccessor(
      const GraphSnapshot& base, GraphUpdate update, uint64_t version,
      const QueryEngineOptions& options);

  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  const TemporalGraph& graph() const { return graph_; }
  uint64_t version() const { return version_; }
  const SwapStats& swap_stats() const { return swap_stats_; }

  /// The snapshot's serving engine. Non-const on purpose: serving mutates
  /// internal caches/counters, all internally synchronized — logically the
  /// snapshot stays immutable, which is why this is callable on const.
  QueryEngine& engine() const { return *engine_; }

 private:
  GraphSnapshot() = default;

  /// Shared Create/CreateSuccessor body: builds the snapshot and engine,
  /// returning a still-mutable handle for post-build bookkeeping.
  static StatusOr<std::shared_ptr<GraphSnapshot>> CreateImpl(
      TemporalGraph graph, uint64_t version,
      const QueryEngineOptions& options);

  TemporalGraph graph_;
  uint64_t version_ = 0;
  SwapStats swap_stats_;
  /// optional<> only because QueryEngine is built after graph_ is in place
  /// (it keeps a pointer to it); engaged for the snapshot's whole life.
  mutable std::optional<QueryEngine> engine_;
};

/// Configuration of a LiveQueryEngine.
struct LiveEngineOptions {
  /// Per-snapshot engine configuration (algorithm, pool, cache, admission
  /// index, async queue bound). Applied to every rebuilt snapshot.
  QueryEngineOptions engine;

  /// Pool the updater's graph+index rebuilds fan out over. Deliberately
  /// NOT the serving pool: a rebuild sliced over the serving pool starves
  /// in-flight query batches for its whole duration (at 2 serving threads
  /// the one background worker is shared by the async dispatcher, batch
  /// leaders, and rebuild slices — during-update throughput collapsed to
  /// ~2% of idle). nullptr makes the live engine own a dedicated pool of
  /// update_pool_threads; a caller-provided pool must outlive the engine.
  ThreadPool* update_pool = nullptr;

  /// Size of the internally-owned update pool when update_pool is null; 0
  /// matches the serving pool's thread count capped at the hardware core
  /// count (extra rebuild threads past real cores would only oversubscribe
  /// the machine against serving).
  size_t update_pool_threads = 0;

  /// Bound of the update queue: at most this many ApplyUpdates batches
  /// wait for the updater thread; further calls block (backpressure).
  size_t update_queue_capacity = 64;

  /// Rebuild attempts per cycle before the coalesced batches fail (>= 1;
  /// values < 1 are clamped to 1). Only *transient* failures retry —
  /// Internal/IOError/Corruption/Timeout; a deterministic rejection like
  /// InvalidArgument fails the cycle immediately, every attempt would
  /// reproduce it.
  int max_rebuild_attempts = 3;

  /// Capped exponential backoff between attempts: the n-th retry waits
  /// roughly initial * 2^n ms (capped), scaled by a seeded jitter factor in
  /// [0.5, 1.0) so repeated failures don't beat in lockstep with anything.
  /// Shutdown interrupts the wait and fails the cycle with its last error.
  double retry_backoff_initial_ms = 1.0;
  double retry_backoff_max_ms = 100.0;
  uint64_t retry_jitter_seed = 0;
};

/// Monotone counters and last-event gauges for the live layer.
struct LiveStats {
  uint64_t swaps = 0;            ///< rebuild cycles swapped in
  uint64_t edges_applied = 0;    ///< update edges ingested across all swaps
  /// ApplyUpdates batches that failed — including batches dropped because
  /// the cycle they were coalesced into failed.
  uint64_t failed_updates = 0;
  double last_rebuild_seconds = 0;  ///< graph + index rebuild of last swap
  double last_swap_seconds = 0;     ///< pointer swap of last swap (~0)
  uint64_t last_delta_edges = 0;    ///< effective delta size of last swap
  UpdateStats update;               ///< delta-aware updater counters
};

/// A QueryEngine that stays correct while edges keep arriving: serves every
/// submission from a pinned immutable snapshot and applies updates by
/// building and atomically swapping in the successor snapshot.
class LiveQueryEngine {
 public:
  /// Stands up version 0 from `initial_graph` and starts the updater
  /// thread. The pool in options.engine (shared pool when null) must
  /// outlive the engine.
  [[nodiscard]] static StatusOr<std::unique_ptr<LiveQueryEngine>> Create(
      TemporalGraph initial_graph, const LiveEngineOptions& options = {});

  /// Runs Shutdown() (see below — in particular, destroying an engine
  /// whose pause gate is still held *releases* queued batches with
  /// FailedPrecondition rather than silently applying them or hanging the
  /// updater), then drains every live snapshot's async batches. Batches
  /// pinned to older snapshots may still be completing; their pins keep
  /// those snapshots (and their engines) alive independently of this
  /// object.
  ~LiveQueryEngine();

  LiveQueryEngine(const LiveQueryEngine&) = delete;
  LiveQueryEngine& operator=(const LiveQueryEngine&) = delete;

  /// Pins and returns the current snapshot (callers may hold it as long as
  /// they like; it stays valid and immutable past any number of swaps).
  std::shared_ptr<const GraphSnapshot> snapshot() const;

  /// Version of the current snapshot (0 = initial graph): the number of
  /// update batches applied so far.
  uint64_t version() const { return snapshot()->version(); }

  /// Serves synchronously on the calling thread against the pinned current
  /// snapshot; the result's snapshot_version records which one.
  BatchResult ServeBatch(const std::vector<Query>& queries);

  /// Deadline-bounded flavor (see QueryEngine::ServeBatch(queries,
  /// deadline) for the Timeout semantics).
  BatchResult ServeBatch(const std::vector<Query>& queries,
                         const Deadline& deadline);

  /// Async submission against the pinned current snapshot; the future's
  /// BatchResult carries the pinned version. See
  /// QueryEngine::SubmitAsync for queueing/backpressure semantics.
  std::future<BatchResult> SubmitAsync(std::vector<Query> queries);

  /// Deadline-carrying flavor: never blocks on a full request queue; the
  /// future always settles with served, Timeout, or ResourceExhausted
  /// outcomes (see QueryEngine::SubmitAsync(queries, deadline)).
  std::future<BatchResult> SubmitAsync(std::vector<Query> queries,
                                       const Deadline& deadline);

  /// Completion-queue flavor; the delivered result carries `tag` and the
  /// pinned version.
  void SubmitAsync(std::vector<Query> queries, BatchCompletionQueue* cq,
                   uint64_t tag);
  void SubmitAsync(std::vector<Query> queries, BatchCompletionQueue* cq,
                   uint64_t tag, const Deadline& deadline);

  /// Enqueues one batch of edges for ingestion. Returns immediately with a
  /// future that resolves once a snapshot containing this batch has been
  /// swapped in (Status::OK) or its rebuild cycle failed (the previous
  /// snapshot stays current; every batch of the failed cycle gets the
  /// error). Batches apply strictly in submission order; under swap
  /// pressure the updater coalesces all queued batches into one rebuild
  /// cycle. Queries keep completing against their pinned snapshots
  /// throughout. Blocks only when update_queue_capacity batches are
  /// already waiting.
  std::future<Status> ApplyUpdates(std::vector<RawTemporalEdge> edges);

  /// Holds the updater before its next rebuild cycle: ApplyUpdates batches
  /// keep queueing (up to the queue bound) and coalesce into a single
  /// cycle once ResumeUpdates is called. Operational control for planned
  /// ingest bursts — and the deterministic handle the coalescing tests
  /// drive. Idempotent.
  void PauseUpdates() TKC_EXCLUDES(pause_mu_);
  void ResumeUpdates() TKC_EXCLUDES(pause_mu_);

  /// Shuts the update path down and quiesces the async serving path: no
  /// further ApplyUpdates batches are accepted (they fail fast with
  /// FailedPrecondition), the updater thread finishes its current cycle,
  /// settles the queue, and joins. Batches already queued are applied as
  /// one final coalesced cycle — unless the pause gate is held, in which
  /// case every queued batch is *released with FailedPrecondition*
  /// instead: a held pause promised those batches "not yet", and shutting
  /// down turns that into "never". Either way every ApplyUpdates future
  /// resolves — nothing hangs on the dead updater. Finally runs
  /// DrainAsync() (see below), so Shutdown is safe to call while a network
  /// front end still holds completion queues: once it returns, no
  /// engine-side delivery will touch a caller-owned BatchCompletionQueue.
  /// Serving (ServeBatch / SubmitAsync / snapshot) stays available.
  /// Idempotent; the destructor calls it first.
  void Shutdown() TKC_EXCLUDES(pause_mu_, shutdown_mu_);

  /// Blocks until every async batch accepted so far — against the current
  /// snapshot *or any superseded one that is still alive* — has delivered
  /// its result (future settled, or BatchCompletionQueue::Deliver
  /// returned). The contract a server's teardown needs: after DrainAsync,
  /// destroying a completion queue the engine was delivering into cannot
  /// race a delivery. Does not block new submissions; callers wanting a
  /// true quiesce stop submitting first. Idempotent, callable repeatedly.
  void DrainAsync() TKC_EXCLUDES(snapshots_mu_);

  LiveStats stats() const TKC_EXCLUDES(stats_mu_);

  /// The delta-aware updater counters alone (== stats().update).
  UpdateStats update_stats() const TKC_EXCLUDES(stats_mu_);

  /// Current update-path health. Transitions: kDegraded on a cycle's first
  /// failed attempt, back to kHealthy when a cycle lands a snapshot,
  /// kUpdatesFailed when a cycle exhausts its retries (a later successful
  /// cycle restores kHealthy). A deterministic per-batch rejection
  /// (InvalidArgument input) does not change health — the machinery is
  /// fine, the input was not.
  HealthState health() const TKC_EXCLUDES(stats_mu_);

 private:
  struct UpdateRequest {
    std::vector<RawTemporalEdge> edges;
    std::shared_ptr<std::promise<Status>> done;
  };

  LiveQueryEngine(std::shared_ptr<const GraphSnapshot> initial,
                  const LiveEngineOptions& options);

  /// Updater thread body: pops update batches, coalesces whatever else is
  /// queued, rebuilds (with retry/backoff on transient failure), swaps.
  void UpdaterLoop() TKC_EXCLUDES(pause_mu_, stats_mu_, snapshots_mu_);

  /// One rebuild cycle's attempt loop: returns the final status, the built
  /// successor on success, and accounts retries/degradation/health.
  Status RebuildWithRetry(const std::shared_ptr<const GraphSnapshot>& base,
                          const std::vector<RawTemporalEdge>& edges,
                          uint64_t next_version,
                          std::shared_ptr<const GraphSnapshot>* next)
      TKC_EXCLUDES(pause_mu_, stats_mu_);

  void SetHealth(HealthState state) TKC_EXCLUDES(stats_mu_);

  LiveEngineOptions options_;
  /// options_.engine minus preloaded_index: a preloaded admission index
  /// matches only the initial graph, so rebuilt snapshots always build
  /// their own (still building one when preloading asked for one —
  /// incrementally, via PhcIndex::Rebuild, whenever the base snapshot has
  /// an index to rebuild from).
  QueryEngineOptions rebuild_engine_options_;

  /// The serving hot path's only shared word: snapshot() is a lock-free
  /// atomic load (readers never serialize against each other or the
  /// updater's swap), the updater's swap an atomic store. libstdc++ backs
  /// atomic<shared_ptr> with a small internal spinlock, but the critical
  /// section is a refcount bump — nanoseconds — against the old
  /// arrangement's mutex held across every pin.
  std::atomic<std::shared_ptr<const GraphSnapshot>> current_;
  /// Guards all_snapshots_ (bookkeeping only — never on the serve path).
  mutable Mutex snapshots_mu_;
  /// Every version ever swapped in that may still be alive, so the
  /// destructor can drain batches pinned to superseded snapshots (their
  /// completion-queue deliveries must finish before the caller tears the
  /// queue down). Expired entries are pruned on each swap.
  std::vector<std::weak_ptr<const GraphSnapshot>> all_snapshots_
      TKC_GUARDED_BY(snapshots_mu_);

  /// Internally-owned dedicated update pool (LiveEngineOptions::update_pool
  /// null); rebuild_engine_options_.index_build_pool points at it (or at
  /// the caller's update_pool) so PhcIndex::Rebuild never touches the
  /// serving pool.
  std::unique_ptr<ThreadPool> owned_update_pool_;

  mutable Mutex stats_mu_;
  LiveStats stats_ TKC_GUARDED_BY(stats_mu_);
  HealthState health_ TKC_GUARDED_BY(stats_mu_) = HealthState::kHealthy;
  /// Jitter stream of the retry backoff (updater thread only — written in
  /// the constructor before the thread starts, then touched exclusively by
  /// RebuildWithRetry on the updater thread; no lock to annotate).
  uint64_t jitter_stream_ = 0;

  /// Pause gate for the updater (PauseUpdates/ResumeUpdates); Shutdown
  /// forces it open so queued batches always settle — applied normally, or
  /// released with a failure status when shutdown caught the gate held
  /// (abandon_queued_).
  Mutex pause_mu_;
  CondVar pause_cv_;
  bool paused_ TKC_GUARDED_BY(pause_mu_) = false;
  bool pause_override_ TKC_GUARDED_BY(pause_mu_) = false;
  bool abandon_queued_ TKC_GUARDED_BY(pause_mu_) = false;
  /// Serializes Shutdown's join of the updater thread (Shutdown is
  /// idempotent AND safe to call concurrently). Never taken by the
  /// updater itself.
  Mutex shutdown_mu_;

  /// FIFO of pending update batches feeding the updater thread. The
  /// updater is a dedicated thread (not a pool task) so the rebuild's
  /// PhcIndex::Build/Rebuild genuinely fans out over the serving pool
  /// instead of degrading to an inline loop inside a pool worker.
  BoundedMpscQueue<UpdateRequest> update_queue_;
  /// Started in the constructor; joined exactly once, under shutdown_mu_
  /// (the guard is what makes concurrent Shutdown calls safe).
  std::thread updater_ TKC_GUARDED_BY(shutdown_mu_);
};

}  // namespace tkc

#endif  // TKC_SERVE_SNAPSHOT_H_
