#ifndef TKC_SERVE_SNAPSHOT_H_
#define TKC_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "graph/temporal_graph.h"
#include "serve/query_engine.h"
#include "util/mpsc_queue.h"
#include "util/status.h"

/// \file snapshot.h
/// Live updates for the serving layer: a versioned, immutable
/// (graph + engine) snapshot and a LiveQueryEngine that serves queries from
/// the current snapshot while rebuilding the next one off-thread.
///
/// Consistency model — *pinned snapshots, no torn reads*:
///
///  * A GraphSnapshot is immutable: the temporal graph, the PHC admission
///    index replicas, and the per-k emergence tables are all built once and
///    never mutated (the engine's cache/arena internals are mutable but
///    internally synchronized and invisible to results).
///  * Every submission — sync or async — *pins* the snapshot that is
///    current at submission time by holding its shared_ptr until the
///    batch's result is delivered. All queries of one batch therefore
///    answer against exactly one graph version, even if any number of
///    swaps land while the batch is in flight.
///  * ApplyUpdates never blocks serving: a dedicated updater thread builds
///    the successor snapshot (graph rebuild + parallel PhcIndex::Build on
///    the serving pool) off to the side and then swaps one shared_ptr
///    under a micro-lock. Old snapshots die when their last pinned batch
///    completes.
///  * Update batches are applied strictly FIFO (a bounded MPSC queue feeds
///    the updater thread), so versions advance 1, 2, 3, ... and version N
///    is exactly the initial graph plus update batches 1..N — the property
///    the differential harness replays against.

namespace tkc {

/// One immutable graph version with its serving engine. Always heap-owned
/// via shared_ptr (Create returns one) so in-flight batches can pin it past
/// a swap; never copied or moved (the engine holds a pointer to the graph).
class GraphSnapshot {
 public:
  /// Builds a snapshot owning `graph` and an engine configured by
  /// `options` (options.pool etc. apply per snapshot).
  static StatusOr<std::shared_ptr<const GraphSnapshot>> Create(
      TemporalGraph graph, uint64_t version,
      const QueryEngineOptions& options);

  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  const TemporalGraph& graph() const { return graph_; }
  uint64_t version() const { return version_; }

  /// The snapshot's serving engine. Non-const on purpose: serving mutates
  /// internal caches/counters, all internally synchronized — logically the
  /// snapshot stays immutable, which is why this is callable on const.
  QueryEngine& engine() const { return *engine_; }

 private:
  GraphSnapshot() = default;

  TemporalGraph graph_;
  uint64_t version_ = 0;
  /// optional<> only because QueryEngine is built after graph_ is in place
  /// (it keeps a pointer to it); engaged for the snapshot's whole life.
  mutable std::optional<QueryEngine> engine_;
};

/// Configuration of a LiveQueryEngine.
struct LiveEngineOptions {
  /// Per-snapshot engine configuration (algorithm, pool, cache, admission
  /// index, async queue bound). Applied to every rebuilt snapshot.
  QueryEngineOptions engine;

  /// Bound of the update queue: at most this many ApplyUpdates batches
  /// wait for the updater thread; further calls block (backpressure).
  size_t update_queue_capacity = 64;
};

/// Monotone counters and last-event gauges for the live layer.
struct LiveStats {
  uint64_t swaps = 0;            ///< snapshots swapped in
  uint64_t edges_applied = 0;    ///< update edges ingested across all swaps
  uint64_t failed_updates = 0;   ///< ApplyUpdates batches that failed
  double last_rebuild_seconds = 0;  ///< graph + index rebuild of last swap
  double last_swap_seconds = 0;     ///< pointer swap of last swap (~0)
};

/// A QueryEngine that stays correct while edges keep arriving: serves every
/// submission from a pinned immutable snapshot and applies updates by
/// building and atomically swapping in the successor snapshot.
class LiveQueryEngine {
 public:
  /// Stands up version 0 from `initial_graph` and starts the updater
  /// thread. The pool in options.engine (shared pool when null) must
  /// outlive the engine.
  static StatusOr<std::unique_ptr<LiveQueryEngine>> Create(
      TemporalGraph initial_graph, const LiveEngineOptions& options = {});

  /// Stops accepting updates, finishes queued rebuilds, joins the updater
  /// thread, and drains the current snapshot's async batches. Batches
  /// pinned to older snapshots may still be completing; their pins keep
  /// those snapshots (and their engines) alive independently of this
  /// object.
  ~LiveQueryEngine();

  LiveQueryEngine(const LiveQueryEngine&) = delete;
  LiveQueryEngine& operator=(const LiveQueryEngine&) = delete;

  /// Pins and returns the current snapshot (callers may hold it as long as
  /// they like; it stays valid and immutable past any number of swaps).
  std::shared_ptr<const GraphSnapshot> snapshot() const;

  /// Version of the current snapshot (0 = initial graph).
  uint64_t version() const { return snapshot()->version(); }

  /// Serves synchronously on the calling thread against the pinned current
  /// snapshot; the result's snapshot_version records which one.
  BatchResult ServeBatch(const std::vector<Query>& queries);

  /// Async submission against the pinned current snapshot; the future's
  /// BatchResult carries the pinned version. See
  /// QueryEngine::SubmitAsync for queueing/backpressure semantics.
  std::future<BatchResult> SubmitAsync(std::vector<Query> queries);

  /// Completion-queue flavor; the delivered result carries `tag` and the
  /// pinned version.
  void SubmitAsync(std::vector<Query> queries, BatchCompletionQueue* cq,
                   uint64_t tag);

  /// Enqueues one batch of edges for ingestion. Returns immediately with a
  /// future that resolves once the rebuilt snapshot has been swapped in
  /// (Status::OK) or the rebuild failed (the previous snapshot stays
  /// current). Batches apply strictly in submission order; queries keep
  /// completing against their pinned snapshots throughout. Blocks only
  /// when update_queue_capacity batches are already waiting.
  std::future<Status> ApplyUpdates(std::vector<RawTemporalEdge> edges);

  LiveStats stats() const;

 private:
  struct UpdateRequest {
    std::vector<RawTemporalEdge> edges;
    std::shared_ptr<std::promise<Status>> done;
  };

  LiveQueryEngine(std::shared_ptr<const GraphSnapshot> initial,
                  const LiveEngineOptions& options);

  /// Updater thread body: pops update batches, rebuilds, swaps.
  void UpdaterLoop();

  LiveEngineOptions options_;
  /// options_.engine minus preloaded_index: a preloaded admission index
  /// matches only the initial graph, so rebuilt snapshots always build
  /// their own (still building one when preloading asked for one).
  QueryEngineOptions rebuild_engine_options_;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const GraphSnapshot> current_;
  /// Every version ever swapped in that may still be alive, so the
  /// destructor can drain batches pinned to superseded snapshots (their
  /// completion-queue deliveries must finish before the caller tears the
  /// queue down). Expired entries are pruned on each swap.
  std::vector<std::weak_ptr<const GraphSnapshot>> all_snapshots_;
  uint64_t next_version_ = 1;

  mutable std::mutex stats_mu_;
  LiveStats stats_;

  /// FIFO of pending update batches feeding the updater thread. The
  /// updater is a dedicated thread (not a pool task) so the rebuild's
  /// PhcIndex::Build genuinely fans out over the serving pool instead of
  /// degrading to an inline loop inside a pool worker.
  BoundedMpscQueue<UpdateRequest> update_queue_;
  std::thread updater_;
};

}  // namespace tkc

#endif  // TKC_SERVE_SNAPSHOT_H_
