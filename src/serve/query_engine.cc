#include "serve/query_engine.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>

#include "vct/vct_builder.h"

namespace tkc {

namespace {

/// True iff the algorithm's hot path runs the efficient VCT builder and
/// therefore profits from a recycled arena.
bool UsesBuildArena(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kCoreTime:
    case AlgorithmKind::kEnumBase:
    case AlgorithmKind::kEnum:
      return true;
    case AlgorithmKind::kOtcd:
    case AlgorithmKind::kNaive:
      return false;
  }
  return false;
}

/// min over u of CT_ts(u) for every start ts of the slice's range: the
/// earliest end time at which a k-core exists for that start. Computed with
/// one multiset sweep over the breakpoints; each vertex's core-time function
/// is non-decreasing in ts, so the result is too.
std::vector<Timestamp> ComputeEmergence(const VertexCoreTimeIndex& slice) {
  const Window range = slice.range();
  const size_t span = static_cast<size_t>(range.Length());
  std::vector<Timestamp> emergence(span, kInfTime);
  if (span == 0) return emergence;

  // Bucket every breakpoint by its start time, remembering the value it
  // replaces. kInfTime doubles as the "no previous value" sentinel: an
  // entry's previous value can never genuinely be kInfTime, because a
  // vertex's core times are non-decreasing, so an infinite entry is always
  // its last.
  constexpr Timestamp kNoPrev = kInfTime;
  std::vector<std::vector<std::pair<Timestamp, Timestamp>>> buckets(span);
  for (VertexId u = 0; u < slice.num_vertices(); ++u) {
    Timestamp prev = kNoPrev;
    for (const VctEntry& e : slice.EntriesOf(u)) {
      buckets[e.start - range.start].emplace_back(prev, e.core_time);
      prev = e.core_time;
    }
  }

  std::multiset<Timestamp> live;
  for (size_t rel = 0; rel < span; ++rel) {
    for (const auto& [old_value, new_value] : buckets[rel]) {
      if (old_value != kNoPrev) {
        auto it = live.find(old_value);
        if (it != live.end()) live.erase(it);
      }
      live.insert(new_value);
    }
    emergence[rel] = live.empty() ? kInfTime : *live.begin();
  }
  return emergence;
}

}  // namespace

// Checks an arena out of the engine's free list for the duration of one
// query execution. Allocates a fresh arena only when every pooled one is in
// flight, so the list grows to the peak concurrency and then serving reuses
// scratch forever.
class QueryEngine::ArenaLease {
 public:
  ArenaLease(QueryEngine* engine, bool wanted) : engine_(engine) {
    if (!wanted) return;
    std::lock_guard<std::mutex> lock(*engine_->mu_);
    if (!engine_->free_arenas_.empty()) {
      arena_ = std::move(engine_->free_arenas_.back());
      engine_->free_arenas_.pop_back();
    } else {
      arena_ = std::make_unique<VctBuildArena>();
    }
  }

  ~ArenaLease() {
    if (arena_ == nullptr) return;
    std::lock_guard<std::mutex> lock(*engine_->mu_);
    engine_->free_arenas_.push_back(std::move(arena_));
  }

  VctBuildArena* get() const { return arena_.get(); }

 private:
  QueryEngine* engine_;
  std::unique_ptr<VctBuildArena> arena_;
};

QueryEngine::QueryEngine(const TemporalGraph& g,
                         const QueryEngineOptions& options)
    : graph_(&g),
      options_(options),
      pool_(options.pool != nullptr ? options.pool : &ThreadPool::Shared()),
      replica_rr_(std::make_unique<std::atomic<uint64_t>>(0)),
      mu_(std::make_unique<std::mutex>()),
      cache_(std::make_unique<QueryCache>(options.cache_capacity)) {}

QueryEngine::~QueryEngine() = default;
QueryEngine::QueryEngine(QueryEngine&&) noexcept = default;
QueryEngine& QueryEngine::operator=(QueryEngine&&) noexcept = default;

StatusOr<QueryEngine> QueryEngine::Create(const TemporalGraph& g,
                                          const QueryEngineOptions& options) {
  if (options.num_index_replicas < 1) {
    return Status::InvalidArgument("num_index_replicas must be >= 1");
  }
  QueryEngine engine(g, options);
  if (options.build_index && g.num_timestamps() > 0) {
    Status s = engine.BuildAdmissionIndex();
    if (!s.ok()) return s;
  }
  return engine;
}

Status QueryEngine::BuildAdmissionIndex() {
  PhcBuildOptions build;
  build.max_k = options_.index_max_k;
  build.pool = pool_;
  auto index = PhcIndex::Build(*graph_, graph_->FullRange(), build);
  if (!index.ok()) return index.status();
  // Complete when uncapped, or when the cap was never reached (the span's
  // kmax is below it) — only then does "k > max_k" prove global emptiness.
  index_complete_ = options_.index_max_k == 0 ||
                    index->max_k() < options_.index_max_k;
  emergence_.reserve(index->max_k());
  for (uint32_t k = 1; k <= index->max_k(); ++k) {
    emergence_.push_back(ComputeEmergence(index->Slice(k)));
  }
  replicas_.reserve(options_.num_index_replicas);
  for (int r = 1; r < options_.num_index_replicas; ++r) {
    replicas_.push_back(*index);  // independent copy per read-path replica
  }
  replicas_.push_back(std::move(index).value());
  return Status::OK();
}

const PhcIndex* QueryEngine::index(int replica) const {
  if (replica < 0 || replica >= static_cast<int>(replicas_.size())) {
    return nullptr;
  }
  return &replicas_[replica];
}

bool QueryEngine::MayContainCore(uint32_t k, Window range) const {
  if (replicas_.empty() || k < 1) return true;
  if (!range.Valid() || range.end > graph_->num_timestamps()) return true;
  const uint32_t built_max_k = replicas_[0].max_k();
  if (k > built_max_k) {
    // Beyond every built slice: provably empty only for a complete index.
    return !index_complete_;
  }
  const std::vector<Timestamp>& table = emergence_[k - 1];
  return table[range.start - 1] <= range.end;
}

bool QueryEngine::VertexInCore(VertexId u, Window window, uint32_t k) const {
  if (replicas_.empty()) return false;
  const uint64_t slot =
      replica_rr_->fetch_add(1, std::memory_order_relaxed);
  const PhcIndex& replica = replicas_[slot % replicas_.size()];
  return replica.VertexInCore(u, window, k);
}

RunOutcome QueryEngine::ServeOne(const Query& query, double limit_seconds) {
  RunOutcome out;
  if (cache_->capacity() > 0) {
    std::lock_guard<std::mutex> lock(*mu_);
    if (cache_->Lookup(query, &out)) {
      ++stats_.queries_served;
      return out;
    }
  }
  return ExecuteUncached(query, limit_seconds);
}

RunOutcome QueryEngine::ExecuteUncached(const Query& query,
                                        double limit_seconds) {
  RunOutcome out;

  // Admission: a structurally valid in-span query whose range provably
  // contains no k-core gets the pipeline's exact empty outcome for free.
  const bool in_span = query.k >= 1 && query.range.Valid() &&
                       query.range.end <= graph_->num_timestamps();
  if (in_span && !MayContainCore(query.k, query.range)) {
    out = RunOutcome{};
    out.status = Status::OK();
    std::lock_guard<std::mutex> lock(*mu_);
    ++stats_.queries_served;
    ++stats_.index_rejections;
    cache_->Insert(query, out);
    return out;
  }

  Deadline deadline = limit_seconds > 0
                          ? Deadline::AfterSeconds(limit_seconds)
                          : Deadline();
  ArenaLease lease(this, options_.reuse_arenas &&
                             UsesBuildArena(options_.algorithm));
  out = RunAlgorithm(options_.algorithm, *graph_, query, deadline,
                     lease.get());
  {
    std::lock_guard<std::mutex> lock(*mu_);
    ++stats_.queries_served;
    ++stats_.executed;
    if (out.status.ok()) cache_->Insert(query, out);
  }
  return out;
}

RunOutcome QueryEngine::Serve(const Query& query) {
  return Serve(query, options_.per_query_limit_seconds);
}

RunOutcome QueryEngine::Serve(const Query& query,
                              double per_query_limit_seconds) {
  {
    std::lock_guard<std::mutex> lock(*mu_);
    ++stats_.batches;
  }
  return ServeOne(query, per_query_limit_seconds);
}

std::vector<RunOutcome> QueryEngine::ServeBatch(
    const std::vector<Query>& queries) {
  return ServeBatch(queries, options_.per_query_limit_seconds);
}

std::vector<RunOutcome> QueryEngine::ServeBatch(
    const std::vector<Query>& queries, double per_query_limit_seconds) {
  const size_t n = queries.size();
  std::vector<RunOutcome> outcomes(n);

  // Pre-scan under one lock: answer cache hits inline (no fan-out cost for
  // hit-heavy workloads) and group the misses by (k, range) so each
  // distinct query executes at most once per batch (dedup_batches).
  std::vector<size_t> leaders;  // first index of each distinct miss
  std::vector<std::vector<size_t>> followers;  // duplicates of each leader
  {
    std::unordered_map<QueryCacheKey, size_t, QueryCacheKeyHasher> group_of;
    std::lock_guard<std::mutex> lock(*mu_);
    ++stats_.batches;
    for (size_t i = 0; i < n; ++i) {
      if (cache_->capacity() > 0 && cache_->Lookup(queries[i], &outcomes[i])) {
        ++stats_.queries_served;
        continue;
      }
      if (options_.dedup_batches) {
        const QueryCacheKey key{queries[i].k, queries[i].range};
        auto [it, inserted] = group_of.try_emplace(key, leaders.size());
        if (!inserted) {
          followers[it->second].push_back(i);
          continue;
        }
      }
      leaders.push_back(i);
      followers.emplace_back();
    }
  }

  // Execute the distinct misses, sharded over the pool.
  auto run_leader = [&](size_t g) {
    outcomes[leaders[g]] =
        ExecuteUncached(queries[leaders[g]], per_query_limit_seconds);
  };
  if (pool_->num_threads() > 1 && leaders.size() > 1) {
    pool_->ParallelFor(leaders.size(),
                       [&](size_t g, int /*worker*/) { run_leader(g); });
  } else {
    for (size_t g = 0; g < leaders.size(); ++g) run_leader(g);
  }

  // Fan each leader's outcome out to its in-batch duplicates.
  bool any_followers = false;
  for (size_t g = 0; g < leaders.size(); ++g) {
    for (size_t i : followers[g]) {
      outcomes[i] = outcomes[leaders[g]];
      any_followers = true;
    }
  }
  if (any_followers) {
    std::lock_guard<std::mutex> lock(*mu_);
    for (size_t g = 0; g < leaders.size(); ++g) {
      stats_.batch_dedup_hits += followers[g].size();
      stats_.queries_served += followers[g].size();
    }
  }
  return outcomes;
}

ServeStats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(*mu_);
  ServeStats snapshot = stats_;
  snapshot.cache_hits = cache_->hits();
  snapshot.cache_misses = cache_->misses();
  snapshot.cache_evictions = cache_->evictions();
  return snapshot;
}

void QueryEngine::ClearCache() {
  std::lock_guard<std::mutex> lock(*mu_);
  cache_->Clear();
}

}  // namespace tkc
