#include "serve/query_engine.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>

#include "util/fault_injection.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "vct/vct_builder.h"

namespace tkc {

namespace {

/// True iff the algorithm's hot path runs the efficient VCT builder and
/// therefore profits from a recycled arena.
bool UsesBuildArena(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kCoreTime:
    case AlgorithmKind::kEnumBase:
    case AlgorithmKind::kEnum:
      return true;
    case AlgorithmKind::kOtcd:
    case AlgorithmKind::kNaive:
      return false;
  }
  return false;
}

/// min over u of CT_ts(u) for every start ts of the slice's range: the
/// earliest end time at which a k-core exists for that start. Computed with
/// one multiset sweep over the breakpoints; each vertex's core-time function
/// is non-decreasing in ts, so the result is too.
std::vector<Timestamp> ComputeEmergence(const VertexCoreTimeIndex& slice) {
  const Window range = slice.range();
  const size_t span = static_cast<size_t>(range.Length());
  std::vector<Timestamp> emergence(span, kInfTime);
  if (span == 0) return emergence;

  // Bucket every breakpoint by its start time, remembering the value it
  // replaces. kInfTime doubles as the "no previous value" sentinel: an
  // entry's previous value can never genuinely be kInfTime, because a
  // vertex's core times are non-decreasing, so an infinite entry is always
  // its last.
  constexpr Timestamp kNoPrev = kInfTime;
  std::vector<std::vector<std::pair<Timestamp, Timestamp>>> buckets(span);
  for (VertexId u = 0; u < slice.num_vertices(); ++u) {
    Timestamp prev = kNoPrev;
    for (const VctEntry& e : slice.EntriesOf(u)) {
      buckets[e.start - range.start].emplace_back(prev, e.core_time);
      prev = e.core_time;
    }
  }

  std::multiset<Timestamp> live;
  for (size_t rel = 0; rel < span; ++rel) {
    for (const auto& [old_value, new_value] : buckets[rel]) {
      if (old_value != kNoPrev) {
        auto it = live.find(old_value);
        if (it != live.end()) live.erase(it);
      }
      live.insert(new_value);
    }
    emergence[rel] = live.empty() ? kInfTime : *live.begin();
  }
  return emergence;
}

/// Recomputes emergence[rel] for starts in [first, last] from `slice`,
/// leaving every entry outside the band untouched: the incremental
/// maintenance path for suffix-stitched slices, where the stitch contract
/// guarantees all per-(vertex, start) values outside the band carried over
/// unchanged — and a table entry is a pure min over those values. Same
/// multiset sweep as ComputeEmergence, seeded with each vertex's covering
/// value at `first` and fed only the breakpoints inside the band.
void RecomputeEmergenceBand(const VertexCoreTimeIndex& slice, Timestamp first,
                            Timestamp last, std::vector<Timestamp>* table) {
  const Window range = slice.range();
  const size_t lo = static_cast<size_t>(first - range.start);
  const size_t band = static_cast<size_t>(last - first) + 1;
  constexpr Timestamp kNoPrev = kInfTime;
  std::vector<std::vector<std::pair<Timestamp, Timestamp>>> buckets(band);
  std::multiset<Timestamp> live;
  for (VertexId u = 0; u < slice.num_vertices(); ++u) {
    const std::span<const VctEntry> rows = slice.EntriesOf(u);
    // The entry covering `first` (last one with start <= first) seeds the
    // sweep; later breakpoints inside the band replace it as usual.
    auto it = std::upper_bound(
        rows.begin(), rows.end(), first,
        [](Timestamp t, const VctEntry& e) { return t < e.start; });
    Timestamp prev = kNoPrev;
    if (it != rows.begin()) prev = std::prev(it)->core_time;
    if (prev != kNoPrev) live.insert(prev);
    for (; it != rows.end() && it->start <= last; ++it) {
      buckets[it->start - first].emplace_back(prev, it->core_time);
      prev = it->core_time;
    }
  }
  for (size_t rel = 0; rel < band; ++rel) {
    for (const auto& [old_value, new_value] : buckets[rel]) {
      if (old_value != kNoPrev) {
        auto it = live.find(old_value);
        if (it != live.end()) live.erase(it);
      }
      live.insert(new_value);
    }
    (*table)[lo + rel] = live.empty() ? kInfTime : *live.begin();
  }
}

}  // namespace

/// Relaxed-atomic counters behind ServeStats: every hot-path bump is a
/// lock-free fetch_add; stats() materializes the plain struct. Cache
/// hit/miss/eviction counts live in the striped cache itself.
struct QueryEngine::AtomicServeStats {
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> queries_served{0};
  std::atomic<uint64_t> index_rejections{0};
  std::atomic<uint64_t> batch_dedup_hits{0};
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> async_batches{0};
  std::atomic<uint64_t> batches_shed{0};
  std::atomic<uint64_t> deadlines_expired{0};
};

namespace {

/// All ServeStats counters are independent monotone event counts; relaxed
/// ordering is enough for each to read as a consistent prefix.
inline void Bump(std::atomic<uint64_t>& counter, uint64_t n = 1) {
  counter.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

/// The arena free list and the mutex guarding it, heap-allocated as one
/// object so the mutex address survives engine moves and the analysis sees
/// a single `pool->mu` / `pool->free_list` guard relation.
struct QueryEngine::ArenaPool {
  Mutex mu;
  std::vector<std::unique_ptr<VctBuildArena>> free_list TKC_GUARDED_BY(mu);
};

// Checks an arena out of the engine's free list for the duration of one
// query execution. Allocates a fresh arena only when every pooled one is in
// flight, so the list grows to the peak concurrency and then serving reuses
// scratch forever.
class QueryEngine::ArenaLease {
 public:
  ArenaLease(QueryEngine* engine, bool wanted) : pool_(engine->arenas_.get()) {
    if (!wanted) return;
    MutexLock lock(pool_->mu);
    if (!pool_->free_list.empty()) {
      arena_ = std::move(pool_->free_list.back());
      pool_->free_list.pop_back();
    } else {
      arena_ = std::make_unique<VctBuildArena>();
    }
  }

  ~ArenaLease() {
    if (arena_ == nullptr) return;
    MutexLock lock(pool_->mu);
    pool_->free_list.push_back(std::move(arena_));
  }

  VctBuildArena* get() const { return arena_.get(); }

 private:
  ArenaPool* pool_;
  std::unique_ptr<VctBuildArena> arena_;
};

/// One queued async submission: the batch, its deadline, and the
/// exactly-once completion callback.
struct QueryEngine::AsyncBatch {
  std::vector<Query> queries;
  double limit = 0;
  Deadline deadline;  ///< unlimited unless the submission carried one
  std::function<void(BatchResult&&)> done;
  /// Keeps the engine's owner (e.g. the pinned GraphSnapshot) alive while
  /// any task of this batch may still touch the engine.
  std::shared_ptr<const void> lifetime;
};

/// Shared in-flight state of one dispatched batch: leader tasks write
/// disjoint outcome slots and the last to finish finalizes.
struct QueryEngine::AsyncBatchState {
  std::vector<Query> queries;
  double limit = 0;
  Deadline deadline;
  std::function<void(BatchResult&&)> done;
  std::shared_ptr<const void> lifetime;
  std::vector<RunOutcome> outcomes;
  BatchPlan plan;
  std::atomic<size_t> remaining{0};
};

/// Request queue + dispatcher occupancy + drain bookkeeping. `inflight`
/// counts accepted-but-unfinished batches plus a ticket for the running
/// dispatcher task, so DrainAsync returning guarantees no task still
/// touches the engine.
struct QueryEngine::AsyncState {
  explicit AsyncState(size_t capacity) : queue(capacity) {}

  BoundedMpscQueue<AsyncBatch> queue;
  std::atomic<bool> dispatcher_scheduled{false};
  Mutex mu;
  CondVar drained;
  uint64_t inflight TKC_GUARDED_BY(mu) = 0;
};

QueryEngine::QueryEngine(const TemporalGraph& g,
                         const QueryEngineOptions& options)
    : graph_(&g),
      options_(options),
      pool_(options.pool != nullptr ? options.pool : &ThreadPool::Shared()),
      replica_rr_(std::make_unique<std::atomic<uint64_t>>(0)),
      cache_(std::make_unique<StripedQueryCache>(
          options.cache_capacity, options.cache_stripes > 0
                                      ? options.cache_stripes
                                      : StripedQueryCache::kDefaultStripes)),
      arenas_(std::make_unique<ArenaPool>()),
      stats_(std::make_unique<AtomicServeStats>()),
      async_(std::make_unique<AsyncState>(options.async_queue_capacity)) {}

QueryEngine::~QueryEngine() {
  // A moved-from or inert (StatusOr slot) engine has no async state.
  if (async_ != nullptr) DrainAsync();
}
QueryEngine::QueryEngine(QueryEngine&&) noexcept = default;
QueryEngine& QueryEngine::operator=(QueryEngine&&) noexcept = default;

StatusOr<QueryEngine> QueryEngine::Create(const TemporalGraph& g,
                                          const QueryEngineOptions& options) {
  if (options.num_index_replicas < 1) {
    return Status::InvalidArgument("num_index_replicas must be >= 1");
  }
  QueryEngine engine(g, options);
  const bool want_index = options.build_index ||
                          options.preloaded_index != nullptr;
  if (want_index && g.num_timestamps() > 0) {
    Status s = engine.BuildAdmissionIndex();
    if (!s.ok()) return s;
  }
  return engine;
}

Status QueryEngine::BuildAdmissionIndex() {
  if (options_.preloaded_index != nullptr) {
    const PhcIndex& pre = *options_.preloaded_index;
    if (pre.range() != graph_->FullRange()) {
      return Status::InvalidArgument(
          "preloaded index does not cover the graph's full range");
    }
    // A graph always has edges, so a genuinely matching index always has
    // a k=1 slice; max_k == 0 means the file describes something else
    // (and would otherwise make every query "provably" empty).
    if (pre.max_k() < 1) {
      return Status::InvalidArgument(
          "preloaded index has no slices for this graph");
    }
    if (pre.Slice(1).num_vertices() != graph_->num_vertices()) {
      return Status::InvalidArgument(
          "preloaded index was built for a different vertex count");
    }
    index_complete_ = pre.complete();
    InstallAdmissionIndex(pre);  // copy; caller keeps ownership
    return Status::OK();
  }
  PhcBuildOptions build;
  build.max_k = options_.index_max_k;
  build.pool =
      options_.index_build_pool != nullptr ? options_.index_build_pool : pool_;
  auto index = PhcIndex::Build(*graph_, graph_->FullRange(), build);
  if (!index.ok()) return index.status();
  // Only a complete index proves "k > max_k" globally empty.
  index_complete_ = index->complete();
  InstallAdmissionIndex(std::move(index).value());
  return Status::OK();
}

void QueryEngine::InstallAdmissionIndex(PhcIndex index) {
  // Emergence-table carry-over: a table is a pure function of its slice,
  // so a slice shared (by pointer) with the source engine's index has an
  // identical table — copy it instead of paying the emergence sweep. The
  // live-update layer wires the predecessor snapshot's engine in here so
  // every slice PhcIndex::Rebuild reused skips its sweep too.
  const QueryEngine* source = options_.emergence_source;
  const PhcIndex* source_index =
      source != nullptr && !source->replicas_.empty() ? &source->replicas_[0]
                                                      : nullptr;
  // Suffix-stitched slices get the incremental path: copy the source's
  // table and re-sweep only the recomputed band. Everything outside the
  // band is provably unchanged (the stitch carried those values), so the
  // result is bit-identical to a full sweep — the differential harness
  // proves every table against a from-scratch computation.
  auto band_of = [&](uint32_t k) -> const PhcRebuildStats::SuffixBand* {
    if (options_.emergence_bands == nullptr) return nullptr;
    for (const PhcRebuildStats::SuffixBand& band : *options_.emergence_bands) {
      if (band.k == k) return &band;
    }
    return nullptr;
  };
  const size_t span = static_cast<size_t>(index.range().Length());
  emergence_.reserve(index.max_k());
  for (uint32_t k = 1; k <= index.max_k(); ++k) {
    const PhcRebuildStats::SuffixBand* band = band_of(k);
    if (source_index != nullptr && k <= source_index->max_k() &&
        source_index->SliceShared(k) == index.SliceShared(k)) {
      emergence_.push_back(source->emergence_[k - 1]);
      ++emergence_tables_carried_;
    } else if (band != nullptr && source_index != nullptr &&
               k <= source_index->max_k() &&
               source_index->range() == index.range() &&
               source->emergence_[k - 1].size() == span) {
      std::vector<Timestamp> table = source->emergence_[k - 1];
      RecomputeEmergenceBand(index.Slice(k), band->first_dirty,
                             band->last_dirty, &table);
      emergence_.push_back(std::move(table));
      ++emergence_tables_stitched_;
    } else {
      emergence_.push_back(ComputeEmergence(index.Slice(k)));
    }
  }
  options_.emergence_source = nullptr;  // never read again; do not dangle
  options_.emergence_bands = nullptr;
  replicas_.reserve(options_.num_index_replicas);
  for (int r = 1; r < options_.num_index_replicas; ++r) {
    // Shallow copies: replicas alias the shared slice storage (see the
    // num_index_replicas option comment).
    replicas_.push_back(index);
  }
  replicas_.push_back(std::move(index));
}

const PhcIndex* QueryEngine::index(int replica) const {
  if (replica < 0 || replica >= static_cast<int>(replicas_.size())) {
    return nullptr;
  }
  return &replicas_[replica];
}

bool QueryEngine::MayContainCore(uint32_t k, Window range) const {
  if (replicas_.empty() || k < 1) return true;
  if (!range.Valid() || range.end > graph_->num_timestamps()) return true;
  const uint32_t built_max_k = replicas_[0].max_k();
  if (k > built_max_k) {
    // Beyond every built slice: provably empty only for a complete index.
    return !index_complete_;
  }
  const std::vector<Timestamp>& table = emergence_[k - 1];
  return table[range.start - 1] <= range.end;
}

std::span<const Timestamp> QueryEngine::EmergenceTable(uint32_t k) const {
  if (k < 1 || k > emergence_.size()) return {};
  return emergence_[k - 1];
}

std::vector<Timestamp> QueryEngine::ComputeEmergenceTable(
    const VertexCoreTimeIndex& slice) {
  return ComputeEmergence(slice);
}

bool QueryEngine::VertexInCore(VertexId u, Window window, uint32_t k) const {
  if (replicas_.empty()) return false;
  // Relaxed: the round-robin only spreads load; any interleaving of slot
  // numbers is correct (replicas are identical read-only state).
  const uint64_t slot =
      replica_rr_->fetch_add(1, std::memory_order_relaxed);
  const PhcIndex& replica = replicas_[slot % replicas_.size()];
  return replica.VertexInCore(u, window, k);
}

RunOutcome QueryEngine::ServeOne(const Query& query, double limit_seconds,
                                 const Deadline& deadline) {
  RunOutcome out;
  // Expiry precedes the cache: a dead deadline must not even pay (or be
  // masked by) a lookup — the caller asked for an answer by a time that has
  // already passed, and Timeout is that answer on every path.
  if (deadline.Expired()) {
    out.status = Status::Timeout("deadline expired before serving");
    Bump(stats_->queries_served);
    return out;
  }
  if (cache_->enabled() && cache_->Lookup(query, &out)) {
    Bump(stats_->queries_served);
    return out;
  }
  return ExecuteUncached(query, limit_seconds, deadline);
}

RunOutcome QueryEngine::ExecuteUncached(const Query& query,
                                        double limit_seconds,
                                        const Deadline& batch_deadline) {
  RunOutcome out;
  if (batch_deadline.Expired()) {
    out.status = Status::Timeout("batch deadline expired");
    Bump(stats_->queries_served);
    return out;
  }

  // Admission: a structurally valid in-span query whose range provably
  // contains no k-core gets the pipeline's exact empty outcome for free.
  const bool in_span = query.k >= 1 && query.range.Valid() &&
                       query.range.end <= graph_->num_timestamps();
  if (in_span && !MayContainCore(query.k, query.range)) {
    out = RunOutcome{};
    out.status = Status::OK();
    Bump(stats_->queries_served);
    Bump(stats_->index_rejections);
    // Provable emptiness is remembered as a tombstone: 1/16th of a full
    // LRU slot, replayed as this exact outcome on a hit.
    cache_->InsertTombstone(query);
    return out;
  }

  Deadline deadline =
      limit_seconds > 0
          ? Deadline::Earlier(Deadline::AfterSeconds(limit_seconds),
                              batch_deadline)
          : batch_deadline;
  ArenaLease lease(this, options_.reuse_arenas &&
                             UsesBuildArena(options_.algorithm));
  out = RunAlgorithm(options_.algorithm, *graph_, query, deadline,
                     lease.get());
  Bump(stats_->queries_served);
  Bump(stats_->executed);
  if (out.status.ok()) cache_->Insert(query, out);
  return out;
}

RunOutcome QueryEngine::Serve(const Query& query) {
  return Serve(query, options_.per_query_limit_seconds);
}

RunOutcome QueryEngine::Serve(const Query& query,
                              double per_query_limit_seconds) {
  Bump(stats_->batches);
  return ServeOne(query, per_query_limit_seconds);
}

RunOutcome QueryEngine::ServeWithDeadline(const Query& query,
                                          const Deadline& deadline) {
  Bump(stats_->batches);
  if (deadline.Expired()) Bump(stats_->deadlines_expired);
  return ServeOne(query, options_.per_query_limit_seconds, deadline);
}

std::vector<RunOutcome> QueryEngine::ServeBatch(
    const std::vector<Query>& queries) {
  return ServeBatch(queries, options_.per_query_limit_seconds);
}

std::vector<RunOutcome> QueryEngine::ServeBatch(
    const std::vector<Query>& queries, const Deadline& deadline) {
  if (deadline.Expired()) {
    Bump(stats_->batches);
    Bump(stats_->deadlines_expired);
    Bump(stats_->queries_served, queries.size());
    std::vector<RunOutcome> outcomes(queries.size());
    for (RunOutcome& out : outcomes) {
      out.status = Status::Timeout("batch deadline expired");
    }
    return outcomes;
  }

  std::vector<RunOutcome> outcomes(queries.size());
  const BatchPlan plan = PreScanBatch(queries, &outcomes);
  auto run_leader = [&](size_t g) {
    outcomes[plan.leaders[g]] = ExecuteUncached(
        queries[plan.leaders[g]], options_.per_query_limit_seconds, deadline);
  };
  if (pool_->num_threads() > 1 && plan.leaders.size() > 1) {
    pool_->ParallelFor(plan.leaders.size(),
                       [&](size_t g, int /*worker*/) { run_leader(g); });
  } else {
    for (size_t g = 0; g < plan.leaders.size(); ++g) run_leader(g);
  }
  FanOutFollowers(plan, &outcomes);
  return outcomes;
}

QueryEngine::BatchPlan QueryEngine::PreScanBatch(
    const std::vector<Query>& queries, std::vector<RunOutcome>* outcomes) {
  // Answer cache hits inline (no fan-out cost for hit-heavy workloads) and
  // group the misses by (k, range) so each distinct query executes at most
  // once per batch (dedup_batches). Each hit pays only its own stripe's
  // lock; the grouping map is batch-local, so no engine-wide lock is held
  // across the scan.
  BatchPlan plan;
  std::unordered_map<QueryCacheKey, size_t, QueryCacheKeyHasher> group_of;
  Bump(stats_->batches);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (cache_->enabled() && cache_->Lookup(queries[i], &(*outcomes)[i])) {
      Bump(stats_->queries_served);
      continue;
    }
    if (options_.dedup_batches) {
      const QueryCacheKey key{queries[i].k, queries[i].range};
      auto [it, inserted] = group_of.try_emplace(key, plan.leaders.size());
      if (!inserted) {
        plan.followers[it->second].push_back(i);
        continue;
      }
    }
    plan.leaders.push_back(i);
    plan.followers.emplace_back();
  }
  return plan;
}

void QueryEngine::FanOutFollowers(const BatchPlan& plan,
                                  std::vector<RunOutcome>* outcomes) {
  bool any_followers = false;
  for (size_t g = 0; g < plan.leaders.size(); ++g) {
    for (size_t i : plan.followers[g]) {
      (*outcomes)[i] = (*outcomes)[plan.leaders[g]];
      any_followers = true;
    }
  }
  if (any_followers) {
    uint64_t copied = 0;
    for (size_t g = 0; g < plan.leaders.size(); ++g) {
      copied += plan.followers[g].size();
    }
    Bump(stats_->batch_dedup_hits, copied);
    Bump(stats_->queries_served, copied);
  }
}

std::vector<RunOutcome> QueryEngine::ServeBatch(
    const std::vector<Query>& queries, double per_query_limit_seconds) {
  std::vector<RunOutcome> outcomes(queries.size());
  const BatchPlan plan = PreScanBatch(queries, &outcomes);

  // Execute the distinct misses, sharded over the pool.
  auto run_leader = [&](size_t g) {
    outcomes[plan.leaders[g]] =
        ExecuteUncached(queries[plan.leaders[g]], per_query_limit_seconds);
  };
  if (pool_->num_threads() > 1 && plan.leaders.size() > 1) {
    pool_->ParallelFor(plan.leaders.size(),
                       [&](size_t g, int /*worker*/) { run_leader(g); });
  } else {
    for (size_t g = 0; g < plan.leaders.size(); ++g) run_leader(g);
  }

  FanOutFollowers(plan, &outcomes);
  return outcomes;
}

// --- async submission ------------------------------------------------------

std::future<BatchResult> QueryEngine::SubmitAsync(std::vector<Query> queries) {
  return SubmitAsync(std::move(queries), Deadline());
}

std::future<BatchResult> QueryEngine::SubmitAsync(std::vector<Query> queries,
                                                  const Deadline& deadline) {
  auto promise = std::make_shared<std::promise<BatchResult>>();
  std::future<BatchResult> future = promise->get_future();
  SubmitAsyncWithCallback(std::move(queries), deadline,
                          [promise](BatchResult&& result) {
                            promise->set_value(std::move(result));
                          });
  return future;
}

void QueryEngine::SubmitAsync(std::vector<Query> queries,
                              BatchCompletionQueue* cq, uint64_t tag) {
  SubmitAsync(std::move(queries), cq, tag, Deadline());
}

void QueryEngine::SubmitAsync(std::vector<Query> queries,
                              BatchCompletionQueue* cq, uint64_t tag,
                              const Deadline& deadline) {
  SubmitAsyncWithCallback(std::move(queries), deadline,
                          [cq, tag](BatchResult&& result) {
                            result.tag = tag;
                            cq->Deliver(std::move(result));
                          });
}

void QueryEngine::SetLifetimeGuard(std::weak_ptr<const void> guard) {
  lifetime_guard_ = std::move(guard);
}

void QueryEngine::SubmitAsyncWithCallback(
    std::vector<Query> queries, std::function<void(BatchResult&&)> on_done,
    std::shared_ptr<const void> lifetime) {
  SubmitAsyncWithCallback(std::move(queries), Deadline(), std::move(on_done),
                          std::move(lifetime));
}

void QueryEngine::CompleteAsyncBatch(AsyncBatch&& batch,
                                     const Status& status) {
  BatchResult result;
  result.outcomes.resize(batch.queries.size());
  for (RunOutcome& out : result.outcomes) out.status = status;
  batch.done(std::move(result));
  FinishInflight();
}

void QueryEngine::SubmitAsyncWithCallback(
    std::vector<Query> queries, const Deadline& deadline,
    std::function<void(BatchResult&&)> on_done,
    std::shared_ptr<const void> lifetime) {
  AsyncBatch batch;
  batch.queries = std::move(queries);
  batch.limit = options_.per_query_limit_seconds;
  batch.deadline = deadline;
  batch.done = std::move(on_done);
  batch.lifetime = std::move(lifetime);
  {
    AsyncState* async = async_.get();
    MutexLock lock(async->mu);
    ++async->inflight;
  }
  Bump(stats_->async_batches);

  if (deadline.unlimited()) {
    // The queue never closes while the engine lives, so Push cannot fail;
    // it blocks while the queue is at capacity (producer backpressure).
    async_->queue.Push(std::move(batch));
    ScheduleDispatcher();
    return;
  }

  // Deadline-carrying submissions never block: an already-dead batch is
  // answered right here, and a full queue runs the eviction contest — the
  // batch with the least remaining deadline (queued or incoming) is shed
  // with ResourceExhausted so the submitter returns in bounded time.
  if (deadline.Expired()) {
    Bump(stats_->deadlines_expired);
    CompleteAsyncBatch(std::move(batch),
                       Status::Timeout("deadline expired before submission"));
    return;
  }
  AsyncBatch evicted;
  const PushOutcome outcome = async_->queue.PushOrEvict(
      &batch,
      [](const AsyncBatch& a, const AsyncBatch& b) {
        return a.deadline.ExpiresBefore(b.deadline);
      },
      &evicted);
  switch (outcome) {
    case PushOutcome::kPushed:
      ScheduleDispatcher();
      break;
    case PushOutcome::kPushedEvicted: {
      Bump(stats_->batches_shed);
      CompleteAsyncBatch(std::move(evicted),
                         Status::ResourceExhausted(
                             "request queue full: evicted by a submission "
                             "with more remaining deadline"));
      ScheduleDispatcher();
      break;
    }
    case PushOutcome::kRejectedIncoming: {
      Bump(stats_->batches_shed);
      CompleteAsyncBatch(std::move(batch),
                         Status::ResourceExhausted(
                             "request queue full: least remaining deadline"));
      break;
    }
    case PushOutcome::kClosed:
      CompleteAsyncBatch(std::move(batch),
                         Status::FailedPrecondition("engine shutting down"));
      break;
  }
}

void QueryEngine::ScheduleDispatcher() {
  if (async_->dispatcher_scheduled.exchange(true)) return;
  {
    AsyncState* async = async_.get();
    MutexLock lock(async->mu);
    ++async->inflight;  // the dispatcher's own ticket
  }
  // The dispatcher pins the engine's owner for its whole run and releases
  // its ticket before dropping the pin, so an owner whose last reference
  // dies inside an engine task never waits on that task's own ticket.
  //
  // On a 1-thread pool Submit runs inline: the whole async path completes
  // synchronously before SubmitAsync returns, matching the engine's
  // serial-degeneration contract.
  std::shared_ptr<const void> pin = lifetime_guard_.lock();
  pool_->Submit([this, pin] { DispatchAsyncBatches(); });
}

void QueryEngine::DispatchAsyncBatches() {
  for (;;) {
    AsyncBatch batch;
    while (async_->queue.TryPop(&batch)) {
      ProcessAsyncBatch(std::move(batch));
    }
    // Stand down, then re-check: a producer that pushed after the last
    // TryPop but before the store either sees the flag still true (we
    // reclaim below) or schedules a fresh dispatcher that owns the role.
    async_->dispatcher_scheduled.store(false);
    if (async_->queue.size() == 0 ||
        async_->dispatcher_scheduled.exchange(true)) {
      break;
    }
  }
  FinishInflight();  // release the dispatcher ticket
}

void QueryEngine::ProcessAsyncBatch(AsyncBatch batch) {
  // A batch whose deadline died in the queue is dropped here, before the
  // pre-scan: executing it would spend pool time on an answer the caller
  // has already given up on.
  if (batch.deadline.Expired()) {
    Bump(stats_->deadlines_expired);
    CompleteAsyncBatch(std::move(batch),
                       Status::Timeout("deadline expired before dispatch"));
    return;
  }
  auto state = std::make_shared<AsyncBatchState>();
  state->queries = std::move(batch.queries);
  state->limit = batch.limit;
  state->deadline = batch.deadline;
  state->done = std::move(batch.done);
  state->lifetime = std::move(batch.lifetime);
  state->outcomes.resize(state->queries.size());
  state->plan = PreScanBatch(state->queries, &state->outcomes);
  if (state->plan.leaders.empty()) {  // pure cache-hit (or empty) batch
    FinalizeAsyncBatch(state);
    return;
  }
  // Each distinct miss becomes its own pool task: no worker blocks on a
  // batch barrier, and leaders of different batches interleave freely. The
  // last leader to finish finalizes — possibly while the dispatcher is
  // already processing the next queued batch.
  //
  // Relaxed: this store happens-before every leader task via the pool's
  // queue mutex; the cross-leader ordering lives in the acq_rel fetch_sub.
  state->remaining.store(state->plan.leaders.size(),
                         std::memory_order_relaxed);
  for (size_t g = 0; g < state->plan.leaders.size(); ++g) {
    pool_->Submit([this, state, g] {
      // A stalled worker (when the fault is armed): long enough to expire
      // tight deadlines behind it, short enough to keep fault runs fast.
      FaultStallIfArmed(kFaultDispatchSlowWorker, 20);
      const size_t i = state->plan.leaders[g];
      state->outcomes[i] =
          ExecuteUncached(state->queries[i], state->limit, state->deadline);
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        FinalizeAsyncBatch(state);
      }
    });
  }
}

void QueryEngine::FinalizeAsyncBatch(
    const std::shared_ptr<AsyncBatchState>& state) {
  FanOutFollowers(state->plan, &state->outcomes);
  BatchResult result;
  result.outcomes = std::move(state->outcomes);
  state->done(std::move(result));
  FinishInflight();
}

void QueryEngine::FinishInflight() {
  AsyncState* async = async_.get();
  MutexLock lock(async->mu);
  if (--async->inflight == 0) {
    // Notify while still holding the mutex: a DrainAsync waiter may
    // destroy the engine the instant it observes inflight == 0, and an
    // unlocked notify would then touch a freed condition variable.
    async->drained.NotifyAll();
  }
}

void QueryEngine::DrainAsync() {
  AsyncState* async = async_.get();
  MutexLock lock(async->mu);
  while (async->inflight != 0) async->drained.Wait(async->mu);
}

ServeStats QueryEngine::stats() const {
  // Each counter is an independent relaxed atomic; a snapshot taken under
  // concurrency may tear across counters (never within one), and quiescent
  // reads are exact — the same contract as the striped cache's totals.
  // Relaxed: monotone event counts, no cross-counter ordering promised.
  auto read = [](const std::atomic<uint64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  };
  ServeStats snapshot;
  snapshot.batches = read(stats_->batches);
  snapshot.queries_served = read(stats_->queries_served);
  snapshot.index_rejections = read(stats_->index_rejections);
  snapshot.batch_dedup_hits = read(stats_->batch_dedup_hits);
  snapshot.executed = read(stats_->executed);
  snapshot.async_batches = read(stats_->async_batches);
  snapshot.batches_shed = read(stats_->batches_shed);
  snapshot.deadlines_expired = read(stats_->deadlines_expired);
  snapshot.cache_hits = cache_->hits();
  snapshot.cache_misses = cache_->misses();
  snapshot.cache_evictions = cache_->evictions();
  return snapshot;
}

void QueryEngine::ClearCache() { cache_->Clear(); }

uint64_t QueryEngine::CarryOverCacheFrom(const QueryEngine& prev,
                                         uint32_t clean_above_k) {
  if (!cache_->enabled() || !prev.cache_->enabled()) return 0;
  // prev may still be serving in-flight batches pinned to its snapshot;
  // the export locks one stripe at a time, and the filter runs before
  // payloads are copied so each stripe's lock is held proportionally to
  // what actually carries.
  std::vector<QueryCacheEntry> entries = prev.cache_->ExportLruToMru(
      [](const QueryCacheKey& key, uint32_t bound) { return key.k > bound; },
      clean_above_k);
  return cache_->ImportEntries(std::move(entries));
}

}  // namespace tkc
