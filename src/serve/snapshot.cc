#include "serve/snapshot.h"

#include <algorithm>
#include <utility>

#include "util/timer.h"

namespace tkc {

StatusOr<std::shared_ptr<const GraphSnapshot>> GraphSnapshot::Create(
    TemporalGraph graph, uint64_t version, const QueryEngineOptions& options) {
  // Two-phase: the graph must reach its final address before the engine
  // captures a pointer to it.
  std::shared_ptr<GraphSnapshot> snapshot(new GraphSnapshot());
  snapshot->graph_ = std::move(graph);
  snapshot->version_ = version;
  auto engine = QueryEngine::Create(snapshot->graph_, options);
  if (!engine.ok()) return engine.status();
  snapshot->engine_.emplace(std::move(engine).value());
  // The engine's internal async tasks pin this snapshot while they run, so
  // dropping the last external pin inside one of those tasks destroys the
  // snapshot without the engine's drain waiting on the running task.
  snapshot->engine_->SetLifetimeGuard(
      std::weak_ptr<const void>(std::shared_ptr<const void>(snapshot)));
  return std::shared_ptr<const GraphSnapshot>(std::move(snapshot));
}

StatusOr<std::unique_ptr<LiveQueryEngine>> LiveQueryEngine::Create(
    TemporalGraph initial_graph, const LiveEngineOptions& options) {
  auto initial =
      GraphSnapshot::Create(std::move(initial_graph), 0, options.engine);
  if (!initial.ok()) return initial.status();
  return std::unique_ptr<LiveQueryEngine>(
      new LiveQueryEngine(std::move(initial).value(), options));
}

LiveQueryEngine::LiveQueryEngine(std::shared_ptr<const GraphSnapshot> initial,
                                 const LiveEngineOptions& options)
    : options_(options),
      current_(initial),
      update_queue_(options.update_queue_capacity),
      updater_([this] { UpdaterLoop(); }) {
  // A preloaded admission index describes exactly one graph — the initial
  // one. Rebuilt snapshots must build their own fresh index (the preloaded
  // pointer may even dangle by then); preloading implies the operator
  // wants an admission index, so rebuilds keep building one.
  rebuild_engine_options_ = options.engine;
  if (rebuild_engine_options_.preloaded_index != nullptr) {
    rebuild_engine_options_.preloaded_index = nullptr;
    rebuild_engine_options_.build_index = true;
  }
  all_snapshots_.push_back(std::move(initial));
}

LiveQueryEngine::~LiveQueryEngine() {
  update_queue_.Close();  // queued batches still drain, then the loop exits
  updater_.join();
  // Drain every snapshot that still exists, not just the current one: a
  // batch pinned to an older version may still be delivering (e.g. into a
  // caller's BatchCompletionQueue), and the caller must be able to destroy
  // that queue right after this destructor returns. An expired weak_ptr
  // means every pin is gone, which implies that snapshot has nothing in
  // flight.
  std::vector<std::weak_ptr<const GraphSnapshot>> snapshots;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshots.swap(all_snapshots_);
  }
  for (const auto& weak : snapshots) {
    if (std::shared_ptr<const GraphSnapshot> alive = weak.lock()) {
      alive->engine().DrainAsync();
    }
  }
}

std::shared_ptr<const GraphSnapshot> LiveQueryEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return current_;
}

BatchResult LiveQueryEngine::ServeBatch(const std::vector<Query>& queries) {
  std::shared_ptr<const GraphSnapshot> pin = snapshot();
  BatchResult result;
  result.outcomes = pin->engine().ServeBatch(queries);
  result.snapshot_version = pin->version();
  return result;
}

std::future<BatchResult> LiveQueryEngine::SubmitAsync(
    std::vector<Query> queries) {
  auto promise = std::make_shared<std::promise<BatchResult>>();
  std::future<BatchResult> future = promise->get_future();
  std::shared_ptr<const GraphSnapshot> pin = snapshot();
  // The callback owns the pin: the snapshot (graph, engine, index) cannot
  // die before the batch's result is delivered, no matter how many swaps
  // happen in between.
  pin->engine().SubmitAsyncWithCallback(
      std::move(queries),
      [pin, promise](BatchResult&& result) {
        result.snapshot_version = pin->version();
        promise->set_value(std::move(result));
      },
      pin);
  return future;
}

void LiveQueryEngine::SubmitAsync(std::vector<Query> queries,
                                  BatchCompletionQueue* cq, uint64_t tag) {
  std::shared_ptr<const GraphSnapshot> pin = snapshot();
  pin->engine().SubmitAsyncWithCallback(
      std::move(queries),
      [pin, cq, tag](BatchResult&& result) {
        result.snapshot_version = pin->version();
        result.tag = tag;
        cq->Deliver(std::move(result));
      },
      pin);
}

std::future<Status> LiveQueryEngine::ApplyUpdates(
    std::vector<RawTemporalEdge> edges) {
  UpdateRequest request;
  request.edges = std::move(edges);
  request.done = std::make_shared<std::promise<Status>>();
  std::future<Status> future = request.done->get_future();
  if (!update_queue_.Push(std::move(request))) {
    // Only possible during/after destruction; report rather than hang.
    auto rejected = std::make_shared<std::promise<Status>>();
    rejected->set_value(
        Status::FailedPrecondition("live engine is shutting down"));
    return rejected->get_future();
  }
  return future;
}

void LiveQueryEngine::UpdaterLoop() {
  UpdateRequest request;
  while (update_queue_.Pop(&request)) {
    WallTimer rebuild_timer;
    // Rebuild off-thread: serving continues on the current snapshot while
    // this thread (and, inside PhcIndex::Build, the serving pool) builds
    // the successor.
    std::shared_ptr<const GraphSnapshot> base;
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      base = current_;
    }
    auto next_graph = base->graph().AppendEdges(request.edges);
    Status status = next_graph.ok() ? Status::OK() : next_graph.status();
    std::shared_ptr<const GraphSnapshot> next;
    if (status.ok()) {
      auto built = GraphSnapshot::Create(std::move(next_graph).value(),
                                         next_version_,
                                         rebuild_engine_options_);
      status = built.ok() ? Status::OK() : built.status();
      if (built.ok()) next = std::move(built).value();
    }
    const double rebuild_seconds = rebuild_timer.ElapsedSeconds();

    double swap_seconds = 0;
    if (status.ok()) {
      ++next_version_;
      WallTimer swap_timer;
      {
        // The swap is one shared_ptr assignment under a micro-lock:
        // queries pin before or after, never mid-swap (no torn reads).
        std::lock_guard<std::mutex> lock(snapshot_mu_);
        current_ = next;
        // Track the new version for destructor-time draining; expired
        // entries (snapshots whose last pin is gone) are pruned here so
        // the list stays proportional to snapshots actually alive.
        all_snapshots_.erase(
            std::remove_if(all_snapshots_.begin(), all_snapshots_.end(),
                           [](const std::weak_ptr<const GraphSnapshot>& w) {
                             return w.expired();
                           }),
            all_snapshots_.end());
        all_snapshots_.push_back(std::move(next));
      }
      swap_seconds = swap_timer.ElapsedSeconds();
    }

    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (status.ok()) {
        ++stats_.swaps;
        stats_.edges_applied += request.edges.size();
        stats_.last_rebuild_seconds = rebuild_seconds;
        stats_.last_swap_seconds = swap_seconds;
      } else {
        ++stats_.failed_updates;
      }
    }
    request.done->set_value(std::move(status));
    request = UpdateRequest();  // release the edges/promise promptly
  }
}

LiveStats LiveQueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace tkc
