#include "serve/snapshot.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "util/fault_injection.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tkc {

namespace {

/// Failures worth retrying: environmental/transient categories where a later
/// attempt can genuinely succeed. A deterministic rejection (InvalidArgument,
/// FailedPrecondition, ...) reproduces on every attempt, so retrying it only
/// delays the inevitable — and would stall the FIFO behind it.
bool IsTransientForRetry(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInternal:
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
    case StatusCode::kTimeout:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "Healthy";
    case HealthState::kDegraded:
      return "Degraded";
    case HealthState::kUpdatesFailed:
      return "UpdatesFailed";
  }
  return "Unknown";
}

StatusOr<std::shared_ptr<GraphSnapshot>> GraphSnapshot::CreateImpl(
    TemporalGraph graph, uint64_t version, const QueryEngineOptions& options) {
  // Two-phase: the graph must reach its final address before the engine
  // captures a pointer to it.
  std::shared_ptr<GraphSnapshot> snapshot(new GraphSnapshot());
  snapshot->graph_ = std::move(graph);
  snapshot->version_ = version;
  auto engine = QueryEngine::Create(snapshot->graph_, options);
  if (!engine.ok()) return engine.status();
  snapshot->engine_.emplace(std::move(engine).value());
  // The engine's internal async tasks pin this snapshot while they run, so
  // dropping the last external pin inside one of those tasks destroys the
  // snapshot without the engine's drain waiting on the running task.
  snapshot->engine_->SetLifetimeGuard(
      std::weak_ptr<const void>(std::shared_ptr<const void>(snapshot)));
  return snapshot;
}

StatusOr<std::shared_ptr<const GraphSnapshot>> GraphSnapshot::Create(
    TemporalGraph graph, uint64_t version, const QueryEngineOptions& options) {
  auto snapshot = CreateImpl(std::move(graph), version, options);
  if (!snapshot.ok()) return snapshot.status();
  return std::shared_ptr<const GraphSnapshot>(std::move(snapshot).value());
}

StatusOr<std::shared_ptr<const GraphSnapshot>> GraphSnapshot::CreateSuccessor(
    const GraphSnapshot& base, GraphUpdate update, uint64_t version,
    const QueryEngineOptions& options) {
  // The delta-only validity proof for cached outcomes: with the compacted
  // timeline and vertex pool preserved, every (k, range) outcome with
  // k > the delta's core bound answers identically on the new graph —
  // index or no index.
  const bool delta_clean = update.delta.timestamps_preserved &&
                           update.delta.vertices_preserved;
  const uint32_t carry_bound =
      update.delta.empty() ? 0 : update.delta.max_core_bound;
  QueryEngineOptions successor_options = options;
  // Delta-aware index maintenance: when the base snapshot has an admission
  // index to rebuild from, produce the successor's index with
  // PhcIndex::Rebuild — clean slices shared by pointer, dirty ones rebuilt
  // over the pool — and hand it to the engine as a preloaded index (a
  // cheap copy: slices are shared). Bit-identical to the from-scratch
  // build the engine would otherwise run.
  PhcIndex rebuilt;
  PhcRebuildStats rebuild_stats;
  const PhcIndex* base_index = base.engine().index();
  const bool want_index =
      (options.build_index || options.preloaded_index != nullptr) &&
      base_index != nullptr && update.graph.num_timestamps() > 0;
  if (want_index) {
    PhcBuildOptions build;
    build.max_k = options.index_max_k;
    // The rebuild fans out over the dedicated update pool when the live
    // layer provides one — never the serving pool, whose workers belong to
    // in-flight query batches.
    build.pool = options.index_build_pool != nullptr ? options.index_build_pool
                 : options.pool != nullptr          ? options.pool
                                                    : &ThreadPool::Shared();
    auto index = PhcIndex::Rebuild(*base_index, update.graph, update.delta,
                                   build, &rebuild_stats);
    if (!index.ok()) return index.status();
    rebuilt = std::move(index).value();
    successor_options.preloaded_index = &rebuilt;  // copied by Create
    successor_options.build_index = true;
    // Slices Rebuild carried by pointer have provably identical emergence
    // tables; let the successor's engine copy them from the base engine
    // instead of re-running the emergence sweep per reused slice — and
    // suffix-stitched slices copy the base table and re-sweep only their
    // recomputed start band (rebuild_stats outlives CreateImpl below).
    successor_options.emergence_source = &base.engine();
    successor_options.emergence_bands = &rebuild_stats.suffix_bands;
  }

  auto snapshot =
      CreateImpl(std::move(update.graph), version, successor_options);
  if (!snapshot.ok()) return snapshot.status();

  SwapStats& swap = (*snapshot)->swap_stats_;
  swap.delta_edges = update.delta.edges_appended;
  swap.slices_reused = rebuild_stats.slices_reused;
  swap.slices_rebuilt = rebuild_stats.slices_rebuilt;
  swap.suffix_rebuilds = rebuild_stats.suffix_rebuilds;
  swap.rows_reused = rebuild_stats.rows_reused;
  swap.rows_total = rebuild_stats.rows_total;
  swap.emergence_tables_carried =
      (*snapshot)->engine().emergence_tables_carried();
  swap.emergence_tables_stitched =
      (*snapshot)->engine().emergence_tables_stitched();
  // Cross-snapshot cache carry-over: entries whose k lies strictly above
  // the delta's proof boundary answer identically on the new graph, so the
  // successor starts warm for exactly that region. Gated on the delta
  // alone — a cache-only engine (no admission index) carries too.
  if (delta_clean) {
    swap.cache_entries_carried =
        (*snapshot)->engine().CarryOverCacheFrom(base.engine(), carry_bound);
  }
  return std::shared_ptr<const GraphSnapshot>(std::move(snapshot).value());
}

StatusOr<std::unique_ptr<LiveQueryEngine>> LiveQueryEngine::Create(
    TemporalGraph initial_graph, const LiveEngineOptions& options) {
  auto initial =
      GraphSnapshot::Create(std::move(initial_graph), 0, options.engine);
  if (!initial.ok()) return initial.status();
  return std::unique_ptr<LiveQueryEngine>(
      new LiveQueryEngine(std::move(initial).value(), options));
}

LiveQueryEngine::LiveQueryEngine(std::shared_ptr<const GraphSnapshot> initial,
                                 const LiveEngineOptions& options)
    : options_(options),
      current_(initial),
      update_queue_(options.update_queue_capacity),
      updater_([this] { UpdaterLoop(); }) {
  // A preloaded admission index describes exactly one graph — the initial
  // one. Rebuilt snapshots must build their own fresh index (the preloaded
  // pointer may even dangle by then); preloading implies the operator
  // wants an admission index, so rebuilds keep building one — via the
  // delta-aware PhcIndex::Rebuild whenever the base snapshot has an index.
  rebuild_engine_options_ = options.engine;
  if (rebuild_engine_options_.preloaded_index != nullptr) {
    rebuild_engine_options_.preloaded_index = nullptr;
    rebuild_engine_options_.build_index = true;
  }
  // De-contention: rebuilds fan out over a pool that shares no worker with
  // the serving pool, so a swap in progress costs queries nothing but
  // memory bandwidth.
  ThreadPool* update_pool = options_.update_pool;
  if (update_pool == nullptr) {
    const ThreadPool* serve_pool = options_.engine.pool != nullptr
                                       ? options_.engine.pool
                                       : &ThreadPool::Shared();
    // Default size: the serving pool's width, capped at the physical core
    // count — rebuild slices beyond real cores buy no parallelism, they
    // only oversubscribe the machine against the serving threads.
    size_t threads = options_.update_pool_threads;
    if (threads == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = static_cast<size_t>(serve_pool->num_threads());
      if (hw > 0 && threads > hw) threads = hw;
    }
    owned_update_pool_ =
        std::make_unique<ThreadPool>(static_cast<int>(threads));
    update_pool = owned_update_pool_.get();
  }
  rebuild_engine_options_.index_build_pool = update_pool;
  jitter_stream_ = SplitMix64(options.retry_jitter_seed);
  // The updater thread is already running (started in the init list); no
  // batch can reach it before Create returns, but take the guard anyway so
  // the "all_snapshots_ under snapshots_mu_" invariant has no carve-out.
  MutexLock lock(snapshots_mu_);
  all_snapshots_.push_back(std::move(initial));
}

void LiveQueryEngine::Shutdown() {
  {
    // Force the pause gate open so a paused updater is never stuck at it.
    // If the gate was genuinely held, the queued batches were promised
    // "not yet" — release them with a failure instead of applying them
    // behind the caller's back.
    MutexLock lock(pause_mu_);
    pause_override_ = true;
    if (paused_) abandon_queued_ = true;
  }
  pause_cv_.NotifyAll();
  update_queue_.Close();  // queued batches still settle, then the loop exits
  // Serialize the join: concurrent Shutdown() calls must not race the
  // joinable()/join() pair (the loser would join an already-joined thread
  // and throw). The updater never takes this mutex, so holding it across
  // the join cannot deadlock; late callers block until the first join
  // finishes, then see joinable() == false.
  MutexLock join_lock(shutdown_mu_);
  if (updater_.joinable()) updater_.join();
  // With the updater gone, quiesce the async serving path too: a caller
  // shutting the engine down while a server still holds completion queues
  // must be able to destroy those queues the moment this returns.
  DrainAsync();
}

void LiveQueryEngine::DrainAsync() {
  // Drain every snapshot that still exists, not just the current one: a
  // batch pinned to an older version may still be delivering (e.g. into a
  // caller's BatchCompletionQueue), and the caller must be able to destroy
  // that queue right after this returns. An expired weak_ptr means every
  // pin is gone, which implies that snapshot has nothing in flight. The
  // list is copied (and pruned), not cleared, so the call is repeatable —
  // the destructor drains again after Shutdown already did.
  std::vector<std::weak_ptr<const GraphSnapshot>> snapshots;
  {
    MutexLock lock(snapshots_mu_);
    all_snapshots_.erase(
        std::remove_if(all_snapshots_.begin(), all_snapshots_.end(),
                       [](const std::weak_ptr<const GraphSnapshot>& w) {
                         return w.expired();
                       }),
        all_snapshots_.end());
    snapshots = all_snapshots_;
  }
  for (const auto& weak : snapshots) {
    if (std::shared_ptr<const GraphSnapshot> alive = weak.lock()) {
      alive->engine().DrainAsync();
    }
  }
}

LiveQueryEngine::~LiveQueryEngine() {
  Shutdown();  // updater joined + async serving path drained (DrainAsync)
}

std::shared_ptr<const GraphSnapshot> LiveQueryEngine::snapshot() const {
  // Lock-free pin: an atomic shared_ptr load. Readers never serialize
  // against each other or against the updater's publishing store.
  return current_.load(std::memory_order_acquire);
}

BatchResult LiveQueryEngine::ServeBatch(const std::vector<Query>& queries) {
  std::shared_ptr<const GraphSnapshot> pin = snapshot();
  BatchResult result;
  result.outcomes = pin->engine().ServeBatch(queries);
  result.snapshot_version = pin->version();
  return result;
}

BatchResult LiveQueryEngine::ServeBatch(const std::vector<Query>& queries,
                                        const Deadline& deadline) {
  std::shared_ptr<const GraphSnapshot> pin = snapshot();
  BatchResult result;
  result.outcomes = pin->engine().ServeBatch(queries, deadline);
  result.snapshot_version = pin->version();
  return result;
}

std::future<BatchResult> LiveQueryEngine::SubmitAsync(
    std::vector<Query> queries) {
  return SubmitAsync(std::move(queries), Deadline());
}

std::future<BatchResult> LiveQueryEngine::SubmitAsync(
    std::vector<Query> queries, const Deadline& deadline) {
  auto promise = std::make_shared<std::promise<BatchResult>>();
  std::future<BatchResult> future = promise->get_future();
  std::shared_ptr<const GraphSnapshot> pin = snapshot();
  // The callback owns the pin: the snapshot (graph, engine, index) cannot
  // die before the batch's result is delivered, no matter how many swaps
  // happen in between. Dropped batches (Timeout/ResourceExhausted) settle
  // through the same callback, so they too carry the pinned version.
  pin->engine().SubmitAsyncWithCallback(
      std::move(queries), deadline,
      [pin, promise](BatchResult&& result) {
        result.snapshot_version = pin->version();
        promise->set_value(std::move(result));
      },
      pin);
  return future;
}

void LiveQueryEngine::SubmitAsync(std::vector<Query> queries,
                                  BatchCompletionQueue* cq, uint64_t tag) {
  SubmitAsync(std::move(queries), cq, tag, Deadline());
}

void LiveQueryEngine::SubmitAsync(std::vector<Query> queries,
                                  BatchCompletionQueue* cq, uint64_t tag,
                                  const Deadline& deadline) {
  std::shared_ptr<const GraphSnapshot> pin = snapshot();
  pin->engine().SubmitAsyncWithCallback(
      std::move(queries), deadline,
      [pin, cq, tag](BatchResult&& result) {
        result.snapshot_version = pin->version();
        result.tag = tag;
        cq->Deliver(std::move(result));
      },
      pin);
}

std::future<Status> LiveQueryEngine::ApplyUpdates(
    std::vector<RawTemporalEdge> edges) {
  UpdateRequest request;
  request.edges = std::move(edges);
  request.done = std::make_shared<std::promise<Status>>();
  std::future<Status> future = request.done->get_future();
  if (!update_queue_.Push(std::move(request))) {
    // Only possible during/after destruction; report rather than hang.
    auto rejected = std::make_shared<std::promise<Status>>();
    rejected->set_value(
        Status::FailedPrecondition("live engine is shutting down"));
    return rejected->get_future();
  }
  return future;
}

void LiveQueryEngine::PauseUpdates() {
  MutexLock lock(pause_mu_);
  paused_ = true;
}

void LiveQueryEngine::ResumeUpdates() {
  {
    MutexLock lock(pause_mu_);
    paused_ = false;
  }
  pause_cv_.NotifyAll();
}

void LiveQueryEngine::UpdaterLoop() {
  UpdateRequest request;
  while (update_queue_.Pop(&request)) {
    bool abandon = false;
    {
      // Pause gate: batches queued while held accumulate and coalesce
      // into the cycle below once resumed (or once Shutdown forces the
      // gate open). The predicate loop is written out so the analysis sees
      // the whole wait under pause_mu_ (a predicate lambda would be checked
      // as a separate, capability-blind function).
      MutexLock lock(pause_mu_);
      while (paused_ && !pause_override_) pause_cv_.Wait(pause_mu_);
      abandon = abandon_queued_;
    }
    // Coalesce: one rebuild cycle absorbs every batch queued right now —
    // under swap pressure the updater pays one graph+index rebuild for the
    // whole backlog instead of one per batch.
    std::vector<UpdateRequest> group;
    group.push_back(std::move(request));
    while (update_queue_.TryPop(&request)) group.push_back(std::move(request));

    if (abandon) {
      // Shutdown caught the pause gate held: the queued batches were
      // promised "not yet", so release every one of them with a failure
      // status instead of applying them during teardown — and never leave
      // a future unresolved.
      {
        MutexLock lock(stats_mu_);
        stats_.update.batches_submitted += group.size();
        stats_.failed_updates += group.size();
      }
      const Status status = Status::FailedPrecondition(
          "live engine shut down while updates were paused");
      for (UpdateRequest& r : group) r.done->set_value(status);
      group.clear();
      request = UpdateRequest();
      continue;
    }
    size_t total_edges = 0;
    for (const UpdateRequest& r : group) total_edges += r.edges.size();
    // The requests' edge vectors are dead after the merge (only their
    // promises are needed below), so move rather than copy.
    std::vector<RawTemporalEdge> edges;
    if (group.size() == 1) {
      edges = std::move(group.front().edges);
    } else {
      edges.reserve(total_edges);
      for (UpdateRequest& r : group) {
        edges.insert(edges.end(), std::make_move_iterator(r.edges.begin()),
                     std::make_move_iterator(r.edges.end()));
        r.edges.clear();
      }
    }

    WallTimer rebuild_timer;
    // Rebuild off-thread: serving continues on the current snapshot while
    // this thread (and, inside PhcIndex::Rebuild, the serving pool) builds
    // the successor. Transient failures retry with capped backoff inside
    // RebuildWithRetry; the last good snapshot keeps serving throughout.
    std::shared_ptr<const GraphSnapshot> base =
        current_.load(std::memory_order_acquire);
    std::shared_ptr<const GraphSnapshot> next;
    // Version advances by the whole group: version N stays "initial
    // graph + update batches 1..N" even when swaps coalesce.
    Status status = RebuildWithRetry(base, edges,
                                     base->version() + group.size(), &next);
    const double rebuild_seconds = rebuild_timer.ElapsedSeconds();

    double swap_seconds = 0;
    if (status.ok()) {
      WallTimer swap_timer;
      // The swap is one atomic shared_ptr store: queries pin before or
      // after, never mid-swap (no torn reads), and never wait on it.
      current_.store(next, std::memory_order_release);
      {
        // Track the new version for destructor-time draining; expired
        // entries (snapshots whose last pin is gone) are pruned here so
        // the list stays proportional to snapshots actually alive.
        MutexLock lock(snapshots_mu_);
        all_snapshots_.erase(
            std::remove_if(all_snapshots_.begin(), all_snapshots_.end(),
                           [](const std::weak_ptr<const GraphSnapshot>& w) {
                             return w.expired();
                           }),
            all_snapshots_.end());
        all_snapshots_.push_back(next);
      }
      swap_seconds = swap_timer.ElapsedSeconds();
    }

    {
      MutexLock lock(stats_mu_);
      stats_.update.batches_submitted += group.size();
      // Riders saved a cycle whether this one succeeded or failed; a
      // failed cycle must not double-charge them (they count once in
      // failed_updates, once here as coalesced — never as applied).
      stats_.update.batches_coalesced += group.size() - 1;
      if (status.ok()) {
        const GraphSnapshot::SwapStats& swap = next->swap_stats();
        ++stats_.swaps;
        stats_.edges_applied += edges.size();
        stats_.last_rebuild_seconds = rebuild_seconds;
        stats_.last_swap_seconds = swap_seconds;
        stats_.last_delta_edges = swap.delta_edges;
        stats_.update.batches_applied += group.size();
        stats_.update.slices_reused += swap.slices_reused;
        stats_.update.slices_rebuilt += swap.slices_rebuilt;
        stats_.update.suffix_rebuilds += swap.suffix_rebuilds;
        stats_.update.rows_reused += swap.rows_reused;
        stats_.update.rows_total += swap.rows_total;
        stats_.update.emergence_tables_carried +=
            swap.emergence_tables_carried;
        stats_.update.emergence_tables_stitched +=
            swap.emergence_tables_stitched;
        stats_.update.cache_entries_carried += swap.cache_entries_carried;
        if (swap.slices_reused > 0 || swap.suffix_rebuilds > 0) {
          ++stats_.update.incremental_swaps;
        }
      } else {
        // The whole coalesced group is dropped: every batch in it failed,
        // including the ones that merely rode along.
        stats_.failed_updates += group.size();
      }
    }
    for (UpdateRequest& r : group) r.done->set_value(status);
    group.clear();
    request = UpdateRequest();  // release the edges/promise promptly
  }
}

Status LiveQueryEngine::RebuildWithRetry(
    const std::shared_ptr<const GraphSnapshot>& base,
    const std::vector<RawTemporalEdge>& edges, uint64_t next_version,
    std::shared_ptr<const GraphSnapshot>* next) {
  const int max_attempts = std::max(1, options_.max_rebuild_attempts);
  double backoff_ms = std::max(0.0, options_.retry_backoff_initial_ms);
  const double backoff_cap =
      std::max(backoff_ms, options_.retry_backoff_max_ms);
  Status status;
  bool degraded = false;
  WallTimer degraded_timer;
  uint64_t retries = 0;
  for (int attempt = 1;; ++attempt) {
    auto update = base->graph().AppendEdges(edges);
    status = update.ok() ? Status::OK() : update.status();
    if (status.ok() && FaultFires(kFaultRebuildFail)) {
      status = Status::Internal("injected rebuild failure (rebuild.fail)");
    }
    if (status.ok()) {
      auto built = GraphSnapshot::CreateSuccessor(
          *base, std::move(update).value(), next_version,
          rebuild_engine_options_);
      status = built.ok() ? Status::OK() : built.status();
      if (built.ok()) *next = std::move(built).value();
    }
    if (status.ok() || !IsTransientForRetry(status) ||
        attempt >= max_attempts) {
      break;
    }
    if (!degraded) {
      degraded = true;
      degraded_timer.Restart();
      SetHealth(HealthState::kDegraded);
    }
    ++retries;
    // Capped exponential backoff with seeded jitter in [0.5, 1.0): repeated
    // failures back off but never in lockstep with anything else seeded
    // differently. Shutdown (pause_override_) interrupts the wait — the
    // cycle then fails with the error it was retrying instead of holding
    // the teardown hostage for the remaining backoff.
    jitter_stream_ = SplitMix64(jitter_stream_);
    const double unit = static_cast<double>(jitter_stream_ >> 11) * 0x1.0p-53;
    const double wait_ms = backoff_ms * (0.5 + 0.5 * unit);
    backoff_ms = std::min(backoff_ms * 2.0, backoff_cap);
    bool shutting_down = false;
    {
      // Deadline computed once, then an explicit predicate loop against it:
      // equivalent to wait_for(lock, wait_ms, pred) but in a shape the
      // analysis can follow (no capability-blind predicate lambda).
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(wait_ms));
      MutexLock lock(pause_mu_);
      while (!pause_override_) {
        if (pause_cv_.WaitUntil(pause_mu_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      shutting_down = pause_override_;
    }
    if (shutting_down) break;
  }
  {
    MutexLock lock(stats_mu_);
    stats_.update.rebuild_retries += retries;
    if (degraded) {
      stats_.update.degraded_ms += static_cast<uint64_t>(
          degraded_timer.ElapsedSeconds() * 1000.0 + 0.5);
    }
  }
  if (status.ok()) {
    SetHealth(HealthState::kHealthy);
  } else if (IsTransientForRetry(status)) {
    // Retries exhausted (or shutdown cut them short). A deterministic
    // rejection deliberately does NOT land here: bad input is the batch's
    // problem, not the update machinery's.
    SetHealth(HealthState::kUpdatesFailed);
  }
  return status;
}

void LiveQueryEngine::SetHealth(HealthState state) {
  MutexLock lock(stats_mu_);
  health_ = state;
}

HealthState LiveQueryEngine::health() const {
  MutexLock lock(stats_mu_);
  return health_;
}

LiveStats LiveQueryEngine::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

UpdateStats LiveQueryEngine::update_stats() const {
  MutexLock lock(stats_mu_);
  return stats_.update;
}

}  // namespace tkc
