#ifndef TKC_SERVE_QUERY_CACHE_H_
#define TKC_SERVE_QUERY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "workload/query_workload.h"

/// \file query_cache.h
/// Bounded LRU memoization of query outcomes for the serving layer: the
/// result fields of a time-range k-core query are a pure function of
/// (graph, k, range), so a QueryEngine that owns one immutable graph can
/// replay them for repeated queries instead of rebuilding the VCT/ECS.
///
/// Two entry kinds share one LRU order but are accounted differently:
///
///  * **Full outcomes** (Insert) carry a complete RunOutcome and cost
///    kOutcomeWeight budget units each.
///  * **Tombstones** (InsertTombstone) record only that a (k, range) is
///    provably empty — the admission index's rejections. They carry no
///    payload (a hit replays the canonical empty outcome) and cost 1 unit,
///    so a workload dominated by empty-range probes remembers
///    kOutcomeWeight times as many of them in the same budget instead of
///    spending a full slot on ~zero bytes of information.
///
/// `capacity` keeps its historical meaning — the number of *full* outcomes
/// the cache can hold — and translates to a budget of capacity *
/// kOutcomeWeight units. Capacity 0 disables the cache entirely.
///
/// The cache is deliberately *not* internally synchronized — QueryEngine
/// guards it with its own mutex so lookup-miss-insert sequences and the
/// hit/eviction counters stay coherent under concurrent batches. Use it
/// directly only from one thread.

namespace tkc {

/// Identity of a cacheable query: the cohesion parameter and the range.
struct QueryCacheKey {
  uint32_t k = 0;
  Window range{0, 0};

  friend bool operator==(const QueryCacheKey& a, const QueryCacheKey& b) {
    return a.k == b.k && a.range == b.range;
  }
};

/// One exported cache entry, the currency of cross-snapshot carry-over
/// (serve/snapshot.h): a key plus its payload, nullopt meaning tombstone.
struct QueryCacheEntry {
  QueryCacheKey key;
  std::optional<RunOutcome> outcome;
};

struct QueryCacheKeyHasher {
  size_t operator()(const QueryCacheKey& key) const {
    uint64_t h = HashU64(key.k);
    h = HashCombine(h, key.range.start);
    h = HashCombine(h, key.range.end);
    return static_cast<size_t>(h);
  }
};

/// Weighted-LRU map from (k, range) to a completed RunOutcome or a
/// provably-empty tombstone.
class QueryCache {
 public:
  /// Budget units per full outcome; a tombstone costs 1. The ratio tracks
  /// the storage ratio: a RunOutcome (Status with its string + 7 scalar
  /// fields) against a key-only entry.
  static constexpr size_t kOutcomeWeight = 16;

  explicit QueryCache(size_t capacity);

  /// On hit, copies the stored outcome into `*out` (which must be non-null)
  /// — for a tombstone, the canonical empty outcome (OK status, all-zero
  /// counts) — promotes the entry to most-recently-used, and returns true.
  /// Counts a hit or a miss either way.
  bool Lookup(const Query& query, RunOutcome* out);

  /// Inserts (or refreshes) the outcome for `query`, evicting least
  /// recently used entries until the weight budget holds. Callers should
  /// only insert outcomes whose status is OK — a failed run (timeout, bad
  /// input) is not a property of the query alone.
  void Insert(const Query& query, const RunOutcome& outcome);

  /// Records that `query` is provably empty at 1/kOutcomeWeight the cost of
  /// a full entry. Refreshing an existing full outcome with a tombstone
  /// keeps the full outcome (it carries strictly more — its execution
  /// fields); only the LRU position refreshes.
  void InsertTombstone(const Query& query);

  void Clear();

  /// Entries passing `keep` (nullptr keeps everything), least recently
  /// used first — the order ImportEntries wants, so a carried-over cache
  /// preserves relative recency. Filtering happens before the payloads
  /// are copied, so the cost is proportional to what is exported. The
  /// cache itself is untouched (no promotion, no counters).
  using KeyPredicate = bool (*)(const QueryCacheKey&, uint32_t);
  std::vector<QueryCacheEntry> ExportLruToMru(
      KeyPredicate keep = nullptr, uint32_t keep_arg = 0) const;

  /// Inserts `entries` in order (each becoming most recently used, so an
  /// LRU-to-MRU export replays with recency intact), evicting to budget as
  /// usual. Counts neither hits nor misses. Returns the number of imported
  /// entries still resident after the import (0 when the cache is
  /// disabled; smaller than entries.size() when this cache's budget
  /// evicted some). The cross-snapshot carry-over path: the new snapshot's
  /// engine imports the predecessor's provably still-valid entries instead
  /// of starting cold.
  size_t ImportEntries(std::vector<QueryCacheEntry> entries);

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  /// Entries currently stored as tombstones (<= size()).
  size_t tombstones() const { return tombstones_; }
  /// Current / maximum weight in budget units.
  size_t weight_used() const { return weight_used_; }
  size_t weight_capacity() const { return capacity_ * kOutcomeWeight; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  /// nullopt payload = tombstone.
  using Entry = std::pair<QueryCacheKey, std::optional<RunOutcome>>;

  static size_t WeightOf(const Entry& entry) {
    return entry.second.has_value() ? kOutcomeWeight : 1;
  }

  /// Shared insert/refresh: promotes an existing entry (upgrading a
  /// tombstone when a full outcome arrives), else evicts to fit and
  /// prepends.
  void InsertEntry(const QueryCacheKey& key,
                   std::optional<RunOutcome> payload);

  size_t capacity_;
  size_t weight_used_ = 0;
  size_t tombstones_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<QueryCacheKey, std::list<Entry>::iterator,
                     QueryCacheKeyHasher>
      map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// Hash-striped concurrent cache: N independently-locked QueryCache
/// stripes, keyed by QueryCacheKeyHasher(k, range) — the serving layer's
/// de-contended memo. Concurrent lookups and inserts on different stripes
/// never serialize against each other; the old single-mutex arrangement
/// funneled every cache touch of every worker through one lock.
///
/// Semantics relative to one QueryCache of the same capacity:
///  * `capacity` keeps its meaning — total full outcomes across all
///    stripes; the weight budget is split evenly per stripe (remainder
///    round-robin), so total weight_capacity() is identical and
///    weight_used() can never exceed it. Capacity 0 disables caching.
///  * A given key always lands on the same stripe, so lookup/insert/
///    tombstone-upgrade semantics per key are exactly QueryCache's.
///  * Eviction is per-stripe LRU — an approximation of the global LRU
///    order whose victims may differ, never the budget.
///  * Counters (hits/misses/evictions/size/weight) are exact per stripe
///    and summed on read; a snapshot taken under concurrency may tear
///    *across* stripes but each stripe's contribution is coherent, and
///    quiescent reads are exact.
///
/// The number of stripes is capped by the capacity (a stripe with a zero
/// budget could never hold anything) and clamped to at least 1.
class StripedQueryCache {
 public:
  static constexpr size_t kDefaultStripes = 16;

  explicit StripedQueryCache(size_t capacity,
                             size_t stripes = kDefaultStripes);

  /// True iff caching is enabled (capacity > 0) — the cheap guard serving
  /// paths check before paying a stripe lock.
  bool enabled() const { return capacity_ > 0; }

  bool Lookup(const Query& query, RunOutcome* out);
  void Insert(const Query& query, const RunOutcome& outcome);
  void InsertTombstone(const Query& query);
  void Clear();

  /// Per-stripe LRU-to-MRU exports, concatenated in stripe order. Global
  /// recency across stripes is not tracked; re-importing preserves each
  /// stripe's relative recency, which is what carry-over needs.
  std::vector<QueryCacheEntry> ExportLruToMru(
      QueryCache::KeyPredicate keep = nullptr, uint32_t keep_arg = 0) const;

  /// Routes each entry to its stripe and imports per stripe in order;
  /// returns the total number of imported entries still resident.
  size_t ImportEntries(std::vector<QueryCacheEntry> entries);

  size_t capacity() const { return capacity_; }
  size_t num_stripes() const { return stripes_.size(); }
  size_t size() const;
  size_t tombstones() const;
  size_t weight_used() const;
  size_t weight_capacity() const {
    return capacity_ * QueryCache::kOutcomeWeight;
  }
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  /// One stripe: its lock and its share of the budget. Heap-allocated so
  /// the mutex address is stable and stripes do not false-share. The
  /// unsynchronized QueryCache is reachable only through this struct, and
  /// the guard annotation makes every access prove it holds `mu` —
  /// the per-stripe locking contract the comments used to carry.
  struct Stripe {
    explicit Stripe(size_t cap) : cache(cap) {}
    mutable Mutex mu;
    QueryCache cache TKC_GUARDED_BY(mu);
  };

  size_t StripeOf(const QueryCacheKey& key) const {
    return QueryCacheKeyHasher{}(key) % stripes_.size();
  }

  size_t capacity_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace tkc

#endif  // TKC_SERVE_QUERY_CACHE_H_
