#ifndef TKC_SERVE_QUERY_CACHE_H_
#define TKC_SERVE_QUERY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/hash.h"
#include "workload/query_workload.h"

/// \file query_cache.h
/// Bounded LRU memoization of query outcomes for the serving layer: the
/// result fields of a time-range k-core query are a pure function of
/// (graph, k, range), so a QueryEngine that owns one immutable graph can
/// replay them for repeated queries instead of rebuilding the VCT/ECS.
///
/// The cache is deliberately *not* internally synchronized — QueryEngine
/// guards it with its own mutex so lookup-miss-insert sequences and the
/// hit/eviction counters stay coherent under concurrent batches. Use it
/// directly only from one thread.

namespace tkc {

/// Identity of a cacheable query: the cohesion parameter and the range.
struct QueryCacheKey {
  uint32_t k = 0;
  Window range{0, 0};

  friend bool operator==(const QueryCacheKey& a, const QueryCacheKey& b) {
    return a.k == b.k && a.range == b.range;
  }
};

struct QueryCacheKeyHasher {
  size_t operator()(const QueryCacheKey& key) const {
    uint64_t h = HashU64(key.k);
    h = HashCombine(h, key.range.start);
    h = HashCombine(h, key.range.end);
    return static_cast<size_t>(h);
  }
};

/// Fixed-capacity LRU map from (k, range) to a completed RunOutcome.
/// Capacity 0 disables the cache (every Lookup misses, Insert is a no-op).
class QueryCache {
 public:
  explicit QueryCache(size_t capacity);

  /// On hit, copies the stored outcome into `*out` (which must be non-null),
  /// promotes the entry to most-recently-used, and returns true. Counts a
  /// hit or a miss either way.
  bool Lookup(const Query& query, RunOutcome* out);

  /// Inserts (or refreshes) the outcome for `query`, evicting the least
  /// recently used entry when at capacity. Callers should only insert
  /// outcomes whose status is OK — a failed run (timeout, bad input) is not
  /// a property of the query alone.
  void Insert(const Query& query, const RunOutcome& outcome);

  void Clear();

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  using Entry = std::pair<QueryCacheKey, RunOutcome>;

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<QueryCacheKey, std::list<Entry>::iterator,
                     QueryCacheKeyHasher>
      map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace tkc

#endif  // TKC_SERVE_QUERY_CACHE_H_
