#ifndef TKC_SERVE_QUERY_ENGINE_H_
#define TKC_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "serve/query_cache.h"
#include "util/mpsc_queue.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "vct/phc_index.h"
#include "workload/query_workload.h"

/// \file query_engine.h
/// The batch query-serving engine: a long-lived object that owns one
/// immutable temporal graph plus read-only serving state, accepts batches of
/// time-range k-core queries, and fans them out over a ThreadPool. It turns
/// the repo's per-call measurement harness (RunAlgorithm) into a server-
/// shaped subsystem:
///
///  * **Sharding.** ServeBatch shards the batch dynamically across the
///    pool's workers; every query touches the graph read-only, so batches
///    are embarrassingly parallel and callable concurrently from any number
///    of client threads.
///  * **Zero steady-state allocation.** Each in-flight query checks a
///    VctBuildArena out of an internal free list (growing only to the peak
///    concurrency ever observed) so the CoreTime phase recycles all scratch.
///  * **Admission index.** At construction the engine can build a full PHC
///    index (all k-slices) over the graph's time span, replicated
///    `num_index_replicas` times for NUMA-friendly read paths, and derive a
///    per-k *core-emergence table*: min over vertices of CT_ts(u) for every
///    start ts. A query whose range provably contains no temporal k-core
///    (k beyond the global kmax, or emergence after the range end) is then
///    answered in O(1) with the exact empty outcome the full pipeline would
///    produce — no build, no allocation.
///  * **Memoization.** Completed outcomes are stored in a bounded LRU
///    (serve/query_cache.h) keyed by (k, range), so repeated-query
///    workloads are served at lookup cost; admission rejections are stored
///    as compact tombstones (1/16th of a full slot). The LRU is
///    hash-striped (StripedQueryCache): concurrent workers touching
///    different keys never serialize on a single cache lock, and every
///    serve counter is a relaxed atomic aggregated on read — the only
///    engine-wide mutex left on the hot path guards the arena free list.
///  * **Async submission.** SubmitAsync enqueues a batch on a bounded MPSC
///    request queue and returns immediately with a std::future (or routes
///    the finished BatchResult to a caller-owned BatchCompletionQueue): a
///    pool-resident dispatcher drains the queue and fans each batch's
///    distinct misses out as individual pool tasks, so clients keep
///    issuing while earlier batches run and no pool worker ever blocks on
///    a batch barrier. An unlimited-deadline submission blocks on a full
///    request queue (legacy backpressure). On a 1-thread pool the whole
///    path degenerates to synchronous inline execution, trivially
///    deterministic.
///  * **Deadline-aware admission & shedding.** Every submission may carry a
///    Deadline. An already-expired batch is dropped (every outcome
///    `Status::Timeout`) at submission or dispatch instead of executing,
///    and a finite-deadline submission never blocks on a full request
///    queue: the queued batch with the least remaining deadline is shed
///    with `Status::ResourceExhausted` — either a queued batch is evicted
///    to make room, or the incoming batch itself loses the contest — so
///    callers always get an answer in bounded time. Unlimited-deadline
///    batches are never evicted.
///
/// Determinism contract: the *result* fields of a served outcome (status
/// code, num_cores, result_size_edges, vct_size, ecs_size) are bit-identical
/// to a serial RunAlgorithm call at any thread count, batch split, cache
/// state, or admission path. The *execution* fields (seconds,
/// coretime_seconds, peak_memory_bytes) describe how this engine produced
/// the answer — a cache hit reports the lookup-time outcome of the original
/// run, an admission rejection reports ~0 cost — and are not comparable
/// across paths.

namespace tkc {

struct VctBuildArena;  // vct/vct_builder.h
class QueryEngine;

/// Construction-time configuration of a QueryEngine.
struct QueryEngineOptions {
  /// Algorithm every query is served with (the paper's Enum by default).
  AlgorithmKind algorithm = AlgorithmKind::kEnum;

  /// Pool the batches shard over; nullptr uses ThreadPool::Shared(). A
  /// 1-thread pool serves batches serially on the calling thread.
  ThreadPool* pool = nullptr;

  /// Pool the construction-time PHC index build (or the live layer's
  /// delta-aware Rebuild) fans out over; nullptr falls back to `pool`.
  /// The live-update layer points this at a dedicated update pool so a
  /// rebuild never steals the serving pool's workers out from under
  /// in-flight batches — the contention that collapsed during-update
  /// throughput at low thread counts.
  ThreadPool* index_build_pool = nullptr;

  /// LRU capacity of the (k, range) -> outcome memo; 0 disables caching.
  size_t cache_capacity = 1024;

  /// Lock stripes of the query cache (see StripedQueryCache): concurrent
  /// batches touching different stripes never serialize on the memo. 0
  /// takes the default; 1 degenerates to a single globally-LRU cache —
  /// exact single-lock semantics for tests and measurement.
  size_t cache_stripes = 0;

  /// Recycle VctBuildArena scratch across queries (zero steady-state
  /// allocation). Off, every query builds with fresh scratch — the mode the
  /// memory figures need, where a query's reported peak must be its own
  /// working set rather than an arena high-water mark.
  bool reuse_arenas = true;

  /// Collapse duplicate queries inside one ServeBatch call: each distinct
  /// (k, range) executes once and every duplicate gets a copy of its
  /// outcome, deterministically at any thread count. Off for measurement
  /// paths, where every submitted query must execute.
  bool dedup_batches = true;

  /// Per-query deadline applied by Serve/ServeBatch unless the call
  /// overrides it; <= 0 means unlimited.
  double per_query_limit_seconds = 0;

  /// Build the PHC admission index (and emergence tables) at construction.
  /// Costs one full multi-k index build up front; pays for itself on
  /// workloads with empty-result queries. Off for pure measurement paths.
  bool build_index = false;

  /// Cap on the admission index's largest k-slice (0 = the span's kmax).
  /// Rejection stays exact under a cap: a query with k <= the built max_k
  /// uses its emergence table, and a query with k beyond it is rejected
  /// only when the index is provably complete — the cap was never reached
  /// (span kmax < cap, or no cap). When the cap bites (built max_k ==
  /// cap), beyond-cap queries cannot be proven empty and execute the full
  /// pipeline.
  uint32_t index_max_k = 0;

  /// Read-path replicas of the admission index (>= 1). Point-lookup APIs
  /// round-robin across replicas. Since PhcIndex slices moved behind
  /// shared_ptr (so snapshots can share them across live-update rebuilds),
  /// replicas alias the same slice storage — the round-robin only spreads
  /// the top-level index objects, not the slice allocations, so this no
  /// longer buys socket-local reads. Kept for API stability; a future
  /// deep-copy mode could restore NUMA replication where it matters.
  int num_index_replicas = 1;

  /// Bound of the async submission queue: at most this many batches wait
  /// for dispatch; further SubmitAsync calls block until room frees up
  /// (producer backpressure, never an unbounded backlog).
  size_t async_queue_capacity = 256;

  /// Serve the admission index from this prebuilt PHC index (typically
  /// LoadPhcIndex from vct/index_io.h) instead of building one at
  /// construction — the persist/load path that amortizes engine start-up.
  /// Implies build_index; must cover the graph's FullRange() and vertex
  /// count. Copied into the engine; only read during Create.
  const PhcIndex* preloaded_index = nullptr;

  /// Engine to copy per-k core-emergence tables from instead of
  /// recomputing them: a slice of this engine's index that is the *same
  /// object* (shared_ptr identity) as the source's slice k has, by
  /// construction, an identical emergence table — the table is a pure
  /// function of the slice. The live-update layer points this at the
  /// predecessor snapshot's engine so slices PhcIndex::Rebuild carried by
  /// pointer stop paying the emergence sweep again. Only read during
  /// Create; must outlive it.
  const QueryEngine* emergence_source = nullptr;

  /// Recomputed start bands of the preloaded index's suffix-stitched
  /// slices (PhcRebuildStats::suffix_bands from the *same* Rebuild that
  /// produced preloaded_index against emergence_source's index). For each
  /// banded slice the engine copies the source's emergence table and
  /// re-sweeps only the band — everything outside it is provably
  /// unchanged — instead of paying the full per-k sweep. Requires
  /// emergence_source; only read during Create; must outlive it.
  const std::vector<PhcRebuildStats::SuffixBand>* emergence_bands = nullptr;
};

/// The completed answer to one asynchronously submitted batch.
struct BatchResult {
  std::vector<RunOutcome> outcomes;  ///< outcomes[i] answers queries[i]
  /// Version of the graph snapshot the batch executed against — 0 from a
  /// plain QueryEngine, the pinned snapshot's version from a
  /// LiveQueryEngine (serve/snapshot.h).
  uint64_t snapshot_version = 0;
  /// Caller-chosen correlation tag (completion-queue submissions only).
  uint64_t tag = 0;
};

/// A caller-owned queue of finished batches — the completion-queue flavor
/// of async submission for event-loop-shaped clients that multiplex many
/// in-flight batches without holding futures. The engine pushes each
/// finished BatchResult (stamped with the submission's tag); the client
/// pops with Next/TryNext. Bounded: a slow consumer eventually blocks the
/// pool workers delivering completions, which is the intended backpressure.
class BatchCompletionQueue {
 public:
  explicit BatchCompletionQueue(size_t capacity = 1024) : queue_(capacity) {}

  /// Destruction shuts down first, so a queue dying under a slow consumer
  /// cannot be freed while an engine-side Deliver still touches it.
  ~BatchCompletionQueue() { Shutdown(); }

  /// Blocks for the next finished batch; false once Shutdown() was called
  /// and every delivered batch has been popped.
  bool Next(BatchResult* out) { return queue_.Pop(out); }

  /// Non-blocking variant; false when nothing is ready right now.
  bool TryNext(BatchResult* out) { return queue_.TryPop(out); }

  /// Unblocks every Deliver stuck on a full queue (its result is dropped),
  /// waits for in-flight deliveries to leave the queue, then wakes blocked
  /// consumers once the delivered backlog drains. After Shutdown returns no
  /// engine-side Deliver touches this object, so destroying it is safe even
  /// if a consumer stalled while batches were still completing. Idempotent.
  void Shutdown() TKC_EXCLUDES(mu_) {
    queue_.Close();
    MutexLock lock(mu_);
    while (delivering_ != 0) idle_.Wait(mu_);
  }

  size_t pending() const { return queue_.size(); }

  /// Engine-side delivery (blocks while the queue is full; unblocked — with
  /// the result dropped — by Shutdown()). Two scoped acquisitions bracket
  /// the potentially-blocking Push, which must not run under the mutex (it
  /// would deadlock Shutdown's wait against a full queue).
  void Deliver(BatchResult result) TKC_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      ++delivering_;
    }
    queue_.Push(std::move(result));
    MutexLock lock(mu_);
    // Notify under the mutex: a Shutdown() waiter may destroy this object
    // the instant it observes delivering_ == 0.
    if (--delivering_ == 0) idle_.NotifyAll();
  }

 private:
  BoundedMpscQueue<BatchResult> queue_;
  Mutex mu_;
  CondVar idle_;
  size_t delivering_ TKC_GUARDED_BY(mu_) = 0;
};

/// Monotone counters describing everything an engine has served.
struct ServeStats {
  uint64_t batches = 0;          ///< ServeBatch calls (Serve counts as 1)
  uint64_t queries_served = 0;   ///< total queries answered
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;     ///< lookups that fell through (cache on)
  uint64_t cache_evictions = 0;
  uint64_t index_rejections = 0;  ///< answered empty from the admission index
  uint64_t batch_dedup_hits = 0;  ///< served as in-batch duplicates
  uint64_t executed = 0;          ///< ran the full algorithm
  uint64_t async_batches = 0;     ///< batches that arrived via SubmitAsync
  /// Batches shed with ResourceExhausted by the full-queue eviction contest
  /// (the evicted queued batch or the rejected incoming one, one per event).
  uint64_t batches_shed = 0;
  /// Submissions dropped whole with Timeout because their deadline had
  /// already expired (at submission, at dispatch, or at a deadline-carrying
  /// Serve entry point). A deadline expiring mid-execution surfaces as a
  /// Timeout outcome but is not counted here.
  uint64_t deadlines_expired = 0;
};

class QueryEngine {
 public:
  /// Validates options and builds the serving state. `g` must outlive the
  /// engine and must not be mutated while it serves.
  [[nodiscard]] static StatusOr<QueryEngine> Create(
      const TemporalGraph& g, const QueryEngineOptions& options = {});

  ~QueryEngine();
  QueryEngine(QueryEngine&&) noexcept;
  QueryEngine& operator=(QueryEngine&&) noexcept;
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Serves one query on the calling thread (cache -> admission -> run).
  RunOutcome Serve(const Query& query);

  /// As Serve with an explicit per-query deadline (<= 0 = unlimited),
  /// overriding options.per_query_limit_seconds.
  RunOutcome Serve(const Query& query, double per_query_limit_seconds);

  /// As Serve, bounded by an absolute deadline: an already-expired deadline
  /// returns `Status::Timeout` immediately — before the cache or the
  /// admission index is touched — and an unexpired one caps the execution
  /// (combined with options.per_query_limit_seconds, whichever is earlier).
  RunOutcome ServeWithDeadline(const Query& query, const Deadline& deadline);

  /// Serves a batch: cache hits are answered inline in one pre-scan,
  /// duplicate queries collapse to a single execution (dedup_batches), and
  /// only the distinct misses shard over the pool. outcome[i] answers
  /// queries[i]. Thread-safe: any number of threads may submit batches
  /// concurrently.
  std::vector<RunOutcome> ServeBatch(const std::vector<Query>& queries);
  std::vector<RunOutcome> ServeBatch(const std::vector<Query>& queries,
                                     double per_query_limit_seconds);

  /// As ServeBatch, bounded by an absolute deadline: expired at entry, the
  /// whole batch returns `Status::Timeout` outcomes without executing;
  /// expiring mid-batch, the not-yet-run leaders return Timeout outcomes.
  std::vector<RunOutcome> ServeBatch(const std::vector<Query>& queries,
                                     const Deadline& deadline);

  // --- async submission --------------------------------------------------
  //
  // Lifetime contract: the engine must not be moved or destroyed while
  // async batches are in flight; the destructor (and DrainAsync) blocks
  // until every accepted batch has delivered its result. The serving pool
  // must outlive the drain.

  /// Enqueues the batch on the bounded request queue and returns a future
  /// for its result. Blocks only when the request queue is full. Any
  /// number of threads may submit concurrently; batches dispatch FIFO but
  /// complete in any order (later batches overlap earlier ones).
  std::future<BatchResult> SubmitAsync(std::vector<Query> queries);

  /// Deadline-carrying flavor: never blocks on a full queue (see the shed
  /// policy in the file comment). The future always settles — with served
  /// outcomes, all-`Timeout` outcomes (deadline expired before execution),
  /// or all-`ResourceExhausted` outcomes (shed by the eviction contest).
  std::future<BatchResult> SubmitAsync(std::vector<Query> queries,
                                       const Deadline& deadline);

  /// As above, delivering the finished result (stamped with `tag`) to `cq`
  /// instead of a future. `cq` must outlive the delivery (DrainAsync
  /// before destroying it).
  void SubmitAsync(std::vector<Query> queries, BatchCompletionQueue* cq,
                   uint64_t tag);
  void SubmitAsync(std::vector<Query> queries, BatchCompletionQueue* cq,
                   uint64_t tag, const Deadline& deadline);

  /// The primitive under both flavors: `on_done` runs exactly once — on a
  /// pool thread, inline on a 1-thread pool, or on the submitter's thread
  /// when the batch is dropped at submission — when the batch completes.
  /// The live-update layer (serve/snapshot.h) uses it to stamp snapshot
  /// versions; it passes the snapshot pin as `lifetime` so the batch's
  /// tasks keep the snapshot (and this engine) alive until they are done
  /// with it.
  void SubmitAsyncWithCallback(std::vector<Query> queries,
                               std::function<void(BatchResult&&)> on_done,
                               std::shared_ptr<const void> lifetime = nullptr);
  void SubmitAsyncWithCallback(std::vector<Query> queries,
                               const Deadline& deadline,
                               std::function<void(BatchResult&&)> on_done,
                               std::shared_ptr<const void> lifetime = nullptr);

  /// Owner-installed keep-alive for the engine's internal async tasks.
  /// Every dispatcher task locks this guard for its whole run, and batch
  /// tasks hold their submission's `lifetime`; each task releases its
  /// drain ticket *before* dropping its pin. Net effect: when the last pin
  /// disappears — possibly on a pool thread — no ticket is outstanding, so
  /// the destructor's drain returns without blocking and destroying an
  /// owner (e.g. a GraphSnapshot) from inside one of this engine's own
  /// pool tasks cannot deadlock on itself. Must be set before the first
  /// SubmitAsync; unset (plain engines), the caller simply must not
  /// destroy the engine from inside one of its own tasks.
  void SetLifetimeGuard(std::weak_ptr<const void> guard);

  /// Blocks until every batch accepted by SubmitAsync has delivered.
  void DrainAsync();

  /// Snapshot of the cumulative serving counters.
  ServeStats stats() const;

  /// Drops every memoized outcome (counters are kept).
  void ClearCache();

  /// Cross-snapshot cache carry-over (serve/snapshot.h): seeds this
  /// engine's memo with `prev`'s entries whose k the caller has proven
  /// unaffected by the graph delta separating the two engines' graphs —
  /// entries with k > clean_above_k carry (0 carries everything; see
  /// PhcRebuildStats::clean_above_k). Per-stripe relative recency is
  /// preserved. Returns the number of entries carried; 0 when either cache
  /// is disabled. Call before this engine starts serving (it locks each
  /// cache stripe in turn, prev's first).
  uint64_t CarryOverCacheFrom(const QueryEngine& prev,
                              uint32_t clean_above_k);

  /// The admission index replica `i` (0 <= i < num_index_replicas), or
  /// nullptr when the engine was built with build_index = false.
  const PhcIndex* index(int replica = 0) const;

  /// True iff at least one temporal k-core exists inside `range`, answered
  /// in O(1) from the emergence table. Requires build_index and a valid
  /// range inside the graph's span; falls back to `true` (unknown) when the
  /// table cannot prove emptiness (e.g. k above a capped index).
  bool MayContainCore(uint32_t k, Window range) const;

  /// True iff u is in the k-core of `window`, answered from a round-robin
  /// index replica. Requires build_index and k <= the built max_k.
  bool VertexInCore(VertexId u, Window window, uint32_t k) const;

  /// The per-k core-emergence table (min over vertices of CT_ts(u), indexed
  /// by ts - range.start), or an empty span when there is no admission
  /// index or k is out of range. Exposed so the differential harness can
  /// prove carried tables bit-identical to freshly computed ones.
  std::span<const Timestamp> EmergenceTable(uint32_t k) const;

  /// Computes the emergence table of one slice from scratch — the exact
  /// function Create runs per slice when no table carries over.
  static std::vector<Timestamp> ComputeEmergenceTable(
      const VertexCoreTimeIndex& slice);

  /// Emergence tables copied from options.emergence_source at construction
  /// instead of recomputed (0 without a source or an index).
  uint64_t emergence_tables_carried() const {
    return emergence_tables_carried_;
  }

  /// Emergence tables maintained incrementally at construction — copied
  /// from the source and re-swept only over the suffix-stitched band
  /// (options.emergence_bands) instead of the full per-k sweep.
  uint64_t emergence_tables_stitched() const {
    return emergence_tables_stitched_;
  }

  AlgorithmKind algorithm() const { return options_.algorithm; }
  int num_threads() const { return pool_->num_threads(); }

 private:
  template <typename T>
  friend class StatusOr;  // needs the inert default state below

  /// Inert engine (no graph, no pool) — only the empty slot inside a
  /// StatusOr before a real engine is moved in. Never served from.
  QueryEngine() = default;

  QueryEngine(const TemporalGraph& g, const QueryEngineOptions& options);

  [[nodiscard]] Status BuildAdmissionIndex();
  /// Derives emergence tables and read-path replicas from a built index.
  void InstallAdmissionIndex(PhcIndex index);
  RunOutcome ServeOne(const Query& query, double limit_seconds,
                      const Deadline& deadline = Deadline());

  /// The post-cache-miss path: admission check, algorithm execution, cache
  /// insert, counter updates. `batch_deadline` caps the execution together
  /// with `limit_seconds` (whichever is earlier); expired on entry, the
  /// query returns a Timeout outcome without running.
  RunOutcome ExecuteUncached(const Query& query, double limit_seconds,
                             const Deadline& batch_deadline = Deadline());

  /// Checks an arena out of the free list (allocating only when every
  /// existing arena is in flight) and returns it on destruction.
  class ArenaLease;

  /// One locked pre-scan over a batch: cache hits answered inline into
  /// `outcomes`, remaining distinct misses grouped into leaders (first
  /// occurrence) and followers (in-batch duplicates).
  struct BatchPlan {
    std::vector<size_t> leaders;
    std::vector<std::vector<size_t>> followers;
  };
  BatchPlan PreScanBatch(const std::vector<Query>& queries,
                         std::vector<RunOutcome>* outcomes);
  /// Copies each leader's outcome to its followers and settles counters.
  void FanOutFollowers(const BatchPlan& plan,
                       std::vector<RunOutcome>* outcomes);

  // Async machinery (defined in query_engine.cc).
  struct AsyncBatch;       ///< one queued submission
  struct AsyncBatchState;  ///< one dispatched batch's shared in-flight state
  struct AsyncState;       ///< queue + dispatcher + drain bookkeeping
  void ScheduleDispatcher();
  void DispatchAsyncBatches();
  void ProcessAsyncBatch(AsyncBatch batch);
  void FinalizeAsyncBatch(const std::shared_ptr<AsyncBatchState>& state);
  void FinishInflight();
  /// Settles a dropped batch: every outcome gets `status`, the completion
  /// callback runs, and the batch's inflight ticket is released.
  void CompleteAsyncBatch(AsyncBatch&& batch, const Status& status);

  const TemporalGraph* graph_ = nullptr;
  QueryEngineOptions options_;
  ThreadPool* pool_ = nullptr;

  /// Admission state (immutable after Create).
  std::vector<PhcIndex> replicas_;
  bool index_complete_ = false;  ///< replicas cover every k up to true kmax
  /// emergence_[k-1][ts - 1]: min over u of CT_ts(u) for slice k, i.e. the
  /// earliest end time at which a k-core exists for start ts (kInfTime when
  /// none). Non-decreasing in ts.
  std::vector<std::vector<Timestamp>> emergence_;
  uint64_t emergence_tables_carried_ = 0;
  uint64_t emergence_tables_stitched_ = 0;
  mutable std::unique_ptr<std::atomic<uint64_t>> replica_rr_;

  /// Relaxed-atomic mirrors of ServeStats, bumped lock-free on the hot
  /// path and aggregated by stats(). Monotone counters need no ordering —
  /// a reader sees some interleaving-consistent prefix of each.
  struct AtomicServeStats;

  /// Serving state. The cache stripes its own locks; the only engine-wide
  /// mutex left guards the arena free list (a short push/pop). The list
  /// lives with its mutex in one heap struct (ArenaPool, defined in
  /// query_engine.cc) so the mutex address is stable across engine moves
  /// and the guard relation is a single annotated object for the
  /// thread-safety analysis.
  std::unique_ptr<StripedQueryCache> cache_;
  struct ArenaPool;
  std::unique_ptr<ArenaPool> arenas_;
  std::unique_ptr<AtomicServeStats> stats_;

  /// Async submission state (request queue, dispatcher flag, drain cv).
  std::unique_ptr<AsyncState> async_;
  std::weak_ptr<const void> lifetime_guard_;
};

}  // namespace tkc

#endif  // TKC_SERVE_QUERY_ENGINE_H_
