#include "datasets/registry.h"

#include <algorithm>
#include <cmath>

namespace tkc {

namespace {

// One row of the scaled-down Table III. Vertex / edge / timestamp counts are
// ~1/100 of the paper's (Table III in DESIGN.md §3); pa_alpha is tuned per
// density regime so kmax lands in the tens like the originals.
struct RegistryRow {
  const char* name;
  uint32_t vertices;
  uint32_t edges;
  uint32_t timestamps;  // ~edges for the "all distinct" regime
  double pa_alpha;
  double burstiness;
  double repeat_prob;  // recurring-interaction fraction
};

// Regimes: FB..WT keep tmax == edges (every edge a fresh timestamp); WK,
// PL, YT keep the original edges-per-timestamp ratio (~540, ~2700, ~46000
// in the paper; here the same order of compression).
constexpr RegistryRow kRows[] = {
    // name   |V|     |E|     tmax    alpha  burst
    {"FB",    90,     3400,   3400,   0.80,  0.20,  0.35},
    {"BO",    590,    3600,   3600,   0.72,  0.18,  0.30},
    {"CM",    190,    6000,   6000,   0.80,  0.30,  0.60},
    {"EM",    450,    33000,  21000,  0.55,  0.15,  0.85},
    {"MC",    710,    41000,  35000,  0.82,  0.15,  0.60},
    {"MO",    2480,   51000,  51000,  0.84,  0.12,  0.40},
    {"AU",    15900,  96000,  96000,  0.80,  0.10,  0.30},
    {"LR",    6340,   110000, 88000,  0.86,  0.12,  0.55},
    {"EN",    8730,   115000, 22000,  0.80,  0.12,  0.60},
    {"SU",    19400,  144000, 143000, 0.82,  0.10,  0.30},
    {"WT",    121900, 228000, 195000, 0.84,  0.10,  0.30},
    {"WK",    9130,   244000, 450,    0.84,  0.10,  0.45},
    {"PL",    8930,   340000, 126,    0.82,  0.08,  0.50},
    {"YT",    322300, 937000, 20,     0.80,  0.05,  0.30},
};

SyntheticSpec SpecFromRow(const RegistryRow& row, double scale) {
  SyntheticSpec spec;
  spec.name = row.name;
  auto scaled = [&](uint32_t v, uint32_t floor_value) {
    return std::max<uint32_t>(
        floor_value, static_cast<uint32_t>(std::llround(v * scale)));
  };
  spec.num_vertices = scaled(row.vertices, 20);
  spec.num_edges = scaled(row.edges, 100);
  spec.num_timestamps = scaled(row.timestamps, 10);
  spec.pa_alpha = row.pa_alpha;
  spec.burstiness = row.burstiness;
  spec.repeat_prob = row.repeat_prob;
  spec.burst_group = 12;
  spec.burst_span = std::max<uint32_t>(2, spec.num_timestamps / 400);
  // Deterministic per-dataset seed.
  spec.seed = 0x7c3 + static_cast<uint64_t>(row.name[0]) * 131 +
              static_cast<uint64_t>(row.name[1]);
  return spec;
}

}  // namespace

std::vector<SyntheticSpec> TableIIISpecs(double scale) {
  std::vector<SyntheticSpec> specs;
  specs.reserve(std::size(kRows));
  for (const RegistryRow& row : kRows) {
    specs.push_back(SpecFromRow(row, scale));
  }
  return specs;
}

StatusOr<SyntheticSpec> SpecByName(const std::string& name, double scale) {
  for (const RegistryRow& row : kRows) {
    if (name == row.name) return SpecFromRow(row, scale);
  }
  return Status::NotFound("unknown dataset '" + name +
                          "' (expected one of FB BO CM EM MC MO AU LR EN SU "
                          "WT WK PL YT)");
}

StatusOr<TemporalGraph> GenerateByName(const std::string& name, double scale) {
  auto spec = SpecByName(name, scale);
  if (!spec.ok()) return spec.status();
  return GenerateSynthetic(*spec);
}

std::vector<std::string> SweepDatasetNames() { return {"CM", "EM", "WT", "PL"}; }

}  // namespace tkc
