#ifndef TKC_DATASETS_GENERATORS_H_
#define TKC_DATASETS_GENERATORS_H_

#include <cstdint>
#include <string>

#include "graph/temporal_graph.h"
#include "util/rng.h"

/// \file generators.h
/// Synthetic temporal graph generators. The paper evaluates on SNAP/KONECT
/// datasets that are not available offline, so the benchmark suite runs on
/// generated stand-ins that preserve the characteristics the algorithms are
/// sensitive to: edge/vertex ratio (core density and kmax), number of
/// distinct timestamps relative to edge count (tmax ≈ |E| vs tmax ≪ |E|),
/// and temporal burstiness (dense short-lived cores, the motivation
/// scenarios of the paper's introduction). Every generator is deterministic
/// in its seed.

namespace tkc {

/// Parameters of the activity-driven preferential-attachment generator.
struct SyntheticSpec {
  std::string name;            ///< short label, e.g. "CM"
  uint32_t num_vertices = 0;   ///< vertex pool size
  uint32_t num_edges = 0;      ///< temporal edges to generate
  /// Distinct raw timestamps to spread edges over. num_edges means "every
  /// edge gets its own timestamp" (tmax ≈ |E| datasets); small values model
  /// the WK/PL/YT regime (many edges per timestamp).
  uint32_t num_timestamps = 0;
  /// Probability that an endpoint is drawn from the degree-biased pool
  /// (preferential attachment) rather than uniformly. Higher -> denser
  /// core, larger kmax.
  double pa_alpha = 0.75;
  /// Probability that an edge repeats a previously emitted pair at the
  /// current time (recurring interactions — the dominant pattern of real
  /// communication datasets). Repetition keeps the distinct-pair graph
  /// small relative to |E|, so windowed cores stay close to the global
  /// kmax like the paper's datasets.
  double repeat_prob = 0.30;
  /// Fraction of edges emitted inside community bursts: a random group of
  /// vertices interacting densely within a short time interval. Bursts
  /// plant exactly the fleeting cohesive subgraphs the paper's intro
  /// motivates (misinformation bursts, outbreak clusters).
  double burstiness = 0.15;
  /// Vertices per burst group.
  uint32_t burst_group = 12;
  /// Consecutive timestamps per burst.
  uint32_t burst_span = 16;
  uint64_t seed = 1;
};

/// Generates a temporal graph per `spec`. CHECK-fails on degenerate specs
/// (fewer than 4 vertices, zero edges).
TemporalGraph GenerateSynthetic(const SyntheticSpec& spec);

/// Uniform-random temporal multigraph: endpoints uniform, times uniform in
/// [1, num_timestamps]. The workhorse of randomized property tests.
TemporalGraph GenerateUniformRandom(uint32_t num_vertices, uint32_t num_edges,
                                    uint32_t num_timestamps, uint64_t seed);

/// A graph with one planted clique: `clique_size` vertices pairwise
/// connected within [window.start, window.end] (each pair once at a random
/// time inside the window), plus `noise_edges` uniform background edges.
/// Used by tests that need a known temporal k-core.
TemporalGraph GeneratePlantedClique(uint32_t num_vertices,
                                    uint32_t clique_size, Window window,
                                    uint32_t num_timestamps,
                                    uint32_t noise_edges, uint64_t seed);

/// The 9-vertex, 14-edge temporal graph of the paper's Figure 1 (vertex ids
/// 1..9 match v1..v9; timestamps 1..7). Ground truth for Tables I/II and
/// Figure 2 lives in tests/paper_example_test.cc.
TemporalGraph PaperExampleGraph();

}  // namespace tkc

#endif  // TKC_DATASETS_GENERATORS_H_
