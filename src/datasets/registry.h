#ifndef TKC_DATASETS_REGISTRY_H_
#define TKC_DATASETS_REGISTRY_H_

#include <string>
#include <vector>

#include "datasets/generators.h"
#include "graph/temporal_graph.h"
#include "util/status.h"

/// \file registry.h
/// The benchmark dataset registry: fourteen synthetic stand-ins mirroring
/// the paper's Table III (FB, BO, CM, EM, MC, MO, AU, LR, EN, SU, WT, WK,
/// PL, YT), scaled down ~100x so the whole evaluation reruns on a laptop.
/// Each stand-in preserves its original's defining regime:
///   * |E|/|V| ratio (which drives core density / kmax),
///   * tmax relative to |E| — the axis the paper's analysis hinges on:
///     FB..WT have tmax ≈ |E| (every edge its own timestamp) while WK, PL
///     and YT have tmax ≪ |E| (hundreds to thousands of edges per
///     timestamp),
///   * burstiness, so that time-range queries contain temporal k-cores.
/// A global size multiplier (--scale / TKC_SCALE) rescales every dataset.

namespace tkc {

/// Returns the specs of all fourteen Table III stand-ins at `scale` (1.0 =
/// default laptop scale, ~0.01x of the paper's sizes).
std::vector<SyntheticSpec> TableIIISpecs(double scale = 1.0);

/// Returns the spec for one dataset by short name ("CM", "WT", ...).
[[nodiscard]] StatusOr<SyntheticSpec> SpecByName(const std::string& name,
                                   double scale = 1.0);

/// Generates the dataset by short name.
[[nodiscard]] StatusOr<TemporalGraph> GenerateByName(const std::string& name,
                                       double scale = 1.0);

/// The four datasets the paper's parameter sweeps use (Figures 7, 8, 10,
/// 11): CollegeMsg, Email, WikiTalk, ProsperLoans.
std::vector<std::string> SweepDatasetNames();

}  // namespace tkc

#endif  // TKC_DATASETS_REGISTRY_H_
