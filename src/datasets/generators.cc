#include "datasets/generators.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace tkc {

TemporalGraph GenerateSynthetic(const SyntheticSpec& spec) {
  TKC_CHECK_GE(spec.num_vertices, 4u);
  TKC_CHECK_GE(spec.num_edges, 1u);
  TKC_CHECK_GE(spec.num_timestamps, 1u);

  Rng rng(spec.seed);
  TemporalGraphBuilder builder;
  builder.SetDeduplicateExact(true);
  builder.EnsureVertexCount(spec.num_vertices);

  // Degree-biased endpoint pool (classic preferential-attachment trick:
  // every emitted endpoint is appended, so sampling the pool is sampling
  // proportional to degree).
  std::vector<VertexId> pool;
  pool.reserve(spec.num_edges * 2);
  // Emitted pairs, for recurring-interaction sampling.
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(spec.num_edges);

  auto pick_endpoint = [&]() -> VertexId {
    if (!pool.empty() && rng.NextBool(spec.pa_alpha)) {
      return pool[rng.NextBounded(pool.size())];
    }
    return static_cast<VertexId>(rng.NextBounded(spec.num_vertices));
  };

  // Raw time of the i-th generated edge: edges are spread over
  // [1, num_timestamps] in generation order (the graph "grows over time"),
  // matching how interaction datasets are collected.
  auto time_of = [&](uint32_t i) -> uint64_t {
    return 1 + static_cast<uint64_t>(i) * spec.num_timestamps /
                   std::max<uint32_t>(spec.num_edges, 1);
  };

  // A burst is a planted clique: `burst_group` random vertices pairwise
  // connected within `burst_span` consecutive timestamps, guaranteeing a
  // (group-1)-core confined to a short window — the fleeting cohesive
  // subgraphs (misinformation bursts, outbreak clusters) the paper's
  // motivating scenarios describe. The expected fraction of edges emitted
  // through bursts is `burstiness`.
  const uint32_t group = std::min<uint32_t>(
      std::max<uint32_t>(spec.burst_group, 3),
      std::max<uint32_t>(4, spec.num_vertices / 2));
  const uint32_t clique_edges = group * (group - 1) / 2;
  const double burst_open_prob =
      spec.burstiness > 0 ? spec.burstiness / clique_edges : 0.0;

  std::vector<VertexId> burst_members;
  uint32_t emitted = 0;
  while (emitted < spec.num_edges) {
    const uint64_t now = time_of(emitted);
    if (burst_open_prob > 0 && rng.NextBool(burst_open_prob) &&
        spec.num_edges - emitted > clique_edges) {
      // Emit a whole burst clique anchored at the current time.
      burst_members.clear();
      while (burst_members.size() < group) {
        VertexId v = static_cast<VertexId>(rng.NextBounded(spec.num_vertices));
        if (std::find(burst_members.begin(), burst_members.end(), v) ==
            burst_members.end()) {
          burst_members.push_back(v);
        }
      }
      const uint32_t span = std::max<uint32_t>(spec.burst_span, 1);
      for (size_t i = 0; i < burst_members.size(); ++i) {
        for (size_t j = i + 1; j < burst_members.size(); ++j) {
          uint64_t t = std::min<uint64_t>(now + rng.NextBounded(span),
                                          spec.num_timestamps);
          builder.AddEdge(burst_members[i], burst_members[j], t);
          pairs.emplace_back(burst_members[i], burst_members[j]);
          pool.push_back(burst_members[i]);
          pool.push_back(burst_members[j]);
          ++emitted;
        }
      }
      continue;
    }
    VertexId u, v;
    if (!pairs.empty() && rng.NextBool(spec.repeat_prob)) {
      // Re-emit a previous pair at the current time. Sampling uniformly
      // over emitted edges biases toward already-frequent pairs, matching
      // the heavy-tailed contact frequencies of real interaction data.
      auto [pu, pv] = pairs[rng.NextBounded(pairs.size())];
      u = pu;
      v = pv;
    } else {
      u = pick_endpoint();
      v = pick_endpoint();
      if (u == v) continue;  // AddEdge would drop it; retry without counting
    }
    builder.AddEdge(u, v, now);
    pairs.emplace_back(u, v);
    pool.push_back(u);
    pool.push_back(v);
    ++emitted;
  }
  auto graph = builder.Build();
  TKC_CHECK(graph.ok());
  return std::move(graph).value();
}

TemporalGraph GenerateUniformRandom(uint32_t num_vertices, uint32_t num_edges,
                                    uint32_t num_timestamps, uint64_t seed) {
  TKC_CHECK_GE(num_vertices, 2u);
  TKC_CHECK_GE(num_edges, 1u);
  TKC_CHECK_GE(num_timestamps, 1u);
  Rng rng(seed);
  TemporalGraphBuilder builder;
  builder.EnsureVertexCount(num_vertices);
  uint32_t emitted = 0;
  while (emitted < num_edges) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u == v) continue;
    builder.AddEdge(u, v, 1 + rng.NextBounded(num_timestamps));
    ++emitted;
  }
  auto graph = builder.Build();
  TKC_CHECK(graph.ok());
  return std::move(graph).value();
}

TemporalGraph GeneratePlantedClique(uint32_t num_vertices,
                                    uint32_t clique_size, Window window,
                                    uint32_t num_timestamps,
                                    uint32_t noise_edges, uint64_t seed) {
  TKC_CHECK_GE(clique_size, 3u);
  TKC_CHECK_LE(clique_size, num_vertices);
  TKC_CHECK(window.start >= 1 && window.start <= window.end &&
            window.end <= num_timestamps);
  Rng rng(seed);
  TemporalGraphBuilder builder;
  builder.EnsureVertexCount(num_vertices);
  // Clique members are vertices 0..clique_size-1; each pair gets one edge
  // at a uniform time inside the planted window.
  for (VertexId u = 0; u < clique_size; ++u) {
    for (VertexId v = u + 1; v < clique_size; ++v) {
      builder.AddEdge(u, v,
                      window.start + rng.NextBounded(window.Length()));
    }
  }
  uint32_t emitted = 0;
  while (emitted < noise_edges) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u == v) continue;
    builder.AddEdge(u, v, 1 + rng.NextBounded(num_timestamps));
    ++emitted;
  }
  auto graph = builder.Build();
  TKC_CHECK(graph.ok());
  return std::move(graph).value();
}

TemporalGraph PaperExampleGraph() {
  // Figure 1 / Table II edge list: (u, v, t) with vertices v1..v9 -> 1..9.
  static constexpr struct {
    VertexId u, v;
    uint64_t t;
  } kEdges[] = {
      {2, 9, 1}, {1, 4, 2}, {2, 3, 2}, {1, 2, 3}, {2, 4, 3},
      {3, 9, 4}, {4, 8, 4}, {1, 6, 5}, {1, 7, 5}, {2, 8, 5},
      {6, 7, 5}, {1, 3, 6}, {3, 5, 6}, {1, 5, 7},
  };
  TemporalGraphBuilder builder;
  builder.EnsureVertexCount(10);
  for (const auto& e : kEdges) builder.AddEdge(e.u, e.v, e.t);
  auto graph = builder.Build();
  TKC_CHECK(graph.ok());
  return std::move(graph).value();
}

}  // namespace tkc
