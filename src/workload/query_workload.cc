#include "workload/query_workload.h"

#include <algorithm>
#include <cmath>

#include "core/temporal_kcore.h"
#include "graph/window_peeler.h"
#include "otcd/otcd.h"
#include "serve/query_engine.h"
#include "util/rng.h"
#include "vct/vct_builder.h"

namespace tkc {

uint32_t DeriveK(uint32_t kmax, double fraction) {
  return std::max<uint32_t>(
      2, static_cast<uint32_t>(std::llround(kmax * fraction)));
}

uint32_t DeriveRangeLength(Timestamp tmax, double fraction) {
  return std::max<uint32_t>(
      1, static_cast<uint32_t>(std::llround(tmax * fraction)));
}

StatusOr<std::vector<Query>> GenerateQueries(const TemporalGraph& g,
                                             uint32_t kmax,
                                             const WorkloadSpec& spec) {
  const Timestamp tmax = g.num_timestamps();
  const uint32_t k = DeriveK(kmax, spec.k_fraction);
  const uint32_t length = std::min<uint32_t>(
      DeriveRangeLength(tmax, spec.range_fraction), tmax);

  Rng rng(spec.seed);
  std::vector<Query> queries;
  queries.reserve(spec.num_queries);
  for (uint32_t q = 0; q < spec.num_queries; ++q) {
    bool found = false;
    for (uint32_t attempt = 0; attempt < spec.max_attempts; ++attempt) {
      Timestamp start =
          1 + static_cast<Timestamp>(rng.NextBounded(tmax - length + 1));
      Window range{start, start + length - 1};
      // The paper guarantees each range contains at least one temporal
      // k-core; the widest window's core being non-empty is necessary and
      // sufficient (any core of a sub-window is inside it).
      std::vector<bool> in_core = ComputeWindowCoreVertices(g, k, range);
      if (std::find(in_core.begin(), in_core.end(), true) != in_core.end()) {
        queries.push_back(Query{k, range});
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound(
          "no query range of length " + std::to_string(length) +
          " containing a temporal " + std::to_string(k) + "-core was found");
    }
  }
  return queries;
}

const char* AlgorithmName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kOtcd:
      return "OTCD";
    case AlgorithmKind::kCoreTime:
      return "CoreTime";
    case AlgorithmKind::kEnumBase:
      return "EnumBase";
    case AlgorithmKind::kEnum:
      return "Enum";
    case AlgorithmKind::kNaive:
      return "Naive";
  }
  return "Unknown";
}

RunOutcome RunAlgorithm(AlgorithmKind kind, const TemporalGraph& g,
                        const Query& query, const Deadline& deadline,
                        VctBuildArena* arena) {
  RunOutcome out;
  WallTimer timer;
  switch (kind) {
    case AlgorithmKind::kOtcd: {
      CountingSink sink;
      OtcdOptions options;
      options.deadline = deadline;
      OtcdStats stats;
      out.status = RunOtcd(g, query.k, query.range, &sink, options, &stats);
      out.num_cores = stats.num_cores;
      out.result_size_edges = stats.result_size_edges;
      out.peak_memory_bytes = stats.peak_memory_bytes;
      break;
    }
    case AlgorithmKind::kCoreTime: {
      // Same input contract as RunTemporalKCoreQuery: the builder CHECKs
      // these invariants, so turn bad queries into errors rather than traps
      // (the serving layer feeds arbitrary client queries through here).
      out.status = ValidateQueryInputs(g, query.k, query.range);
      if (!out.status.ok()) break;
      VctBuildResult built = BuildVctAndEcs(g, query.k, query.range, arena);
      out.status = Status::OK();
      out.vct_size = built.vct.size();
      out.ecs_size = built.ecs.size();
      out.peak_memory_bytes = built.peak_memory_bytes;
      out.coretime_seconds = timer.ElapsedSeconds();
      break;
    }
    case AlgorithmKind::kEnumBase:
    case AlgorithmKind::kEnum:
    case AlgorithmKind::kNaive: {
      CountingSink sink;
      QueryOptions options;
      options.enum_method = kind == AlgorithmKind::kEnum ? EnumMethod::kEnum
                            : kind == AlgorithmKind::kEnumBase
                                ? EnumMethod::kEnumBase
                                : EnumMethod::kNaive;
      options.deadline = deadline;
      options.arena = arena;
      QueryStats stats;
      out.status =
          RunTemporalKCoreQuery(g, query.k, query.range, &sink, options,
                                &stats);
      out.coretime_seconds = stats.coretime_seconds;
      out.num_cores = stats.num_cores != 0 ? stats.num_cores : sink.num_cores();
      out.result_size_edges = stats.result_size_edges != 0
                                  ? stats.result_size_edges
                                  : sink.result_size_edges();
      out.vct_size = stats.vct_size;
      out.ecs_size = stats.ecs_size;
      out.peak_memory_bytes = stats.peak_memory_bytes;
      break;
    }
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

AggregateOutcome RunAlgorithmOnQueries(AlgorithmKind kind,
                                       const TemporalGraph& g,
                                       const std::vector<Query>& queries,
                                       double per_query_limit_seconds,
                                       ThreadPool* pool) {
  AggregateOutcome agg;
  if (queries.empty()) {
    agg.completed = false;
    agg.first_error = Status::InvalidArgument("empty query batch");
    return agg;
  }
  // Measurement-mode engine: no memoization and no admission index, so
  // every query executes its full algorithm and the timings are honest;
  // the engine still contributes batch sharding and per-worker arena reuse.
  ThreadPool serial_pool(1);
  QueryEngineOptions engine_options;
  engine_options.algorithm = kind;
  engine_options.pool = pool != nullptr ? pool : &serial_pool;
  engine_options.cache_capacity = 0;
  engine_options.build_index = false;
  // Fresh scratch per query: the memory figures report per-build peaks, not
  // an arena's accumulated high-water mark.
  engine_options.reuse_arenas = false;
  // Every submitted query must execute, even a duplicate of another in the
  // same batch — collapsing them would count one measurement twice.
  engine_options.dedup_batches = false;
  auto engine = QueryEngine::Create(g, engine_options);
  if (!engine.ok()) {
    agg.completed = false;
    agg.first_error = engine.status();
    return agg;
  }
  std::vector<RunOutcome> outcomes;
  if (pool != nullptr && pool->num_threads() > 1 && queries.size() > 1) {
    // Fan out: every run reads the graph and writes only its own slot.
    // Folding below stays in query order, so the aggregate is deterministic.
    outcomes = engine->ServeBatch(queries, per_query_limit_seconds);
  } else {
    outcomes.reserve(queries.size());
    for (const Query& query : queries) {
      outcomes.push_back(engine->Serve(query, per_query_limit_seconds));
      if (!outcomes.back().status.ok()) break;  // historical early-out
    }
  }
  for (const RunOutcome& out : outcomes) {
    if (!out.status.ok()) {
      agg.completed = false;
      agg.first_error = out.status;
      return agg;
    }
    agg.avg_seconds += out.seconds;
    agg.avg_coretime_seconds += out.coretime_seconds;
    agg.avg_num_cores += static_cast<double>(out.num_cores);
    agg.avg_result_size_edges += static_cast<double>(out.result_size_edges);
    agg.avg_vct_size += static_cast<double>(out.vct_size);
    agg.avg_ecs_size += static_cast<double>(out.ecs_size);
    agg.max_peak_memory_bytes =
        std::max(agg.max_peak_memory_bytes, out.peak_memory_bytes);
  }
  const double n = static_cast<double>(queries.size());
  agg.avg_seconds /= n;
  agg.avg_coretime_seconds /= n;
  agg.avg_num_cores /= n;
  agg.avg_result_size_edges /= n;
  agg.avg_vct_size /= n;
  agg.avg_ecs_size /= n;
  return agg;
}

}  // namespace tkc
