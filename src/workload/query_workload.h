#ifndef TKC_WORKLOAD_QUERY_WORKLOAD_H_
#define TKC_WORKLOAD_QUERY_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/common.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

/// \file query_workload.h
/// Experiment workloads in the paper's protocol (§VI): query time ranges are
/// random sub-ranges of the compacted time axis sized as a fraction of tmax
/// (5/10/20/40%, default 10%), each guaranteed to contain at least one
/// temporal k-core; k is a fraction of the dataset's kmax (10..40%, default
/// 30%). Also the unified runner the figure benchmarks call, so every
/// algorithm is timed and accounted identically.

namespace tkc {

struct VctBuildArena;  // vct/vct_builder.h

/// One time-range k-core query.
struct Query {
  uint32_t k = 0;
  Window range{0, 0};
};

/// Parameters of a generated workload.
struct WorkloadSpec {
  double k_fraction = 0.30;      ///< k = max(2, round(kmax * k_fraction))
  double range_fraction = 0.10;  ///< |range| = max(1, round(tmax * fraction))
  uint32_t num_queries = 5;      ///< the paper uses 100; laptop default 5
  uint64_t seed = 42;
  /// Attempts per query to find a range containing a temporal k-core.
  uint32_t max_attempts = 200;
};

/// Generates `spec.num_queries` queries over `g`. `kmax` is the graph's
/// maximum core number (computed by the caller once per dataset). Fails
/// only when no k-core-containing range of the requested length exists
/// after max_attempts draws per query.
[[nodiscard]] StatusOr<std::vector<Query>> GenerateQueries(
    const TemporalGraph& g, uint32_t kmax, const WorkloadSpec& spec);

/// k derived from kmax and a fraction, floored at 2 (k=1 cores are just
/// connected edges and not interesting for the evaluation).
uint32_t DeriveK(uint32_t kmax, double fraction);

/// Window length derived from tmax and a fraction, floored at 1.
uint32_t DeriveRangeLength(Timestamp tmax, double fraction);

// ---------------------------------------------------------------------------
// Unified algorithm runner (what the figure benchmarks execute).
// ---------------------------------------------------------------------------

/// The algorithms compared across the paper's figures.
enum class AlgorithmKind {
  kOtcd,      ///< baseline OTCD (Algorithm 1)
  kCoreTime,  ///< the precompute phase alone (Algorithm 2: VCT + ECS)
  kEnumBase,  ///< CoreTime + EnumBase (Algorithm 3)
  kEnum,      ///< CoreTime + Enum (Algorithm 5) — the paper's algorithm
  kNaive,     ///< per-window peeling oracle (tests / tiny inputs only)
};

const char* AlgorithmName(AlgorithmKind kind);

/// Outcome of one (algorithm, query) execution.
struct RunOutcome {
  Status status;                    ///< OK, Timeout, or an error
  double seconds = 0;               ///< wall time of the run
  double coretime_seconds = 0;      ///< precompute portion, when applicable
  uint64_t num_cores = 0;
  uint64_t result_size_edges = 0;   ///< |R|
  uint64_t vct_size = 0;            ///< |VCT| (0 for OTCD/naive)
  uint64_t ecs_size = 0;            ///< |ECS| (0 for OTCD/naive)
  uint64_t peak_memory_bytes = 0;   ///< logical peak of the algorithm
};

/// Runs `kind` on one query, counting results (no materialization).
/// `arena` (vct_builder.h, optional) recycles the CoreTime phase's scratch
/// across calls for the VCT-pipeline algorithms; results never depend on it.
RunOutcome RunAlgorithm(AlgorithmKind kind, const TemporalGraph& g,
                        const Query& query,
                        const Deadline& deadline = Deadline(),
                        VctBuildArena* arena = nullptr);

/// Averages outcomes over a query batch; a Timeout/error on any query marks
/// the aggregate as failed (the paper reports these as "did not finish").
struct AggregateOutcome {
  bool completed = true;
  Status first_error;
  double avg_seconds = 0;
  double avg_coretime_seconds = 0;
  double avg_num_cores = 0;
  double avg_result_size_edges = 0;
  double avg_vct_size = 0;
  double avg_ecs_size = 0;
  uint64_t max_peak_memory_bytes = 0;
};

/// Runs `kind` over all queries with a per-query deadline of
/// `per_query_limit_seconds` (<=0 means unlimited) and aggregates.
///
/// Since PR 2 this is a thin measurement wrapper over the serving layer
/// (serve/query_engine.h): it stands up a transient QueryEngine with
/// memoization and the admission index disabled — every query executes, so
/// timings mean what the figures claim — and serves the batch through it.
/// With a non-null `pool` (util/thread_pool.h) the queries fan out across
/// the pool's workers — every algorithm run touches the graph read-only, so
/// the batch is embarrassingly parallel. Aggregation is deterministic: it
/// folds outcomes in query order, and the reported `first_error` is the
/// error of the lowest-indexed failing query regardless of which worker hit
/// it first (the parallel path runs every query; the serial path keeps the
/// historical stop-at-first-error behavior — aggregates of failing batches
/// are marked failed either way).
AggregateOutcome RunAlgorithmOnQueries(AlgorithmKind kind,
                                       const TemporalGraph& g,
                                       const std::vector<Query>& queries,
                                       double per_query_limit_seconds,
                                       ThreadPool* pool = nullptr);

}  // namespace tkc

#endif  // TKC_WORKLOAD_QUERY_WORKLOAD_H_
