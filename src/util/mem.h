#ifndef TKC_UTIL_MEM_H_
#define TKC_UTIL_MEM_H_

#include <cstdint>
#include <vector>

/// \file mem.h
/// Memory accounting for the Figure 12 reproduction. Two complementary
/// mechanisms:
///
///  * MemoryCounter — deterministic *logical* accounting. Each algorithm
///    reports the bytes held by its major data structures via
///    `ApproxVectorBytes` and records its peak. This is what the memory
///    benchmark reports by default: it is reproducible and isolates the
///    algorithm's own footprint from allocator slack.
///  * ReadVmHWMBytes / ReadVmRSSBytes — the process-level truth from
///    /proc/self/status, reported alongside for context.

namespace tkc {

/// Bytes held by a std::vector's heap allocation (capacity, not size).
template <typename T>
uint64_t ApproxVectorBytes(const std::vector<T>& v) {
  return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}

/// Tracks current and peak logical bytes for one algorithm run.
class MemoryCounter {
 public:
  /// Adds `bytes` to the current footprint and updates the peak.
  void Add(uint64_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  /// Releases `bytes` from the current footprint.
  void Sub(uint64_t bytes) { current_ = bytes > current_ ? 0 : current_ - bytes; }

  /// Replaces the current footprint (used when a structure is re-measured).
  void SetCurrent(uint64_t bytes) {
    current_ = bytes;
    if (current_ > peak_) peak_ = current_;
  }

  uint64_t current_bytes() const { return current_; }
  uint64_t peak_bytes() const { return peak_; }

  void Reset() { current_ = 0, peak_ = 0; }

 private:
  uint64_t current_ = 0;
  uint64_t peak_ = 0;
};

/// Peak resident set size of this process in bytes (VmHWM), or 0 if
/// /proc/self/status is unavailable.
uint64_t ReadVmHWMBytes();

/// Current resident set size of this process in bytes (VmRSS), or 0.
uint64_t ReadVmRSSBytes();

/// Formats a byte count as a human-readable string ("1.5 GB", "320 KB").
struct HumanBytes {
  explicit HumanBytes(uint64_t b) : bytes(b) {}
  uint64_t bytes;
};

/// Renders HumanBytes; declared here, defined in mem.cc.
const char* FormatHumanBytes(uint64_t bytes, char* buf, int buf_size);

}  // namespace tkc

#endif  // TKC_UTIL_MEM_H_
