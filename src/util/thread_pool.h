#ifndef TKC_UTIL_THREAD_POOL_H_
#define TKC_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file thread_pool.h
/// A fixed-size worker pool for the library's embarrassingly parallel loops
/// (per-k PHC slices, batched query workloads). Design points:
///
///  * `ThreadPool(n)` provides total parallelism n: it spawns n-1 background
///    workers and the calling thread participates in `ParallelFor`, so
///    `ThreadPool(1)` is a zero-thread pool that degenerates to plain serial
///    execution (no scheduling overhead, trivially deterministic).
///  * `ParallelFor` hands the body a worker id in [0, num_threads()), which
///    callers use to index per-thread scratch arenas without locking.
///  * Exceptions thrown by a task are captured and rethrown on the calling
///    thread after all iterations drain — a throw never detaches work.
///  * `ParallelFor` is nesting-safe on a single pool: a call made from
///    inside one of the pool's own tasks runs inline on that thread
///    (worker id 0) instead of blocking on workers that may themselves be
///    blocked. Mutual nesting across *different* pools is not guarded.
///  * The process-wide `Shared()` pool is sized by `DefaultNumThreads()`:
///    the `TKC_NUM_THREADS` environment variable when set to a positive
///    integer, else hardware concurrency. The environment variable is the
///    only knob — there is no command-line flag for it.

namespace tkc {

/// Worker count used by `ThreadPool::Shared()`: the `TKC_NUM_THREADS`
/// environment variable when set to a positive integer, otherwise
/// `std::thread::hardware_concurrency()` (at least 1).
int DefaultNumThreads();

class ThreadPool {
 public:
  /// Creates a pool with total parallelism `num_threads` (clamped to >= 1);
  /// `num_threads - 1` background workers are spawned.
  explicit ThreadPool(int num_threads);

  /// Drains nothing: pending Submit tasks are completed before join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (background workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Schedules `fn` on a background worker; runs it inline when the pool is
  /// single-threaded. The future rethrows `fn`'s exception on get().
  std::future<void> Submit(std::function<void()> fn);

  /// Runs body(i, worker) for every i in [0, n), distributed dynamically
  /// over the pool; the calling thread participates. Worker ids are unique
  /// per concurrent participant and lie in [0, num_threads()). Blocks until
  /// every claimed iteration finishes; rethrows the first captured
  /// exception (further iterations are abandoned after a throw). Called
  /// from inside one of this pool's own tasks, it degrades to an inline
  /// serial loop instead of deadlocking.
  void ParallelFor(size_t n, const std::function<void(size_t, int)>& body);

  /// Process-wide pool of DefaultNumThreads() total threads, created on
  /// first use and never destroyed (safe across static teardown).
  static ThreadPool& Shared();

 private:
  void WorkerLoop() TKC_EXCLUDES(mu_);
  void Enqueue(std::function<void()> fn) TKC_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ TKC_GUARDED_BY(mu_);
  bool stop_ TKC_GUARDED_BY(mu_) = false;
  // Written only by the constructor, read-only afterwards (num_threads(),
  // Submit's inline fallback, the destructor's join) — no guard needed.
  std::vector<std::thread> workers_;
};

}  // namespace tkc

#endif  // TKC_UTIL_THREAD_POOL_H_
