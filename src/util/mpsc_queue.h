#ifndef TKC_UTIL_MPSC_QUEUE_H_
#define TKC_UTIL_MPSC_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <deque>
#include <utility>

#include "util/fault_injection.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

/// \file mpsc_queue.h
/// A bounded blocking FIFO for the serving layer's request/completion
/// plumbing: many client threads push, one (or more) drainers pop. Design
/// points:
///
///  * **Bounded.** Push blocks while the queue holds `capacity` items, so a
///    submission storm exerts backpressure on producers instead of growing
///    an unbounded backlog. Capacity 0 is clamped to 1 (it would deadlock).
///  * **Closeable.** Close() wakes every blocked producer and consumer;
///    Push fails after close, Pop drains the remaining items and then
///    fails. This is the shutdown handshake: close, then join the drainer.
///  * **Mutex-based on purpose.** Queue operations bracket work that is
///    orders of magnitude heavier (a k-core query, an index rebuild);
///    a lock-free ring would optimize the wrong layer.
///
/// Lock discipline is machine-checked: `items_`/`closed_` are
/// TKC_GUARDED_BY(mu_) and every entry point is annotated, so clang's
/// -Wthread-safety proves no access escapes the mutex. Waits are explicit
/// predicate loops (see util/mutex.h for why), and every notify happens
/// after the lock scope closes so a woken thread never collides with the
/// notifier still holding the mutex.
///
/// The name states the intended role (multi-producer, single-consumer);
/// the implementation is safe for multiple consumers too.

namespace tkc {

/// Result of PushOrEvict: what happened to the incoming item, and whether a
/// queued item was displaced to make room for it.
enum class PushOutcome {
  kPushed,            ///< enqueued; nothing evicted
  kPushedEvicted,     ///< enqueued after evicting a queued item into *evicted
  kRejectedIncoming,  ///< queue full and the incoming item lost the contest
  kClosed,            ///< queue closed; nothing enqueued
};

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Blocks until there is room (or the queue closes); true iff enqueued.
  bool Push(T item) TKC_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Enqueues only if there is room right now; never blocks.
  bool TryPush(T item) TKC_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_ || FaultFires(kFaultQueueFull))
        return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until there is room, but no later than `deadline`; true iff
  /// enqueued. An unlimited deadline degenerates to Push(). Returns false
  /// without enqueueing when the deadline passes or the queue closes — the
  /// bounded-latency submission primitive the serving layer's shed path
  /// builds on.
  bool PushUntil(T item, const Deadline& deadline) TKC_EXCLUDES(mu_) {
    if (deadline.unlimited()) return Push(std::move(item));
    {
      MutexLock lock(mu_);
      if (FaultFires(kFaultQueueFull)) return false;  // simulated full-forever
      for (;;) {
        if (closed_) return false;
        if (items_.size() < capacity_) break;
        if (not_full_.WaitUntil(mu_, deadline.time_point()) ==
            std::cv_status::timeout) {
          // One final predicate check under the lock: the deadline and a
          // slot opening can race, and the slot wins ties.
          if (closed_ || items_.size() >= capacity_) return false;
          break;
        }
      }
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// PushUntil with a relative timeout in seconds (≤ 0 means "right now").
  bool TryPushFor(T item, double seconds) TKC_EXCLUDES(mu_) {
    return PushUntil(std::move(item),
                     Deadline::AfterSeconds(std::max(seconds, 0.0)));
  }

  /// Never-blocking push with an eviction contest. If there is room,
  /// `*item` is enqueued (kPushed). If the queue is full, the queued item
  /// that orders first under `less` — for the serving layer, the batch
  /// with the least remaining deadline — is compared against the incoming
  /// item: the loser of the contest is shed. Either the queued minimum
  /// moves into `*evicted` and the incoming item takes its slot
  /// (kPushedEvicted), or the incoming item loses (kRejectedIncoming).
  /// `*item` is consumed only on kPushed/kPushedEvicted; on rejection (and
  /// on kClosed) the caller still owns it intact — that is what lets the
  /// caller fail the loser's future instead of losing it. One lock
  /// acquisition, so the full/evict decision is atomic with the enqueue.
  ///
  /// The armed `queue.full` fault simulates a full queue by rejecting the
  /// incoming item without evicting — the conservative shed.
  template <typename Less>
  PushOutcome PushOrEvict(T* item, Less less, T* evicted) TKC_EXCLUDES(mu_) {
    PushOutcome outcome;
    {
      MutexLock lock(mu_);
      if (closed_) return PushOutcome::kClosed;
      if (FaultFires(kFaultQueueFull)) return PushOutcome::kRejectedIncoming;
      if (items_.size() < capacity_) {
        items_.push_back(std::move(*item));
        outcome = PushOutcome::kPushed;
      } else {
        auto min_it = std::min_element(items_.begin(), items_.end(), less);
        if (!less(*min_it, *item)) return PushOutcome::kRejectedIncoming;
        // The incoming item takes the loser's slot in place: the contest is
        // on deadlines, not arrival order, and a stable queue keeps the
        // remaining items' latency profile intact.
        *evicted = std::move(*min_it);
        *min_it = std::move(*item);
        outcome = PushOutcome::kPushedEvicted;
      }
    }
    not_empty_.NotifyOne();
    return outcome;
  }

  /// Blocks until an item is available (or the queue closes and drains);
  /// true iff `*out` received an item.
  bool Pop(T* out) TKC_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
      if (items_.empty()) return false;  // closed and fully drained
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return true;
  }

  /// Dequeues only if an item is available right now; never blocks.
  bool TryPop(T* out) TKC_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return true;
  }

  /// Rejects future pushes and wakes every waiter. Items already queued
  /// remain poppable (drain-then-fail semantics). Idempotent.
  void Close() TKC_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  size_t size() const TKC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  bool closed() const TKC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ TKC_GUARDED_BY(mu_);
  bool closed_ TKC_GUARDED_BY(mu_) = false;
};

}  // namespace tkc

#endif  // TKC_UTIL_MPSC_QUEUE_H_
