#ifndef TKC_UTIL_MPSC_QUEUE_H_
#define TKC_UTIL_MPSC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

/// \file mpsc_queue.h
/// A bounded blocking FIFO for the serving layer's request/completion
/// plumbing: many client threads push, one (or more) drainers pop. Design
/// points:
///
///  * **Bounded.** Push blocks while the queue holds `capacity` items, so a
///    submission storm exerts backpressure on producers instead of growing
///    an unbounded backlog. Capacity 0 is clamped to 1 (it would deadlock).
///  * **Closeable.** Close() wakes every blocked producer and consumer;
///    Push fails after close, Pop drains the remaining items and then
///    fails. This is the shutdown handshake: close, then join the drainer.
///  * **Mutex-based on purpose.** Queue operations bracket work that is
///    orders of magnitude heavier (a k-core query, an index rebuild);
///    a lock-free ring would optimize the wrong layer.
///
/// The name states the intended role (multi-producer, single-consumer);
/// the implementation is safe for multiple consumers too.

namespace tkc {

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Blocks until there is room (or the queue closes); true iff enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues only if there is room right now; never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the queue closes and drains);
  /// true iff `*out` received an item.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and fully drained
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Dequeues only if an item is available right now; never blocks.
  bool TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Rejects future pushes and wakes every waiter. Items already queued
  /// remain poppable (drain-then-fail semantics). Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tkc

#endif  // TKC_UTIL_MPSC_QUEUE_H_
