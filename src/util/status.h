#ifndef TKC_UTIL_STATUS_H_
#define TKC_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

/// \file status.h
/// Minimal Status / StatusOr error-handling vocabulary (RocksDB/Abseil
/// style). Library entry points that can fail on *user input* (bad files,
/// invalid parameters) return Status or StatusOr<T>; internal invariant
/// violations use TKC_CHECK instead. No exceptions cross the public API.

namespace tkc {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kTimeout,
  kResourceExhausted,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// The result of an operation: either OK or a code plus message.
/// Class-level [[nodiscard]]: any expression producing a Status that is
/// then ignored is a warning (an error under -Werror) — a dropped failure
/// is a silent one. Use `(void)expr;` plus a comment in the rare spot where
/// discarding is genuinely correct.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining why there is none.
/// [[nodiscard]] for the same reason as Status: losing the error loses the
/// value too.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value: `return MyThing{...};`.
  StatusOr(T value) : status_(), value_(std::move(value)), has_value_(true) {}

  /// Implicit from a non-OK status: `return Status::InvalidArgument(...)`.
  StatusOr(Status status) : status_(std::move(status)) {
    TKC_CHECK(!status_.ok());  // OK without a value is meaningless.
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  /// Value accessors; it is a bug (CHECK failure) to call these when !ok().
  const T& value() const& {
    TKC_CHECK(has_value_);
    return value_;
  }
  T& value() & {
    TKC_CHECK(has_value_);
    return value_;
  }
  T&& value() && {
    TKC_CHECK(has_value_);
    return std::move(value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

/// Propagates a non-OK status out of the current function.
#define TKC_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::tkc::Status _tkc_status = (expr);      \
    if (!_tkc_status.ok()) return _tkc_status; \
  } while (0)

}  // namespace tkc

#endif  // TKC_UTIL_STATUS_H_
