#ifndef TKC_UTIL_FLAGS_H_
#define TKC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

/// \file flags.h
/// A tiny `--key=value` command-line / environment-variable parser used by
/// the benchmark and example binaries. Not a general-purpose flags library —
/// just enough to make every binary configurable without external deps.

namespace tkc {

/// Parsed command-line flags plus TKC_* environment overrides.
class Flags {
 public:
  /// Parses `--key=value` and `--key value` pairs; bare tokens become
  /// positional arguments. Unknown keys are allowed (callers validate).
  static StatusOr<Flags> Parse(int argc, char** argv);

  /// Looks up a string flag; falls back to environment variable
  /// `TKC_<UPPERCASED KEY>` and then to `def`.
  std::string GetString(const std::string& key, const std::string& def) const;

  /// Integer flag with fallback; returns `def` on missing or unparsable.
  int64_t GetInt(const std::string& key, int64_t def) const;

  /// Floating-point flag with fallback.
  double GetDouble(const std::string& key, double def) const;

  /// Boolean flag: "1/true/yes/on" are true, "0/false/no/off" false.
  bool GetBool(const std::string& key, bool def) const;

  /// True iff the flag was given on the command line or in the environment.
  bool Has(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tkc

#endif  // TKC_UTIL_FLAGS_H_
