#ifndef TKC_UTIL_BUCKET_QUEUE_H_
#define TKC_UTIL_BUCKET_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/common.h"

/// \file bucket_queue.h
/// The classic O(n + m) bucket structure behind linear-time core
/// decomposition (Batagelj & Zaveršnik). Vertices are kept sorted by their
/// current degree in a flat array with per-degree bucket boundaries; a degree
/// decrement is an O(1) swap of the vertex to the front of its bucket.

namespace tkc {

/// Degree-bucketed vertex ordering for peeling algorithms.
///
/// Usage:
///   BucketQueue q(degrees);
///   while (!q.Empty()) {
///     VertexId v = q.PopMin();             // vertex of minimum degree
///     for (neighbor w of v still in q) q.DecrementDegree(w);
///   }
class BucketQueue {
 public:
  /// Builds the structure over all vertices `0..degrees.size()-1`.
  explicit BucketQueue(const std::vector<uint32_t>& degrees) {
    Reset(degrees);
  }

  BucketQueue() = default;

  /// Rebuilds over a fresh degree array (counting sort, O(n + max_degree)).
  void Reset(const std::vector<uint32_t>& degrees) {
    const size_t n = degrees.size();
    degree_.assign(degrees.begin(), degrees.end());
    uint32_t max_degree = 0;
    for (uint32_t d : degrees) max_degree = std::max(max_degree, d);
    bucket_start_.assign(max_degree + 2, 0);
    for (uint32_t d : degrees) ++bucket_start_[d + 1];
    for (size_t i = 1; i < bucket_start_.size(); ++i) {
      bucket_start_[i] += bucket_start_[i - 1];
    }
    order_.resize(n);
    position_.resize(n);
    std::vector<uint32_t> cursor(bucket_start_.begin(),
                                 bucket_start_.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      uint32_t pos = cursor[degrees[v]]++;
      order_[pos] = v;
      position_[v] = pos;
    }
    head_ = 0;
  }

  bool Empty() const { return head_ >= order_.size(); }

  /// Number of vertices still enqueued.
  size_t Size() const { return order_.size() - head_; }

  /// Degree of the minimum-degree vertex currently enqueued.
  uint32_t MinDegree() const {
    TKC_DCHECK(!Empty());
    return degree_[order_[head_]];
  }

  /// Removes and returns a vertex of minimum current degree.
  VertexId PopMin() {
    TKC_DCHECK(!Empty());
    VertexId v = order_[head_];
    ++head_;
    popped_degree_ = degree_[v];
    return v;
  }

  /// Degree value the most recent PopMin() returned its vertex with.
  uint32_t LastPoppedDegree() const { return popped_degree_; }

  /// True iff `v` has not been popped yet.
  bool Contains(VertexId v) const { return position_[v] >= head_; }

  uint32_t DegreeOf(VertexId v) const { return degree_[v]; }

  /// Decrements the degree of an enqueued vertex by one, in O(1).
  /// The vertex must still be in the queue and have degree > the degree of
  /// the last popped vertex is NOT required — clamping at the current
  /// minimum keeps the peel order correct (standard core-decomposition trick).
  void DecrementDegree(VertexId v) {
    TKC_DCHECK(Contains(v));
    uint32_t d = degree_[v];
    if (d == 0) return;
    // Swap v with the first vertex of its bucket, then shrink the bucket.
    uint32_t bucket_first =
        std::max(bucket_start_[d], static_cast<uint32_t>(head_));
    VertexId other = order_[bucket_first];
    uint32_t pv = position_[v];
    order_[bucket_first] = v;
    order_[pv] = other;
    position_[v] = bucket_first;
    position_[other] = pv;
    bucket_start_[d] = bucket_first + 1;
    degree_[v] = d - 1;
  }

 private:
  std::vector<uint32_t> degree_;        // current degree per vertex
  std::vector<uint32_t> bucket_start_;  // first order_ index of each degree
  std::vector<VertexId> order_;         // vertices sorted by current degree
  std::vector<uint32_t> position_;      // inverse of order_
  size_t head_ = 0;                     // first not-yet-popped order_ index
  uint32_t popped_degree_ = 0;
};

}  // namespace tkc

#endif  // TKC_UTIL_BUCKET_QUEUE_H_
