#include "util/fault_injection.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "util/mutex.h"

namespace tkc {

namespace {

/// One SplitMix64 step of the point's stream — small, seedable, and
/// statistically fine for fault schedules (the same mixer rng.h seeds with).
uint64_t StreamNext(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double StreamUnitDouble(uint64_t* state) {
  return static_cast<double>(StreamNext(state) >> 11) * 0x1.0p-53;
}

}  // namespace

std::atomic<uint64_t> FaultRegistry::armed_points_{0};

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, FaultSchedule schedule) {
  MutexLock lock(mu_);
  PointState& state = points_[point];
  if (!state.armed) {
    // Relaxed: the count is only an is-anything-armed hint (see FaultFires);
    // the point's actual state is published by mu_.
    armed_points_.fetch_add(1, std::memory_order_relaxed);
  }
  state.schedule = schedule;
  // Offset the stream so two points armed with the same seed do not fire in
  // lockstep.
  state.stream = schedule.seed * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL;
  state.armed = true;
  state.counters = FaultPointStats{};
}

void FaultRegistry::Disarm(const std::string& point) {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  // Relaxed: is-anything-armed hint only; see Arm().
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  MutexLock lock(mu_);
  for (auto& entry : points_) {
    if (entry.second.armed) {
      // Relaxed: is-anything-armed hint only; see Arm().
      armed_points_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  points_.clear();
}

FaultPointStats FaultRegistry::stats(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return FaultPointStats{};
  return it->second.counters;
}

bool FaultRegistry::FireSlow(const char* point) {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return false;
  PointState& state = it->second;
  state.counters.hits++;
  if (state.schedule.max_fires != 0 &&
      state.counters.fires >= state.schedule.max_fires) {
    return false;
  }
  bool fires = state.schedule.probability >= 1.0 ||
               StreamUnitDouble(&state.stream) < state.schedule.probability;
  if (fires) state.counters.fires++;
  return fires;
}

void FaultStallIfArmed(const char* point, int milliseconds) {
  if (FaultFires(point)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(milliseconds));
  }
}

Status FaultRegistry::ArmFromSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault spec entry missing '=': " + entry);
    }
    std::string point = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    FaultSchedule schedule;
    // rest = probability[@seed[xmax_fires]]
    size_t at = rest.find('@');
    std::string prob_str =
        (at == std::string::npos) ? rest : rest.substr(0, at);
    try {
      size_t consumed = 0;
      schedule.probability = std::stod(prob_str, &consumed);
      if (consumed != prob_str.size()) throw std::invalid_argument(prob_str);
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad fault probability in: " + entry);
    }
    if (schedule.probability < 0.0 || schedule.probability > 1.0) {
      return Status::InvalidArgument("fault probability outside [0,1]: " +
                                     entry);
    }
    if (at != std::string::npos) {
      std::string seed_part = rest.substr(at + 1);
      size_t x = seed_part.find('x');
      std::string seed_str =
          (x == std::string::npos) ? seed_part : seed_part.substr(0, x);
      try {
        size_t consumed = 0;
        schedule.seed = std::stoull(seed_str, &consumed);
        if (consumed != seed_str.size()) throw std::invalid_argument(seed_str);
      } catch (const std::exception&) {
        return Status::InvalidArgument("bad fault seed in: " + entry);
      }
      if (x != std::string::npos) {
        std::string fires_str = seed_part.substr(x + 1);
        try {
          size_t consumed = 0;
          schedule.max_fires = std::stoull(fires_str, &consumed);
          if (consumed != fires_str.size()) {
            throw std::invalid_argument(fires_str);
          }
        } catch (const std::exception&) {
          return Status::InvalidArgument("bad fault max_fires in: " + entry);
        }
      }
    }
    Arm(point, schedule);
  }
  return Status::OK();
}

namespace {

/// Arms TKC_FAULTS before main() so any binary in the repo — tests, benches,
/// tools — can be driven into failure paths without code changes. A bad spec
/// aborts loudly rather than silently running fault-free.
struct EnvArmer {
  EnvArmer() {
    const char* spec = std::getenv("TKC_FAULTS");
    if (spec == nullptr || spec[0] == '\0') return;
    Status status = FaultRegistry::Global().ArmFromSpec(spec);
    if (!status.ok()) {
      std::fprintf(stderr, "TKC_FAULTS: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
};
const EnvArmer env_armer;

}  // namespace

}  // namespace tkc
