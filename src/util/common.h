#ifndef TKC_UTIL_COMMON_H_
#define TKC_UTIL_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <limits>

/// \file common.h
/// Fundamental type aliases and sentinels shared across the tkc library.

namespace tkc {

/// Identifier of a vertex. Vertices are dense integers `0..num_vertices-1`.
using VertexId = uint32_t;

/// Identifier of a temporal edge: the index of the edge in the graph's
/// time-sorted edge array. Parallel edges (same endpoints, different
/// timestamps) have distinct EdgeIds.
using EdgeId = uint32_t;

/// A compacted timestamp. The graph loader maps raw timestamps to the dense
/// range `1..num_timestamps()` preserving order (the paper's convention of
/// "a continuous set of integers starting from 1").
using Timestamp = uint32_t;

/// Sentinel meaning "never" / "+infinity" for core times and window ends.
inline constexpr Timestamp kInfTime = std::numeric_limits<Timestamp>::max();

/// Sentinel for an invalid vertex.
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Sentinel for an invalid edge.
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// An inclusive time window `[start, end]`.
struct Window {
  Timestamp start = 0;
  Timestamp end = 0;

  friend bool operator==(const Window& a, const Window& b) {
    return a.start == b.start && a.end == b.end;
  }
  friend bool operator!=(const Window& a, const Window& b) { return !(a == b); }

  /// True iff this window is fully contained in `outer` (possibly equal).
  bool ContainedIn(const Window& outer) const {
    return outer.start <= start && end <= outer.end;
  }

  /// True iff this window is a *strict* sub-window of `outer`.
  bool StrictlyContainedIn(const Window& outer) const {
    return ContainedIn(outer) && *this != outer;
  }

  /// Number of timestamps covered (end - start + 1); 0 for empty windows.
  uint64_t Length() const {
    return end >= start ? static_cast<uint64_t>(end) - start + 1 : 0;
  }

  bool Valid() const { return start >= 1 && start <= end && end != kInfTime; }
};

}  // namespace tkc

#endif  // TKC_UTIL_COMMON_H_
