#include "util/flags.h"

#include <cstdlib>
#include <cctype>

namespace tkc {

namespace {

std::string EnvKeyFor(const std::string& key) {
  std::string env = "TKC_";
  for (char c : key) {
    if (c == '-') {
      env += '_';
    } else {
      env += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  return env;
}

}  // namespace

StatusOr<Flags> Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";  // bare boolean flag
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  if (values_.count(key) > 0) return true;
  return std::getenv(EnvKeyFor(key).c_str()) != nullptr;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  auto it = values_.find(key);
  if (it != values_.end()) return it->second;
  const char* env = std::getenv(EnvKeyFor(key).c_str());
  if (env != nullptr) return env;
  return def;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  std::string s = GetString(key, "");
  if (s.empty()) return def;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return def;
  return static_cast<int64_t>(v);
}

double Flags::GetDouble(const std::string& key, double def) const {
  std::string s = GetString(key, "");
  if (s.empty()) return def;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return def;
  return v;
}

bool Flags::GetBool(const std::string& key, bool def) const {
  std::string s = GetString(key, "");
  if (s.empty()) return def;
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return def;
}

}  // namespace tkc
