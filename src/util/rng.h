#ifndef TKC_UTIL_RNG_H_
#define TKC_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

/// \file rng.h
/// Deterministic, seedable random number generation. All synthetic datasets
/// and workloads in the library are reproducible from a 64-bit seed; we do
/// not use std::mt19937 because its state size and speed are both worse and
/// its stream is not guaranteed stable across standard library versions for
/// the distributions layered on top.

namespace tkc {

/// SplitMix64: used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : s_) {
      x = SplitMix64(x + 0x9e3779b97f4a7c15ULL);
      word = x;
    }
    // Avoid the all-zero state (impossible via SplitMix64, but be explicit).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) using Lemire's multiply-shift rejection method.
  uint64_t NextBounded(uint64_t bound) {
    TKC_DCHECK(bound > 0);
    // 128-bit multiply keeps the distribution exactly uniform.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    TKC_DCHECK(lo <= hi);
    return lo + NextBounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace tkc

#endif  // TKC_UTIL_RNG_H_
