#include "util/table.h"

#include <cstdio>
#include <algorithm>

#include "util/mem.h"

namespace tkc {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::CellSci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

std::string TextTable::Cell(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string TextTable::CellBytes(uint64_t bytes) {
  char buf[32];
  return FormatHumanBytes(bytes, buf, sizeof(buf));
}

std::string TextTable::ToString() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto append_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  append_row(out, header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

void TextTable::Print() const {
  std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace tkc
