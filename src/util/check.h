#ifndef TKC_UTIL_CHECK_H_
#define TKC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file check.h
/// Always-on invariant checking macros (RocksDB/Abseil-style). A failed check
/// indicates a bug inside the library, never a recoverable user error, so the
/// process aborts with a source location. Use tkc::Status for user errors.

namespace tkc::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "TKC_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace tkc::internal

/// Aborts the process if `cond` is false. Enabled in all build modes.
#define TKC_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) {                                              \
      ::tkc::internal::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                           \
  } while (0)

/// Binary comparison checks with both operand values evaluated once.
#define TKC_CHECK_OP(op, a, b) TKC_CHECK((a)op(b))
#define TKC_CHECK_EQ(a, b) TKC_CHECK_OP(==, a, b)
#define TKC_CHECK_NE(a, b) TKC_CHECK_OP(!=, a, b)
#define TKC_CHECK_LT(a, b) TKC_CHECK_OP(<, a, b)
#define TKC_CHECK_LE(a, b) TKC_CHECK_OP(<=, a, b)
#define TKC_CHECK_GT(a, b) TKC_CHECK_OP(>, a, b)
#define TKC_CHECK_GE(a, b) TKC_CHECK_OP(>=, a, b)

/// Debug-only check (compiled out under NDEBUG). Use on hot paths.
#ifdef NDEBUG
#define TKC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define TKC_DCHECK(cond) TKC_CHECK(cond)
#endif

#endif  // TKC_UTIL_CHECK_H_
