#include "util/mem.h"

#include <cstdio>
#include <cstring>

namespace tkc {

namespace {

// Parses "<Key>:   <value> kB" lines from /proc/self/status.
uint64_t ReadProcStatusKb(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t value_kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long kb = 0;
      if (std::sscanf(line + key_len + 1, " %llu", &kb) == 1) {
        value_kb = static_cast<uint64_t>(kb);
      }
      break;
    }
  }
  std::fclose(f);
  return value_kb;
}

}  // namespace

uint64_t ReadVmHWMBytes() { return ReadProcStatusKb("VmHWM") * 1024; }

uint64_t ReadVmRSSBytes() { return ReadProcStatusKb("VmRSS") * 1024; }

const char* FormatHumanBytes(uint64_t bytes, char* buf, int buf_size) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) {
    std::snprintf(buf, buf_size, "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, buf_size, "%.2f %s", v, units[unit]);
  }
  return buf;
}

}  // namespace tkc
