#ifndef TKC_UTIL_THREAD_ANNOTATIONS_H_
#define TKC_UTIL_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Macros for Clang's thread-safety analysis (-Wthread-safety), following
/// the attribute vocabulary documented at
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html. Under any other
/// compiler every macro expands to nothing, so gcc builds see plain C++.
///
/// The analysis is a compile-time proof system: fields declare which
/// capability (mutex) guards them, functions declare which capabilities
/// they acquire/release/require, and clang rejects any access pattern the
/// declarations don't justify. The CI `static-analysis` job builds all of
/// src/ with `-Wthread-safety -Werror`, and a negative-compile ctest
/// proves the macros have not silently compiled away under clang.
///
/// Policy (see README "Static analysis & correctness tooling"): every new
/// mutex member must be a `tkc::Mutex` (util/mutex.h) — the annotated
/// wrapper the analysis can see through — and must guard at least one
/// field via TKC_GUARDED_BY, or carry an explicit
/// `// lint: standalone-mutex(<name>): <reason>` waiver for
/// tools/lint_invariants.py.

#if defined(__clang__)
#define TKC_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define TKC_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside clang
#endif

/// Declares a type to be a capability (lockable) the analysis tracks.
#define TKC_CAPABILITY(x) TKC_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define TKC_SCOPED_CAPABILITY TKC_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field is readable/writable only while holding `x`.
#define TKC_GUARDED_BY(x) TKC_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field whose *pointee* is guarded by `x` (the pointer itself may
/// be read freely).
#define TKC_PT_GUARDED_BY(x) TKC_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Caller must hold the listed capabilities exclusively on entry; they are
/// still held on exit.
#define TKC_REQUIRES(...) \
  TKC_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on exit.
#define TKC_ACQUIRE(...) \
  TKC_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define TKC_RELEASE(...) \
  TKC_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function acquires the capability only when it returns `result`.
#define TKC_TRY_ACQUIRE(...) \
  TKC_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities on entry (the function
/// acquires them internally; annotating callers with this catches
/// self-deadlock at compile time).
#define TKC_EXCLUDES(...) \
  TKC_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Declares a lock-acquisition order between two mutex members.
#define TKC_ACQUIRED_AFTER(...) \
  TKC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))
#define TKC_ACQUIRED_BEFORE(...) \
  TKC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

/// Returns a reference to the capability guarding the returned object.
#define TKC_RETURN_CAPABILITY(x) \
  TKC_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Repo policy is
/// to refactor to a provable shape instead; every use must carry a
/// comment arguing why the analysis cannot express the pattern.
#define TKC_NO_THREAD_SAFETY_ANALYSIS \
  TKC_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // TKC_UTIL_THREAD_ANNOTATIONS_H_
