#ifndef TKC_UTIL_FAULT_INJECTION_H_
#define TKC_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

/// \file fault_injection.h
/// A process-wide registry of named fault-injection points, armed by
/// deterministic seeded schedules. The robustness layer's failure paths
/// (rebuild retries, queue shedding, corrupt-load handling) are unreachable
/// under a healthy run; this is the lever that deliberately provokes them,
/// reproducibly, so the differential harness can assert its invariants
/// *under* failure instead of merely around it.
///
/// Design points:
///
///  * **Named points.** Instrumented code calls `FaultFires("point.name")`
///    at the spot where a fault would originate; the call returns true when
///    the armed schedule says this hit fails. The canonical points are the
///    kFault* constants below.
///  * **Seeded schedules.** A schedule is (probability, seed, max_fires):
///    each hit draws from a per-point SplitMix64 stream, so a given seed
///    yields the same fire/no-fire sequence for the same hit order. Thread
///    interleavings may reorder hits; the invariants the harness checks
///    hold for *any* fire pattern, so schedules only need determinism per
///    stream, not per interleaving.
///  * **Near-zero cost disarmed.** `FaultFires` is one relaxed atomic load
///    when nothing is armed — safe to leave in production paths.
///  * **Env arming.** `TKC_FAULTS="rebuild.fail=0.3@7,queue.full=0.05@11x3"`
///    arms points at process start: `point=probability[@seed[xmax_fires]]`,
///    comma-separated. Programmatic arming (tests, the differential
///    harness) goes through ScopedFault / FaultRegistry::Arm.
///
/// This is test/ops machinery, not a chaos monkey: points fire only where
/// the code explicitly asks, and every provoked failure must still surface
/// as an explicit Status on the caller's API.

namespace tkc {

// Canonical injection-point names (the instrumented sites).
inline constexpr char kFaultRebuildFail[] = "rebuild.fail";
inline constexpr char kFaultQueueFull[] = "queue.full";
inline constexpr char kFaultDispatchSlowWorker[] = "dispatch.slow_worker";
inline constexpr char kFaultIndexIoCorruptLoad[] = "index_io.corrupt_load";
/// Network front end (net/server.cc): a ready listener fails its accept();
/// a readable connection delivers only one byte (exercises incremental
/// frame reassembly); a writable connection pretends EAGAIN for one round.
/// All three are verdict-neutral: they may never change a query's answer,
/// only delay or drop the connection carrying it.
inline constexpr char kFaultNetAcceptFail[] = "net.accept_fail";
inline constexpr char kFaultNetReadShort[] = "net.read_short";
inline constexpr char kFaultNetWriteStall[] = "net.write_stall";

/// One point's arming: fire each hit with `probability`, drawn from a
/// deterministic stream seeded by `seed`; stop firing after `max_fires`
/// fires (0 = unlimited). probability 1.0 + max_fires N = "fail exactly the
/// first N hits", the fully deterministic shape the unit tests use.
struct FaultSchedule {
  double probability = 1.0;
  uint64_t seed = 0;
  uint64_t max_fires = 0;
};

/// Cumulative per-point observation counters.
struct FaultPointStats {
  uint64_t hits = 0;   ///< times instrumented code consulted the point
  uint64_t fires = 0;  ///< hits on which the fault fired
};

class FaultRegistry {
 public:
  /// The process-wide registry. TKC_FAULTS (when set) is parsed and armed
  /// before main() runs.
  static FaultRegistry& Global();

  /// Arms (or re-arms, resetting the stream and counters) one point.
  void Arm(const std::string& point, FaultSchedule schedule)
      TKC_EXCLUDES(mu_);

  /// Disarms one point; its hit/fire counters survive until re-armed.
  void Disarm(const std::string& point) TKC_EXCLUDES(mu_);

  /// Disarms everything and drops all counters.
  void DisarmAll() TKC_EXCLUDES(mu_);

  /// Counters of `point` (zeros when never armed).
  FaultPointStats stats(const std::string& point) const TKC_EXCLUDES(mu_);

  /// Parses and arms a TKC_FAULTS-syntax spec:
  /// "point=prob[@seed[xmax_fires]]" entries, comma-separated.
  [[nodiscard]] Status ArmFromSpec(const std::string& spec) TKC_EXCLUDES(mu_);

  /// Hot-path implementation detail — call FaultFires() instead.
  bool FireSlow(const char* point) TKC_EXCLUDES(mu_);

  static std::atomic<uint64_t> armed_points_;  // owned by FaultFires()

 private:
  struct PointState {
    FaultSchedule schedule;
    uint64_t stream = 0;  ///< SplitMix64 state, advanced per hit
    bool armed = false;
    FaultPointStats counters;
  };

  mutable Mutex mu_;
  std::map<std::string, PointState> points_ TKC_GUARDED_BY(mu_);
};

/// The instrumented-code entry point: true iff `point` is armed and its
/// schedule fires on this hit. One relaxed atomic load when nothing at all
/// is armed.
inline bool FaultFires(const char* point) {
  // Relaxed: a pure emptiness hint — arming happens-before any hit that
  // must observe it via the registry mutex on the slow path.
  if (FaultRegistry::armed_points_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return FaultRegistry::Global().FireSlow(point);
}

/// Sleeps `milliseconds` iff `point` is armed and fires on this hit — the
/// injected-stall primitive (e.g. `dispatch.slow_worker`). Lives here so
/// instrumented code outside util/ never calls std::this_thread::sleep_for
/// directly (tools/lint_invariants.py bans it outside util/bench/tests).
void FaultStallIfArmed(const char* point, int milliseconds);

/// RAII arming for tests and the differential harness: arms on
/// construction, disarms (that point only) on scope exit.
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultSchedule schedule)
      : point_(std::move(point)) {
    FaultRegistry::Global().Arm(point_, schedule);
  }
  ~ScopedFault() { FaultRegistry::Global().Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  FaultPointStats stats() const {
    return FaultRegistry::Global().stats(point_);
  }

 private:
  std::string point_;
};

}  // namespace tkc

#endif  // TKC_UTIL_FAULT_INJECTION_H_
