#ifndef TKC_UTIL_MUTEX_H_
#define TKC_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

/// \file mutex.h
/// Annotated mutex/condvar wrappers for Clang's thread-safety analysis.
///
/// libstdc++'s `std::mutex` carries no capability attributes, so
/// `-Wthread-safety` cannot see a `std::lock_guard` acquire it — every
/// guarded-field proof would fail. `tkc::Mutex` is the same
/// `std::mutex` underneath but declares itself a capability, and
/// `tkc::MutexLock` is the scoped acquisition the analysis understands.
/// This is the only file in src/ allowed to name `std::mutex`,
/// `std::condition_variable`, or the std lock guards directly
/// (tools/lint_invariants.py enforces it).
///
/// `CondVar` wraps `std::condition_variable` (not `_any`: no extra
/// internal mutex, same footprint as before the wrappers) and exposes
/// un-templated waits annotated TKC_REQUIRES(mu). There are deliberately
/// no predicate-taking overloads: a lambda body is analyzed as a separate
/// function that cannot see the caller's held capability, so guarded
/// reads inside wait predicates would all need suppressions. Callers
/// write the standard explicit loop instead:
///
///     MutexLock lock(mu_);
///     while (!ready_) cv_.Wait(mu_);

namespace tkc {

/// A std::mutex the thread-safety analysis can track as a capability.
class TKC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TKC_ACQUIRE() { mu_.lock(); }
  void Unlock() TKC_RELEASE() { mu_.unlock(); }
  bool TryLock() TKC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for `Mutex`; the annotated analogue of std::lock_guard.
class TKC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TKC_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  ~MutexLock() TKC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with `Mutex`. Waits atomically release the
/// mutex and reacquire it before returning, exactly like
/// std::condition_variable; from the analysis's viewpoint the capability
/// is held across the call (TKC_REQUIRES), which matches the caller's
/// contract on both edges.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) TKC_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back without unlocking.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Returns std::cv_status::timeout once `deadline` passes. Spurious
  /// wakeups happen; callers loop on their predicate either way.
  std::cv_status WaitUntil(Mutex& mu,
                           std::chrono::steady_clock::time_point deadline)
      TKC_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tkc

#endif  // TKC_UTIL_MUTEX_H_
