#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

namespace tkc {

namespace {

// The pool whose work the current thread is executing (a worker thread, or
// any thread inside one of this pool's ParallelFor claim loops). Used to
// run nested ParallelFor calls on the same pool inline: blocking a worker
// on done_cv while every other worker blocks the same way would deadlock.
thread_local const ThreadPool* tls_current_pool = nullptr;

class ScopedCurrentPool {
 public:
  explicit ScopedCurrentPool(const ThreadPool* pool)
      : previous_(tls_current_pool) {
    tls_current_pool = pool;
  }
  ~ScopedCurrentPool() { tls_current_pool = previous_; }

 private:
  const ThreadPool* previous_;
};

}  // namespace

int DefaultNumThreads() {
  if (const char* env = std::getenv("TKC_NUM_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads) {
  int background = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(background);
  for (int i = 0; i < background; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  ScopedCurrentPool scope(this);
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task =
      std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> result = task->get_future();
  if (workers_.empty()) {
    (*task)();
  } else {
    Enqueue([task] { (*task)(); });
  }
  return result;
}

namespace {

// Shared state of one ParallelFor call. Runner tasks claim iteration
// indices from `next`; the call completes when every spawned runner (and
// the caller's inline runner) has exited its claim loop.
struct ForState {
  explicit ForState(size_t n, const std::function<void(size_t, int)>& b)
      : num_items(n), body(b) {}

  const size_t num_items;
  const std::function<void(size_t, int)>& body;
  // Claim counter and id dispenser: independent monotone counters with no
  // ordering relationship to the items' data (the body's own effects are
  // published by done_cv's mutex at the join), so relaxed is enough.
  std::atomic<size_t> next{0};
  std::atomic<int> next_worker_id{0};

  Mutex mu;
  CondVar done_cv;
  int runners_exited TKC_GUARDED_BY(mu) = 0;
  std::exception_ptr error TKC_GUARDED_BY(mu);

  void RunClaimLoop() TKC_EXCLUDES(mu) {
    // Relaxed: worker ids only need uniqueness, not ordering.
    const int worker = next_worker_id.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      // Relaxed: iteration claims only need uniqueness; see `next` above.
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_items) break;
      try {
        body(i, worker);
      } catch (...) {
        MutexLock lock(mu);
        if (!error) error = std::current_exception();
        // Poison the claim counter so remaining iterations are abandoned.
        // Relaxed: stragglers may claim a few extra indices before they
        // observe the poison; they just fail the bound check and exit.
        next.store(num_items, std::memory_order_relaxed);
        break;
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, int)>& body) {
  if (n == 0) return;
  // Nested call on the pool this thread already works for: run inline.
  // Blocking here would wait on workers that are themselves blocked the
  // same way (or on this very thread), i.e. deadlock.
  if (workers_.empty() || n == 1 || tls_current_pool == this) {
    for (size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }
  ScopedCurrentPool scope(this);  // the caller participates below
  auto state = std::make_shared<ForState>(n, body);
  const size_t spawned = std::min(workers_.size(), n);
  for (size_t r = 0; r < spawned; ++r) {
    Enqueue([state] {
      ForState* s = state.get();
      s->RunClaimLoop();
      {
        MutexLock lock(s->mu);
        ++s->runners_exited;
      }
      s->done_cv.NotifyOne();
    });
  }
  ForState* s = state.get();
  s->RunClaimLoop();
  std::exception_ptr error;
  {
    MutexLock lock(s->mu);
    while (s->runners_exited != static_cast<int>(spawned)) {
      s->done_cv.Wait(s->mu);
    }
    error = s->error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: outliving every static user beats destruction-order
  // races at process exit.
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
  return *pool;
}

}  // namespace tkc
