#ifndef TKC_UTIL_HASH_H_
#define TKC_UTIL_HASH_H_

#include <cstdint>
#include <functional>

#include "util/rng.h"

/// \file hash.h
/// Hashing helpers: a strong 64-bit integer mixer and an order-independent,
/// incrementally updatable 128-bit hash over *sets* of integers. The set hash
/// is the dedup workhorse of EnumBase and OTCD: a temporal k-core is
/// identified by its edge set, and the enumeration algorithms grow edge sets
/// incrementally, so the fingerprint must be updatable in O(1) per edge.

namespace tkc {

/// Strong 64-bit mix of a 64-bit key (SplitMix64 finalizer).
inline uint64_t HashU64(uint64_t x) { return SplitMix64(x ^ 0x2545F4914F6CDD1DULL); }

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (HashU64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// Order-independent 128-bit fingerprint of a set of uint64 keys.
///
/// Commutative components (sum and xor of strongly mixed keys, plus the
/// cardinality) make insertion order irrelevant and updates O(1). Collision
/// probability between any two distinct sets is ~2^-128 assuming the mixer
/// behaves like a random oracle — negligible at the scales of this library
/// (tests additionally verify exact sets on small inputs).
class SetHash128 {
 public:
  /// Adds `key` to the set. Keys are expected to be distinct; adding a
  /// duplicate is the caller's bug (the fingerprint would count it twice).
  void Add(uint64_t key) {
    const uint64_t h1 = HashU64(key);
    const uint64_t h2 = HashU64(key ^ 0x9E3779B97F4A7C15ULL);
    sum_ += h1;
    xor_ ^= h2;
    ++count_;
  }

  /// Removes a previously added key.
  void Remove(uint64_t key) {
    const uint64_t h1 = HashU64(key);
    const uint64_t h2 = HashU64(key ^ 0x9E3779B97F4A7C15ULL);
    sum_ -= h1;
    xor_ ^= h2;
    --count_;
  }

  void Clear() { sum_ = 0, xor_ = 0, count_ = 0; }

  uint64_t count() const { return count_; }

  /// Collapses the state into a single 64-bit digest (for hash maps).
  uint64_t Digest64() const {
    uint64_t h = HashCombine(HashU64(sum_), xor_);
    return HashCombine(h, count_);
  }

  friend bool operator==(const SetHash128& a, const SetHash128& b) {
    return a.sum_ == b.sum_ && a.xor_ == b.xor_ && a.count_ == b.count_;
  }

 private:
  uint64_t sum_ = 0;
  uint64_t xor_ = 0;
  uint64_t count_ = 0;
};

/// std::hash adapter so SetHash128 can key unordered containers.
struct SetHash128Hasher {
  size_t operator()(const SetHash128& h) const {
    return static_cast<size_t>(h.Digest64());
  }
};

}  // namespace tkc

#endif  // TKC_UTIL_HASH_H_
