#ifndef TKC_UTIL_TABLE_H_
#define TKC_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file table.h
/// Column-aligned plain-text table printer. The figure-reproduction
/// benchmarks print one table per paper figure with the same rows/series the
/// paper reports; this keeps their output uniform and diff-friendly.

namespace tkc {

/// Builds and renders an aligned table.
class TextTable {
 public:
  /// Sets the column headers; defines the column count.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count (short rows
  /// are padded with empty cells).
  void AddRow(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string Cell(const std::string& s) { return s; }
  static std::string Cell(double v, int precision = 4);
  static std::string CellSci(double v);  // scientific, for log-scale figures
  static std::string Cell(uint64_t v);
  static std::string CellBytes(uint64_t bytes);

  /// Renders with 2-space gutters and a dash underline beneath the header.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tkc

#endif  // TKC_UTIL_TABLE_H_
