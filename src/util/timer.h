#ifndef TKC_UTIL_TIMER_H_
#define TKC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <limits>

/// \file timer.h
/// Wall-clock timing and cooperative deadlines. Long-running algorithms
/// (OTCD in particular) accept a Deadline and return Status::Timeout when it
/// expires, mirroring the paper's 6-hour experiment cutoff.

namespace tkc {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in nanoseconds.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point in time after which cooperative algorithms should abort.
/// A default-constructed Deadline never expires.
class Deadline {
 public:
  /// Never expires.
  Deadline() : unlimited_(true) {}

  /// Expires `seconds` from now.
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.unlimited_ = false;
    d.deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(seconds));
    return d;
  }

  /// True once the deadline has passed. Cheap enough to poll every few
  /// thousand iterations; callers on hot loops should stride their polls.
  bool Expired() const {
    return !unlimited_ && Clock::now() >= deadline_;
  }

  bool unlimited() const { return unlimited_; }

  /// Seconds until expiry: negative once expired, +infinity when unlimited.
  double RemainingSeconds() const {
    if (unlimited_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }

  /// Strict "expires earlier than": an unlimited deadline never expires
  /// before anything, and every finite deadline expires before an
  /// unlimited one. The serving layer's shed policy uses this as its
  /// least-remaining-deadline order.
  bool ExpiresBefore(const Deadline& other) const {
    if (unlimited_) return false;
    if (other.unlimited_) return true;
    return deadline_ < other.deadline_;
  }

  /// The earlier of two deadlines (either may be unlimited).
  static Deadline Earlier(const Deadline& a, const Deadline& b) {
    return b.ExpiresBefore(a) ? b : a;
  }

  /// The raw expiry instant; meaningful only when !unlimited(). Exposed so
  /// queues can wait_until a caller's deadline.
  std::chrono::steady_clock::time_point time_point() const {
    return deadline_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool unlimited_ = true;
  Clock::time_point deadline_{};
};

}  // namespace tkc

#endif  // TKC_UTIL_TIMER_H_
