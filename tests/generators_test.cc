#include "datasets/generators.h"

#include <gtest/gtest.h>

#include "graph/core_decomposition.h"
#include "graph/graph_stats.h"
#include "graph/window_peeler.h"

namespace tkc {
namespace {

TEST(GenerateSyntheticTest, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_vertices = 30;
  spec.num_edges = 300;
  spec.num_timestamps = 50;
  spec.seed = 7;
  TemporalGraph a = GenerateSynthetic(spec);
  TemporalGraph b = GenerateSynthetic(spec);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) EXPECT_EQ(a.edge(e), b.edge(e));
}

TEST(GenerateSyntheticTest, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_vertices = 30;
  spec.num_edges = 300;
  spec.num_timestamps = 50;
  spec.seed = 1;
  TemporalGraph a = GenerateSynthetic(spec);
  spec.seed = 2;
  TemporalGraph b = GenerateSynthetic(spec);
  bool any_diff = a.num_edges() != b.num_edges();
  for (EdgeId e = 0; !any_diff && e < a.num_edges(); ++e) {
    any_diff = !(a.edge(e) == b.edge(e));
  }
  EXPECT_TRUE(any_diff);
}

TEST(GenerateSyntheticTest, RespectsSizeTargets) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_vertices = 50;
  spec.num_edges = 500;
  spec.num_timestamps = 100;
  spec.seed = 3;
  TemporalGraph g = GenerateSynthetic(spec);
  // Dedup can only shrink the edge count, and not by much.
  EXPECT_LE(g.num_edges(), 500u);
  EXPECT_GE(g.num_edges(), 400u);
  EXPECT_LE(g.num_timestamps(), 100u);
  EXPECT_LE(g.num_vertices(), 50u);
}

TEST(GenerateSyntheticTest, PreferentialAttachmentCreatesDenseCore) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_vertices = 100;
  spec.num_edges = 2000;
  spec.num_timestamps = 2000;
  spec.pa_alpha = 0.85;
  spec.seed = 11;
  TemporalGraph g = GenerateSynthetic(spec);
  CoreDecompositionResult cores = DecomposeCores(g);
  // A uniform graph with this density would have kmax near 2m/n = 40 only
  // under extreme concentration; PA should comfortably exceed 8.
  EXPECT_GE(cores.kmax, 8u);
}

TEST(GenerateSyntheticTest, BurstsPlantTemporalCores) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_vertices = 60;
  spec.num_edges = 900;
  spec.num_timestamps = 300;
  spec.burstiness = 0.5;
  spec.burst_group = 10;
  spec.burst_span = 8;
  spec.seed = 13;
  TemporalGraph g = GenerateSynthetic(spec);
  // Some window of ~1/8 of the time axis must contain a 3-core.
  bool found = false;
  Timestamp tmax = g.num_timestamps();
  Timestamp len = std::max<Timestamp>(1, tmax / 8);
  for (Timestamp s = 1; s + len - 1 <= tmax && !found; s += len / 2 + 1) {
    found = !ComputeWindowCore(g, 3, Window{s, s + len - 1}).Empty();
  }
  EXPECT_TRUE(found);
}

TEST(GenerateUniformRandomTest, ShapeAndDeterminism) {
  TemporalGraph a = GenerateUniformRandom(20, 100, 10, 5);
  TemporalGraph b = GenerateUniformRandom(20, 100, 10, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_LE(a.num_timestamps(), 10u);
  EXPECT_EQ(a.num_vertices(), 20u);
}

// The planted window is in RAW time; peeling works in compacted time, so
// map the raw bounds through the graph's timestamp table.
Window CompactWindow(const TemporalGraph& g, uint64_t raw_lo,
                     uint64_t raw_hi) {
  Timestamp lo = g.CompactTimestampFloor(raw_lo - 1) + 1;
  Timestamp hi = g.CompactTimestampFloor(raw_hi);
  return Window{lo, hi};
}

TEST(GeneratePlantedCliqueTest, CliqueIsATemporalCore) {
  TemporalGraph g =
      GeneratePlantedClique(40, 6, Window{10, 20}, 100, 120, 17);
  // The 6-clique inside raw [10,20] gives every member 5 in-window
  // neighbors.
  WindowCore core = ComputeWindowCore(g, 5, CompactWindow(g, 10, 20));
  EXPECT_FALSE(core.Empty());
  for (VertexId v = 0; v < 6; ++v) EXPECT_TRUE(core.in_core[v]) << v;
}

TEST(GeneratePlantedCliqueTest, CliqueAbsentOutsideWindow) {
  TemporalGraph g =
      GeneratePlantedClique(40, 6, Window{50, 60}, 100, 60, 19);
  Window before = CompactWindow(g, 1, 49);
  if (before.start <= before.end) {
    EXPECT_TRUE(ComputeWindowCore(g, 5, before).Empty());
  }
}

TEST(PaperExampleGraphTest, MatchesFigure1) {
  TemporalGraph g = PaperExampleGraph();
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_edges, 14u);
  EXPECT_EQ(stats.num_timestamps, 7u);
  EXPECT_EQ(stats.num_vertices, 9u);  // v1..v9 all have edges
  EXPECT_EQ(stats.kmax, 2u);
}

}  // namespace
}  // namespace tkc
