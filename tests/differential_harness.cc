#include "tests/differential_harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <optional>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "datasets/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/snapshot.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "vct/index_io.h"
#include "workload/query_workload.h"

namespace tkc {

namespace {

/// The fields a naive-oracle comparison can check: the oracle reports no
/// VCT/ECS sizes and its timings are its own, so bit-identity means status
/// code + core count + result size.
bool SameResults(const RunOutcome& engine, const RunOutcome& oracle) {
  if (engine.status.code() != oracle.status.code()) return false;
  if (!engine.status.ok()) return true;  // same failure class is enough
  return engine.num_cores == oracle.num_cores &&
         engine.result_size_edges == oracle.result_size_edges;
}

std::string DescribeMismatch(const DifferentialConfig& config,
                             uint64_t version, const Query& query,
                             const RunOutcome& engine,
                             const RunOutcome& oracle) {
  std::ostringstream out;
  out << "seed=" << config.seed << " threads=" << config.threads
      << " version=" << version << " k=" << query.k << " range=["
      << query.range.start << "," << query.range.end << "]: engine {"
      << engine.status.ToString() << ", cores=" << engine.num_cores
      << ", |R|=" << engine.result_size_edges << "} vs oracle {"
      << oracle.status.ToString() << ", cores=" << oracle.num_cores
      << ", |R|=" << oracle.result_size_edges << "}";
  return out.str();
}

/// One submitted query batch awaiting its result (via whichever API).
struct PendingBatch {
  std::vector<Query> queries;
  std::optional<std::future<BatchResult>> future;  // async-future flavor
  std::optional<BatchResult> result;               // sync flavor (immediate)
  bool via_completion_queue = false;               // result arrives tagged
  int wire_client = -1;                            // net mode: client index
  uint64_t wire_request_id = 0;                    // net mode: request id
};

/// Rebuilds the engine-shaped result a wire response carries: the verdict
/// frame transports exactly the determinism-contract fields (status code,
/// num_cores, result_size_edges, vct_size, ecs_size), which is everything
/// SameResults compares against the oracle.
BatchResult WireToBatchResult(const net::ClientResponse& response) {
  BatchResult result;
  result.snapshot_version = response.snapshot_version;
  result.outcomes.reserve(response.verdicts.size());
  for (const net::VerdictFrame& v : response.verdicts) {
    RunOutcome outcome;
    outcome.status = v.status_code == 0
                         ? Status::OK()
                         : Status(net::StatusCodeFromWire(v.status_code),
                                  "wire verdict");
    outcome.num_cores = v.num_cores;
    outcome.result_size_edges = v.result_size_edges;
    outcome.vct_size = v.vct_size;
    outcome.ecs_size = v.ecs_size;
    result.outcomes.push_back(outcome);
  }
  return result;
}

/// The statuses a fault-mode outcome may carry instead of an oracle-exact
/// answer: an explicit, caller-visible verdict. Anything else must match
/// the oracle bit for bit.
bool IsExplicitVerdict(StatusCode code) {
  return code == StatusCode::kTimeout ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kFailedPrecondition;
}

}  // namespace

namespace {

/// Positive-integer value of `name`, or 0 when unset/invalid.
uint32_t PositiveEnv(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return 0;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || v <= 0) return 0;
  return static_cast<uint32_t>(v);
}

}  // namespace

uint32_t DifferentialScenarioCount(uint32_t default_count,
                                   const char* env_name) {
  if (env_name != nullptr) {
    if (uint32_t v = PositiveEnv(env_name)) return v;
  }
  if (uint32_t v = PositiveEnv("TKC_DIFF_SCENARIOS")) return v;
  return default_count;
}

DifferentialReport RunDifferentialScenario(const DifferentialConfig& config) {
  DifferentialReport report;
  Rng rng(SplitMix64(config.seed * 0x9e3779b97f4a7c15ULL + config.threads));

  // --- Seeded inputs: graph, update stream, query stream. ---------------
  const uint32_t n = 8 + static_cast<uint32_t>(rng.NextBounded(28));
  const uint32_t m = 40 + static_cast<uint32_t>(rng.NextBounded(180));
  const uint32_t T = 8 + static_cast<uint32_t>(rng.NextBounded(22));
  TemporalGraph initial = GenerateUniformRandom(n, m, T, config.seed);
  const Timestamp t0 = initial.num_timestamps();

  std::vector<std::vector<RawTemporalEdge>> updates(config.num_update_events);
  for (auto& batch : updates) {
    const uint32_t count =
        1 + static_cast<uint32_t>(
                rng.NextBounded(std::max(1u, config.max_edges_per_update)));
    for (uint32_t i = 0; i < count; ++i) {
      RawTemporalEdge e;
      // A few ids beyond the initial vertex pool: updates may introduce
      // vertices. Raw times may duplicate existing timestamps or mint new
      // ones before/inside/after the current span (compaction shifts).
      e.u = static_cast<VertexId>(rng.NextBounded(n + 3));
      e.v = static_cast<VertexId>(rng.NextBounded(n + 3));
      e.raw_time = rng.NextInRange(1, T + 3);
      batch.push_back(e);
    }
  }

  auto make_batch = [&]() {
    const uint32_t count =
        1 + static_cast<uint32_t>(
                rng.NextBounded(std::max(1u, config.max_queries_per_batch)));
    std::vector<Query> queries;
    queries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      Query q;
      q.k = static_cast<uint32_t>(rng.NextBounded(7));  // k=0: invalid input
      const Timestamp start =
          1 + static_cast<Timestamp>(rng.NextBounded(t0));
      const Timestamp end =
          start + static_cast<Timestamp>(rng.NextBounded(t0 - start + 1));
      q.range = Window{start, end};
      if (rng.NextBool(0.05)) q.range = Window{end + 1, start};  // invalid
      if (rng.NextBool(0.2) && !queries.empty()) {
        q = queries[rng.NextBounded(queries.size())];  // in-batch duplicate
      }
      queries.push_back(q);
    }
    return queries;
  };

  // --- Engine under test, with seed-varied serving options. -------------
  ThreadPool pool(config.threads);
  LiveEngineOptions options;
  options.engine.algorithm = AlgorithmKind::kEnum;
  options.engine.pool = &pool;
  options.engine.build_index = rng.NextBool(0.5);
  options.engine.index_max_k = rng.NextBool(0.3) ? 2 : 0;  // capped sometimes
  options.engine.num_index_replicas = rng.NextBool(0.25) ? 2 : 1;
  options.engine.cache_capacity = rng.NextBool(0.25) ? 0 : 64;
  options.engine.async_queue_capacity = 4;  // small: exercise backpressure
  options.update_queue_capacity = 4;
  // Incremental mode exists to validate the delta-aware index maintenance,
  // so there must be an index to maintain.
  if (config.incremental) options.engine.build_index = true;

  // Fault mode: arm the injection points with scenario-seeded schedules and
  // switch the updater's retry/backoff on. rebuild.fail at 0.4 against 3
  // attempts means most cycles land after a retry or two while a few
  // exhaust and fail their group — both paths stay exercised.
  std::optional<ScopedFault> rebuild_fault;
  std::optional<ScopedFault> queue_fault;
  std::optional<ScopedFault> slow_fault;
  if (config.faults) {
    options.max_rebuild_attempts = 3;
    options.retry_backoff_initial_ms = 0.2;
    options.retry_backoff_max_ms = 2.0;
    options.retry_jitter_seed = config.seed;
    rebuild_fault.emplace(kFaultRebuildFail,
                          FaultSchedule{0.4, config.seed * 31 + 1, 0});
    queue_fault.emplace(kFaultQueueFull,
                        FaultSchedule{0.15, config.seed * 31 + 2, 0});
    slow_fault.emplace(kFaultDispatchSlowWorker,
                       FaultSchedule{0.05, config.seed * 31 + 3, 0});
  }
  // Net mode: arm the short-read stressor — when it fires, the server's
  // recv delivers one byte, so frames reassemble from arbitrary fragments.
  // Verdict-neutral by contract: it may delay answers, never change them.
  std::optional<ScopedFault> read_short_fault;
  if (config.net) {
    read_short_fault.emplace(kFaultNetReadShort,
                             FaultSchedule{0.2, config.seed * 31 + 4, 0});
  }
  auto pick_deadline = [&]() {
    if (!config.faults) return Deadline();
    const double roll = rng.NextDouble();
    if (roll < 0.55) return Deadline();                    // unlimited
    if (roll < 0.80) return Deadline::AfterSeconds(30.0);  // generous
    if (roll < 0.90) return Deadline::AfterSeconds(-1.0);  // already expired
    return Deadline::AfterSeconds(0.002);                  // racing the work
  };

  std::vector<PendingBatch> batches;
  std::vector<std::future<Status>> update_futures;
  std::vector<bool> update_applied(updates.size(), false);
  BatchCompletionQueue completions(64);
  size_t cq_submissions = 0;
  {
    auto live_or = LiveQueryEngine::Create(initial, options);
    if (!live_or.ok()) {
      report.mismatches = 1;
      report.first_mismatch =
          "engine creation failed: " + live_or.status().ToString();
      return report;
    }
    LiveQueryEngine& live = **live_or;

    // Net mode: front the engine with a loopback server and a few client
    // connections; query batches round-robin across them so one scenario
    // exercises connection multiplexing, not just one stream.
    std::unique_ptr<net::TkcServer> server;
    std::vector<std::unique_ptr<net::TkcClient>> clients;
    if (config.net) {
      net::ServerOptions server_options;
      server_options.completion_queue_capacity = 8;  // small: exercise flow
      auto server_or = net::TkcServer::Start(&live, server_options);
      if (!server_or.ok()) {
        report.mismatches = 1;
        report.first_mismatch =
            "server start failed: " + server_or.status().ToString();
        return report;
      }
      server = std::move(*server_or);
      const size_t num_clients = 1 + config.seed % 3;
      for (size_t c = 0; c < num_clients; ++c) {
        auto client_or = net::TkcClient::Connect("127.0.0.1", server->port());
        if (!client_or.ok()) {
          report.mismatches = 1;
          report.first_mismatch =
              "client connect failed: " + client_or.status().ToString();
          return report;
        }
        clients.push_back(std::move(*client_or));
      }
    }

    // Incremental mode: await the swap, then prove the incrementally
    // maintained index (reused slices included) is bit-identical — slice
    // by slice — to building from scratch on the swapped-in graph.
    auto apply_and_verify = [&](const std::vector<RawTemporalEdge>& batch,
                                size_t batch_index) {
      Status status = live.ApplyUpdates(batch).get();
      if (!status.ok()) {
        ++report.failed_updates;
        return;
      }
      update_applied[batch_index] = true;
      std::shared_ptr<const GraphSnapshot> snap = live.snapshot();
      const PhcIndex* index = snap->engine().index();
      if (index == nullptr) {
        ++report.mismatches;
        if (report.first_mismatch.empty()) {
          report.first_mismatch = "incremental mode lost the admission index";
        }
        return;
      }
      PhcBuildOptions build;
      build.max_k = options.engine.index_max_k;
      build.pool = &pool;
      auto fresh =
          PhcIndex::Build(snap->graph(), snap->graph().FullRange(), build);
      const bool same = fresh.ok() && *index == *fresh;
      if (fresh.ok()) report.slices_checked += fresh->max_k();
      if (!same) {
        ++report.mismatches;
        if (report.first_mismatch.empty()) {
          // Identify the first offending slice for a reproducible report.
          uint32_t bad_k = 0;
          if (fresh.ok() && index->max_k() == fresh->max_k()) {
            for (uint32_t k = 1; k <= fresh->max_k(); ++k) {
              if (!(index->Slice(k) == fresh->Slice(k))) {
                bad_k = k;
                break;
              }
            }
          }
          std::ostringstream out;
          out << "seed=" << config.seed << " threads=" << config.threads
              << " version=" << snap->version()
              << ": incrementally maintained index differs from a "
                 "from-scratch build"
              << (bad_k > 0 ? " at slice k=" + std::to_string(bad_k)
                            : std::string(" (shape)"));
          report.first_mismatch = out.str();
        }
      }
      // Emergence tables: carried or recomputed, each must equal a table
      // freshly derived from the from-scratch slice.
      if (fresh.ok()) {
        for (uint32_t k = 1; k <= fresh->max_k(); ++k) {
          const std::span<const Timestamp> table =
              snap->engine().EmergenceTable(k);
          const std::vector<Timestamp> expected =
              QueryEngine::ComputeEmergenceTable(fresh->Slice(k));
          ++report.tables_checked;
          if (!std::equal(table.begin(), table.end(), expected.begin(),
                          expected.end())) {
            ++report.mismatches;
            if (report.first_mismatch.empty()) {
              std::ostringstream out;
              out << "seed=" << config.seed << " threads=" << config.threads
                  << " version=" << snap->version()
                  << ": emergence table differs from a from-scratch table "
                     "at k="
                  << k;
              report.first_mismatch = out.str();
            }
          }
        }
      }
    };
    auto apply_update = [&](size_t index) {
      if (config.incremental) {
        apply_and_verify(updates[index], index);
      } else {
        update_futures.push_back(live.ApplyUpdates(updates[index]));
      }
    };

    // --- Drive: interleave submissions with snapshot swaps. -------------
    // Updates fire immediately after async submissions (never awaited
    // first), so swaps overlap batches still in flight. (In incremental
    // mode each update is awaited and its index verified before driving
    // on; query batches still overlap the swaps.)
    size_t next_update = 0;
    const uint32_t batches_per_update =
        std::max(1u, config.num_query_batches /
                         std::max(1u, config.num_update_events));
    for (uint32_t b = 0; b < config.num_query_batches; ++b) {
      PendingBatch pending;
      pending.queries = make_batch();
      // The legacy entry points delegate to the deadline flavors with an
      // unlimited deadline, so routing everything through the deadline
      // overloads keeps the non-fault sweeps on the same code path.
      const Deadline deadline = pick_deadline();
      if (config.net) {
        // Mostly-unlimited wire deadlines, with an occasional 1 ms budget
        // racing the work: the verdict is then either still oracle-exact
        // or an explicit Timeout/ResourceExhausted — never silence.
        const uint32_t deadline_ms = rng.NextBool(0.15) ? 1 : 0;
        const int client = static_cast<int>(b % clients.size());
        auto sent = clients[client]->Send(pending.queries, deadline_ms);
        if (!sent.ok()) {
          ++report.mismatches;
          if (report.first_mismatch.empty()) {
            report.first_mismatch =
                "wire send failed: " + sent.status().ToString();
          }
        } else {
          pending.wire_client = client;
          pending.wire_request_id = *sent;
        }
      } else {
        switch (b % 3) {
          case 0:
            pending.future = live.SubmitAsync(pending.queries, deadline);
            break;
          case 1:
            live.SubmitAsync(pending.queries, &completions, batches.size(),
                             deadline);
            pending.via_completion_queue = true;
            ++cq_submissions;
            break;
          case 2:
            pending.result = live.ServeBatch(pending.queries, deadline);
            break;
        }
      }
      batches.push_back(std::move(pending));
      if ((b + 1) % batches_per_update == 0 && next_update < updates.size()) {
        apply_update(next_update);
        ++next_update;
      }
    }
    while (next_update < updates.size()) {
      apply_update(next_update);
      ++next_update;
    }

    // --- Collect every result. ------------------------------------------
    for (PendingBatch& pending : batches) {
      if (pending.future.has_value()) pending.result = pending.future->get();
      if (pending.wire_client >= 0) {
        auto response = clients[pending.wire_client]->Wait(
            pending.wire_request_id);
        if (!response.ok()) {
          ++report.mismatches;
          if (report.first_mismatch.empty()) {
            report.first_mismatch =
                "wire response failed: " + response.status().ToString();
          }
          continue;
        }
        pending.result = WireToBatchResult(*response);
        ++report.wire_responses;
      }
    }
    for (size_t i = 0; i < cq_submissions; ++i) {
      BatchResult result;
      if (!completions.Next(&result)) break;
      batches[result.tag].result = std::move(result);
    }
    for (size_t i = 0; i < update_futures.size(); ++i) {
      Status status = update_futures[i].get();
      if (status.ok()) {
        update_applied[i] = true;
      } else {
        ++report.failed_updates;
        // Fault mode tolerates injected failures, but only ones announced
        // with an explicit status (the injected transient surfaces as
        // Internal once retries exhaust).
        if (config.faults && !IsExplicitVerdict(status.code()) &&
            status.code() != StatusCode::kInternal) {
          ++report.mismatches;
          if (report.first_mismatch.empty()) {
            report.first_mismatch =
                "failed update carries a non-explicit status: " +
                status.ToString();
          }
        }
      }
    }
    const LiveStats live_stats = live.stats();
    report.swaps = live_stats.swaps;
    report.slices_reused = live_stats.update.slices_reused;
    report.slices_rebuilt = live_stats.update.slices_rebuilt;
    report.suffix_rebuilds = live_stats.update.suffix_rebuilds;
    report.rows_reused = live_stats.update.rows_reused;
    report.batches_coalesced = live_stats.update.batches_coalesced;
    report.cache_entries_carried = live_stats.update.cache_entries_carried;
    report.emergence_tables_carried =
        live_stats.update.emergence_tables_carried;
    report.rebuild_retries = live_stats.update.rebuild_retries;
    report.updates_applied = live_stats.update.batches_applied;
    // Updater accounting invariants: every batch the updater picked up is
    // applied xor failed, and coalescing never claims more riders than
    // there were settled batches. Every update future was awaited above,
    // so the counters are quiescent here.
    const UpdateStats& u = live_stats.update;
    const uint64_t settled = u.batches_applied + live_stats.failed_updates;
    if (settled != u.batches_submitted || u.batches_coalesced > settled) {
      ++report.mismatches;
      if (report.first_mismatch.empty()) {
        std::ostringstream out;
        out << "seed=" << config.seed << " threads=" << config.threads
            << ": update accounting broken: submitted="
            << u.batches_submitted << " applied=" << u.batches_applied
            << " failed=" << live_stats.failed_updates
            << " coalesced=" << u.batches_coalesced;
        report.first_mismatch = out.str();
      }
    }

    // Net mode teardown: close every client, stop the server, then hold it
    // to its quiesced counter invariants — every batch the wire submitted
    // must be accounted, streamed or dropped, and every connection settled.
    if (config.net) {
      for (auto& client : clients) client->Close();
      server->Stop();
      const net::ServerStats wire = server->stats();
      const bool balanced =
          wire.batches_submitted == wire.batches_completed &&
          wire.batches_completed ==
              wire.responses_streamed + wire.responses_dropped &&
          wire.connections_accepted ==
              wire.connections_closed + wire.connections_dropped &&
          wire.requests_received == wire.batches_submitted;
      if (!balanced) {
        ++report.mismatches;
        if (report.first_mismatch.empty()) {
          std::ostringstream out;
          out << "seed=" << config.seed << " threads=" << config.threads
              << ": server accounting broken: submitted="
              << wire.batches_submitted
              << " completed=" << wire.batches_completed
              << " streamed=" << wire.responses_streamed
              << " dropped=" << wire.responses_dropped
              << " accepted=" << wire.connections_accepted
              << " closed=" << wire.connections_closed
              << " conn_dropped=" << wire.connections_dropped
              << " requests=" << wire.requests_received;
          report.first_mismatch = out.str();
        }
      }
    }
  }  // engine destroyed: updater joined, every snapshot's batches drained

  if (!config.faults && report.failed_updates > 0) {
    report.first_mismatch = "an ApplyUpdates batch failed";
    return report;
  }

  // --- Replay the version chain and compare against the oracle. ---------
  // Version V is the initial graph plus the first V *applied* batches in
  // submission order: a failed (fault mode: injected) cycle advances no
  // version, so its batches are skipped in the replay.
  std::vector<TemporalGraph> chain;
  chain.push_back(initial);
  for (size_t i = 0; i < updates.size(); ++i) {
    if (!update_applied[i]) continue;
    auto next = chain.back().AppendEdges(updates[i]);
    if (!next.ok()) {
      report.mismatches = 1;
      report.first_mismatch =
          "chain replay failed: " + next.status().ToString();
      return report;
    }
    chain.push_back(std::move(next->graph));
  }

  std::set<uint64_t> versions;
  for (const PendingBatch& pending : batches) {
    if (!pending.result.has_value()) {
      ++report.mismatches;
      if (report.first_mismatch.empty()) {
        report.first_mismatch = "a submitted batch never delivered a result";
      }
      continue;
    }
    const BatchResult& result = *pending.result;
    if (result.snapshot_version >= chain.size() ||
        result.outcomes.size() != pending.queries.size()) {
      ++report.mismatches;
      if (report.first_mismatch.empty()) {
        report.first_mismatch = "result shape/version out of range";
      }
      continue;
    }
    versions.insert(result.snapshot_version);
    const TemporalGraph& graph = chain[result.snapshot_version];
    for (size_t i = 0; i < pending.queries.size(); ++i) {
      // Fault/net mode: an explicit verdict (shed, expired, shutdown) is a
      // legitimate terminal answer — everything else must be oracle-exact.
      if ((config.faults || config.net) &&
          IsExplicitVerdict(result.outcomes[i].status.code())) {
        ++report.explicit_outcomes;
        continue;
      }
      RunOutcome oracle =
          RunAlgorithm(AlgorithmKind::kNaive, graph, pending.queries[i]);
      ++report.queries_checked;
      if (!SameResults(result.outcomes[i], oracle)) {
        ++report.mismatches;
        if (report.first_mismatch.empty()) {
          report.first_mismatch =
              DescribeMismatch(config, result.snapshot_version,
                               pending.queries[i], result.outcomes[i], oracle);
        }
      }
    }
  }
  report.versions_served = versions.size();

  if (config.faults) {
    // Index save/load round trip under index_io.corrupt_load: the armed
    // load sees truncated bytes and must surface Status::Corruption — not
    // crash, not silently parse — and the next load (the schedule is a
    // single fire) must round-trip the index bit-identically.
    auto index = PhcIndex::Build(chain.back(), chain.back().FullRange(),
                                 PhcBuildOptions{});
    const std::string path = "tkc_fault_roundtrip_" +
                             std::to_string(config.seed) + "_" +
                             std::to_string(config.threads) + ".phc";
    if (index.ok() && SavePhcIndex(*index, path).ok()) {
      {
        ScopedFault corrupt(kFaultIndexIoCorruptLoad,
                            FaultSchedule{1.0, config.seed, 1});
        auto corrupted = LoadPhcIndex(path);
        if (corrupted.ok() ||
            corrupted.status().code() != StatusCode::kCorruption) {
          ++report.mismatches;
          if (report.first_mismatch.empty()) {
            report.first_mismatch =
                "corrupt_load: truncated index load did not report "
                "Corruption";
          }
        }
      }
      auto reloaded = LoadPhcIndex(path);
      if (!reloaded.ok() || !(*reloaded == *index)) {
        ++report.mismatches;
        if (report.first_mismatch.empty()) {
          report.first_mismatch =
              "corrupt_load: clean reload did not round-trip the index";
        }
      }
      std::remove(path.c_str());
    }
  }
  return report;
}

}  // namespace tkc
