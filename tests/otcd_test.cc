// Direct tests of the OTCD baseline: pruning on/off equivalence, TTI
// exactness, pruning statistics, deadline handling, and input validation.

#include "otcd/otcd.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/sinks.h"
#include "datasets/generators.h"
#include "graph/window_peeler.h"

namespace tkc {
namespace {

TEST(OtcdTest, PruningOnOffAgree) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    TemporalGraph g = GenerateUniformRandom(14, 90, 14, seed);
    CollectingSink with, without;
    OtcdOptions on, off;
    off.cross_row_pruning = false;
    ASSERT_TRUE(RunOtcd(g, 2, g.FullRange(), &with, on).ok());
    ASSERT_TRUE(RunOtcd(g, 2, g.FullRange(), &without, off).ok());
    with.SortCanonically();
    without.SortCanonically();
    EXPECT_EQ(with.cores(), without.cores()) << "seed " << seed;
  }
}

TEST(OtcdTest, TtiIsExactEdgeSpanAndCoreMatchesPeeler) {
  TemporalGraph g = GenerateUniformRandom(14, 100, 12, 5);
  CallbackSink sink([&](Window tti, std::span<const EdgeId> edges) {
    Timestamp lo = kInfTime, hi = 0;
    for (EdgeId e : edges) {
      lo = std::min(lo, g.edge(e).t);
      hi = std::max(hi, g.edge(e).t);
    }
    EXPECT_EQ(tti, (Window{lo, hi}));
    WindowCore core = ComputeWindowCore(g, 2, tti);
    std::vector<EdgeId> sorted(edges.begin(), edges.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(core.edges, sorted);
  });
  ASSERT_TRUE(RunOtcd(g, 2, g.FullRange(), &sink).ok());
}

TEST(OtcdTest, NoDuplicateOutputs) {
  TemporalGraph g = GenerateUniformRandom(12, 90, 16, 9);
  std::set<std::vector<EdgeId>> seen;
  CallbackSink sink([&](Window, std::span<const EdgeId> edges) {
    std::vector<EdgeId> sorted(edges.begin(), edges.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(seen.insert(sorted).second);
  });
  ASSERT_TRUE(RunOtcd(g, 2, g.FullRange(), &sink).ok());
}

TEST(OtcdTest, StatsAccounting) {
  TemporalGraph g = GenerateUniformRandom(14, 110, 14, 11);
  CountingSink sink;
  OtcdStats stats;
  ASSERT_TRUE(RunOtcd(g, 2, g.FullRange(), &sink, {}, &stats).ok());
  EXPECT_EQ(stats.num_cores, sink.num_cores());
  EXPECT_EQ(stats.result_size_edges, sink.result_size_edges());
  EXPECT_GT(stats.cells_visited, 0u);
  EXPECT_GT(stats.peak_memory_bytes, 0u);
}

TEST(OtcdTest, PruningReducesWork) {
  // On bursty graphs (heavy core overlap across windows), cross-row marks
  // must suppress some outputs that the dedup set would otherwise catch.
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_vertices = 18;
  spec.num_edges = 240;
  spec.num_timestamps = 40;
  spec.burstiness = 0.5;
  spec.burst_group = 8;
  spec.seed = 13;
  TemporalGraph g = GenerateSynthetic(spec);
  OtcdStats with, without;
  CountingSink s1, s2;
  OtcdOptions on, off;
  off.cross_row_pruning = false;
  ASSERT_TRUE(RunOtcd(g, 2, g.FullRange(), &s1, on, &with).ok());
  ASSERT_TRUE(RunOtcd(g, 2, g.FullRange(), &s2, off, &without).ok());
  EXPECT_EQ(s1.num_cores(), s2.num_cores());
  // With pruning, duplicate work shifts from dedup hits to pruned outputs.
  EXPECT_LE(with.duplicate_hits, without.duplicate_hits);
}

TEST(OtcdTest, EmptyWindowReturnsNothing) {
  TemporalGraph g = PaperExampleGraph();
  CountingSink sink;
  // k too large for any core.
  ASSERT_TRUE(RunOtcd(g, 6, g.FullRange(), &sink).ok());
  EXPECT_EQ(sink.num_cores(), 0u);
}

TEST(OtcdTest, InputValidation) {
  TemporalGraph g = PaperExampleGraph();
  CountingSink sink;
  EXPECT_EQ(RunOtcd(g, 0, g.FullRange(), &sink).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunOtcd(g, 2, Window{0, 3}, &sink).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunOtcd(g, 2, Window{3, 99}, &sink).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunOtcd(g, 2, Window{5, 3}, &sink).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunOtcd(g, 2, g.FullRange(), nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(OtcdTest, ExpiredDeadlineReturnsTimeout) {
  TemporalGraph g = GenerateUniformRandom(20, 200, 30, 17);
  CountingSink sink;
  OtcdOptions options;
  options.deadline = Deadline::AfterSeconds(-1.0);
  EXPECT_EQ(RunOtcd(g, 2, g.FullRange(), &sink, options).code(),
            StatusCode::kTimeout);
}

TEST(OtcdTest, PaperExampleRange14) {
  TemporalGraph g = PaperExampleGraph();
  CollectingSink sink;
  ASSERT_TRUE(RunOtcd(g, 2, Window{1, 4}, &sink).ok());
  EXPECT_EQ(sink.cores().size(), 2u);
}

}  // namespace
}  // namespace tkc
