#include "vct/ecs.h"

#include <gtest/gtest.h>

#include <vector>

namespace tkc {
namespace {

EdgeCoreWindowSkyline MakeSkyline() {
  // Edges 10..13 (global ids); edge 10 has two windows, 12 has one.
  std::vector<std::pair<EdgeId, Window>> emissions = {
      {10, {1, 4}}, {10, {2, 6}}, {12, {3, 5}},
  };
  return EdgeCoreWindowSkyline::FromEmissions(10, 14, Window{1, 8}, emissions);
}

TEST(EcsTest, WindowsOf) {
  auto ecs = MakeSkyline();
  EXPECT_EQ(ecs.WindowsOf(10).size(), 2u);
  EXPECT_EQ(ecs.WindowsOf(11).size(), 0u);
  EXPECT_EQ(ecs.WindowsOf(12).size(), 1u);
  EXPECT_EQ(ecs.WindowsOf(13).size(), 0u);
  EXPECT_EQ(ecs.size(), 3u);
  EXPECT_EQ(ecs.num_edges(), 4u);
  EXPECT_EQ(ecs.first_edge(), 10u);
  EXPECT_EQ(ecs.last_edge(), 14u);
}

TEST(EcsTest, WindowContents) {
  auto ecs = MakeSkyline();
  EXPECT_EQ(ecs.WindowsOf(10)[0], (Window{1, 4}));
  EXPECT_EQ(ecs.WindowsOf(10)[1], (Window{2, 6}));
  EXPECT_EQ(ecs.WindowsOf(12)[0], (Window{3, 5}));
}

TEST(EcsTest, ForEachWindowVisitsAllGroupedByEdge) {
  auto ecs = MakeSkyline();
  std::vector<std::pair<EdgeId, Window>> visited;
  ecs.ForEachWindow([&](EdgeId e, const Window& w) {
    visited.push_back({e, w});
  });
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0].first, 10u);
  EXPECT_EQ(visited[1].first, 10u);
  EXPECT_EQ(visited[2].first, 12u);
}

TEST(EcsTest, DebugString) {
  auto ecs = MakeSkyline();
  EXPECT_EQ(ecs.DebugString(10), "[1,4] [2,6]");
  EXPECT_EQ(ecs.DebugString(11), "");
}

TEST(EcsTest, EmptySkyline) {
  auto ecs = EdgeCoreWindowSkyline::FromEmissions(
      0, 0, Window{1, 1}, std::span<const std::pair<EdgeId, Window>>());
  EXPECT_EQ(ecs.size(), 0u);
  EXPECT_EQ(ecs.num_edges(), 0u);
}

TEST(EcsTest, RangeStored) {
  auto ecs = MakeSkyline();
  EXPECT_EQ(ecs.range(), (Window{1, 8}));
}

TEST(EcsTest, MemoryUsagePositive) {
  auto ecs = MakeSkyline();
  EXPECT_GT(ecs.MemoryUsageBytes(), 0u);
}

TEST(EcsTest, InterleavedEmissionsGroupCorrectly) {
  std::vector<std::pair<EdgeId, Window>> emissions = {
      {5, {1, 2}}, {3, {1, 3}}, {5, {3, 4}}, {4, {2, 5}}, {5, {5, 7}},
  };
  auto ecs = EdgeCoreWindowSkyline::FromEmissions(3, 6, Window{1, 8},
                                                  emissions);
  EXPECT_EQ(ecs.WindowsOf(5).size(), 3u);
  EXPECT_EQ(ecs.WindowsOf(5)[2], (Window{5, 7}));
  EXPECT_EQ(ecs.WindowsOf(3).size(), 1u);
  EXPECT_EQ(ecs.WindowsOf(4).size(), 1u);
}

}  // namespace
}  // namespace tkc
