// Semantic property tests of the Edge Core Window Skyline against direct
// window peeling (Definition 5): each listed window is a *minimal* core
// window of its edge, and coverage is complete (Lemma 3: an edge is in the
// core of [a,b] iff some skyline window fits inside [a,b]).

#include <gtest/gtest.h>

#include <vector>

#include "datasets/generators.h"
#include "graph/window_peeler.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

bool EdgeInCoreOf(const TemporalGraph& g, uint32_t k, Window w, EdgeId e) {
  WindowCore core = ComputeWindowCore(g, k, w);
  return std::binary_search(core.edges.begin(), core.edges.end(), e);
}

struct EcsCase {
  uint32_t n, m, T, k;
  uint64_t seed;
};

void PrintTo(const EcsCase& c, std::ostream* os) {
  *os << "n=" << c.n << " m=" << c.m << " T=" << c.T << " k=" << c.k
      << " seed=" << c.seed;
}

class EcsPropertyTest : public ::testing::TestWithParam<EcsCase> {};

TEST_P(EcsPropertyTest, WindowsAreCoreWindows) {
  const EcsCase& c = GetParam();
  TemporalGraph g = GenerateUniformRandom(c.n, c.m, c.T, c.seed);
  VctBuildResult built = BuildVctAndEcs(g, c.k, g.FullRange());
  built.ecs.ForEachWindow([&](EdgeId e, const Window& w) {
    EXPECT_TRUE(EdgeInCoreOf(g, c.k, w, e))
        << "edge " << e << " not in core of its skyline window [" << w.start
        << "," << w.end << "]";
  });
}

TEST_P(EcsPropertyTest, WindowsAreMinimal) {
  const EcsCase& c = GetParam();
  TemporalGraph g = GenerateUniformRandom(c.n, c.m, c.T, c.seed);
  VctBuildResult built = BuildVctAndEcs(g, c.k, g.FullRange());
  built.ecs.ForEachWindow([&](EdgeId e, const Window& w) {
    // Shrinking from either side must drop the edge from the core.
    if (w.start < w.end) {
      EXPECT_FALSE(EdgeInCoreOf(g, c.k, Window{w.start + 1, w.end}, e))
          << "window [" << w.start << "," << w.end << "] of edge " << e
          << " is not left-minimal";
      EXPECT_FALSE(EdgeInCoreOf(g, c.k, Window{w.start, w.end - 1}, e))
          << "window [" << w.start << "," << w.end << "] of edge " << e
          << " is not right-minimal";
    }
  });
}

TEST_P(EcsPropertyTest, CoverageIsComplete) {
  // Lemma 3 in both directions, sampled over all windows of small graphs.
  const EcsCase& c = GetParam();
  TemporalGraph g = GenerateUniformRandom(c.n, c.m, c.T, c.seed);
  Window range = g.FullRange();
  VctBuildResult built = BuildVctAndEcs(g, c.k, range);
  for (Timestamp a = range.start; a <= range.end; a += 2) {
    for (Timestamp b = a; b <= range.end; b += 2) {
      WindowCore core = ComputeWindowCore(g, c.k, Window{a, b});
      for (EdgeId e = built.ecs.first_edge(); e < built.ecs.last_edge();
           ++e) {
        bool in_core =
            std::binary_search(core.edges.begin(), core.edges.end(), e);
        bool has_window = false;
        for (const Window& w : built.ecs.WindowsOf(e)) {
          if (w.ContainedIn(Window{a, b})) {
            has_window = true;
            break;
          }
        }
        EXPECT_EQ(in_core, has_window)
            << "edge " << e << " window [" << a << "," << b << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, EcsPropertyTest,
    ::testing::Values(EcsCase{10, 45, 8, 2, 1}, EcsCase{10, 45, 8, 3, 2},
                      EcsCase{14, 70, 12, 2, 3}, EcsCase{14, 70, 12, 3, 4},
                      EcsCase{8, 50, 16, 2, 5}, EcsCase{6, 36, 6, 2, 6},
                      EcsCase{12, 60, 10, 1, 7}));

TEST(EcsQueryRangeTest, SkylineRespectsRangeBoundaries) {
  // Windows never extend outside the query range even when wider cores
  // exist in the full graph.
  TemporalGraph g = GenerateUniformRandom(14, 90, 20, 17);
  Window range{5, 15};
  VctBuildResult built = BuildVctAndEcs(g, 2, range);
  built.ecs.ForEachWindow([&](EdgeId e, const Window& w) {
    (void)e;
    EXPECT_GE(w.start, range.start);
    EXPECT_LE(w.end, range.end);
  });
  // Every edge in the skyline's id range lies within the query window.
  for (EdgeId e = built.ecs.first_edge(); e < built.ecs.last_edge(); ++e) {
    EXPECT_GE(g.edge(e).t, range.start);
    EXPECT_LE(g.edge(e).t, range.end);
  }
}

TEST(EcsEdgeTimeTest, WindowsContainTheirEdgeTimestamp) {
  // A minimal core window of (u,v,t) must contain t itself.
  TemporalGraph g = GenerateUniformRandom(12, 80, 14, 23);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  built.ecs.ForEachWindow([&](EdgeId e, const Window& w) {
    EXPECT_GE(g.edge(e).t, w.start) << "edge " << e;
    EXPECT_LE(g.edge(e).t, w.end) << "edge " << e;
  });
}

}  // namespace
}  // namespace tkc
