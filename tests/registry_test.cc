#include "datasets/registry.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/graph_stats.h"

namespace tkc {
namespace {

TEST(RegistryTest, FourteenDatasets) {
  auto specs = TableIIISpecs();
  ASSERT_EQ(specs.size(), 14u);
  std::set<std::string> names;
  for (const auto& s : specs) names.insert(s.name);
  EXPECT_EQ(names.size(), 14u);
  for (const char* expected : {"FB", "BO", "CM", "EM", "MC", "MO", "AU", "LR",
                               "EN", "SU", "WT", "WK", "PL", "YT"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(RegistryTest, SpecByNameFindsAndRejects) {
  EXPECT_TRUE(SpecByName("CM").ok());
  EXPECT_TRUE(SpecByName("YT").ok());
  auto missing = SpecByName("XX");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, ScaleRescalesSizes) {
  auto small = SpecByName("CM", 0.5).value();
  auto base = SpecByName("CM", 1.0).value();
  EXPECT_LT(small.num_edges, base.num_edges);
  EXPECT_NEAR(static_cast<double>(small.num_edges) / base.num_edges, 0.5,
              0.05);
}

TEST(RegistryTest, TimestampRegimesPreserved) {
  // FB..WT regime: tmax within a small factor of |E|; WK/PL/YT regime:
  // tmax orders of magnitude below |E|.
  auto cm = SpecByName("CM").value();
  EXPECT_GE(cm.num_timestamps * 2, cm.num_edges);
  auto yt = SpecByName("YT").value();
  EXPECT_LE(yt.num_timestamps * 100, yt.num_edges);
  auto pl = SpecByName("PL").value();
  EXPECT_LE(pl.num_timestamps * 100, pl.num_edges);
}

TEST(RegistryTest, GenerateByNameWorksAtTinyScale) {
  auto g = GenerateByName("FB", 0.2);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->num_edges(), 100u);
  GraphStats stats = ComputeGraphStats(*g);
  EXPECT_GE(stats.kmax, 2u) << "stand-in must have a non-trivial core";
}

TEST(RegistryTest, SweepDatasetsExist) {
  for (const std::string& name : SweepDatasetNames()) {
    EXPECT_TRUE(SpecByName(name).ok()) << name;
  }
}

TEST(RegistryTest, SeedsDifferAcrossDatasets) {
  auto specs = TableIIISpecs();
  std::set<uint64_t> seeds;
  for (const auto& s : specs) seeds.insert(s.seed);
  EXPECT_EQ(seeds.size(), specs.size());
}

}  // namespace
}  // namespace tkc
