// Protocol fuzz battery: a seeded generator of malformed wire streams —
// truncated headers, oversized lengths, bad version/magic/type/reserved
// bytes, mid-frame disconnects, interleaved garbage, pure noise — thrown at
// a live TkcServer. The contract under attack: every such stream yields a
// clean kError response and/or a connection close, never a crash, a hang,
// or a partial-silent answer, and never poisons any *other* connection.
// Raw sockets with a receive timeout make a hang a test failure rather
// than a stuck CI job. Runs under asan/ubsan in CI (`ctest -L net`).

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <vector>

#include "datasets/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire_format.h"
#include "serve/snapshot.h"
#include "tests/differential_harness.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tkc {
namespace {

/// A raw loopback connection with a bounded recv: the fuzzer's view of the
/// server, deliberately beneath TkcClient (which refuses to write garbage).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    timeval timeout{10, 0};  // a hang becomes a visible failure
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }
  ~RawConn() { Close(); }

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  bool SendAll(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;  // server already closed on us: fine
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads until the server ends the connection or the recv timeout fires.
  /// Returns true when the connection ended (EOF or reset — *reset says
  /// which), false on timeout: the hang this battery exists to catch.
  /// Bytes received along the way (error frames, verdicts the server
  /// streamed before noticing the poison) land in *received.
  bool DrainUntilClosed(std::string* received, bool* reset) {
    *reset = false;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        received->append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) return true;
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        *reset = true;  // server closed with our bytes unread: still a close
        return true;
      }
      return false;  // EAGAIN: the 10 s receive timeout expired
    }
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

std::string ValidRequestBytes(uint64_t request_id) {
  net::QueryRequestFrame request;
  request.request_id = request_id;
  request.queries = {{2, {1, 8}}, {3, {2, 12}}};
  std::string wire;
  AppendQueryRequest(request, &wire);
  return wire;
}

/// One seeded malformed stream. The category rotates with the seed, the
/// bytes within rotate with the Rng it seeds. `*poisoned` is true when the
/// stream contains something the server must *reject* (vs. a stream that is
/// merely an incomplete prefix the client abandons).
std::string MalformedBytes(uint64_t seed, bool* poisoned) {
  Rng rng(SplitMix64(seed * 1000003 + 17));
  *poisoned = true;
  switch (seed % 7) {
    case 0: {  // truncated header, then the caller disconnects
      *poisoned = false;
      return ValidRequestBytes(seed).substr(
          0, rng.NextBounded(net::kFrameHeaderBytes));
    }
    case 1: {  // oversized payload length
      std::string wire = ValidRequestBytes(seed);
      const uint32_t huge = net::kMaxPayloadBytes + 1 +
                            static_cast<uint32_t>(rng.NextBounded(1u << 20));
      for (int i = 0; i < 4; ++i) {
        wire[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
      }
      return wire;
    }
    case 2: {  // bad magic / version / reserved byte
      std::string wire = ValidRequestBytes(seed);
      const uint64_t which = rng.NextBounded(3);
      const size_t offset = which == 0   ? rng.NextBounded(4)  // magic
                            : which == 1 ? 4                   // version
                                         : 6 + rng.NextBounded(2);  // reserved
      wire[offset] =
          static_cast<char>(wire[offset] + 1 + rng.NextBounded(200));
      return wire;
    }
    case 3: {  // mid-frame disconnect: header + partial payload
      std::string wire = ValidRequestBytes(seed);
      *poisoned = false;
      const size_t keep =
          net::kFrameHeaderBytes +
          rng.NextBounded(wire.size() - net::kFrameHeaderBytes);
      return wire.substr(0, keep);
    }
    case 4: {  // valid frame, then garbage interleaved behind it
      std::string wire = ValidRequestBytes(seed);
      const size_t garbage_start = wire.size();
      // At least a full header of garbage: fewer bytes would leave the
      // parser legitimately waiting for more rather than rejecting.
      const uint64_t garbage =
          net::kFrameHeaderBytes + rng.NextBounded(64);
      for (uint64_t i = 0; i < garbage; ++i) {
        wire.push_back(static_cast<char>(rng.NextBounded(256)));
      }
      if (wire[garbage_start] == 'T') wire[garbage_start] = 'X';
      return wire;
    }
    case 5: {  // pure noise (at least one full header, so the parser must
               // judge it rather than wait for more)
      std::string wire;
      const uint64_t len = net::kFrameHeaderBytes + rng.NextBounded(256);
      for (uint64_t i = 0; i < len; ++i) {
        wire.push_back(static_cast<char>(rng.NextBounded(256)));
      }
      if (wire[0] == 'T') wire[0] = 'X';  // ensure bad magic
      return wire;
    }
    default: {  // a server-only frame type sent by a client
      net::VerdictFrame verdict;
      verdict.request_id = seed;
      std::string wire;
      AppendVerdict(verdict, &wire);
      return wire;
    }
  }
}

TEST(NetFuzzTest, MalformedStreamsNeverHangCrashOrLeakAccounting) {
  ThreadPool pool(4);
  TemporalGraph graph = GenerateUniformRandom(24, 160, 16, 11);
  LiveEngineOptions options;
  options.engine.pool = &pool;
  auto live = LiveQueryEngine::Create(std::move(graph), options);
  ASSERT_TRUE(live.ok());
  auto server = net::TkcServer::Start(live->get());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  const uint32_t iterations = DifferentialScenarioCount(
#ifdef NDEBUG
      120,
#else
      42,
#endif
      "TKC_NET_SCENARIOS");

  uint64_t poisoned_streams = 0;
  for (uint64_t seed = 0; seed < iterations; ++seed) {
    bool poisoned = false;
    const std::string bytes = MalformedBytes(seed, &poisoned);
    RawConn conn(port);
    ASSERT_TRUE(conn.ok()) << "connect failed at seed " << seed;
    conn.SendAll(bytes);
    if (!poisoned) {
      // Incomplete-prefix streams: the server is (correctly) still waiting
      // for the rest of the frame. Abandon it abruptly — the EOF path must
      // clean up without fuss; the post-battery invariants prove it did.
      conn.Close();
      continue;
    }
    ++poisoned_streams;
    std::string received;
    bool reset = false;
    const bool ended = conn.DrainUntilClosed(&received, &reset);
    EXPECT_TRUE(ended) << "server hung on seed " << seed << " (category "
                       << seed % 7 << ")";
    if (!ended || reset) continue;
    // Whatever arrived before the close must be well-formed server frames
    // ending in kError — no partial-silent garbage echoes.
    net::FrameParser parser;
    parser.Feed(received.data(), received.size());
    net::Frame frame;
    bool saw_error = false;
    for (;;) {
      const net::FrameParser::Result r = parser.Next(&frame);
      if (r == net::FrameParser::Result::kNeedMore) break;
      ASSERT_EQ(r, net::FrameParser::Result::kFrame)
          << "server sent malformed bytes at seed " << seed;
      if (frame.type == net::FrameType::kError) saw_error = true;
    }
    EXPECT_TRUE(saw_error) << "seed " << seed << " (category " << seed % 7
                           << "): closed without an error frame";
  }
  EXPECT_GT(poisoned_streams, 0u);

  // Isolation: after the whole battery, a fresh healthy connection still
  // gets oracle-grade answers — poisoned streams killed only themselves.
  auto client = net::TkcClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  const std::vector<Query> queries = {{2, {1, 10}}, {3, {3, 14}}};
  const BatchResult direct = (*live)->ServeBatch(queries);
  auto response = (*client)->Query(queries);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->verdicts.size(), direct.outcomes.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(net::StatusCodeFromWire(response->verdicts[i].status_code),
              direct.outcomes[i].status.code());
    EXPECT_EQ(response->verdicts[i].num_cores, direct.outcomes[i].num_cores);
    EXPECT_EQ(response->verdicts[i].result_size_edges,
              direct.outcomes[i].result_size_edges);
  }
  (*client)->Close();
  (*server)->Stop();

  const net::ServerStats stats = (*server)->stats();
  EXPECT_GT(stats.frames_rejected, 0u);
  EXPECT_GT(stats.errors_sent, 0u);
  EXPECT_EQ(stats.batches_submitted, stats.batches_completed);
  EXPECT_EQ(stats.batches_completed,
            stats.responses_streamed + stats.responses_dropped);
  EXPECT_EQ(stats.connections_accepted,
            stats.connections_closed + stats.connections_dropped);
}

// A valid request dribbled one byte at a time must still be answered in
// full — frame reassembly exercised on the real socket path, without any
// fault injection.
TEST(NetFuzzTest, SingleByteDribbleStillAnswers) {
  ThreadPool pool(2);
  TemporalGraph graph = GenerateUniformRandom(20, 120, 12, 5);
  LiveEngineOptions options;
  options.engine.pool = &pool;
  auto live = LiveQueryEngine::Create(std::move(graph), options);
  ASSERT_TRUE(live.ok());
  auto server = net::TkcServer::Start(live->get());
  ASSERT_TRUE(server.ok());

  RawConn conn((*server)->port());
  ASSERT_TRUE(conn.ok());
  const std::string wire = ValidRequestBytes(7);
  for (char byte : wire) {
    ASSERT_TRUE(conn.SendAll(std::string(1, byte)));
  }

  net::FrameParser parser;
  net::Frame frame;
  uint32_t verdicts = 0;
  bool batch_end = false;
  char buf[1024];
  while (!batch_end) {
    const ssize_t n = ::recv(conn.fd(), buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "connection ended before the batch was answered";
    parser.Feed(buf, static_cast<size_t>(n));
    for (;;) {
      const net::FrameParser::Result r = parser.Next(&frame);
      if (r == net::FrameParser::Result::kNeedMore) break;
      ASSERT_EQ(r, net::FrameParser::Result::kFrame);
      if (frame.type == net::FrameType::kVerdict) {
        EXPECT_EQ(frame.verdict.request_id, 7u);
        ++verdicts;
      } else if (frame.type == net::FrameType::kBatchEnd) {
        EXPECT_EQ(frame.batch_end.request_id, 7u);
        EXPECT_EQ(frame.batch_end.num_queries, 2u);
        batch_end = true;
      } else {
        FAIL() << "unexpected frame type "
               << static_cast<int>(frame.type);
      }
    }
  }
  EXPECT_EQ(verdicts, 2u);
  conn.Close();
  (*server)->Stop();
}

}  // namespace
}  // namespace tkc
