// Equivalence and property tests for the efficient VCT/ECS builder against
// the naive per-start builder, across randomized graphs, k values and query
// ranges. This is the correctness backbone of the CoreTime phase.

#include <gtest/gtest.h>

#include <vector>

#include "datasets/generators.h"
#include "vct/naive_vct_builder.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

void ExpectSameVct(const VertexCoreTimeIndex& a, const VertexCoreTimeIndex& b,
                   const std::string& label) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << label;
  EXPECT_EQ(a.size(), b.size()) << label;
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    auto ea = a.EntriesOf(v);
    auto eb = b.EntriesOf(v);
    ASSERT_EQ(ea.size(), eb.size()) << label << " vertex " << v << "\n  fast: "
                                    << a.DebugString(v)
                                    << "\n  naive: " << b.DebugString(v);
    for (size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i], eb[i]) << label << " vertex " << v;
    }
  }
}

void ExpectSameEcs(const EdgeCoreWindowSkyline& a,
                   const EdgeCoreWindowSkyline& b, const std::string& label) {
  ASSERT_EQ(a.first_edge(), b.first_edge()) << label;
  ASSERT_EQ(a.last_edge(), b.last_edge()) << label;
  EXPECT_EQ(a.size(), b.size()) << label;
  for (EdgeId e = a.first_edge(); e < a.last_edge(); ++e) {
    auto wa = a.WindowsOf(e);
    auto wb = b.WindowsOf(e);
    ASSERT_EQ(wa.size(), wb.size())
        << label << " edge " << e << "\n  fast: " << a.DebugString(e)
        << "\n  naive: " << b.DebugString(e);
    for (size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(wa[i], wb[i]) << label << " edge " << e;
    }
  }
}

struct BuilderCase {
  uint32_t n, m, T, k;
  uint64_t seed;
};

void PrintTo(const BuilderCase& c, std::ostream* os) {
  *os << "n=" << c.n << " m=" << c.m << " T=" << c.T << " k=" << c.k
      << " seed=" << c.seed;
}

class VctBuilderEquivalenceTest : public ::testing::TestWithParam<BuilderCase> {
};

TEST_P(VctBuilderEquivalenceTest, FullRange) {
  const BuilderCase& c = GetParam();
  TemporalGraph g = GenerateUniformRandom(c.n, c.m, c.T, c.seed);
  VctBuildResult fast = BuildVctAndEcs(g, c.k, g.FullRange());
  VctBuildResult naive = BuildVctAndEcsNaive(g, c.k, g.FullRange());
  ExpectSameVct(fast.vct, naive.vct, "full range");
  ExpectSameEcs(fast.ecs, naive.ecs, "full range");
}

TEST_P(VctBuilderEquivalenceTest, SubRanges) {
  const BuilderCase& c = GetParam();
  TemporalGraph g = GenerateUniformRandom(c.n, c.m, c.T, c.seed);
  Timestamp tmax = g.num_timestamps();
  std::vector<Window> ranges = {{1, std::max<Timestamp>(1, tmax / 2)},
                                {tmax / 2 + 1, tmax},
                                {std::max<Timestamp>(1, tmax / 4),
                                 std::max<Timestamp>(1, (3 * tmax) / 4)}};
  for (const Window& r : ranges) {
    if (!(r.start >= 1 && r.start <= r.end && r.end <= tmax)) continue;
    std::string label = "range [" + std::to_string(r.start) + "," +
                        std::to_string(r.end) + "]";
    VctBuildResult fast = BuildVctAndEcs(g, c.k, r);
    VctBuildResult naive = BuildVctAndEcsNaive(g, c.k, r);
    ExpectSameVct(fast.vct, naive.vct, label);
    ExpectSameEcs(fast.ecs, naive.ecs, label);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, VctBuilderEquivalenceTest,
    ::testing::Values(
        BuilderCase{12, 50, 10, 2, 1}, BuilderCase{12, 50, 10, 3, 2},
        BuilderCase{20, 120, 16, 2, 3}, BuilderCase{20, 120, 16, 4, 4},
        BuilderCase{8, 60, 20, 2, 5}, BuilderCase{8, 60, 20, 3, 6},
        BuilderCase{30, 200, 25, 3, 7}, BuilderCase{30, 200, 25, 5, 8},
        BuilderCase{6, 40, 5, 2, 9}, BuilderCase{6, 40, 5, 3, 10},
        BuilderCase{10, 80, 40, 2, 11}, BuilderCase{25, 150, 30, 1, 12},
        BuilderCase{40, 300, 50, 4, 13}, BuilderCase{40, 300, 8, 4, 14}));

// The suffix entry point's defining property: for ANY band
// [suffix_start, advance_end], recomputing that band with BuildVctSuffix
// and stitching it back into the full slice must reproduce the full slice
// exactly — on an unchanged graph, the band computes the same values the
// full build did, so the stitch is a pure identity round-trip through both
// seams. This is the mechanical backbone of PhcIndex::Rebuild's partial
// maintenance (there the band additionally bounds where a delta can act).
TEST_P(VctBuilderEquivalenceTest, SuffixBandStitchRoundTrips) {
  const BuilderCase& c = GetParam();
  TemporalGraph g = GenerateUniformRandom(c.n, c.m, c.T, c.seed);
  const Window full = g.FullRange();
  const VertexCoreTimeIndex reference = BuildVctAndEcs(g, c.k, full).vct;
  const Timestamp tmax = full.end;
  VctBuildArena arena;
  const std::vector<std::pair<Timestamp, Timestamp>> bands = {
      {1, tmax},                               // whole range
      {1, std::max<Timestamp>(1, tmax / 2)},   // prefix band, tail reused
      {std::max<Timestamp>(1, tmax / 2), tmax},  // suffix band
      {std::max<Timestamp>(1, tmax / 3),
       std::max<Timestamp>(1, (2 * tmax) / 3)},  // interior band
      {tmax, tmax},                              // single last start
  };
  for (const auto& [s, a] : bands) {
    if (!(s >= 1 && s <= a && a <= tmax)) continue;
    const VertexCoreTimeIndex band =
        BuildVctSuffix(g, c.k, Window{s, tmax}, a, &arena);
    uint64_t reused = 0;
    const VertexCoreTimeIndex stitched =
        StitchCoreTimeSuffix(reference, band, s, a, &reused);
    ExpectSameVct(stitched, reference,
                  "band [" + std::to_string(s) + "," + std::to_string(a) +
                      "]");
    EXPECT_LE(reused, reference.size());
  }
}

// Monotonicity and consistency properties of the produced index.
class VctPropertyTest : public ::testing::TestWithParam<BuilderCase> {};

TEST_P(VctPropertyTest, EntriesMonotoneAndWithinRange) {
  const BuilderCase& c = GetParam();
  TemporalGraph g = GenerateUniformRandom(c.n, c.m, c.T, c.seed);
  Window range = g.FullRange();
  VctBuildResult built = BuildVctAndEcs(g, c.k, range);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto entries = built.vct.EntriesOf(v);
    for (size_t i = 0; i < entries.size(); ++i) {
      EXPECT_GE(entries[i].start, range.start);
      EXPECT_LE(entries[i].start, range.end);
      if (entries[i].core_time != kInfTime) {
        EXPECT_GE(entries[i].core_time, entries[i].start);
        EXPECT_LE(entries[i].core_time, range.end);
      }
      if (i > 0) {
        EXPECT_GT(entries[i].start, entries[i - 1].start);
        EXPECT_GT(entries[i].core_time, entries[i - 1].core_time);
      }
    }
    // First entry, when present, starts at the range start.
    if (!entries.empty()) EXPECT_EQ(entries[0].start, range.start);
  }
}

TEST_P(VctPropertyTest, EdgeCoreTimeLemma1) {
  // Lemma 1: CT_ts(u,v,t) = max(CT_ts(u), CT_ts(v), t). Cross-check that
  // each edge's first skyline window with start >= ts ends exactly there.
  const BuilderCase& c = GetParam();
  TemporalGraph g = GenerateUniformRandom(c.n, c.m, c.T, c.seed);
  Window range = g.FullRange();
  VctBuildResult built = BuildVctAndEcs(g, c.k, range);
  for (EdgeId e = built.ecs.first_edge(); e < built.ecs.last_edge(); ++e) {
    const TemporalEdge& edge = g.edge(e);
    for (Timestamp ts = range.start; ts <= edge.t; ++ts) {
      Timestamp cu = built.vct.CoreTimeAt(edge.u, ts);
      Timestamp cv = built.vct.CoreTimeAt(edge.v, ts);
      Timestamp ect = (cu == kInfTime || cv == kInfTime)
                          ? kInfTime
                          : std::max({cu, cv, edge.t});
      // The skyline equivalent: the smallest window end among windows
      // with start >= ts must equal ect (or none exist if ect == inf).
      Timestamp skyline_end = kInfTime;
      for (const Window& w : built.ecs.WindowsOf(e)) {
        if (w.start >= ts) {
          skyline_end = w.end;
          break;
        }
      }
      EXPECT_EQ(skyline_end, ect)
          << "edge " << e << " (" << edge.u << "," << edge.v << "," << edge.t
          << ") ts=" << ts;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, VctPropertyTest,
    ::testing::Values(BuilderCase{12, 60, 12, 2, 21},
                      BuilderCase{15, 90, 15, 3, 22},
                      BuilderCase{10, 70, 25, 2, 23},
                      BuilderCase{18, 100, 9, 3, 24}));

TEST(VctBuilderStatsTest, CountersPopulated) {
  TemporalGraph g = GenerateUniformRandom(20, 150, 20, 33);
  VctBuildStats stats;
  VctBuildResult built =
      BuildVctAndEcsWithStats(g, 2, g.FullRange(), &stats);
  EXPECT_GT(built.vct.size(), 0u);
  // Each core-time change beyond the initial sweep requires at least one
  // fixpoint recomputation.
  EXPECT_GE(stats.fixpoint_recomputations, stats.core_time_changes);
  EXPECT_GE(stats.worklist_pushes, stats.core_time_changes);
}

TEST(VctBuilderBurstyTest, SyntheticAgrees) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_vertices = 30;
  spec.num_edges = 400;
  spec.num_timestamps = 60;
  spec.burstiness = 0.4;
  spec.seed = 5;
  TemporalGraph g = GenerateSynthetic(spec);
  for (uint32_t k : {2u, 3u, 5u}) {
    VctBuildResult fast = BuildVctAndEcs(g, k, g.FullRange());
    VctBuildResult naive = BuildVctAndEcsNaive(g, k, g.FullRange());
    ExpectSameVct(fast.vct, naive.vct, "bursty k=" + std::to_string(k));
    ExpectSameEcs(fast.ecs, naive.ecs, "bursty k=" + std::to_string(k));
  }
}

}  // namespace
}  // namespace tkc
