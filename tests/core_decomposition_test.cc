#include "graph/core_decomposition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datasets/generators.h"
#include "util/rng.h"

namespace tkc {
namespace {

TemporalGraph CliquePlusTail() {
  // K4 on {0,1,2,3} plus a path 3-4-5; core numbers: clique 3, path 1.
  TemporalGraphBuilder b;
  int t = 1;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) b.AddEdge(u, v, t++);
  }
  b.AddEdge(3, 4, t++);
  b.AddEdge(4, 5, t++);
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(CoreDecompositionTest, CliquePlusTailCoreNumbers) {
  TemporalGraph g = CliquePlusTail();
  CoreDecompositionResult r = DecomposeCores(g);
  EXPECT_EQ(r.kmax, 3u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(r.core_numbers[v], 3u) << v;
  EXPECT_EQ(r.core_numbers[4], 1u);
  EXPECT_EQ(r.core_numbers[5], 1u);
}

TEST(CoreDecompositionTest, KCoreVerticesSelector) {
  TemporalGraph g = CliquePlusTail();
  CoreDecompositionResult r = DecomposeCores(g);
  EXPECT_EQ(r.KCoreVertices(3), (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(r.KCoreVertices(1).size(), 6u);
  EXPECT_TRUE(r.KCoreVertices(4).empty());
}

TEST(CoreDecompositionTest, ParallelEdgesDoNotInflateDegree) {
  // Two vertices with 5 parallel edges: degree 1 each -> kmax 1.
  TemporalGraphBuilder b;
  for (int t = 1; t <= 5; ++t) b.AddEdge(0, 1, t);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  CoreDecompositionResult r = DecomposeCores(*g);
  EXPECT_EQ(r.kmax, 1u);
}

TEST(CoreDecompositionTest, WindowRestriction) {
  TemporalGraph g = CliquePlusTail();
  // The clique edges carry times 1..6; restricting to a window with only
  // the tail edges leaves kmax 1.
  CoreDecompositionResult full = DecomposeCores(g, g.FullRange());
  CoreDecompositionResult tail = DecomposeCores(g, Window{7, 8});
  EXPECT_EQ(full.kmax, 3u);
  EXPECT_EQ(tail.kmax, 1u);
}

TEST(CoreDecompositionTest, EmptyWindowAllZero) {
  TemporalGraph g = CliquePlusTail();
  CoreDecompositionResult r = DecomposeCores(g, Window{8, 8});
  // Window {8,8} has one edge (4,5): both endpoints core number 1.
  EXPECT_EQ(r.core_numbers[4], 1u);
  EXPECT_EQ(r.core_numbers[0], 0u);
}

TEST(BuildSimpleProjectionTest, DedupsParallelEdges) {
  TemporalGraphBuilder b;
  b.AddEdge(0, 1, 1);
  b.AddEdge(0, 1, 2);
  b.AddEdge(1, 2, 3);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  SimpleProjection p = BuildSimpleProjection(*g, g->FullRange());
  EXPECT_EQ(p.Degree(0), 1u);
  EXPECT_EQ(p.Degree(1), 2u);
  EXPECT_EQ(p.Degree(2), 1u);
  EXPECT_EQ(p.NumDirectedEdges(), 4u);
}

// Property: the definition of core number — every vertex v has >= core(v)
// neighbors with core number >= core(v), and core numbers are maximal (the
// subgraph induced by {core >= k} has min degree >= k).
TEST(CoreDecompositionTest, RandomizedDefinitionProperty) {
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    TemporalGraph g = GenerateUniformRandom(
        20 + trial, 60 + 10 * trial, 10, 1000 + trial);
    CoreDecompositionResult r = DecomposeCores(g);
    SimpleProjection p = BuildSimpleProjection(g, g.FullRange());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      uint32_t c = r.core_numbers[v];
      if (c == 0) continue;
      uint32_t supporters = 0;
      for (VertexId w : p.NeighborsOf(v)) {
        if (r.core_numbers[w] >= c) ++supporters;
      }
      EXPECT_GE(supporters, c) << "vertex " << v << " trial " << trial;
    }
    // Maximality at each k: the k-core (by core numbers) has min degree k
    // inside itself, checked above; additionally no vertex outside could be
    // added (spot check k = kmax: recompute by peeling).
    EXPECT_GE(r.kmax, 1u);
  }
}

TEST(CoreDecompositionTest, DegreeOneStarGraph) {
  TemporalGraphBuilder b;
  for (VertexId leaf = 1; leaf <= 6; ++leaf) b.AddEdge(0, leaf, leaf);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  CoreDecompositionResult r = DecomposeCores(*g);
  EXPECT_EQ(r.kmax, 1u);
  for (VertexId v = 0; v <= 6; ++v) EXPECT_EQ(r.core_numbers[v], 1u);
}

}  // namespace
}  // namespace tkc
