// Parallel-determinism tests: PhcIndex::Build must produce bit-identical
// slices at every thread count, on randomized generator graphs. Also covers
// the parallel query-workload runner against its serial aggregate.

#include <gtest/gtest.h>

#include <vector>

#include "datasets/generators.h"
#include "graph/graph_stats.h"
#include "util/thread_pool.h"
#include "vct/phc_index.h"
#include "vct/vct_builder.h"
#include "workload/query_workload.h"

namespace tkc {
namespace {

// Deep slice-by-slice equality: sizes, every entry, and CoreTimeAt spot
// checks across the range.
void ExpectIdentical(const PhcIndex& a, const PhcIndex& b,
                     const TemporalGraph& g) {
  ASSERT_EQ(a.max_k(), b.max_k());
  ASSERT_EQ(a.size(), b.size());
  for (uint32_t k = 1; k <= a.max_k(); ++k) {
    const VertexCoreTimeIndex& sa = a.Slice(k);
    const VertexCoreTimeIndex& sb = b.Slice(k);
    ASSERT_EQ(sa.size(), sb.size()) << "k=" << k;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      auto ea = sa.EntriesOf(v), eb = sb.EntriesOf(v);
      ASSERT_EQ(ea.size(), eb.size()) << "k=" << k << " v=" << v;
      for (size_t i = 0; i < ea.size(); ++i) {
        ASSERT_EQ(ea[i], eb[i]) << "k=" << k << " v=" << v << " entry " << i;
      }
    }
  }
  const Window range = a.range();
  for (uint32_t k = 1; k <= a.max_k() + 1; ++k) {
    for (VertexId v = 0; v < g.num_vertices(); v += 3) {
      for (Timestamp ts = range.start; ts <= range.end; ts += 4) {
        ASSERT_EQ(a.CoreTimeAt(v, ts, k), b.CoreTimeAt(v, ts, k))
            << "k=" << k << " v=" << v << " ts=" << ts;
      }
    }
  }
}

StatusOr<PhcIndex> BuildWithThreads(const TemporalGraph& g, Window range,
                                    int num_threads) {
  ThreadPool pool(num_threads);
  PhcBuildOptions options;
  options.pool = &pool;
  return PhcIndex::Build(g, range, options);
}

TEST(PhcParallelTest, OneTwoAndEightThreadsAgreeOnRandomGraphs) {
  for (uint64_t seed : {3u, 17u, 91u}) {
    TemporalGraph g = GenerateUniformRandom(30, 600, 25, seed);
    PhcBuildOptions serial;  // pool == nullptr: reference serial build
    auto reference = PhcIndex::Build(g, g.FullRange(), serial);
    ASSERT_TRUE(reference.ok());
    ASSERT_GE(reference->max_k(), 2u) << "seed " << seed;
    for (int threads : {1, 2, 8}) {
      auto parallel = BuildWithThreads(g, g.FullRange(), threads);
      ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
      ExpectIdentical(*reference, *parallel, g);
    }
  }
}

TEST(PhcParallelTest, DefaultBuildUsesSharedPoolAndMatchesSerial) {
  TemporalGraph g = GenerateUniformRandom(24, 400, 15, 7);
  PhcBuildOptions serial;
  auto reference = PhcIndex::Build(g, g.FullRange(), serial);
  auto via_shared = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(reference.ok() && via_shared.ok());
  ExpectIdentical(*reference, *via_shared, g);
}

TEST(PhcParallelTest, SubRangeAndCappedBuildsAgreeAcrossThreads) {
  TemporalGraph g = GenerateUniformRandom(28, 500, 20, 41);
  Window sub{4, 17};
  for (uint32_t cap : {0u, 2u}) {
    PhcBuildOptions serial;
    serial.max_k = cap;
    auto reference = PhcIndex::Build(g, sub, serial);
    ASSERT_TRUE(reference.ok());
    ThreadPool pool(8);
    PhcBuildOptions options;
    options.max_k = cap;
    options.pool = &pool;
    auto parallel = PhcIndex::Build(g, sub, options);
    ASSERT_TRUE(parallel.ok());
    ExpectIdentical(*reference, *parallel, g);
  }
}

TEST(PhcParallelTest, OnePoolServesManyBuilds) {
  // Arena reuse across consecutive builds through the same pool must not
  // leak state from one graph/range into the next.
  ThreadPool pool(4);
  PhcBuildOptions options;
  options.pool = &pool;
  for (uint64_t seed : {5u, 6u}) {
    TemporalGraph g = GenerateUniformRandom(20, 300, 12, seed);
    PhcBuildOptions serial;
    auto reference = PhcIndex::Build(g, g.FullRange(), serial);
    auto parallel = PhcIndex::Build(g, g.FullRange(), options);
    ASSERT_TRUE(reference.ok() && parallel.ok());
    ExpectIdentical(*reference, *parallel, g);
  }
}

// The single-k builder's bootstrap fan-out (window-adjacency cursor
// placement + initial edge-core-time fill) must be bit-identical to the
// serial build — VCT and ECS both — at every thread count, with and
// without a reused arena.
TEST(PhcParallelTest, ParallelBootstrapSweepMatchesSerial) {
  // One small graph (the fan-out's inline fallback) and one graph large
  // enough (> 2 * 4096 vertices and window edges) that the cursor and ect
  // fills genuinely shard across workers.
  struct Shape {
    uint32_t n, m, T;
    uint64_t seed;
  };
  for (const Shape& shape : {Shape{40, 900, 30, 11u},
                             Shape{12000, 30000, 12, 29u}}) {
    TemporalGraph g =
        GenerateUniformRandom(shape.n, shape.m, shape.T, shape.seed);
    const uint64_t seed = shape.seed;
    for (uint32_t k : {1u, 2u, 3u}) {
      if (k == 3 && shape.n > 1000) continue;  // large shape: 2 slices do
      const Window range =
          k == 3 ? Window{5, 22}
                 : (k == 2 && shape.n > 1000
                        ? Window{2, static_cast<Timestamp>(
                                        g.num_timestamps() - 1)}
                        : g.FullRange());
      VctBuildResult serial = BuildVctAndEcs(g, k, range);
      for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        VctBuildArena arena;
        // Two builds through the same arena: reuse must not change output.
        for (int repeat = 0; repeat < 2; ++repeat) {
          VctBuildResult parallel =
              BuildVctAndEcs(g, k, range, &arena, &pool);
          ASSERT_EQ(serial.vct.size(), parallel.vct.size())
              << "seed=" << seed << " k=" << k << " threads=" << threads;
          for (VertexId v = 0; v < g.num_vertices(); ++v) {
            auto es = serial.vct.EntriesOf(v);
            auto ep = parallel.vct.EntriesOf(v);
            ASSERT_EQ(es.size(), ep.size()) << "v=" << v;
            for (size_t i = 0; i < es.size(); ++i) {
              ASSERT_EQ(es[i], ep[i]) << "v=" << v << " entry " << i;
            }
          }
          ASSERT_EQ(serial.ecs.size(), parallel.ecs.size());
          ASSERT_EQ(serial.ecs.first_edge(), parallel.ecs.first_edge());
          ASSERT_EQ(serial.ecs.last_edge(), parallel.ecs.last_edge());
          for (EdgeId e = serial.ecs.first_edge();
               e < serial.ecs.last_edge(); ++e) {
            auto ws = serial.ecs.WindowsOf(e);
            auto wp = parallel.ecs.WindowsOf(e);
            ASSERT_EQ(ws.size(), wp.size()) << "e=" << e;
            for (size_t i = 0; i < ws.size(); ++i) {
              ASSERT_EQ(ws[i], wp[i]) << "e=" << e << " window " << i;
            }
          }
        }
      }
    }
  }
}

TEST(PhcParallelTest, ParallelWorkloadAggregateMatchesSerial) {
  TemporalGraph g = GenerateUniformRandom(30, 600, 25, 13);
  GraphStats stats = ComputeGraphStats(g);
  WorkloadSpec spec;
  spec.num_queries = 6;
  spec.range_fraction = 0.4;
  auto queries = GenerateQueries(g, stats.kmax, spec);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ThreadPool pool(4);
  for (AlgorithmKind kind :
       {AlgorithmKind::kCoreTime, AlgorithmKind::kEnum}) {
    AggregateOutcome serial = RunAlgorithmOnQueries(kind, g, *queries, 0);
    AggregateOutcome parallel =
        RunAlgorithmOnQueries(kind, g, *queries, 0, &pool);
    ASSERT_TRUE(serial.completed && parallel.completed);
    // Timing fields differ run to run; the counted outputs must not.
    EXPECT_DOUBLE_EQ(serial.avg_num_cores, parallel.avg_num_cores);
    EXPECT_DOUBLE_EQ(serial.avg_result_size_edges,
                     parallel.avg_result_size_edges);
    EXPECT_DOUBLE_EQ(serial.avg_vct_size, parallel.avg_vct_size);
    EXPECT_DOUBLE_EQ(serial.avg_ecs_size, parallel.avg_ecs_size);
  }
}

}  // namespace
}  // namespace tkc
