// Tests of the fixed-size worker pool: coverage, worker-id bounds,
// exception propagation, Submit futures, and the serial degenerate case.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace tkc {
namespace {

TEST(ThreadPoolTest, DefaultNumThreadsIsPositive) {
  EXPECT_GE(DefaultNumThreads(), 1);
}

TEST(ThreadPoolTest, NumThreadsClampedToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i, int) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  ThreadPool pool(3);
  std::atomic<bool> out_of_range{false};
  pool.ParallelFor(5000, [&](size_t, int worker) {
    if (worker < 0 || worker >= pool.num_threads()) out_of_range = true;
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(ThreadPoolTest, SerialPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(100, [&](size_t i, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);  // no lock needed: everything runs on this thread
  });
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t, int) { FAIL() << "body must not run"; });
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&](size_t i, int) {
                         if (i == 577) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a throwing ParallelFor and remains usable.
  std::atomic<size_t> count{0};
  pool.ParallelFor(64, [&](size_t, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPoolTest, SubmitRunsTaskAndFutureWaits) {
  ThreadPool pool(3);
  std::atomic<int> value{0};
  std::future<void> done = pool.Submit([&] { value = 42; });
  done.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, SubmitOnSerialPoolRunsInline) {
  ThreadPool pool(1);
  int value = 0;
  std::future<void> done = pool.Submit([&] { value = 7; });
  EXPECT_EQ(value, 7);  // already ran, no workers to defer to
  done.get();
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> done =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(done.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManySmallParallelForsReuseThePool) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(17, [&](size_t, int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPoolTest, NestedParallelForOnSamePoolRunsInline) {
  // A ParallelFor issued from inside one of the pool's own tasks must not
  // block on workers (they may all be blocked the same way); it degrades
  // to an inline loop. This would deadlock without the guard.
  ThreadPool pool(4);
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(16, [&](size_t, int) {
    pool.ParallelFor(8, [&](size_t, int) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 16u * 8u);
}

TEST(ThreadPoolTest, SharedPoolIsStableAndSized) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1);
}

}  // namespace
}  // namespace tkc
