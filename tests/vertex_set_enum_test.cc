// Tests of the vertex-set enumeration extension (the paper's Future Work):
// distinctness, consistency with the edge-set enumeration, and oracle
// equivalence on random graphs.

#include "core/vertex_set_enum.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/temporal_kcore.h"
#include "datasets/generators.h"

namespace tkc {
namespace {

// Oracle: distinct vertex sets of all distinct edge-set cores, first
// occurrence order not checked (set comparison).
std::set<std::vector<VertexId>> OracleVertexSets(const TemporalGraph& g,
                                                 uint32_t k, Window range) {
  CollectingSink sink;
  QueryOptions naive;
  naive.enum_method = EnumMethod::kNaive;
  EXPECT_TRUE(RunTemporalKCoreQuery(g, k, range, &sink, naive).ok());
  std::set<std::vector<VertexId>> sets;
  for (const CoreResult& core : sink.cores()) {
    std::set<VertexId> vs;
    for (EdgeId e : core.edges) {
      vs.insert(g.edge(e).u);
      vs.insert(g.edge(e).v);
    }
    sets.insert(std::vector<VertexId>(vs.begin(), vs.end()));
  }
  return sets;
}

TEST(VertexSetEnumTest, PaperExampleRange14) {
  // Figure 2: two cores with vertex sets {1,2,4} and {1,2,3,4,9}.
  TemporalGraph g = PaperExampleGraph();
  auto results = EnumerateVertexSets(g, 2, Window{1, 4});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  std::set<std::vector<VertexId>> sets;
  for (const auto& r : *results) sets.insert(r.vertices);
  EXPECT_TRUE(sets.count({1, 2, 4}));
  EXPECT_TRUE(sets.count({1, 2, 3, 4, 9}));
}

TEST(VertexSetEnumTest, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    TemporalGraph g = GenerateUniformRandom(12, 70, 12, seed);
    for (uint32_t k : {2u, 3u}) {
      auto results = EnumerateVertexSets(g, k, g.FullRange());
      ASSERT_TRUE(results.ok());
      std::set<std::vector<VertexId>> got;
      for (const auto& r : *results) {
        EXPECT_TRUE(got.insert(r.vertices).second)
            << "duplicate vertex set, seed " << seed;
      }
      EXPECT_EQ(got, OracleVertexSets(g, k, g.FullRange()))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(VertexSetEnumTest, FewerOrEqualVertexSetsThanEdgeSets) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_vertices = 20;
  spec.num_edges = 240;
  spec.num_timestamps = 40;
  spec.burstiness = 0.5;
  spec.seed = 3;
  TemporalGraph g = GenerateSynthetic(spec);

  CountingSink edge_counter;
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 3, g.FullRange(), &edge_counter).ok());

  uint64_t vertex_sets = 0;
  VertexSetDedupSink sink(g, [&](Window, std::span<const VertexId>) {
    ++vertex_sets;
  });
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 3, g.FullRange(), &sink).ok());
  EXPECT_EQ(sink.cores_seen(), edge_counter.num_cores());
  EXPECT_EQ(sink.vertex_sets_emitted(), vertex_sets);
  EXPECT_LE(vertex_sets, edge_counter.num_cores());
  EXPECT_GT(vertex_sets, 0u);
}

TEST(VertexSetEnumTest, VerticesSortedAndDegreesAtLeastK) {
  TemporalGraph g = GenerateUniformRandom(14, 90, 10, 21);
  auto results = EnumerateVertexSets(g, 2, g.FullRange());
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) {
    EXPECT_TRUE(std::is_sorted(r.vertices.begin(), r.vertices.end()));
    EXPECT_GE(r.vertices.size(), 3u);  // a 2-core needs >= 3 vertices
    EXPECT_TRUE(r.tti.Valid());
  }
}

TEST(VertexSetEnumTest, InvalidInputsPropagate) {
  TemporalGraph g = PaperExampleGraph();
  auto results = EnumerateVertexSets(g, 0, g.FullRange());
  EXPECT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tkc
