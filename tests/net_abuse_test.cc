// Connection-abuse battery: clients that misbehave without ever sending a
// malformed byte. A slow reader that lets the server's outbound buffer
// fill (read-pause backpressure), an abrupt disconnect with batches still
// executing (late verdicts settle as responses_dropped), a half-open
// socket that never speaks (idle reap), wire-level deadline expiry under a
// backed-up engine queue (shed/timeout verdicts cross the wire exactly as
// in-process), and the net.accept_fail / net.write_stall fault points.
// After every scenario the server counters and the engine's update
// accounting must balance. Runs under asan/ubsan in CI (`ctest -L net`).

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire_format.h"
#include "serve/snapshot.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace tkc {
namespace {

StatusOr<std::unique_ptr<LiveQueryEngine>> MakeLive(
    ThreadPool* pool, size_t async_queue_capacity = 64) {
  TemporalGraph graph = GenerateUniformRandom(24, 160, 16, 11);
  LiveEngineOptions options;
  options.engine.pool = pool;
  options.engine.async_queue_capacity = async_queue_capacity;
  return LiveQueryEngine::Create(std::move(graph), options);
}

std::vector<Query> SomeQueries() {
  return {{1, {1, 8}}, {2, {2, 12}}, {3, {1, 16}}, {2, {5, 9}}, {4, {1, 16}}};
}

/// Polls the server's stats until `done` says the counters settled, or the
/// deadline passes. Abuse scenarios end asynchronously (the server notices
/// a dead peer on its own schedule), so assertions wait for quiescence
/// instead of assuming it.
template <typename Predicate>
net::ServerStats AwaitStats(net::TkcServer* server, Predicate done,
                            int max_wait_ms = 5000) {
  net::ServerStats stats = server->stats();
  for (int waited = 0; !done(stats) && waited < max_wait_ms; waited += 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stats = server->stats();
  }
  return stats;
}

void ExpectBalanced(const net::ServerStats& stats) {
  EXPECT_EQ(stats.batches_submitted, stats.batches_completed);
  EXPECT_EQ(stats.batches_completed,
            stats.responses_streamed + stats.responses_dropped);
  EXPECT_EQ(stats.connections_accepted,
            stats.connections_closed + stats.connections_dropped);
}

// A client that pipelines a burst of requests and only then starts
// reading. The server's outbound buffer must absorb the backlog (pausing
// reads past max_outbound_bytes rather than buffering without bound) and
// every response must still arrive, complete and in order per batch.
TEST(NetAbuseTest, SlowReaderGetsEveryResponseUnderBackpressure) {
  ThreadPool pool(4);
  auto live = MakeLive(&pool);
  ASSERT_TRUE(live.ok());
  net::ServerOptions options;
  options.max_outbound_bytes = 1024;  // a few verdict frames deep, no more
  auto server = net::TkcServer::Start(live->get(), options);
  ASSERT_TRUE(server.ok());

  auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  const std::vector<Query> queries = SomeQueries();
  const BatchResult direct = (*live)->ServeBatch(queries);

  constexpr int kBatches = 24;
  std::vector<uint64_t> ids;
  for (int b = 0; b < kBatches; ++b) {
    auto id = (*client)->Send(queries);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  // Let the responses pile up server-side before reading a single byte:
  // with ~75 bytes per verdict frame this burst far exceeds the 1 KiB
  // outbound cap, so the read-pause path has to engage for the server to
  // survive it without unbounded memory.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  for (uint64_t id : ids) {
    auto response = (*client)->Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->verdicts.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(response->verdicts[i].num_cores, direct.outcomes[i].num_cores);
      EXPECT_EQ(response->verdicts[i].result_size_edges,
                direct.outcomes[i].result_size_edges);
    }
  }
  (*client)->Close();
  // Wait for the event loop to notice the EOF (otherwise Stop() races it
  // and tears the connection down as dropped rather than closed).
  const net::ServerStats stats =
      AwaitStats(server->get(), [](const net::ServerStats& s) {
        return s.connections_closed == 1;
      });
  (*server)->Stop();

  EXPECT_EQ(stats.requests_received, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats.responses_streamed, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats.responses_dropped, 0u);
  EXPECT_EQ(stats.connections_dropped, 0u);
  EXPECT_EQ(stats.connections_closed, 1u);
  ExpectBalanced((*server)->stats());
}

// Abrupt disconnect with batches still executing: the client vanishes, the
// engine keeps computing, and every late verdict must settle as
// responses_dropped — counted, not leaked, not crashed on. Updates applied
// concurrently must also all land (the updater never sees the abuse).
TEST(NetAbuseTest, AbruptDisconnectSettlesInFlightBatchesAsDropped) {
  ThreadPool pool(4);
  auto live = MakeLive(&pool, /*async_queue_capacity=*/1);
  ASSERT_TRUE(live.ok());
  auto server = net::TkcServer::Start(live->get());
  ASSERT_TRUE(server.ok());

  constexpr int kBatches = 16;
  {
    auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    for (int b = 0; b < kBatches; ++b) {
      auto id = (*client)->Send(SomeQueries());
      ASSERT_TRUE(id.ok());
    }
    (*client)->Close();  // gone before reading one byte
  }
  // Meanwhile, snapshot swaps keep landing.
  ASSERT_TRUE((*live)->ApplyUpdates({{2, 7, 17}, {3, 9, 18}}).get().ok());

  const net::ServerStats stats =
      AwaitStats(server->get(), [](const net::ServerStats& s) {
        return s.batches_completed == kBatches &&
               s.connections_accepted ==
                   s.connections_closed + s.connections_dropped;
      });
  EXPECT_EQ(stats.requests_received, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats.batches_completed, static_cast<uint64_t>(kBatches));
  // The engine queue was 1 deep and the client died instantly: verdicts
  // kept arriving long after the socket was gone.
  EXPECT_GT(stats.responses_dropped, 0u);
  ExpectBalanced(stats);

  const LiveStats live_stats = (*live)->stats();
  EXPECT_EQ(live_stats.failed_updates, 0u);
  EXPECT_GE(live_stats.swaps, 1u);
  (*server)->Stop();
  ExpectBalanced((*server)->stats());
}

// A half-open socket that connects and never sends a byte must be reaped
// by the idle timeout as connections_dropped — not held forever.
TEST(NetAbuseTest, HalfOpenSocketIsReapedByIdleTimeout) {
  ThreadPool pool(2);
  auto live = MakeLive(&pool);
  ASSERT_TRUE(live.ok());
  net::ServerOptions options;
  options.idle_timeout_seconds = 0.05;
  auto server = net::TkcServer::Start(live->get(), options);
  ASSERT_TRUE(server.ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*server)->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  const net::ServerStats stats =
      AwaitStats(server->get(), [](const net::ServerStats& s) {
        return s.connections_dropped == 1;
      });
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.connections_dropped, 1u);
  ::close(fd);

  // An *active* client under the same timeout is not reaped mid-request.
  auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto response = (*client)->Query(SomeQueries());
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  (*client)->Close();
  (*server)->Stop();
  ExpectBalanced((*server)->stats());
}

// Wire deadlines behave exactly like in-process deadlines: with the engine
// queue backed up and a 1 ms budget per batch, some batches are shed by
// PushOrEvict (ResourceExhausted) or expire before execution (Timeout) —
// and those verdicts arrive over the wire as explicit statuses, counted by
// the server, never as silence.
TEST(NetAbuseTest, WireDeadlineExpiryShedsExplicitlyOverTheWire) {
  ThreadPool pool(4);
  auto live = MakeLive(&pool, /*async_queue_capacity=*/1);
  ASSERT_TRUE(live.ok());
  auto server = net::TkcServer::Start(live->get());
  ASSERT_TRUE(server.ok());

  auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  constexpr int kBatches = 32;
  std::vector<uint64_t> ids;
  for (int b = 0; b < kBatches; ++b) {
    auto id = (*client)->Send(SomeQueries(), /*deadline_ms=*/1);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  uint64_t explicit_verdicts = 0;
  for (uint64_t id : ids) {
    auto response = (*client)->Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    for (const net::VerdictFrame& verdict : response->verdicts) {
      const StatusCode code = net::StatusCodeFromWire(verdict.status_code);
      // The whole point: a blown wire deadline is an explicit verdict, one
      // of exactly these — never a hang, never a fabricated answer.
      ASSERT_TRUE(code == StatusCode::kOk || code == StatusCode::kTimeout ||
                  code == StatusCode::kResourceExhausted ||
                  code == StatusCode::kInvalidArgument)
          << "unexpected status " << static_cast<int>(code);
      if (code == StatusCode::kTimeout ||
          code == StatusCode::kResourceExhausted) {
        ++explicit_verdicts;
      }
    }
  }
  (*client)->Close();
  (*server)->Stop();

  const net::ServerStats stats = (*server)->stats();
  // 32 pipelined batches against a queue of depth 1 on 1 ms budgets: the
  // backlog cannot clear in time, so shedding must have engaged.
  EXPECT_GT(explicit_verdicts, 0u);
  EXPECT_GT(stats.batches_shed + stats.deadlines_expired, 0u);
  ExpectBalanced(stats);
}

// net.accept_fail: the listener accepts and immediately closes, counting
// accept_failures; once the schedule is exhausted service resumes.
TEST(NetAbuseTest, AcceptFailFaultDropsHandshakesThenRecovers) {
  ThreadPool pool(2);
  auto live = MakeLive(&pool);
  ASSERT_TRUE(live.ok());
  auto server = net::TkcServer::Start(live->get());
  ASSERT_TRUE(server.ok());

  {
    ScopedFault fault(kFaultNetAcceptFail, {1.0, 42, 2});
    for (int i = 0; i < 2; ++i) {
      // The TCP handshake itself succeeds (backlog), so Connect returns a
      // client — whose first round-trip then reports the closed socket.
      auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
      ASSERT_TRUE(client.ok());
      auto response = (*client)->Query(SomeQueries());
      EXPECT_FALSE(response.ok());
    }
    const net::ServerStats stats =
        AwaitStats(server->get(), [](const net::ServerStats& s) {
          return s.accept_failures == 2;
        });
    EXPECT_EQ(stats.accept_failures, 2u);
    EXPECT_EQ(fault.stats().fires, 2u);
  }

  auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto response = (*client)->Query(SomeQueries());
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  (*client)->Close();
  (*server)->Stop();
  ExpectBalanced((*server)->stats());
}

// net.write_stall: a stalled send delays a response by a poll round but
// never corrupts or drops it — the wire answers stay oracle-exact.
TEST(NetAbuseTest, WriteStallFaultDelaysButNeverCorruptsResponses) {
  ThreadPool pool(2);
  auto live = MakeLive(&pool);
  ASSERT_TRUE(live.ok());
  auto server = net::TkcServer::Start(live->get());
  ASSERT_TRUE(server.ok());

  ScopedFault fault(kFaultNetWriteStall, {0.5, 7, 8});
  auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  const std::vector<Query> queries = SomeQueries();
  const BatchResult direct = (*live)->ServeBatch(queries);
  for (int round = 0; round < 12; ++round) {
    auto response = (*client)->Query(queries);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->verdicts.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(response->verdicts[i].num_cores, direct.outcomes[i].num_cores);
      EXPECT_EQ(response->verdicts[i].result_size_edges,
                direct.outcomes[i].result_size_edges);
    }
  }
  EXPECT_GT(fault.stats().fires, 0u);
  (*client)->Close();
  (*server)->Stop();
  ExpectBalanced((*server)->stats());
}

}  // namespace
}  // namespace tkc
