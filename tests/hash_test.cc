#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace tkc {
namespace {

TEST(SetHash128Test, EmptyHashesEqual) {
  SetHash128 a, b;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Digest64(), b.Digest64());
  EXPECT_EQ(a.count(), 0u);
}

TEST(SetHash128Test, OrderIndependence) {
  SetHash128 a, b;
  a.Add(1);
  a.Add(2);
  a.Add(3);
  b.Add(3);
  b.Add(1);
  b.Add(2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Digest64(), b.Digest64());
}

TEST(SetHash128Test, DifferentSetsDiffer) {
  SetHash128 a, b;
  a.Add(1);
  a.Add(2);
  b.Add(1);
  b.Add(3);
  EXPECT_FALSE(a == b);
}

TEST(SetHash128Test, CardinalityDistinguishesMultisets) {
  // {1,2} vs {3}: even if a mixer collision contrived sum/xor equality, the
  // count component differs. Check count is tracked.
  SetHash128 a;
  a.Add(1);
  a.Add(2);
  EXPECT_EQ(a.count(), 2u);
}

TEST(SetHash128Test, RemoveUndoesAdd) {
  SetHash128 a, b;
  a.Add(10);
  a.Add(20);
  a.Add(30);
  a.Remove(20);
  b.Add(10);
  b.Add(30);
  EXPECT_EQ(a, b);
}

TEST(SetHash128Test, ClearResets) {
  SetHash128 a;
  a.Add(7);
  a.Clear();
  EXPECT_EQ(a, SetHash128());
}

TEST(SetHash128Test, IncrementalEqualsBatch) {
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(rng.Next());
  SetHash128 forward, backward;
  for (uint64_t k : keys) forward.Add(k);
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) backward.Add(*it);
  EXPECT_EQ(forward, backward);
}

TEST(SetHash128Test, NoCollisionsAcrossManyRandomSets) {
  // 10k random small sets -> 10k digests; expect no collisions.
  Rng rng(77);
  std::set<uint64_t> digests;
  for (int i = 0; i < 10000; ++i) {
    SetHash128 h;
    int n = 1 + static_cast<int>(rng.NextBounded(8));
    for (int j = 0; j < n; ++j) h.Add(rng.NextBounded(1000));
    digests.insert(h.Digest64());
  }
  // Distinct sets may repeat across iterations (same random set drawn
  // twice), so we only require a high distinct count, not exactly 10k.
  EXPECT_GT(digests.size(), 9000u);
}

TEST(SetHash128Test, SubsetDiffersFromSuperset) {
  SetHash128 a, b;
  for (uint64_t k = 0; k < 50; ++k) {
    a.Add(k);
    b.Add(k);
  }
  b.Add(50);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.Digest64(), b.Digest64());
}

TEST(HashU64Test, MixesAdjacentKeys) {
  // Adjacent integers must produce very different hashes (avalanche).
  uint64_t h0 = HashU64(1000), h1 = HashU64(1001);
  int differing_bits = __builtin_popcountll(h0 ^ h1);
  EXPECT_GT(differing_bits, 16);
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(HashU64(1), 2), HashCombine(HashU64(2), 1));
}

}  // namespace
}  // namespace tkc
