#include "vct/vct_index.h"

#include <gtest/gtest.h>

#include <vector>

namespace tkc {
namespace {

VertexCoreTimeIndex MakeIndex() {
  // Vertex 0: [1,3],[3,5],[6,inf]; vertex 2: [1,7]; vertex 1: none.
  std::vector<std::pair<VertexId, VctEntry>> emissions = {
      {0, {1, 3}}, {0, {3, 5}}, {0, {6, kInfTime}}, {2, {1, 7}},
  };
  return VertexCoreTimeIndex::FromEmissions(3, Window{1, 8}, emissions);
}

TEST(VctIndexTest, EntriesOf) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_EQ(idx.EntriesOf(0).size(), 3u);
  EXPECT_EQ(idx.EntriesOf(1).size(), 0u);
  EXPECT_EQ(idx.EntriesOf(2).size(), 1u);
  EXPECT_EQ(idx.size(), 4u);
  EXPECT_EQ(idx.num_vertices(), 3u);
  EXPECT_EQ(idx.num_indexed_vertices(), 2u);
}

TEST(VctIndexTest, CoreTimeAtBreakpoints) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_EQ(idx.CoreTimeAt(0, 1), 3u);
  EXPECT_EQ(idx.CoreTimeAt(0, 2), 3u);  // between breakpoints
  EXPECT_EQ(idx.CoreTimeAt(0, 3), 5u);
  EXPECT_EQ(idx.CoreTimeAt(0, 5), 5u);
  EXPECT_EQ(idx.CoreTimeAt(0, 6), kInfTime);
  EXPECT_EQ(idx.CoreTimeAt(0, 8), kInfTime);
}

TEST(VctIndexTest, UnindexedVertexIsInfinity) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_EQ(idx.CoreTimeAt(1, 1), kInfTime);
  EXPECT_EQ(idx.CoreTimeAt(1, 8), kInfTime);
}

TEST(VctIndexTest, RangeStored) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_EQ(idx.range(), (Window{1, 8}));
}

TEST(VctIndexTest, DebugStringFormat) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_EQ(idx.DebugString(0), "[1,3] [3,5] [6,inf]");
  EXPECT_EQ(idx.DebugString(1), "");
}

TEST(VctIndexTest, EmptyIndex) {
  VertexCoreTimeIndex idx = VertexCoreTimeIndex::FromEmissions(
      5, Window{1, 3}, std::span<const std::pair<VertexId, VctEntry>>());
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.CoreTimeAt(4, 2), kInfTime);
}

TEST(VctIndexTest, MemoryUsageScalesWithEntries) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_GE(idx.MemoryUsageBytes(), 4 * sizeof(VctEntry));
}

TEST(VctIndexStitchTest, IdenticalSuffixReproducesBase) {
  // Stitching a suffix that agrees with the base must reproduce the base
  // row-for-row (the seam row collapses), counting the prefix rows reused.
  VertexCoreTimeIndex base = MakeIndex();  // range {1,8}
  std::vector<std::pair<VertexId, VctEntry>> band = {
      {0, {3, 5}}, {0, {6, kInfTime}}, {2, {3, 7}}};
  VertexCoreTimeIndex suffix =
      VertexCoreTimeIndex::FromEmissions(3, Window{3, 8}, band);
  uint64_t reused = 0;
  VertexCoreTimeIndex out = StitchCoreTimeSuffix(base, suffix, 3, 8, &reused);
  EXPECT_TRUE(out == base);
  EXPECT_EQ(reused, 2u);  // vertex 0's [1,3] and vertex 2's [1,7]
}

TEST(VctIndexStitchTest, ChangedBandEmitsSeamBreakpoint) {
  VertexCoreTimeIndex base = MakeIndex();
  // Vertex 2's recomputed value from start 3 on differs from its carried
  // prefix value (7 -> 9): the stitcher must emit the seam breakpoint.
  // Vertex 0's band agrees with base.
  std::vector<std::pair<VertexId, VctEntry>> band = {
      {0, {3, 5}}, {0, {6, kInfTime}}, {2, {3, 9}}};
  VertexCoreTimeIndex suffix =
      VertexCoreTimeIndex::FromEmissions(3, Window{3, 8}, band);
  VertexCoreTimeIndex out = StitchCoreTimeSuffix(base, suffix, 3, 8);
  EXPECT_EQ(out.CoreTimeAt(2, 2), 7u);  // prefix row untouched
  EXPECT_EQ(out.CoreTimeAt(2, 3), 9u);  // recomputed band
  ASSERT_EQ(out.EntriesOf(2).size(), 2u);
  EXPECT_EQ(out.EntriesOf(2)[1], (VctEntry{3, 9}));
}

TEST(VctIndexStitchTest, EmptyBandRowBecomesInfinity) {
  // A vertex with a finite carried value but no suffix rows is infinite
  // throughout the band: the stitcher must synthesize the [s, inf) row.
  VertexCoreTimeIndex base = MakeIndex();
  VertexCoreTimeIndex suffix = VertexCoreTimeIndex::FromEmissions(
      3, Window{2, 8}, std::vector<std::pair<VertexId, VctEntry>>{});
  VertexCoreTimeIndex out = StitchCoreTimeSuffix(base, suffix, 2, 8);
  ASSERT_EQ(out.EntriesOf(0).size(), 2u);
  EXPECT_EQ(out.EntriesOf(0)[0], (VctEntry{1, 3}));
  EXPECT_EQ(out.EntriesOf(0)[1], (VctEntry{2, kInfTime}));
  EXPECT_EQ(out.EntriesOf(1).size(), 0u);  // inf stays inf: no row at all
}

TEST(VctIndexStitchTest, TailRowsCarryPastAdvanceEnd) {
  // advance_end < range.end: base rows after the band carry verbatim, and
  // the seam at advance_end + 1 re-derives from base's value there.
  VertexCoreTimeIndex base = MakeIndex();
  // Band [2,4]: vertex 0's value is 4 there (changed from 3/5); vertex
  // 2's band agrees with its base value.
  std::vector<std::pair<VertexId, VctEntry>> band = {{0, {2, 4}}, {2, {2, 7}}};
  VertexCoreTimeIndex suffix =
      VertexCoreTimeIndex::FromEmissions(3, Window{2, 8}, band);
  uint64_t reused = 0;
  VertexCoreTimeIndex out = StitchCoreTimeSuffix(base, suffix, 2, 4, &reused);
  // Vertex 0: [1,3] prefix, [2,4] band, seam at 5 back to base's value 5,
  // then base's [6,inf] tail row.
  ASSERT_EQ(out.EntriesOf(0).size(), 4u);
  EXPECT_EQ(out.EntriesOf(0)[0], (VctEntry{1, 3}));
  EXPECT_EQ(out.EntriesOf(0)[1], (VctEntry{2, 4}));
  EXPECT_EQ(out.EntriesOf(0)[2], (VctEntry{5, 5}));
  EXPECT_EQ(out.EntriesOf(0)[3], (VctEntry{6, kInfTime}));
  // Vertex 2: the band value equals the carried 7, so no seam row on
  // either side — the single base row survives alone.
  ASSERT_EQ(out.EntriesOf(2).size(), 1u);
  EXPECT_EQ(out.EntriesOf(2)[0], (VctEntry{1, 7}));
  // Reused: vertex 0's [1,3] + [6,inf] and vertex 2's [1,7].
  EXPECT_EQ(reused, 3u);
}

TEST(VctIndexTest, InterleavedEmissionsAcrossVertices) {
  // Emissions interleave vertices (as the builder produces them per
  // transition); CSR assembly must group them correctly.
  std::vector<std::pair<VertexId, VctEntry>> emissions = {
      {1, {1, 2}}, {0, {1, 4}}, {1, {2, 6}}, {0, {4, 9}}, {1, {5, kInfTime}},
  };
  auto idx = VertexCoreTimeIndex::FromEmissions(2, Window{1, 9}, emissions);
  EXPECT_EQ(idx.EntriesOf(0).size(), 2u);
  EXPECT_EQ(idx.EntriesOf(1).size(), 3u);
  EXPECT_EQ(idx.CoreTimeAt(1, 3), 6u);
  EXPECT_EQ(idx.CoreTimeAt(0, 9), 9u);
}

}  // namespace
}  // namespace tkc
