#include "vct/vct_index.h"

#include <gtest/gtest.h>

#include <vector>

namespace tkc {
namespace {

VertexCoreTimeIndex MakeIndex() {
  // Vertex 0: [1,3],[3,5],[6,inf]; vertex 2: [1,7]; vertex 1: none.
  std::vector<std::pair<VertexId, VctEntry>> emissions = {
      {0, {1, 3}}, {0, {3, 5}}, {0, {6, kInfTime}}, {2, {1, 7}},
  };
  return VertexCoreTimeIndex::FromEmissions(3, Window{1, 8}, emissions);
}

TEST(VctIndexTest, EntriesOf) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_EQ(idx.EntriesOf(0).size(), 3u);
  EXPECT_EQ(idx.EntriesOf(1).size(), 0u);
  EXPECT_EQ(idx.EntriesOf(2).size(), 1u);
  EXPECT_EQ(idx.size(), 4u);
  EXPECT_EQ(idx.num_vertices(), 3u);
  EXPECT_EQ(idx.num_indexed_vertices(), 2u);
}

TEST(VctIndexTest, CoreTimeAtBreakpoints) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_EQ(idx.CoreTimeAt(0, 1), 3u);
  EXPECT_EQ(idx.CoreTimeAt(0, 2), 3u);  // between breakpoints
  EXPECT_EQ(idx.CoreTimeAt(0, 3), 5u);
  EXPECT_EQ(idx.CoreTimeAt(0, 5), 5u);
  EXPECT_EQ(idx.CoreTimeAt(0, 6), kInfTime);
  EXPECT_EQ(idx.CoreTimeAt(0, 8), kInfTime);
}

TEST(VctIndexTest, UnindexedVertexIsInfinity) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_EQ(idx.CoreTimeAt(1, 1), kInfTime);
  EXPECT_EQ(idx.CoreTimeAt(1, 8), kInfTime);
}

TEST(VctIndexTest, RangeStored) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_EQ(idx.range(), (Window{1, 8}));
}

TEST(VctIndexTest, DebugStringFormat) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_EQ(idx.DebugString(0), "[1,3] [3,5] [6,inf]");
  EXPECT_EQ(idx.DebugString(1), "");
}

TEST(VctIndexTest, EmptyIndex) {
  VertexCoreTimeIndex idx = VertexCoreTimeIndex::FromEmissions(
      5, Window{1, 3}, std::span<const std::pair<VertexId, VctEntry>>());
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.CoreTimeAt(4, 2), kInfTime);
}

TEST(VctIndexTest, MemoryUsageScalesWithEntries) {
  VertexCoreTimeIndex idx = MakeIndex();
  EXPECT_GE(idx.MemoryUsageBytes(), 4 * sizeof(VctEntry));
}

TEST(VctIndexTest, InterleavedEmissionsAcrossVertices) {
  // Emissions interleave vertices (as the builder produces them per
  // transition); CSR assembly must group them correctly.
  std::vector<std::pair<VertexId, VctEntry>> emissions = {
      {1, {1, 2}}, {0, {1, 4}}, {1, {2, 6}}, {0, {4, 9}}, {1, {5, kInfTime}},
  };
  auto idx = VertexCoreTimeIndex::FromEmissions(2, Window{1, 9}, emissions);
  EXPECT_EQ(idx.EntriesOf(0).size(), 2u);
  EXPECT_EQ(idx.EntriesOf(1).size(), 3u);
  EXPECT_EQ(idx.CoreTimeAt(1, 3), 6u);
  EXPECT_EQ(idx.CoreTimeAt(0, 9), 9u);
}

}  // namespace
}  // namespace tkc
