#include "util/bucket_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace tkc {
namespace {

TEST(BucketQueueTest, PopsInDegreeOrder) {
  std::vector<uint32_t> degrees = {3, 1, 2, 0, 2};
  BucketQueue q(degrees);
  std::vector<uint32_t> popped_degrees;
  while (!q.Empty()) {
    VertexId v = q.PopMin();
    popped_degrees.push_back(q.LastPoppedDegree());
    (void)v;
  }
  EXPECT_TRUE(std::is_sorted(popped_degrees.begin(), popped_degrees.end()));
  EXPECT_EQ(popped_degrees.front(), 0u);
  EXPECT_EQ(popped_degrees.back(), 3u);
}

TEST(BucketQueueTest, SizeAndContains) {
  std::vector<uint32_t> degrees = {1, 1, 1};
  BucketQueue q(degrees);
  EXPECT_EQ(q.Size(), 3u);
  VertexId v = q.PopMin();
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_FALSE(q.Contains(v));
}

TEST(BucketQueueTest, DecrementMovesVertexEarlier) {
  std::vector<uint32_t> degrees = {5, 5, 5, 0};
  BucketQueue q(degrees);
  q.DecrementDegree(2);
  q.DecrementDegree(2);
  EXPECT_EQ(q.DegreeOf(2), 3u);
  EXPECT_EQ(q.PopMin(), 3u);  // degree 0 first
  EXPECT_EQ(q.PopMin(), 2u);  // then the twice-decremented vertex
}

TEST(BucketQueueTest, DecrementAtZeroIsNoop) {
  std::vector<uint32_t> degrees = {0, 2};
  BucketQueue q(degrees);
  q.DecrementDegree(0);
  EXPECT_EQ(q.DegreeOf(0), 0u);
}

TEST(BucketQueueTest, SingleVertex) {
  std::vector<uint32_t> degrees = {4};
  BucketQueue q(degrees);
  EXPECT_EQ(q.MinDegree(), 4u);
  EXPECT_EQ(q.PopMin(), 0u);
  EXPECT_TRUE(q.Empty());
}

TEST(BucketQueueTest, ResetReusesStructure) {
  std::vector<uint32_t> first = {2, 1};
  BucketQueue q(first);
  q.PopMin();
  std::vector<uint32_t> second = {0, 3, 1};
  q.Reset(second);
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.PopMin(), 0u);
}

// Simulated peel: decrementing arbitrary still-enqueued vertices must keep
// the pop sequence sorted by the *effective* degree at pop time.
TEST(BucketQueueTest, RandomizedDecrementsKeepMonotonePops) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t n = 30;
    std::vector<uint32_t> degrees(n);
    for (auto& d : degrees) d = static_cast<uint32_t>(rng.NextBounded(10));
    BucketQueue q(degrees);
    uint32_t last = 0;
    while (!q.Empty()) {
      // Random decrements on random vertices above the current min.
      for (int i = 0; i < 3; ++i) {
        VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        if (q.Contains(v) && q.DegreeOf(v) > q.MinDegree()) {
          q.DecrementDegree(v);
        }
      }
      q.PopMin();
      uint32_t d = q.LastPoppedDegree();
      EXPECT_GE(d + 1, last == 0 ? 1 : last);  // non-decreasing up to ties
      last = std::max(last, d);
    }
  }
}

}  // namespace
}  // namespace tkc
