// The fault-mode differential sweep: every scenario runs with all the
// injection points armed (rebuild.fail, queue.full, dispatch.slow_worker,
// plus an index_io.corrupt_load round trip) and seeded deadlines attached
// to every submission. The contract under fire is weaker than the clean
// sweep's — per query, not per scenario — but still exact: every submitted
// batch terminates, every delivered outcome is either oracle-exact against
// its pinned graph version or carries an explicit Timeout /
// ResourceExhausted / FailedPrecondition verdict, and the updater's
// `applied + failed == submitted` accounting balances after every
// scenario. Registered under the `faults` ctest label; TKC_FAULT_SCENARIOS
// overrides the per-thread-count scenario count.

#include "tests/differential_harness.h"

#include <gtest/gtest.h>

namespace tkc {
namespace {

// Fault scenarios are slower than clean ones (injected backoff waits and
// slow-worker sleeps), so sweep fewer by default; CI pins the count.
#ifdef NDEBUG
constexpr uint32_t kDefaultScenarios = 24;
#else
constexpr uint32_t kDefaultScenarios = 6;
#endif

class DifferentialFaultTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFaultTest, EveryOutcomeExactOrExplicitUnderFaults) {
  const int threads = GetParam();
  const uint32_t scenarios =
      DifferentialScenarioCount(kDefaultScenarios, "TKC_FAULT_SCENARIOS");
  uint64_t total_checked = 0;
  uint64_t total_explicit = 0;
  uint64_t total_retries = 0;
  uint64_t total_failed = 0;
  uint64_t total_applied = 0;
  for (uint32_t s = 0; s < scenarios; ++s) {
    DifferentialConfig config;
    config.seed = 9000 + s;
    config.threads = threads;
    config.faults = true;
    DifferentialReport report = RunDifferentialScenario(config);
    ASSERT_EQ(report.mismatches, 0u) << report.first_mismatch;
    EXPECT_GT(report.queries_checked + report.explicit_outcomes, 0u);
    total_checked += report.queries_checked;
    total_explicit += report.explicit_outcomes;
    total_retries += report.rebuild_retries;
    total_failed += report.failed_updates;
    total_applied += report.updates_applied;
  }
  // The sweep is vacuous unless the faults both bit and were survived:
  // retries happened, some updates still landed, deadlines/shedding
  // produced explicit verdicts, and plenty of outcomes stayed oracle-exact.
  EXPECT_GT(total_retries, 0u);
  EXPECT_GT(total_applied, 0u);
  EXPECT_GT(total_checked, 0u);
  if (scenarios >= 8) {
    EXPECT_GT(total_explicit, 0u);
    EXPECT_GT(total_failed, 0u);  // some cycles exhaust their retries
  }
  RecordProperty("queries_checked", static_cast<int>(total_checked));
  RecordProperty("explicit_outcomes", static_cast<int>(total_explicit));
  RecordProperty("rebuild_retries", static_cast<int>(total_retries));
}

INSTANTIATE_TEST_SUITE_P(Threads, DifferentialFaultTest,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace tkc
