#include "serve/query_cache.h"

#include <gtest/gtest.h>

namespace tkc {
namespace {

Query Q(uint32_t k, Timestamp start, Timestamp end) {
  return Query{k, Window{start, end}};
}

RunOutcome Outcome(uint64_t num_cores) {
  RunOutcome out;
  out.status = Status::OK();
  out.num_cores = num_cores;
  out.result_size_edges = num_cores * 10;
  return out;
}

TEST(QueryCacheTest, MissThenHit) {
  QueryCache cache(4);
  RunOutcome out;
  EXPECT_FALSE(cache.Lookup(Q(3, 1, 9), &out));
  cache.Insert(Q(3, 1, 9), Outcome(7));
  ASSERT_TRUE(cache.Lookup(Q(3, 1, 9), &out));
  EXPECT_EQ(out.num_cores, 7u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryCacheTest, KeyIsKAndRange) {
  QueryCache cache(8);
  cache.Insert(Q(3, 1, 9), Outcome(1));
  RunOutcome out;
  EXPECT_FALSE(cache.Lookup(Q(4, 1, 9), &out));   // different k
  EXPECT_FALSE(cache.Lookup(Q(3, 2, 9), &out));   // different start
  EXPECT_FALSE(cache.Lookup(Q(3, 1, 10), &out));  // different end
  EXPECT_TRUE(cache.Lookup(Q(3, 1, 9), &out));
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsed) {
  QueryCache cache(2);
  cache.Insert(Q(1, 1, 2), Outcome(1));
  cache.Insert(Q(2, 1, 2), Outcome(2));
  RunOutcome out;
  // Touch the first entry so the second becomes LRU.
  ASSERT_TRUE(cache.Lookup(Q(1, 1, 2), &out));
  cache.Insert(Q(3, 1, 2), Outcome(3));  // evicts k=2
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(Q(1, 1, 2), &out));
  EXPECT_FALSE(cache.Lookup(Q(2, 1, 2), &out));
  EXPECT_TRUE(cache.Lookup(Q(3, 1, 2), &out));
}

TEST(QueryCacheTest, InsertRefreshesExistingEntry) {
  QueryCache cache(2);
  cache.Insert(Q(1, 1, 2), Outcome(1));
  cache.Insert(Q(2, 1, 2), Outcome(2));
  cache.Insert(Q(1, 1, 2), Outcome(11));  // refresh, no eviction
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.size(), 2u);
  RunOutcome out;
  ASSERT_TRUE(cache.Lookup(Q(1, 1, 2), &out));
  EXPECT_EQ(out.num_cores, 11u);
  // The refresh promoted k=1, so k=2 is now the eviction victim.
  cache.Insert(Q(3, 1, 2), Outcome(3));
  EXPECT_FALSE(cache.Lookup(Q(2, 1, 2), &out));
}

TEST(QueryCacheTest, TombstoneReplaysCanonicalEmptyOutcome) {
  QueryCache cache(4);
  cache.InsertTombstone(Q(5, 3, 9));
  RunOutcome out = Outcome(99);  // pre-filled: the hit must overwrite it
  ASSERT_TRUE(cache.Lookup(Q(5, 3, 9), &out));
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.num_cores, 0u);
  EXPECT_EQ(out.result_size_edges, 0u);
  EXPECT_EQ(out.vct_size, 0u);
  EXPECT_EQ(cache.tombstones(), 1u);
  EXPECT_EQ(cache.weight_used(), 1u);
}

TEST(QueryCacheTest, TombstonesCostOneSixteenthOfASlot) {
  // Capacity 1 = 16 weight units: sixteen tombstones fit where a single
  // full outcome would; the seventeenth evicts exactly one entry.
  QueryCache cache(1);
  for (uint32_t k = 1; k <= QueryCache::kOutcomeWeight; ++k) {
    cache.InsertTombstone(Q(k, 1, 2));
  }
  EXPECT_EQ(cache.size(), QueryCache::kOutcomeWeight);
  EXPECT_EQ(cache.weight_used(), cache.weight_capacity());
  EXPECT_EQ(cache.evictions(), 0u);
  cache.InsertTombstone(Q(99, 1, 2));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), QueryCache::kOutcomeWeight);
  RunOutcome out;
  EXPECT_FALSE(cache.Lookup(Q(1, 1, 2), &out));  // the LRU victim
  EXPECT_TRUE(cache.Lookup(Q(99, 1, 2), &out));
}

TEST(QueryCacheTest, FullOutcomeEvictsEnoughTombstones) {
  QueryCache cache(1);
  for (uint32_t k = 1; k <= 10; ++k) cache.InsertTombstone(Q(k, 1, 2));
  EXPECT_EQ(cache.weight_used(), 10u);
  // A full outcome (weight 16) into a budget of 16 with 10 units used must
  // evict all ten tombstones — eviction accounting counts each entry.
  cache.Insert(Q(50, 1, 2), Outcome(5));
  EXPECT_EQ(cache.evictions(), 10u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.tombstones(), 0u);
  EXPECT_EQ(cache.weight_used(), QueryCache::kOutcomeWeight);
  RunOutcome out;
  ASSERT_TRUE(cache.Lookup(Q(50, 1, 2), &out));
  EXPECT_EQ(out.num_cores, 5u);
}

TEST(QueryCacheTest, FullOutcomeUpgradesTombstoneInPlace) {
  QueryCache cache(2);
  cache.InsertTombstone(Q(3, 1, 9));
  EXPECT_EQ(cache.weight_used(), 1u);
  cache.Insert(Q(3, 1, 9), Outcome(4));  // upgrade: same key, full payload
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.tombstones(), 0u);
  EXPECT_EQ(cache.weight_used(), QueryCache::kOutcomeWeight);
  RunOutcome out;
  ASSERT_TRUE(cache.Lookup(Q(3, 1, 9), &out));
  EXPECT_EQ(out.num_cores, 4u);
}

TEST(QueryCacheTest, UpgradeAtCapacityEvictsBackToBudget) {
  // A tombstone -> full upgrade grows the entry by 15 units in place; at
  // capacity that must trigger evictions, not a budget overshoot.
  QueryCache cache(1);
  for (uint32_t k = 1; k <= QueryCache::kOutcomeWeight; ++k) {
    cache.InsertTombstone(Q(k, 1, 2));
  }
  ASSERT_EQ(cache.weight_used(), cache.weight_capacity());
  cache.Insert(Q(8, 1, 2), Outcome(3));  // upgrade one of the sixteen
  EXPECT_LE(cache.weight_used(), cache.weight_capacity());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), QueryCache::kOutcomeWeight - 1);
  RunOutcome out;
  ASSERT_TRUE(cache.Lookup(Q(8, 1, 2), &out));  // the upgraded entry lives
  EXPECT_EQ(out.num_cores, 3u);
}

TEST(QueryCacheTest, TombstoneNeverDemotesFullOutcome) {
  QueryCache cache(2);
  cache.Insert(Q(3, 1, 9), Outcome(4));
  cache.InsertTombstone(Q(3, 1, 9));  // refreshes LRU position only
  EXPECT_EQ(cache.tombstones(), 0u);
  EXPECT_EQ(cache.weight_used(), QueryCache::kOutcomeWeight);
  RunOutcome out;
  ASSERT_TRUE(cache.Lookup(Q(3, 1, 9), &out));
  EXPECT_EQ(out.num_cores, 4u);  // the full outcome survived
}

TEST(QueryCacheTest, ClearResetsWeightAndTombstoneAccounting) {
  QueryCache cache(2);
  cache.Insert(Q(1, 1, 2), Outcome(1));
  cache.InsertTombstone(Q(2, 1, 2));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.weight_used(), 0u);
  EXPECT_EQ(cache.tombstones(), 0u);
}

TEST(QueryCacheTest, ZeroCapacityDisables) {
  QueryCache cache(0);
  cache.Insert(Q(1, 1, 2), Outcome(1));
  RunOutcome out;
  EXPECT_FALSE(cache.Lookup(Q(1, 1, 2), &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryCacheTest, ClearKeepsCounters) {
  QueryCache cache(4);
  cache.Insert(Q(1, 1, 2), Outcome(1));
  RunOutcome out;
  EXPECT_TRUE(cache.Lookup(Q(1, 1, 2), &out));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(Q(1, 1, 2), &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(QueryCacheTest, ExportRunsLruToMru) {
  QueryCache cache(4);
  cache.Insert(Q(1, 1, 2), Outcome(1));
  cache.Insert(Q(2, 1, 2), Outcome(2));
  cache.InsertTombstone(Q(3, 1, 2));
  RunOutcome out;
  ASSERT_TRUE(cache.Lookup(Q(1, 1, 2), &out));  // promote k=1 to MRU

  auto entries = cache.ExportLruToMru();
  ASSERT_EQ(entries.size(), 3u);
  // A key filter prunes before payloads are copied.
  auto filtered = cache.ExportLruToMru(
      [](const QueryCacheKey& key, uint32_t bound) { return key.k > bound; },
      1);
  EXPECT_EQ(filtered.size(), 2u);
  EXPECT_EQ(entries[0].key.k, 2u);  // least recently used first
  EXPECT_EQ(entries[1].key.k, 3u);
  EXPECT_EQ(entries[2].key.k, 1u);  // the promoted entry last
  EXPECT_TRUE(entries[0].outcome.has_value());
  EXPECT_FALSE(entries[1].outcome.has_value());  // tombstone stays tombstone
  // Export is read-only: no promotion, no counters, entries intact.
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.tombstones(), 1u);
}

TEST(QueryCacheTest, ImportPreservesRecencyAndKinds) {
  QueryCache source(4);
  source.Insert(Q(1, 1, 2), Outcome(1));
  source.InsertTombstone(Q(2, 1, 2));
  source.Insert(Q(3, 1, 2), Outcome(3));

  QueryCache target(4);
  EXPECT_EQ(target.ImportEntries(source.ExportLruToMru()), 3u);
  EXPECT_EQ(target.size(), 3u);
  EXPECT_EQ(target.tombstones(), 1u);
  EXPECT_EQ(target.weight_used(), source.weight_used());
  // Imports count neither hits nor misses.
  EXPECT_EQ(target.hits(), 0u);
  EXPECT_EQ(target.misses(), 0u);

  RunOutcome out;
  ASSERT_TRUE(target.Lookup(Q(1, 1, 2), &out));
  EXPECT_EQ(out.num_cores, 1u);
  ASSERT_TRUE(target.Lookup(Q(2, 1, 2), &out));
  EXPECT_EQ(out.num_cores, 0u);  // tombstone replays the empty outcome

  // Recency carried over: with everything equally touched above, refill
  // recency, then overflow — the entry imported as LRU must evict first.
  QueryCache fresh(2);
  QueryCache copy(2);
  fresh.Insert(Q(1, 1, 2), Outcome(1));
  fresh.Insert(Q(2, 1, 2), Outcome(2));
  copy.ImportEntries(fresh.ExportLruToMru());
  copy.Insert(Q(4, 1, 2), Outcome(4));  // evicts k=1, the imported LRU
  EXPECT_FALSE(copy.Lookup(Q(1, 1, 2), &out));
  EXPECT_TRUE(copy.Lookup(Q(2, 1, 2), &out));
  EXPECT_TRUE(copy.Lookup(Q(4, 1, 2), &out));
}

TEST(QueryCacheTest, ImportIntoDisabledCacheIsNoop) {
  QueryCache source(2);
  source.Insert(Q(1, 1, 2), Outcome(1));
  QueryCache disabled(0);
  EXPECT_EQ(disabled.ImportEntries(source.ExportLruToMru()), 0u);
  EXPECT_EQ(disabled.size(), 0u);
}

TEST(QueryCacheTest, ImportEvictsToBudgetLikeInsert) {
  QueryCache source(4);
  for (uint32_t k = 1; k <= 4; ++k) source.Insert(Q(k, 1, 2), Outcome(k));
  QueryCache small(2);
  // Reports what survived its budget, not what was offered.
  EXPECT_EQ(small.ImportEntries(source.ExportLruToMru()), 2u);
  EXPECT_EQ(small.size(), 2u);
  RunOutcome out;
  // The two most recently used survive.
  EXPECT_TRUE(small.Lookup(Q(3, 1, 2), &out));
  EXPECT_TRUE(small.Lookup(Q(4, 1, 2), &out));
}

}  // namespace
}  // namespace tkc
