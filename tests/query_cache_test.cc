#include "serve/query_cache.h"

#include <gtest/gtest.h>

namespace tkc {
namespace {

Query Q(uint32_t k, Timestamp start, Timestamp end) {
  return Query{k, Window{start, end}};
}

RunOutcome Outcome(uint64_t num_cores) {
  RunOutcome out;
  out.status = Status::OK();
  out.num_cores = num_cores;
  out.result_size_edges = num_cores * 10;
  return out;
}

TEST(QueryCacheTest, MissThenHit) {
  QueryCache cache(4);
  RunOutcome out;
  EXPECT_FALSE(cache.Lookup(Q(3, 1, 9), &out));
  cache.Insert(Q(3, 1, 9), Outcome(7));
  ASSERT_TRUE(cache.Lookup(Q(3, 1, 9), &out));
  EXPECT_EQ(out.num_cores, 7u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryCacheTest, KeyIsKAndRange) {
  QueryCache cache(8);
  cache.Insert(Q(3, 1, 9), Outcome(1));
  RunOutcome out;
  EXPECT_FALSE(cache.Lookup(Q(4, 1, 9), &out));   // different k
  EXPECT_FALSE(cache.Lookup(Q(3, 2, 9), &out));   // different start
  EXPECT_FALSE(cache.Lookup(Q(3, 1, 10), &out));  // different end
  EXPECT_TRUE(cache.Lookup(Q(3, 1, 9), &out));
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsed) {
  QueryCache cache(2);
  cache.Insert(Q(1, 1, 2), Outcome(1));
  cache.Insert(Q(2, 1, 2), Outcome(2));
  RunOutcome out;
  // Touch the first entry so the second becomes LRU.
  ASSERT_TRUE(cache.Lookup(Q(1, 1, 2), &out));
  cache.Insert(Q(3, 1, 2), Outcome(3));  // evicts k=2
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(Q(1, 1, 2), &out));
  EXPECT_FALSE(cache.Lookup(Q(2, 1, 2), &out));
  EXPECT_TRUE(cache.Lookup(Q(3, 1, 2), &out));
}

TEST(QueryCacheTest, InsertRefreshesExistingEntry) {
  QueryCache cache(2);
  cache.Insert(Q(1, 1, 2), Outcome(1));
  cache.Insert(Q(2, 1, 2), Outcome(2));
  cache.Insert(Q(1, 1, 2), Outcome(11));  // refresh, no eviction
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.size(), 2u);
  RunOutcome out;
  ASSERT_TRUE(cache.Lookup(Q(1, 1, 2), &out));
  EXPECT_EQ(out.num_cores, 11u);
  // The refresh promoted k=1, so k=2 is now the eviction victim.
  cache.Insert(Q(3, 1, 2), Outcome(3));
  EXPECT_FALSE(cache.Lookup(Q(2, 1, 2), &out));
}

TEST(QueryCacheTest, ZeroCapacityDisables) {
  QueryCache cache(0);
  cache.Insert(Q(1, 1, 2), Outcome(1));
  RunOutcome out;
  EXPECT_FALSE(cache.Lookup(Q(1, 1, 2), &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryCacheTest, ClearKeepsCounters) {
  QueryCache cache(4);
  cache.Insert(Q(1, 1, 2), Outcome(1));
  RunOutcome out;
  EXPECT_TRUE(cache.Lookup(Q(1, 1, 2), &out));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(Q(1, 1, 2), &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace tkc
