#include "util/flags.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace tkc {
namespace {

Flags ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  auto parsed = Flags::Parse(static_cast<int>(args.size()),
                             const_cast<char**>(args.data()));
  EXPECT_TRUE(parsed.ok());
  return std::move(parsed).value();
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = ParseArgs({"--scale=2.5", "--name=CM"});
  EXPECT_EQ(f.GetString("name", ""), "CM");
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 0), 2.5);
}

TEST(FlagsTest, SpaceSyntax) {
  Flags f = ParseArgs({"--queries", "7"});
  EXPECT_EQ(f.GetInt("queries", 0), 7);
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = ParseArgs({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(FlagsTest, PositionalArguments) {
  Flags f = ParseArgs({"input.txt", "--k=3", "more"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(FlagsTest, DefaultsWhenMissing) {
  Flags f = ParseArgs({});
  EXPECT_EQ(f.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(f.GetInt("missing", -5), -5);
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 1.5), 1.5);
  EXPECT_TRUE(f.GetBool("missing", true));
  EXPECT_FALSE(f.Has("missing"));
}

TEST(FlagsTest, MalformedIntFallsBackToDefault) {
  Flags f = ParseArgs({"--k=abc"});
  EXPECT_EQ(f.GetInt("k", 9), 9);
}

TEST(FlagsTest, BoolSpellings) {
  Flags f = ParseArgs({"--a=yes", "--b=off", "--c=1", "--d=false"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_FALSE(f.GetBool("b", true));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_FALSE(f.GetBool("d", true));
}

TEST(FlagsTest, EnvironmentFallback) {
  ::setenv("TKC_FROM_ENV", "321", 1);
  Flags f = ParseArgs({});
  EXPECT_EQ(f.GetInt("from-env", 0), 321);
  EXPECT_TRUE(f.Has("from-env"));
  ::unsetenv("TKC_FROM_ENV");
}

TEST(FlagsTest, CommandLineBeatsEnvironment) {
  ::setenv("TKC_SCALE", "9", 1);
  Flags f = ParseArgs({"--scale=2"});
  EXPECT_EQ(f.GetInt("scale", 0), 2);
  ::unsetenv("TKC_SCALE");
}

TEST(FlagsTest, BareDoubleDashIsError) {
  std::vector<const char*> args = {"prog", "--"};
  auto parsed = Flags::Parse(2, const_cast<char**>(args.data()));
  EXPECT_FALSE(parsed.ok());
}

}  // namespace
}  // namespace tkc
