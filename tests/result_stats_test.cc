#include "core/result_stats.h"

#include <gtest/gtest.h>

#include "core/temporal_kcore.h"
#include "datasets/generators.h"

namespace tkc {
namespace {

TEST(Log2HistogramTest, BasicAccumulation) {
  Log2Histogram h;
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(100);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 26.5);
}

TEST(Log2HistogramTest, ZeroValue) {
  Log2Histogram h;
  h.Add(0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);
}

TEST(Log2HistogramTest, QuantilesWithinBucketResolution) {
  Log2Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Add(i);
  // p50 is 500 -> bucket [512..1023] or [256..511]; upper bound must be
  // >= the true quantile and within 2x.
  uint64_t p50 = h.ApproxQuantile(0.5);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 1023u);
  uint64_t p99 = h.ApproxQuantile(0.99);
  EXPECT_GE(p99, 990u);
}

TEST(Log2HistogramTest, EmptyHistogram) {
  Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);
  EXPECT_EQ(h.ToString(), "");
}

TEST(Log2HistogramTest, ToStringListsBuckets) {
  Log2Histogram h;
  h.Add(3);
  h.Add(3);
  std::string s = h.ToString();
  EXPECT_NE(s.find("[2..3] 2"), std::string::npos) << s;
}

TEST(StatsSinkTest, AccumulatesFromRealEnumeration) {
  TemporalGraph g = GenerateUniformRandom(15, 110, 14, 5);
  Window range = g.FullRange();
  StatsSink stats(range);
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 2, range, &stats).ok());
  CountingSink counter;
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 2, range, &counter).ok());
  EXPECT_EQ(stats.num_cores(), counter.num_cores());
  EXPECT_EQ(stats.result_size_edges(), counter.result_size_edges());
  EXPECT_EQ(stats.core_size_histogram().count(), counter.num_cores());
  EXPECT_EQ(stats.core_size_histogram().max(), counter.max_core_edges());
  // Per-start counts sum to the total.
  uint64_t sum = 0;
  for (uint64_t c : stats.cores_per_start()) sum += c;
  EXPECT_EQ(sum, counter.num_cores());
  EXPECT_GE(stats.BusiestStart(), range.start);
  EXPECT_LE(stats.BusiestStart(), range.end);
  EXPECT_FALSE(stats.Report().empty());
}

TEST(StatsSinkTest, PaperExample) {
  TemporalGraph g = PaperExampleGraph();
  StatsSink stats(Window{1, 4});
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 2, Window{1, 4}, &stats).ok());
  EXPECT_EQ(stats.num_cores(), 2u);
  EXPECT_EQ(stats.result_size_edges(), 9u);
  EXPECT_EQ(stats.core_size_histogram().min(), 3u);
  EXPECT_EQ(stats.core_size_histogram().max(), 6u);
  EXPECT_EQ(stats.tti_length_histogram().min(), 2u);  // TTI [2,3]
  EXPECT_EQ(stats.tti_length_histogram().max(), 4u);  // TTI [1,4]
}

}  // namespace
}  // namespace tkc
