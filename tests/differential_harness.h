#ifndef TKC_TESTS_DIFFERENTIAL_HARNESS_H_
#define TKC_TESTS_DIFFERENTIAL_HARNESS_H_

#include <cstdint>
#include <string>

/// \file differential_harness.h
/// Randomized differential validation of the live serving path: one
/// scenario generates a seeded random temporal graph, a seeded stream of
/// edge-update batches, and a seeded stream of query batches; drives them
/// through a LiveQueryEngine *concurrently* (async submissions interleaved
/// with ApplyUpdates snapshot swaps, plus sync and completion-queue
/// submissions for API coverage); then checks every served outcome
/// bit-identically against the naive per-window peeling oracle evaluated
/// on the exact graph version the engine reports having pinned.
///
/// The version replay leans on the live layer's FIFO contract: version N
/// is the initial graph plus update batches 1..N, so the harness rebuilds
/// the same version chain via TemporalGraph::AppendEdges and runs the
/// oracle on chain[result.snapshot_version]. A wrong pin (torn read, swap
/// racing a batch, stale admission table) surfaces as a result mismatch.

namespace tkc {

/// Shape of one scenario. Everything is derived deterministically from
/// `seed`; `threads` sets the serving pool's total parallelism.
struct DifferentialConfig {
  uint64_t seed = 1;
  int threads = 2;
  uint32_t num_update_events = 4;   ///< ApplyUpdates batches
  uint32_t num_query_batches = 9;   ///< submitted batches
  uint32_t max_queries_per_batch = 12;
  uint32_t max_edges_per_update = 14;
  /// Incremental-maintenance mode: force an admission index, await each
  /// ApplyUpdates before the next, and after every swap assert the
  /// incrementally maintained PhcIndex (delta-aware Rebuild — pointer-
  /// reused and suffix-stitched slices alike) is bit-identical, slice by
  /// slice, to a from-scratch PhcIndex::Build on the swapped-in graph, and
  /// that every per-k core-emergence table (carried or recomputed) equals
  /// one freshly derived from the from-scratch slice. Any disagreement
  /// counts as a mismatch.
  bool incremental = false;
  /// Fault mode: arm every fault point (`rebuild.fail`, `queue.full`,
  /// `dispatch.slow_worker`) with schedules derived from `seed`, attach
  /// seeded deadlines (unlimited / generous / already-expired / racing) to
  /// every query submission, and run the updater with retry/backoff on.
  /// The oracle contract weakens per query, not per scenario: every
  /// submitted batch must still terminate, and each delivered outcome must
  /// be either oracle-exact against the graph version the engine pinned or
  /// carry an explicit Timeout / ResourceExhausted / FailedPrecondition
  /// status. Failed updates are expected (injected) and are not scenario
  /// failures, but must carry an explicit status, and the updater's
  /// `applied + failed == submitted` accounting must still balance. The
  /// mode ends with an index save/load round trip under
  /// `index_io.corrupt_load`: the truncated load must surface
  /// Status::Corruption, the next load must round-trip bit-identically.
  /// Arms process-global fault points: do not run fault-mode scenarios
  /// concurrently. Mutually exclusive with `incremental`.
  bool faults = false;
  /// Network mode: front the LiveQueryEngine with a loopback TkcServer and
  /// route every query batch through TkcClient connections — wire encode,
  /// frame reassembly, completion streaming and all — while ApplyUpdates
  /// snapshot swaps land concurrently, exactly as the in-process modes do.
  /// Every wire verdict must be oracle-exact on the graph version the
  /// server reports having pinned, or carry an explicit Timeout /
  /// ResourceExhausted status (seeded wire deadlines race the work on
  /// purpose; `net.read_short` is armed as a verdict-neutral stressor of
  /// incremental frame reassembly). After the scenario the server's
  /// counter invariants must balance: submitted == completed ==
  /// streamed + dropped, accepted == closed + dropped. Arms a process-
  /// global fault point: do not run net-mode scenarios concurrently.
  /// Mutually exclusive with `incremental` and `faults`.
  bool net = false;
};

/// What one scenario observed. `mismatches == 0` and `failed_updates == 0`
/// is a pass; `first_mismatch` carries a reproducible description of the
/// first disagreement (seed, version, query, both outcomes).
struct DifferentialReport {
  uint64_t queries_checked = 0;
  uint64_t mismatches = 0;
  uint64_t failed_updates = 0;
  uint64_t versions_served = 0;  ///< distinct snapshot versions in results
  uint64_t swaps = 0;            ///< snapshot swaps the engine performed
  uint64_t slices_checked = 0;   ///< incremental mode: slices compared
  uint64_t tables_checked = 0;   ///< incremental mode: emergence tables
  uint64_t slices_reused = 0;    ///< updater slices carried by pointer
  uint64_t slices_rebuilt = 0;   ///< updater slices rebuilt
  uint64_t suffix_rebuilds = 0;  ///< updater slices maintained partially
  uint64_t rows_reused = 0;      ///< VCT rows carried across swaps
  uint64_t batches_coalesced = 0;
  uint64_t cache_entries_carried = 0;
  uint64_t emergence_tables_carried = 0;
  uint64_t explicit_outcomes = 0;  ///< fault/net mode: skip-oracled statuses
  uint64_t rebuild_retries = 0;    ///< fault mode: updater retry attempts
  uint64_t updates_applied = 0;    ///< update batches that landed a swap
  uint64_t wire_responses = 0;     ///< net mode: batches answered over TCP
  std::string first_mismatch;
};

/// Runs one scenario end to end. Thread-safe to call concurrently.
DifferentialReport RunDifferentialScenario(const DifferentialConfig& config);

/// Scenario count for sweep tests: `env_name` (when given and set to a
/// positive integer), else the TKC_DIFF_SCENARIOS environment variable
/// (the CI sanitizer legs shrink it, the Release leg widens it), else
/// `default_count`. The incremental sweep passes
/// TKC_DIFF_INCREMENTAL_SCENARIOS so CI can widen it independently.
uint32_t DifferentialScenarioCount(uint32_t default_count,
                                   const char* env_name = nullptr);

}  // namespace tkc

#endif  // TKC_TESTS_DIFFERENTIAL_HARNESS_H_
