#include "util/mpsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace tkc {
namespace {

TEST(BoundedMpscQueueTest, FifoOrder) {
  BoundedMpscQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedMpscQueueTest, TryPushRespectsCapacity) {
  BoundedMpscQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full
  int out;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_TRUE(queue.TryPush(3));  // room again
}

TEST(BoundedMpscQueueTest, TryPopOnEmptyFails) {
  BoundedMpscQueue<int> queue(2);
  int out;
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(BoundedMpscQueueTest, ZeroCapacityClampsToOne) {
  BoundedMpscQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_FALSE(queue.TryPush(8));
}

TEST(BoundedMpscQueueTest, CloseDrainsThenFails) {
  BoundedMpscQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // rejected after close
  int out;
  EXPECT_TRUE(queue.Pop(&out));  // queued items still drain
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // drained + closed
}

TEST(BoundedMpscQueueTest, CloseWakesBlockedConsumer) {
  BoundedMpscQueue<int> queue(4);
  std::thread consumer([&] {
    int out;
    EXPECT_FALSE(queue.Pop(&out));  // blocks until Close, then fails
  });
  queue.Close();
  consumer.join();
}

TEST(BoundedMpscQueueTest, FullQueueExertsBackpressure) {
  BoundedMpscQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    second_pushed.store(true);
  });
  // The producer cannot finish while the queue is full. (No sleep: we only
  // assert the ordering once the pops release it.)
  int out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedMpscQueueTest, ManyProducersOneConsumer) {
  BoundedMpscQueue<int> queue(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  int out;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    seen.push_back(out);
  }
  for (std::thread& t : producers) t.join();
  // Every item arrives exactly once, and each producer's items in order.
  std::vector<int> last(kProducers, -1);
  for (int value : seen) {
    int p = value / kPerProducer;
    EXPECT_LT(last[p], value % kPerProducer);
    last[p] = value % kPerProducer;
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace tkc
