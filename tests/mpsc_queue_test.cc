#include "util/mpsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/fault_injection.h"
#include "util/timer.h"

namespace tkc {
namespace {

TEST(BoundedMpscQueueTest, FifoOrder) {
  BoundedMpscQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedMpscQueueTest, TryPushRespectsCapacity) {
  BoundedMpscQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full
  int out;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_TRUE(queue.TryPush(3));  // room again
}

TEST(BoundedMpscQueueTest, TryPopOnEmptyFails) {
  BoundedMpscQueue<int> queue(2);
  int out;
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(BoundedMpscQueueTest, ZeroCapacityClampsToOne) {
  BoundedMpscQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_FALSE(queue.TryPush(8));
}

TEST(BoundedMpscQueueTest, CloseDrainsThenFails) {
  BoundedMpscQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // rejected after close
  int out;
  EXPECT_TRUE(queue.Pop(&out));  // queued items still drain
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // drained + closed
}

TEST(BoundedMpscQueueTest, CloseWakesBlockedConsumer) {
  BoundedMpscQueue<int> queue(4);
  std::thread consumer([&] {
    int out;
    EXPECT_FALSE(queue.Pop(&out));  // blocks until Close, then fails
  });
  queue.Close();
  consumer.join();
}

TEST(BoundedMpscQueueTest, FullQueueExertsBackpressure) {
  BoundedMpscQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    second_pushed.store(true);
  });
  // The producer cannot finish while the queue is full. (No sleep: we only
  // assert the ordering once the pops release it.)
  int out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedMpscQueueTest, ManyProducersOneConsumer) {
  BoundedMpscQueue<int> queue(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  int out;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    seen.push_back(out);
  }
  for (std::thread& t : producers) t.join();
  // Every item arrives exactly once, and each producer's items in order.
  std::vector<int> last(kProducers, -1);
  for (int value : seen) {
    int p = value / kPerProducer;
    EXPECT_LT(last[p], value % kPerProducer);
    last[p] = value % kPerProducer;
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
}

TEST(BoundedMpscQueueTest, TryPushForSucceedsWhenRoomFreesUp) {
  BoundedMpscQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::thread consumer([&] {
    int out;
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, 1);
  });
  // Generous bound: the consumer pops "immediately", the deadline only has
  // to outlast scheduling noise.
  EXPECT_TRUE(queue.TryPushFor(2, 30.0));
  consumer.join();
  int out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedMpscQueueTest, TryPushForTimesOutOnFullQueue) {
  BoundedMpscQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  EXPECT_FALSE(queue.TryPushFor(2, 0.01));
  EXPECT_EQ(queue.size(), 1u);
}

TEST(BoundedMpscQueueTest, PushUntilExpiredDeadlineFailsFastWhenFull) {
  BoundedMpscQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  EXPECT_FALSE(queue.PushUntil(2, Deadline::AfterSeconds(-1.0)));
}

TEST(BoundedMpscQueueTest, PushUntilUnlimitedDeadlineBlocksLikePush) {
  BoundedMpscQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.PushUntil(2, Deadline()));  // blocks until a pop
    second_pushed.store(true);
  });
  int out;
  ASSERT_TRUE(queue.Pop(&out));
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedMpscQueueTest, CloseWakesProducerBlockedInPushUntil) {
  BoundedMpscQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::thread producer([&] {
    // Blocks on the full queue; Close must wake it well before the
    // deadline, and the push must report failure.
    EXPECT_FALSE(queue.PushUntil(2, Deadline::AfterSeconds(30.0)));
  });
  queue.Close();
  producer.join();
  int out;
  EXPECT_TRUE(queue.Pop(&out));  // drain-then-fail still holds
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(BoundedMpscQueueTest, TryPushForOnZeroCapacityQueue) {
  BoundedMpscQueue<int> queue(0);  // clamped to 1
  EXPECT_TRUE(queue.TryPushFor(1, 0.01));
  EXPECT_FALSE(queue.TryPushFor(2, 0.01));
  queue.Close();
  EXPECT_FALSE(queue.TryPushFor(3, 0.01));
}

TEST(BoundedMpscQueueTest, PushOrEvictPushesWhenRoom) {
  BoundedMpscQueue<int> queue(2);
  auto less = [](int a, int b) { return a < b; };
  int item = 5, evicted = -1;
  EXPECT_EQ(queue.PushOrEvict(&item, less, &evicted), PushOutcome::kPushed);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(BoundedMpscQueueTest, PushOrEvictEvictsTheMinimum) {
  BoundedMpscQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(3));
  ASSERT_TRUE(queue.Push(7));
  auto less = [](int a, int b) { return a < b; };
  int item = 5, evicted = -1;
  EXPECT_EQ(queue.PushOrEvict(&item, less, &evicted),
            PushOutcome::kPushedEvicted);
  EXPECT_EQ(evicted, 3);  // the queued minimum lost the contest
  // The incoming item took the evicted slot in place (stable positions).
  int out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 5);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 7);
}

TEST(BoundedMpscQueueTest, PushOrEvictRejectsIncomingMinimum) {
  BoundedMpscQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(3));
  ASSERT_TRUE(queue.Push(7));
  auto less = [](int a, int b) { return a < b; };
  int item = 2, evicted = -1;
  EXPECT_EQ(queue.PushOrEvict(&item, less, &evicted),
            PushOutcome::kRejectedIncoming);
  EXPECT_EQ(item, 2);  // rejection does not consume the incoming item
  EXPECT_EQ(evicted, -1);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedMpscQueueTest, PushOrEvictOnClosedQueue) {
  BoundedMpscQueue<int> queue(2);
  queue.Close();
  auto less = [](int a, int b) { return a < b; };
  int item = 1, evicted = -1;
  EXPECT_EQ(queue.PushOrEvict(&item, less, &evicted), PushOutcome::kClosed);
}

TEST(BoundedMpscQueueTest, QueueFullFaultSimulatesFullQueue) {
  // probability 1, max_fires 1: exactly the first non-blocking push
  // observes a "full" queue, the next succeeds.
  ScopedFault fault(kFaultQueueFull, FaultSchedule{1.0, 42, 1});
  BoundedMpscQueue<int> queue(4);
  auto less = [](int a, int b) { return a < b; };
  int item = 1, evicted = -1;
  EXPECT_EQ(queue.PushOrEvict(&item, less, &evicted),
            PushOutcome::kRejectedIncoming);
  EXPECT_EQ(queue.PushOrEvict(&item, less, &evicted), PushOutcome::kPushed);
  EXPECT_EQ(fault.stats().fires, 1u);
}

}  // namespace
}  // namespace tkc
