// The live-update differential sweep: seeded random (graph, update-stream,
// query-batch) scenarios through a LiveQueryEngine — async futures,
// completion queues, and sync batches interleaved with ApplyUpdates
// snapshot swaps — each outcome checked bit-identically against the naive
// enumerator on the graph version the engine pinned. Registered under the
// `differential` ctest label; TKC_DIFF_SCENARIOS overrides the per-thread-
// count scenario count (CI sanitizer legs shrink it).

#include "tests/differential_harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <span>
#include <vector>

#include "datasets/generators.h"
#include "serve/snapshot.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"
#include "vct/index_io.h"

namespace tkc {
namespace {

// Release sweeps 70 scenarios per thread count (210 total); sanitizer /
// debug builds are ~20x slower per scenario, so default smaller there and
// let CI pin the count explicitly either way.
#ifdef NDEBUG
constexpr uint32_t kDefaultScenarios = 70;
#else
constexpr uint32_t kDefaultScenarios = 12;
#endif

class DifferentialLiveTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialLiveTest, EngineMatchesOracleAcrossSwaps) {
  const int threads = GetParam();
  const uint32_t scenarios = DifferentialScenarioCount(kDefaultScenarios);
  uint64_t total_queries = 0;
  uint64_t total_swaps = 0;
  uint64_t multi_version = 0;
  for (uint32_t s = 0; s < scenarios; ++s) {
    DifferentialConfig config;
    config.seed = 1000 + s;
    config.threads = threads;
    DifferentialReport report = RunDifferentialScenario(config);
    ASSERT_EQ(report.failed_updates, 0u) << report.first_mismatch;
    ASSERT_EQ(report.mismatches, 0u) << report.first_mismatch;
    EXPECT_GT(report.queries_checked, 0u);
    total_queries += report.queries_checked;
    total_swaps += report.swaps;
    if (report.versions_served > 1) ++multi_version;
  }
  // The sweep only means something if swaps actually happened and batches
  // genuinely landed on different graph versions.
  EXPECT_GT(total_swaps, 0u);
  if (scenarios >= 10) EXPECT_GT(multi_version, 0u);
  RecordProperty("queries_checked", static_cast<int>(total_queries));
}

INSTANTIATE_TEST_SUITE_P(Threads, DifferentialLiveTest,
                         ::testing::Values(1, 2, 8));

// The incremental-maintenance sweep: every swap's delta-aware index
// (pointer-reused slices included) must be bit-identical, slice by slice,
// to a from-scratch PhcIndex::Build on the swapped-in graph — the
// soundness contract of PhcIndex::Rebuild's reuse proofs. Runs at 1/2/8
// threads like the main sweep (same `differential` ctest label).
class DifferentialIncrementalTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialIncrementalTest, RebuiltIndexBitIdenticalPerSlice) {
  const int threads = GetParam();
  // Each swap costs an extra from-scratch index build, so sweep fewer
  // scenarios than the main differential test by default; CI's Release leg
  // widens this sweep independently via TKC_DIFF_INCREMENTAL_SCENARIOS.
  const uint32_t scenarios = DifferentialScenarioCount(
      std::max(4u, kDefaultScenarios / 2), "TKC_DIFF_INCREMENTAL_SCENARIOS");
  uint64_t total_slices = 0;
  uint64_t total_tables = 0;
  uint64_t total_reused = 0;
  uint64_t total_rebuilt = 0;
  uint64_t total_suffix = 0;
  uint64_t total_rows_reused = 0;
  for (uint32_t s = 0; s < scenarios; ++s) {
    DifferentialConfig config;
    config.seed = 5000 + s;
    config.threads = threads;
    config.incremental = true;
    DifferentialReport report = RunDifferentialScenario(config);
    ASSERT_EQ(report.failed_updates, 0u) << report.first_mismatch;
    ASSERT_EQ(report.mismatches, 0u) << report.first_mismatch;
    EXPECT_GT(report.swaps, 0u);
    total_slices += report.slices_checked;
    total_tables += report.tables_checked;
    total_reused += report.slices_reused;
    total_rebuilt += report.slices_rebuilt;
    total_suffix += report.suffix_rebuilds;
    total_rows_reused += report.rows_reused;
  }
  EXPECT_GT(total_slices, 0u);
  EXPECT_GT(total_tables, 0u);
  EXPECT_GT(total_rebuilt, 0u);  // random deltas always dirty small k
  if (scenarios >= 10) {
    // Across a reasonable sweep, some delta lands late enough in some
    // timeline that a dirty slice is maintained by suffix stitching (and
    // carries rows) rather than rebuilt whole.
    EXPECT_GT(total_suffix, 0u);
    EXPECT_GT(total_rows_reused, 0u);
  }
  RecordProperty("slices_checked", static_cast<int>(total_slices));
  RecordProperty("tables_checked", static_cast<int>(total_tables));
  RecordProperty("slices_reused", static_cast<int>(total_reused));
  RecordProperty("slices_rebuilt", static_cast<int>(total_rebuilt));
  RecordProperty("suffix_rebuilds", static_cast<int>(total_suffix));
}

INSTANTIATE_TEST_SUITE_P(Threads, DifferentialIncrementalTest,
                         ::testing::Values(1, 2, 8));

// A scenario with updates but no concurrency knobs left to chance: the
// single-threaded sweep above plus this pinned-pin check give a readable
// failure before the big sweep is consulted.
TEST(LiveQueryEngineTest, InFlightBatchFinishesAgainstItsPinnedSnapshot) {
  TemporalGraph g = GenerateUniformRandom(24, 300, 16, 7);
  ThreadPool pool(4);
  LiveEngineOptions options;
  options.engine.pool = &pool;
  options.engine.build_index = true;
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  // Pin version 0 via an async submission, then swap twice.
  std::vector<Query> queries;
  for (Timestamp ts = 1; ts + 3 <= g.num_timestamps(); ts += 2) {
    queries.push_back(Query{2, Window{ts, static_cast<Timestamp>(ts + 3)}});
  }
  std::future<BatchResult> inflight = (*live)->SubmitAsync(queries);
  std::vector<RawTemporalEdge> extra = {{1, 2, 99}, {2, 3, 99}, {1, 3, 99}};
  ASSERT_TRUE((*live)->ApplyUpdates(extra).get().ok());
  ASSERT_TRUE((*live)->ApplyUpdates({{4, 5, 100}}).get().ok());
  EXPECT_EQ((*live)->version(), 2u);

  BatchResult early = inflight.get();
  // The batch may have pinned any version current at its submission —
  // here submission preceded both updates, so it must be version 0, and
  // its outcomes must match the naive oracle on the *original* graph.
  EXPECT_EQ(early.snapshot_version, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    RunOutcome oracle = RunAlgorithm(AlgorithmKind::kNaive, g, queries[i]);
    ASSERT_TRUE(early.outcomes[i].status.ok());
    EXPECT_EQ(early.outcomes[i].num_cores, oracle.num_cores) << i;
    EXPECT_EQ(early.outcomes[i].result_size_edges, oracle.result_size_edges)
        << i;
  }

  // A post-swap batch answers against the new graph version.
  BatchResult late = (*live)->ServeBatch(queries);
  EXPECT_EQ(late.snapshot_version, 2u);
  auto updated = g.AppendEdges(extra);
  ASSERT_TRUE(updated.ok());
  auto updated2 =
      updated->graph.AppendEdges(std::vector<RawTemporalEdge>{{4, 5, 100}});
  ASSERT_TRUE(updated2.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    RunOutcome oracle =
        RunAlgorithm(AlgorithmKind::kNaive, updated2->graph, queries[i]);
    EXPECT_EQ(late.outcomes[i].num_cores, oracle.num_cores) << i;
    EXPECT_EQ(late.outcomes[i].result_size_edges, oracle.result_size_edges)
        << i;
  }
}

// A preloaded admission index describes the *initial* graph only. After a
// swap, the rebuilt snapshot must build a fresh index — reusing the
// preloaded one would keep "proving" ranges empty that the new edges just
// populated (or keep reading a pointer the caller may have freed).
TEST(LiveQueryEngineTest, RebuiltSnapshotDoesNotReusePreloadedIndex) {
  TemporalGraph g = GenerateUniformRandom(20, 200, 12, 5);
  auto index = PhcIndex::Build(g, g.FullRange(), PhcBuildOptions{});
  ASSERT_TRUE(index.ok());
  auto loaded = DeserializePhcIndex(SerializePhcIndex(*index));
  ASSERT_TRUE(loaded.ok());

  LiveEngineOptions options;
  options.engine.preloaded_index = &*loaded;
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  // Updates that keep the time span and vertex pool unchanged (existing
  // raw times, existing vertices) — the case a stale index would silently
  // survive validation for.
  std::vector<RawTemporalEdge> extra;
  for (VertexId u = 0; u < 12; ++u) {
    for (VertexId v = u + 1; v < 12; ++v) {
      extra.push_back({u, v, g.RawTimestamp(3)});
      extra.push_back({u, v, g.RawTimestamp(4)});
    }
  }
  ASSERT_TRUE((*live)->ApplyUpdates(extra).get().ok());

  auto updated = g.AppendEdges(extra);
  ASSERT_TRUE(updated.ok());
  ASSERT_EQ(updated->graph.num_timestamps(), g.num_timestamps());

  // High-k queries over the densified window: the old index would reject
  // them as provably empty; the oracle on the updated graph disagrees.
  std::vector<Query> queries;
  for (uint32_t k = 2; k <= 11; ++k) {
    queries.push_back(Query{k, Window{3, 4}});
  }
  BatchResult result = (*live)->ServeBatch(queries);
  EXPECT_EQ(result.snapshot_version, 1u);
  for (size_t i = 0; i < queries.size(); ++i) {
    RunOutcome oracle =
        RunAlgorithm(AlgorithmKind::kNaive, updated->graph, queries[i]);
    ASSERT_TRUE(result.outcomes[i].status.ok()) << i;
    EXPECT_EQ(result.outcomes[i].num_cores, oracle.num_cores) << "k=" << i + 2;
    EXPECT_EQ(result.outcomes[i].result_size_edges, oracle.result_size_edges)
        << "k=" << i + 2;
  }
}

TEST(LiveQueryEngineTest, PausedBatchesCoalesceIntoOneSwap) {
  TemporalGraph g = GenerateUniformRandom(16, 120, 10, 9);
  LiveEngineOptions options;
  options.engine.build_index = true;
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok());

  // Pause before anything is queued: the three batches below accumulate
  // and must apply as ONE rebuild cycle on resume.
  (*live)->PauseUpdates();
  std::vector<std::vector<RawTemporalEdge>> batches = {
      {{0, 1, 500}}, {{2, 3, 501}}, {{4, 5, 502}, {5, 6, 503}}};
  std::vector<std::future<Status>> futures;
  for (const auto& batch : batches) {
    futures.push_back((*live)->ApplyUpdates(batch));
  }
  (*live)->ResumeUpdates();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());

  LiveStats stats = (*live)->stats();
  EXPECT_EQ(stats.swaps, 1u);                      // one rebuild cycle
  EXPECT_EQ(stats.update.batches_coalesced, 2u);   // two rode along
  EXPECT_EQ(stats.edges_applied, 4u);
  EXPECT_EQ((*live)->version(), 3u);  // version still counts batches

  // The coalesced result equals the batch-at-a-time chain replay.
  TemporalGraph expected = g;
  for (const auto& batch : batches) {
    auto next = expected.AppendEdges(batch);
    ASSERT_TRUE(next.ok());
    expected = std::move(next->graph);
  }
  const TemporalGraph& actual = (*live)->snapshot()->graph();
  ASSERT_EQ(actual.num_edges(), expected.num_edges());
  for (EdgeId e = 0; e < actual.num_edges(); ++e) {
    EXPECT_EQ(actual.edge(e), expected.edge(e));
  }
}

TEST(LiveQueryEngineTest, CoalescedCycleFailureCountsEveryDroppedBatch) {
  TemporalGraph g = GenerateUniformRandom(16, 120, 10, 9);
  LiveEngineOptions options;
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok());

  // One poisoned batch (sentinel endpoint) coalesced with two innocent
  // ones: the whole cycle fails, every batch reports the error, and
  // failed_updates counts all three — including the batches that were
  // only dropped because they were coalesced with the poisoned one.
  (*live)->PauseUpdates();
  std::vector<std::future<Status>> futures;
  futures.push_back((*live)->ApplyUpdates({{0, 1, 500}}));
  futures.push_back((*live)->ApplyUpdates({{kInvalidVertex, 2, 501}}));
  futures.push_back((*live)->ApplyUpdates({{3, 4, 502}}));
  (*live)->ResumeUpdates();
  for (auto& f : futures) {
    Status status = f.get();
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }

  LiveStats stats = (*live)->stats();
  EXPECT_EQ(stats.failed_updates, 3u);
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ((*live)->version(), 0u);  // previous snapshot stays current
  // No double-counting: the riders count once as failed and once as
  // coalesced — never as applied — so the accounting invariants hold.
  EXPECT_EQ(stats.update.batches_submitted, 3u);
  EXPECT_EQ(stats.update.batches_applied, 0u);
  EXPECT_EQ(stats.update.batches_coalesced, 2u);
  EXPECT_EQ(stats.update.batches_applied + stats.failed_updates,
            stats.update.batches_submitted);

  // The engine still serves, and a later clean update still applies.
  BatchResult result = (*live)->ServeBatch({Query{2, g.FullRange()}});
  EXPECT_TRUE(result.outcomes[0].status.ok());
  EXPECT_TRUE((*live)->ApplyUpdates({{0, 1, 500}}).get().ok());
  EXPECT_EQ((*live)->version(), 1u);
  EXPECT_EQ((*live)->stats().failed_updates, 3u);
  EXPECT_EQ((*live)->stats().update.batches_applied, 1u);
  EXPECT_EQ((*live)->stats().update.batches_submitted, 4u);
}

TEST(LiveQueryEngineTest, SmallDeltaReusesSlicesAndCarriesCache) {
  // A dense core plus two pendant vertices: appending an edge between the
  // pendants (existing timestamp, existing vertices) has max_core_bound
  // bounded by the pendant degree, so every k-slice above it must carry
  // across the swap by pointer — and so must the cached outcomes of
  // high-k queries.
  TemporalGraph dense = GenerateUniformRandom(20, 400, 12, 13);
  const VertexId p = dense.num_vertices();
  const VertexId q = p + 1;
  auto with_pendants = dense.AppendEdges(std::vector<RawTemporalEdge>{
      {p, 0, dense.RawTimestamp(1)}, {q, 1, dense.RawTimestamp(2)}});
  ASSERT_TRUE(with_pendants.ok());
  TemporalGraph base = std::move(with_pendants->graph);

  ThreadPool pool(4);
  LiveEngineOptions options;
  options.engine.pool = &pool;
  options.engine.build_index = true;
  options.engine.cache_capacity = 64;
  auto live = LiveQueryEngine::Create(base, options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  std::shared_ptr<const GraphSnapshot> before = (*live)->snapshot();
  const PhcIndex* old_index = before->engine().index();
  ASSERT_NE(old_index, nullptr);
  const uint32_t max_k = old_index->max_k();
  ASSERT_GT(max_k, 3u) << "test graph too sparse to exercise reuse";

  // Warm the cache across the k spectrum.
  std::vector<Query> queries;
  for (uint32_t k = 2; k <= max_k; ++k) {
    queries.push_back(Query{k, base.FullRange()});
  }
  BatchResult warm = (*live)->ServeBatch(queries);
  for (const RunOutcome& out : warm.outcomes) {
    ASSERT_TRUE(out.status.ok());
  }

  // The small delta: one pendant-to-pendant edge at an existing raw time.
  ASSERT_TRUE(
      (*live)
          ->ApplyUpdates(std::vector<RawTemporalEdge>{
              {p, q, base.RawTimestamp(3)}})
          .get()
          .ok());

  std::shared_ptr<const GraphSnapshot> after = (*live)->snapshot();
  const PhcIndex* new_index = after->engine().index();
  ASSERT_NE(new_index, nullptr);
  ASSERT_EQ(new_index->max_k(), max_k);  // a pendant edge raises no kmax

  UpdateStats update = (*live)->update_stats();
  EXPECT_GT(update.slices_reused, 0u);
  EXPECT_LT(update.slices_rebuilt, max_k);  // strictly fewer than max_k
  // Every slice is accounted once: carried whole, maintained by suffix
  // stitching, or rebuilt from scratch.
  EXPECT_EQ(update.slices_reused + update.suffix_rebuilds +
                update.slices_rebuilt,
            max_k);
  EXPECT_EQ(update.incremental_swaps, 1u);
  EXPECT_GT(update.cache_entries_carried, 0u);
  // Reused slices alone already carry rows; the reused k>2 slices hold
  // most of the index.
  EXPECT_GT(update.rows_reused, 0u);
  EXPECT_LE(update.rows_reused, update.rows_total);
  // Exactly the pointer-shared slices skip their emergence sweep on the
  // successor engine, and exactly the suffix-stitched slices re-sweep only
  // their recomputed start band (slice reuse implies a preserved timeline
  // and range, so the stitch preconditions always hold alongside it).
  EXPECT_EQ(update.emergence_tables_carried, update.slices_reused);
  EXPECT_EQ(update.emergence_tables_stitched, update.suffix_rebuilds);

  const GraphSnapshot::SwapStats& swap = after->swap_stats();
  EXPECT_EQ(swap.delta_edges, 1u);
  EXPECT_EQ(swap.slices_reused, update.slices_reused);
  EXPECT_EQ(swap.slices_rebuilt, update.slices_rebuilt);
  EXPECT_EQ(swap.suffix_rebuilds, update.suffix_rebuilds);
  EXPECT_EQ(swap.rows_reused, update.rows_reused);
  EXPECT_EQ(swap.emergence_tables_carried, update.emergence_tables_carried);
  EXPECT_EQ(swap.emergence_tables_stitched, update.emergence_tables_stitched);
  EXPECT_EQ(swap.cache_entries_carried, update.cache_entries_carried);

  // Reused slices are shared by pointer; every slice — reused or rebuilt —
  // is bit-identical to a from-scratch build on the new graph.
  PhcBuildOptions build;
  build.pool = &pool;
  auto fresh = PhcIndex::Build(after->graph(), after->graph().FullRange(),
                               build);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->max_k(), max_k);
  EXPECT_TRUE(*new_index == *fresh);
  uint32_t shared = 0;
  for (uint32_t k = 1; k <= max_k; ++k) {
    if (new_index->SliceShared(k) == old_index->SliceShared(k)) ++shared;
  }
  EXPECT_EQ(shared, update.slices_reused);

  // Carried cache entries answer without re-executing. The delta's core
  // bound is 2 (both pendants have distinct degree 2), so exactly the
  // k > 2 entries carry: repeating those queries must be pure cache hits
  // on the *new* snapshot's engine.
  std::vector<Query> carried_queries;
  for (uint32_t k = 3; k <= max_k; ++k) {
    carried_queries.push_back(Query{k, base.FullRange()});
  }
  const ServeStats engine_before = after->engine().stats();
  BatchResult repeat = (*live)->ServeBatch(carried_queries);
  EXPECT_EQ(repeat.snapshot_version, 1u);
  const ServeStats engine_after = after->engine().stats();
  EXPECT_EQ(engine_after.cache_hits,
            engine_before.cache_hits + carried_queries.size());
  EXPECT_EQ(engine_after.executed, engine_before.executed)
      << "a carried-over query re-executed";
  // And they answer correctly for the updated graph.
  for (size_t i = 0; i < carried_queries.size(); ++i) {
    RunOutcome oracle = RunAlgorithm(AlgorithmKind::kNaive, after->graph(),
                                     carried_queries[i]);
    EXPECT_EQ(repeat.outcomes[i].num_cores, oracle.num_cores) << i;
    EXPECT_EQ(repeat.outcomes[i].result_size_edges, oracle.result_size_edges)
        << i;
  }
}

TEST(LiveQueryEngineTest, CacheCarriesAcrossSwapWithoutAdmissionIndex) {
  // The carry-over proof needs only the EdgeDelta, not an admission index:
  // a cache-only engine (the default config) must also start warm after a
  // clean small delta.
  TemporalGraph dense = GenerateUniformRandom(20, 400, 12, 13);
  const VertexId p = dense.num_vertices();
  const VertexId q = p + 1;
  auto based = dense.AppendEdges(std::vector<RawTemporalEdge>{
      {p, 0, dense.RawTimestamp(1)}, {q, 1, dense.RawTimestamp(2)}});
  ASSERT_TRUE(based.ok());
  TemporalGraph base = std::move(based->graph);

  LiveEngineOptions options;
  options.engine.build_index = false;
  options.engine.cache_capacity = 64;
  auto live = LiveQueryEngine::Create(base, options);
  ASSERT_TRUE(live.ok());

  const Query high_k{6, base.FullRange()};
  ASSERT_TRUE((*live)->ServeBatch({high_k}).outcomes[0].status.ok());

  ASSERT_TRUE((*live)
                  ->ApplyUpdates(std::vector<RawTemporalEdge>{
                      {p, q, base.RawTimestamp(3)}})  // core bound 2
                  .get()
                  .ok());
  std::shared_ptr<const GraphSnapshot> after = (*live)->snapshot();
  EXPECT_EQ(after->swap_stats().slices_reused, 0u);  // no index to reuse
  EXPECT_GT(after->swap_stats().cache_entries_carried, 0u);

  const ServeStats engine_before = after->engine().stats();
  BatchResult repeat = (*live)->ServeBatch({high_k});
  EXPECT_TRUE(repeat.outcomes[0].status.ok());
  const ServeStats engine_after = after->engine().stats();
  EXPECT_EQ(engine_after.cache_hits, engine_before.cache_hits + 1);
  EXPECT_EQ(engine_after.executed, engine_before.executed);
}

TEST(LiveQueryEngineTest, LateDeltaMaintainsDirtySlicesBySuffix) {
  // A delta at the *last* existing timestamp dirties slices k <= bound,
  // but every core time below that timestamp is provably pinned — so the
  // dirty slices must be maintained by suffix stitching (rows carried),
  // not rebuilt whole, and the result must still be bit-identical to a
  // from-scratch build, emergence tables included.
  TemporalGraph dense = GenerateUniformRandom(20, 400, 12, 13);
  const VertexId p = dense.num_vertices();
  const VertexId q = p + 1;
  auto based = dense.AppendEdges(std::vector<RawTemporalEdge>{
      {p, 0, dense.RawTimestamp(1)}, {q, 1, dense.RawTimestamp(2)}});
  ASSERT_TRUE(based.ok());
  TemporalGraph base = std::move(based->graph);
  const Timestamp last = base.num_timestamps();

  ThreadPool pool(4);
  LiveEngineOptions options;
  options.engine.pool = &pool;
  options.engine.build_index = true;
  auto live = LiveQueryEngine::Create(base, options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  ASSERT_TRUE((*live)
                  ->ApplyUpdates(std::vector<RawTemporalEdge>{
                      {p, q, base.RawTimestamp(last)}})
                  .get()
                  .ok());

  UpdateStats update = (*live)->update_stats();
  EXPECT_GT(update.suffix_rebuilds, 0u);
  // Every suffix-stitched slice also maintains its emergence table
  // incrementally: predecessor table copied, only the band re-swept.
  EXPECT_EQ(update.emergence_tables_stitched, update.suffix_rebuilds);
  // Only the delta-dirtied slices (k <= bound 2) may need any rebuilding,
  // and at least one of them is maintained partially. (A slice can still
  // rebuild whole — e.g. k=1 when some vertex's first edge sits at the
  // last timestamp, making its entire start band dirty.)
  EXPECT_LE(update.suffix_rebuilds + update.slices_rebuilt, 2u);
  EXPECT_GT(update.rows_reused, 0u);
  EXPECT_EQ(update.incremental_swaps, 1u);
  // Suffix-maintained slices carry most of their rows: the delta sits at
  // the last timestamp, so only the final start band recomputes.
  EXPECT_GT(update.rows_reused * 2, update.rows_total);

  std::shared_ptr<const GraphSnapshot> after = (*live)->snapshot();
  const PhcIndex* incremental = after->engine().index();
  ASSERT_NE(incremental, nullptr);
  PhcBuildOptions build;
  build.pool = &pool;
  auto fresh =
      PhcIndex::Build(after->graph(), after->graph().FullRange(), build);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(*incremental == *fresh);
  for (uint32_t k = 1; k <= fresh->max_k(); ++k) {
    const std::vector<Timestamp> expected =
        QueryEngine::ComputeEmergenceTable(fresh->Slice(k));
    const std::span<const Timestamp> table = after->engine().EmergenceTable(k);
    ASSERT_TRUE(std::equal(table.begin(), table.end(), expected.begin(),
                           expected.end()))
        << "emergence table differs at k=" << k;
  }
}

TEST(LiveQueryEngineTest, ShutdownWhilePausedFailsQueuedBatches) {
  TemporalGraph g = GenerateUniformRandom(16, 120, 10, 9);
  LiveEngineOptions options;
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok());

  // Hold the gate, queue three batches, then shut down: the batches were
  // promised "not yet" — shutdown must release them with a failure, not
  // apply them behind the caller's back and not hang the updater.
  (*live)->PauseUpdates();
  std::vector<std::future<Status>> futures;
  futures.push_back((*live)->ApplyUpdates({{0, 1, 500}}));
  futures.push_back((*live)->ApplyUpdates({{2, 3, 501}}));
  futures.push_back((*live)->ApplyUpdates({{4, 5, 502}}));
  (*live)->Shutdown();
  for (auto& f : futures) {
    Status status = f.get();
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  }

  LiveStats stats = (*live)->stats();
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ(stats.failed_updates, 3u);
  EXPECT_EQ(stats.update.batches_submitted, 3u);
  EXPECT_EQ(stats.update.batches_applied, 0u);
  EXPECT_EQ((*live)->version(), 0u);

  // Post-shutdown submissions fail fast (and never reach the counters);
  // serving stays available; a second Shutdown is a no-op.
  Status late = (*live)->ApplyUpdates({{0, 1, 503}}).get();
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*live)->stats().update.batches_submitted, 3u);
  BatchResult result = (*live)->ServeBatch({Query{2, g.FullRange()}});
  EXPECT_TRUE(result.outcomes[0].status.ok());
  (*live)->Shutdown();
}

TEST(LiveQueryEngineTest, DestructionWhilePausedReleasesQueuedBatches) {
  TemporalGraph g = GenerateUniformRandom(16, 120, 10, 9);
  std::vector<std::future<Status>> futures;
  {
    auto live = LiveQueryEngine::Create(g, LiveEngineOptions{});
    ASSERT_TRUE(live.ok());
    (*live)->PauseUpdates();
    futures.push_back((*live)->ApplyUpdates({{0, 1, 500}}));
    futures.push_back((*live)->ApplyUpdates({{2, 3, 501}}));
  }  // destroyed with the gate held: batches must resolve, with an error
  for (auto& f : futures) {
    Status status = f.get();
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  }
}

TEST(LiveQueryEngineTest, ShutdownWithoutPauseAppliesQueuedBatches) {
  // The contrast case: shutting down with the gate open still applies
  // whatever was queued — only a held pause converts queued into failed.
  TemporalGraph g = GenerateUniformRandom(16, 120, 10, 9);
  auto live = LiveQueryEngine::Create(g, LiveEngineOptions{});
  ASSERT_TRUE(live.ok());
  std::vector<std::future<Status>> futures;
  futures.push_back((*live)->ApplyUpdates({{0, 1, 500}}));
  futures.push_back((*live)->ApplyUpdates({{2, 3, 501}}));
  (*live)->Shutdown();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ((*live)->version(), 2u);
  LiveStats stats = (*live)->stats();
  EXPECT_EQ(stats.update.batches_applied, 2u);
  EXPECT_EQ(stats.update.batches_submitted, 2u);
  EXPECT_EQ(stats.failed_updates, 0u);
}

TEST(LiveQueryEngineTest, TransientRebuildFailureRetriesAndRecovers) {
  TemporalGraph g = GenerateUniformRandom(16, 120, 10, 9);
  LiveEngineOptions options;
  options.max_rebuild_attempts = 3;
  options.retry_backoff_initial_ms = 2.0;
  options.retry_backoff_max_ms = 10.0;
  options.retry_jitter_seed = 17;
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ((*live)->health(), HealthState::kHealthy);

  // The first two rebuild attempts fail with an injected transient error;
  // the third lands. The batch's future must report success — the retries
  // are invisible to the submitter except through the counters.
  ScopedFault fault(kFaultRebuildFail, FaultSchedule{1.0, 7, 2});
  ASSERT_TRUE((*live)->ApplyUpdates({{0, 1, 500}}).get().ok());

  EXPECT_EQ((*live)->health(), HealthState::kHealthy);
  EXPECT_EQ((*live)->version(), 1u);
  UpdateStats update = (*live)->update_stats();
  EXPECT_EQ(update.rebuild_retries, 2u);
  // Two backoff waits of >= 1ms each sit inside the degraded window.
  EXPECT_GE(update.degraded_ms, 1u);
  EXPECT_EQ((*live)->stats().swaps, 1u);
  EXPECT_EQ((*live)->stats().failed_updates, 0u);
  BatchResult result = (*live)->ServeBatch({Query{2, g.FullRange()}});
  EXPECT_TRUE(result.outcomes[0].status.ok());
  EXPECT_EQ(result.snapshot_version, 1u);
}

TEST(LiveQueryEngineTest, ExhaustedRetriesFailTheBatchAndMarkUnhealthy) {
  TemporalGraph g = GenerateUniformRandom(16, 120, 10, 9);
  LiveEngineOptions options;
  options.max_rebuild_attempts = 2;
  options.retry_backoff_initial_ms = 0.5;
  options.retry_backoff_max_ms = 2.0;
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok());

  {
    // Every attempt fails: the cycle exhausts its retries, the batch's
    // future carries the transient error, and health degrades to
    // kUpdatesFailed — while the old snapshot keeps serving.
    ScopedFault fault(kFaultRebuildFail, FaultSchedule{1.0, 7, 0});
    Status status = (*live)->ApplyUpdates({{0, 1, 500}}).get();
    EXPECT_EQ(status.code(), StatusCode::kInternal);
  }
  EXPECT_EQ((*live)->health(), HealthState::kUpdatesFailed);
  EXPECT_EQ((*live)->version(), 0u);
  UpdateStats update = (*live)->update_stats();
  EXPECT_EQ(update.rebuild_retries, 1u);  // attempts - 1
  EXPECT_EQ((*live)->stats().failed_updates, 1u);
  BatchResult result = (*live)->ServeBatch({Query{2, g.FullRange()}});
  EXPECT_TRUE(result.outcomes[0].status.ok());
  EXPECT_EQ(result.snapshot_version, 0u);  // last good snapshot

  // The fault is gone (scope exit): the next update lands and the engine
  // reports healthy again — kUpdatesFailed is not sticky.
  ASSERT_TRUE((*live)->ApplyUpdates({{2, 3, 501}}).get().ok());
  EXPECT_EQ((*live)->health(), HealthState::kHealthy);
  EXPECT_EQ((*live)->version(), 1u);
}

TEST(LiveQueryEngineTest, DeterministicFailureDoesNotRetry) {
  TemporalGraph g = GenerateUniformRandom(16, 120, 10, 9);
  LiveEngineOptions options;
  options.max_rebuild_attempts = 5;  // would retry if misclassified
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok());

  // A poisoned batch fails validation deterministically: retrying cannot
  // help, so the cycle must fail immediately — zero retries — and a caller
  // input error must not flip the engine's health.
  Status status = (*live)->ApplyUpdates({{kInvalidVertex, 2, 500}}).get();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*live)->update_stats().rebuild_retries, 0u);
  EXPECT_EQ((*live)->health(), HealthState::kHealthy);
  ASSERT_TRUE((*live)->ApplyUpdates({{0, 1, 500}}).get().ok());
  EXPECT_EQ((*live)->version(), 1u);
}

TEST(LiveQueryEngineTest, FailedUpdateKeepsServingOldSnapshot) {
  TemporalGraph g = GenerateUniformRandom(10, 60, 8, 3);
  LiveEngineOptions options;
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok());
  // A batch of nothing but self-loops dedups/drops to an edgeless builder
  // only if the base graph were empty — here it rebuilds fine; instead use
  // an empty update to prove a no-op rebuild still advances the version.
  ASSERT_TRUE((*live)->ApplyUpdates({}).get().ok());
  EXPECT_EQ((*live)->version(), 1u);
  EXPECT_EQ((*live)->stats().swaps, 1u);
  BatchResult result = (*live)->ServeBatch({Query{2, g.FullRange()}});
  EXPECT_TRUE(result.outcomes[0].status.ok());
}

}  // namespace
}  // namespace tkc
