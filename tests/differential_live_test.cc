// The live-update differential sweep: seeded random (graph, update-stream,
// query-batch) scenarios through a LiveQueryEngine — async futures,
// completion queues, and sync batches interleaved with ApplyUpdates
// snapshot swaps — each outcome checked bit-identically against the naive
// enumerator on the graph version the engine pinned. Registered under the
// `differential` ctest label; TKC_DIFF_SCENARIOS overrides the per-thread-
// count scenario count (CI sanitizer legs shrink it).

#include "tests/differential_harness.h"

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "serve/snapshot.h"
#include "util/thread_pool.h"
#include "vct/index_io.h"

namespace tkc {
namespace {

// Release sweeps 70 scenarios per thread count (210 total); sanitizer /
// debug builds are ~20x slower per scenario, so default smaller there and
// let CI pin the count explicitly either way.
#ifdef NDEBUG
constexpr uint32_t kDefaultScenarios = 70;
#else
constexpr uint32_t kDefaultScenarios = 12;
#endif

class DifferentialLiveTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialLiveTest, EngineMatchesOracleAcrossSwaps) {
  const int threads = GetParam();
  const uint32_t scenarios = DifferentialScenarioCount(kDefaultScenarios);
  uint64_t total_queries = 0;
  uint64_t total_swaps = 0;
  uint64_t multi_version = 0;
  for (uint32_t s = 0; s < scenarios; ++s) {
    DifferentialConfig config;
    config.seed = 1000 + s;
    config.threads = threads;
    DifferentialReport report = RunDifferentialScenario(config);
    ASSERT_EQ(report.failed_updates, 0u) << report.first_mismatch;
    ASSERT_EQ(report.mismatches, 0u) << report.first_mismatch;
    EXPECT_GT(report.queries_checked, 0u);
    total_queries += report.queries_checked;
    total_swaps += report.swaps;
    if (report.versions_served > 1) ++multi_version;
  }
  // The sweep only means something if swaps actually happened and batches
  // genuinely landed on different graph versions.
  EXPECT_GT(total_swaps, 0u);
  if (scenarios >= 10) EXPECT_GT(multi_version, 0u);
  RecordProperty("queries_checked", static_cast<int>(total_queries));
}

INSTANTIATE_TEST_SUITE_P(Threads, DifferentialLiveTest,
                         ::testing::Values(1, 2, 8));

// A scenario with updates but no concurrency knobs left to chance: the
// single-threaded sweep above plus this pinned-pin check give a readable
// failure before the big sweep is consulted.
TEST(LiveQueryEngineTest, InFlightBatchFinishesAgainstItsPinnedSnapshot) {
  TemporalGraph g = GenerateUniformRandom(24, 300, 16, 7);
  ThreadPool pool(4);
  LiveEngineOptions options;
  options.engine.pool = &pool;
  options.engine.build_index = true;
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  // Pin version 0 via an async submission, then swap twice.
  std::vector<Query> queries;
  for (Timestamp ts = 1; ts + 3 <= g.num_timestamps(); ts += 2) {
    queries.push_back(Query{2, Window{ts, static_cast<Timestamp>(ts + 3)}});
  }
  std::future<BatchResult> inflight = (*live)->SubmitAsync(queries);
  std::vector<RawTemporalEdge> extra = {{1, 2, 99}, {2, 3, 99}, {1, 3, 99}};
  ASSERT_TRUE((*live)->ApplyUpdates(extra).get().ok());
  ASSERT_TRUE((*live)->ApplyUpdates({{4, 5, 100}}).get().ok());
  EXPECT_EQ((*live)->version(), 2u);

  BatchResult early = inflight.get();
  // The batch may have pinned any version current at its submission —
  // here submission preceded both updates, so it must be version 0, and
  // its outcomes must match the naive oracle on the *original* graph.
  EXPECT_EQ(early.snapshot_version, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    RunOutcome oracle = RunAlgorithm(AlgorithmKind::kNaive, g, queries[i]);
    ASSERT_TRUE(early.outcomes[i].status.ok());
    EXPECT_EQ(early.outcomes[i].num_cores, oracle.num_cores) << i;
    EXPECT_EQ(early.outcomes[i].result_size_edges, oracle.result_size_edges)
        << i;
  }

  // A post-swap batch answers against the new graph version.
  BatchResult late = (*live)->ServeBatch(queries);
  EXPECT_EQ(late.snapshot_version, 2u);
  auto updated = g.AppendEdges(extra);
  ASSERT_TRUE(updated.ok());
  auto updated2 =
      updated->AppendEdges(std::vector<RawTemporalEdge>{{4, 5, 100}});
  ASSERT_TRUE(updated2.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    RunOutcome oracle =
        RunAlgorithm(AlgorithmKind::kNaive, *updated2, queries[i]);
    EXPECT_EQ(late.outcomes[i].num_cores, oracle.num_cores) << i;
    EXPECT_EQ(late.outcomes[i].result_size_edges, oracle.result_size_edges)
        << i;
  }
}

// A preloaded admission index describes the *initial* graph only. After a
// swap, the rebuilt snapshot must build a fresh index — reusing the
// preloaded one would keep "proving" ranges empty that the new edges just
// populated (or keep reading a pointer the caller may have freed).
TEST(LiveQueryEngineTest, RebuiltSnapshotDoesNotReusePreloadedIndex) {
  TemporalGraph g = GenerateUniformRandom(20, 200, 12, 5);
  auto index = PhcIndex::Build(g, g.FullRange(), PhcBuildOptions{});
  ASSERT_TRUE(index.ok());
  auto loaded = DeserializePhcIndex(SerializePhcIndex(*index));
  ASSERT_TRUE(loaded.ok());

  LiveEngineOptions options;
  options.engine.preloaded_index = &*loaded;
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  // Updates that keep the time span and vertex pool unchanged (existing
  // raw times, existing vertices) — the case a stale index would silently
  // survive validation for.
  std::vector<RawTemporalEdge> extra;
  for (VertexId u = 0; u < 12; ++u) {
    for (VertexId v = u + 1; v < 12; ++v) {
      extra.push_back({u, v, g.RawTimestamp(3)});
      extra.push_back({u, v, g.RawTimestamp(4)});
    }
  }
  ASSERT_TRUE((*live)->ApplyUpdates(extra).get().ok());

  auto updated = g.AppendEdges(extra);
  ASSERT_TRUE(updated.ok());
  ASSERT_EQ(updated->num_timestamps(), g.num_timestamps());

  // High-k queries over the densified window: the old index would reject
  // them as provably empty; the oracle on the updated graph disagrees.
  std::vector<Query> queries;
  for (uint32_t k = 2; k <= 11; ++k) {
    queries.push_back(Query{k, Window{3, 4}});
  }
  BatchResult result = (*live)->ServeBatch(queries);
  EXPECT_EQ(result.snapshot_version, 1u);
  for (size_t i = 0; i < queries.size(); ++i) {
    RunOutcome oracle =
        RunAlgorithm(AlgorithmKind::kNaive, *updated, queries[i]);
    ASSERT_TRUE(result.outcomes[i].status.ok()) << i;
    EXPECT_EQ(result.outcomes[i].num_cores, oracle.num_cores) << "k=" << i + 2;
    EXPECT_EQ(result.outcomes[i].result_size_edges, oracle.result_size_edges)
        << "k=" << i + 2;
  }
}

TEST(LiveQueryEngineTest, FailedUpdateKeepsServingOldSnapshot) {
  TemporalGraph g = GenerateUniformRandom(10, 60, 8, 3);
  LiveEngineOptions options;
  auto live = LiveQueryEngine::Create(g, options);
  ASSERT_TRUE(live.ok());
  // A batch of nothing but self-loops dedups/drops to an edgeless builder
  // only if the base graph were empty — here it rebuilds fine; instead use
  // an empty update to prove a no-op rebuild still advances the version.
  ASSERT_TRUE((*live)->ApplyUpdates({}).get().ok());
  EXPECT_EQ((*live)->version(), 1u);
  EXPECT_EQ((*live)->stats().swaps, 1u);
  BatchResult result = (*live)->ServeBatch({Query{2, g.FullRange()}});
  EXPECT_TRUE(result.outcomes[0].status.ok());
}

}  // namespace
}  // namespace tkc
