#include "net/wire_format.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tkc {
namespace {

using net::Frame;
using net::FrameParser;
using net::FrameType;
using net::ServerStats;

std::vector<Query> SomeQueries() {
  return {{3, {1, 9}}, {0, {2, 2}}, {7, {5, 3}}};  // invalid ones included:
  // the protocol carries them verbatim, the engine judges them
}

TEST(WireFormatTest, QueryRequestRoundTrip) {
  net::QueryRequestFrame request;
  request.request_id = 0xdeadbeefcafe1234ull;
  request.deadline_ms = 250;
  request.queries = SomeQueries();
  std::string wire;
  AppendQueryRequest(request, &wire);
  EXPECT_EQ(wire.size(),
            net::kFrameHeaderBytes + 16 + 12 * request.queries.size());

  FrameParser parser;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
  ASSERT_EQ(frame.type, FrameType::kQueryRequest);
  EXPECT_EQ(frame.query_request.request_id, request.request_id);
  EXPECT_EQ(frame.query_request.deadline_ms, 250u);
  ASSERT_EQ(frame.query_request.queries.size(), request.queries.size());
  for (size_t i = 0; i < request.queries.size(); ++i) {
    EXPECT_EQ(frame.query_request.queries[i].k, request.queries[i].k);
    EXPECT_EQ(frame.query_request.queries[i].range.start,
              request.queries[i].range.start);
    EXPECT_EQ(frame.query_request.queries[i].range.end,
              request.queries[i].range.end);
  }
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(WireFormatTest, VerdictAndBatchEndRoundTrip) {
  net::VerdictFrame verdict;
  verdict.request_id = 42;
  verdict.query_index = 3;
  verdict.status_code = net::StatusCodeToWire(StatusCode::kTimeout);
  verdict.num_cores = 7;
  verdict.result_size_edges = 1234567890123ull;
  verdict.vct_size = 11;
  verdict.ecs_size = 13;
  net::BatchEndFrame end;
  end.request_id = 42;
  end.snapshot_version = 5;
  end.num_queries = 4;

  std::string wire;
  AppendVerdict(verdict, &wire);
  AppendBatchEnd(end, &wire);

  FrameParser parser;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
  ASSERT_EQ(frame.type, FrameType::kVerdict);
  EXPECT_EQ(frame.verdict.request_id, 42u);
  EXPECT_EQ(frame.verdict.query_index, 3u);
  EXPECT_EQ(net::StatusCodeFromWire(frame.verdict.status_code),
            StatusCode::kTimeout);
  EXPECT_EQ(frame.verdict.result_size_edges, 1234567890123ull);
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
  ASSERT_EQ(frame.type, FrameType::kBatchEnd);
  EXPECT_EQ(frame.batch_end.snapshot_version, 5u);
  EXPECT_EQ(frame.batch_end.num_queries, 4u);
}

TEST(WireFormatTest, StatsRoundTripAllCounters) {
  ServerStats stats;
  // Distinct values per counter so a swapped field order cannot pass.
  uint64_t* fields = &stats.connections_accepted;
  for (uint32_t i = 0; i < net::kServerStatsCounters; ++i) {
    fields[i] = 1000 + i;
  }
  std::string wire;
  AppendStatsResponse(9, stats, &wire);

  FrameParser parser;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
  ASSERT_EQ(frame.type, FrameType::kStatsResponse);
  EXPECT_EQ(frame.stats_response_id, 9u);
  const uint64_t* parsed = &frame.stats.connections_accepted;
  for (uint32_t i = 0; i < net::kServerStatsCounters; ++i) {
    EXPECT_EQ(parsed[i], 1000 + i) << "counter " << i;
  }
}

TEST(WireFormatTest, ErrorFrameRoundTrip) {
  net::ErrorFrame error;
  error.request_id = 0;
  error.status_code = net::StatusCodeToWire(StatusCode::kInvalidArgument);
  error.message = "bad frame magic";
  std::string wire;
  AppendError(error, &wire);

  FrameParser parser;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(net::StatusCodeFromWire(frame.error.status_code),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(frame.error.message, "bad frame magic");
}

TEST(WireFormatTest, ReassemblesFromSingleByteFeeds) {
  net::QueryRequestFrame request;
  request.request_id = 77;
  request.queries = SomeQueries();
  std::string wire;
  AppendQueryRequest(request, &wire);
  net::AppendStatsRequest(78, &wire);

  FrameParser parser;
  Frame frame;
  size_t frames = 0;
  for (char byte : wire) {
    parser.Feed(&byte, 1);
    while (parser.Next(&frame) == FrameParser::Result::kFrame) ++frames;
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(WireFormatTest, TruncatedFrameNeedsMoreNotError) {
  net::QueryRequestFrame request;
  request.request_id = 1;
  request.queries = SomeQueries();
  std::string wire;
  AppendQueryRequest(request, &wire);

  FrameParser parser;
  parser.Feed(wire.data(), wire.size() - 1);
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kNeedMore);
  parser.Feed(wire.data() + wire.size() - 1, 1);
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
}

TEST(WireFormatTest, RejectsBadMagicVersionTypeReserved) {
  std::string good;
  net::AppendStatsRequest(1, &good);

  {
    std::string bad = good;
    bad[0] = 'X';
    FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kError);
    EXPECT_EQ(parser.error().code(), StatusCode::kInvalidArgument);
  }
  {
    std::string bad = good;
    bad[4] = 9;  // version
    FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kError);
  }
  {
    std::string bad = good;
    bad[5] = 0;  // type below range
    FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kError);
  }
  {
    std::string bad = good;
    bad[5] = 7;  // type above range
    FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kError);
  }
  {
    std::string bad = good;
    bad[6] = 1;  // reserved must be zero
    FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kError);
  }
}

TEST(WireFormatTest, RejectsOversizedPayloadBeforeBuffering) {
  // Header advertises a payload beyond the cap: the parser must poison on
  // the header alone, not wait for (or allocate) a gigabyte of payload.
  std::string wire;
  net::AppendStatsRequest(1, &wire);
  const uint32_t huge = net::kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    wire[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  FrameParser parser;
  parser.Feed(wire.data(), net::kFrameHeaderBytes);  // header only
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kError);
}

TEST(WireFormatTest, RejectsBadQueryCounts) {
  // Zero queries.
  net::QueryRequestFrame request;
  request.request_id = 1;
  request.queries = {{2, {1, 4}}};
  std::string wire;
  AppendQueryRequest(request, &wire);
  std::string zero = wire;
  zero[net::kFrameHeaderBytes + 12] = 0;  // num_queries -> 0
  {
    FrameParser parser;
    parser.Feed(zero.data(), zero.size());
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kError);
  }
  // Count disagreeing with the payload length.
  std::string mismatched = wire;
  mismatched[net::kFrameHeaderBytes + 12] = 3;
  {
    FrameParser parser;
    parser.Feed(mismatched.data(), mismatched.size());
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kError);
  }
  // Count above the per-request cap.
  {
    FrameParser parser(net::kMaxPayloadBytes, /*max_queries=*/1);
    net::QueryRequestFrame two;
    two.request_id = 2;
    two.queries = {{2, {1, 4}}, {3, {2, 5}}};
    std::string wire2;
    AppendQueryRequest(two, &wire2);
    parser.Feed(wire2.data(), wire2.size());
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kError);
  }
}

TEST(WireFormatTest, PoisonedParserStaysPoisoned) {
  std::string bad;
  net::AppendStatsRequest(1, &bad);
  bad[0] = 'Z';
  std::string good;
  net::AppendStatsRequest(2, &good);

  FrameParser parser;
  parser.Feed(bad.data(), bad.size());
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kError);
  parser.Feed(good.data(), good.size());
  // A framing error has no resync point: valid bytes after it change
  // nothing.
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kError);
}

TEST(WireFormatTest, StatsResponseForwardCompatible) {
  // A "newer server" appends one extra counter: the parser reads the ones
  // it knows and skips the tail instead of failing.
  ServerStats stats;
  stats.connections_accepted = 3;
  stats.bytes_written = 999;
  std::string wire;
  AppendStatsResponse(5, stats, &wire);
  // Rewrite: bump counter count and append one extra u64 (payload grows 8).
  const uint32_t n = net::kServerStatsCounters + 1;
  const uint32_t payload = 12 + 8 * n;
  for (int i = 0; i < 4; ++i) {
    wire[8 + i] = static_cast<char>((payload >> (8 * i)) & 0xff);
  }
  wire[net::kFrameHeaderBytes + 8] = static_cast<char>(n & 0xff);
  wire.append(8, '\x7f');

  FrameParser parser;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
  EXPECT_EQ(frame.stats.connections_accepted, 3u);
  EXPECT_EQ(frame.stats.bytes_written, 999u);
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kNeedMore);
}

TEST(WireFormatTest, StatusCodeWireMapping) {
  for (uint32_t code = 0; code <= 9; ++code) {
    EXPECT_EQ(net::StatusCodeToWire(net::StatusCodeFromWire(code)), code);
  }
  // Unknown wire values decode to kInternal, never silently OK.
  EXPECT_EQ(net::StatusCodeFromWire(10), StatusCode::kInternal);
  EXPECT_EQ(net::StatusCodeFromWire(0xffffffff), StatusCode::kInternal);
}

TEST(WireFormatTest, ClientFrameTypePredicate) {
  EXPECT_TRUE(net::IsClientFrameType(FrameType::kQueryRequest));
  EXPECT_TRUE(net::IsClientFrameType(FrameType::kStatsRequest));
  EXPECT_FALSE(net::IsClientFrameType(FrameType::kVerdict));
  EXPECT_FALSE(net::IsClientFrameType(FrameType::kBatchEnd));
  EXPECT_FALSE(net::IsClientFrameType(FrameType::kStatsResponse));
  EXPECT_FALSE(net::IsClientFrameType(FrameType::kError));
}

}  // namespace
}  // namespace tkc
