// Tests of the multi-k PHC index against per-window peeling and the
// single-k builders.

#include "vct/phc_index.h"

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "graph/core_decomposition.h"
#include "graph/window_peeler.h"
#include "util/rng.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

TEST(PhcIndexTest, SlicesMatchSingleKBuilders) {
  TemporalGraph g = PaperExampleGraph();
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->max_k(), 2u);  // the example's kmax
  for (uint32_t k = 1; k <= index->max_k(); ++k) {
    VertexCoreTimeIndex expected = BuildVctAndEcs(g, k, g.FullRange()).vct;
    const VertexCoreTimeIndex& slice = index->Slice(k);
    ASSERT_EQ(slice.size(), expected.size()) << "k=" << k;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      auto a = slice.EntriesOf(v), b = expected.EntriesOf(v);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
  }
}

TEST(PhcIndexTest, MembershipMatchesPeelerAcrossK) {
  TemporalGraph g = GenerateUniformRandom(14, 90, 10, 3);
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  for (uint32_t k = 1; k <= index->max_k(); ++k) {
    for (Timestamp a = 1; a <= g.num_timestamps(); a += 2) {
      for (Timestamp b = a; b <= g.num_timestamps(); b += 2) {
        std::vector<bool> oracle =
            ComputeWindowCoreVertices(g, k, Window{a, b});
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          EXPECT_EQ(index->VertexInCore(v, Window{a, b}, k),
                    static_cast<bool>(oracle[v]))
              << "k=" << k << " window [" << a << "," << b << "] v=" << v;
        }
      }
    }
  }
}

TEST(PhcIndexTest, HistoricalCoreNumberMatchesDecomposition) {
  TemporalGraph g = GenerateUniformRandom(12, 80, 10, 7);
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  for (Timestamp a = 1; a <= g.num_timestamps(); a += 3) {
    for (Timestamp b = a; b <= g.num_timestamps(); b += 3) {
      CoreDecompositionResult cores = DecomposeCores(g, Window{a, b});
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(index->HistoricalCoreNumber(v, Window{a, b}),
                  cores.core_numbers[v])
            << "window [" << a << "," << b << "] v=" << v;
      }
    }
  }
}

TEST(PhcIndexTest, KBeyondMaxIsInfinity) {
  TemporalGraph g = PaperExampleGraph();
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->CoreTimeAt(1, 1, index->max_k() + 1), kInfTime);
  EXPECT_EQ(index->CoreTimeAt(1, 1, 0), kInfTime);
  EXPECT_FALSE(index->VertexInCore(1, g.FullRange(), index->max_k() + 5));
}

TEST(PhcIndexTest, MaxKCapRespected) {
  TemporalGraph g = GenerateUniformRandom(14, 120, 8, 9);
  auto full = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(full.ok());
  if (full->max_k() < 2) GTEST_SKIP() << "graph too sparse";
  auto capped = PhcIndex::Build(g, g.FullRange(), 2);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->max_k(), 2u);
  EXPECT_LT(capped->size(), full->size());
}

TEST(PhcIndexTest, InvalidRangeRejected) {
  TemporalGraph g = PaperExampleGraph();
  EXPECT_FALSE(PhcIndex::Build(g, Window{0, 3}).ok());
  EXPECT_FALSE(PhcIndex::Build(g, Window{3, 99}).ok());
}

TEST(PhcIndexTest, SizeAndMemoryAggregate) {
  TemporalGraph g = GenerateUniformRandom(12, 70, 10, 11);
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  uint64_t total = 0;
  for (uint32_t k = 1; k <= index->max_k(); ++k) {
    total += index->Slice(k).size();
  }
  EXPECT_EQ(index->size(), total);
  EXPECT_GT(index->MemoryUsageBytes(), 0u);
}

// --- Delta-aware Rebuild -----------------------------------------------

// Helper: rebuild via AppendEdges + Rebuild and a from-scratch build on
// the same successor graph; assert the two indexes are bit-identical.
void ExpectRebuildMatchesBuild(const TemporalGraph& base,
                               const std::vector<RawTemporalEdge>& edges,
                               uint32_t max_k_cap, PhcRebuildStats* stats,
                               GraphUpdate* update_out = nullptr) {
  PhcBuildOptions build;
  build.max_k = max_k_cap;
  auto old_index = PhcIndex::Build(base, base.FullRange(), build);
  ASSERT_TRUE(old_index.ok());
  auto update = base.AppendEdges(edges);
  ASSERT_TRUE(update.ok());
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, stats);
  ASSERT_TRUE(rebuilt.ok());
  auto fresh = PhcIndex::Build(update->graph, update->graph.FullRange(),
                               build);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(*rebuilt == *fresh);
  if (update_out != nullptr) *update_out = std::move(update).value();
}

TEST(PhcRebuildTest, SmallDeltaReusesSlicesByPointer) {
  // Dense core + two pendants; the delta connects the pendants at an
  // existing raw time, so max_core_bound == 2 and every slice above 2
  // must be the *same object* as the old index's.
  TemporalGraph dense = GenerateUniformRandom(18, 300, 10, 21);
  const VertexId p = dense.num_vertices(), q = p + 1;
  auto based = dense.AppendEdges(std::vector<RawTemporalEdge>{
      {p, 0, dense.RawTimestamp(1)}, {q, 1, dense.RawTimestamp(2)}});
  ASSERT_TRUE(based.ok());
  TemporalGraph base = std::move(based->graph);

  PhcBuildOptions build;
  auto old_index = PhcIndex::Build(base, base.FullRange(), build);
  ASSERT_TRUE(old_index.ok());
  ASSERT_GT(old_index->max_k(), 3u);

  auto update = base.AppendEdges(
      std::vector<RawTemporalEdge>{{p, q, base.RawTimestamp(3)}});
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(update->delta.timestamps_preserved);
  ASSERT_TRUE(update->delta.vertices_preserved);
  ASSERT_EQ(update->delta.max_core_bound, 2u);

  PhcRebuildStats stats;
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(stats.clean_above_k, 2u);
  // The dirty slices (k = 1, 2) are maintained, not pointer-reused — since
  // the delta sits at one interior timestamp, they go through the suffix
  // path (recompute the band, carry prefix/tail rows) rather than a whole
  // rebuild.
  EXPECT_EQ(stats.suffix_rebuilds + stats.slices_rebuilt, 2u);
  EXPECT_EQ(stats.suffix_rebuilds, 2u);
  EXPECT_GT(stats.rows_reused, 0u);
  EXPECT_EQ(stats.slices_reused, old_index->max_k() - 2);
  for (uint32_t k = 1; k <= rebuilt->max_k(); ++k) {
    const bool shared =
        rebuilt->SliceShared(k) == old_index->SliceShared(k);
    EXPECT_EQ(shared, k > 2) << "k=" << k;
  }
  // And the reused slices are genuinely correct for the new graph.
  auto fresh =
      PhcIndex::Build(update->graph, update->graph.FullRange(), build);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(*rebuilt == *fresh);
}

TEST(PhcRebuildTest, EmptyDeltaReusesEverySlice) {
  TemporalGraph g = GenerateUniformRandom(14, 120, 9, 7);
  PhcBuildOptions build;
  auto old_index = PhcIndex::Build(g, g.FullRange(), build);
  ASSERT_TRUE(old_index.ok());
  // Append only duplicates: the successor graph is bit-identical.
  std::vector<RawTemporalEdge> dupes;
  for (EdgeId e = 0; e < 4; ++e) {
    dupes.push_back({g.edge(e).u, g.edge(e).v, g.RawTimestamp(g.edge(e).t)});
  }
  auto update = g.AppendEdges(dupes);
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(update->delta.empty());
  PhcRebuildStats stats;
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(stats.clean_above_k, 0u);
  EXPECT_EQ(stats.slices_rebuilt, 0u);
  EXPECT_EQ(stats.slices_reused, old_index->max_k());
  for (uint32_t k = 1; k <= rebuilt->max_k(); ++k) {
    EXPECT_EQ(rebuilt->SliceShared(k), old_index->SliceShared(k));
  }
}

TEST(PhcRebuildTest, NewTimestampForcesFullRebuild) {
  TemporalGraph g = GenerateUniformRandom(14, 120, 9, 7);
  PhcBuildOptions build;
  auto old_index = PhcIndex::Build(g, g.FullRange(), build);
  ASSERT_TRUE(old_index.ok());
  auto update =
      g.AppendEdges(std::vector<RawTemporalEdge>{{0, 1, 999999}});
  ASSERT_TRUE(update.ok());
  ASSERT_FALSE(update->delta.timestamps_preserved);
  PhcRebuildStats stats;
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(stats.reuse_eligible());
  EXPECT_EQ(stats.slices_reused, 0u);
  EXPECT_EQ(stats.slices_rebuilt, rebuilt->max_k());
}

TEST(PhcRebuildTest, LateDeltaMaintainsDirtySlicesBySuffix) {
  // A pendant-to-pendant delta at the *last* timestamp: slices k <= 2 are
  // dirty by the core bound, but every core time below that timestamp is
  // pinned, so they must be maintained by recomputing only the trailing
  // start band — carrying the prefix rows — and still be bit-identical to
  // a from-scratch build.
  TemporalGraph dense = GenerateUniformRandom(18, 300, 10, 21);
  const VertexId p = dense.num_vertices(), q = p + 1;
  auto based = dense.AppendEdges(std::vector<RawTemporalEdge>{
      {p, 0, dense.RawTimestamp(1)}, {q, 1, dense.RawTimestamp(2)}});
  ASSERT_TRUE(based.ok());
  TemporalGraph base = std::move(based->graph);

  PhcBuildOptions build;
  auto old_index = PhcIndex::Build(base, base.FullRange(), build);
  ASSERT_TRUE(old_index.ok());

  const Timestamp last = base.num_timestamps();
  auto update = base.AppendEdges(
      std::vector<RawTemporalEdge>{{p, q, base.RawTimestamp(last)}});
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(update->delta.timestamps_preserved);
  ASSERT_EQ(update->delta.TimeExtent(), (Window{last, last}));

  PhcRebuildStats stats;
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_GT(stats.suffix_rebuilds, 0u);
  EXPECT_GT(stats.rows_reused, 0u);
  EXPECT_EQ(stats.slices_reused + stats.suffix_rebuilds + stats.slices_rebuilt,
            rebuilt->max_k());
  auto fresh =
      PhcIndex::Build(update->graph, update->graph.FullRange(), build);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(*rebuilt == *fresh);
  EXPECT_EQ(stats.rows_total, fresh->size());
  // Suffix-maintained slices are new objects (never aliased into the old
  // index), and reused ones are the exact old objects.
  for (uint32_t k = 1; k <= rebuilt->max_k(); ++k) {
    if (k > update->delta.max_core_bound) {
      EXPECT_EQ(rebuilt->SliceShared(k), old_index->SliceShared(k)) << k;
    }
  }
}

TEST(PhcRebuildTest, MidTimelineDeltaReusesPrefixAndTailRows) {
  // A delta in the middle of the timeline: the dirty band is bounded on
  // both sides, so a suffix-maintained slice reuses prefix rows *and* the
  // rows past the delta's max time (the advance stops there).
  TemporalGraph dense = GenerateUniformRandom(18, 300, 12, 21);
  const VertexId p = dense.num_vertices(), q = p + 1;
  auto based = dense.AppendEdges(std::vector<RawTemporalEdge>{
      {p, 0, dense.RawTimestamp(1)}, {q, 1, dense.RawTimestamp(2)}});
  ASSERT_TRUE(based.ok());
  TemporalGraph base = std::move(based->graph);

  PhcBuildOptions build;
  auto old_index = PhcIndex::Build(base, base.FullRange(), build);
  ASSERT_TRUE(old_index.ok());
  const Timestamp mid = base.num_timestamps() / 2;
  auto update = base.AppendEdges(
      std::vector<RawTemporalEdge>{{p, q, base.RawTimestamp(mid)}});
  ASSERT_TRUE(update.ok());
  ASSERT_EQ(update->delta.TimeExtent(), (Window{mid, mid}));

  PhcRebuildStats stats;
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_GT(stats.suffix_rebuilds, 0u);
  EXPECT_GT(stats.rows_reused, 0u);
  auto fresh =
      PhcIndex::Build(update->graph, update->graph.FullRange(), build);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(*rebuilt == *fresh);
}

TEST(PhcRebuildTest, EndpointConnectivityTightensDirtyBands) {
  // Two satellites, each wired to the dense core by exactly two early
  // edges, joined by a delta edge late in the timeline. The delta's core
  // bound is 3 (each endpoint's distinct degree), so the global rule
  // dirties k = 1..3 — but the k=2 slice is provably *unchanged*: a new
  // 2-core around the delta edge needs each endpoint's second distinct
  // neighbor inside the window, which for window starts past the early
  // wiring never happens before the old core times anyway. The
  // endpoint-connectivity oracle must prove that and shrink (or empty)
  // the k=2 band where the global bound could not.
  TemporalGraph dense = GenerateUniformRandom(18, 260, 12, 33);
  const VertexId p = dense.num_vertices(), q = p + 1;
  auto based = dense.AppendEdges(std::vector<RawTemporalEdge>{
      {p, 0, dense.RawTimestamp(2)},
      {p, 1, dense.RawTimestamp(2)},
      {q, 2, dense.RawTimestamp(3)},
      {q, 3, dense.RawTimestamp(3)}});
  ASSERT_TRUE(based.ok());
  TemporalGraph base = std::move(based->graph);

  auto update = base.AppendEdges(
      std::vector<RawTemporalEdge>{{p, q, base.RawTimestamp(8)}});
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(update->delta.timestamps_preserved);
  ASSERT_TRUE(update->delta.vertices_preserved);
  ASSERT_EQ(update->delta.TimeExtent(), (Window{8, 8}));
  ASSERT_EQ(update->delta.max_core_bound, 3u);

  PhcBuildOptions build;
  auto old_index = PhcIndex::Build(base, base.FullRange(), build);
  ASSERT_TRUE(old_index.ok());
  PhcRebuildStats stats;
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_GE(stats.bands_tightened, 1u);
  // Tightening must never cost correctness: still bit-identical to a
  // from-scratch build on the new graph.
  auto fresh =
      PhcIndex::Build(update->graph, update->graph.FullRange(), build);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(*rebuilt == *fresh);
}

TEST(PhcRebuildTest, BoundaryTimestampAppendsMatchBuild) {
  // Sentinel-adjacent deltas: edges landing exactly on the first and last
  // compacted timestamps (the edge spans the time-offset table brackets
  // with its sentinel rows). Both must keep the reuse proof sound.
  TemporalGraph g = GenerateUniformRandom(16, 140, 12, 5);
  PhcRebuildStats stats;
  ExpectRebuildMatchesBuild(g, {{0, 1, g.RawTimestamp(1)}}, 0, &stats);
  EXPECT_TRUE(stats.reuse_eligible());
  ExpectRebuildMatchesBuild(
      g, {{2, 3, g.RawTimestamp(g.num_timestamps())}}, 0, &stats);
  EXPECT_TRUE(stats.reuse_eligible());
  // Both boundaries in one delta: the extent spans the whole timeline —
  // still bit-identical.
  ExpectRebuildMatchesBuild(
      g,
      {{0, 5, g.RawTimestamp(1)}, {1, 6, g.RawTimestamp(g.num_timestamps())}},
      0, &stats);
}

TEST(PhcRebuildTest, MultigraphParallelAppendMatchesBuild) {
  // A dedup-off multigraph: appended exact duplicates survive ingestion
  // and count in the delta, but they add no distinct neighbor — the core
  // bound must not move, slice reuse stays sound, and the rebuilt index
  // matches a from-scratch build on the multigraph.
  TemporalGraphBuilder builder;
  builder.SetDeduplicateExact(false);
  Rng rng(99);
  for (int i = 0; i < 120; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(10));
    VertexId v = static_cast<VertexId>(rng.NextBounded(10));
    if (u == v) continue;
    builder.AddEdge(u, v, 1 + rng.NextBounded(8));
  }
  builder.AddEdge(10, 0, 3);  // a pendant to append parallel edges onto
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  TemporalGraph g = std::move(built).value();

  // Parallel duplicates of the pendant edge at an existing raw time: the
  // pendant's distinct degree stays 1.
  std::vector<RawTemporalEdge> dupes = {{10, 0, 3}, {0, 10, 3}};
  auto update = g.AppendEdges(dupes);
  ASSERT_TRUE(update.ok());
  ASSERT_EQ(update->delta.edges_appended, 2u);
  EXPECT_EQ(update->delta.max_core_bound, 1u);
  EXPECT_TRUE(update->delta.timestamps_preserved);

  PhcBuildOptions build;
  auto old_index = PhcIndex::Build(g, g.FullRange(), build);
  ASSERT_TRUE(old_index.ok());
  PhcRebuildStats stats;
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(stats.reuse_eligible());
  EXPECT_EQ(stats.clean_above_k, 1u);
  auto fresh =
      PhcIndex::Build(update->graph, update->graph.FullRange(), build);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(*rebuilt == *fresh);
  for (uint32_t k = 2; k <= rebuilt->max_k(); ++k) {
    EXPECT_EQ(rebuilt->SliceShared(k), old_index->SliceShared(k)) << k;
  }
}

TEST(PhcRebuildTest, MatchesBuildAcrossDeltaShapes) {
  TemporalGraph g = GenerateUniformRandom(16, 140, 12, 5);
  PhcRebuildStats stats;
  // New vertex (shape change) — full rebuild, still identical.
  ExpectRebuildMatchesBuild(
      g, {{0, g.num_vertices(), g.RawTimestamp(2)}}, 0, &stats);
  EXPECT_FALSE(stats.reuse_eligible());
  // In-span append over existing vertices and times — eligible.
  ExpectRebuildMatchesBuild(
      g, {{0, 1, g.RawTimestamp(5)}, {2, 3, g.RawTimestamp(5)}}, 0, &stats);
  EXPECT_TRUE(stats.reuse_eligible());
  // Capped index: rebuild honors the cap exactly as Build does.
  ExpectRebuildMatchesBuild(
      g, {{0, 1, g.RawTimestamp(5)}, {4, 5, g.RawTimestamp(7)}}, 2, &stats);
  // A dense burst that raises kmax at one timestamp — dirty slices grow
  // past the old index's max_k and get built fresh.
  std::vector<RawTemporalEdge> burst;
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId v = u + 1; v < 10; ++v) {
      burst.push_back({u, v, g.RawTimestamp(4)});
    }
  }
  ExpectRebuildMatchesBuild(g, burst, 0, &stats);
}

}  // namespace
}  // namespace tkc
