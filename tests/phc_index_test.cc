// Tests of the multi-k PHC index against per-window peeling and the
// single-k builders.

#include "vct/phc_index.h"

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "graph/core_decomposition.h"
#include "graph/window_peeler.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

TEST(PhcIndexTest, SlicesMatchSingleKBuilders) {
  TemporalGraph g = PaperExampleGraph();
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->max_k(), 2u);  // the example's kmax
  for (uint32_t k = 1; k <= index->max_k(); ++k) {
    VertexCoreTimeIndex expected = BuildVctAndEcs(g, k, g.FullRange()).vct;
    const VertexCoreTimeIndex& slice = index->Slice(k);
    ASSERT_EQ(slice.size(), expected.size()) << "k=" << k;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      auto a = slice.EntriesOf(v), b = expected.EntriesOf(v);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
  }
}

TEST(PhcIndexTest, MembershipMatchesPeelerAcrossK) {
  TemporalGraph g = GenerateUniformRandom(14, 90, 10, 3);
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  for (uint32_t k = 1; k <= index->max_k(); ++k) {
    for (Timestamp a = 1; a <= g.num_timestamps(); a += 2) {
      for (Timestamp b = a; b <= g.num_timestamps(); b += 2) {
        std::vector<bool> oracle =
            ComputeWindowCoreVertices(g, k, Window{a, b});
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          EXPECT_EQ(index->VertexInCore(v, Window{a, b}, k),
                    static_cast<bool>(oracle[v]))
              << "k=" << k << " window [" << a << "," << b << "] v=" << v;
        }
      }
    }
  }
}

TEST(PhcIndexTest, HistoricalCoreNumberMatchesDecomposition) {
  TemporalGraph g = GenerateUniformRandom(12, 80, 10, 7);
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  for (Timestamp a = 1; a <= g.num_timestamps(); a += 3) {
    for (Timestamp b = a; b <= g.num_timestamps(); b += 3) {
      CoreDecompositionResult cores = DecomposeCores(g, Window{a, b});
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(index->HistoricalCoreNumber(v, Window{a, b}),
                  cores.core_numbers[v])
            << "window [" << a << "," << b << "] v=" << v;
      }
    }
  }
}

TEST(PhcIndexTest, KBeyondMaxIsInfinity) {
  TemporalGraph g = PaperExampleGraph();
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->CoreTimeAt(1, 1, index->max_k() + 1), kInfTime);
  EXPECT_EQ(index->CoreTimeAt(1, 1, 0), kInfTime);
  EXPECT_FALSE(index->VertexInCore(1, g.FullRange(), index->max_k() + 5));
}

TEST(PhcIndexTest, MaxKCapRespected) {
  TemporalGraph g = GenerateUniformRandom(14, 120, 8, 9);
  auto full = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(full.ok());
  if (full->max_k() < 2) GTEST_SKIP() << "graph too sparse";
  auto capped = PhcIndex::Build(g, g.FullRange(), 2);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->max_k(), 2u);
  EXPECT_LT(capped->size(), full->size());
}

TEST(PhcIndexTest, InvalidRangeRejected) {
  TemporalGraph g = PaperExampleGraph();
  EXPECT_FALSE(PhcIndex::Build(g, Window{0, 3}).ok());
  EXPECT_FALSE(PhcIndex::Build(g, Window{3, 99}).ok());
}

TEST(PhcIndexTest, SizeAndMemoryAggregate) {
  TemporalGraph g = GenerateUniformRandom(12, 70, 10, 11);
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  uint64_t total = 0;
  for (uint32_t k = 1; k <= index->max_k(); ++k) {
    total += index->Slice(k).size();
  }
  EXPECT_EQ(index->size(), total);
  EXPECT_GT(index->MemoryUsageBytes(), 0u);
}

// --- Delta-aware Rebuild -----------------------------------------------

// Helper: rebuild via AppendEdges + Rebuild and a from-scratch build on
// the same successor graph; assert the two indexes are bit-identical.
void ExpectRebuildMatchesBuild(const TemporalGraph& base,
                               const std::vector<RawTemporalEdge>& edges,
                               uint32_t max_k_cap, PhcRebuildStats* stats,
                               GraphUpdate* update_out = nullptr) {
  PhcBuildOptions build;
  build.max_k = max_k_cap;
  auto old_index = PhcIndex::Build(base, base.FullRange(), build);
  ASSERT_TRUE(old_index.ok());
  auto update = base.AppendEdges(edges);
  ASSERT_TRUE(update.ok());
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, stats);
  ASSERT_TRUE(rebuilt.ok());
  auto fresh = PhcIndex::Build(update->graph, update->graph.FullRange(),
                               build);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(*rebuilt == *fresh);
  if (update_out != nullptr) *update_out = std::move(update).value();
}

TEST(PhcRebuildTest, SmallDeltaReusesSlicesByPointer) {
  // Dense core + two pendants; the delta connects the pendants at an
  // existing raw time, so max_core_bound == 2 and every slice above 2
  // must be the *same object* as the old index's.
  TemporalGraph dense = GenerateUniformRandom(18, 300, 10, 21);
  const VertexId p = dense.num_vertices(), q = p + 1;
  auto based = dense.AppendEdges(std::vector<RawTemporalEdge>{
      {p, 0, dense.RawTimestamp(1)}, {q, 1, dense.RawTimestamp(2)}});
  ASSERT_TRUE(based.ok());
  TemporalGraph base = std::move(based->graph);

  PhcBuildOptions build;
  auto old_index = PhcIndex::Build(base, base.FullRange(), build);
  ASSERT_TRUE(old_index.ok());
  ASSERT_GT(old_index->max_k(), 3u);

  auto update = base.AppendEdges(
      std::vector<RawTemporalEdge>{{p, q, base.RawTimestamp(3)}});
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(update->delta.timestamps_preserved);
  ASSERT_TRUE(update->delta.vertices_preserved);
  ASSERT_EQ(update->delta.max_core_bound, 2u);

  PhcRebuildStats stats;
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(stats.clean_above_k, 2u);
  EXPECT_EQ(stats.slices_rebuilt, 2u);  // k = 1, 2
  EXPECT_EQ(stats.slices_reused, old_index->max_k() - 2);
  for (uint32_t k = 1; k <= rebuilt->max_k(); ++k) {
    const bool shared =
        rebuilt->SliceShared(k) == old_index->SliceShared(k);
    EXPECT_EQ(shared, k > 2) << "k=" << k;
  }
  // And the reused slices are genuinely correct for the new graph.
  auto fresh =
      PhcIndex::Build(update->graph, update->graph.FullRange(), build);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(*rebuilt == *fresh);
}

TEST(PhcRebuildTest, EmptyDeltaReusesEverySlice) {
  TemporalGraph g = GenerateUniformRandom(14, 120, 9, 7);
  PhcBuildOptions build;
  auto old_index = PhcIndex::Build(g, g.FullRange(), build);
  ASSERT_TRUE(old_index.ok());
  // Append only duplicates: the successor graph is bit-identical.
  std::vector<RawTemporalEdge> dupes;
  for (EdgeId e = 0; e < 4; ++e) {
    dupes.push_back({g.edge(e).u, g.edge(e).v, g.RawTimestamp(g.edge(e).t)});
  }
  auto update = g.AppendEdges(dupes);
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(update->delta.empty());
  PhcRebuildStats stats;
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(stats.clean_above_k, 0u);
  EXPECT_EQ(stats.slices_rebuilt, 0u);
  EXPECT_EQ(stats.slices_reused, old_index->max_k());
  for (uint32_t k = 1; k <= rebuilt->max_k(); ++k) {
    EXPECT_EQ(rebuilt->SliceShared(k), old_index->SliceShared(k));
  }
}

TEST(PhcRebuildTest, NewTimestampForcesFullRebuild) {
  TemporalGraph g = GenerateUniformRandom(14, 120, 9, 7);
  PhcBuildOptions build;
  auto old_index = PhcIndex::Build(g, g.FullRange(), build);
  ASSERT_TRUE(old_index.ok());
  auto update =
      g.AppendEdges(std::vector<RawTemporalEdge>{{0, 1, 999999}});
  ASSERT_TRUE(update.ok());
  ASSERT_FALSE(update->delta.timestamps_preserved);
  PhcRebuildStats stats;
  auto rebuilt = PhcIndex::Rebuild(*old_index, update->graph, update->delta,
                                   build, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(stats.reuse_eligible());
  EXPECT_EQ(stats.slices_reused, 0u);
  EXPECT_EQ(stats.slices_rebuilt, rebuilt->max_k());
}

TEST(PhcRebuildTest, MatchesBuildAcrossDeltaShapes) {
  TemporalGraph g = GenerateUniformRandom(16, 140, 12, 5);
  PhcRebuildStats stats;
  // New vertex (shape change) — full rebuild, still identical.
  ExpectRebuildMatchesBuild(
      g, {{0, g.num_vertices(), g.RawTimestamp(2)}}, 0, &stats);
  EXPECT_FALSE(stats.reuse_eligible());
  // In-span append over existing vertices and times — eligible.
  ExpectRebuildMatchesBuild(
      g, {{0, 1, g.RawTimestamp(5)}, {2, 3, g.RawTimestamp(5)}}, 0, &stats);
  EXPECT_TRUE(stats.reuse_eligible());
  // Capped index: rebuild honors the cap exactly as Build does.
  ExpectRebuildMatchesBuild(
      g, {{0, 1, g.RawTimestamp(5)}, {4, 5, g.RawTimestamp(7)}}, 2, &stats);
  // A dense burst that raises kmax at one timestamp — dirty slices grow
  // past the old index's max_k and get built fresh.
  std::vector<RawTemporalEdge> burst;
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId v = u + 1; v < 10; ++v) {
      burst.push_back({u, v, g.RawTimestamp(4)});
    }
  }
  ExpectRebuildMatchesBuild(g, burst, 0, &stats);
}

}  // namespace
}  // namespace tkc
