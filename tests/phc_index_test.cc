// Tests of the multi-k PHC index against per-window peeling and the
// single-k builders.

#include "vct/phc_index.h"

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "graph/core_decomposition.h"
#include "graph/window_peeler.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

TEST(PhcIndexTest, SlicesMatchSingleKBuilders) {
  TemporalGraph g = PaperExampleGraph();
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->max_k(), 2u);  // the example's kmax
  for (uint32_t k = 1; k <= index->max_k(); ++k) {
    VertexCoreTimeIndex expected = BuildVctAndEcs(g, k, g.FullRange()).vct;
    const VertexCoreTimeIndex& slice = index->Slice(k);
    ASSERT_EQ(slice.size(), expected.size()) << "k=" << k;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      auto a = slice.EntriesOf(v), b = expected.EntriesOf(v);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
  }
}

TEST(PhcIndexTest, MembershipMatchesPeelerAcrossK) {
  TemporalGraph g = GenerateUniformRandom(14, 90, 10, 3);
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  for (uint32_t k = 1; k <= index->max_k(); ++k) {
    for (Timestamp a = 1; a <= g.num_timestamps(); a += 2) {
      for (Timestamp b = a; b <= g.num_timestamps(); b += 2) {
        std::vector<bool> oracle =
            ComputeWindowCoreVertices(g, k, Window{a, b});
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          EXPECT_EQ(index->VertexInCore(v, Window{a, b}, k),
                    static_cast<bool>(oracle[v]))
              << "k=" << k << " window [" << a << "," << b << "] v=" << v;
        }
      }
    }
  }
}

TEST(PhcIndexTest, HistoricalCoreNumberMatchesDecomposition) {
  TemporalGraph g = GenerateUniformRandom(12, 80, 10, 7);
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  for (Timestamp a = 1; a <= g.num_timestamps(); a += 3) {
    for (Timestamp b = a; b <= g.num_timestamps(); b += 3) {
      CoreDecompositionResult cores = DecomposeCores(g, Window{a, b});
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(index->HistoricalCoreNumber(v, Window{a, b}),
                  cores.core_numbers[v])
            << "window [" << a << "," << b << "] v=" << v;
      }
    }
  }
}

TEST(PhcIndexTest, KBeyondMaxIsInfinity) {
  TemporalGraph g = PaperExampleGraph();
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->CoreTimeAt(1, 1, index->max_k() + 1), kInfTime);
  EXPECT_EQ(index->CoreTimeAt(1, 1, 0), kInfTime);
  EXPECT_FALSE(index->VertexInCore(1, g.FullRange(), index->max_k() + 5));
}

TEST(PhcIndexTest, MaxKCapRespected) {
  TemporalGraph g = GenerateUniformRandom(14, 120, 8, 9);
  auto full = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(full.ok());
  if (full->max_k() < 2) GTEST_SKIP() << "graph too sparse";
  auto capped = PhcIndex::Build(g, g.FullRange(), 2);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->max_k(), 2u);
  EXPECT_LT(capped->size(), full->size());
}

TEST(PhcIndexTest, InvalidRangeRejected) {
  TemporalGraph g = PaperExampleGraph();
  EXPECT_FALSE(PhcIndex::Build(g, Window{0, 3}).ok());
  EXPECT_FALSE(PhcIndex::Build(g, Window{3, 99}).ok());
}

TEST(PhcIndexTest, SizeAndMemoryAggregate) {
  TemporalGraph g = GenerateUniformRandom(12, 70, 10, 11);
  auto index = PhcIndex::Build(g, g.FullRange());
  ASSERT_TRUE(index.ok());
  uint64_t total = 0;
  for (uint32_t k = 1; k <= index->max_k(); ++k) {
    total += index->Slice(k).size();
  }
  EXPECT_EQ(index->size(), total);
  EXPECT_GT(index->MemoryUsageBytes(), 0u);
}

}  // namespace
}  // namespace tkc
