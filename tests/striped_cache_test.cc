// Striped-cache semantics and concurrency tests (serve/query_cache.h).
//
// The StripedQueryCache is the serving hot path's de-contended memo; its
// contract is "one QueryCache of the same capacity, minus global LRU
// order". These tests pin that contract from three sides:
//
//  * a single-stripe striped cache replays a seeded op tape bit-identically
//    against a plain QueryCache (hits, misses, evictions, payloads);
//  * a multi-stripe cache preserves the aggregate capacity semantics — the
//    summed weight budget, the per-key tombstone-upgrade rules — even
//    though eviction victims may differ from global LRU;
//  * a seeded multi-thread stress hammers lookup/insert/tombstone/clear
//    concurrently and then checks the accounting balances exactly: every
//    lookup is counted once as a hit or a miss, every hit returned the
//    payload its key demands, and the weight budget never overflows.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/query_cache.h"
#include "util/rng.h"

namespace tkc {
namespace {

Query Q(uint32_t k, Timestamp start, Timestamp end) {
  return Query{k, Window{start, end}};
}

// Payload as a pure function of the key, so any thread can validate any
// hit without knowing who inserted the entry.
RunOutcome OutcomeFor(const Query& query) {
  RunOutcome out;
  out.status = Status::OK();
  out.num_cores = query.k * 1000ull + query.range.start;
  out.result_size_edges = query.range.end;
  return out;
}

// The key space of the stress test: small enough that keys recur (hits and
// tombstone upgrades happen), large enough to spread across stripes.
Query KeyOf(uint64_t id) {
  const uint32_t k = static_cast<uint32_t>(1 + id % 12);
  const Timestamp start = static_cast<Timestamp>(1 + (id / 12) % 8);
  return Q(k, start, start + 4);
}

TEST(StripedCacheTest, SingleStripeMatchesPlainCacheExactly) {
  // One stripe = one lock = the legacy semantics; a seeded op tape must
  // produce identical observable state on both implementations.
  constexpr size_t kCapacity = 6;
  QueryCache plain(kCapacity);
  StripedQueryCache striped(kCapacity, 1);
  ASSERT_EQ(striped.num_stripes(), 1u);

  Rng rng(20260807);
  for (int op = 0; op < 4000; ++op) {
    const Query query = KeyOf(rng.NextBounded(96));
    switch (rng.NextBounded(4)) {
      case 0: {
        RunOutcome a, b;
        EXPECT_EQ(plain.Lookup(query, &a), striped.Lookup(query, &b));
        EXPECT_EQ(a.num_cores, b.num_cores);
        EXPECT_EQ(a.result_size_edges, b.result_size_edges);
        break;
      }
      case 1:
        plain.Insert(query, OutcomeFor(query));
        striped.Insert(query, OutcomeFor(query));
        break;
      case 2:
        plain.InsertTombstone(query);
        striped.InsertTombstone(query);
        break;
      default:
        if (rng.NextBounded(64) == 0) {  // rare full clears
          plain.Clear();
          striped.Clear();
        }
        break;
    }
    ASSERT_EQ(plain.size(), striped.size());
    ASSERT_EQ(plain.weight_used(), striped.weight_used());
    ASSERT_EQ(plain.tombstones(), striped.tombstones());
    ASSERT_EQ(plain.hits(), striped.hits());
    ASSERT_EQ(plain.misses(), striped.misses());
    ASSERT_EQ(plain.evictions(), striped.evictions());
  }
}

TEST(StripedCacheTest, StripeCountCappedByCapacity) {
  // A stripe with zero budget could never hold anything; the constructor
  // caps the stripe count so every stripe owns at least one outcome slot.
  StripedQueryCache small(3, 16);
  EXPECT_EQ(small.num_stripes(), 3u);
  EXPECT_EQ(small.capacity(), 3u);
  EXPECT_EQ(small.weight_capacity(), 3 * QueryCache::kOutcomeWeight);

  StripedQueryCache disabled(0, 16);
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(disabled.weight_capacity(), 0u);
  RunOutcome out;
  disabled.Insert(Q(1, 1, 2), OutcomeFor(Q(1, 1, 2)));
  EXPECT_FALSE(disabled.Lookup(Q(1, 1, 2), &out));
  EXPECT_EQ(disabled.size(), 0u);
}

TEST(StripedCacheTest, AggregateCapacityMatchesSingleLockCache) {
  // Overfill a multi-stripe cache and a plain cache with the same entry
  // stream: the budget totals must agree even though the eviction victims
  // (per-stripe LRU vs global LRU) may not.
  constexpr size_t kCapacity = 8;
  QueryCache plain(kCapacity);
  StripedQueryCache striped(kCapacity, 4);
  ASSERT_EQ(striped.num_stripes(), 4u);
  ASSERT_EQ(striped.weight_capacity(), plain.weight_capacity());

  for (uint64_t id = 0; id < 64; ++id) {
    const Query query = KeyOf(id);
    plain.Insert(query, OutcomeFor(query));
    striped.Insert(query, OutcomeFor(query));
    EXPECT_LE(striped.weight_used(), striped.weight_capacity());
  }
  // Both caches are full to their (identical) budget: with full outcomes
  // only, that pins the entry count too.
  EXPECT_EQ(plain.weight_used(), plain.weight_capacity());
  EXPECT_EQ(striped.weight_used(), striped.weight_capacity());
  EXPECT_EQ(striped.size(), plain.size());

  // Tombstones cost 1 unit on both sides; an upgrade to a full outcome
  // re-prices the same key identically.
  QueryCache plain_t(2);
  StripedQueryCache striped_t(2, 2);
  const Query tq = Q(40, 1, 3);
  plain_t.InsertTombstone(tq);
  striped_t.InsertTombstone(tq);
  EXPECT_EQ(striped_t.weight_used(), plain_t.weight_used());
  EXPECT_EQ(striped_t.tombstones(), 1u);
  plain_t.Insert(tq, OutcomeFor(tq));
  striped_t.Insert(tq, OutcomeFor(tq));
  EXPECT_EQ(striped_t.weight_used(), plain_t.weight_used());
  EXPECT_EQ(striped_t.tombstones(), 0u);
}

TEST(StripedCacheTest, ExportImportCarriesEntriesAcrossCaches) {
  // Capacities are generous on purpose: the budget is split per stripe, so
  // a skewed hash routing of 7 entries must still fit the unluckiest
  // stripe (7 full outcomes <= 32/4 = 8 slots) for the carry to be total.
  StripedQueryCache source(32, 4);
  for (uint64_t id = 0; id < 6; ++id) {
    source.Insert(KeyOf(id), OutcomeFor(KeyOf(id)));
  }
  source.InsertTombstone(Q(50, 2, 9));
  ASSERT_EQ(source.size(), 7u);

  StripedQueryCache target(32, 2);  // different stripe count on purpose
  const size_t imported = target.ImportEntries(source.ExportLruToMru());
  EXPECT_EQ(imported, 7u);
  EXPECT_EQ(target.size(), source.size());
  EXPECT_EQ(target.tombstones(), 1u);
  for (uint64_t id = 0; id < 6; ++id) {
    RunOutcome out;
    ASSERT_TRUE(target.Lookup(KeyOf(id), &out));
    EXPECT_EQ(out.num_cores, OutcomeFor(KeyOf(id)).num_cores);
  }
  RunOutcome out;
  EXPECT_TRUE(target.Lookup(Q(50, 2, 9), &out));
  EXPECT_EQ(out.num_cores, 0u);  // tombstone replays the empty outcome
}

TEST(StripedCacheTest, ConcurrentStressAccountingBalances) {
  // Seeded multi-thread stress: 8 threads hammer one cache with a mix of
  // lookups, inserts, tombstones, and (thread 0 only) rare clears. The
  // per-key payload is a pure function of the key, so every hit is
  // verifiable by the thread that sees it; afterwards the global counters
  // must balance against the per-thread tallies exactly — the property the
  // old engine-wide mutex guaranteed and the stripes must preserve.
  constexpr size_t kCapacity = 24;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 6000;
  StripedQueryCache cache(kCapacity, StripedQueryCache::kDefaultStripes);

  std::vector<uint64_t> lookups(kThreads, 0);
  std::vector<uint64_t> bad_hits(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0x5eed + static_cast<uint64_t>(t));
      for (int op = 0; op < kOpsPerThread; ++op) {
        const Query query = KeyOf(rng.NextBounded(96));
        switch (rng.NextBounded(4)) {
          case 0:
          case 1: {
            RunOutcome out;
            ++lookups[t];
            if (cache.Lookup(query, &out)) {
              const RunOutcome want = OutcomeFor(query);
              // A tombstone hit replays the canonical empty outcome; any
              // other payload must be exactly what this key stores.
              const bool tombstone_hit =
                  out.num_cores == 0 && out.result_size_edges == 0;
              if (!tombstone_hit && (out.num_cores != want.num_cores ||
                                     out.result_size_edges !=
                                         want.result_size_edges)) {
                ++bad_hits[t];
              }
            }
            break;
          }
          case 2:
            cache.Insert(query, OutcomeFor(query));
            break;
          default:
            cache.InsertTombstone(query);
            if (t == 0 && rng.NextBounded(512) == 0) cache.Clear();
            break;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  uint64_t total_lookups = 0, total_bad = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_lookups += lookups[t];
    total_bad += bad_hits[t];
  }
  EXPECT_EQ(total_bad, 0u);
  // Every lookup was counted exactly once, as a hit or a miss — Clear
  // preserves the counters, so the identity holds across clears too.
  EXPECT_EQ(cache.hits() + cache.misses(), total_lookups);
  EXPECT_LE(cache.weight_used(), cache.weight_capacity());
  EXPECT_LE(cache.size(), cache.weight_used());  // every entry weighs >= 1
  EXPECT_LE(cache.tombstones(), cache.size());

  // Quiescent aggregate checks: re-derive weight from an export and match.
  const std::vector<QueryCacheEntry> entries = cache.ExportLruToMru();
  EXPECT_EQ(entries.size(), cache.size());
  size_t weight = 0, tombstones = 0;
  for (const QueryCacheEntry& entry : entries) {
    weight += entry.outcome.has_value() ? QueryCache::kOutcomeWeight : 1;
    if (!entry.outcome.has_value()) ++tombstones;
  }
  EXPECT_EQ(weight, cache.weight_used());
  EXPECT_EQ(tombstones, cache.tombstones());
}

}  // namespace
}  // namespace tkc
