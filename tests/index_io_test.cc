// Round-trip and corruption-handling tests of the index serialization.

#include "vct/index_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "datasets/generators.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

VctBuildResult BuildExample() {
  return BuildVctAndEcs(PaperExampleGraph(), 2, Window{1, 7});
}

void ExpectVctEqual(const VertexCoreTimeIndex& a,
                    const VertexCoreTimeIndex& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.range(), b.range());
  ASSERT_EQ(a.size(), b.size());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    auto ea = a.EntriesOf(v), eb = b.EntriesOf(v);
    ASSERT_EQ(ea.size(), eb.size()) << v;
    for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
  }
}

void ExpectEcsEqual(const EdgeCoreWindowSkyline& a,
                    const EdgeCoreWindowSkyline& b) {
  ASSERT_EQ(a.first_edge(), b.first_edge());
  ASSERT_EQ(a.last_edge(), b.last_edge());
  ASSERT_EQ(a.range(), b.range());
  ASSERT_EQ(a.size(), b.size());
  for (EdgeId e = a.first_edge(); e < a.last_edge(); ++e) {
    auto wa = a.WindowsOf(e), wb = b.WindowsOf(e);
    ASSERT_EQ(wa.size(), wb.size()) << e;
    for (size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]);
  }
}

TEST(IndexIoTest, VctRoundTripBytes) {
  VctBuildResult built = BuildExample();
  std::string bytes = SerializeVctIndex(built.vct);
  auto loaded = DeserializeVctIndex(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectVctEqual(built.vct, *loaded);
}

TEST(IndexIoTest, EcsRoundTripBytes) {
  VctBuildResult built = BuildExample();
  std::string bytes = SerializeEcs(built.ecs);
  auto loaded = DeserializeEcs(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEcsEqual(built.ecs, *loaded);
}

TEST(IndexIoTest, RoundTripRandomGraphs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    TemporalGraph g = GenerateUniformRandom(20, 150, 18, seed);
    VctBuildResult built = BuildVctAndEcs(g, 3, Window{3, 15});
    auto vct = DeserializeVctIndex(SerializeVctIndex(built.vct));
    ASSERT_TRUE(vct.ok());
    ExpectVctEqual(built.vct, *vct);
    auto ecs = DeserializeEcs(SerializeEcs(built.ecs));
    ASSERT_TRUE(ecs.ok());
    ExpectEcsEqual(built.ecs, *ecs);
  }
}

TEST(IndexIoTest, FileRoundTrip) {
  VctBuildResult built = BuildExample();
  std::string vct_path = ::testing::TempDir() + "/tkc_index.vct";
  std::string ecs_path = ::testing::TempDir() + "/tkc_index.ecs";
  ASSERT_TRUE(SaveVctIndex(built.vct, vct_path).ok());
  ASSERT_TRUE(SaveEcs(built.ecs, ecs_path).ok());
  auto vct = LoadVctIndex(vct_path);
  ASSERT_TRUE(vct.ok());
  ExpectVctEqual(built.vct, *vct);
  auto ecs = LoadEcs(ecs_path);
  ASSERT_TRUE(ecs.ok());
  ExpectEcsEqual(built.ecs, *ecs);
  std::remove(vct_path.c_str());
  std::remove(ecs_path.c_str());
}

TEST(IndexIoTest, BadMagicRejected) {
  std::string bytes = SerializeVctIndex(BuildExample().vct);
  bytes[0] ^= 0xFF;
  auto loaded = DeserializeVctIndex(bytes);
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  // VCT bytes are not an ECS.
  auto as_ecs = DeserializeEcs(SerializeVctIndex(BuildExample().vct));
  EXPECT_EQ(as_ecs.status().code(), StatusCode::kCorruption);
}

TEST(IndexIoTest, TruncationRejected) {
  std::string vct_bytes = SerializeVctIndex(BuildExample().vct);
  std::string ecs_bytes = SerializeEcs(BuildExample().ecs);
  for (size_t cut : {size_t{3}, size_t{10}, vct_bytes.size() - 1}) {
    auto loaded = DeserializeVctIndex(vct_bytes.substr(0, cut));
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << cut;
  }
  for (size_t cut : {size_t{5}, size_t{16}, ecs_bytes.size() - 2}) {
    auto loaded = DeserializeEcs(ecs_bytes.substr(0, cut));
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << cut;
  }
}

TEST(IndexIoTest, TrailingGarbageRejected) {
  std::string bytes = SerializeEcs(BuildExample().ecs);
  bytes += "junk";
  EXPECT_EQ(DeserializeEcs(bytes).status().code(), StatusCode::kCorruption);
}

TEST(IndexIoTest, CorruptOrderingRejected) {
  // Flip an entry's core time to break monotonicity: locate the first
  // vertex with >= 2 entries and swap its two entry payloads.
  VctBuildResult built = BuildExample();
  std::string bytes = SerializeVctIndex(built.vct);
  // Header: 4*5 + 8 = 28 bytes; vertex blocks follow. Vertex 0 has no
  // entries (count 0), vertex 1 has 4. Corrupt by writing a huge start in
  // the first entry of the first non-empty vertex: offset 28 (v0 count) +4
  // (v1 count) = 32 -> first entry start at 32.
  uint32_t huge = 0xFFFFFFFE;
  std::memcpy(bytes.data() + 36, &huge, 4);
  EXPECT_EQ(DeserializeVctIndex(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(IndexIoTest, MissingFileIsIOError) {
  EXPECT_EQ(LoadVctIndex("/nonexistent/x.vct").status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(LoadEcs("/nonexistent/x.ecs").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace tkc
