// Round-trip and corruption-handling tests of the index serialization,
// including the full-PHC container and the QueryEngine persist/load path
// (a loaded admission index must answer a query corpus identically to the
// freshly built engine).

#include "vct/index_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "datasets/generators.h"
#include "serve/query_engine.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

VctBuildResult BuildExample() {
  return BuildVctAndEcs(PaperExampleGraph(), 2, Window{1, 7});
}

void ExpectVctEqual(const VertexCoreTimeIndex& a,
                    const VertexCoreTimeIndex& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.range(), b.range());
  ASSERT_EQ(a.size(), b.size());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    auto ea = a.EntriesOf(v), eb = b.EntriesOf(v);
    ASSERT_EQ(ea.size(), eb.size()) << v;
    for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
  }
}

void ExpectEcsEqual(const EdgeCoreWindowSkyline& a,
                    const EdgeCoreWindowSkyline& b) {
  ASSERT_EQ(a.first_edge(), b.first_edge());
  ASSERT_EQ(a.last_edge(), b.last_edge());
  ASSERT_EQ(a.range(), b.range());
  ASSERT_EQ(a.size(), b.size());
  for (EdgeId e = a.first_edge(); e < a.last_edge(); ++e) {
    auto wa = a.WindowsOf(e), wb = b.WindowsOf(e);
    ASSERT_EQ(wa.size(), wb.size()) << e;
    for (size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]);
  }
}

TEST(IndexIoTest, VctRoundTripBytes) {
  VctBuildResult built = BuildExample();
  std::string bytes = SerializeVctIndex(built.vct);
  auto loaded = DeserializeVctIndex(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectVctEqual(built.vct, *loaded);
}

TEST(IndexIoTest, EcsRoundTripBytes) {
  VctBuildResult built = BuildExample();
  std::string bytes = SerializeEcs(built.ecs);
  auto loaded = DeserializeEcs(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEcsEqual(built.ecs, *loaded);
}

TEST(IndexIoTest, RoundTripRandomGraphs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    TemporalGraph g = GenerateUniformRandom(20, 150, 18, seed);
    VctBuildResult built = BuildVctAndEcs(g, 3, Window{3, 15});
    auto vct = DeserializeVctIndex(SerializeVctIndex(built.vct));
    ASSERT_TRUE(vct.ok());
    ExpectVctEqual(built.vct, *vct);
    auto ecs = DeserializeEcs(SerializeEcs(built.ecs));
    ASSERT_TRUE(ecs.ok());
    ExpectEcsEqual(built.ecs, *ecs);
  }
}

TEST(IndexIoTest, FileRoundTrip) {
  VctBuildResult built = BuildExample();
  std::string vct_path = ::testing::TempDir() + "/tkc_index.vct";
  std::string ecs_path = ::testing::TempDir() + "/tkc_index.ecs";
  ASSERT_TRUE(SaveVctIndex(built.vct, vct_path).ok());
  ASSERT_TRUE(SaveEcs(built.ecs, ecs_path).ok());
  auto vct = LoadVctIndex(vct_path);
  ASSERT_TRUE(vct.ok());
  ExpectVctEqual(built.vct, *vct);
  auto ecs = LoadEcs(ecs_path);
  ASSERT_TRUE(ecs.ok());
  ExpectEcsEqual(built.ecs, *ecs);
  std::remove(vct_path.c_str());
  std::remove(ecs_path.c_str());
}

TEST(IndexIoTest, PhcRoundTripBytesAndFile) {
  TemporalGraph g = GenerateUniformRandom(24, 400, 16, 9);
  for (uint32_t cap : {0u, 2u}) {
    PhcBuildOptions options;
    options.max_k = cap;
    auto built = PhcIndex::Build(g, g.FullRange(), options);
    ASSERT_TRUE(built.ok());
    auto loaded = DeserializePhcIndex(SerializePhcIndex(*built));
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(built->max_k(), loaded->max_k());
    EXPECT_EQ(built->range(), loaded->range());
    EXPECT_EQ(built->complete(), loaded->complete());
    EXPECT_EQ(built->size(), loaded->size());
    for (uint32_t k = 1; k <= built->max_k(); ++k) {
      ExpectVctEqual(built->Slice(k), loaded->Slice(k));
    }
    std::string path = ::testing::TempDir() + "/tkc_index.phc";
    ASSERT_TRUE(SavePhcIndex(*built, path).ok());
    auto from_file = LoadPhcIndex(path);
    ASSERT_TRUE(from_file.ok());
    EXPECT_EQ(built->size(), from_file->size());
    std::remove(path.c_str());
  }
}

TEST(IndexIoTest, PhcCorruptionRejected) {
  TemporalGraph g = GenerateUniformRandom(16, 150, 10, 4);
  auto built = PhcIndex::Build(g, g.FullRange(), PhcBuildOptions{});
  ASSERT_TRUE(built.ok());
  std::string bytes = SerializePhcIndex(*built);
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(DeserializePhcIndex(bad_magic).status().code(),
            StatusCode::kCorruption);
  for (size_t cut : {size_t{6}, size_t{20}, bytes.size() - 3}) {
    EXPECT_EQ(DeserializePhcIndex(bytes.substr(0, cut)).status().code(),
              StatusCode::kCorruption)
        << cut;
  }
  EXPECT_EQ(DeserializePhcIndex(bytes + "x").status().code(),
            StatusCode::kCorruption);
  // A VCT blob is not a PHC container.
  EXPECT_EQ(DeserializePhcIndex(SerializeVctIndex(built->Slice(1)))
                .status()
                .code(),
            StatusCode::kCorruption);
}

// The ROADMAP persist/load follow-up with a correctness net: an engine
// whose admission index was loaded from disk must answer a query corpus
// (including admission-rejected empty ranges and beyond-kmax queries)
// identically to the engine that built the index itself.
TEST(IndexIoTest, EngineFromLoadedIndexAnswersCorpusIdentically) {
  TemporalGraph g = GenerateUniformRandom(30, 500, 20, 23);

  QueryEngineOptions build_options;
  build_options.build_index = true;
  auto built_engine = QueryEngine::Create(g, build_options);
  ASSERT_TRUE(built_engine.ok());
  ASSERT_NE(built_engine->index(), nullptr);

  // Save the built admission index, reload it, start a second engine from
  // the loaded bytes.
  std::string path = ::testing::TempDir() + "/tkc_engine.phc";
  ASSERT_TRUE(SavePhcIndex(*built_engine->index(), path).ok());
  auto loaded = LoadPhcIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  QueryEngineOptions load_options;
  load_options.preloaded_index = &*loaded;
  auto loaded_engine = QueryEngine::Create(g, load_options);
  ASSERT_TRUE(loaded_engine.ok()) << loaded_engine.status().ToString();
  ASSERT_NE(loaded_engine->index(), nullptr);
  EXPECT_EQ(built_engine->index()->size(), loaded_engine->index()->size());

  // Corpus: every k in [1, kmax+2] crossed with a window grid — admission
  // hits, misses, and beyond-index ks alike.
  const Timestamp tmax = g.num_timestamps();
  std::vector<Query> corpus;
  for (uint32_t k = 1; k <= built_engine->index()->max_k() + 2; ++k) {
    for (Timestamp ts = 1; ts <= tmax; ts += 3) {
      for (Timestamp te = ts; te <= tmax; te += 4) {
        corpus.push_back(Query{k, Window{ts, te}});
      }
    }
  }
  std::vector<RunOutcome> from_built = built_engine->ServeBatch(corpus);
  std::vector<RunOutcome> from_loaded = loaded_engine->ServeBatch(corpus);
  ASSERT_EQ(from_built.size(), from_loaded.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    ASSERT_EQ(from_built[i].status.code(), from_loaded[i].status.code()) << i;
    EXPECT_EQ(from_built[i].num_cores, from_loaded[i].num_cores) << i;
    EXPECT_EQ(from_built[i].result_size_edges,
              from_loaded[i].result_size_edges)
        << i;
    EXPECT_EQ(from_built[i].vct_size, from_loaded[i].vct_size) << i;
    EXPECT_EQ(from_built[i].ecs_size, from_loaded[i].ecs_size) << i;
  }
  // The admission fast path must have fired on both engines equally often.
  EXPECT_EQ(built_engine->stats().index_rejections,
            loaded_engine->stats().index_rejections);
  EXPECT_GT(built_engine->stats().index_rejections, 0u);

  // A mismatched graph is rejected up front.
  TemporalGraph other = GenerateUniformRandom(30, 500, 24, 77);
  QueryEngineOptions bad;
  bad.preloaded_index = &*loaded;
  EXPECT_FALSE(QueryEngine::Create(other, bad).ok());

  // So is a sliceless index (format-valid but describing nothing): with a
  // complete empty index the engine would "prove" every query empty.
  auto empty = PhcIndex::FromSlices(g.FullRange(), /*complete=*/true, {});
  ASSERT_TRUE(empty.ok());
  QueryEngineOptions sliceless;
  sliceless.preloaded_index = &*empty;
  EXPECT_FALSE(QueryEngine::Create(g, sliceless).ok());
}

TEST(IndexIoTest, BadMagicRejected) {
  std::string bytes = SerializeVctIndex(BuildExample().vct);
  bytes[0] ^= 0xFF;
  auto loaded = DeserializeVctIndex(bytes);
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  // VCT bytes are not an ECS.
  auto as_ecs = DeserializeEcs(SerializeVctIndex(BuildExample().vct));
  EXPECT_EQ(as_ecs.status().code(), StatusCode::kCorruption);
}

TEST(IndexIoTest, TruncationRejected) {
  std::string vct_bytes = SerializeVctIndex(BuildExample().vct);
  std::string ecs_bytes = SerializeEcs(BuildExample().ecs);
  for (size_t cut : {size_t{3}, size_t{10}, vct_bytes.size() - 1}) {
    auto loaded = DeserializeVctIndex(vct_bytes.substr(0, cut));
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << cut;
  }
  for (size_t cut : {size_t{5}, size_t{16}, ecs_bytes.size() - 2}) {
    auto loaded = DeserializeEcs(ecs_bytes.substr(0, cut));
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << cut;
  }
}

TEST(IndexIoTest, TrailingGarbageRejected) {
  std::string bytes = SerializeEcs(BuildExample().ecs);
  bytes += "junk";
  EXPECT_EQ(DeserializeEcs(bytes).status().code(), StatusCode::kCorruption);
}

TEST(IndexIoTest, CorruptOrderingRejected) {
  // Flip an entry's core time to break monotonicity: locate the first
  // vertex with >= 2 entries and swap its two entry payloads.
  VctBuildResult built = BuildExample();
  std::string bytes = SerializeVctIndex(built.vct);
  // Header: 4*5 + 8 = 28 bytes; vertex blocks follow. Vertex 0 has no
  // entries (count 0), vertex 1 has 4. Corrupt by writing a huge start in
  // the first entry of the first non-empty vertex: offset 28 (v0 count) +4
  // (v1 count) = 32 -> first entry start at 32.
  uint32_t huge = 0xFFFFFFFE;
  std::memcpy(bytes.data() + 36, &huge, 4);
  EXPECT_EQ(DeserializeVctIndex(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(IndexIoTest, MissingFileIsIOError) {
  EXPECT_EQ(LoadVctIndex("/nonexistent/x.vct").status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(LoadEcs("/nonexistent/x.ecs").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace tkc
