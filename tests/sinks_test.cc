#include "core/sinks.h"

#include <gtest/gtest.h>

#include <vector>

namespace tkc {
namespace {

TEST(CountingSinkTest, CountsCoresAndEdges) {
  CountingSink sink;
  std::vector<EdgeId> a = {1, 2, 3}, b = {4, 5};
  sink.OnCore(Window{1, 2}, a);
  sink.OnCore(Window{2, 3}, b);
  EXPECT_EQ(sink.num_cores(), 2u);
  EXPECT_EQ(sink.result_size_edges(), 5u);
  EXPECT_EQ(sink.max_core_edges(), 3u);
  sink.Reset();
  EXPECT_EQ(sink.num_cores(), 0u);
}

TEST(CollectingSinkTest, CanonicalizesEdgeOrder) {
  CollectingSink sink;
  std::vector<EdgeId> unsorted = {9, 3, 7};
  sink.OnCore(Window{1, 5}, unsorted);
  ASSERT_EQ(sink.cores().size(), 1u);
  EXPECT_EQ(sink.cores()[0].edges, (std::vector<EdgeId>{3, 7, 9}));
  EXPECT_EQ(sink.cores()[0].tti, (Window{1, 5}));
}

TEST(CollectingSinkTest, SortCanonicallyOrdersByTtiThenEdges) {
  CollectingSink sink;
  std::vector<EdgeId> a = {5}, b = {1}, c = {2};
  sink.OnCore(Window{3, 4}, a);
  sink.OnCore(Window{1, 2}, b);
  sink.OnCore(Window{1, 4}, c);
  sink.SortCanonically();
  EXPECT_EQ(sink.cores()[0].tti, (Window{1, 2}));
  EXPECT_EQ(sink.cores()[1].tti, (Window{1, 4}));
  EXPECT_EQ(sink.cores()[2].tti, (Window{3, 4}));
}

TEST(FingerprintSinkTest, OrderIndependentAcrossCores) {
  FingerprintSink x, y;
  std::vector<EdgeId> a = {1, 2}, b = {3};
  x.OnCore(Window{1, 2}, a);
  x.OnCore(Window{2, 3}, b);
  y.OnCore(Window{2, 3}, b);
  y.OnCore(Window{1, 2}, a);
  EXPECT_EQ(x.digest(), y.digest());
  EXPECT_EQ(x.num_cores(), 2u);
  EXPECT_EQ(x.result_size_edges(), 3u);
}

TEST(FingerprintSinkTest, TtiMatters) {
  FingerprintSink x, y;
  std::vector<EdgeId> a = {1, 2};
  x.OnCore(Window{1, 2}, a);
  y.OnCore(Window{1, 3}, a);
  EXPECT_NE(x.digest(), y.digest());
}

TEST(FingerprintSinkTest, EdgeSetMatters) {
  FingerprintSink x, y;
  std::vector<EdgeId> a = {1, 2}, b = {1, 3};
  x.OnCore(Window{1, 2}, a);
  y.OnCore(Window{1, 2}, b);
  EXPECT_NE(x.digest(), y.digest());
}

TEST(CallbackSinkTest, ForwardsCalls) {
  int calls = 0;
  CallbackSink sink([&](Window tti, std::span<const EdgeId> edges) {
    ++calls;
    EXPECT_EQ(tti.start, 1u);
    EXPECT_EQ(edges.size(), 2u);
  });
  std::vector<EdgeId> a = {10, 20};
  sink.OnCore(Window{1, 9}, a);
  EXPECT_EQ(calls, 1);
}

TEST(CoreResultTest, EqualityComparesTtiAndEdges) {
  CoreResult a{{1, 2}, {3, 4}};
  CoreResult b{{1, 2}, {3, 4}};
  CoreResult c{{1, 3}, {3, 4}};
  CoreResult d{{1, 2}, {3, 5}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

}  // namespace
}  // namespace tkc
