// End-to-end integration: registry dataset -> workload -> all algorithms,
// at reduced scale, verifying cross-algorithm fingerprint equality (too
// large for the CollectingSink comparisons of cross_algorithm_test).

#include <gtest/gtest.h>

#include "core/sinks.h"
#include "core/temporal_kcore.h"
#include "datasets/registry.h"
#include "graph/graph_stats.h"
#include "otcd/otcd.h"
#include "workload/query_workload.h"

namespace tkc {
namespace {

class IntegrationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(IntegrationTest, RegistryDatasetEndToEnd) {
  // Scale 0.05 keeps each dataset a few thousand edges at most.
  auto graph = GenerateByName(GetParam(), 0.05);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  GraphStats stats = ComputeGraphStats(*graph);
  ASSERT_GE(stats.kmax, 2u);

  WorkloadSpec spec;
  spec.num_queries = 2;
  spec.range_fraction = 0.10;
  spec.seed = 7;
  auto queries = GenerateQueries(*graph, stats.kmax, spec);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();

  for (const Query& q : *queries) {
    FingerprintSink enum_sink, base_sink, otcd_sink;
    QueryOptions enum_opts, base_opts;
    base_opts.enum_method = EnumMethod::kEnumBase;
    ASSERT_TRUE(
        RunTemporalKCoreQuery(*graph, q.k, q.range, &enum_sink, enum_opts)
            .ok());
    ASSERT_TRUE(
        RunTemporalKCoreQuery(*graph, q.k, q.range, &base_sink, base_opts)
            .ok());
    ASSERT_TRUE(RunOtcd(*graph, q.k, q.range, &otcd_sink).ok());
    EXPECT_GT(enum_sink.num_cores(), 0u);
    EXPECT_EQ(enum_sink.digest(), base_sink.digest())
        << GetParam() << " k=" << q.k << " range [" << q.range.start << ","
        << q.range.end << "]";
    EXPECT_EQ(enum_sink.digest(), otcd_sink.digest())
        << GetParam() << " k=" << q.k << " range [" << q.range.start << ","
        << q.range.end << "]";
  }
}

// All 14 at reduced scale would be slow in CI; exercise a representative
// cross-regime subset (small, dense, many-timestamps, few-timestamps).
INSTANTIATE_TEST_SUITE_P(Datasets, IntegrationTest,
                         ::testing::Values("FB", "CM", "EM", "WK", "PL"));

TEST(IntegrationScaleTest, MediumGraphEnumVsEnumBase) {
  // A single larger run: ~20k edges, verifying the pipeline at a size where
  // the naive oracle is no longer feasible.
  auto graph = GenerateByName("CM", 3.0);
  ASSERT_TRUE(graph.ok());
  GraphStats stats = ComputeGraphStats(*graph);
  WorkloadSpec spec;
  spec.num_queries = 1;
  spec.range_fraction = 0.10;
  auto queries = GenerateQueries(*graph, stats.kmax, spec);
  ASSERT_TRUE(queries.ok());
  const Query& q = (*queries)[0];

  FingerprintSink enum_sink, base_sink;
  QueryOptions base_opts;
  base_opts.enum_method = EnumMethod::kEnumBase;
  ASSERT_TRUE(
      RunTemporalKCoreQuery(*graph, q.k, q.range, &enum_sink, {}).ok());
  ASSERT_TRUE(
      RunTemporalKCoreQuery(*graph, q.k, q.range, &base_sink, base_opts)
          .ok());
  EXPECT_EQ(enum_sink.digest(), base_sink.digest());
  EXPECT_EQ(enum_sink.num_cores(), base_sink.num_cores());
}

}  // namespace
}  // namespace tkc
