#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "datasets/generators.h"

namespace tkc {
namespace {

TEST(ParseSnapTextTest, BasicEdges) {
  auto g = ParseSnapText("1 2 100\n2 3 200\n1 3 100\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_EQ(g->num_timestamps(), 2u);
}

TEST(ParseSnapTextTest, CommentsAndBlankLines) {
  auto g = ParseSnapText(
      "# SNAP header\n% konect header\n\n   \n1 2 10\n# trailing\n2 3 20\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(ParseSnapTextTest, TabsAndMultipleSpaces) {
  auto g = ParseSnapText("1\t2\t10\n2   3   20\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(ParseSnapTextTest, MissingNewlineAtEof) {
  auto g = ParseSnapText("1 2 10\n2 3 20");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(ParseSnapTextTest, MalformedLineStrict) {
  auto g = ParseSnapText("1 2 10\n1 2\n");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kCorruption);
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(ParseSnapTextTest, MalformedLineLenient) {
  SnapLoadOptions options;
  options.strict = false;
  auto g = ParseSnapText("1 2 10\njunk line\n2 3 20\n", options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(ParseSnapTextTest, EmptyInputIsError) {
  auto g = ParseSnapText("# only comments\n");
  EXPECT_FALSE(g.ok());
}

TEST(ParseSnapTextTest, SelfLoopsSkipped) {
  auto g = ParseSnapText("1 1 10\n1 2 10\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(ParseSnapTextTest, HugeVertexIdRejected) {
  auto g = ParseSnapText("4294967295 1 10\n");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kOutOfRange);
}

TEST(ParseSnapTextTest, DedupOptionRespected) {
  SnapLoadOptions options;
  options.deduplicate_exact = false;
  auto g = ParseSnapText("1 2 10\n2 1 10\n", options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(SnapRoundTripTest, SaveAndLoadPreservesGraph) {
  TemporalGraph original = PaperExampleGraph();
  std::string path = ::testing::TempDir() + "/tkc_roundtrip.txt";
  ASSERT_TRUE(SaveSnapFile(original, path).ok());
  auto loaded = LoadSnapFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_edges(), original.num_edges());
  ASSERT_EQ(loaded->num_timestamps(), original.num_timestamps());
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    EXPECT_EQ(loaded->edge(e), original.edge(e)) << "edge " << e;
  }
  std::remove(path.c_str());
}

TEST(SnapRoundTripTest, RawTimestampsPreserved) {
  auto g = ParseSnapText("0 1 1000000\n1 2 2000000\n");
  ASSERT_TRUE(g.ok());
  std::string text = ToSnapText(*g);
  EXPECT_NE(text.find("1000000"), std::string::npos);
  EXPECT_NE(text.find("2000000"), std::string::npos);
}

TEST(LoadSnapFileTest, MissingFileIsIOError) {
  auto g = LoadSnapFile("/nonexistent/path/graph.txt");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace tkc
