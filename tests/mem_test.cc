#include "util/mem.h"

#include <gtest/gtest.h>

#include <vector>

namespace tkc {
namespace {

TEST(MemoryCounterTest, TracksPeak) {
  MemoryCounter c;
  c.Add(100);
  c.Add(50);
  EXPECT_EQ(c.current_bytes(), 150u);
  EXPECT_EQ(c.peak_bytes(), 150u);
  c.Sub(120);
  EXPECT_EQ(c.current_bytes(), 30u);
  EXPECT_EQ(c.peak_bytes(), 150u);
  c.Add(10);
  EXPECT_EQ(c.peak_bytes(), 150u);
}

TEST(MemoryCounterTest, SubClampsAtZero) {
  MemoryCounter c;
  c.Add(10);
  c.Sub(100);
  EXPECT_EQ(c.current_bytes(), 0u);
}

TEST(MemoryCounterTest, SetCurrentUpdatesPeak) {
  MemoryCounter c;
  c.SetCurrent(500);
  EXPECT_EQ(c.peak_bytes(), 500u);
  c.SetCurrent(100);
  EXPECT_EQ(c.current_bytes(), 100u);
  EXPECT_EQ(c.peak_bytes(), 500u);
}

TEST(MemoryCounterTest, Reset) {
  MemoryCounter c;
  c.Add(42);
  c.Reset();
  EXPECT_EQ(c.current_bytes(), 0u);
  EXPECT_EQ(c.peak_bytes(), 0u);
}

TEST(ApproxVectorBytesTest, UsesCapacity) {
  std::vector<uint64_t> v;
  v.reserve(100);
  EXPECT_EQ(ApproxVectorBytes(v), 100 * sizeof(uint64_t));
}

TEST(ProcStatusTest, VmReadersReturnPlausibleValues) {
  // VmRSS should exceed 1 MB for a gtest process. VmHWM is absent on some
  // sandboxed kernels; 0 is the documented "unavailable" value.
  uint64_t rss = ReadVmRSSBytes();
  EXPECT_GT(rss, 1u << 20);
  uint64_t hwm = ReadVmHWMBytes();
  if (hwm == 0) {
    GTEST_SKIP() << "VmHWM not exposed by this kernel";
  }
  EXPECT_GE(hwm, rss / 2);
}

TEST(FormatHumanBytesTest, Units) {
  char buf[32];
  EXPECT_STREQ(FormatHumanBytes(100, buf, sizeof(buf)), "100 B");
  EXPECT_STREQ(FormatHumanBytes(1536, buf, sizeof(buf)), "1.50 KB");
  EXPECT_STREQ(FormatHumanBytes(5ull << 20, buf, sizeof(buf)), "5.00 MB");
}

}  // namespace
}  // namespace tkc
