#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tkc {
namespace {

TEST(FaultInjectionTest, DisarmedPointNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FaultFires("never.armed"));
  }
  EXPECT_EQ(FaultRegistry::Global().stats("never.armed").hits, 0u);
}

TEST(FaultInjectionTest, ProbabilityOneAlwaysFires) {
  ScopedFault fault("test.always", FaultSchedule{1.0, 0, 0});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(FaultFires("test.always"));
  }
  EXPECT_EQ(fault.stats().hits, 10u);
  EXPECT_EQ(fault.stats().fires, 10u);
}

TEST(FaultInjectionTest, ProbabilityZeroNeverFires) {
  ScopedFault fault("test.never", FaultSchedule{0.0, 0, 0});
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(FaultFires("test.never"));
  }
  EXPECT_EQ(fault.stats().hits, 10u);
  EXPECT_EQ(fault.stats().fires, 0u);
}

TEST(FaultInjectionTest, MaxFiresCapsTheSchedule) {
  ScopedFault fault("test.capped", FaultSchedule{1.0, 0, 2});
  EXPECT_TRUE(FaultFires("test.capped"));
  EXPECT_TRUE(FaultFires("test.capped"));
  EXPECT_FALSE(FaultFires("test.capped"));  // cap reached
  EXPECT_FALSE(FaultFires("test.capped"));
  EXPECT_EQ(fault.stats().hits, 4u);
  EXPECT_EQ(fault.stats().fires, 2u);
}

TEST(FaultInjectionTest, SeededScheduleIsDeterministic) {
  auto run = [](uint64_t seed) {
    ScopedFault fault("test.seeded", FaultSchedule{0.5, seed, 0});
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(FaultFires("test.seeded"));
    return pattern;
  };
  EXPECT_EQ(run(7), run(7));       // same seed, same fire pattern
  EXPECT_NE(run(7), run(12345));   // astronomically unlikely to collide
}

TEST(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("test.scoped", FaultSchedule{1.0, 0, 0});
    EXPECT_TRUE(FaultFires("test.scoped"));
  }
  EXPECT_FALSE(FaultFires("test.scoped"));
}

TEST(FaultInjectionTest, RearmResetsStreamAndCounters) {
  FaultRegistry& registry = FaultRegistry::Global();
  registry.Arm("test.rearm", FaultSchedule{1.0, 0, 1});
  EXPECT_TRUE(FaultFires("test.rearm"));
  EXPECT_FALSE(FaultFires("test.rearm"));  // cap
  registry.Arm("test.rearm", FaultSchedule{1.0, 0, 1});
  EXPECT_TRUE(FaultFires("test.rearm"));  // counters reset with the re-arm
  registry.Disarm("test.rearm");
}

TEST(FaultInjectionTest, ArmFromSpecParsesAllForms) {
  FaultRegistry& registry = FaultRegistry::Global();
  ASSERT_TRUE(registry
                  .ArmFromSpec("a.b=1.0,c.d=0.25@9,e.f=0.5@11x3")
                  .ok());
  EXPECT_TRUE(FaultFires("a.b"));
  EXPECT_EQ(registry.stats("c.d").hits, 0u);  // armed, not yet hit
  for (int i = 0; i < 20; ++i) FaultFires("e.f");
  EXPECT_LE(registry.stats("e.f").fires, 3u);  // x3 cap respected
  registry.Disarm("a.b");
  registry.Disarm("c.d");
  registry.Disarm("e.f");
}

TEST(FaultInjectionTest, ArmFromSpecRejectsGarbage) {
  FaultRegistry& registry = FaultRegistry::Global();
  EXPECT_FALSE(registry.ArmFromSpec("no-equals-sign").ok());
  EXPECT_FALSE(registry.ArmFromSpec("p=notanumber").ok());
  EXPECT_FALSE(registry.ArmFromSpec("p=2.0").ok());      // probability > 1
  EXPECT_FALSE(registry.ArmFromSpec("p=0.5@bad").ok());  // bad seed
  EXPECT_FALSE(registry.ArmFromSpec("p=0.5@3xbad").ok());
  EXPECT_FALSE(registry.ArmFromSpec("=0.5").ok());  // empty point name
}

}  // namespace
}  // namespace tkc
