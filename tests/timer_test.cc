#include "util/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace tkc {
namespace {

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double s = timer.ElapsedSeconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_GE(timer.ElapsedNanos(), 15'000'000u);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  Deadline d = Deadline::AfterSeconds(60);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, PastDeadlineExpired) {
  Deadline d = Deadline::AfterSeconds(-0.001);
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, ExpiresAfterSleep) {
  Deadline d = Deadline::AfterSeconds(0.01);
  EXPECT_FALSE(d.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(d.Expired());
}

}  // namespace
}  // namespace tkc
