// The network-mode differential sweep: seeded scenarios drive query
// batches through loopback TkcClient connections against a TkcServer over
// the LiveQueryEngine — concurrently with ApplyUpdates snapshot swaps —
// and every wire verdict must be oracle-exact on the graph version the
// server pinned, or carry an explicit Timeout/ResourceExhausted status
// (seeded 1 ms wire deadlines race the work on purpose; net.read_short is
// armed so frames reassemble from one-byte reads). Server counter
// invariants must balance after every scenario. Registered under the `net`
// ctest label; TKC_NET_SCENARIOS overrides the per-thread-count scenario
// count (CI sanitizer legs shrink it, the Release leg widens it).

#include <gtest/gtest.h>

#include "tests/differential_harness.h"

namespace tkc {
namespace {

// Sanitizer/debug builds run each scenario ~20x slower; default small
// there and let CI pin the count per leg via TKC_NET_SCENARIOS.
#ifdef NDEBUG
constexpr uint32_t kDefaultScenarios = 40;
#else
constexpr uint32_t kDefaultScenarios = 8;
#endif

class DifferentialNetTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialNetTest, WireMatchesOracleAcrossSwaps) {
  const int threads = GetParam();
  const uint32_t scenarios =
      DifferentialScenarioCount(kDefaultScenarios, "TKC_NET_SCENARIOS");
  uint64_t total_queries = 0;
  uint64_t total_wire = 0;
  uint64_t total_swaps = 0;
  uint64_t multi_version = 0;
  for (uint32_t s = 0; s < scenarios; ++s) {
    DifferentialConfig config;
    config.seed = 7000 + s;
    config.threads = threads;
    config.net = true;
    DifferentialReport report = RunDifferentialScenario(config);
    ASSERT_EQ(report.mismatches, 0u) << report.first_mismatch;
    ASSERT_EQ(report.failed_updates, 0u) << report.first_mismatch;
    EXPECT_GT(report.wire_responses, 0u);
    total_queries += report.queries_checked;
    total_wire += report.wire_responses;
    total_swaps += report.swaps;
    if (report.versions_served > 1) ++multi_version;
  }
  // The sweep only means something if answers genuinely crossed the wire,
  // swaps landed while they did, and batches hit different graph versions.
  EXPECT_GT(total_queries, 0u);
  EXPECT_GT(total_wire, 0u);
  EXPECT_GT(total_swaps, 0u);
  if (scenarios >= 10) EXPECT_GT(multi_version, 0u);
  RecordProperty("queries_checked", static_cast<int>(total_queries));
  RecordProperty("wire_responses", static_cast<int>(total_wire));
}

INSTANTIATE_TEST_SUITE_P(Threads, DifferentialNetTest,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace tkc
