#include "graph/transforms.h"

#include <gtest/gtest.h>

#include "core/sinks.h"
#include "core/temporal_kcore.h"
#include "datasets/generators.h"
#include "graph/window_peeler.h"

namespace tkc {
namespace {

TEST(ExtractWindowTest, BasicExtraction) {
  TemporalGraph g = PaperExampleGraph();
  auto extracted = ExtractWindow(g, Window{2, 4});
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(extracted->graph.num_edges(), 6u);  // edges at t=2,3,4
  EXPECT_EQ(extracted->graph.num_timestamps(), 3u);  // recompacted to 1..3
  // Raw timestamps preserved through extraction.
  EXPECT_EQ(extracted->graph.RawTimestamp(1), 2u);
  EXPECT_EQ(extracted->graph.RawTimestamp(3), 4u);
}

TEST(ExtractWindowTest, SourceEdgeMappingIsFaithful) {
  TemporalGraph g = GenerateUniformRandom(15, 100, 12, 3);
  auto extracted = ExtractWindow(g, Window{4, 9});
  ASSERT_TRUE(extracted.ok());
  ASSERT_EQ(extracted->source_edge.size(), extracted->graph.num_edges());
  for (EdgeId e = 0; e < extracted->graph.num_edges(); ++e) {
    const TemporalEdge& derived = extracted->graph.edge(e);
    const TemporalEdge& source = g.edge(extracted->source_edge[e]);
    EXPECT_EQ(derived.u, source.u);
    EXPECT_EQ(derived.v, source.v);
    EXPECT_EQ(extracted->graph.RawTimestamp(derived.t),
              g.RawTimestamp(source.t));
  }
}

TEST(ExtractWindowTest, QueriesOnExtractMatchSubRangeQueries) {
  // The key contract: enumerating on the extracted window over its full
  // range equals enumerating on the source over the window.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    TemporalGraph g = GenerateUniformRandom(12, 80, 12, seed);
    Window window{3, 9};
    auto extracted = ExtractWindow(g, window);
    if (!extracted.ok()) continue;

    CollectingSink source_sink, extract_sink;
    ASSERT_TRUE(
        RunTemporalKCoreQuery(g, 2, window, &source_sink).ok());
    ASSERT_TRUE(RunTemporalKCoreQuery(extracted->graph, 2,
                                      extracted->graph.FullRange(),
                                      &extract_sink)
                    .ok());
    // Map extracted results back to source edge ids and compare.
    auto remap = [&](CollectingSink& sink) {
      std::vector<std::vector<EdgeId>> cores;
      for (const CoreResult& core : sink.cores()) {
        std::vector<EdgeId> ids;
        for (EdgeId e : core.edges) ids.push_back(extracted->source_edge[e]);
        std::sort(ids.begin(), ids.end());
        cores.push_back(std::move(ids));
      }
      std::sort(cores.begin(), cores.end());
      return cores;
    };
    std::vector<std::vector<EdgeId>> source_cores;
    for (const CoreResult& core : source_sink.cores()) {
      source_cores.push_back(core.edges);
    }
    std::sort(source_cores.begin(), source_cores.end());
    EXPECT_EQ(remap(extract_sink), source_cores) << "seed " << seed;
  }
}

TEST(ExtractWindowTest, InvalidWindows) {
  TemporalGraph g = PaperExampleGraph();
  EXPECT_FALSE(ExtractWindow(g, Window{0, 3}).ok());
  EXPECT_FALSE(ExtractWindow(g, Window{5, 3}).ok());
  EXPECT_FALSE(ExtractWindow(g, Window{3, 99}).ok());
}

TEST(InduceOnVerticesTest, KeepsOnlyInternalEdges) {
  TemporalGraph g = PaperExampleGraph();
  // Induce on the Figure 2 core vertices {1,2,4}.
  std::vector<VertexId> vertices = {1, 2, 4};
  auto induced = InduceOnVertices(g, vertices);
  ASSERT_TRUE(induced.ok());
  // Edges among {1,2,4}: (1,4,2), (1,2,3), (2,4,3).
  EXPECT_EQ(induced->graph.num_edges(), 3u);
  EXPECT_EQ(induced->graph.num_vertices(), 3u);
  EXPECT_EQ(induced->source_vertex.size(), 3u);
  EXPECT_EQ(induced->source_vertex[0], 1u);
  EXPECT_EQ(induced->source_vertex[2], 4u);
}

TEST(InduceOnVerticesTest, MappingBackIsConsistent) {
  TemporalGraph g = GenerateUniformRandom(20, 120, 10, 7);
  std::vector<VertexId> vertices = {1, 3, 5, 7, 9, 11, 13};
  auto induced = InduceOnVertices(g, vertices);
  if (!induced.ok()) GTEST_SKIP() << "no internal edges for this seed";
  for (EdgeId e = 0; e < induced->graph.num_edges(); ++e) {
    const TemporalEdge& derived = induced->graph.edge(e);
    const TemporalEdge& source = g.edge(induced->source_edge[e]);
    EXPECT_EQ(induced->source_vertex[derived.u], source.u);
    EXPECT_EQ(induced->source_vertex[derived.v], source.v);
    EXPECT_EQ(induced->graph.RawTimestamp(derived.t),
              g.RawTimestamp(source.t));
  }
}

TEST(InduceOnVerticesTest, OutOfRangeVertexRejected) {
  TemporalGraph g = PaperExampleGraph();
  std::vector<VertexId> vertices = {1, 2, 99};
  EXPECT_FALSE(InduceOnVertices(g, vertices).ok());
}

TEST(CompactVertexIdsTest, DropsIsolatedIds) {
  TemporalGraphBuilder b;
  b.AddEdge(5, 90, 1);
  b.AddEdge(90, 200, 2);
  b.EnsureVertexCount(1000);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  auto compacted = CompactVertexIds(*g);
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(compacted->graph.num_vertices(), 3u);
  EXPECT_EQ(compacted->graph.num_edges(), 2u);
  EXPECT_EQ(compacted->source_vertex,
            (std::vector<VertexId>{5, 90, 200}));
}

TEST(TransformsTest, ExtractPreservesMultiplicity) {
  TemporalGraphBuilder b;
  b.SetDeduplicateExact(false);
  b.AddEdge(0, 1, 5);
  b.AddEdge(0, 1, 5);
  b.AddEdge(1, 2, 6);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  auto extracted = ExtractWindow(*g, g->FullRange());
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(extracted->graph.num_edges(), 3u);
}

}  // namespace
}  // namespace tkc
