#include "workload/query_workload.h"

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "graph/graph_stats.h"
#include "graph/window_peeler.h"

namespace tkc {
namespace {

TemporalGraph WorkloadGraph() {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_vertices = 40;
  spec.num_edges = 800;
  spec.num_timestamps = 200;
  spec.burstiness = 0.3;
  spec.seed = 3;
  return GenerateSynthetic(spec);
}

TEST(DeriveTest, KAndRangeFractions) {
  EXPECT_EQ(DeriveK(20, 0.30), 6u);
  EXPECT_EQ(DeriveK(20, 0.10), 2u);
  EXPECT_EQ(DeriveK(3, 0.10), 2u);  // floor at 2
  EXPECT_EQ(DeriveRangeLength(1000, 0.10), 100u);
  EXPECT_EQ(DeriveRangeLength(5, 0.01), 1u);  // floor at 1
}

TEST(GenerateQueriesTest, EveryQueryContainsACore) {
  TemporalGraph g = WorkloadGraph();
  GraphStats stats = ComputeGraphStats(g);
  WorkloadSpec spec;
  spec.num_queries = 5;
  spec.range_fraction = 0.20;
  auto queries = GenerateQueries(g, stats.kmax, spec);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries->size(), 5u);
  for (const Query& q : *queries) {
    EXPECT_EQ(q.k, DeriveK(stats.kmax, 0.30));
    EXPECT_GE(q.range.start, 1u);
    EXPECT_LE(q.range.end, g.num_timestamps());
    EXPECT_FALSE(ComputeWindowCore(g, q.k, q.range).Empty())
        << "range [" << q.range.start << "," << q.range.end << "]";
  }
}

TEST(GenerateQueriesTest, DeterministicInSeed) {
  TemporalGraph g = WorkloadGraph();
  GraphStats stats = ComputeGraphStats(g);
  WorkloadSpec spec;
  spec.num_queries = 3;
  auto a = GenerateQueries(g, stats.kmax, spec);
  auto b = GenerateQueries(g, stats.kmax, spec);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].range, (*b)[i].range);
  }
}

TEST(GenerateQueriesTest, ImpossibleKFails) {
  TemporalGraph g = WorkloadGraph();
  WorkloadSpec spec;
  spec.k_fraction = 1.0;
  spec.max_attempts = 5;
  // kmax passed deliberately too high: no range can contain a 100-core.
  auto queries = GenerateQueries(g, 100, spec);
  EXPECT_FALSE(queries.ok());
}

TEST(RunAlgorithmTest, AllKindsAgreeOnCounts) {
  TemporalGraph g = WorkloadGraph();
  GraphStats stats = ComputeGraphStats(g);
  WorkloadSpec spec;
  spec.num_queries = 2;
  spec.range_fraction = 0.15;
  auto queries = GenerateQueries(g, stats.kmax, spec);
  ASSERT_TRUE(queries.ok());
  for (const Query& q : *queries) {
    RunOutcome enum_out = RunAlgorithm(AlgorithmKind::kEnum, g, q);
    RunOutcome base_out = RunAlgorithm(AlgorithmKind::kEnumBase, g, q);
    RunOutcome otcd_out = RunAlgorithm(AlgorithmKind::kOtcd, g, q);
    RunOutcome naive_out = RunAlgorithm(AlgorithmKind::kNaive, g, q);
    ASSERT_TRUE(enum_out.status.ok());
    ASSERT_TRUE(base_out.status.ok());
    ASSERT_TRUE(otcd_out.status.ok());
    ASSERT_TRUE(naive_out.status.ok());
    EXPECT_EQ(enum_out.num_cores, naive_out.num_cores);
    EXPECT_EQ(base_out.num_cores, naive_out.num_cores);
    EXPECT_EQ(otcd_out.num_cores, naive_out.num_cores);
    EXPECT_EQ(enum_out.result_size_edges, naive_out.result_size_edges);
    EXPECT_EQ(otcd_out.result_size_edges, naive_out.result_size_edges);
  }
}

TEST(RunAlgorithmTest, CoreTimeKindReportsSizes) {
  TemporalGraph g = WorkloadGraph();
  GraphStats stats = ComputeGraphStats(g);
  WorkloadSpec spec;
  spec.num_queries = 1;
  auto queries = GenerateQueries(g, stats.kmax, spec);
  ASSERT_TRUE(queries.ok());
  RunOutcome out = RunAlgorithm(AlgorithmKind::kCoreTime, g, (*queries)[0]);
  ASSERT_TRUE(out.status.ok());
  EXPECT_GT(out.vct_size, 0u);
  EXPECT_GT(out.ecs_size, 0u);
  EXPECT_EQ(out.num_cores, 0u);  // the phase enumerates nothing
}

TEST(RunAlgorithmOnQueriesTest, AggregatesAndFlagsTimeouts) {
  TemporalGraph g = WorkloadGraph();
  GraphStats stats = ComputeGraphStats(g);
  WorkloadSpec spec;
  spec.num_queries = 2;
  auto queries = GenerateQueries(g, stats.kmax, spec);
  ASSERT_TRUE(queries.ok());

  AggregateOutcome ok_agg =
      RunAlgorithmOnQueries(AlgorithmKind::kEnum, g, *queries, 0);
  EXPECT_TRUE(ok_agg.completed);
  EXPECT_GT(ok_agg.avg_num_cores, 0.0);

  // An absurdly small limit must report "did not finish".
  AggregateOutcome timeout_agg =
      RunAlgorithmOnQueries(AlgorithmKind::kOtcd, g, *queries, 1e-9);
  EXPECT_FALSE(timeout_agg.completed);
  EXPECT_EQ(timeout_agg.first_error.code(), StatusCode::kTimeout);
}

TEST(AlgorithmNameTest, Names) {
  EXPECT_STREQ(AlgorithmName(AlgorithmKind::kOtcd), "OTCD");
  EXPECT_STREQ(AlgorithmName(AlgorithmKind::kCoreTime), "CoreTime");
  EXPECT_STREQ(AlgorithmName(AlgorithmKind::kEnumBase), "EnumBase");
  EXPECT_STREQ(AlgorithmName(AlgorithmKind::kEnum), "Enum");
  EXPECT_STREQ(AlgorithmName(AlgorithmKind::kNaive), "Naive");
}

}  // namespace
}  // namespace tkc
