# Negative-compile proof that clang's thread-safety analysis is live.
#
# Invoked by ctest (see tests/CMakeLists.txt) as:
#   cmake -DCXX=<compiler> -DCXX_ID=<GNU|Clang|...>
#         -DFIXTURE_DIR=<tests/static> -DINCLUDE_DIR=<src>
#         -P check_thread_safety.cmake
#
# Expectations by compiler:
#   * Clang: thread_safety_control.cc compiles with -Wthread-safety -Werror
#     and thread_safety_violation.cc does NOT — the seeded GUARDED_BY
#     violation is rejected, proving the flag and the macros both work.
#   * Anything else (gcc here): both files compile — the TKC_* macros must
#     expand to nothing off-clang, so a violation is invisible.

foreach(var CXX CXX_ID FIXTURE_DIR INCLUDE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_thread_safety.cmake: -D${var}=... is required")
  endif()
endforeach()

set(base_flags -std=c++20 -fsyntax-only -I${INCLUDE_DIR})
if(CXX_ID STREQUAL "Clang" OR CXX_ID STREQUAL "AppleClang")
  list(APPEND base_flags -Wthread-safety -Werror)
endif()

function(try_syntax source result_var)
  execute_process(
    COMMAND ${CXX} ${base_flags} ${FIXTURE_DIR}/${source}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(${result_var} ${rc} PARENT_SCOPE)
  set(${result_var}_output "${out}${err}" PARENT_SCOPE)
endfunction()

try_syntax(thread_safety_control.cc control_rc)
if(NOT control_rc EQUAL 0)
  message(FATAL_ERROR
          "control fixture failed to compile (it must always compile):\n"
          "${control_rc_output}")
endif()

try_syntax(thread_safety_violation.cc violation_rc)
if(CXX_ID STREQUAL "Clang" OR CXX_ID STREQUAL "AppleClang")
  if(violation_rc EQUAL 0)
    message(FATAL_ERROR
            "clang accepted the seeded GUARDED_BY violation — thread-safety "
            "analysis is not live (flag dropped or macros broken)")
  endif()
  message(STATUS "clang rejected the seeded violation (analysis is live)")
else()
  if(NOT violation_rc EQUAL 0)
    message(FATAL_ERROR
            "non-clang compiler rejected the violation fixture — the TKC_* "
            "macros must be no-ops off clang:\n${violation_rc_output}")
  endif()
  message(STATUS
          "${CXX_ID} compiled both fixtures (annotations are no-ops here)")
endif()
