// Control fixture for the negative-compile thread-safety test: the same
// shape as thread_safety_violation.cc with the lock held correctly. Must
// compile under every compiler — under clang with -Wthread-safety -Werror
// (proving the annotations describe a consistent protocol), and under
// non-clang compilers (proving the TKC_* macros expand to nothing there).

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) TKC_EXCLUDES(mu_) {
    tkc::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() TKC_EXCLUDES(mu_) {
    tkc::MutexLock lock(mu_);
    return balance_;
  }

 private:
  tkc::Mutex mu_;
  int balance_ TKC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
