// Violation fixture for the negative-compile thread-safety test: touches a
// TKC_GUARDED_BY field without holding its mutex. Under clang with
// -Wthread-safety -Werror this file MUST fail to compile — that failure is
// the proof the analysis is actually live in the build (an accidentally
// disabled flag or a macro regression would let it slip through, and the
// ctest would fail). Under non-clang compilers it must compile: the TKC_*
// macros are no-ops there by design.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Account {
 public:
  // Seeded bug: writes balance_ with mu_ not held.
  void Deposit(int amount) { balance_ += amount; }

  int balance() TKC_EXCLUDES(mu_) {
    tkc::MutexLock lock(mu_);
    return balance_;
  }

 private:
  tkc::Mutex mu_;
  int balance_ TKC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
