// Exact reproduction of the paper's worked example: the temporal graph of
// Figure 1 with k = 2. Validates:
//   * Table I  — the vertex core time index over the full range [1,7];
//   * Table II — the edge core window skyline over [1,7];
//   * Figure 2 — the two temporal 2-cores of the query range [1,4];
//   * Examples 2, 5, 6, 9 — individual core times and active times.
// These assertions pin the implementation to the paper's published ground
// truth, independent of our own reference implementations.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/sinks.h"
#include "core/temporal_kcore.h"
#include "datasets/generators.h"
#include "vct/naive_vct_builder.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = PaperExampleGraph();
    ASSERT_EQ(graph_.num_edges(), 14u);
    ASSERT_EQ(graph_.num_timestamps(), 7u);
  }

  // Finds the EdgeId of (u, v, t); fails the test if absent.
  EdgeId EdgeOf(VertexId u, VertexId v, Timestamp t) {
    if (u > v) std::swap(u, v);
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      const TemporalEdge& edge = graph_.edge(e);
      if (edge.u == u && edge.v == v && edge.t == t) return e;
    }
    ADD_FAILURE() << "edge (" << u << "," << v << "," << t << ") not found";
    return kInvalidEdge;
  }

  TemporalGraph graph_;
};

// --- Table I: the vertex core time index for k=2 over [1,7]. -------------

TEST_F(PaperExampleTest, TableI_VertexCoreTimeIndex) {
  VctBuildResult built = BuildVctAndEcs(graph_, 2, Window{1, 7});
  const VertexCoreTimeIndex& vct = built.vct;

  using E = std::vector<VctEntry>;
  auto entries = [&](VertexId v) {
    auto span = vct.EntriesOf(v);
    return E(span.begin(), span.end());
  };
  const Timestamp inf = kInfTime;
  EXPECT_EQ(entries(1), (E{{1, 3}, {3, 5}, {6, 7}, {7, inf}}))
      << vct.DebugString(1);
  EXPECT_EQ(entries(2), (E{{1, 3}, {3, 5}, {4, inf}})) << vct.DebugString(2);
  // Table I prints v3's last entry as [4,inf], but that contradicts the
  // paper's own Table II: windows [6,7] of (v1,v3,6) and (v3,v5,6) put v3
  // in a 2-core at start 6 (the v1-v3-v5 triangle), so CT_4..6(v3) = 7 and
  // the entry must read [7,inf]. Both our builders derive [7,inf]; we pin
  // the corrected value (documented in EXPERIMENTS.md).
  EXPECT_EQ(entries(3), (E{{1, 4}, {2, 6}, {3, 7}, {7, inf}}))
      << vct.DebugString(3);
  EXPECT_EQ(entries(4), (E{{1, 3}, {3, 5}, {4, inf}})) << vct.DebugString(4);
  EXPECT_EQ(entries(5), (E{{1, 7}, {7, inf}})) << vct.DebugString(5);
  EXPECT_EQ(entries(6), (E{{1, 5}, {6, inf}})) << vct.DebugString(6);
  EXPECT_EQ(entries(7), (E{{1, 5}, {6, inf}})) << vct.DebugString(7);
  EXPECT_EQ(entries(8), (E{{1, 5}, {4, inf}})) << vct.DebugString(8);
  EXPECT_EQ(entries(9), (E{{1, 4}, {2, inf}})) << vct.DebugString(9);
}

// Example 2: CT_1(v1) = 3 and CT_3(v1) = 5.
TEST_F(PaperExampleTest, Example2_CoreTimeLookups) {
  VctBuildResult built = BuildVctAndEcs(graph_, 2, Window{1, 7});
  EXPECT_EQ(built.vct.CoreTimeAt(1, 1), 3u);
  EXPECT_EQ(built.vct.CoreTimeAt(1, 2), 3u);
  EXPECT_EQ(built.vct.CoreTimeAt(1, 3), 5u);
  EXPECT_EQ(built.vct.CoreTimeAt(1, 6), 7u);
  EXPECT_EQ(built.vct.CoreTimeAt(1, 7), kInfTime);
  // Example in Table I's caption: v9's core time at ts=1 is 4.
  EXPECT_EQ(built.vct.CoreTimeAt(9, 1), 4u);
  EXPECT_EQ(built.vct.CoreTimeAt(9, 2), kInfTime);
}

// --- Table II: the edge core window skyline for k=2 over [1,7]. ----------

TEST_F(PaperExampleTest, TableII_EdgeCoreWindowSkyline) {
  VctBuildResult built = BuildVctAndEcs(graph_, 2, Window{1, 7});
  const EdgeCoreWindowSkyline& ecs = built.ecs;

  using W = std::vector<Window>;
  auto windows = [&](VertexId u, VertexId v, Timestamp t) {
    auto span = ecs.WindowsOf(EdgeOf(u, v, t));
    return W(span.begin(), span.end());
  };
  EXPECT_EQ(windows(2, 9, 1), (W{{1, 4}}));
  EXPECT_EQ(windows(1, 4, 2), (W{{2, 3}}));
  EXPECT_EQ(windows(2, 3, 2), (W{{1, 4}, {2, 6}}));
  EXPECT_EQ(windows(1, 2, 3), (W{{2, 3}, {3, 5}}));
  EXPECT_EQ(windows(2, 4, 3), (W{{2, 3}, {3, 5}}));
  EXPECT_EQ(windows(3, 9, 4), (W{{1, 4}}));
  EXPECT_EQ(windows(4, 8, 4), (W{{3, 5}}));
  EXPECT_EQ(windows(1, 6, 5), (W{{5, 5}}));
  EXPECT_EQ(windows(1, 7, 5), (W{{5, 5}}));
  EXPECT_EQ(windows(2, 8, 5), (W{{3, 5}}));
  EXPECT_EQ(windows(6, 7, 5), (W{{5, 5}}));
  EXPECT_EQ(windows(1, 3, 6), (W{{2, 6}, {6, 7}}));
  EXPECT_EQ(windows(3, 5, 6), (W{{6, 7}}));
  EXPECT_EQ(windows(1, 5, 7), (W{{6, 7}}));
  // |ECS| = 18 windows total.
  EXPECT_EQ(ecs.size(), 18u);
}

// The naive (per-start sweep) builder must produce identical structures.
TEST_F(PaperExampleTest, NaiveBuilderMatchesEfficient) {
  VctBuildResult fast = BuildVctAndEcs(graph_, 2, Window{1, 7});
  VctBuildResult slow = BuildVctAndEcsNaive(graph_, 2, Window{1, 7});
  ASSERT_EQ(fast.vct.size(), slow.vct.size());
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    auto a = fast.vct.EntriesOf(v);
    auto b = slow.vct.EntriesOf(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  ASSERT_EQ(fast.ecs.size(), slow.ecs.size());
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    auto a = fast.ecs.WindowsOf(e);
    auto b = slow.ecs.WindowsOf(e);
    ASSERT_EQ(a.size(), b.size()) << "edge " << e;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

// --- Figure 2: the two temporal 2-cores of query range [1,4]. ------------

TEST_F(PaperExampleTest, Figure2_TemporalCoresOfRange1To4) {
  CollectingSink sink;
  QueryStats stats;
  ASSERT_TRUE(
      RunTemporalKCoreQuery(graph_, 2, Window{1, 4}, &sink, {}, &stats).ok());
  auto cores = sink.cores();
  ASSERT_EQ(cores.size(), 2u);
  // Order cores by TTI start for a deterministic comparison.
  std::sort(cores.begin(), cores.end(),
            [](const CoreResult& a, const CoreResult& b) {
              return a.tti.start < b.tti.start;
            });

  // Core 1, TTI [1,4]: {v1,v2,v3,v4,v9} with 6 edges.
  EXPECT_EQ(cores[0].tti, (Window{1, 4}));
  std::vector<EdgeId> expected_14 = {
      EdgeOf(2, 9, 1), EdgeOf(1, 4, 2), EdgeOf(2, 3, 2),
      EdgeOf(1, 2, 3), EdgeOf(2, 4, 3), EdgeOf(3, 9, 4)};
  std::sort(expected_14.begin(), expected_14.end());
  EXPECT_EQ(cores[0].edges, expected_14);

  // Core 2, TTI [2,3]: {v1,v2,v4} with 3 edges.
  EXPECT_EQ(cores[1].tti, (Window{2, 3}));
  std::vector<EdgeId> expected_23 = {EdgeOf(1, 4, 2), EdgeOf(1, 2, 3),
                                     EdgeOf(2, 4, 3)};
  std::sort(expected_23.begin(), expected_23.end());
  EXPECT_EQ(cores[1].edges, expected_23);
}

// Example 6: the active time of window [3,5] of edge (v1,v2,3) is 3.
// (Active times are internal to Enum; we verify the observable consequence:
// with query range [1,7] and ts=1,2 the window [3,5] contributes nothing —
// the cores starting at 1 and 2 use [2,3] instead.)
TEST_F(PaperExampleTest, Example6_ActiveTimeConsequence) {
  CollectingSink sink;
  ASSERT_TRUE(RunTemporalKCoreQuery(graph_, 2, Window{1, 7}, &sink).ok());
  // Find cores whose TTI starts at 1 or 2: per Example 8/9 these are the
  // [1,4] core and the [2,3] core; edge (v1,v2) participates through its
  // [2,3] window in both, never through [3,5].
  bool saw_start1 = false, saw_start2 = false;
  for (const CoreResult& core : sink.cores()) {
    if (core.tti.start == 1) saw_start1 = true;
    if (core.tti.start == 2) saw_start2 = true;
  }
  EXPECT_TRUE(saw_start1);
  EXPECT_TRUE(saw_start2);
}

// Example 9 runs the full enumeration over [1,6]; validated against the
// naive oracle (exact multiset of cores with TTIs).
TEST_F(PaperExampleTest, Example9_Range1To6MatchesOracle) {
  CollectingSink enum_sink;
  ASSERT_TRUE(RunTemporalKCoreQuery(graph_, 2, Window{1, 6}, &enum_sink).ok());
  enum_sink.SortCanonically();

  CollectingSink oracle_sink;
  QueryOptions naive;
  naive.enum_method = EnumMethod::kNaive;
  ASSERT_TRUE(
      RunTemporalKCoreQuery(graph_, 2, Window{1, 6}, &oracle_sink, naive)
          .ok());
  oracle_sink.SortCanonically();

  ASSERT_EQ(enum_sink.cores().size(), oracle_sink.cores().size());
  for (size_t i = 0; i < enum_sink.cores().size(); ++i) {
    EXPECT_EQ(enum_sink.cores()[i], oracle_sink.cores()[i]) << "core " << i;
  }
}

}  // namespace
}  // namespace tkc
