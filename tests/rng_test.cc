#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace tkc {
namespace {

TEST(SplitMix64Test, KnownValuesDiffer) {
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  // Deterministic across runs.
  EXPECT_EQ(SplitMix64(42), SplitMix64(42));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.Next());
  a.Reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), first[i]);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(99);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) over 10k draws should be near 0.5.
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(21);
  constexpr uint64_t kBuckets = 8;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1)
        << "bucket " << b;
  }
}

}  // namespace
}  // namespace tkc
