// The library's central property suite: on randomized temporal graphs, all
// four enumeration engines (naive oracle, Enum, EnumBase, OTCD) must produce
// exactly the same set of distinct temporal k-cores with the same TTIs.
// Parameterized over graph shapes, k values and query ranges.

#include <gtest/gtest.h>

#include <vector>

#include "core/sinks.h"
#include "core/temporal_kcore.h"
#include "datasets/generators.h"
#include "otcd/otcd.h"

namespace tkc {
namespace {

struct CaseSpec {
  uint32_t num_vertices;
  uint32_t num_edges;
  uint32_t num_timestamps;
  uint32_t k;
  uint64_t seed;
};

void PrintTo(const CaseSpec& c, std::ostream* os) {
  *os << "n=" << c.num_vertices << " m=" << c.num_edges
      << " T=" << c.num_timestamps << " k=" << c.k << " seed=" << c.seed;
}

class CrossAlgorithmTest : public ::testing::TestWithParam<CaseSpec> {};

std::vector<CoreResult> RunAndCollect(EnumMethod method,
                                      const TemporalGraph& g, uint32_t k,
                                      Window range) {
  CollectingSink sink;
  QueryOptions options;
  options.enum_method = method;
  Status s = RunTemporalKCoreQuery(g, k, range, &sink, options);
  EXPECT_TRUE(s.ok()) << s.ToString();
  sink.SortCanonically();
  return sink.cores();
}

std::vector<CoreResult> RunOtcdAndCollect(const TemporalGraph& g, uint32_t k,
                                          Window range) {
  CollectingSink sink;
  Status s = RunOtcd(g, k, range, &sink);
  EXPECT_TRUE(s.ok()) << s.ToString();
  sink.SortCanonically();
  return sink.cores();
}

TEST_P(CrossAlgorithmTest, AllAlgorithmsAgreeOnFullRange) {
  const CaseSpec& c = GetParam();
  TemporalGraph g = GenerateUniformRandom(c.num_vertices, c.num_edges,
                                          c.num_timestamps, c.seed);
  Window range = g.FullRange();

  auto oracle = RunAndCollect(EnumMethod::kNaive, g, c.k, range);
  auto enum_cores = RunAndCollect(EnumMethod::kEnum, g, c.k, range);
  auto base_cores = RunAndCollect(EnumMethod::kEnumBase, g, c.k, range);
  auto otcd_cores = RunOtcdAndCollect(g, c.k, range);

  EXPECT_EQ(enum_cores, oracle) << "Enum differs from the oracle";
  EXPECT_EQ(base_cores, oracle) << "EnumBase differs from the oracle";
  EXPECT_EQ(otcd_cores, oracle) << "OTCD differs from the oracle";
}

TEST_P(CrossAlgorithmTest, AllAlgorithmsAgreeOnSubRanges) {
  const CaseSpec& c = GetParam();
  TemporalGraph g = GenerateUniformRandom(c.num_vertices, c.num_edges,
                                          c.num_timestamps, c.seed);
  const Timestamp tmax = g.num_timestamps();
  // Three deterministic sub-ranges: early, middle, late thirds (clamped).
  std::vector<Window> ranges;
  if (tmax >= 3) {
    Timestamp third = tmax / 3;
    ranges.push_back(Window{1, std::max<Timestamp>(1, third)});
    ranges.push_back(Window{third + 1, std::min<Timestamp>(tmax, 2 * third)});
    ranges.push_back(Window{2 * third + 1, tmax});
  } else {
    ranges.push_back(g.FullRange());
  }
  for (const Window& range : ranges) {
    if (range.start > range.end) continue;
    auto oracle = RunAndCollect(EnumMethod::kNaive, g, c.k, range);
    auto enum_cores = RunAndCollect(EnumMethod::kEnum, g, c.k, range);
    auto base_cores = RunAndCollect(EnumMethod::kEnumBase, g, c.k, range);
    auto otcd_cores = RunOtcdAndCollect(g, c.k, range);
    EXPECT_EQ(enum_cores, oracle)
        << "Enum differs on range [" << range.start << "," << range.end << "]";
    EXPECT_EQ(base_cores, oracle)
        << "EnumBase differs on range [" << range.start << "," << range.end
        << "]";
    EXPECT_EQ(otcd_cores, oracle)
        << "OTCD differs on range [" << range.start << "," << range.end << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SparseGraphs, CrossAlgorithmTest,
    ::testing::Values(CaseSpec{12, 40, 10, 2, 1}, CaseSpec{12, 40, 10, 2, 2},
                      CaseSpec{12, 40, 10, 3, 3}, CaseSpec{20, 60, 15, 2, 4},
                      CaseSpec{20, 60, 15, 3, 5}, CaseSpec{20, 60, 8, 2, 6},
                      CaseSpec{8, 30, 30, 2, 7}, CaseSpec{8, 30, 30, 2, 8}));

INSTANTIATE_TEST_SUITE_P(
    DenseGraphs, CrossAlgorithmTest,
    ::testing::Values(CaseSpec{10, 90, 12, 3, 11}, CaseSpec{10, 90, 12, 4, 12},
                      CaseSpec{10, 90, 12, 5, 13}, CaseSpec{15, 120, 20, 4, 14},
                      CaseSpec{15, 120, 20, 5, 15},
                      CaseSpec{15, 120, 6, 4, 16}));

INSTANTIATE_TEST_SUITE_P(
    MultiEdgeHeavy, CrossAlgorithmTest,
    ::testing::Values(CaseSpec{6, 80, 15, 2, 21}, CaseSpec{6, 80, 15, 3, 22},
                      CaseSpec{5, 60, 10, 3, 23}, CaseSpec{5, 60, 4, 2, 24},
                      CaseSpec{4, 40, 8, 2, 25}));

INSTANTIATE_TEST_SUITE_P(
    K1Degenerate, CrossAlgorithmTest,
    ::testing::Values(CaseSpec{10, 30, 10, 1, 31}, CaseSpec{6, 20, 20, 1, 32}));

INSTANTIATE_TEST_SUITE_P(
    SingleTimestampAndTiny, CrossAlgorithmTest,
    ::testing::Values(CaseSpec{8, 25, 1, 2, 41}, CaseSpec{8, 25, 2, 2, 42},
                      CaseSpec{4, 6, 3, 2, 43}, CaseSpec{3, 3, 3, 2, 44}));

// Bursty generator graphs (planted dense episodes) — closest to the paper's
// motivating workloads.
TEST(CrossAlgorithmBurstyTest, SyntheticGeneratorAgrees) {
  SyntheticSpec spec;
  spec.name = "test";
  spec.num_vertices = 24;
  spec.num_edges = 260;
  spec.num_timestamps = 40;
  spec.burstiness = 0.5;
  spec.burst_group = 8;
  spec.burst_span = 5;
  spec.seed = 99;
  TemporalGraph g = GenerateSynthetic(spec);
  for (uint32_t k : {2u, 3u, 4u}) {
    auto oracle = RunAndCollect(EnumMethod::kNaive, g, k, g.FullRange());
    auto enum_cores = RunAndCollect(EnumMethod::kEnum, g, k, g.FullRange());
    auto otcd_cores = RunOtcdAndCollect(g, k, g.FullRange());
    EXPECT_EQ(enum_cores, oracle) << "k=" << k;
    EXPECT_EQ(otcd_cores, oracle) << "k=" << k;
  }
}

}  // namespace
}  // namespace tkc
