#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "datasets/generators.h"
#include "graph/graph_stats.h"
#include "graph/window_peeler.h"
#include "util/thread_pool.h"

namespace tkc {
namespace {

TemporalGraph ServeGraph() {
  SyntheticSpec spec;
  spec.name = "serve";
  spec.num_vertices = 40;
  spec.num_edges = 800;
  spec.num_timestamps = 200;
  spec.burstiness = 0.3;
  spec.seed = 3;
  return GenerateSynthetic(spec);
}

/// The workload the bit-identity tests serve: generated valid queries plus
/// handcrafted empty-result, full-span, and invalid queries.
std::vector<Query> MixedQueries(const TemporalGraph& g, uint32_t kmax) {
  WorkloadSpec spec;
  spec.num_queries = 4;
  spec.range_fraction = 0.15;
  auto generated = GenerateQueries(g, kmax, spec);
  EXPECT_TRUE(generated.ok()) << generated.status().ToString();
  std::vector<Query> queries = generated.ok() ? *generated
                                              : std::vector<Query>{};
  queries.push_back(Query{kmax + 5, Window{1, g.num_timestamps()}});  // empty
  queries.push_back(Query{2, g.FullRange()});
  queries.push_back(Query{2, Window{5, 5}});           // single timestamp
  queries.push_back(Query{3, Window{0, 10}});          // invalid: start < 1
  queries.push_back(Query{3, Window{10, 5}});          // invalid: reversed
  queries.push_back(
      Query{3, Window{1, g.num_timestamps() + 50}});   // invalid: past span
  return queries;
}

/// Result fields must be bit-identical; execution fields (timings, memory)
/// are engine artifacts and deliberately not compared.
void ExpectSameResults(const RunOutcome& serial, const RunOutcome& served,
                       const char* context) {
  ASSERT_EQ(serial.status.code(), served.status.code()) << context;
  if (!serial.status.ok()) return;
  EXPECT_EQ(serial.num_cores, served.num_cores) << context;
  EXPECT_EQ(serial.result_size_edges, served.result_size_edges) << context;
  EXPECT_EQ(serial.vct_size, served.vct_size) << context;
  EXPECT_EQ(serial.ecs_size, served.ecs_size) << context;
}

class QueryEngineBitIdenticalTest
    : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(QueryEngineBitIdenticalTest, MatchesSerialRunnerAt1And2And8Threads) {
  const AlgorithmKind kind = GetParam();
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, stats.kmax);

  std::vector<RunOutcome> reference;
  reference.reserve(queries.size());
  for (const Query& q : queries) {
    reference.push_back(RunAlgorithm(kind, g, q));
  }

  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    QueryEngineOptions options;
    options.algorithm = kind;
    options.pool = &pool;
    options.build_index = true;  // exercise the admission fast path too
    auto engine = QueryEngine::Create(g, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    std::vector<RunOutcome> served = engine->ServeBatch(queries);
    ASSERT_EQ(served.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      std::string context = std::string(AlgorithmName(kind)) + " threads=" +
                            std::to_string(threads) + " query#" +
                            std::to_string(i);
      ExpectSameResults(reference[i], served[i], context.c_str());
    }
    // Serving the same batch again must reproduce the same results from the
    // cache (hits for every query whose outcome was cacheable).
    std::vector<RunOutcome> replay = engine->ServeBatch(queries);
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectSameResults(reference[i], replay[i], "replay");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, QueryEngineBitIdenticalTest,
                         ::testing::Values(AlgorithmKind::kEnum,
                                           AlgorithmKind::kEnumBase,
                                           AlgorithmKind::kCoreTime,
                                           AlgorithmKind::kOtcd),
                         [](const auto& info) {
                           return AlgorithmName(info.param);
                         });

TEST(QueryEngineAdmissionTest, EmergenceTableMatchesPeelingOracle) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  QueryEngineOptions options;
  options.build_index = true;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());
  // GenerateQueries' invariant: a range contains a temporal k-core iff the
  // widest window's k-core is non-empty. Check MayContainCore against the
  // peeling oracle over a grid of (k, range).
  const Timestamp tmax = g.num_timestamps();
  for (uint32_t k = 1; k <= stats.kmax + 2; ++k) {
    for (Timestamp start : {Timestamp{1}, Timestamp{tmax / 3},
                            Timestamp{tmax / 2}, Timestamp{tmax - 5}}) {
      for (Timestamp end :
           {start, Timestamp{start + 10}, Timestamp{(start + tmax) / 2},
            tmax}) {
        if (start < 1 || end < start || end > tmax) continue;
        Window range{start, end};
        std::vector<bool> in_core = ComputeWindowCoreVertices(g, k, range);
        bool oracle =
            std::find(in_core.begin(), in_core.end(), true) != in_core.end();
        EXPECT_EQ(engine->MayContainCore(k, range), oracle)
            << "k=" << k << " range=[" << start << "," << end << "]";
      }
    }
  }
}

TEST(QueryEngineAdmissionTest, RejectionProducesPipelineIdenticalOutcome) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  QueryEngineOptions options;
  options.build_index = true;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());

  const Query empty_query{stats.kmax + 3, Window{2, g.num_timestamps() / 2}};
  RunOutcome pipeline = RunAlgorithm(AlgorithmKind::kEnum, g, empty_query);
  RunOutcome served = engine->Serve(empty_query);
  ExpectSameResults(pipeline, served, "rejected query");
  EXPECT_EQ(engine->stats().index_rejections, 1u);
  EXPECT_EQ(engine->stats().executed, 0u);
}

TEST(QueryEngineCacheTest, RepeatedBatchHitsWithoutReexecution) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  WorkloadSpec spec;
  spec.num_queries = 3;
  auto queries = GenerateQueries(g, stats.kmax, spec);
  ASSERT_TRUE(queries.ok());

  ThreadPool pool(2);
  QueryEngineOptions options;
  options.pool = &pool;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());

  std::vector<RunOutcome> first = engine->ServeBatch(*queries);
  ServeStats after_first = engine->stats();
  EXPECT_EQ(after_first.executed, queries->size());
  EXPECT_EQ(after_first.cache_hits, 0u);

  std::vector<RunOutcome> second = engine->ServeBatch(*queries);
  ServeStats after_second = engine->stats();
  EXPECT_EQ(after_second.executed, queries->size());  // nothing re-ran
  EXPECT_EQ(after_second.cache_hits, queries->size());
  for (size_t i = 0; i < queries->size(); ++i) {
    ExpectSameResults(first[i], second[i], "cache replay");
  }

  engine->ClearCache();
  engine->ServeBatch(*queries);
  EXPECT_EQ(engine->stats().executed, 2 * queries->size());
}

TEST(QueryEngineCacheTest, BoundedCapacityEvicts) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  WorkloadSpec spec;
  spec.num_queries = 3;
  auto queries = GenerateQueries(g, stats.kmax, spec);
  ASSERT_TRUE(queries.ok());
  // Make the three queries distinct cache keys even if ranges repeat.
  (*queries)[1].range.end = (*queries)[1].range.end - 1;
  (*queries)[2].range.start = (*queries)[2].range.start + 1;

  QueryEngineOptions options;
  options.cache_capacity = 2;
  // One stripe = exact global LRU; with several stripes the eviction order
  // below would depend on how the three keys hash across stripes.
  options.cache_stripes = 1;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());

  for (const Query& q : *queries) engine->Serve(q);
  EXPECT_EQ(engine->stats().cache_evictions, 1u);
  // Query 0 was evicted (LRU), so re-serving it executes again; query 2 is
  // still resident and hits.
  engine->Serve((*queries)[0]);
  engine->Serve((*queries)[2]);
  ServeStats stats_now = engine->stats();
  EXPECT_EQ(stats_now.executed, queries->size() + 1);
  EXPECT_EQ(stats_now.cache_hits, 1u);
}

TEST(QueryEngineCacheTest, InBatchDuplicatesExecuteOnce) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  WorkloadSpec spec;
  spec.num_queries = 2;
  auto queries = GenerateQueries(g, stats.kmax, spec);
  ASSERT_TRUE(queries.ok());
  // A batch of 6 submissions over 2 distinct queries.
  std::vector<Query> batch = {(*queries)[0], (*queries)[1], (*queries)[0],
                              (*queries)[0], (*queries)[1], (*queries)[1]};

  ThreadPool pool(2);
  QueryEngineOptions options;
  options.pool = &pool;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());
  std::vector<RunOutcome> served = engine->ServeBatch(batch);
  ServeStats after = engine->stats();
  EXPECT_EQ(after.executed, 2u);
  EXPECT_EQ(after.batch_dedup_hits, 4u);
  EXPECT_EQ(after.queries_served, batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    RunOutcome reference = RunAlgorithm(AlgorithmKind::kEnum, g, batch[i]);
    ExpectSameResults(reference, served[i], "deduped batch");
  }

  // With dedup disabled every submission executes.
  QueryEngineOptions no_dedup = options;
  no_dedup.dedup_batches = false;
  no_dedup.cache_capacity = 0;
  auto engine2 = QueryEngine::Create(g, no_dedup);
  ASSERT_TRUE(engine2.ok());
  engine2->ServeBatch(batch);
  EXPECT_EQ(engine2->stats().executed, batch.size());
  EXPECT_EQ(engine2->stats().batch_dedup_hits, 0u);
}

TEST(QueryEngineConcurrencyTest, ConcurrentBatchSubmission) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, stats.kmax);

  std::vector<RunOutcome> reference;
  for (const Query& q : queries) {
    reference.push_back(RunAlgorithm(AlgorithmKind::kEnum, g, q));
  }

  ThreadPool pool(4);
  QueryEngineOptions options;
  options.pool = &pool;
  options.build_index = true;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());

  constexpr int kClients = 4;
  std::vector<std::vector<RunOutcome>> results(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back(
          [&, c] { results[c] = engine->ServeBatch(queries); });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(results[c].size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectSameResults(reference[i], results[c][i], "concurrent client");
    }
  }
  EXPECT_EQ(engine->stats().queries_served, kClients * queries.size());
  EXPECT_EQ(engine->stats().batches, static_cast<uint64_t>(kClients));
}

TEST(QueryEngineIndexTest, ReplicasAnswerPointLookups) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  QueryEngineOptions options;
  options.build_index = true;
  options.num_index_replicas = 2;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_NE(engine->index(0), nullptr);
  ASSERT_NE(engine->index(1), nullptr);
  EXPECT_EQ(engine->index(2), nullptr);
  EXPECT_EQ(engine->index(0)->max_k(), stats.kmax);
  EXPECT_EQ(engine->index(0)->size(), engine->index(1)->size());

  const Window window{1, g.num_timestamps()};
  std::vector<bool> in_core = ComputeWindowCoreVertices(g, 2, window);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    // Round-robin across replicas twice so both serve.
    EXPECT_EQ(engine->VertexInCore(u, window, 2), in_core[u]) << "u=" << u;
  }
}

TEST(QueryEngineIndexTest, CappedIndexNeverRejectsAboveCap) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  ASSERT_GT(stats.kmax, 2u);
  QueryEngineOptions options;
  options.build_index = true;
  options.index_max_k = 2;  // below the true kmax
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());
  // k above the cap is not provably empty, so the engine must execute, and
  // the result must still match the pipeline.
  const Query q{3, Window{1, g.num_timestamps()}};
  RunOutcome served = engine->Serve(q);
  RunOutcome pipeline = RunAlgorithm(AlgorithmKind::kEnum, g, q);
  ExpectSameResults(pipeline, served, "above-cap query");
  EXPECT_EQ(engine->stats().index_rejections, 0u);
}

TEST(QueryEngineAsyncTest, SubmitAsyncMatchesServeBatch) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, stats.kmax);
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    QueryEngineOptions options;
    options.pool = &pool;
    auto engine = QueryEngine::Create(g, options);
    ASSERT_TRUE(engine.ok());
    std::vector<RunOutcome> sync = engine->ServeBatch(queries);
    engine->ClearCache();  // async run must execute, not replay
    std::future<BatchResult> future = engine->SubmitAsync(queries);
    BatchResult async = future.get();
    ASSERT_EQ(async.outcomes.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectSameResults(sync[i], async.outcomes[i], "async");
    }
    EXPECT_EQ(engine->stats().async_batches, 1u);
  }
}

TEST(QueryEngineAsyncTest, ManyOverlappingSubmissionsAllComplete) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, stats.kmax);
  ThreadPool pool(4);
  QueryEngineOptions options;
  options.pool = &pool;
  options.async_queue_capacity = 2;  // tiny bound: forces backpressure
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());
  std::vector<RunOutcome> reference = engine->ServeBatch(queries);
  std::vector<std::future<BatchResult>> futures;
  for (int b = 0; b < 16; ++b) futures.push_back(engine->SubmitAsync(queries));
  for (std::future<BatchResult>& f : futures) {
    BatchResult result = f.get();
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectSameResults(reference[i], result.outcomes[i], "overlapping");
    }
  }
  EXPECT_EQ(engine->stats().async_batches, 16u);
}

TEST(QueryEngineAsyncTest, CompletionQueueDeliversTaggedResults) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, stats.kmax);
  ThreadPool pool(4);
  QueryEngineOptions options;
  options.pool = &pool;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());
  std::vector<RunOutcome> reference = engine->ServeBatch(queries);
  BatchCompletionQueue cq(8);
  constexpr uint64_t kBatches = 6;
  for (uint64_t tag = 0; tag < kBatches; ++tag) {
    engine->SubmitAsync(queries, &cq, 100 + tag);
  }
  uint64_t seen = 0;
  std::set<uint64_t> tags;
  BatchResult result;
  while (seen < kBatches && cq.Next(&result)) {
    ++seen;
    tags.insert(result.tag);
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectSameResults(reference[i], result.outcomes[i], "cq");
    }
  }
  EXPECT_EQ(seen, kBatches);
  EXPECT_EQ(tags.size(), kBatches);  // every tag delivered exactly once
  EXPECT_EQ(*tags.begin(), 100u);
  engine->DrainAsync();
}

TEST(QueryEngineAsyncTest, EmptyBatchCompletesImmediately) {
  TemporalGraph g = ServeGraph();
  auto engine = QueryEngine::Create(g);
  ASSERT_TRUE(engine.ok());
  BatchResult result = engine->SubmitAsync({}).get();
  EXPECT_TRUE(result.outcomes.empty());
}

TEST(QueryEngineAsyncTest, DestructorDrainsInFlightBatches) {
  TemporalGraph g = ServeGraph();
  GraphStats stats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, stats.kmax);
  ThreadPool pool(4);
  std::vector<std::future<BatchResult>> futures;
  {
    QueryEngineOptions options;
    options.pool = &pool;
    auto engine = QueryEngine::Create(g, options);
    ASSERT_TRUE(engine.ok());
    for (int b = 0; b < 8; ++b) {
      futures.push_back(engine->SubmitAsync(queries));
    }
    // The engine leaves scope with batches in flight: its destructor must
    // block until every future is fulfillable.
  }
  for (std::future<BatchResult>& f : futures) {
    BatchResult result = f.get();
    EXPECT_EQ(result.outcomes.size(), queries.size());
    for (const RunOutcome& out : result.outcomes) {
      (void)out;  // fulfilled — that is the assertion
    }
  }
}

TEST(QueryEngineOptionsTest, InvalidReplicaCountFails) {
  TemporalGraph g = ServeGraph();
  QueryEngineOptions options;
  options.num_index_replicas = 0;
  auto engine = QueryEngine::Create(g, options);
  EXPECT_FALSE(engine.ok());
}

// --- robustness: deadlines, shedding, completion-queue shutdown ------------

TEST(QueryEngineDeadlineTest, ExpiredDeadlineTimesOutWithoutTouchingIndex) {
  TemporalGraph g = ServeGraph();
  QueryEngineOptions options;
  options.algorithm = AlgorithmKind::kCoreTime;
  options.build_index = true;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());
  const Query query{2, Window{1, g.num_timestamps() / 2}};
  const Deadline expired = Deadline::AfterSeconds(-1.0);

  // Cache-miss path: nothing is cached yet, and the rejection must not
  // consult the cache, the admission index, or the algorithm.
  RunOutcome out = engine->ServeWithDeadline(query, expired);
  EXPECT_EQ(out.status.code(), StatusCode::kTimeout);
  ServeStats stats = engine->stats();
  EXPECT_EQ(stats.executed, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);  // the cache was never even consulted
  EXPECT_EQ(stats.index_rejections, 0u);
  EXPECT_EQ(stats.deadlines_expired, 1u);

  // Cache-hit path: serve it for real first, then the expired deadline must
  // still answer Timeout without replaying the cached outcome.
  RunOutcome real = engine->Serve(query);
  ASSERT_TRUE(real.status.ok());
  const uint64_t hits_before = engine->stats().cache_hits;
  out = engine->ServeWithDeadline(query, expired);
  EXPECT_EQ(out.status.code(), StatusCode::kTimeout);
  stats = engine->stats();
  EXPECT_EQ(stats.cache_hits, hits_before);  // no lookup happened
  EXPECT_EQ(stats.deadlines_expired, 2u);

  // Sanity: an unexpired deadline serves the real (cached) outcome.
  out = engine->ServeWithDeadline(query, Deadline::AfterSeconds(30.0));
  ASSERT_TRUE(out.status.ok());
  ExpectSameResults(real, out, "unexpired deadline");
}

TEST(QueryEngineDeadlineTest, ServeBatchWithExpiredDeadlineAllTimeout) {
  TemporalGraph g = ServeGraph();
  GraphStats gstats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, gstats.kmax);
  auto engine = QueryEngine::Create(g);
  ASSERT_TRUE(engine.ok());
  std::vector<RunOutcome> outcomes =
      engine->ServeBatch(queries, Deadline::AfterSeconds(-1.0));
  ASSERT_EQ(outcomes.size(), queries.size());
  for (const RunOutcome& out : outcomes) {
    EXPECT_EQ(out.status.code(), StatusCode::kTimeout);
  }
  EXPECT_EQ(engine->stats().executed, 0u);
  EXPECT_EQ(engine->stats().deadlines_expired, 1u);
}

TEST(QueryEngineDeadlineTest, SubmitAsyncExpiredDeadlineSettlesWithTimeout) {
  TemporalGraph g = ServeGraph();
  GraphStats gstats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, gstats.kmax);
  ThreadPool pool(2);
  QueryEngineOptions options;
  options.pool = &pool;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());
  BatchResult result =
      engine->SubmitAsync(queries, Deadline::AfterSeconds(-1.0)).get();
  ASSERT_EQ(result.outcomes.size(), queries.size());
  for (const RunOutcome& out : result.outcomes) {
    EXPECT_EQ(out.status.code(), StatusCode::kTimeout);
  }
  EXPECT_EQ(engine->stats().deadlines_expired, 1u);
  EXPECT_EQ(engine->stats().executed, 0u);
}

TEST(QueryEngineDeadlineTest, BatchExpiringInQueueIsDroppedAtDispatch) {
  TemporalGraph g = ServeGraph();
  GraphStats gstats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, gstats.kmax);
  ThreadPool pool(2);
  QueryEngineOptions options;
  options.pool = &pool;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());

  // Block every pool worker so the dispatcher cannot run until released;
  // the batch's deadline dies while it sits in the request queue.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  for (int w = 0; w < 2; ++w) {
    pool.Submit([gate] { gate.wait(); });
  }
  std::future<BatchResult> future =
      engine->SubmitAsync(queries, Deadline::AfterSeconds(0.05));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  release.set_value();
  BatchResult result = future.get();
  for (const RunOutcome& out : result.outcomes) {
    EXPECT_EQ(out.status.code(), StatusCode::kTimeout);
  }
  EXPECT_EQ(engine->stats().deadlines_expired, 1u);
  EXPECT_EQ(engine->stats().executed, 0u);
}

TEST(QueryEngineShedTest, FullQueueShedsLeastRemainingDeadline) {
  TemporalGraph g = ServeGraph();
  GraphStats gstats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, gstats.kmax);
  ThreadPool pool(2);
  QueryEngineOptions options;
  options.pool = &pool;
  options.async_queue_capacity = 1;  // one queued batch, then the contest
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());
  std::vector<RunOutcome> reference = engine->ServeBatch(queries);
  engine->ClearCache();

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  for (int w = 0; w < 2; ++w) {
    pool.Submit([gate] { gate.wait(); });
  }
  // A fills the queue; B (more remaining deadline) evicts it; C (least
  // remaining of all) loses its own contest and is rejected. Throughout,
  // no submission blocks — the pool is wedged until `release`.
  std::future<BatchResult> a =
      engine->SubmitAsync(queries, Deadline::AfterSeconds(5.0));
  std::future<BatchResult> b =
      engine->SubmitAsync(queries, Deadline::AfterSeconds(50.0));
  std::future<BatchResult> c =
      engine->SubmitAsync(queries, Deadline::AfterSeconds(0.5));
  // A and C settle without the pool running at all.
  BatchResult shed_a = a.get();
  BatchResult shed_c = c.get();
  for (const RunOutcome& out : shed_a.outcomes) {
    EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);
  }
  for (const RunOutcome& out : shed_c.outcomes) {
    EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);
  }
  release.set_value();
  BatchResult served = b.get();
  ASSERT_EQ(served.outcomes.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameResults(reference[i], served.outcomes[i], "survivor");
  }
  ServeStats stats = engine->stats();
  EXPECT_EQ(stats.batches_shed, 2u);
  EXPECT_EQ(stats.async_batches, 3u);
}

TEST(QueryEngineShedTest, UnlimitedDeadlineBatchIsNeverEvicted) {
  TemporalGraph g = ServeGraph();
  GraphStats gstats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, gstats.kmax);
  ThreadPool pool(2);
  QueryEngineOptions options;
  options.pool = &pool;
  options.async_queue_capacity = 1;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  for (int w = 0; w < 2; ++w) {
    pool.Submit([gate] { gate.wait(); });
  }
  std::future<BatchResult> unlimited = engine->SubmitAsync(queries);
  std::future<BatchResult> finite =
      engine->SubmitAsync(queries, Deadline::AfterSeconds(50.0));
  BatchResult shed = finite.get();  // the finite batch loses to unlimited
  for (const RunOutcome& out : shed.outcomes) {
    EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);
  }
  release.set_value();
  BatchResult served = unlimited.get();
  EXPECT_EQ(served.outcomes.size(), queries.size());
  EXPECT_EQ(engine->stats().batches_shed, 1u);
}

TEST(BatchCompletionQueueTest, ShutdownUnblocksBlockedDeliver) {
  auto cq = std::make_unique<BatchCompletionQueue>(1);
  cq->Deliver(BatchResult{});  // fills the queue
  std::thread delivering([&] {
    cq->Deliver(BatchResult{});  // blocks on the full queue until Shutdown
  });
  // Bias toward the delivery genuinely blocking before Shutdown lands (both
  // interleavings are valid; this makes the interesting one overwhelmingly
  // likely).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cq->Shutdown();  // must unblock the stuck Deliver and wait it out
  delivering.join();
  cq.reset();  // destructor-while-delivering regression: safe after Shutdown
}

TEST(BatchCompletionQueueTest, ShutdownWithEngineStillDelivering) {
  TemporalGraph g = ServeGraph();
  GraphStats gstats = ComputeGraphStats(g);
  std::vector<Query> queries = MixedQueries(g, gstats.kmax);
  ThreadPool pool(2);
  QueryEngineOptions options;
  options.pool = &pool;
  auto engine = QueryEngine::Create(g, options);
  ASSERT_TRUE(engine.ok());
  auto cq = std::make_unique<BatchCompletionQueue>(1);
  // More finished batches than the queue holds, and no consumer: deliveries
  // beyond the first wedge pool workers inside Deliver.
  for (uint64_t tag = 0; tag < 4; ++tag) {
    engine->SubmitAsync(queries, cq.get(), tag);
  }
  cq->Shutdown();        // unblocks any stuck Deliver (results dropped)
  engine->DrainAsync();  // every batch settles; no Deliver can start later
  cq.reset();            // and destroying the queue is now safe
}

}  // namespace
}  // namespace tkc
