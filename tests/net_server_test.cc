// TkcServer lifecycle and wire correctness: round trips against the
// engine's own answers (the determinism contract crosses the wire intact),
// pipelining, multiple connections, the stats frame, and the shutdown-
// ordering regressions — destroying a server mid-stream, and
// LiveQueryEngine::Shutdown()/DrainAsync() while a server still holds the
// completion queue. Runs under asan/ubsan in CI, where any teardown race
// turns into a hard failure.

#include "net/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/generators.h"
#include "net/client.h"
#include "net/wire_format.h"
#include "serve/snapshot.h"
#include "util/thread_pool.h"

namespace tkc {
namespace {

std::unique_ptr<LiveQueryEngine> MakeLive(ThreadPool* pool,
                                          size_t async_queue_capacity = 64) {
  TemporalGraph graph = GenerateUniformRandom(24, 160, 16, 11);
  LiveEngineOptions options;
  options.engine.pool = pool;
  options.engine.async_queue_capacity = async_queue_capacity;
  auto live = LiveQueryEngine::Create(std::move(graph), options);
  EXPECT_TRUE(live.ok()) << live.status().ToString();
  return std::move(*live);
}

std::vector<Query> SomeQueries() {
  return {{1, {1, 8}}, {2, {2, 12}}, {3, {1, 16}}, {2, {5, 9}}, {4, {1, 16}}};
}

void ExpectMatchesEngine(const net::ClientResponse& response,
                         const BatchResult& direct) {
  ASSERT_EQ(response.verdicts.size(), direct.outcomes.size());
  EXPECT_EQ(response.snapshot_version, direct.snapshot_version);
  for (size_t i = 0; i < direct.outcomes.size(); ++i) {
    const net::VerdictFrame& v = response.verdicts[i];
    const RunOutcome& o = direct.outcomes[i];
    EXPECT_EQ(v.query_index, i);
    EXPECT_EQ(net::StatusCodeFromWire(v.status_code), o.status.code());
    EXPECT_EQ(v.num_cores, o.num_cores);
    EXPECT_EQ(v.result_size_edges, o.result_size_edges);
    EXPECT_EQ(v.vct_size, o.vct_size);
    EXPECT_EQ(v.ecs_size, o.ecs_size);
  }
}

TEST(TkcServerTest, StartsOnEphemeralPortAndStopsIdempotently) {
  ThreadPool pool(2);
  auto live = MakeLive(&pool);
  auto server = net::TkcServer::Start(live.get());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_GT((*server)->port(), 0);
  const net::ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.connections_accepted, 0u);
  EXPECT_EQ(stats.batches_submitted, 0u);
  (*server)->Stop();
  (*server)->Stop();  // idempotent; destructor will run it a third time
}

TEST(TkcServerTest, RejectsNullEngine) {
  auto server = net::TkcServer::Start(nullptr);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
}

TEST(TkcServerTest, WireAnswersMatchDirectEngineAnswers) {
  ThreadPool pool(4);
  auto live = MakeLive(&pool);
  auto server = net::TkcServer::Start(live.get());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const std::vector<Query> queries = SomeQueries();
  const BatchResult direct = live->ServeBatch(queries);
  auto response = (*client)->Query(queries);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ExpectMatchesEngine(*response, direct);

  // Invalid inputs cross the wire as explicit statuses, same as direct.
  const std::vector<Query> invalid = {{0, {1, 4}}, {2, {9, 3}}};
  const BatchResult direct_invalid = live->ServeBatch(invalid);
  auto response_invalid = (*client)->Query(invalid);
  ASSERT_TRUE(response_invalid.ok()) << response_invalid.status().ToString();
  ExpectMatchesEngine(*response_invalid, direct_invalid);
}

TEST(TkcServerTest, PipelinedRequestsResolveInAnyWaitOrder) {
  ThreadPool pool(4);
  auto live = MakeLive(&pool);
  auto server = net::TkcServer::Start(live.get());
  ASSERT_TRUE(server.ok());
  auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  const std::vector<Query> queries = SomeQueries();
  const BatchResult direct = live->ServeBatch(queries);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = (*client)->Send(queries);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  // Wait in reverse: responses for other requests buffer client-side.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    auto response = (*client)->Wait(*it);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->request_id, *it);
    ExpectMatchesEngine(*response, direct);
  }
}

TEST(TkcServerTest, ManyConnectionsShareOneServer) {
  ThreadPool pool(4);
  auto live = MakeLive(&pool);
  auto server = net::TkcServer::Start(live.get());
  ASSERT_TRUE(server.ok());

  const std::vector<Query> queries = SomeQueries();
  const BatchResult direct = live->ServeBatch(queries);
  std::vector<std::unique_ptr<net::TkcClient>> clients;
  for (int c = 0; c < 5; ++c) {
    auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    clients.push_back(std::move(*client));
  }
  for (auto& client : clients) {
    auto response = client->Query(queries);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectMatchesEngine(*response, direct);
  }
  for (auto& client : clients) client->Close();
  (*server)->Stop();
  const net::ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.connections_accepted, 5u);
  EXPECT_EQ(stats.connections_accepted,
            stats.connections_closed + stats.connections_dropped);
  EXPECT_EQ(stats.batches_submitted, 5u);
  EXPECT_EQ(stats.batches_completed, stats.batches_submitted);
  EXPECT_EQ(stats.batches_completed,
            stats.responses_streamed + stats.responses_dropped);
  EXPECT_EQ(stats.responses_streamed, 5u);
}

TEST(TkcServerTest, StatsFrameReportsServerCounters) {
  ThreadPool pool(2);
  auto live = MakeLive(&pool);
  auto server = net::TkcServer::Start(live.get());
  ASSERT_TRUE(server.ok());
  auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  auto response = (*client)->Query(SomeQueries());
  ASSERT_TRUE(response.ok());
  auto stats = (*client)->FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->connections_accepted, 1u);
  EXPECT_EQ(stats->requests_received, 1u);
  EXPECT_EQ(stats->batches_submitted, 1u);
  EXPECT_EQ(stats->batches_completed, 1u);
  EXPECT_EQ(stats->responses_streamed, 1u);
  EXPECT_EQ(stats->stats_requests, 1u);
  EXPECT_GT(stats->frames_parsed, 0u);
  EXPECT_GT(stats->bytes_read, 0u);
  EXPECT_GT(stats->bytes_written, 0u);
  EXPECT_EQ(stats->frames_rejected, 0u);
  EXPECT_EQ(stats->errors_sent, 0u);
}

TEST(TkcServerTest, HalfCloseDrainsInFlightThenClosesCleanly) {
  ThreadPool pool(4);
  auto live = MakeLive(&pool);
  auto server = net::TkcServer::Start(live.get());
  ASSERT_TRUE(server.ok());
  auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  auto id = (*client)->Send(SomeQueries());
  ASSERT_TRUE(id.ok());
  (*client)->FinishWrites();  // server sees EOF with a batch in flight
  auto response = (*client)->Wait(*id);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->verdicts.size(), SomeQueries().size());
  // The server settles the batch, flushes, then closes its side *cleanly*
  // (connections_closed, not dropped). Poll briefly: the close lands on
  // the sweep right after the response streams.
  bool closed = false;
  for (int i = 0; i < 200 && !closed; ++i) {
    closed = (*server)->stats().connections_closed == 1;
    if (!closed) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(closed);
  (*client)->Close();
  (*server)->Stop();
  const net::ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.batches_completed, 1u);
  EXPECT_EQ(stats.responses_streamed, 1u);
  EXPECT_EQ(stats.connections_closed, 1u);
  EXPECT_EQ(stats.connections_dropped, 0u);
}

// The destroy-during-streaming regression (satellite of ISSUE 8): tear the
// server down the instant a burst of batches is in flight. Stop() must
// drain the engine's deliveries into the server's completion queue before
// retiring it — under asan, getting the order wrong is a use-after-free.
TEST(TkcServerTest, StopWhileBatchesAreStreamingIsSafe) {
  ThreadPool pool(4);
  auto live = MakeLive(&pool, /*async_queue_capacity=*/4);
  auto server = net::TkcServer::Start(live.get());
  ASSERT_TRUE(server.ok());
  auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  const std::vector<Query> queries = SomeQueries();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE((*client)->Send(queries).ok());
  }
  (*server)->Stop();  // responses may be mid-stream; none may leak or race
  const net::ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.batches_submitted, stats.batches_completed);
  EXPECT_EQ(stats.batches_completed,
            stats.responses_streamed + stats.responses_dropped);
  EXPECT_EQ(stats.connections_accepted,
            stats.connections_closed + stats.connections_dropped);
  // The engine survives its front end: direct serving still works.
  const BatchResult direct = live->ServeBatch(queries);
  EXPECT_EQ(direct.outcomes.size(), queries.size());
}

// LiveQueryEngine::Shutdown() while a server still holds the completion
// queue: Shutdown now quiesces the async path (DrainAsync), so it must be
// safe in any order relative to server teardown — and serving must stay
// available afterwards.
TEST(TkcServerTest, EngineShutdownWhileServerHoldsCompletionQueue) {
  ThreadPool pool(4);
  auto live = MakeLive(&pool);
  auto server = net::TkcServer::Start(live.get());
  ASSERT_TRUE(server.ok());
  auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  const std::vector<Query> queries = SomeQueries();
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = (*client)->Send(queries);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  live->Shutdown();  // quiesces async deliveries; server still running
  live->DrainAsync();
  live->DrainAsync();  // idempotent, callable repeatedly

  // Batches submitted before (and after) Shutdown still answer over the
  // wire: Shutdown stops the *update* path, not serving.
  for (uint64_t id : ids) {
    auto response = (*client)->Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->verdicts.size(), queries.size());
  }
  auto after = (*client)->Query(queries);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  // But updates are rejected now.
  EXPECT_EQ(live->ApplyUpdates({{1, 2, 3}}).get().code(),
            StatusCode::kFailedPrecondition);
  (*server)->Stop();
}

// Destruction-order torture: engine Shutdown, server destroyed, engine
// destroyed — with batches in flight at every step. Any delivery into a
// freed queue is an asan failure.
TEST(TkcServerTest, TeardownOrderTortureWithInflightBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 4; ++round) {
    auto live = MakeLive(&pool, /*async_queue_capacity=*/4);
    auto server_or = net::TkcServer::Start(live.get());
    ASSERT_TRUE(server_or.ok());
    std::unique_ptr<net::TkcServer> server = std::move(*server_or);
    auto client = net::TkcClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE((*client)->Send(SomeQueries()).ok());
    }
    if (round % 2 == 0) live->Shutdown();  // engine quiesce first...
    server.reset();                        // ...or server teardown first
    live.reset();
  }
}

}  // namespace
}  // namespace tkc
