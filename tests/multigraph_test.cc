// Exercises exact-duplicate temporal edges (deduplicate_exact = false):
// several edges with identical (u, v, t) must flow through every algorithm
// consistently — each duplicate is a distinct temporal edge in result sets,
// but duplicates never inflate distinct-neighbor degrees.

#include <gtest/gtest.h>

#include "core/sinks.h"
#include "core/temporal_kcore.h"
#include "datasets/generators.h"
#include "graph/window_peeler.h"
#include "otcd/otcd.h"
#include "util/rng.h"

namespace tkc {
namespace {

TemporalGraph DuplicateHeavyGraph(uint64_t seed) {
  Rng rng(seed);
  TemporalGraphBuilder b;
  b.SetDeduplicateExact(false);
  b.EnsureVertexCount(8);
  for (int i = 0; i < 60; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(8));
    VertexId v = static_cast<VertexId>(rng.NextBounded(8));
    if (u == v) continue;
    Timestamp t = 1 + static_cast<Timestamp>(rng.NextBounded(8));
    uint32_t copies = 1 + static_cast<uint32_t>(rng.NextBounded(3));
    for (uint32_t c = 0; c < copies; ++c) b.AddEdge(u, v, t);
  }
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(MultigraphTest, DuplicatesPreservedInGraph) {
  TemporalGraph g = DuplicateHeavyGraph(1);
  bool found_duplicate = false;
  for (EdgeId e = 1; e < g.num_edges() && !found_duplicate; ++e) {
    found_duplicate = g.edge(e) == g.edge(e - 1);
  }
  EXPECT_TRUE(found_duplicate) << "test graph should contain duplicates";
}

TEST(MultigraphTest, DuplicatesDoNotInflateDegrees) {
  TemporalGraphBuilder b;
  b.SetDeduplicateExact(false);
  // Triangle with every edge tripled at t=1: still exactly a 2-core.
  for (int c = 0; c < 3; ++c) {
    b.AddEdge(0, 1, 1);
    b.AddEdge(1, 2, 1);
    b.AddEdge(0, 2, 1);
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(ComputeWindowCore(*g, 3, g->FullRange()).Empty());
  WindowCore core = ComputeWindowCore(*g, 2, g->FullRange());
  EXPECT_EQ(core.edges.size(), 9u);  // all nine duplicates belong to the core
}

TEST(MultigraphTest, AllAlgorithmsAgreeOnDuplicateHeavyGraphs) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    TemporalGraph g = DuplicateHeavyGraph(seed);
    CollectingSink naive, enum_sink, base_sink, otcd_sink;
    QueryOptions naive_opts, base_opts;
    naive_opts.enum_method = EnumMethod::kNaive;
    base_opts.enum_method = EnumMethod::kEnumBase;
    ASSERT_TRUE(
        RunTemporalKCoreQuery(g, 2, g.FullRange(), &naive, naive_opts).ok());
    ASSERT_TRUE(RunTemporalKCoreQuery(g, 2, g.FullRange(), &enum_sink).ok());
    ASSERT_TRUE(
        RunTemporalKCoreQuery(g, 2, g.FullRange(), &base_sink, base_opts)
            .ok());
    ASSERT_TRUE(RunOtcd(g, 2, g.FullRange(), &otcd_sink).ok());
    naive.SortCanonically();
    enum_sink.SortCanonically();
    base_sink.SortCanonically();
    otcd_sink.SortCanonically();
    EXPECT_EQ(enum_sink.cores(), naive.cores()) << "Enum, seed " << seed;
    EXPECT_EQ(base_sink.cores(), naive.cores()) << "EnumBase, seed " << seed;
    EXPECT_EQ(otcd_sink.cores(), naive.cores()) << "OTCD, seed " << seed;
  }
}

TEST(MultigraphTest, ParallelEdgesAcrossTimestampsInCores) {
  // Pair (0,1) has edges at t=1,2,3; triangle closes only at t=2. The core
  // of [2,2] contains exactly the t=2 edges.
  TemporalGraphBuilder b;
  b.AddEdge(0, 1, 1);
  b.AddEdge(0, 1, 2);
  b.AddEdge(0, 1, 3);
  b.AddEdge(1, 2, 2);
  b.AddEdge(0, 2, 2);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  WindowCore core = ComputeWindowCore(*g, 2, Window{2, 2});
  EXPECT_EQ(core.edges.size(), 3u);
  // The wider window [1,3] core contains ALL parallel (0,1) edges.
  WindowCore wide = ComputeWindowCore(*g, 2, Window{1, 3});
  EXPECT_EQ(wide.edges.size(), 5u);
}

}  // namespace
}  // namespace tkc
