// Tests of the public one-call API: validation, stats plumbing, method
// selection, and deadline propagation.

#include "core/temporal_kcore.h"

#include <gtest/gtest.h>

#include "datasets/generators.h"

namespace tkc {
namespace {

TEST(TemporalKCoreApiTest, ValidatesK) {
  TemporalGraph g = PaperExampleGraph();
  CountingSink sink;
  Status s = RunTemporalKCoreQuery(g, 0, g.FullRange(), &sink);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TemporalKCoreApiTest, ValidatesRange) {
  TemporalGraph g = PaperExampleGraph();
  CountingSink sink;
  EXPECT_EQ(RunTemporalKCoreQuery(g, 2, Window{0, 5}, &sink).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunTemporalKCoreQuery(g, 2, Window{1, 8}, &sink).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunTemporalKCoreQuery(g, 2, Window{4, 2}, &sink).code(),
            StatusCode::kInvalidArgument);
}

TEST(TemporalKCoreApiTest, ValidatesSink) {
  TemporalGraph g = PaperExampleGraph();
  EXPECT_EQ(RunTemporalKCoreQuery(g, 2, g.FullRange(), nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(TemporalKCoreApiTest, StatsPopulated) {
  TemporalGraph g = GenerateUniformRandom(15, 100, 12, 3);
  CountingSink sink;
  QueryStats stats;
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 2, g.FullRange(), &sink, {}, &stats)
                  .ok());
  EXPECT_EQ(stats.num_cores, sink.num_cores());
  EXPECT_EQ(stats.result_size_edges, sink.result_size_edges());
  EXPECT_GT(stats.vct_size, 0u);
  EXPECT_GT(stats.ecs_size, 0u);
  EXPECT_GE(stats.total_seconds,
            stats.coretime_seconds + stats.enumeration_seconds - 1e-6);
  EXPECT_GT(stats.peak_memory_bytes, 0u);
}

TEST(TemporalKCoreApiTest, AllEnumMethodsAgree) {
  TemporalGraph g = GenerateUniformRandom(12, 80, 10, 5);
  CollectingSink a, b, c;
  QueryOptions oa, ob, oc;
  oa.enum_method = EnumMethod::kEnum;
  ob.enum_method = EnumMethod::kEnumBase;
  oc.enum_method = EnumMethod::kNaive;
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 2, g.FullRange(), &a, oa).ok());
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 2, g.FullRange(), &b, ob).ok());
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 2, g.FullRange(), &c, oc).ok());
  a.SortCanonically();
  b.SortCanonically();
  c.SortCanonically();
  EXPECT_EQ(a.cores(), c.cores());
  EXPECT_EQ(b.cores(), c.cores());
}

TEST(TemporalKCoreApiTest, NaiveVctMethodAgrees) {
  TemporalGraph g = GenerateUniformRandom(12, 80, 10, 7);
  CollectingSink fast, slow;
  QueryOptions of, os;
  of.vct_method = VctMethod::kEfficient;
  os.vct_method = VctMethod::kNaive;
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 2, g.FullRange(), &fast, of).ok());
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 2, g.FullRange(), &slow, os).ok());
  fast.SortCanonically();
  slow.SortCanonically();
  EXPECT_EQ(fast.cores(), slow.cores());
}

TEST(TemporalKCoreApiTest, DeadlinePropagates) {
  TemporalGraph g = GenerateUniformRandom(25, 300, 40, 9);
  CountingSink sink;
  QueryOptions options;
  options.deadline = Deadline::AfterSeconds(-1.0);
  Status s = RunTemporalKCoreQuery(g, 2, g.FullRange(), &sink, options);
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
}

TEST(TemporalKCoreApiTest, SubRangeQueriesWork) {
  TemporalGraph g = PaperExampleGraph();
  CountingSink sink;
  QueryStats stats;
  ASSERT_TRUE(
      RunTemporalKCoreQuery(g, 2, Window{1, 4}, &sink, {}, &stats).ok());
  EXPECT_EQ(sink.num_cores(), 2u);       // Figure 2
  EXPECT_EQ(sink.result_size_edges(), 9u);  // 6 + 3 edges
}

TEST(TemporalKCoreApiTest, MethodNames) {
  EXPECT_STREQ(EnumMethodName(EnumMethod::kEnum), "Enum");
  EXPECT_STREQ(EnumMethodName(EnumMethod::kEnumBase), "EnumBase");
  EXPECT_STREQ(EnumMethodName(EnumMethod::kNaive), "Naive");
}

TEST(TemporalKCoreApiTest, SingleTimestampRange) {
  TemporalGraph g = PaperExampleGraph();
  CountingSink sink;
  ASSERT_TRUE(RunTemporalKCoreQuery(g, 2, Window{5, 5}, &sink).ok());
  EXPECT_EQ(sink.num_cores(), 1u);  // the {v1,v6,v7} triangle at t=5
}

}  // namespace
}  // namespace tkc
