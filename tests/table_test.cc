#include "util/table.h"

#include <gtest/gtest.h>

namespace tkc {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.SetHeader({"Dataset", "Time(s)"});
  t.AddRow({"FB", "0.12"});
  t.AddRow({"WikiTalk", "34.5"});
  std::string s = t.ToString();
  // Header and both rows present, underline between.
  EXPECT_NE(s.find("Dataset"), std::string::npos);
  EXPECT_NE(s.find("WikiTalk"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Column alignment: "0.12" appears at the same column as "Time(s)".
  size_t header_col = s.find("Time(s)") - 0;
  size_t row_col = s.find("0.12");
  std::string first_line = s.substr(0, s.find('\n'));
  EXPECT_EQ(header_col % (first_line.size() + 1),
            s.rfind('\n', row_col) == std::string::npos
                ? row_col
                : row_col - s.rfind('\n', row_col) - 1);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(TextTableTest, CellFormatters) {
  EXPECT_EQ(TextTable::Cell(uint64_t{12345}), "12345");
  EXPECT_EQ(TextTable::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::CellSci(12345.0), "1.234e+04");
  EXPECT_EQ(TextTable::Cell(std::string("x")), "x");
}

TEST(TextTableTest, CellBytesHumanReadable) {
  EXPECT_EQ(TextTable::CellBytes(512), "512 B");
  EXPECT_EQ(TextTable::CellBytes(2048), "2.00 KB");
  EXPECT_EQ(TextTable::CellBytes(3ull << 30), "3.00 GB");
}

TEST(TextTableTest, EmptyTableHasHeaderOnly) {
  TextTable t;
  t.SetHeader({"only"});
  std::string s = t.ToString();
  EXPECT_EQ(s.find("only"), 0u);
}

}  // namespace
}  // namespace tkc
