// Tests of the historical (single-window) core queries answered from the
// VCT/ECS indexes against the from-scratch window peeler.

#include "vct/historical_core.h"

#include <gtest/gtest.h>

#include <vector>

#include "datasets/generators.h"
#include "graph/window_peeler.h"
#include "util/rng.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

TEST(HistoricalCoreTest, PaperExampleMembership) {
  TemporalGraph g = PaperExampleGraph();
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  // From Example 2: v1 joins the 2-core at window [1,3].
  EXPECT_FALSE(VertexInHistoricalCore(built.vct, 1, Window{1, 2}));
  EXPECT_TRUE(VertexInHistoricalCore(built.vct, 1, Window{1, 3}));
  EXPECT_TRUE(VertexInHistoricalCore(built.vct, 1, Window{1, 7}));
  // v5's core time at ts=1 is 7.
  EXPECT_FALSE(VertexInHistoricalCore(built.vct, 5, Window{1, 6}));
  EXPECT_TRUE(VertexInHistoricalCore(built.vct, 5, Window{1, 7}));
}

TEST(HistoricalCoreTest, VerticesMatchPeelerOnAllWindows) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    TemporalGraph g = GenerateUniformRandom(14, 80, 10, seed);
    VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
    for (Timestamp a = 1; a <= g.num_timestamps(); ++a) {
      for (Timestamp b = a; b <= g.num_timestamps(); ++b) {
        std::vector<bool> oracle =
            ComputeWindowCoreVertices(g, 2, Window{a, b});
        std::vector<VertexId> expected;
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          if (oracle[v]) expected.push_back(v);
        }
        EXPECT_EQ(HistoricalCoreVertices(built.vct, Window{a, b}), expected)
            << "seed " << seed << " window [" << a << "," << b << "]";
      }
    }
  }
}

TEST(HistoricalCoreTest, EdgesMatchPeelerOnSampledWindows) {
  Rng rng(5);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    TemporalGraph g = GenerateUniformRandom(12, 70, 12, seed);
    VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
    for (int i = 0; i < 30; ++i) {
      Timestamp a =
          1 + static_cast<Timestamp>(rng.NextBounded(g.num_timestamps()));
      Timestamp b =
          1 + static_cast<Timestamp>(rng.NextBounded(g.num_timestamps()));
      if (a > b) std::swap(a, b);
      WindowCore oracle = ComputeWindowCore(g, 2, Window{a, b});
      EXPECT_EQ(HistoricalCoreEdges(built.ecs, g, Window{a, b}),
                oracle.edges)
          << "seed " << seed << " window [" << a << "," << b << "]";
    }
  }
}

TEST(HistoricalCoreTest, SubRangeIndexAnswersItsWindows) {
  TemporalGraph g = GenerateUniformRandom(14, 90, 16, 11);
  Window range{4, 12};
  VctBuildResult built = BuildVctAndEcs(g, 2, range);
  for (Timestamp a = range.start; a <= range.end; ++a) {
    for (Timestamp b = a; b <= range.end; ++b) {
      std::vector<bool> oracle = ComputeWindowCoreVertices(g, 2, Window{a, b});
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        bool indexed = !built.vct.EntriesOf(v).empty() &&
                       VertexInHistoricalCore(built.vct, v, Window{a, b});
        EXPECT_EQ(indexed, static_cast<bool>(oracle[v]))
            << "v=" << v << " window [" << a << "," << b << "]";
      }
    }
  }
}

TEST(HistoricalCoreTest, EdgeMembershipAgreesWithVertexMembership) {
  TemporalGraph g = GenerateUniformRandom(12, 60, 10, 17);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  Window w{3, 8};
  for (EdgeId e = built.ecs.first_edge(); e < built.ecs.last_edge(); ++e) {
    const TemporalEdge& edge = g.edge(e);
    bool edge_in = EdgeInHistoricalCore(built.ecs, e, w);
    bool endpoints_in = edge.t >= w.start && edge.t <= w.end &&
                        VertexInHistoricalCore(built.vct, edge.u, w) &&
                        VertexInHistoricalCore(built.vct, edge.v, w);
    EXPECT_EQ(edge_in, endpoints_in) << "edge " << e;
  }
}

}  // namespace
}  // namespace tkc
