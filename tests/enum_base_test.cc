// Direct tests of Algorithm 3 (EnumBase): dedup behaviour in both modes,
// duplicate-hit accounting, the tmax^2 scan shape, and deadline handling.

#include "core/enum_base.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/sinks.h"
#include "datasets/generators.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

TEST(EnumBaseTest, BothDedupModesProduceSameCores) {
  TemporalGraph g = GenerateUniformRandom(14, 90, 12, 3);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  CollectingSink full_sink, fp_sink;
  ASSERT_TRUE(EnumerateFromEcsBase(g, built.ecs, &full_sink,
                                   EnumBaseDedup::kStoreFullCores)
                  .ok());
  ASSERT_TRUE(EnumerateFromEcsBase(g, built.ecs, &fp_sink,
                                   EnumBaseDedup::kFingerprintOnly)
                  .ok());
  full_sink.SortCanonically();
  fp_sink.SortCanonically();
  EXPECT_EQ(full_sink.cores(), fp_sink.cores());
}

TEST(EnumBaseTest, NoDuplicates) {
  TemporalGraph g = GenerateUniformRandom(12, 100, 16, 7);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  std::set<std::vector<EdgeId>> seen;
  CallbackSink sink([&](Window, std::span<const EdgeId> edges) {
    std::vector<EdgeId> sorted(edges.begin(), edges.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(seen.insert(sorted).second);
  });
  ASSERT_TRUE(EnumerateFromEcsBase(g, built.ecs, &sink).ok());
}

TEST(EnumBaseTest, StatsAccounting) {
  TemporalGraph g = GenerateUniformRandom(12, 80, 14, 9);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  CountingSink sink;
  EnumBaseStats stats;
  ASSERT_TRUE(EnumerateFromEcsBase(g, built.ecs, &sink,
                                   EnumBaseDedup::kStoreFullCores, &stats)
                  .ok());
  EXPECT_EQ(stats.num_cores, sink.num_cores());
  EXPECT_EQ(stats.result_size_edges, sink.result_size_edges());
  // The end-time sweep visits te in [ts, Te] for every ts: exactly
  // T*(T+1)/2 window scans.
  const uint64_t T = g.num_timestamps();
  EXPECT_EQ(stats.windows_scanned, T * (T + 1) / 2);
  EXPECT_GT(stats.peak_memory_bytes, 0u);
}

TEST(EnumBaseTest, DuplicateHitsOccurOnOverlappingCores) {
  // Bursty graphs re-derive the same core from many start times; the dedup
  // table must be exercised.
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_vertices = 16;
  spec.num_edges = 200;
  spec.num_timestamps = 30;
  spec.burstiness = 0.6;
  spec.burst_group = 8;
  spec.seed = 21;
  TemporalGraph g = GenerateSynthetic(spec);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  CountingSink sink;
  EnumBaseStats stats;
  ASSERT_TRUE(EnumerateFromEcsBase(g, built.ecs, &sink,
                                   EnumBaseDedup::kStoreFullCores, &stats)
                  .ok());
  if (sink.num_cores() > 0) {
    EXPECT_GT(stats.duplicate_hits, 0u)
        << "expected overlapping windows to recompute known cores";
  }
}

TEST(EnumBaseTest, ExpiredDeadlineReturnsTimeout) {
  TemporalGraph g = GenerateUniformRandom(20, 150, 25, 31);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  CountingSink sink;
  Status s = EnumerateFromEcsBase(g, built.ecs, &sink,
                                  EnumBaseDedup::kStoreFullCores, nullptr,
                                  Deadline::AfterSeconds(-1.0));
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
}

TEST(EnumBaseTest, EmptySkylineProducesNothing) {
  TemporalGraphBuilder b;
  b.AddEdge(0, 1, 1);
  b.AddEdge(2, 3, 2);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  VctBuildResult built = BuildVctAndEcs(*g, 2, g->FullRange());
  CountingSink sink;
  ASSERT_TRUE(EnumerateFromEcsBase(*g, built.ecs, &sink).ok());
  EXPECT_EQ(sink.num_cores(), 0u);
}

}  // namespace
}  // namespace tkc
