#include "graph/window_peeler.h"

#include <gtest/gtest.h>

#include <vector>

#include "datasets/generators.h"
#include "graph/core_decomposition.h"
#include "util/rng.h"

namespace tkc {
namespace {

TEST(WindowPeelerTest, PaperExampleWindow13) {
  // From Example 1: the 2-core of window [1,3] is {v1,v2,v4} with edges
  // (1,4,2),(1,2,3),(2,4,3).
  TemporalGraph g = PaperExampleGraph();
  WindowCore core = ComputeWindowCore(g, 2, Window{1, 3});
  EXPECT_TRUE(core.in_core[1]);
  EXPECT_TRUE(core.in_core[2]);
  EXPECT_TRUE(core.in_core[4]);
  EXPECT_FALSE(core.in_core[3]);
  EXPECT_FALSE(core.in_core[9]);
  EXPECT_EQ(core.edges.size(), 3u);
  EXPECT_EQ(core.tti, (Window{2, 3}));
}

TEST(WindowPeelerTest, PaperExampleWindow14) {
  TemporalGraph g = PaperExampleGraph();
  WindowCore core = ComputeWindowCore(g, 2, Window{1, 4});
  EXPECT_EQ(core.edges.size(), 6u);
  EXPECT_EQ(core.tti, (Window{1, 4}));
  for (VertexId v : {1, 2, 3, 4, 9}) EXPECT_TRUE(core.in_core[v]) << v;
}

TEST(WindowPeelerTest, EmptyWhenKTooLarge) {
  TemporalGraph g = PaperExampleGraph();
  WindowCore core = ComputeWindowCore(g, 5, g.FullRange());
  EXPECT_TRUE(core.Empty());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FALSE(core.in_core[v]);
  }
}

TEST(WindowPeelerTest, SingleTimestampWindow) {
  TemporalGraph g = PaperExampleGraph();
  // At t=5: edges (1,6),(1,7),(2,8),(6,7) — triangle {1,6,7} is the 2-core.
  WindowCore core = ComputeWindowCore(g, 2, Window{5, 5});
  EXPECT_TRUE(core.in_core[1]);
  EXPECT_TRUE(core.in_core[6]);
  EXPECT_TRUE(core.in_core[7]);
  EXPECT_FALSE(core.in_core[2]);
  EXPECT_EQ(core.edges.size(), 3u);
}

TEST(WindowPeelerTest, MultiEdgesCountOnceForDegree) {
  TemporalGraphBuilder b;
  // Vertices 0-1 heavily connected in parallel but only one neighbor each.
  for (int t = 1; t <= 8; ++t) b.AddEdge(0, 1, t);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(ComputeWindowCore(*g, 2, g->FullRange()).Empty());
  WindowCore one_core = ComputeWindowCore(*g, 1, g->FullRange());
  EXPECT_EQ(one_core.edges.size(), 8u);  // core contains all parallel edges
}

TEST(WindowPeelerTest, CoreContainsAllWindowEdgesBetweenCoreVertices) {
  TemporalGraph g = GenerateUniformRandom(12, 80, 10, 3);
  WindowCore core = ComputeWindowCore(g, 2, Window{3, 8});
  for (EdgeId e : core.edges) {
    EXPECT_GE(g.edge(e).t, 3u);
    EXPECT_LE(g.edge(e).t, 8u);
    EXPECT_TRUE(core.in_core[g.edge(e).u]);
    EXPECT_TRUE(core.in_core[g.edge(e).v]);
  }
  // Conversely, every window edge between core vertices is in the core.
  auto [lo, hi] = g.EdgeIdRangeInWindow(Window{3, 8});
  size_t expected = 0;
  for (EdgeId e = lo; e < hi; ++e) {
    if (core.in_core[g.edge(e).u] && core.in_core[g.edge(e).v]) ++expected;
  }
  EXPECT_EQ(core.edges.size(), expected);
}

// Property: minimum distinct-neighbor degree inside the core is >= k, and
// the core is maximal (consistent with core decomposition of the window).
TEST(WindowPeelerTest, RandomizedDegreeAndMaximality) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    TemporalGraph g = GenerateUniformRandom(15, 90, 12, seed);
    for (uint32_t k : {1u, 2u, 3u}) {
      Window w{2, 9};
      WindowCore core = ComputeWindowCore(g, k, w);
      // Degree check.
      SimpleProjection p = BuildSimpleProjection(g, w);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (!core.in_core[v]) continue;
        uint32_t deg = 0;
        for (VertexId nbr : p.NeighborsOf(v)) deg += core.in_core[nbr];
        EXPECT_GE(deg, k) << "seed " << seed << " k " << k << " v " << v;
      }
      // Maximality: membership == (core number in window >= k).
      CoreDecompositionResult d = DecomposeCores(g, w);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(core.in_core[v], d.core_numbers[v] >= k)
            << "seed " << seed << " k " << k << " v " << v;
      }
    }
  }
}

TEST(WindowPeelerTest, VerticesOnlyVariantAgrees) {
  TemporalGraph g = GenerateUniformRandom(15, 70, 10, 77);
  Window w{2, 8};
  WindowCore full = ComputeWindowCore(g, 2, w);
  std::vector<bool> vertices = ComputeWindowCoreVertices(g, 2, w);
  // When the core is non-empty the vertex sets agree; the full variant
  // canonicalizes the all-false case.
  if (!full.Empty()) {
    EXPECT_EQ(full.in_core, vertices);
  }
}

}  // namespace
}  // namespace tkc
