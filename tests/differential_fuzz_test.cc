// Randomized differential testing at breadth: many small random graphs of
// varied shapes, each checked Enum-vs-oracle by fingerprint over every
// (k, sub-range) combination in a grid. This is the wide net behind the
// targeted suites — any disagreement pinpoints (seed, shape, k, range).

#include <gtest/gtest.h>

#include "core/sinks.h"
#include "core/temporal_kcore.h"
#include "datasets/generators.h"
#include "otcd/otcd.h"
#include "util/rng.h"

namespace tkc {
namespace {

struct FuzzShape {
  uint32_t max_n, max_m, max_t;
};

class DifferentialFuzzTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

uint64_t FingerprintOf(EnumMethod method, const TemporalGraph& g, uint32_t k,
                       Window range) {
  FingerprintSink sink;
  QueryOptions options;
  options.enum_method = method;
  Status s = RunTemporalKCoreQuery(g, k, range, &sink, options);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return sink.digest();
}

TEST_P(DifferentialFuzzTest, EnumMatchesOracleEverywhere) {
  auto [shape_id, batch] = GetParam();
  const FuzzShape shapes[] = {{8, 30, 6}, {12, 50, 12}, {20, 70, 24},
                              {5, 40, 10}, {30, 90, 8}};
  const FuzzShape& shape = shapes[shape_id];
  // Each batch covers 5 random graphs.
  for (int i = 0; i < 5; ++i) {
    uint64_t seed = static_cast<uint64_t>(shape_id) * 1000 +
                    static_cast<uint64_t>(batch) * 10 + i + 1;
    Rng rng(seed * 7919);
    uint32_t n = 3 + static_cast<uint32_t>(rng.NextBounded(shape.max_n - 2));
    uint32_t m = 4 + static_cast<uint32_t>(rng.NextBounded(shape.max_m - 3));
    uint32_t T = 1 + static_cast<uint32_t>(rng.NextBounded(shape.max_t));
    TemporalGraph g = GenerateUniformRandom(std::max(n, 2u), m, T, seed);
    Timestamp tmax = g.num_timestamps();
    // Grid: k in {1,2,3}, ranges full/halves.
    std::vector<Window> ranges = {g.FullRange()};
    if (tmax >= 2) {
      ranges.push_back(Window{1, tmax / 2});
      ranges.push_back(Window{tmax / 2 + 1, tmax});
    }
    for (uint32_t k : {1u, 2u, 3u}) {
      for (const Window& range : ranges) {
        if (range.start > range.end) continue;
        uint64_t oracle = FingerprintOf(EnumMethod::kNaive, g, k, range);
        uint64_t enum_fp = FingerprintOf(EnumMethod::kEnum, g, k, range);
        ASSERT_EQ(enum_fp, oracle)
            << "seed=" << seed << " n=" << n << " m=" << m << " T=" << T
            << " k=" << k << " range=[" << range.start << "," << range.end
            << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, DifferentialFuzzTest,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 4)));

// A second fuzz axis: OTCD against Enum on bursty synthetic graphs (the
// workload OTCD's pruning is most exercised by).
TEST(DifferentialFuzzOtcdTest, OtcdMatchesEnumOnBurstyGraphs) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SyntheticSpec spec;
    spec.name = "fuzz";
    spec.num_vertices = 16 + static_cast<uint32_t>(seed);
    spec.num_edges = 150 + 20 * static_cast<uint32_t>(seed);
    spec.num_timestamps = 25 + 3 * static_cast<uint32_t>(seed);
    spec.burstiness = 0.4;
    spec.burst_group = 7;
    spec.burst_span = 4;
    spec.seed = seed;
    TemporalGraph g = GenerateSynthetic(spec);
    for (uint32_t k : {2u, 3u, 4u}) {
      FingerprintSink enum_sink, otcd_sink;
      QueryOptions options;
      ASSERT_TRUE(
          RunTemporalKCoreQuery(g, k, g.FullRange(), &enum_sink, options)
              .ok());
      ASSERT_TRUE(RunOtcd(g, k, g.FullRange(), &otcd_sink).ok());
      ASSERT_EQ(enum_sink.digest(), otcd_sink.digest())
          << "seed=" << seed << " k=" << k;
      ASSERT_EQ(enum_sink.num_cores(), otcd_sink.num_cores());
    }
  }
}

}  // namespace
}  // namespace tkc
