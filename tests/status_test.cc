#include "util/status.h"

#include <gtest/gtest.h>

namespace tkc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Timeout("").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimeout), "Timeout");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Timeout("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello world");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello world");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusOrTest, DeathOnValueOfError) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_DEATH({ (void)v.value(); }, "TKC_CHECK failed");
}

Status Helper(bool fail) {
  TKC_RETURN_IF_ERROR(fail ? Status::IOError("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace tkc
