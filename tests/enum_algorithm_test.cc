// Direct tests of Algorithm 5 (Enum + AS-Output): TTI exactness, per-start
// nesting structure, distinctness, the O(|R|) accounting, and deadline
// handling. Cross-algorithm equivalence lives in cross_algorithm_test.cc.

#include "core/enum_algorithm.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/sinks.h"
#include "datasets/generators.h"
#include "graph/window_peeler.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

TEST(EnumAlgorithmTest, EveryOutputTtiIsExact) {
  // The TTI reported by Enum must equal the [min,max] edge time of the core
  // AND the core must equal the peeled core of that window (Theorem 2).
  TemporalGraph g = GenerateUniformRandom(14, 90, 12, 3);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  CallbackSink sink([&](Window tti, std::span<const EdgeId> edges) {
    Timestamp lo = kInfTime, hi = 0;
    for (EdgeId e : edges) {
      lo = std::min(lo, g.edge(e).t);
      hi = std::max(hi, g.edge(e).t);
    }
    EXPECT_EQ(tti, (Window{lo, hi}));
    WindowCore core = ComputeWindowCore(g, 2, tti);
    std::vector<EdgeId> sorted(edges.begin(), edges.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(core.edges, sorted);
  });
  ASSERT_TRUE(EnumerateFromEcs(built.ecs, &sink).ok());
}

TEST(EnumAlgorithmTest, CoresSharingStartAreNested) {
  // Within one start time, AS-Output emits cores in increasing end-time
  // order, each a superset of the previous (the accumulated edge set).
  TemporalGraph g = GenerateUniformRandom(16, 120, 14, 7);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  Timestamp last_start = 0;
  std::set<EdgeId> previous;
  CallbackSink sink([&](Window tti, std::span<const EdgeId> edges) {
    std::set<EdgeId> current(edges.begin(), edges.end());
    if (tti.start == last_start) {
      for (EdgeId e : previous) {
        EXPECT_TRUE(current.count(e))
            << "core at [" << tti.start << "," << tti.end
            << "] lost edge " << e << " present in the previous core";
      }
      EXPECT_GT(current.size(), previous.size());
    }
    last_start = tti.start;
    previous = std::move(current);
  });
  ASSERT_TRUE(EnumerateFromEcs(built.ecs, &sink).ok());
}

TEST(EnumAlgorithmTest, NoDuplicateCores) {
  TemporalGraph g = GenerateUniformRandom(14, 100, 16, 11);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  std::set<std::vector<EdgeId>> seen;
  CallbackSink sink([&](Window tti, std::span<const EdgeId> edges) {
    (void)tti;
    std::vector<EdgeId> sorted(edges.begin(), edges.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(seen.insert(sorted).second) << "duplicate core emitted";
  });
  ASSERT_TRUE(EnumerateFromEcs(built.ecs, &sink).ok());
  EXPECT_FALSE(seen.empty());
}

TEST(EnumAlgorithmTest, StatsMatchSink) {
  TemporalGraph g = GenerateUniformRandom(12, 80, 10, 13);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  CountingSink sink;
  EnumStats stats;
  ASSERT_TRUE(EnumerateFromEcs(built.ecs, &sink, &stats).ok());
  EXPECT_EQ(stats.num_cores, sink.num_cores());
  EXPECT_EQ(stats.result_size_edges, sink.result_size_edges());
  EXPECT_EQ(stats.windows, built.ecs.size());
  EXPECT_EQ(stats.list_insertions, built.ecs.size());
  EXPECT_GT(stats.peak_memory_bytes, 0u);
}

TEST(EnumAlgorithmTest, EveryStartWithCoreHasMinimalWindowStart) {
  // Lemma 4: a core's TTI start coincides with some minimal core window's
  // start time.
  TemporalGraph g = GenerateUniformRandom(12, 70, 12, 17);
  VctBuildResult built = BuildVctAndEcs(g, 3, g.FullRange());
  std::set<Timestamp> window_starts;
  built.ecs.ForEachWindow(
      [&](EdgeId, const Window& w) { window_starts.insert(w.start); });
  CallbackSink sink([&](Window tti, std::span<const EdgeId>) {
    EXPECT_TRUE(window_starts.count(tti.start))
        << "core TTI starts at " << tti.start
        << " where no minimal core window starts";
  });
  ASSERT_TRUE(EnumerateFromEcs(built.ecs, &sink).ok());
}

TEST(EnumAlgorithmTest, EmptySkylineProducesNothing) {
  // A graph too sparse for k=3 anywhere.
  TemporalGraphBuilder b;
  b.AddEdge(0, 1, 1);
  b.AddEdge(1, 2, 2);
  b.AddEdge(2, 3, 3);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  VctBuildResult built = BuildVctAndEcs(*g, 3, g->FullRange());
  EXPECT_EQ(built.ecs.size(), 0u);
  CountingSink sink;
  ASSERT_TRUE(EnumerateFromEcs(built.ecs, &sink).ok());
  EXPECT_EQ(sink.num_cores(), 0u);
}

TEST(EnumAlgorithmTest, ExpiredDeadlineReturnsTimeout) {
  TemporalGraph g = GenerateUniformRandom(20, 200, 30, 19);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  CountingSink sink;
  Deadline expired = Deadline::AfterSeconds(-1.0);
  Status s = EnumerateFromEcs(built.ecs, &sink, nullptr, expired);
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
}

TEST(EnumAlgorithmTest, ResultSizeBoundInvariant) {
  // Theorem 3's accounting: the sum of |L_ts| scans equals |R|; in
  // particular |R| >= |ECS| contributions: every window is scanned at most
  // once per start it is live, and every scan lands in some emitted core
  // for starts with output. Here we verify the cheap observable: |R| >=
  // number of cores and |R| >= max core size.
  TemporalGraph g = GenerateUniformRandom(15, 110, 14, 23);
  VctBuildResult built = BuildVctAndEcs(g, 2, g.FullRange());
  CountingSink sink;
  EnumStats stats;
  ASSERT_TRUE(EnumerateFromEcs(built.ecs, &sink, &stats).ok());
  EXPECT_GE(stats.result_size_edges, stats.num_cores);
  EXPECT_GE(stats.result_size_edges, sink.max_core_edges());
}

}  // namespace
}  // namespace tkc
