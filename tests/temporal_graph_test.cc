#include "graph/temporal_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datasets/generators.h"
#include "util/rng.h"

namespace tkc {
namespace {

TemporalGraph SmallGraph() {
  TemporalGraphBuilder b;
  b.AddEdge(0, 1, 100);
  b.AddEdge(1, 2, 200);
  b.AddEdge(2, 0, 200);
  b.AddEdge(0, 1, 400);  // parallel edge, later time
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(TemporalGraphBuilderTest, EmptyGraphIsError) {
  TemporalGraphBuilder b;
  auto g = b.Build();
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(TemporalGraphBuilderTest, SelfLoopsDropped) {
  TemporalGraphBuilder b;
  b.AddEdge(3, 3, 1);
  b.AddEdge(0, 1, 1);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(TemporalGraphBuilderTest, ExactDuplicatesDedupedByDefault) {
  TemporalGraphBuilder b;
  b.AddEdge(0, 1, 5);
  b.AddEdge(1, 0, 5);  // same undirected edge, same time
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(TemporalGraphBuilderTest, ExactDuplicatesKeptWhenDisabled) {
  TemporalGraphBuilder b;
  b.SetDeduplicateExact(false);
  b.AddEdge(0, 1, 5);
  b.AddEdge(1, 0, 5);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(TemporalGraphTest, TimestampCompaction) {
  TemporalGraph g = SmallGraph();
  EXPECT_EQ(g.num_timestamps(), 3u);  // raw {100,200,400} -> {1,2,3}
  EXPECT_EQ(g.RawTimestamp(1), 100u);
  EXPECT_EQ(g.RawTimestamp(2), 200u);
  EXPECT_EQ(g.RawTimestamp(3), 400u);
}

TEST(TemporalGraphTest, CompactTimestampFloor) {
  TemporalGraph g = SmallGraph();
  EXPECT_EQ(g.CompactTimestampFloor(99), 0u);   // before all
  EXPECT_EQ(g.CompactTimestampFloor(100), 1u);  // exact
  EXPECT_EQ(g.CompactTimestampFloor(150), 1u);  // between
  EXPECT_EQ(g.CompactTimestampFloor(400), 3u);
  EXPECT_EQ(g.CompactTimestampFloor(99999), 3u);
}

TEST(TemporalGraphTest, EdgesSortedByTime) {
  TemporalGraph g = SmallGraph();
  for (EdgeId e = 1; e < g.num_edges(); ++e) {
    EXPECT_LE(g.edge(e - 1).t, g.edge(e).t);
  }
}

TEST(TemporalGraphTest, EndpointsNormalized) {
  TemporalGraph g = SmallGraph();
  for (const TemporalEdge& e : g.edges()) EXPECT_LT(e.u, e.v);
}

TEST(TemporalGraphTest, EdgesAtTime) {
  TemporalGraph g = SmallGraph();
  EXPECT_EQ(g.EdgesAtTime(1).size(), 1u);
  EXPECT_EQ(g.EdgesAtTime(2).size(), 2u);
  EXPECT_EQ(g.EdgesAtTime(3).size(), 1u);
}

TEST(TemporalGraphTest, EdgesInWindowSpans) {
  TemporalGraph g = SmallGraph();
  EXPECT_EQ(g.EdgesInWindow(Window{1, 3}).size(), 4u);
  EXPECT_EQ(g.EdgesInWindow(Window{2, 2}).size(), 2u);
  EXPECT_EQ(g.EdgesInWindow(Window{2, 3}).size(), 3u);
  EXPECT_EQ(g.EdgesInWindow(Window{4, 9}).size(), 0u);
}

TEST(TemporalGraphTest, NeighborsSortedByTime) {
  TemporalGraph g = SmallGraph();
  auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 3u);  // (1,t1), (2,t2), (1,t3)
  EXPECT_TRUE(std::is_sorted(
      n0.begin(), n0.end(),
      [](const AdjEntry& a, const AdjEntry& b) { return a.time < b.time; }));
}

TEST(TemporalGraphTest, NeighborsInWindowSlice) {
  TemporalGraph g = SmallGraph();
  auto slice = g.NeighborsInWindow(0, Window{2, 3});
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0].time, 2u);
  EXPECT_EQ(slice[1].time, 3u);
  EXPECT_EQ(g.NeighborsInWindow(0, Window{5, 9}).size(), 0u);
}

TEST(TemporalGraphTest, AdjacencyEdgeIdsConsistent) {
  TemporalGraph g = SmallGraph();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const AdjEntry& a : g.Neighbors(u)) {
      const TemporalEdge& e = g.edge(a.edge);
      EXPECT_EQ(e.t, a.time);
      EXPECT_TRUE((e.u == u && e.v == a.neighbor) ||
                  (e.v == u && e.u == a.neighbor));
    }
  }
}

TEST(TemporalGraphTest, EnsureVertexCountCreatesIsolatedVertices) {
  TemporalGraphBuilder b;
  b.AddEdge(0, 1, 1);
  b.EnsureVertexCount(10);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 10u);
  EXPECT_EQ(g->Neighbors(9).size(), 0u);
}

TEST(TemporalGraphTest, WindowIdRangesMatchSpans) {
  TemporalGraph g = GenerateUniformRandom(20, 200, 15, 7);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    Timestamp a = 1 + static_cast<Timestamp>(rng.NextBounded(15));
    Timestamp b = 1 + static_cast<Timestamp>(rng.NextBounded(15));
    if (a > b) std::swap(a, b);
    auto [lo, hi] = g.EdgeIdRangeInWindow(Window{a, b});
    auto span = g.EdgesInWindow(Window{a, b});
    EXPECT_EQ(hi - lo, span.size());
    for (EdgeId e = lo; e < hi; ++e) {
      EXPECT_GE(g.edge(e).t, a);
      EXPECT_LE(g.edge(e).t, b);
    }
    // Edges outside [lo,hi) are outside the window.
    if (lo > 0) EXPECT_LT(g.edge(lo - 1).t, a);
    if (hi < g.num_edges()) EXPECT_GT(g.edge(hi).t, b);
  }
}

TEST(TemporalGraphTest, AdjacencyCoversAllEdgesTwice) {
  TemporalGraph g = GenerateUniformRandom(15, 120, 10, 11);
  size_t total = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    total += g.Neighbors(u).size();
  }
  EXPECT_EQ(total, 2u * g.num_edges());
}

TEST(TemporalGraphTest, MemoryUsagePositive) {
  TemporalGraph g = SmallGraph();
  EXPECT_GT(g.MemoryUsageBytes(), 0u);
}

TEST(WindowTest, ContainmentHelpers) {
  Window outer{2, 8}, inner{3, 8}, same{2, 8}, disjoint{9, 10};
  EXPECT_TRUE(inner.ContainedIn(outer));
  EXPECT_TRUE(same.ContainedIn(outer));
  EXPECT_TRUE(inner.StrictlyContainedIn(outer));
  EXPECT_FALSE(same.StrictlyContainedIn(outer));
  EXPECT_FALSE(disjoint.ContainedIn(outer));
  EXPECT_EQ(outer.Length(), 7u);
  EXPECT_TRUE(outer.Valid());
  EXPECT_FALSE((Window{0, 5}).Valid());
  EXPECT_FALSE((Window{5, 4}).Valid());
}

TEST(TemporalGraphAppendTest, AppendedEdgesAreQueryable) {
  TemporalGraphBuilder builder;
  builder.AddEdge(0, 1, 100);
  builder.AddEdge(1, 2, 200);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto appended =
      g->AppendEdges(std::vector<RawTemporalEdge>{{2, 3, 300}, {0, 3, 150}});
  ASSERT_TRUE(appended.ok());
  const TemporalGraph& next = appended->graph;
  // Original untouched; new graph has both new edges and recompacted times.
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_EQ(g->num_timestamps(), 2u);
  EXPECT_EQ(next.num_edges(), 4u);
  EXPECT_EQ(next.num_timestamps(), 4u);
  EXPECT_EQ(next.num_vertices(), 4u);
  // Raw time 150 landed between 100 and 200: compacted time 2 in the new
  // graph, shifting the old time-200 edge from compact 2 to 3.
  EXPECT_EQ(next.RawTimestamp(2), 150u);
  EXPECT_EQ(next.RawTimestamp(3), 200u);
  EXPECT_EQ(next.EdgesAtTime(2).size(), 1u);
  EXPECT_EQ(next.EdgesAtTime(2)[0].v, 3u);
  // The delta describes what changed, in the new graph's coordinates.
  const EdgeDelta& delta = appended->delta;
  EXPECT_EQ(delta.edges_appended, 2u);
  EXPECT_EQ(delta.touched_vertices, (std::vector<VertexId>{0, 2, 3}));
  EXPECT_EQ(delta.min_time, 2u);  // raw 150
  EXPECT_EQ(delta.max_time, 4u);  // raw 300
  EXPECT_FALSE(delta.timestamps_preserved);  // 150 and 300 are new times
  EXPECT_FALSE(delta.vertices_preserved);    // vertex 3 is new
  // Both appended edges have an endpoint of distinct degree 1 or 2.
  EXPECT_EQ(delta.max_core_bound, 2u);
  EXPECT_FALSE(delta.empty());
}

TEST(TemporalGraphAppendTest, EmptyAppendYieldsIdenticalCopy) {
  TemporalGraph g = GenerateUniformRandom(12, 80, 9, 5);
  auto copy = g.AppendEdges({});
  ASSERT_TRUE(copy.ok());
  ASSERT_EQ(g.num_edges(), copy->graph.num_edges());
  EXPECT_EQ(g.num_vertices(), copy->graph.num_vertices());
  EXPECT_EQ(g.num_timestamps(), copy->graph.num_timestamps());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.edge(e), copy->graph.edge(e));
    EXPECT_EQ(g.RawTimestamp(g.edge(e).t),
              copy->graph.RawTimestamp(copy->graph.edge(e).t));
  }
  EXPECT_TRUE(copy->delta.empty());
  EXPECT_TRUE(copy->delta.timestamps_preserved);
  EXPECT_TRUE(copy->delta.vertices_preserved);
  EXPECT_TRUE(copy->delta.touched_vertices.empty());
}

TEST(TemporalGraphAppendTest, AppendFollowsBuilderIngestionRules) {
  TemporalGraphBuilder builder;
  builder.AddEdge(0, 1, 10);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  // Exact duplicate (against an existing edge) merges; self-loop drops;
  // orientation normalizes.
  auto appended = g->AppendEdges(
      std::vector<RawTemporalEdge>{{1, 0, 10}, {2, 2, 11}, {3, 1, 12}});
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->graph.num_edges(), 2u);
  EXPECT_EQ(appended->graph.edge(1).u, 1u);  // normalized from (3, 1)
  EXPECT_EQ(appended->graph.edge(1).v, 3u);
  // Only the (1, 3) edge survived ingestion; the delta reflects that.
  EXPECT_EQ(appended->delta.edges_appended, 1u);
  EXPECT_EQ(appended->delta.touched_vertices, (std::vector<VertexId>{1, 3}));
  EXPECT_EQ(appended->delta.max_core_bound, 1u);  // vertex 3 has degree 1
}

TEST(TemporalGraphAppendTest, AppendRejectsSentinelEndpoints) {
  TemporalGraphBuilder builder;
  builder.AddEdge(0, 1, 10);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  auto appended = g->AppendEdges(
      std::vector<RawTemporalEdge>{{kInvalidVertex, 1, 11}});
  EXPECT_FALSE(appended.ok());
  EXPECT_EQ(appended.status().code(), StatusCode::kInvalidArgument);
}

TEST(TemporalGraphAppendTest, DuplicateOnlyAppendHasEmptyDelta) {
  // Every appended edge collapses against an existing one: the new graph
  // is bit-identical and the delta proves it (the serving layer reuses
  // every index slice and cache entry off this signal).
  TemporalGraph g = GenerateUniformRandom(12, 80, 9, 5);
  std::vector<RawTemporalEdge> dupes;
  for (EdgeId e = 0; e < 5; ++e) {
    dupes.push_back({g.edge(e).u, g.edge(e).v, g.RawTimestamp(g.edge(e).t)});
  }
  dupes.push_back(dupes.front());  // in-batch duplicate too
  dupes.push_back({3, 3, 77});     // self-loop
  auto appended = g.AppendEdges(dupes);
  ASSERT_TRUE(appended.ok());
  EXPECT_TRUE(appended->delta.empty());
  EXPECT_TRUE(appended->delta.timestamps_preserved);
  EXPECT_TRUE(appended->delta.vertices_preserved);
  EXPECT_EQ(appended->graph.num_edges(), g.num_edges());
}

TEST(TemporalGraphAppendTest, ExistingTimestampAppendPreservesTimeline) {
  TemporalGraph g = GenerateUniformRandom(12, 80, 9, 5);
  // Find a pair absent at raw time 3, so the append genuinely adds an edge.
  VertexId pu = kInvalidVertex, pv = kInvalidVertex;
  for (VertexId u = 0; u < g.num_vertices() && pu == kInvalidVertex; ++u) {
    for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
      if (!g.ContainsEdge(u, v, g.RawTimestamp(3))) {
        pu = u;
        pv = v;
        break;
      }
    }
  }
  ASSERT_NE(pu, kInvalidVertex);
  auto appended =
      g.AppendEdges(std::vector<RawTemporalEdge>{{pv, pu, g.RawTimestamp(3)}});
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->delta.edges_appended, 1u);
  EXPECT_TRUE(appended->delta.timestamps_preserved);
  EXPECT_TRUE(appended->delta.vertices_preserved);
  EXPECT_EQ(appended->delta.min_time, 3u);
  EXPECT_EQ(appended->delta.max_time, 3u);
  EXPECT_TRUE(appended->graph.ContainsEdge(pu, pv, g.RawTimestamp(3)));
}

TEST(TemporalGraphAppendTest, MultigraphKeepsParallelDuplicatesAcrossAppend) {
  // A graph built with dedup off must rebuild with dedup off: its
  // pre-existing parallel duplicates survive any append untouched.
  TemporalGraphBuilder builder;
  builder.SetDeduplicateExact(false);
  builder.AddEdge(0, 1, 10);
  builder.AddEdge(0, 1, 10);  // exact duplicate, kept
  builder.AddEdge(1, 2, 20);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_edges(), 3u);
  EXPECT_FALSE(g->deduplicates_exact());
  auto copy = g->AppendEdges({});
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->graph.num_edges(), 3u);  // duplicates not collapsed
  EXPECT_FALSE(copy->graph.deduplicates_exact());
  auto more = g->AppendEdges(std::vector<RawTemporalEdge>{{1, 2, 20}});
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(more->graph.num_edges(), 4u);  // new exact duplicate also kept
  EXPECT_EQ(more->delta.edges_appended, 1u);  // and it counts in the delta
}

TEST(TemporalGraphAppendTest, ParallelEdgesDoNotInflateCoreBound) {
  // max_core_bound is a *distinct-neighbor* degree bound. On a multigraph
  // (dedup off), parallel edges — including exact duplicates — pile up
  // temporal degree without adding neighbors, and must not loosen the
  // bound the serving layer's slice-reuse proof leans on.
  TemporalGraphBuilder builder;
  builder.SetDeduplicateExact(false);
  builder.AddEdge(0, 1, 10);
  builder.AddEdge(0, 1, 20);
  builder.AddEdge(0, 1, 30);
  builder.AddEdge(1, 2, 20);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());

  // Three more parallel (0,1) edges at existing raw times: vertex 0 ends
  // with temporal degree 6 but distinct degree 1.
  auto appended = g->AppendEdges(
      std::vector<RawTemporalEdge>{{0, 1, 10}, {1, 0, 20}, {0, 1, 30}});
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->delta.edges_appended, 3u);
  EXPECT_TRUE(appended->delta.timestamps_preserved);
  EXPECT_TRUE(appended->delta.vertices_preserved);
  EXPECT_EQ(appended->graph.TemporalDegree(0), 6u);
  EXPECT_EQ(appended->delta.max_core_bound, 1u)
      << "parallel edges inflated the distinct-endpoint degree";

  // A genuinely new neighbor does move the bound: (0,2) makes both
  // endpoints distinct-degree 2.
  auto widened = g->AppendEdges(std::vector<RawTemporalEdge>{{0, 2, 20}});
  ASSERT_TRUE(widened.ok());
  EXPECT_EQ(widened->delta.max_core_bound, 2u);
}

TEST(TemporalGraphAppendTest, TimelineBoundaryAppendsReportExactExtent) {
  // Appends that touch only the first or last compacted timestamp — the
  // sentinel-adjacent rows of the time-offset table — must report the
  // exact one-point extent the suffix-maintenance proof narrows to.
  TemporalGraph g = GenerateUniformRandom(12, 80, 9, 5);
  const Timestamp last = g.num_timestamps();
  auto free_pair_at = [&](Timestamp t) -> RawTemporalEdge {
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
        if (!g.ContainsEdge(u, v, g.RawTimestamp(t))) {
          return RawTemporalEdge{u, v, g.RawTimestamp(t)};
        }
      }
    }
    ADD_FAILURE() << "no free pair at t=" << t;
    return RawTemporalEdge{};
  };

  auto at_first =
      g.AppendEdges(std::vector<RawTemporalEdge>{free_pair_at(1)});
  ASSERT_TRUE(at_first.ok());
  ASSERT_EQ(at_first->delta.edges_appended, 1u);
  EXPECT_TRUE(at_first->delta.timestamps_preserved);
  EXPECT_EQ(at_first->delta.min_time, 1u);
  EXPECT_EQ(at_first->delta.max_time, 1u);
  EXPECT_EQ(at_first->delta.TimeExtent(), (Window{1, 1}));

  auto at_last =
      g.AppendEdges(std::vector<RawTemporalEdge>{free_pair_at(last)});
  ASSERT_TRUE(at_last.ok());
  ASSERT_EQ(at_last->delta.edges_appended, 1u);
  EXPECT_TRUE(at_last->delta.timestamps_preserved);
  EXPECT_EQ(at_last->delta.TimeExtent(), (Window{last, last}));
  // The appended edge landed in the last timestamp's edge span.
  auto [lo, hi] = at_last->graph.EdgeIdRangeAtTime(last);
  EXPECT_EQ(hi - lo, g.EdgesAtTime(last).size() + 1);

  // An empty delta reports the invalid (0,0) extent.
  auto dup = g.AppendEdges(std::vector<RawTemporalEdge>{
      {g.edge(0).u, g.edge(0).v, g.RawTimestamp(g.edge(0).t)}});
  ASSERT_TRUE(dup.ok());
  ASSERT_TRUE(dup->delta.empty());
  EXPECT_FALSE(dup->delta.TimeExtent().Valid());
}

TEST(TemporalGraphAppendTest, ChainedAppendsEqualOneShotBuild) {
  // initial + batch1 + batch2 must equal building everything at once —
  // the property the live-serving differential harness replays against.
  TemporalGraph g = GenerateUniformRandom(10, 60, 8, 11);
  std::vector<RawTemporalEdge> batch1 = {{0, 5, 3}, {2, 7, 40}, {1, 9, 1}};
  std::vector<RawTemporalEdge> batch2 = {{4, 6, 40}, {0, 5, 3}};
  auto step1 = g.AppendEdges(batch1);
  ASSERT_TRUE(step1.ok());
  auto step2_or = step1->graph.AppendEdges(batch2);
  ASSERT_TRUE(step2_or.ok());
  const TemporalGraph* step2 = &step2_or->graph;

  TemporalGraphBuilder all;
  for (const TemporalEdge& e : g.edges()) {
    all.AddEdge(e.u, e.v, g.RawTimestamp(e.t));
  }
  for (const RawTemporalEdge& e : batch1) all.AddEdge(e.u, e.v, e.raw_time);
  for (const RawTemporalEdge& e : batch2) all.AddEdge(e.u, e.v, e.raw_time);
  all.EnsureVertexCount(g.num_vertices());
  auto oneshot = all.Build();
  ASSERT_TRUE(oneshot.ok());
  ASSERT_EQ(step2->num_edges(), oneshot->num_edges());
  EXPECT_EQ(step2->num_vertices(), oneshot->num_vertices());
  EXPECT_EQ(step2->num_timestamps(), oneshot->num_timestamps());
  for (EdgeId e = 0; e < step2->num_edges(); ++e) {
    EXPECT_EQ(step2->edge(e), oneshot->edge(e));
  }
}

}  // namespace
}  // namespace tkc
