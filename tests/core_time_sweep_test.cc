// Validates the decremental core-time sweep (the bootstrap of both VCT
// builders) against a from-scratch oracle: CT_ts(u) is the earliest te such
// that u is in the k-core of G[ts,te], computed by peeling every window.

#include <gtest/gtest.h>

#include <vector>

#include "datasets/generators.h"
#include "graph/window_peeler.h"
#include "util/rng.h"
#include "vct/naive_vct_builder.h"

namespace tkc {
namespace {

// Oracle: CT_ts for all vertices by direct window peeling.
std::vector<Timestamp> OracleCoreTimes(const TemporalGraph& g, uint32_t k,
                                       Timestamp ts, Timestamp te_max) {
  std::vector<Timestamp> ct(g.num_vertices(), kInfTime);
  for (Timestamp te = ts; te <= te_max; ++te) {
    std::vector<bool> in_core = ComputeWindowCoreVertices(g, k, Window{ts, te});
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (in_core[v] && ct[v] == kInfTime) ct[v] = te;
    }
  }
  return ct;
}

TEST(CoreTimeSweepTest, PaperExampleStart1) {
  TemporalGraph g = PaperExampleGraph();
  std::vector<Timestamp> ct;
  SweepScratch scratch;
  CoreTimeSweep(g, 2, 1, 7, &ct, &scratch);
  // Table I column ts=1: v1..v9 -> 3,3,4,3,7,5,5,5,4.
  EXPECT_EQ(ct[1], 3u);
  EXPECT_EQ(ct[2], 3u);
  EXPECT_EQ(ct[3], 4u);
  EXPECT_EQ(ct[4], 3u);
  EXPECT_EQ(ct[5], 7u);
  EXPECT_EQ(ct[6], 5u);
  EXPECT_EQ(ct[7], 5u);
  EXPECT_EQ(ct[8], 5u);
  EXPECT_EQ(ct[9], 4u);
}

TEST(CoreTimeSweepTest, PaperExampleStart3) {
  TemporalGraph g = PaperExampleGraph();
  std::vector<Timestamp> ct;
  SweepScratch scratch;
  CoreTimeSweep(g, 2, 3, 7, &ct, &scratch);
  // Example 2: CT_3(v1) = 5.
  EXPECT_EQ(ct[1], 5u);
  EXPECT_EQ(ct[9], kInfTime);  // v9's only support left the window
}

TEST(CoreTimeSweepTest, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    TemporalGraph g = GenerateUniformRandom(14, 70, 12, seed);
    SweepScratch scratch;
    std::vector<Timestamp> ct;
    for (uint32_t k : {1u, 2u, 3u}) {
      for (Timestamp ts = 1; ts <= g.num_timestamps(); ts += 3) {
        CoreTimeSweep(g, k, ts, g.num_timestamps(), &ct, &scratch);
        std::vector<Timestamp> oracle =
            OracleCoreTimes(g, k, ts, g.num_timestamps());
        EXPECT_EQ(ct, oracle) << "seed=" << seed << " k=" << k << " ts=" << ts;
      }
    }
  }
}

TEST(CoreTimeSweepTest, RestrictedEndTime) {
  TemporalGraph g = PaperExampleGraph();
  std::vector<Timestamp> ct;
  SweepScratch scratch;
  // Sweep limited to te_max=4: core times beyond 4 become infinity.
  CoreTimeSweep(g, 2, 1, 4, &ct, &scratch);
  EXPECT_EQ(ct[1], 3u);
  EXPECT_EQ(ct[3], 4u);
  EXPECT_EQ(ct[5], kInfTime);  // CT_1(v5)=7 > 4
}

TEST(CoreTimeSweepTest, SingleTimestampWindow) {
  TemporalGraph g = PaperExampleGraph();
  std::vector<Timestamp> ct;
  SweepScratch scratch;
  CoreTimeSweep(g, 2, 5, 5, &ct, &scratch);
  // Window [5,5]: triangle {v1,v6,v7}.
  EXPECT_EQ(ct[1], 5u);
  EXPECT_EQ(ct[6], 5u);
  EXPECT_EQ(ct[7], 5u);
  EXPECT_EQ(ct[2], kInfTime);
}

TEST(CoreTimeSweepTest, EmptyWindowAllInfinite) {
  TemporalGraphBuilder b;
  b.AddEdge(0, 1, 1);
  b.AddEdge(1, 2, 5);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  std::vector<Timestamp> ct;
  SweepScratch scratch;
  // Raw times {1,5} compact to {1,2}; sweep on [2,2] sees one edge, k=2
  // impossible.
  CoreTimeSweep(*g, 2, 2, 2, &ct, &scratch);
  for (Timestamp t : ct) EXPECT_EQ(t, kInfTime);
}

TEST(CoreTimeSweepTest, K1IsEarliestIncidentEdge) {
  // For k=1, CT_ts(u) is simply u's earliest incident edge time >= ts.
  TemporalGraph g = GenerateUniformRandom(10, 40, 8, 5);
  std::vector<Timestamp> ct;
  SweepScratch scratch;
  for (Timestamp ts = 1; ts <= g.num_timestamps(); ++ts) {
    CoreTimeSweep(g, 1, ts, g.num_timestamps(), &ct, &scratch);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      Timestamp expected = kInfTime;
      for (const AdjEntry& a : g.Neighbors(v)) {
        if (a.time >= ts) {
          expected = std::min(expected, a.time);
        }
      }
      EXPECT_EQ(ct[v], expected) << "ts=" << ts << " v=" << v;
    }
  }
}

TEST(CoreTimeSweepTest, MonotoneInStartTime) {
  TemporalGraph g = GenerateUniformRandom(16, 100, 14, 9);
  SweepScratch scratch;
  std::vector<Timestamp> prev, cur;
  CoreTimeSweep(g, 2, 1, g.num_timestamps(), &prev, &scratch);
  for (Timestamp ts = 2; ts <= g.num_timestamps(); ++ts) {
    CoreTimeSweep(g, 2, ts, g.num_timestamps(), &cur, &scratch);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_GE(cur[v], prev[v]) << "core times must not decrease with ts";
    }
    prev = cur;
  }
}

}  // namespace
}  // namespace tkc
