// Hand-constructed skylines driving Algorithm 5's linked-list machinery
// through its corner cases: equal end-time groups, windows activating
// without any window starting (Ba nonempty, Bs empty), inserts at the list
// head vs tail, and single-window skylines. Each case states the expected
// cores explicitly.

#include <gtest/gtest.h>

#include <vector>

#include "core/enum_algorithm.h"
#include "core/sinks.h"
#include "vct/ecs.h"

namespace tkc {
namespace {

// Helper: build a skyline over edges [0, n) within `range`.
EdgeCoreWindowSkyline MakeEcs(EdgeId n, Window range,
                              std::vector<std::pair<EdgeId, Window>> em) {
  return EdgeCoreWindowSkyline::FromEmissions(0, n, range, em);
}

std::vector<CoreResult> RunEnum(const EdgeCoreWindowSkyline& ecs) {
  CollectingSink sink;
  EXPECT_TRUE(EnumerateFromEcs(ecs, &sink).ok());
  sink.SortCanonically();
  return sink.cores();
}

TEST(EnumListEdgeCasesTest, SingleWindowSingleEdge) {
  auto ecs = MakeEcs(1, Window{1, 5}, {{0, Window{2, 4}}});
  auto cores = RunEnum(ecs);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0].tti, (Window{2, 4}));
  EXPECT_EQ(cores[0].edges, (std::vector<EdgeId>{0}));
}

TEST(EnumListEdgeCasesTest, EqualEndTimesEmitOnce) {
  // Three windows with the same start and end: one core with all three
  // edges (AS-Output's equal-end grouping emits only at the group's last).
  auto ecs = MakeEcs(3, Window{1, 6},
                     {{0, Window{2, 4}}, {1, Window{2, 4}}, {2, Window{2, 4}}});
  auto cores = RunEnum(ecs);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0].tti, (Window{2, 4}));
  EXPECT_EQ(cores[0].edges, (std::vector<EdgeId>{0, 1, 2}));
}

TEST(EnumListEdgeCasesTest, NestedCoresAtSameStart) {
  // Windows [1,2] and [1,5]: TTI [1,2] core {0} and TTI [1,5] core {0,1}.
  auto ecs =
      MakeEcs(2, Window{1, 5}, {{0, Window{1, 2}}, {1, Window{1, 5}}});
  auto cores = RunEnum(ecs);
  ASSERT_EQ(cores.size(), 2u);
  EXPECT_EQ(cores[0].tti, (Window{1, 2}));
  EXPECT_EQ(cores[0].edges, (std::vector<EdgeId>{0}));
  EXPECT_EQ(cores[1].tti, (Window{1, 5}));
  EXPECT_EQ(cores[1].edges, (std::vector<EdgeId>{0, 1}));
}

TEST(EnumListEdgeCasesTest, ValidFlagSuppressesEarlierEnds) {
  // Edge 0's window [2,3] ends before edge 1's [4,5] begins... within one
  // start scan: at ts=4, edge 0's window (start 2) has been deleted, so the
  // core at [4,5] contains only edge 1. At ts=2, [2,3] yields a core, and
  // scanning continues to [4,5]'s end where valid stays true -> the union
  // {0,1} with TTI [2,5] is also a core.
  auto ecs =
      MakeEcs(2, Window{1, 6}, {{0, Window{2, 3}}, {1, Window{4, 5}}});
  auto cores = RunEnum(ecs);
  ASSERT_EQ(cores.size(), 3u);
  EXPECT_EQ(cores[0].tti, (Window{2, 3}));
  EXPECT_EQ(cores[0].edges, (std::vector<EdgeId>{0}));
  EXPECT_EQ(cores[1].tti, (Window{2, 5}));
  EXPECT_EQ(cores[1].edges, (std::vector<EdgeId>{0, 1}));
  EXPECT_EQ(cores[2].tti, (Window{4, 5}));
  EXPECT_EQ(cores[2].edges, (std::vector<EdgeId>{1}));
}

TEST(EnumListEdgeCasesTest, WindowNotStartingAtScanStartIsNotATti) {
  // A single window [3,4] inside range [1,6]: starts 1 and 2 have no
  // window starting there (Bs empty -> no output, Lemma 4); only [3,4]
  // emits.
  auto ecs = MakeEcs(1, Window{1, 6}, {{0, Window{3, 4}}});
  auto cores = RunEnum(ecs);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0].tti, (Window{3, 4}));
}

TEST(EnumListEdgeCasesTest, SecondWindowActivatesAfterFirstExpires) {
  // Edge 0 has skyline [1,2], [4,6] (active from start 2). For ts=1 the
  // core is {0} at [1,2]; for ts in [2,4] the relevant window is [4,6],
  // which forms the TTI [4,6] core at ts=4.
  auto ecs =
      MakeEcs(1, Window{1, 6}, {{0, Window{1, 2}}, {0, Window{4, 6}}});
  auto cores = RunEnum(ecs);
  ASSERT_EQ(cores.size(), 2u);
  EXPECT_EQ(cores[0].tti, (Window{1, 2}));
  EXPECT_EQ(cores[1].tti, (Window{4, 6}));
}

TEST(EnumListEdgeCasesTest, InterleavedEndsAcrossEdges) {
  // Windows: e0 [1,3], e1 [2,4], e2 [3,5]. Expected TTIs:
  //   ts=1: [1,3] {e0}, [1,4] {e0,e1}, [1,5] {e0,e1,e2}
  //   ts=2: [2,4] {e1}, [2,5] {e1,e2}
  //   ts=3: [3,5] {e2}
  auto ecs = MakeEcs(3, Window{1, 5},
                     {{0, Window{1, 3}}, {1, Window{2, 4}}, {2, Window{3, 5}}});
  auto cores = RunEnum(ecs);
  ASSERT_EQ(cores.size(), 6u);
  EXPECT_EQ(cores[0].tti, (Window{1, 3}));
  EXPECT_EQ(cores[1].tti, (Window{1, 4}));
  EXPECT_EQ(cores[2].tti, (Window{1, 5}));
  EXPECT_EQ(cores[3].tti, (Window{2, 4}));
  EXPECT_EQ(cores[4].tti, (Window{2, 5}));
  EXPECT_EQ(cores[5].tti, (Window{3, 5}));
  EXPECT_EQ(cores[2].edges, (std::vector<EdgeId>{0, 1, 2}));
  EXPECT_EQ(cores[4].edges, (std::vector<EdgeId>{1, 2}));
}

TEST(EnumListEdgeCasesTest, RangeBoundaryWindows) {
  // Windows hugging both range boundaries.
  auto ecs =
      MakeEcs(2, Window{1, 4}, {{0, Window{1, 1}}, {1, Window{4, 4}}});
  auto cores = RunEnum(ecs);
  ASSERT_EQ(cores.size(), 3u);
  EXPECT_EQ(cores[0].tti, (Window{1, 1}));
  EXPECT_EQ(cores[1].tti, (Window{1, 4}));
  EXPECT_EQ(cores[2].tti, (Window{4, 4}));
}

TEST(EnumListEdgeCasesTest, StatsCountListOperations) {
  auto ecs = MakeEcs(3, Window{1, 5},
                     {{0, Window{1, 3}}, {1, Window{2, 4}}, {2, Window{3, 5}}});
  CountingSink sink;
  EnumStats stats;
  ASSERT_TRUE(EnumerateFromEcs(ecs, &sink, &stats).ok());
  EXPECT_EQ(stats.list_insertions, 3u);
  // Windows with start 1..3 are deleted as the scan passes starts 2..4.
  EXPECT_EQ(stats.list_deletions, 3u);
  EXPECT_EQ(stats.num_cores, 6u);
  EXPECT_EQ(stats.result_size_edges, 1u + 2 + 3 + 1 + 2 + 1);
}

}  // namespace
}  // namespace tkc
