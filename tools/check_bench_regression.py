#!/usr/bin/env python3
"""Compare emitted BENCH_*.json files against committed baselines.

The perf-tracking benchmarks (bench_phc_parallel, bench_serve_throughput)
write flat JSON record arrays. This tool matches records between a baseline
and a current run by identity fields and fails (exit 1) when a timing metric
regresses beyond the threshold:

  * lower-is-better metrics (default: seconds) fail when
      current > baseline * threshold;
  * higher-is-better metrics (default: qps, speedup) fail when
      current < baseline / threshold;
  * a record with "identical": false in the current run always fails — the
    benchmarks self-verify bit-identity against their serial reference;
  * any non-finite numeric value (NaN / Infinity) anywhere in the current
    run always fails — a NaN metric compares false against every
    threshold, which would silently defeat the gate.

Records only present on one side are reported as warnings, never failures,
so benches can grow new configurations without breaking the gate.

Usage:
  tools/check_bench_regression.py \
      --baseline bench/baselines/BENCH_phc_parallel.json \
      --current build/BENCH_phc_parallel.json [--threshold 1.25] \
      [--key bench,mode,threads] [--lower seconds] [--higher qps,speedup]

  tools/check_bench_regression.py --update --baseline B --current C
      copies the current file over the baseline (refreshing it after an
      accepted perf change).
"""

import argparse
import json
import math
import shutil
import sys


def load_records(path):
    with open(path, "r", encoding="utf-8") as f:
        # parse_constant catches the NaN/Infinity/-Infinity literals that
        # Python's json module would otherwise happily read as floats.
        bad_constants = []
        records = json.load(f, parse_constant=lambda c: bad_constants.append(c))
        if bad_constants:
            raise ValueError(
                f"{path}: non-finite JSON constants {sorted(set(bad_constants))}"
                f" — a benchmark emitted NaN/Infinity"
            )
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    return records


def non_finite_failures(records, path, key_fields):
    """Every non-finite numeric field in `records`, as failure strings.

    A NaN metric compares false against every threshold, so without this
    check it would silently pass the gate.
    """
    failures = []
    for record in records:
        for field, value in record.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)) and not math.isfinite(value):
                failures.append(
                    f"{path}: {fmt_key(key_fields, record_key(record, key_fields))}: "
                    f"non-finite metric {field}={value}"
                )
    return failures


def record_key(record, key_fields):
    return tuple(str(record.get(field)) for field in key_fields)


def index_records(records, key_fields, path):
    indexed = {}
    for record in records:
        key = record_key(record, key_fields)
        if key in indexed:
            raise ValueError(
                f"{path}: duplicate record for key {key}; "
                f"pass a more specific --key"
            )
        indexed[key] = record
    return indexed


def fmt_key(key_fields, key):
    return " ".join(f"{f}={v}" for f, v in zip(key_fields, key))


def fmt_delta(baseline_value, current_value):
    """Signed percent change of current vs baseline, e.g. '+12.3%'."""
    if baseline_value == 0:
        return "n/a"
    pct = (current_value - baseline_value) / abs(baseline_value) * 100.0
    return f"{pct:+.1f}%"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="allowed slowdown factor (default 1.25 = fail on >25%%)",
    )
    parser.add_argument(
        "--key",
        default="bench,mode,threads",
        help="comma-separated identity fields (default bench,mode,threads)",
    )
    parser.add_argument(
        "--lower",
        default="seconds",
        help="comma-separated lower-is-better metrics (default seconds)",
    )
    parser.add_argument(
        "--higher",
        default="qps,speedup",
        help="comma-separated higher-is-better metrics (default qps,speedup)",
    )
    parser.add_argument(
        "--only",
        default="",
        help="comma-separated field=value filters; gate only records "
        "matching all of them (e.g. --only mode=mixed). Other records "
        "stay in the report files but are not compared.",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy --current over --baseline and exit",
    )
    args = parser.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"updated {args.baseline} from {args.current}")
        return 0

    key_fields = [f for f in args.key.split(",") if f]
    lower_metrics = [m for m in args.lower.split(",") if m]
    higher_metrics = [m for m in args.higher.split(",") if m]
    only = dict(f.split("=", 1) for f in args.only.split(",") if f)

    def selected(record):
        return all(str(record.get(f)) == v for f, v in only.items())

    try:
        baseline_records = load_records(args.baseline)
        current_records = load_records(args.current)
    except json.JSONDecodeError as e:
        # Must precede ValueError (its base class): e.g. glibc renders NaN
        # as bare "nan", which is not JSON at all.
        print(f"error: malformed bench JSON (non-finite value?): {e}")
        return 1
    except ValueError as e:
        print(f"error: {e}")
        return 1
    baseline = index_records(
        [r for r in baseline_records if selected(r)], key_fields,
        args.baseline)
    current = index_records(
        [r for r in current_records if selected(r)], key_fields,
        args.current)

    failures = []
    failures += non_finite_failures(baseline_records, args.baseline,
                                    key_fields)
    failures += non_finite_failures(current_records, args.current, key_fields)
    compared = 0
    for key, cur in current.items():
        if cur.get("identical") is False:
            failures.append(
                f"{fmt_key(key_fields, key)}: identical=false — the "
                f"benchmark's own bit-identity check failed"
            )
        base = baseline.get(key)
        if base is None:
            print(f"note: new record (no baseline): {fmt_key(key_fields, key)}")
            continue
        for metric in lower_metrics:
            if metric not in base or metric not in cur:
                continue
            b, c = float(base[metric]), float(cur[metric])
            compared += 1
            verdict = "ok"
            if b > 0 and c > b * args.threshold:
                verdict = "REGRESSION"
                failures.append(
                    f"{fmt_key(key_fields, key)}: {metric} {c:.6g} vs "
                    f"baseline {b:.6g} (> {args.threshold:.2f}x)"
                )
            print(
                f"{fmt_key(key_fields, key)}: {metric} "
                f"{b:.6g} -> {c:.6g} ({fmt_delta(b, c)}) [{verdict}]"
            )
        for metric in higher_metrics:
            if metric not in base or metric not in cur:
                continue
            b, c = float(base[metric]), float(cur[metric])
            compared += 1
            verdict = "ok"
            if b > 0 and c < b / args.threshold:
                verdict = "REGRESSION"
                failures.append(
                    f"{fmt_key(key_fields, key)}: {metric} {c:.6g} vs "
                    f"baseline {b:.6g} (< 1/{args.threshold:.2f}x)"
                )
            print(
                f"{fmt_key(key_fields, key)}: {metric} "
                f"{b:.6g} -> {c:.6g} ({fmt_delta(b, c)}) [{verdict}]"
            )
    for key in baseline:
        if key not in current:
            print(f"warning: baseline record missing from current run: "
                  f"{fmt_key(key_fields, key)}")

    if compared == 0:
        print("error: no overlapping metrics compared — wrong files?")
        return 1
    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.threshold:.2f}x:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nall {compared} metric comparisons within "
          f"{args.threshold:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
