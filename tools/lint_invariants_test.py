#!/usr/bin/env python3
"""Unit tests for tools/lint_invariants.py: one passing and one failing
fixture per rule, run against a synthetic source tree so the test never
depends on the real repo's contents."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_invariants  # noqa: E402


class LintInvariantsTest(unittest.TestCase):
    def lint(self, rel_path, content):
        """Writes one file into a temp tree and returns its violations as
        (rule, line) pairs."""
        with tempfile.TemporaryDirectory() as root:
            path = os.path.join(root, rel_path)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
            violations = []
            lint_invariants.check_file(path, rel_path, violations)
            return [(rule, line) for (_, line, rule, _) in violations]

    def rules(self, rel_path, content):
        return {rule for (rule, _) in self.lint(rel_path, content)}

    # --- mutex-types --------------------------------------------------------

    def test_std_mutex_banned_outside_util_mutex(self):
        self.assertIn("mutex-types",
                      self.rules("serve/foo.h", "std::mutex mu_;\n"))

    def test_std_lock_guard_banned(self):
        self.assertIn(
            "mutex-types",
            self.rules("serve/foo.cc",
                       "void F() { std::lock_guard<std::mutex> l(mu_); }\n"))

    def test_util_mutex_h_may_use_std_mutex(self):
        self.assertEqual(set(),
                         self.rules("util/mutex.h", "std::mutex mu_;\n"))

    def test_std_mutex_in_comment_is_fine(self):
        self.assertEqual(
            set(), self.rules("serve/foo.h", "// not std::mutex anymore\n"))

    # --- mutex-annotated ----------------------------------------------------

    def test_unreferenced_mutex_member_flagged(self):
        self.assertIn("mutex-annotated",
                      self.rules("serve/foo.h", "mutable Mutex mu_;\n"))

    def test_guarded_by_reference_satisfies(self):
        src = "mutable Mutex mu_;\nint x_ TKC_GUARDED_BY(mu_);\n"
        self.assertEqual(set(), self.rules("serve/foo.h", src))

    def test_excludes_reference_satisfies(self):
        src = "void F() TKC_EXCLUDES(mu_);\nMutex mu_;\n"
        self.assertEqual(set(), self.rules("serve/foo.h", src))

    def test_waiver_comment_satisfies(self):
        src = ("// lint: standalone-mutex(mu_): guards an external "
               "resource, not a member\nMutex mu_;\n")
        self.assertEqual(set(), self.rules("serve/foo.h", src))

    def test_waiver_for_other_name_does_not_satisfy(self):
        src = "// lint: standalone-mutex(other_): reason\nMutex mu_;\n"
        self.assertIn("mutex-annotated", self.rules("serve/foo.h", src))

    # --- nodiscard ----------------------------------------------------------

    def test_status_decl_without_nodiscard_flagged(self):
        self.assertIn("nodiscard",
                      self.rules("vct/foo.h", "Status Save(int x);\n"))

    def test_statusor_decl_without_nodiscard_flagged(self):
        self.assertIn(
            "nodiscard",
            self.rules("vct/foo.h", "StatusOr<Index> Load(int x);\n"))

    def test_nodiscard_decl_passes(self):
        self.assertEqual(
            set(),
            self.rules("vct/foo.h", "[[nodiscard]] Status Save(int x);\n"))

    def test_cc_files_not_checked_for_nodiscard(self):
        # Definitions repeat the header's declaration; the attribute lives
        # on the declaration only.
        self.assertEqual(set(),
                         self.rules("vct/foo.cc", "Status Save(int x) {\n"))

    def test_status_h_exempt(self):
        self.assertEqual(
            set(), self.rules("util/status.h", "Status ToStatus(int x);\n"))

    # --- sleep-for ----------------------------------------------------------

    def test_sleep_for_banned_outside_util(self):
        src = "void F() { std::this_thread::sleep_for(ms); }\n"
        self.assertIn("sleep-for", self.rules("serve/foo.cc", src))

    def test_sleep_for_allowed_in_util(self):
        src = "void F() { std::this_thread::sleep_for(ms); }\n"
        self.assertEqual(set(), self.rules("util/foo.cc", src))

    # --- relaxed-comment ----------------------------------------------------

    def test_uncommented_relaxed_flagged(self):
        src = "x.load(std::memory_order_relaxed);\n"
        self.assertIn("relaxed-comment", self.rules("serve/foo.cc", src))

    def test_same_line_comment_satisfies(self):
        src = "x.load(std::memory_order_relaxed);  // Relaxed: hint only\n"
        self.assertEqual(set(), self.rules("serve/foo.cc", src))

    def test_preceding_comment_within_window_satisfies(self):
        src = ("// Relaxed: monotone counter, no ordering promised.\n"
               "x.fetch_add(1, std::memory_order_relaxed);\n")
        self.assertEqual(set(), self.rules("serve/foo.cc", src))

    def test_comment_outside_window_does_not_satisfy(self):
        src = ("// Relaxed: too far away.\n" + "int a;\n" * 5 +
               "x.load(std::memory_order_relaxed);\n")
        self.assertIn("relaxed-comment", self.rules("serve/foo.cc", src))

    # --- reporting ----------------------------------------------------------

    def test_violation_carries_line_number(self):
        src = "int a;\nstd::mutex mu_;\n"
        self.assertIn(("mutex-types", 2), self.lint("serve/foo.h", src))


if __name__ == "__main__":
    unittest.main()
