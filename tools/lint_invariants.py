#!/usr/bin/env python3
"""Repo-invariant linter: concurrency and error-handling rules that the
compiler alone does not enforce (and that clang's thread-safety analysis
assumes as preconditions).

Rules, each with its rationale:

  mutex-types      src/ outside util/mutex.h must not name std::mutex,
                   std::condition_variable(_any), std::lock_guard,
                   std::unique_lock, std::scoped_lock, or std::shared_mutex.
                   Thread-safety analysis only sees annotated capability
                   types; a raw std::mutex member is invisible to it, so
                   every lock must go through tkc::Mutex / tkc::MutexLock /
                   tkc::CondVar (util/mutex.h is their one implementation
                   site).

  mutex-annotated  Every `Mutex` member declared in a src/ header or .cc
                   must be referenced by at least one TKC_* annotation in
                   the same file (GUARDED_BY / REQUIRES / ACQUIRE / ...),
                   or carry an explicit waiver comment on an adjacent line:
                       // lint: standalone-mutex(<member>): <reason>
                   An unreferenced mutex guards nothing the analysis can
                   check — it is either dead or hiding an unstated
                   protocol.

  nodiscard        Every free-function declaration in a src/ header whose
                   return type is Status or StatusOr<...> must be marked
                   [[nodiscard]] (util/status.h itself is exempt: the
                   classes carry a class-level [[nodiscard]], and the
                   header declares Status-returning members/factories whose
                   discard already warns through the class attribute).

  sleep-for        std::this_thread::sleep_for is banned in src/ outside
                   src/util/: a sleep in product code is either a latency
                   bug or an unsynchronized wait. Injected stalls go
                   through FaultStallIfArmed (util/fault_injection.h);
                   genuine timed waits go through CondVar::WaitUntil.

  relaxed-comment  Every memory_order_relaxed use in src/ must carry a
                   justifying comment containing the word "relaxed" on the
                   same line or within the 4 preceding lines. Relaxed
                   atomics are correct only under an argument the type
                   system cannot see; the argument must live next to the
                   code.

Exit status: 0 when clean, 1 with one `file:line: [rule] message` per
violation otherwise.
"""

import argparse
import os
import re
import sys

MUTEX_IMPL = os.path.join("util", "mutex.h")

BANNED_SYNC = re.compile(
    r"std::(mutex|condition_variable(_any)?|lock_guard|unique_lock"
    r"|scoped_lock|shared_mutex|shared_lock)\b"
)
MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:tkc::)?Mutex\s+(\w+)\s*;"
)
WAIVER = re.compile(r"//\s*lint:\s*standalone-mutex\((\w+)\)\s*:\s*\S")
TKC_ANNOTATION = re.compile(r"TKC_[A-Z_]+\(([^)]*)\)")
STATUS_DECL = re.compile(
    r"^(?:(?P<attrs>(?:\[\[[^\]]*\]\]\s*)+))?"
    r"(?:static\s+|inline\s+|friend\s+|constexpr\s+)*"
    r"(?:tkc::)?Status(?:Or<.*>)?\s+\w+\s*\("
)
SLEEP_FOR = re.compile(r"sleep_for\s*\(")
RELAXED = re.compile(r"memory_order_relaxed")
RELAXED_COMMENT = re.compile(r"//.*relaxed", re.IGNORECASE)
RELAXED_WINDOW = 4


def strip_comments_keep_lines(text):
    """Blanks out // and /* */ comment bodies (and string literals), keeping
    line structure, so code patterns never match inside prose."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        if state == "code":
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state in ("line", "block"):
            if state == "line" and c == "\n":
                state = "code"
                out.append(c)
            elif state == "block" and c == "*" and i + 1 < n and \
                    text[i + 1] == "/":
                state = "code"
                out.append("  ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(c if c != "\n" else "\n")
        elif state == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def check_file(path, rel, violations):
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    raw_lines = raw.splitlines()
    code = strip_comments_keep_lines(raw)
    code_lines = code.splitlines()

    in_mutex_impl = rel.replace(os.sep, "/").endswith("util/mutex.h")
    in_util = rel.replace(os.sep, "/").startswith("util/")
    is_header = rel.endswith(".h")
    is_status_h = rel.replace(os.sep, "/").endswith("util/status.h")

    # mutex-types
    if not in_mutex_impl:
        for lineno, line in enumerate(code_lines, 1):
            m = BANNED_SYNC.search(line)
            if m:
                violations.append(
                    (rel, lineno, "mutex-types",
                     f"{m.group(0)} is banned outside util/mutex.h; use "
                     "tkc::Mutex / tkc::MutexLock / tkc::CondVar"))

    # mutex-annotated
    if not in_mutex_impl:
        annotated = set()
        for line in code_lines:
            for m in TKC_ANNOTATION.finditer(line):
                for arg in m.group(1).split(","):
                    annotated.add(arg.strip().lstrip("!&*").split("->")[-1]
                                  .split(".")[-1])
        for lineno, line in enumerate(code_lines, 1):
            m = MUTEX_MEMBER.match(line)
            if not m:
                continue
            name = m.group(1)
            if name in annotated:
                continue
            nearby = raw_lines[max(0, lineno - 2):lineno + 1]
            waived = any(
                (w := WAIVER.search(l)) and w.group(1) == name
                for l in nearby)
            if not waived:
                violations.append(
                    (rel, lineno, "mutex-annotated",
                     f"Mutex member '{name}' is referenced by no TKC_* "
                     "annotation in this file; annotate what it guards or "
                     f"waive with '// lint: standalone-mutex({name}): "
                     "<reason>'"))

    # nodiscard (headers only; util/status.h exempt — class-level attribute)
    if is_header and not is_status_h:
        for lineno, line in enumerate(code_lines, 1):
            m = STATUS_DECL.match(line)
            if m and (m.group("attrs") is None
                      or "nodiscard" not in m.group("attrs")):
                violations.append(
                    (rel, lineno, "nodiscard",
                     "Status/StatusOr-returning declaration without "
                     "[[nodiscard]]"))

    # sleep-for
    if not in_util:
        for lineno, line in enumerate(code_lines, 1):
            if SLEEP_FOR.search(line):
                violations.append(
                    (rel, lineno, "sleep-for",
                     "sleep_for outside src/util/; use FaultStallIfArmed "
                     "or CondVar::WaitUntil"))

    # relaxed-comment
    for lineno, line in enumerate(code_lines, 1):
        if not RELAXED.search(line):
            continue
        window = raw_lines[max(0, lineno - 1 - RELAXED_WINDOW):lineno]
        if not any(RELAXED_COMMENT.search(l) for l in window):
            violations.append(
                (rel, lineno, "relaxed-comment",
                 "memory_order_relaxed without a justifying comment "
                 "containing 'relaxed' on this line or the 4 preceding "
                 "lines"))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="source root to lint (default: <repo>/src)")
    args = parser.parse_args()

    root = args.root
    if root is None:
        root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src")
    root = os.path.abspath(root)

    violations = []
    for dirpath, _, filenames in sorted(os.walk(root)):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            check_file(path, rel, violations)

    for rel, lineno, rule, message in violations:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint_invariants: clean ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
