// Serving throughput of the QueryEngine (serve/query_engine.h): builds one
// synthetic graph, generates a repeated-query workload, and serves it
// through an engine at 1/2/8 threads, reporting queries/sec — on stdout as
// a table and as machine-readable JSON (default BENCH_serve_throughput.json)
// so future PRs can track the serving-layer perf trajectory alongside
// BENCH_phc_parallel.json.
//
// Two passes per thread count. The workload is `--repeat` batches of the
// same `--unique` distinct queries, each batch submitted as its own
// ServeBatch call (so repeats across batches hit the LRU rather than
// collapsing into in-batch duplicates):
//   * mixed — fresh cache: the first batch executes, later batches hit the
//     LRU (the "repeated-query workload" the engine's memo exists for);
//   * warm  — pure cache-hit throughput, measured over as many extra
//     passes as it takes to accumulate ~20ms so the timing is meaningful.
// Every outcome is verified bit-identical (result fields) to a serial
// RunAlgorithm reference; any mismatch fails the run.
//
// Flags (env fallbacks TKC_<UPPER>): --vertices --edges --timestamps --seed
// --unique (distinct queries) --repeat (stream repetitions) --reps
// (best-of) --threads=N (adds one thread count) --algo=enum|enumbase --out.
// --smoke / TKC_BENCH_SMOKE=1 shrinks everything to CI scale.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/generators.h"
#include "serve/query_engine.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tkc {
namespace {

bool SameResults(const RunOutcome& a, const RunOutcome& b) {
  return a.status.ok() == b.status.ok() && a.num_cores == b.num_cores &&
         a.result_size_edges == b.result_size_edges &&
         a.vct_size == b.vct_size && a.ecs_size == b.ecs_size;
}

}  // namespace
}  // namespace tkc

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;

  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "flag error: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  const bool smoke = SmokeModeRequested(flags);
  // Smoke sizes keep per-query work well above scheduler noise so the
  // thread-scaling figures stay meaningful even on small CI runners.
  const uint32_t vertices =
      static_cast<uint32_t>(flags.GetInt("vertices", smoke ? 160 : 200));
  const uint32_t edges =
      static_cast<uint32_t>(flags.GetInt("edges", smoke ? 4500 : 8000));
  const uint32_t timestamps =
      static_cast<uint32_t>(flags.GetInt("timestamps", smoke ? 64 : 96));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  // Batches must be large enough to amortize the pool's per-fan-out wakeup
  // cost, or 1-core runners report scheduling noise as (anti-)scaling.
  const uint32_t unique =
      static_cast<uint32_t>(flags.GetInt("unique", smoke ? 32 : 48));
  const uint32_t repeat =
      static_cast<uint32_t>(flags.GetInt("repeat", smoke ? 2 : 3));
  const int reps = static_cast<int>(flags.GetInt("reps", smoke ? 1 : 3));
  const std::string algo = flags.GetString("algo", "enum");
  const std::string out_path =
      flags.GetString("out", "BENCH_serve_throughput.json");
  const AlgorithmKind kind =
      algo == "enumbase" ? AlgorithmKind::kEnumBase : AlgorithmKind::kEnum;

  // Bursty synthetic graph (same generator family as the registry
  // datasets): bursts concentrate edges in time, so query windows actually
  // contain temporal k-cores at the paper's operating points.
  SyntheticSpec graph_spec;
  graph_spec.name = "serve";
  graph_spec.num_vertices = vertices;
  graph_spec.num_edges = edges;
  graph_spec.num_timestamps = timestamps;
  graph_spec.burstiness = 0.3;
  graph_spec.seed = seed;
  TemporalGraph g = GenerateSynthetic(graph_spec);
  GraphStats stats = ComputeGraphStats(g);

  // Distinct queries at two (k, range) operating points for variety; the
  // submission stream cycles through them `repeat` times, so an engine
  // cache of >= `unique` entries turns every repeat into a hit.
  std::vector<Query> uniques;
  const std::pair<double, double> operating_points[] = {
      {0.30, 0.10}, {0.20, 0.10}, {0.20, 0.05}, {0.30, 0.20}};
  int point = 0;
  for (const auto& [kf, rf] : operating_points) {
    if (uniques.size() >= unique) break;
    WorkloadSpec spec;
    spec.k_fraction = kf;
    spec.range_fraction = rf;
    spec.num_queries = (unique + 1) / 2;
    spec.seed = seed + point++;
    auto queries = GenerateQueries(g, stats.kmax, spec);
    if (!queries.ok()) continue;  // tiny graphs lack some operating points
    for (const Query& q : *queries) {
      if (uniques.size() < unique) uniques.push_back(q);
    }
  }
  if (uniques.empty()) {
    std::fprintf(stderr, "workload: no core-containing query ranges found\n");
    return 1;
  }
  const size_t stream_size = static_cast<size_t>(uniques.size()) * repeat;

  // Serial reference for the bit-identity check.
  std::vector<RunOutcome> reference;
  reference.reserve(uniques.size());
  for (const Query& q : uniques) {
    reference.push_back(RunAlgorithm(kind, g, q));
    if (!reference.back().status.ok()) {
      std::fprintf(stderr, "reference run failed: %s\n",
                   reference.back().status.ToString().c_str());
      return 1;
    }
  }

  std::printf(
      "=== Serve throughput: %u vertices, %u edges, %u timestamps, kmax=%u; "
      "%zu unique queries x%u batches (stream of %zu), %s, best of %d ===\n",
      vertices, edges, timestamps, stats.kmax, uniques.size(), repeat,
      stream_size, AlgorithmName(kind), reps);

  // Thread sweep: the issue's 1/2/8 plus any --threads value.
  std::vector<int> thread_counts = {1, 2, 8};
  if (flags.Has("threads")) {
    thread_counts.push_back(
        std::max(1, static_cast<int>(flags.GetInt("threads", 1))));
  }
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  TextTable table;
  table.SetHeader({"Threads", "mixed q/s", "warm q/s", "mixed speedup",
                   "identical"});
  JsonRecords records;
  bool all_identical = true;
  double mixed_qps_1thread = 0;
  double warm_qps_1thread = 0;
  double mixed_qps_last = 0;

  for (int threads : thread_counts) {
    ThreadPool pool(threads);
    QueryEngineOptions options;
    options.algorithm = kind;
    options.pool = &pool;
    options.cache_capacity = 2 * stream_size;
    options.build_index = true;
    auto engine = QueryEngine::Create(g, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
      return 1;
    }

    double best_mixed = -1;
    double best_warm = -1;
    bool identical = true;
    for (int r = 0; r < reps; ++r) {
      // Mixed pass: batch 1 executes every distinct query; batches 2..R
      // are answered from the LRU. One ServeBatch call per batch, so the
      // repeats exercise the cache rather than in-batch dedup.
      engine->ClearCache();
      WallTimer timer;
      for (uint32_t b = 0; b < repeat; ++b) {
        std::vector<RunOutcome> batch = engine->ServeBatch(uniques);
        for (size_t i = 0; i < batch.size(); ++i) {
          identical = identical && SameResults(reference[i], batch[i]);
        }
      }
      double mixed_seconds = timer.ElapsedSeconds();
      if (best_mixed < 0 || mixed_seconds < best_mixed)
        best_mixed = mixed_seconds;

      // Warm pass: pure cache hits; loop until ~20ms accumulate so the
      // per-pass time is measurable rather than timer noise.
      timer.Restart();
      size_t warm_passes = 0;
      double warm_elapsed = 0;
      do {
        std::vector<RunOutcome> warm = engine->ServeBatch(uniques);
        for (size_t i = 0; i < warm.size(); ++i) {
          identical = identical && SameResults(reference[i], warm[i]);
        }
        ++warm_passes;
        warm_elapsed = timer.ElapsedSeconds();
      } while (warm_elapsed < 0.02 && warm_passes < 4096);
      double warm_seconds = warm_elapsed / static_cast<double>(warm_passes);
      if (best_warm < 0 || warm_seconds < best_warm) best_warm = warm_seconds;
    }
    all_identical = all_identical && identical;

    double mixed_qps =
        best_mixed > 0 ? static_cast<double>(stream_size) / best_mixed : 0;
    double warm_qps =
        best_warm > 0 ? static_cast<double>(uniques.size()) / best_warm : 0;
    if (threads == 1) {
      mixed_qps_1thread = mixed_qps;
      warm_qps_1thread = warm_qps;
    }
    mixed_qps_last = mixed_qps;
    double mixed_speedup =
        mixed_qps_1thread > 0 ? mixed_qps / mixed_qps_1thread : 0;
    double warm_speedup =
        warm_qps_1thread > 0 ? warm_qps / warm_qps_1thread : 0;

    char speedup_cell[32];
    std::snprintf(speedup_cell, sizeof(speedup_cell), "%.2fx",
                  mixed_speedup);
    table.AddRow({TextTable::Cell(static_cast<uint64_t>(threads)),
                  TextTable::Cell(mixed_qps, 1), TextTable::Cell(warm_qps, 1),
                  speedup_cell, identical ? "yes" : "NO"});

    for (int mode = 0; mode < 2; ++mode) {
      records.BeginRecord();
      records.Add("bench", std::string("serve_throughput"));
      records.Add("mode", std::string(mode == 0 ? "mixed" : "warm"));
      records.Add("algo", std::string(AlgorithmName(kind)));
      records.Add("vertices", static_cast<uint64_t>(vertices));
      records.Add("edges", static_cast<uint64_t>(edges));
      records.Add("timestamps", static_cast<uint64_t>(timestamps));
      records.Add("unique_queries", static_cast<uint64_t>(uniques.size()));
      records.Add("stream_size", static_cast<uint64_t>(stream_size));
      records.Add("threads", threads);
      records.Add("seconds", mode == 0 ? best_mixed : best_warm);
      records.Add("qps", mode == 0 ? mixed_qps : warm_qps);
      records.Add("speedup", mode == 0 ? mixed_speedup : warm_speedup);
      records.Add("identical", identical);
    }
  }
  table.Print();
  if (mixed_qps_1thread > 0) {
    std::printf("\nscaling (mixed, 1 -> %d threads): %.2fx\n",
                thread_counts.back(), mixed_qps_last / mixed_qps_1thread);
  }
  if (records.WriteFile(out_path)) {
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "ERROR: a served outcome differed from the serial runner\n");
    return 1;
  }
  return 0;
}
