// Google-benchmark microbenchmarks of the library's building blocks:
// graph construction, static peeling, the core-time sweep, the efficient
// VCT/ECS builder, the Enum linked-list enumeration, and the baselines.
// These quantify the per-phase costs behind the figure-level results and
// serve as ablations for DESIGN.md's design choices (fixpoint advance vs
// per-start sweeps; Enum vs EnumBase given identical skylines).

#include <benchmark/benchmark.h>

#include "core/enum_algorithm.h"
#include "core/enum_base.h"
#include "core/sinks.h"
#include "datasets/generators.h"
#include "graph/core_decomposition.h"
#include "graph/window_peeler.h"
#include "otcd/otcd.h"
#include "vct/naive_vct_builder.h"
#include "vct/vct_builder.h"

namespace tkc {
namespace {

// One shared mid-size bursty graph per scale level.
const TemporalGraph& SharedGraph(int scale) {
  static TemporalGraph* graphs[3] = {nullptr, nullptr, nullptr};
  if (graphs[scale] == nullptr) {
    SyntheticSpec spec;
    spec.name = "bench";
    spec.num_vertices = 200u << scale;
    spec.num_edges = 6000u << scale;
    spec.num_timestamps = 4000u << scale;
    spec.burstiness = 0.2;
    spec.repeat_prob = 0.4;
    spec.seed = 12345;
    graphs[scale] = new TemporalGraph(GenerateSynthetic(spec));
  }
  return *graphs[scale];
}

void BM_GraphBuild(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  SyntheticSpec spec;
  spec.name = "b";
  spec.num_vertices = 200u << scale;
  spec.num_edges = 6000u << scale;
  spec.num_timestamps = 4000u << scale;
  spec.seed = 7;
  for (auto _ : state) {
    TemporalGraph g = GenerateSynthetic(spec);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * spec.num_edges);
}
BENCHMARK(BM_GraphBuild)->Arg(0)->Arg(1)->Arg(2);

void BM_CoreDecomposition(benchmark::State& state) {
  const TemporalGraph& g = SharedGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    CoreDecompositionResult r = DecomposeCores(g);
    benchmark::DoNotOptimize(r.kmax);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CoreDecomposition)->Arg(0)->Arg(1)->Arg(2);

void BM_WindowPeel(benchmark::State& state) {
  const TemporalGraph& g = SharedGraph(static_cast<int>(state.range(0)));
  Timestamp tmax = g.num_timestamps();
  Window w{tmax / 4, (3 * tmax) / 4};
  for (auto _ : state) {
    WindowCore core = ComputeWindowCore(g, 4, w);
    benchmark::DoNotOptimize(core.edges.size());
  }
}
BENCHMARK(BM_WindowPeel)->Arg(0)->Arg(1)->Arg(2);

void BM_CoreTimeSweepSingleStart(benchmark::State& state) {
  const TemporalGraph& g = SharedGraph(static_cast<int>(state.range(0)));
  SweepScratch scratch;
  std::vector<Timestamp> ct;
  for (auto _ : state) {
    CoreTimeSweep(g, 4, 1, g.num_timestamps(), &ct, &scratch);
    benchmark::DoNotOptimize(ct.data());
  }
}
BENCHMARK(BM_CoreTimeSweepSingleStart)->Arg(0)->Arg(1)->Arg(2);

// Ablation: efficient fixpoint builder vs per-start-sweep builder.
void BM_VctBuildEfficient(benchmark::State& state) {
  const TemporalGraph& g = SharedGraph(static_cast<int>(state.range(0)));
  Timestamp tmax = g.num_timestamps();
  Window range{1, tmax / 4};
  for (auto _ : state) {
    VctBuildResult r = BuildVctAndEcs(g, 4, range);
    benchmark::DoNotOptimize(r.ecs.size());
  }
}
BENCHMARK(BM_VctBuildEfficient)->Arg(0)->Arg(1);

void BM_VctBuildNaive(benchmark::State& state) {
  const TemporalGraph& g = SharedGraph(static_cast<int>(state.range(0)));
  Timestamp tmax = g.num_timestamps();
  Window range{1, tmax / 4};
  for (auto _ : state) {
    VctBuildResult r = BuildVctAndEcsNaive(g, 4, range);
    benchmark::DoNotOptimize(r.ecs.size());
  }
}
BENCHMARK(BM_VctBuildNaive)->Arg(0)->Arg(1);

// Ablation: Enum vs EnumBase consuming the same prebuilt skyline.
void BM_EnumFromEcs(benchmark::State& state) {
  const TemporalGraph& g = SharedGraph(static_cast<int>(state.range(0)));
  Window range{1, g.num_timestamps() / 4};
  VctBuildResult built = BuildVctAndEcs(g, 4, range);
  for (auto _ : state) {
    CountingSink sink;
    Status s = EnumerateFromEcs(built.ecs, &sink);
    benchmark::DoNotOptimize(sink.num_cores());
    if (!s.ok()) state.SkipWithError("enum failed");
  }
}
BENCHMARK(BM_EnumFromEcs)->Arg(0)->Arg(1)->Arg(2);

void BM_EnumBaseFromEcs(benchmark::State& state) {
  const TemporalGraph& g = SharedGraph(static_cast<int>(state.range(0)));
  Window range{1, g.num_timestamps() / 4};
  VctBuildResult built = BuildVctAndEcs(g, 4, range);
  for (auto _ : state) {
    CountingSink sink;
    Status s = EnumerateFromEcsBase(g, built.ecs, &sink);
    benchmark::DoNotOptimize(sink.num_cores());
    if (!s.ok()) state.SkipWithError("enum_base failed");
  }
}
BENCHMARK(BM_EnumBaseFromEcs)->Arg(0)->Arg(1);

void BM_OtcdFull(benchmark::State& state) {
  const TemporalGraph& g = SharedGraph(static_cast<int>(state.range(0)));
  Window range{1, g.num_timestamps() / 8};
  for (auto _ : state) {
    CountingSink sink;
    Status s = RunOtcd(g, 4, range, &sink);
    benchmark::DoNotOptimize(sink.num_cores());
    if (!s.ok()) state.SkipWithError("otcd failed");
  }
}
BENCHMARK(BM_OtcdFull)->Arg(0)->Arg(1);

// Ablation: OTCD cross-row pruning on vs off.
void BM_OtcdNoPruning(benchmark::State& state) {
  const TemporalGraph& g = SharedGraph(static_cast<int>(state.range(0)));
  Window range{1, g.num_timestamps() / 8};
  OtcdOptions options;
  options.cross_row_pruning = false;
  for (auto _ : state) {
    CountingSink sink;
    Status s = RunOtcd(g, 4, range, &sink, options);
    benchmark::DoNotOptimize(sink.num_cores());
    if (!s.ok()) state.SkipWithError("otcd failed");
  }
}
BENCHMARK(BM_OtcdNoPruning)->Arg(0)->Arg(1);

}  // namespace
}  // namespace tkc

BENCHMARK_MAIN();
