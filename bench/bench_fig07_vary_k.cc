// Reproduces Figure 7: average running time as k varies over 10/20/30/40%
// of kmax on the four sweep datasets (CollegeMsg, Email, WikiTalk,
// Prosper). Paper shape: running time falls as k grows (fewer cores);
// Prosper (few timestamps, dense cores) is much flatter than the others.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;
  // Latency figure: datasets run serially by default so per-query timings
  // stay faithful; --parallel-datasets=1 opts into the pool fan-out.
  BenchConfig config =
      ParseBenchConfig(argc, argv, /*parallel_datasets_default=*/false);
  if (config.datasets.empty()) config.datasets = SweepDatasetNames();
  const double kFractions[] = {0.10, 0.20, 0.30, 0.40};
  const AlgorithmKind kAlgos[] = {AlgorithmKind::kOtcd,
                                  AlgorithmKind::kEnumBase,
                                  AlgorithmKind::kEnum};

  std::printf(
      "=== Figure 7: avg running time vs k (range=10%% tmax, %u queries, "
      "limit %.1fs) ===\n",
      config.queries, config.limit_seconds);
  // When datasets fan out, they contend for cores: the DNF cutoff is
  // scaled by the pool size and a note marks the timings as contended.
  const double limit =
      config.parallel_datasets
          ? config.limit_seconds * ThreadPool::Shared().num_threads()
          : config.limit_seconds;
  if (config.parallel_datasets) {
    std::printf(
        "note: datasets measured concurrently; timings include contention "
        "(drop --parallel-datasets for clean latencies)\n");
  }
  PrintDatasetSections(config.datasets, [&](const std::string& name) {
    auto prepared = Prepare(name, config.scale);
    if (!prepared.ok()) return std::string();
    char heading[128];
    std::snprintf(heading, sizeof(heading), "\n--- %s (kmax=%u) ---\n",
                  name.c_str(), prepared->stats.kmax);
    TextTable table;
    table.SetHeader({"k", "OTCD(s)", "EnumBase(s)", "Enum(s)", "CoreTime(s)"});
    for (double kf : kFractions) {
      std::vector<Query> queries = MakeQueries(*prepared, config, kf, 0.10);
      char klabel[32];
      std::snprintf(klabel, sizeof(klabel), "%.0f%% (k=%u)", kf * 100,
                    queries.empty() ? 0 : queries[0].k);
      if (queries.empty()) {
        table.AddRow({klabel, "n/a", "n/a", "n/a", "n/a"});
        continue;
      }
      std::vector<std::string> row = {klabel};
      for (AlgorithmKind algo : kAlgos) {
        row.push_back(TimeCell(
            RunAlgorithmOnQueries(algo, prepared->graph, queries, limit)));
      }
      row.push_back(TimeCell(RunAlgorithmOnQueries(
          AlgorithmKind::kCoreTime, prepared->graph, queries, limit)));
      table.AddRow(row);
    }
    return heading + table.ToString();
  }, config.parallel_datasets);
  std::printf(
      "\nExpected shape (paper): time falls with k on CM/EM/WT (up to 10-"
      "100x from 10%% to 40%%); PL stays nearly flat (dense, few "
      "timestamps).\n");
  return 0;
}
